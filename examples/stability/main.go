// Stability: two demonstrations from Section 7 of the paper, using only the
// public API.
//
//  1. Belady's anomaly — FIFO with a *larger* cache can miss more. This is
//     why FIFO is not a stack algorithm, and (via Theorem 7) why it cannot
//     be stable.
//  2. Proposition 6 — the reuse-distance policy R evicts differently at
//     sizes 3 and 4 on the paper's sequence, in a way that violates the
//     stability condition even though R is a stack algorithm.
package main

import (
	"fmt"
	"log"

	assoccache "repro"
)

func main() {
	demoBeladyAnomaly()
	fmt.Println()
	demoReuseDistance()
}

// demoBeladyAnomaly replays the classic sequence 1 2 3 4 1 2 5 1 2 3 4 5.
func demoBeladyAnomaly() {
	seq := assoccache.Sequence{1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5}
	fmt.Println("Belady's anomaly (FIFO):")
	for _, k := range []int{3, 4} {
		fifo, err := assoccache.NewFullyAssociative(k, assoccache.WithPolicy(assoccache.FIFO))
		if err != nil {
			log.Fatal(err)
		}
		lru, err := assoccache.NewFullyAssociative(k, assoccache.WithPolicy(assoccache.LRU))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  k=%d: FIFO misses %2d   LRU misses %2d\n",
			k, assoccache.Run(fifo, seq).Misses, assoccache.Run(lru, seq).Misses)
	}
	fmt.Println("  FIFO: the larger cache misses MORE (9 → 10). LRU, a stack algorithm, cannot do this.")
}

// demoReuseDistance replays the Proposition 6 counterexample
// σ = A Y Z Z Z Z A B Y Y B C with the reuse-distance policy R.
func demoReuseDistance() {
	const (
		A assoccache.Item = 0
		B assoccache.Item = 1
		C assoccache.Item = 2
		Y assoccache.Item = 24
		Z assoccache.Item = 25
	)
	sigma := assoccache.Sequence{A, Y, Z, Z, Z, Z, A, B, Y, Y, B}
	sigmaX := assoccache.Sequence{A, Y, A, B, Y, Y, B} // σ restricted to X = {A,B,C,Y}

	r3, err := assoccache.NewFullyAssociative(3, assoccache.WithPolicy(assoccache.ReuseDistance))
	if err != nil {
		log.Fatal(err)
	}
	r4, err := assoccache.NewFullyAssociative(4, assoccache.WithPolicy(assoccache.ReuseDistance))
	if err != nil {
		log.Fatal(err)
	}
	assoccache.Run(r3, sigmaX)
	assoccache.Run(r4, sigma)

	_, ev3, _ := r3.AccessDetail(C)
	_, ev4, _ := r4.AccessDetail(C)
	fmt.Println("Proposition 6 (reuse-distance policy R on σ = A Y Z Z Z Z A B Y Y B C):")
	fmt.Printf("  R with 3 slots, fed σ[X]: on the access to C it evicts %s\n", name(ev3))
	fmt.Printf("  R with 4 slots, fed σ   : on the access to C it evicts %s\n", name(ev4))
	fmt.Printf("  R3 evicted %s (still cached by R4: %v) yet kept %s (already gone from R4: %v)\n",
		name(ev3), r4.Contains(ev3), name(A), !r4.Contains(A))
	fmt.Println("  That is exactly the stability violation: the small cache is not ⊆ the large one.")
}

func name(it assoccache.Item) string {
	if it < 26 {
		return string(rune('A' + it))
	}
	return fmt.Sprint(uint64(it))
}
