// Concurrent: the paper's motivating software use case — a sharded
// concurrent cache. Buckets are independent, so each gets its own lock;
// smaller α means more buckets and less contention, while the paper's
// analysis says α need only be a little above log₂ k before the hit rate
// matches full associativity. This example measures both sides of that
// tradeoff: throughput under contention and the hit rate.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	assoccache "repro"
)

func main() {
	const k = 1 << 14
	const opsPerGoroutine = 300_000
	workers := runtime.GOMAXPROCS(0)

	fmt.Printf("k = %d, %d workers × %d ops, universe 2k (Zipf)\n\n", k, workers, opsPerGoroutine)
	fmt.Printf("%8s %10s %14s %10s\n", "alpha", "buckets", "ops/sec", "hit rate")

	for _, alpha := range []int{4, 16, assoccache.RecommendedAlpha(k), 1024, k} {
		opsPerSec, hitRate := run(k, alpha, workers, opsPerGoroutine)
		fmt.Printf("%8d %10d %14.0f %10.4f\n", alpha, k/alpha, opsPerSec, hitRate)
	}
	fmt.Println("\nSmall α: many buckets, high throughput — but the paper warns the hit rate")
	fmt.Println("collapses below the log k threshold. RecommendedAlpha picks the sweet spot.")
}

func run(k, alpha, workers, ops int) (opsPerSec, hitRate float64) {
	cache, err := assoccache.NewConcurrent(k, alpha, assoccache.WithSeed(99))
	if err != nil {
		log.Fatal(err)
	}
	var total atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			zipf := rand.NewZipf(rng, 1.1, 1, uint64(2*k-1))
			for i := 0; i < ops; i++ {
				key := zipf.Uint64()
				if _, ok := cache.Get(key); !ok {
					cache.Put(key, key)
				}
			}
			total.Add(int64(ops))
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	hits, misses := cache.Stats()
	return float64(total.Load()) / elapsed.Seconds(), float64(hits) / float64(hits+misses)
}
