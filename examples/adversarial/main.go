// Adversarial: mount the Theorem 4 attack against a set-associative LRU
// cache, then defend with rehashing.
//
// The attacker (who cannot see the hash function) picks s disjoint working
// sets of (1−δ)k items and replays each one t times. Each fresh set has a
// constant chance of oversubscribing some bucket; replaying it turns that
// one unlucky hash collision into t·α conflict misses. A fully associative
// cache of size (1−δ)k misses only s·(1−δ)k times in total, so the
// competitive ratio grows with t — until rehashing caps it.
package main

import (
	"fmt"
	"log"

	assoccache "repro"
)

func main() {
	const (
		k     = 1 << 10
		alpha = 32
		sets  = 12
		reps  = 300
		seeds = 5
	)
	delta := 0.33
	kPrime := int((1 - delta) * float64(k))

	// Build the attack sequence: sets × (reps × sequential scan).
	seq := make(assoccache.Sequence, 0, sets*reps*kPrime)
	for s := 0; s < sets; s++ {
		base := assoccache.Item(s * kPrime)
		for r := 0; r < reps; r++ {
			for i := 0; i < kPrime; i++ {
				seq = append(seq, base+assoccache.Item(i))
			}
		}
	}
	baseline := uint64(sets * kPrime) // conservative fully associative cost

	fmt.Printf("k=%d α=%d δ=%.2f: %d sets × %d reps of %d items (|σ| = %d)\n",
		k, alpha, delta, sets, reps, kPrime, len(seq))
	fmt.Printf("fully associative LRU at k'=%d pays exactly %d misses\n\n", kPrime, baseline)

	configs := []struct {
		name string
		opts []assoccache.Option
	}{
		{"no rehashing        ", nil},
		{"full-flush rehashing", []assoccache.Option{assoccache.WithFullFlushRehash(2 * k)}},
		{"incremental rehash  ", []assoccache.Option{assoccache.WithIncrementalRehash(2 * k)}},
	}
	for _, cfg := range configs {
		var misses, rehashes uint64
		for seed := uint64(0); seed < seeds; seed++ {
			opts := append([]assoccache.Option{assoccache.WithSeed(seed)}, cfg.opts...)
			c, err := assoccache.NewSetAssociative(k, alpha, opts...)
			if err != nil {
				log.Fatal(err)
			}
			st := assoccache.Run(c, seq)
			misses += st.Misses
			rehashes += st.Rehashes
		}
		mean := float64(misses) / seeds
		fmt.Printf("%s: %9.0f misses  ratio %.2f  (%.1f rehashes)   [mean of %d hashes]\n",
			cfg.name, mean, mean/float64(baseline), float64(rehashes)/seeds, seeds)
	}
	fmt.Println("\nWithout rehashing, every unlucky set keeps paying on all of its replays;")
	fmt.Println("rehashing redraws the hash after enough misses and the damage stops (Theorem 5).")
}
