// Quickstart: build a set-associative LRU cache at the paper-recommended
// associativity, feed it a skewed workload, and compare its miss ratio with
// a fully associative cache of the same size.
package main

import (
	"fmt"
	"log"
	"math/rand"

	assoccache "repro"
)

func main() {
	const k = 1 << 14 // 16384 slots
	alpha := assoccache.RecommendedAlpha(k)

	setAssoc, err := assoccache.NewSetAssociative(k, alpha, assoccache.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	fullAssoc, err := assoccache.NewFullyAssociative(k)
	if err != nil {
		log.Fatal(err)
	}

	// A Zipf-ish workload over a universe 4× the cache size.
	rng := rand.New(rand.NewSource(1))
	zipf := rand.NewZipf(rng, 1.2, 1, 4*k-1)
	seq := make(assoccache.Sequence, 2_000_000)
	for i := range seq {
		seq[i] = assoccache.Item(zipf.Uint64())
	}

	saStats := assoccache.Run(setAssoc, seq)
	faStats := assoccache.Run(fullAssoc, seq)

	fmt.Printf("cache size k = %d, associativity α = %d (%d buckets)\n", k, alpha, k/alpha)
	fmt.Printf("set-associative LRU : %8d misses (ratio %.4f)\n", saStats.Misses, saStats.MissRatio())
	fmt.Printf("fully associative LRU: %8d misses (ratio %.4f)\n", faStats.Misses, faStats.MissRatio())
	fmt.Printf("relative excess      : %.2f%%\n",
		100*(float64(saStats.Misses)/float64(faStats.Misses)-1))

	// Where did the extra misses come from? The 3C breakdown says.
	fresh, err := assoccache.NewSetAssociative(k, alpha, assoccache.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	b := assoccache.ClassifyMisses(seq, fresh)
	fmt.Printf("3C breakdown         : %d compulsory, %d capacity, %d conflict\n",
		b.Compulsory, b.Capacity, b.Conflict)
}
