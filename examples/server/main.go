// The server example is the end-to-end walkthrough of the paper's
// α-tradeoff on a real service boundary: it boots one cached server per α
// on loopback TCP, drives each with the same zipf and adversarial workloads
// through the closed-loop load harness, and tabulates throughput, tail
// latency and miss behaviour side by side.
//
// The two columns tell the two halves of the story:
//
//   - qps / p99: smaller α means more buckets, so concurrent connections
//     collide on bucket locks less often (the "smaller α, bigger benefits"
//     direction);
//   - miss ratio / conflict evictions: once α falls below the ~log₂ k
//     threshold, buckets overflow under skew and the adversarial cycler,
//     and the cheap cache stops being (1+o(1))-competitive.
//
// It finishes by demonstrating an online rehash under live traffic: the
// migration drains without stopping the server.
//
// Run with: go run ./examples/server
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"repro/internal/adversary"
	"repro/internal/concurrent"
	"repro/internal/load"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/wire"
	"repro/internal/workload"
)

const (
	k     = 1 << 12
	ops   = 120_000
	conns = 4
)

func main() {
	zipf := workload.Zipf{Universe: 2 * k, S: 0.9, Shuffle: true}.Generate(ops, 7)
	adv := adversary.Theorem4{K: k, Delta: 0.1, Sets: 3, Reps: 4}
	advSeq := workload.Fixed{Label: "theorem4", Seq: adv.Build()}.Generate(ops, 7)

	fmt.Printf("cached α-sweep: k=%d, %d ops, %d conns, zipf(s=0.9) and Theorem-4 adversary\n\n", k, ops, conns)
	fmt.Printf("%8s %8s | %10s %8s %9s %11s | %10s %8s %9s %11s\n",
		"alpha", "buckets",
		"zipf qps", "p99", "miss", "conflict/op",
		"adv qps", "p99", "miss", "conflict/op")
	for _, alpha := range []int{1, 4, 16, 64, 512, k} {
		zr, zc := runOne(alpha, zipf)
		ar, ac := runOne(alpha, advSeq)
		fmt.Printf("%8d %8d | %10.0f %8v %9.4f %11.4f | %10.0f %8v %9.4f %11.4f\n",
			alpha, k/alpha,
			zr.Throughput, zr.Latency.P99.Round(time.Microsecond), zr.MissRatio(),
			float64(zc.ConflictEvictions)/float64(zr.Ops),
			ar.Throughput, ar.Latency.P99.Round(time.Microsecond), ar.MissRatio(),
			float64(ac.ConflictEvictions)/float64(ar.Ops))
	}

	fmt.Println("\nonline rehash under live traffic (α=16):")
	demoOnlineRehash()
}

// runOne serves one α configuration and drives it with keys.
func runOne(alpha int, keys trace.Sequence) (load.Result, concurrent.Snapshot) {
	cache, err := concurrent.New(concurrent.Config{Capacity: k, Alpha: alpha, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	srv := server.New(cache)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	res, err := load.Run(load.Config{
		Addr:        ln.Addr().String(),
		Conns:       conns,
		Keys:        keys,
		Pipeline:    16,
		ValueSize:   64,
		ReadThrough: true,
		Verify:      true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if res.Corrupt > 0 {
		log.Fatalf("α=%d: %d corrupt payloads", alpha, res.Corrupt)
	}
	return res, cache.Snapshot()
}

func demoOnlineRehash() {
	cache, err := concurrent.New(concurrent.Config{Capacity: k, Alpha: 16, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	srv := server.New(cache)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	addr := ln.Addr().String()

	keys := workload.Zipf{Universe: k, S: 0.8, Shuffle: true}.Generate(200_000, 3)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := load.Run(load.Config{
			Addr: addr, Conns: conns, Keys: keys, Pipeline: 16,
			ValueSize: 64, ReadThrough: true,
		}); err != nil {
			log.Fatal(err)
		}
	}()

	time.Sleep(20 * time.Millisecond)
	ctl, err := wire.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer ctl.Close()
	pre, _ := ctl.Stats(false)
	if err := ctl.Rehash(); err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	for {
		st, err := ctl.Stats(false)
		if err != nil {
			log.Fatal(err)
		}
		if !st.Migrating {
			fmt.Printf("  rehash of %d resident entries completed in %v under live traffic\n",
				pre.Len, time.Since(start).Round(time.Millisecond))
			fmt.Printf("  flush evictions: %d, server kept serving: Δgets=%d\n",
				st.FlushEvictions, (st.Hits+st.Misses)-(pre.Hits+pre.Misses))
			break
		}
		time.Sleep(time.Millisecond)
	}
	<-done
}
