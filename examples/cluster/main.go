// The cluster example is the walkthrough of the cluster-level rehash
// analogy: three cached nodes behind a consistent-hash ring, live zipf
// traffic flowing through one routing client, and membership changes
// happening underneath it.
//
// It demonstrates the two halves of the analogy:
//
//   - AddNode under live traffic: the ring reassigns ~1/(n+1) of the key
//     space to the newcomer, those keys miss and refill through the
//     read-through path — a visible but bounded hit-ratio dip, the
//     cluster's version of the misses a fresh intra-node hash pays during
//     an incremental rehash.
//   - RemoveNode under live traffic: the departing node's residents are
//     drained and re-SET on their new owners before its connection closes,
//     so the hit ratio barely moves — bounded key movement with no silent
//     loss, every key moved or accounted for by an eviction counter.
//
// Run with: go run ./examples/cluster
package main

import (
	"fmt"
	"log"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/concurrent"
	"repro/internal/load"
	"repro/internal/server"
	"repro/internal/workload"
)

const (
	kPerNode = 1 << 12
	universe = 9000
	depth    = 32
)

func startNode(seed uint64) (string, *server.Server) {
	cache, err := concurrent.New(concurrent.Config{Capacity: kPerNode, Alpha: 16, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	srv := server.New(cache)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	return ln.Addr().String(), srv
}

func main() {
	var servers []*server.Server
	var addrs []string
	for i := 0; i < 3; i++ {
		addr, srv := startNode(uint64(i + 1))
		addrs = append(addrs, addr)
		servers = append(servers, srv)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	ctl, err := cluster.Dial(addrs, cluster.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer ctl.Close()
	fmt.Printf("cluster of %d nodes (k=%d each), zipf live traffic, universe %d\n\n",
		len(addrs), kPerNode, universe)

	// Live traffic: one background goroutine cycles a zipf stream through
	// the shared routing client with read-through refills. Membership
	// changes below happen while this loop is running.
	keys := workload.Zipf{Universe: universe, S: 0.9, Shuffle: true}.Generate(1<<20, 7)
	var hits, gets atomic.Uint64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		batch := make([]uint64, depth)
		var missed []uint64
		for pos := 0; ; pos += depth {
			select {
			case <-stop:
				return
			default:
			}
			for j := range batch {
				batch[j] = uint64(keys[(pos+j)%len(keys)])
			}
			missed = missed[:0]
			if err := ctl.GetBatch(batch, func(i int, hit bool, _ []byte) {
				gets.Add(1)
				if hit {
					hits.Add(1)
				} else {
					missed = append(missed, batch[i])
				}
			}); err != nil {
				log.Fatal(err)
			}
			if len(missed) > 0 {
				m := missed
				if err := ctl.SetBatch(m, func(i int) []byte { return load.Payload(m[i], 32) }); err != nil {
					log.Fatal(err)
				}
			}
		}
	}()

	// window measures the live hit ratio over the next d of traffic.
	window := func(d time.Duration) (ratio float64, qps float64) {
		h0, g0 := hits.Load(), gets.Load()
		time.Sleep(d)
		dh, dg := hits.Load()-h0, gets.Load()-g0
		if dg == 0 {
			return 0, 0
		}
		return float64(dh) / float64(dg), float64(dg) / d.Seconds()
	}
	shares := func() {
		sample := ctl.RingSample(1<<14, 42)
		for _, n := range ctl.Nodes() {
			fmt.Printf("    %-22s ring share %5.1f%%\n", n, 100*float64(sample[n])/float64(1<<14))
		}
	}

	ratio, qps := window(700 * time.Millisecond)
	fmt.Printf("steady state:       hit ratio %.3f at %.0f GET/s\n", ratio, qps)
	shares()

	addr4, srv4 := startNode(4)
	servers = append(servers, srv4)
	if err := ctl.AddNode(addr4); err != nil {
		log.Fatal(err)
	}
	ratio, qps = window(250 * time.Millisecond)
	fmt.Printf("\nAddNode(%s) under live traffic:\n", addr4)
	fmt.Printf("  just after:       hit ratio %.3f at %.0f GET/s  (reassigned keys miss and refill)\n", ratio, qps)
	ratio, qps = window(700 * time.Millisecond)
	fmt.Printf("  after refill:     hit ratio %.3f at %.0f GET/s\n", ratio, qps)
	shares()

	moved, dropped, err := ctl.RemoveNode(addrs[0])
	if err != nil {
		log.Fatal(err)
	}
	ratio, qps = window(700 * time.Millisecond)
	fmt.Printf("\nRemoveNode(%s) under live traffic:\n", addrs[0])
	fmt.Printf("  migrated %d residents to their new owners (%d dropped)\n", moved, dropped)
	fmt.Printf("  just after:       hit ratio %.3f at %.0f GET/s  (no refill dip: entries moved, not lost)\n", ratio, qps)
	shares()

	close(stop)
	<-done

	stats, err := ctl.StatsAll(false)
	if err != nil {
		log.Fatal(err)
	}
	agg := cluster.AggregateStats(stats)
	fmt.Printf("\naggregate: len=%d/%d hits=%d misses=%d evictions=%d (conflict %d)\n",
		agg.Len, agg.Capacity, agg.Hits, agg.Misses, agg.Evictions, agg.ConflictEvictions)
}
