// The cluster example is the walkthrough of the cluster-level rehash
// analogy and its replicated sequel: cached nodes behind a consistent-hash
// ring, live zipf traffic flowing through one routing client, and
// membership changes — including an outright node crash — happening
// underneath it.
//
// Act one (unreplicated) demonstrates the two halves of the analogy:
//
//   - AddNode under live traffic: the ring reassigns ~1/(n+1) of the key
//     space to the newcomer, those keys miss and refill through the
//     read-through path — a visible but bounded hit-ratio dip, the
//     cluster's version of the misses a fresh intra-node hash pays during
//     an incremental rehash.
//   - RemoveNode under live traffic: the departing node's residents are
//     drained and re-SET on their new owners before its connection closes,
//     so the hit ratio barely moves — bounded key movement with no silent
//     loss, every key moved or accounted for by an eviction counter.
//
// Act two (replicas=2) demonstrates what replication buys: a member is
// killed mid-traffic — no drain, no goodbye — and not a single read is
// lost, because every key's surviving owner serves it through the client's
// fallback path while background read repair regenerates lost copies. The
// price appears alongside: double the resident memory and write fan-out.
//
// Act three (replicas=2 again) shows proactive warm-up erasing act one's
// dip: AddNode streams the newcomer's share out of the existing owners
// (chunked KEYS + repair-SETs) on dedicated connections while live traffic
// flows, and once the warm-up completes a full sweep reads every key
// without fallbacks — the newcomer serves its share from the first
// request. Act one disables warm-up (cluster.Options.DisableWarmup) on
// purpose, to show the burst that warm-up exists to kill.
//
// Act four is the observability sequel: one member is secretly slowed (a
// stall injected under its bucket lock), the client's blended latency can
// only say *something* is wrong, and the per-node METRICS fan-out (wire
// v5) localizes the hot member from its own service-time histogram — with
// its slow-op ring naming the ops that paid — without a shell on any box.
//
// Run with: go run ./examples/cluster
package main

import (
	"fmt"
	"log"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/concurrent"
	"repro/internal/load"
	"repro/internal/policy"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/wire"
	"repro/internal/workload"
)

const (
	kPerNode = 1 << 12
	universe = 9000
	depth    = 32
)

func startNode(seed uint64) (string, *server.Server) {
	return startNodeWithConfig(concurrent.Config{Capacity: kPerNode, Alpha: 16, Seed: seed})
}

func startNodeWithConfig(cfg concurrent.Config) (string, *server.Server) {
	cache, err := concurrent.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	srv := server.New(cache)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	return ln.Addr().String(), srv
}

// traffic drives a background zipf GET loop with read-through refills
// through ctl until stop is closed, tallying gets/hits/misses.
type traffic struct {
	gets, hits, misses atomic.Uint64
	stop, done         chan struct{}
}

func startTraffic(ctl *cluster.Client, keys trace.Sequence) *traffic {
	tr := &traffic{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(tr.done)
		batch := make([]uint64, depth)
		var missed []uint64
		for pos := 0; ; pos += depth {
			select {
			case <-tr.stop:
				return
			default:
			}
			for j := range batch {
				batch[j] = uint64(keys[(pos+j)%len(keys)])
			}
			missed = missed[:0]
			if err := ctl.GetBatch(batch, func(i int, hit bool, _ []byte) {
				tr.gets.Add(1)
				if hit {
					tr.hits.Add(1)
				} else {
					tr.misses.Add(1)
					missed = append(missed, batch[i])
				}
			}); err != nil {
				log.Fatalf("read failed under live traffic: %v", err)
			}
			if len(missed) > 0 {
				m := missed
				if err := ctl.SetBatch(m, func(i int) []byte { return load.Payload(m[i], 32) }); err != nil {
					log.Fatalf("read-through refill failed: %v", err)
				}
			}
		}
	}()
	return tr
}

// window measures the live hit ratio over the next d of traffic.
func (tr *traffic) window(d time.Duration) (ratio float64, qps float64) {
	h0, g0 := tr.hits.Load(), tr.gets.Load()
	time.Sleep(d)
	dh, dg := tr.hits.Load()-h0, tr.gets.Load()-g0
	if dg == 0 {
		return 0, 0
	}
	return float64(dh) / float64(dg), float64(dg) / d.Seconds()
}

func shares(ctl *cluster.Client) {
	sample, replicas := ctl.OwnerSample(1<<14, 42)
	for _, n := range ctl.Nodes() {
		fmt.Printf("    %-22s replica-set share %5.1f%%\n",
			n, 100*float64(sample[n])/float64((1<<14)*replicas))
	}
}

func main() {
	actOne()
	actTwo()
	actThree()
	actFour()
}

// actOne is the original unreplicated membership walkthrough. Warm-up is
// disabled so the post-join miss burst — the thing act three kills — is
// visible.
func actOne() {
	var servers []*server.Server
	var addrs []string
	for i := 0; i < 3; i++ {
		addr, srv := startNode(uint64(i + 1))
		addrs = append(addrs, addr)
		servers = append(servers, srv)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	ctl, err := cluster.Dial(addrs, cluster.Options{DisableWarmup: true})
	if err != nil {
		log.Fatal(err)
	}
	defer ctl.Close()
	fmt.Printf("act one — cluster of %d nodes (k=%d each), zipf live traffic, universe %d\n\n",
		len(addrs), kPerNode, universe)

	keys := workload.Zipf{Universe: universe, S: 0.9, Shuffle: true}.Generate(1<<20, 7)
	tr := startTraffic(ctl, keys)

	ratio, qps := tr.window(700 * time.Millisecond)
	fmt.Printf("steady state:       hit ratio %.3f at %.0f GET/s\n", ratio, qps)
	shares(ctl)

	addr4, srv4 := startNode(4)
	servers = append(servers, srv4)
	if _, err := ctl.AddNode(addr4); err != nil {
		log.Fatal(err)
	}
	ratio, qps = tr.window(250 * time.Millisecond)
	fmt.Printf("\nAddNode(%s) under live traffic:\n", addr4)
	fmt.Printf("  just after:       hit ratio %.3f at %.0f GET/s  (reassigned keys miss and refill)\n", ratio, qps)
	ratio, qps = tr.window(700 * time.Millisecond)
	fmt.Printf("  after refill:     hit ratio %.3f at %.0f GET/s\n", ratio, qps)
	shares(ctl)

	moved, dropped, err := ctl.RemoveNode(addrs[0])
	if err != nil {
		log.Fatal(err)
	}
	ratio, qps = tr.window(700 * time.Millisecond)
	fmt.Printf("\nRemoveNode(%s) under live traffic:\n", addrs[0])
	fmt.Printf("  migrated %d residents to their new owners (%d dropped)\n", moved, dropped)
	fmt.Printf("  just after:       hit ratio %.3f at %.0f GET/s  (no refill dip: entries moved, not lost)\n", ratio, qps)
	shares(ctl)

	close(tr.stop)
	<-tr.done

	stats, err := ctl.StatsAll(false)
	if err != nil {
		log.Fatal(err)
	}
	agg := cluster.AggregateStats(stats)
	fmt.Printf("\naggregate: len=%d/%d hits=%d misses=%d evictions=%d (conflict %d)\n",
		agg.Len, agg.Capacity, agg.Hits, agg.Misses, agg.Evictions, agg.ConflictEvictions)
}

// actTwo replays the node-loss story with R=2 replication: a member is
// crashed mid-traffic and zero reads are lost.
func actTwo() {
	var servers []*server.Server
	var addrs []string
	for i := 0; i < 3; i++ {
		addr, srv := startNode(uint64(i + 10))
		addrs = append(addrs, addr)
		servers = append(servers, srv)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	// W=1 keeps writes available through a single node loss; the second
	// copy of each write lands on the other owner whenever it is alive.
	ctl, err := cluster.Dial(addrs, cluster.Options{Replicas: 2, WriteQuorum: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer ctl.Close()
	fmt.Printf("\nact two — same cluster, replicas=2 write-quorum=1: every key on two owners\n\n")

	keys := workload.Zipf{Universe: universe, S: 0.9, Shuffle: true}.Generate(1<<20, 11)
	tr := startTraffic(ctl, keys)

	ratio, qps := tr.window(700 * time.Millisecond)
	fmt.Printf("steady state:       hit ratio %.3f at %.0f GET/s  (write fan-out ×2 buys the safety below)\n", ratio, qps)
	shares(ctl)

	// Kill a member outright: no drain, no RemoveNode, connections die
	// mid-pipeline. Every key it held also lives on its other owner, so the
	// fallback path keeps serving and not one read is lost — the traffic
	// loop log.Fatals on any read error.
	victim := addrs[0]
	m0 := tr.misses.Load()
	if err := servers[0].Close(); err != nil {
		log.Fatal(err)
	}
	ratio, qps = tr.window(400 * time.Millisecond)
	fmt.Printf("\nkill -9 %s under live traffic:\n", victim)
	fmt.Printf("  just after:       hit ratio %.3f at %.0f GET/s  (fallback reads, slower but nothing lost)\n", ratio, qps)
	fmt.Printf("  misses added:     %d (read repair refills the survivor-set gaps)\n", tr.misses.Load()-m0)

	// Retire the corpse: with replicas the router never contacts it, so
	// removing a dead member is instant and the ring stops routing to it.
	if _, _, err := ctl.RemoveNode(victim); err != nil {
		log.Fatal(err)
	}
	ratio, qps = tr.window(700 * time.Millisecond)
	fmt.Printf("\nRemoveNode(%s) — no drain needed, survivors already hold the data:\n", victim)
	fmt.Printf("  after:            hit ratio %.3f at %.0f GET/s\n", ratio, qps)
	shares(ctl)

	close(tr.stop)
	<-tr.done

	rep := ctl.Replication()
	fmt.Printf("\nreplication: fallback hits=%d, repairs scheduled=%d applied=%d dropped=%d\n",
		rep.FallbackHits, rep.RepairsScheduled, rep.RepairsApplied, rep.RepairsDropped)
	stats, err := ctl.StatsAll(false)
	if err != nil {
		log.Fatal(err)
	}
	agg := cluster.AggregateStats(stats)
	fmt.Printf("aggregate: len=%d/%d hits=%d misses=%d user sets=%d repair sets=%d\n",
		agg.Len, agg.Capacity, agg.Hits, agg.Misses, agg.Sets, agg.RepairSets)
	fmt.Println("\nzero reads lost to a node crash: that is what R=2 buys for 2× memory and write fan-out.")
}

// actThree replays act one's join with warm-up on: the newcomer's share is
// streamed into it before user reads ever ask for it, so the post-join dip
// all but disappears and a sweep after Wait() needs no replica fallbacks.
func actThree() {
	var servers []*server.Server
	var addrs []string
	for i := 0; i < 3; i++ {
		addr, srv := startNode(uint64(i + 20))
		addrs = append(addrs, addr)
		servers = append(servers, srv)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	ctl, err := cluster.Dial(addrs, cluster.Options{Replicas: 2, WriteQuorum: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer ctl.Close()
	fmt.Printf("\nact three — same cluster, replicas=2, this time with proactive warm-up on AddNode\n\n")

	keys := workload.Zipf{Universe: universe, S: 0.9, Shuffle: true}.Generate(1<<20, 13)
	tr := startTraffic(ctl, keys)

	ratio, qps := tr.window(700 * time.Millisecond)
	fmt.Printf("steady state:       hit ratio %.3f at %.0f GET/s  (epoch %d)\n", ratio, qps, ctl.Epoch())

	addr4, srv4 := startNode(24)
	servers = append(servers, srv4)
	rep0 := ctl.Replication()
	w, err := ctl.AddNode(addr4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAddNode(%s) — warm-up streaming the newcomer's share in the background:\n", addr4)
	ratio, qps = tr.window(250 * time.Millisecond)
	fmt.Printf("  during warm-up:   hit ratio %.3f at %.0f GET/s\n", ratio, qps)
	ws := w.Wait()
	fmt.Printf("  warm-up done:     %d keys streamed, %d copied in, %d vanished mid-copy, %d superseded by newer writes (err=%v)\n",
		ws.Streamed, ws.Copied, ws.Vanished, ws.Stale, ws.Err)
	ratio, qps = tr.window(700 * time.Millisecond)
	fmt.Printf("  after:            hit ratio %.3f at %.0f GET/s  (epoch %d)\n", ratio, qps, ctl.Epoch())
	shares(ctl)

	close(tr.stop)
	<-tr.done

	// The proof: a full sweep of the hot set after warm-up needs (almost)
	// no replica fallbacks — the newcomer answers for its share directly.
	sweep := make([]uint64, universe)
	for i := range sweep {
		sweep[i] = uint64(keys[i%len(keys)])
	}
	fb0 := ctl.Replication().FallbackHits - rep0.FallbackHits
	misses := 0
	if err := ctl.GetBatch(sweep, func(_ int, hit bool, _ []byte) {
		if !hit {
			misses++
		}
	}); err != nil {
		log.Fatal(err)
	}
	fb := ctl.Replication().FallbackHits - rep0.FallbackHits - fb0
	fmt.Printf("\npost-warm-up sweep of %d reads: %d misses, %d replica fallbacks — the join cost user reads ≈ nothing.\n",
		len(sweep), misses, fb)
}

// slowPolicy wraps a replacement policy and dawdles on every request — an
// injected stall standing in for a failing disk, a noisy neighbour, or a
// GC-pausing co-tenant. It runs under the bucket lock, exactly where real
// per-item slowness would sit, so the victim node's *service time*
// genuinely inflates; nothing about the wire or the client is touched.
type slowPolicy struct {
	policy.Policy
	delay time.Duration
}

func (p slowPolicy) Request(x trace.Item) (bool, trace.Item, bool) {
	time.Sleep(p.delay)
	return p.Policy.Request(x)
}

// actFour is the observability act: one of three members is secretly slow,
// and the client's blended numbers cannot say which. The per-node METRICS
// fan-out can — each member's flight recorder holds its own service-time
// histogram, so the hot node is the row whose tail is orders of magnitude
// off, and its slow-op ring names the ops that paid for it.
func actFour() {
	const stall = 500 * time.Microsecond
	var servers []*server.Server
	var addrs []string
	for i := 0; i < 3; i++ {
		cfg := concurrent.Config{Capacity: kPerNode, Alpha: 16, Seed: uint64(i + 30)}
		if i == 2 {
			cfg.Policy = func(c int) policy.Policy {
				return slowPolicy{Policy: policy.NewLRU(c), delay: stall}
			}
		}
		addr, srv := startNodeWithConfig(cfg)
		// Drop the flight recorder's slow-op threshold below the injected
		// stall so the victim's ring fills while healthy rings stay empty.
		srv.SetSlowOpThreshold(stall / 2)
		addrs = append(addrs, addr)
		servers = append(servers, srv)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	culprit := addrs[2]

	ctl, err := cluster.Dial(addrs, cluster.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer ctl.Close()
	fmt.Printf("\nact four — same cluster, but one member is secretly slow (%v per request, under the bucket lock)\n\n", stall)

	keys := workload.Zipf{Universe: universe, S: 0.9, Shuffle: true}.Generate(1<<20, 17)
	tr := startTraffic(ctl, keys)
	ratio, qps := tr.window(900 * time.Millisecond)
	fmt.Printf("client view:        hit ratio %.3f at %.0f GET/s — something is slow, but every batch blends all three nodes\n", ratio, qps)
	close(tr.stop)
	<-tr.done

	per, err := ctl.MetricsAll(wire.MetricsAll)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nper-node flight recorders (METRICS fan-out):\n")
	var hot string
	var hotP99 time.Duration
	for _, n := range ctl.Nodes() {
		h := per[n].Hist(byte(wire.OpGet))
		if h == nil || h.Count == 0 {
			log.Fatalf("node %s returned no GET histogram", n)
		}
		p99 := h.Quantile(0.99)
		fmt.Printf("    %-22s GET p50=%-10v p99=%-10v (%d ops, %d in the slow-op ring)\n",
			n, h.Quantile(0.50), p99, h.Count, len(per[n].SlowOps))
		if p99 > hotP99 {
			hot, hotP99 = n, p99
		}
	}
	agg := cluster.AggregateMetrics(per)
	cg := agg.Hist(byte(wire.OpGet))
	fmt.Printf("    %-22s GET p50=%-10v p99=%-10v (the merged view shows the tail, not the culprit)\n",
		"cluster (merged)", cg.Quantile(0.50), cg.Quantile(0.99))

	if hot != culprit {
		log.Fatalf("diagnosis picked %s, but the stall was injected into %s", hot, culprit)
	}
	ring := per[hot].SlowOps
	fmt.Printf("\ndiagnosis: %s is the hot member — and its slow-op ring has the receipts: %d ops over the %v threshold",
		hot, len(ring), stall/2)
	if len(ring) > 0 {
		last := ring[len(ring)-1]
		fmt.Printf(", e.g. %s of key-hash %016x taking %v",
			wire.Op(last.Op), last.KeyHash, last.Duration().Round(time.Microsecond))
	}
	fmt.Printf("\nno shell on the box, no guesswork: the wire op that serves the cache also serves its own diagnosis.\n")
}
