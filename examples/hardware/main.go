// Hardware: an L1/L2 cache-hierarchy simulation at the address level,
// showing why the paper's randomized-indexing model matters for real
// machines. Real hardware picks the set from address bits (a modulo), so a
// column-major walk over a matrix with power-of-two leading dimension
// funnels every element of a column into a handful of sets — the classic
// conflict-miss pathology that no amount of associativity below the column
// height can fix. Randomized indexing (Topham–González, the paper's model)
// spreads the column uniformly and the log k threshold re-emerges.
package main

import (
	"fmt"

	"repro/internal/hwcache"
	"repro/internal/policy"
)

func main() {
	// 512 rows × 8 columns of float64, leading dimension 1024 elements
	// (8 KiB row stride), walked down the columns 4 times.
	addrs := hwcache.ColumnWalk(512, 8, 8, 1024, 4)
	fmt.Printf("column walk: %d accesses, 512-deep columns, 8 KiB stride\n\n", len(addrs))
	fmt.Printf("%8s %22s %22s\n", "L1 assoc", "bit-select AMAT", "randomized AMAT")

	for _, alpha := range []int{1, 2, 4, 8, 16, 32} {
		fmt.Printf("%8d %22.2f %22.2f\n", alpha,
			amat(addrs, alpha, true), amat(addrs, alpha, false))
	}

	fmt.Println("\nBit selection: every column element lands in the same few sets, so raising α")
	fmt.Println("barely helps. Randomized indexing turns the walk into balls-and-bins, and a")
	fmt.Println("small α already matches full associativity — the threshold phenomenon.")
}

func amat(addrs []uint64, alpha int, bitSelect bool) float64 {
	h := hwcache.MustNew(hwcache.Config{
		LineSize: 64,
		Levels: []hwcache.LevelConfig{
			{Name: "L1", Lines: 512, Alpha: alpha, Kind: policy.LRUKind, Latency: 4},
			{Name: "L2", Lines: 8192, Alpha: 16, Kind: policy.LRUKind, Latency: 14},
		},
		MemLatency: 200,
		Seed:       7,
		BitSelect:  bitSelect,
	})
	h.AccessAll(addrs)
	return h.AMAT()
}
