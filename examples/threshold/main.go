// Threshold: sweep the associativity α and watch the paper's phenomenon
// appear — below Θ(log k) the set-associative cache pays heavily for its
// buckets; above, it matches full associativity.
//
// The workload repeatedly scans a working set of half the cache size, so a
// fully associative cache misses only on the first pass. Every extra miss
// of the set-associative cache is a conflict miss caused by an
// oversubscribed bucket.
package main

import (
	"fmt"
	"log"
	"math"

	assoccache "repro"
)

func main() {
	const k = 1 << 13     // 8192 slots
	const working = k / 2 // δ = 1/2: r = 2 resource augmentation
	const passes = 8
	const seeds = 10

	seq := make(assoccache.Sequence, 0, working*passes)
	for p := 0; p < passes; p++ {
		for i := 0; i < working; i++ {
			seq = append(seq, assoccache.Item(i))
		}
	}
	compulsory := float64(working) // fully associative cost

	fmt.Printf("k = %d (log2 k = %.0f), working set = %d, %d passes, %d seeds\n\n",
		k, math.Log2(k), working, passes, seeds)
	fmt.Printf("%8s  %14s  %12s\n", "alpha", "excess-factor", "conflicts")
	for alpha := 1; alpha <= 1024; alpha *= 2 {
		var totalMisses uint64
		for seed := uint64(0); seed < seeds; seed++ {
			c, err := assoccache.NewSetAssociative(k, alpha, assoccache.WithSeed(seed))
			if err != nil {
				log.Fatal(err)
			}
			totalMisses += assoccache.Run(c, seq).Misses
		}
		mean := float64(totalMisses) / seeds
		fmt.Printf("%8d  %14.3f  %12.0f\n", alpha, mean/compulsory, mean-compulsory)
	}
	fmt.Printf("\nThe excess factor collapses to ≈1 once α clears a small multiple of log₂ k —\n")
	fmt.Printf("the associativity threshold. RecommendedAlpha(k) = %d.\n", assoccache.RecommendedAlpha(k))
}
