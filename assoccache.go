package assoccache

import (
	"fmt"

	"repro/internal/companion"
	"repro/internal/concurrent"
	"repro/internal/core"
	"repro/internal/hashfn"
	"repro/internal/metrics"
	"repro/internal/opt"
	"repro/internal/policy"
	"repro/internal/trace"
)

// Item identifies a cacheable object (a block address, page number, or key).
type Item = trace.Item

// Sequence is a request sequence σ.
type Sequence = trace.Sequence

// Cache is the common interface of every cache simulator in the library:
// fully associative, set-associative, rehashing, and Belady's OPT.
type Cache = core.Cache

// Stats holds the cost counters of a cache; Stats.Misses is the paging cost
// C(A, σ) of the paper.
type Stats = core.Stats

// PolicyKind names a replacement-policy family.
type PolicyKind = policy.Kind

// The supported replacement policies.
const (
	LRU           = policy.LRUKind
	FIFO          = policy.FIFOKind
	Clock         = policy.ClockKind
	LFU           = policy.LFUKind
	LRU2          = policy.LRU2Kind
	LRU3          = policy.LRU3Kind
	ReuseDistance = policy.ReuseDistKind
	RandomEvict   = policy.RandomKind
	FlushWhenFull = policy.FlushWhenFullKind
)

// MissBreakdown partitions misses into the 3C classes (compulsory,
// capacity, conflict).
type MissBreakdown = metrics.Breakdown

// options collects the functional options shared by the constructors.
type options struct {
	kind        PolicyKind
	seed        uint64
	rehash      core.RehashConfig
	weakHashing bool
}

// Option customizes a cache constructor.
type Option func(*options)

// WithPolicy selects the replacement policy (default LRU).
func WithPolicy(kind PolicyKind) Option {
	return func(o *options) { o.kind = kind }
}

// WithSeed fixes the random seed used by the indexing hash (and by the
// random-eviction policy). Equal seeds replay identically; the default is 0.
func WithSeed(seed uint64) Option {
	return func(o *options) { o.seed = seed }
}

// WithFullFlushRehash enables the ⟨LRU⟩FF scheme of Section 6: every
// everyMisses cache misses, flush everything and draw a fresh hash function.
// The paper proves (1+1/poly(k))-competitiveness on arbitrarily long request
// sequences when everyMisses is poly(k) and α = ω(log k).
func WithFullFlushRehash(everyMisses uint64) Option {
	return func(o *options) {
		o.rehash = core.RehashConfig{Mode: core.RehashFullFlush, EveryMisses: everyMisses}
	}
}

// WithIncrementalRehash enables the ⟨LRU⟩IF scheme of Section 6.1: rehashes
// are spread out — items migrate to their new buckets lazily, and at most
// two hash functions are live at a time. Same guarantee as full flushing
// (Proposition 4), without the stop-the-world eviction burst.
func WithIncrementalRehash(everyMisses uint64) Option {
	return func(o *options) {
		o.rehash = core.RehashConfig{Mode: core.RehashIncremental, EveryMisses: everyMisses}
	}
}

// WithBrokenAccessRehash rehashes every everyAccesses requests instead of
// misses. The paper's Section 6 remark proves this schedule is broken; it is
// exposed for experimentation (see experiment E13).
func WithBrokenAccessRehash(everyAccesses uint64) Option {
	return func(o *options) {
		o.rehash = core.RehashConfig{Mode: core.RehashFullFlush, EveryAccesses: everyAccesses}
	}
}

// WithModuloIndexing replaces the fully random indexing hash with the weak
// x mod n indexer. This violates the paper's model and is exposed only for
// the hash-quality ablation (experiment E1).
func WithModuloIndexing() Option {
	return func(o *options) { o.weakHashing = true }
}

func buildOptions(opts []Option) options {
	o := options{kind: policy.LRUKind}
	for _, apply := range opts {
		apply(&o)
	}
	return o
}

// NewSetAssociative builds an α-way set-associative cache ⟨A⟩_k with total
// capacity k (the paper's Section 4 algorithm). Alpha must divide capacity.
// The default policy is LRU; see the Options for rehashing variants.
func NewSetAssociative(capacity, alpha int, opts ...Option) (Cache, error) {
	o := buildOptions(opts)
	cfg := core.SetAssocConfig{
		Capacity: capacity,
		Alpha:    alpha,
		Factory:  policy.NewFactory(o.kind, o.seed),
		Seed:     o.seed,
		Rehash:   o.rehash,
	}
	if o.weakHashing {
		cfg.NewHasher = func(seed uint64, n int) hashfn.Hasher { return hashfn.NewModulo(seed, n) }
	}
	return core.NewSetAssoc(cfg)
}

// NewFullyAssociative builds a fully associative cache A_k.
func NewFullyAssociative(capacity int, opts ...Option) (Cache, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("assoccache: capacity %d must be positive", capacity)
	}
	o := buildOptions(opts)
	if o.rehash.Mode != core.RehashNone {
		return nil, fmt.Errorf("assoccache: rehashing options apply only to set-associative caches")
	}
	return core.NewFullAssoc(policy.NewFactory(o.kind, o.seed), capacity), nil
}

// NewOPT builds Belady's offline optimal cache for a known request
// sequence. Access must then be fed exactly that sequence.
func NewOPT(capacity int, seq Sequence) Cache {
	return opt.New(capacity, seq)
}

// OptimalCost returns C(OPT_capacity, seq), the offline optimal number of
// misses.
func OptimalCost(capacity int, seq Sequence) uint64 {
	return opt.Cost(capacity, seq)
}

// Run plays seq through cache and returns the stats delta for the run.
func Run(cache Cache, seq Sequence) Stats {
	return core.RunSequence(cache, seq)
}

// ClassifyMisses runs seq through cache and attributes each miss to a 3C
// class: compulsory (first access), capacity (a fully associative LRU cache
// of the same size also misses), or conflict (caused purely by the
// associativity restriction). The cache must be freshly built.
func ClassifyMisses(seq Sequence, cache Cache) MissBreakdown {
	return metrics.Classify(seq, cache)
}

// RecommendedAlpha returns the paper's advice for the set size: the smallest
// power of two at or above 4·log₂(k). Below Θ(log k) the paging penalty is
// unbounded (Proposition 2); far above it, returns diminish (Proposition 1).
// The constant 4 absorbs the constants hidden in the asymptotics at
// practical cache sizes (see experiment E1's measured crossover).
func RecommendedAlpha(capacity int) int {
	if capacity <= 1 {
		return 1
	}
	lg := 0
	for c := capacity; c > 1; c >>= 1 {
		lg++
	}
	a := 1
	for a < 4*lg {
		a *= 2
	}
	if a > capacity {
		a = capacity
	}
	// Alpha must divide capacity; capacity is not necessarily a power of
	// two, so fall back to the largest power-of-two divisor ≤ a.
	for a > 1 && capacity%a != 0 {
		a /= 2
	}
	return a
}

// NewCompanion builds a companion (victim) cache: an α-way set-associative
// main cache of mainCapacity slots backed by a small fully associative
// companion of companionCapacity slots that catches the buckets' victims —
// the related-work organization the paper contrasts against (footnote 2;
// Jouppi's victim cache). A few dozen companion slots absorb the conflict
// misses of a sub-threshold α (experiment E16).
func NewCompanion(mainCapacity, alpha, companionCapacity int, opts ...Option) (Cache, error) {
	o := buildOptions(opts)
	if o.rehash.Mode != core.RehashNone {
		return nil, fmt.Errorf("assoccache: rehashing is not supported on companion caches")
	}
	return companion.New(companion.Config{
		MainCapacity:      mainCapacity,
		Alpha:             alpha,
		CompanionCapacity: companionCapacity,
		Factory:           policy.NewFactory(o.kind, o.seed),
		Seed:              o.seed,
	})
}

// ConcurrentCache is a thread-safe set-associative LRU key-value cache with
// per-bucket locking — the paper's motivating software-cache design.
type ConcurrentCache = concurrent.Cache

// NewConcurrent builds a ConcurrentCache with the given total capacity and
// bucket size.
func NewConcurrent(capacity, alpha int, opts ...Option) (*ConcurrentCache, error) {
	o := buildOptions(opts)
	if o.kind != policy.LRUKind {
		return nil, fmt.Errorf("assoccache: the concurrent cache is LRU-only")
	}
	return concurrent.New(concurrent.Config{Capacity: capacity, Alpha: alpha, Seed: o.seed})
}
