package assoccache

// Cross-subsystem integration tests: every cache organization in the
// library run in lockstep over shared workloads, checking the global
// invariants that tie the pieces together — OPT lower-bounds everything,
// the stack-distance profiler agrees with the LRU simulators, capacity is
// never exceeded, and the facade's constructors wire the internals
// correctly.

import (
	"testing"

	"repro/internal/companion"
	"repro/internal/core"
	"repro/internal/mirror"
	"repro/internal/opt"
	"repro/internal/policy"
	"repro/internal/skewed"
	"repro/internal/stackdist"
	"repro/internal/trace"
	"repro/internal/workload"
)

func integrationWorkloads(n int) map[string]trace.Sequence {
	return map[string]trace.Sequence{
		"zipf":   workload.Zipf{Universe: 2048, S: 0.9, Shuffle: true}.Generate(n, 11),
		"phases": workload.Phases{PhaseLen: 700, SetSize: 300, Universe: 4096}.Generate(n, 12),
		"markov": workload.Markov{Universe: 4096, Neighbourhood: 32, Stickiness: 0.9}.Generate(n, 13),
		"scan":   workload.Scan{Universe: 600}.Generate(n, 14),
	}
}

// TestAllOrganizationsRespectOPT: Belady's OPT at the same capacity
// lower-bounds every organization (they all have exactly k slots and fetch
// only on misses).
func TestAllOrganizationsRespectOPT(t *testing.T) {
	const k = 512
	n := 30000
	if testing.Short() {
		n = 8000
	}
	lruFactory := policy.NewFactory(policy.LRUKind, 0)
	for name, seq := range integrationWorkloads(n) {
		optCost := opt.Cost(k, seq)

		caches := map[string]core.Cache{
			"fullassoc-lru": core.NewFullAssoc(lruFactory, k),
			"setassoc-a8": core.MustNewSetAssoc(core.SetAssocConfig{
				Capacity: k, Alpha: 8, Factory: lruFactory, Seed: 1,
			}),
			"setassoc-ff": core.MustNewSetAssoc(core.SetAssocConfig{
				Capacity: k, Alpha: 64, Factory: lruFactory, Seed: 1,
				Rehash: core.RehashConfig{Mode: core.RehashFullFlush, EveryMisses: 4 * k},
			}),
			"setassoc-if": core.MustNewSetAssoc(core.SetAssocConfig{
				Capacity: k, Alpha: 64, Factory: lruFactory, Seed: 1,
				Rehash: core.RehashConfig{Mode: core.RehashIncremental, EveryMisses: 4 * k},
			}),
			"skewed-d2": mustSkewed(t, skewed.Config{Capacity: k, Alpha: 8, Choices: 2, Seed: 1}),
			"mirror":    mustMirror(t, mirror.Config{Capacity: k, Alpha: 64, SimCapacity: k * 3 / 4, Factory: lruFactory, Seed: 1}),
		}
		// Companion counts its companion slots in Capacity; compare against
		// OPT at the combined size.
		cc, err := companion.New(companion.Config{
			MainCapacity: k - 64, Alpha: 8, CompanionCapacity: 64, Factory: lruFactory, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		caches["companion"] = cc

		for cname, c := range caches {
			st := core.RunSequence(c, seq)
			if st.Misses < optCost {
				t.Errorf("%s/%s: %d misses below OPT's %d — impossible", name, cname, st.Misses, optCost)
			}
			if c.Len() > c.Capacity() {
				t.Errorf("%s/%s: capacity exceeded", name, cname)
			}
			if st.Hits+st.Misses != st.Accesses {
				t.Errorf("%s/%s: accounting broken: %+v", name, cname, st)
			}
		}
	}
}

// TestProfilerAgreesWithEveryLRUSimulator: the stack-distance profile, the
// fully associative LRU simulator, and the α=k set-associative cache must
// produce identical miss counts.
func TestProfilerAgreesWithEveryLRUSimulator(t *testing.T) {
	const k = 256
	lruFactory := policy.NewFactory(policy.LRUKind, 0)
	for name, seq := range integrationWorkloads(20000) {
		p := stackdist.New()
		p.Run(seq)
		fa := core.NewFullAssoc(lruFactory, k)
		sa := core.MustNewSetAssoc(core.SetAssocConfig{Capacity: k, Alpha: k, Factory: lruFactory, Seed: 9})
		faM := core.RunSequence(fa, seq).Misses
		saM := core.RunSequence(sa, seq).Misses
		profM := p.MissCount(k)
		if faM != profM || saM != profM {
			t.Errorf("%s: fullassoc %d, α=k setassoc %d, profiler %d disagree", name, faM, saM, profM)
		}
	}
}

// TestThresholdMonotoneAcrossOrganizations: on the scan workload, the
// conflict cost is ordered: direct-mapped ≥ α=8 ≥ α=64 ≥ fully associative,
// and d=2 skewed at α=8 beats single-choice α=8.
func TestThresholdMonotoneAcrossOrganizations(t *testing.T) {
	const k = 1024
	lruFactory := policy.NewFactory(policy.LRUKind, 0)
	seq := trace.RangeSeq(0, k/2).Repeat(6)

	cost := func(build func(seed uint64) core.Cache) float64 {
		var total uint64
		const seeds = 6
		for s := uint64(0); s < seeds; s++ {
			total += core.RunSequence(build(s), seq).Misses
		}
		return float64(total) / seeds
	}
	direct := cost(func(s uint64) core.Cache {
		return core.MustNewSetAssoc(core.SetAssocConfig{Capacity: k, Alpha: 1, Factory: lruFactory, Seed: s})
	})
	mid := cost(func(s uint64) core.Cache {
		return core.MustNewSetAssoc(core.SetAssocConfig{Capacity: k, Alpha: 8, Factory: lruFactory, Seed: s})
	})
	high := cost(func(s uint64) core.Cache {
		return core.MustNewSetAssoc(core.SetAssocConfig{Capacity: k, Alpha: 64, Factory: lruFactory, Seed: s})
	})
	full := cost(func(s uint64) core.Cache { return core.NewFullAssoc(lruFactory, k) })
	skew := cost(func(s uint64) core.Cache {
		return mustSkewed(t, skewed.Config{Capacity: k, Alpha: 8, Choices: 2, Seed: s})
	})
	if !(direct > mid && mid > high*0.999 && high >= full) {
		t.Errorf("cost ordering broken: direct %.0f, α8 %.0f, α64 %.0f, full %.0f", direct, mid, high, full)
	}
	if skew >= mid {
		t.Errorf("skewed d=2 (%.0f) should beat single choice (%.0f) at α=8", skew, mid)
	}
}

func mustSkewed(t *testing.T, cfg skewed.Config) *skewed.Cache {
	t.Helper()
	c, err := skewed.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mustMirror(t *testing.T, cfg mirror.Config) *mirror.Cache {
	t.Helper()
	c, err := mirror.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}
