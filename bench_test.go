package assoccache

// The benchmark harness has two layers:
//
//   - BenchmarkE* — one benchmark per reproduction experiment (E1–E19, the
//     per-theorem index in DESIGN.md §3). Each iteration executes the whole
//     experiment at Quick scale and reports its headline metric, so
//     `go test -bench=E -benchmem` regenerates every "table" of the paper.
//   - Micro-benchmarks for the hot paths of the library itself (policy
//     Request, set-associative Access with and without rehashing, hashing,
//     OPT, the concurrent cache).
//
// cmd/assocbench prints the same experiments as full-scale human-readable
// tables.

import (
	"sync/atomic"
	"testing"

	"repro/internal/ballsbins"
	"repro/internal/companion"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/hashfn"
	"repro/internal/hwcache"
	"repro/internal/mirror"
	"repro/internal/opt"
	"repro/internal/policy"
	"repro/internal/skewed"
	"repro/internal/stackdist"
	"repro/internal/trace"
	"repro/internal/workload"
)

func benchCfg() experiments.Config { return experiments.QuickConfig() }

func BenchmarkE1Threshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E1Threshold(benchCfg())
		b.ReportMetric(r.Rows[0].ExcessFactor.Mean, "excess@α=1")
		b.ReportMetric(r.Rows[len(r.Rows)-1].ExcessFactor.Mean, "excess@α=max")
	}
}

func BenchmarkE2Competitive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E2Competitive(benchCfg())
		b.ReportMetric(r.Rows[0].CostRatio.Mean, "cost-ratio")
	}
}

func BenchmarkE3MaxLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E3MaxLoad(benchCfg())
		b.ReportMetric(r.Rows[0].Empirical, "Pr[max>α]")
	}
}

func BenchmarkE4Saturated(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E4Saturated(benchCfg())
		b.ReportMetric(r.Rows[0].SuccessFrac, "Pr[sat>f/8]")
	}
}

func BenchmarkE5Adversary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E5Adversary(benchCfg())
		b.ReportMetric(r.Rows[0].Ratio.Mean, "ratio@lru-α2")
	}
}

func BenchmarkE6Regimes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E6Regimes(benchCfg())
		b.ReportMetric(r.Rows[1].Ratio.Mean, "ratio@sublog")
	}
}

func BenchmarkE7FullFlush(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E7E8Rehash(benchCfg())
		if v, ok := r.RatioFor(core.RehashFullFlush, r.MaxReps()); ok {
			b.ReportMetric(v, "ff-ratio")
		}
		if v, ok := r.RatioFor(core.RehashNone, r.MaxReps()); ok {
			b.ReportMetric(v, "none-ratio")
		}
	}
}

func BenchmarkE8Incremental(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E7E8Rehash(benchCfg())
		if v, ok := r.RatioFor(core.RehashIncremental, r.MaxReps()); ok {
			b.ReportMetric(v, "if-ratio")
		}
	}
}

func BenchmarkE9VsOPT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E9VsOPT(benchCfg())
		b.ReportMetric(r.Rows[0].Ratio.Mean, "ratio-vs-opt")
	}
}

func BenchmarkE10Stability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E10Stability(benchCfg())
		consistent := 0.0
		if r.AllConsistent() {
			consistent = 1
		}
		b.ReportMetric(consistent, "consistent")
	}
}

func BenchmarkE11ReuseDist(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E11ReuseDist(benchCfg())
		ok := 0.0
		if r.PaperReplayError == nil && r.StackWitness == nil {
			ok = 1
		}
		b.ReportMetric(ok, "prop6-holds")
	}
}

func BenchmarkE12Belady(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E12Belady(benchCfg())
		b.ReportMetric(float64(r.ClassicFIFOCost4-r.ClassicFIFOCost3), "anomaly-gap")
	}
}

func BenchmarkE13AccessRehash(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E13AccessRehash(benchCfg())
		maxReps := 0
		for _, row := range r.Rows {
			if row.Reps > maxReps {
				maxReps = row.Reps
			}
		}
		if v, ok := r.RatioFor("every 2k accesses (broken)", maxReps); ok {
			b.ReportMetric(v, "broken-ratio")
		}
	}
}

func BenchmarkE14LRU2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E14LRU2(benchCfg())
		if lru, ok := r.MissRatioFor(policy.LRUKind); ok {
			if lru2, ok2 := r.MissRatioFor(policy.LRU2Kind); ok2 {
				b.ReportMetric(lru/lru2, "lru/lru2")
			}
		}
	}
}

// --- library micro-benchmarks ---

func zipfTrace(n, universe int) trace.Sequence {
	return workload.Zipf{Universe: universe, S: 1.0, Shuffle: true}.Generate(n, 42)
}

func benchPolicy(b *testing.B, kind policy.Kind) {
	seq := zipfTrace(1<<16, 1<<14)
	p := policy.NewFactory(kind, 1)(1 << 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Request(seq[i%len(seq)])
	}
}

func BenchmarkPolicyLRU(b *testing.B)       { benchPolicy(b, policy.LRUKind) }
func BenchmarkPolicyFIFO(b *testing.B)      { benchPolicy(b, policy.FIFOKind) }
func BenchmarkPolicyClock(b *testing.B)     { benchPolicy(b, policy.ClockKind) }
func BenchmarkPolicyLFU(b *testing.B)       { benchPolicy(b, policy.LFUKind) }
func BenchmarkPolicyLRU2(b *testing.B)      { benchPolicy(b, policy.LRU2Kind) }
func BenchmarkPolicyReuseDist(b *testing.B) { benchPolicy(b, policy.ReuseDistKind) }

func benchSetAssoc(b *testing.B, alpha int, rehash core.RehashConfig) {
	seq := zipfTrace(1<<16, 1<<14)
	sa := core.MustNewSetAssoc(core.SetAssocConfig{
		Capacity: 1 << 12, Alpha: alpha,
		Factory: policy.NewFactory(policy.LRUKind, 0),
		Seed:    1, Rehash: rehash,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sa.Access(seq[i%len(seq)])
	}
}

func BenchmarkSetAssocAlpha1(b *testing.B)  { benchSetAssoc(b, 1, core.RehashConfig{}) }
func BenchmarkSetAssocAlpha8(b *testing.B)  { benchSetAssoc(b, 8, core.RehashConfig{}) }
func BenchmarkSetAssocAlpha64(b *testing.B) { benchSetAssoc(b, 64, core.RehashConfig{}) }
func BenchmarkSetAssocFullFlush(b *testing.B) {
	benchSetAssoc(b, 64, core.RehashConfig{Mode: core.RehashFullFlush, EveryMisses: 1 << 14})
}
func BenchmarkSetAssocIncremental(b *testing.B) {
	benchSetAssoc(b, 64, core.RehashConfig{Mode: core.RehashIncremental, EveryMisses: 1 << 14})
}

func BenchmarkFullAssocLRU(b *testing.B) {
	seq := zipfTrace(1<<16, 1<<14)
	fa := core.NewFullAssoc(policy.NewFactory(policy.LRUKind, 0), 1<<12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fa.Access(seq[i%len(seq)])
	}
}

func BenchmarkBeladyOPT(b *testing.B) {
	seq := zipfTrace(1<<16, 1<<14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bl := opt.New(1<<12, seq)
		for _, x := range seq {
			bl.Access(x)
		}
	}
	b.SetBytes(int64(len(seq)))
}

func BenchmarkHashRandomBucket(b *testing.B) {
	h := hashfn.NewRandom(1, 1<<10)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += h.Bucket(trace.Item(i))
	}
	_ = sink
}

func BenchmarkBallsBinsThrow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ballsbins.Throw(1<<12, 1<<8, uint64(i))
	}
}

func BenchmarkConcurrentGetPut(b *testing.B) {
	c, err := NewConcurrent(1<<14, 64, WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	for i := uint64(0); i < 1<<14; i++ {
		c.Put(i, i)
	}
	var ctr atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			key := ctr.Add(1) % (1 << 15)
			if _, ok := c.Get(key); !ok {
				c.Put(key, key)
			}
		}
	})
}

// --- extension experiments (E15–E18) ---

func BenchmarkE15Indexing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E15Indexing(benchCfg())
		row := r.RowsTable[0]
		b.ReportMetric(row.BitSelectAMAT/row.RandomAMAT.Mean, "bit/rnd-amat")
	}
}

func BenchmarkE16Companion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E16Companion(benchCfg())
		b.ReportMetric(r.Rows[0].ExcessFactor.Mean, "excess@α1-comp1")
	}
}

func BenchmarkE17Mirror(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E17Mirror(benchCfg())
		last := r.Rows[len(r.Rows)-1]
		b.ReportMetric(last.MirrorRatio.Mean, "mirror-ratio")
	}
}

func BenchmarkE18StackDist(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E18StackDist(benchCfg())
		b.ReportMetric(r.Rows[0].MeanDistance, "mean-depth")
	}
}

// --- extension micro-benchmarks ---

func BenchmarkStackDistProfiler(b *testing.B) {
	seq := zipfTrace(1<<16, 1<<14)
	p := stackdist.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Touch(seq[i%len(seq)])
	}
}

func BenchmarkMirrorAccess(b *testing.B) {
	seq := zipfTrace(1<<16, 1<<14)
	m, err := mirror.New(mirror.Config{
		Capacity: 1 << 12, Alpha: 64, SimCapacity: 3 << 10,
		Factory: policy.NewFactory(policy.LRUKind, 0), Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Access(seq[i%len(seq)])
	}
}

func BenchmarkCompanionAccess(b *testing.B) {
	seq := zipfTrace(1<<16, 1<<14)
	c, err := companion.New(companion.Config{
		MainCapacity: 1 << 12, Alpha: 4, CompanionCapacity: 64,
		Factory: policy.NewFactory(policy.LRUKind, 0), Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(seq[i%len(seq)])
	}
}

func BenchmarkHierarchyAccess(b *testing.B) {
	h := hwcache.MustNew(hwcache.Config{
		LineSize: 64,
		Levels: []hwcache.LevelConfig{
			{Name: "L1", Lines: 512, Alpha: 8, Kind: policy.LRUKind, Latency: 4},
			{Name: "L2", Lines: 8192, Alpha: 16, Kind: policy.LRUKind, Latency: 12},
		},
		MemLatency: 200, Seed: 1,
	})
	addrs := hwcache.PointerChase(1<<16, 1<<13, 64, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(addrs[i%len(addrs)])
	}
}

func BenchmarkE19Skewed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E19Skewed(benchCfg())
		if one, ok := r.ExcessFor(1, 4); ok {
			if two, ok2 := r.ExcessFor(2, 4); ok2 {
				b.ReportMetric(one/two, "d1/d2-excess@α4")
			}
		}
	}
}

func BenchmarkSkewedAccess(b *testing.B) {
	seq := zipfTrace(1<<16, 1<<14)
	c, err := skewed.New(skewed.Config{Capacity: 1 << 12, Alpha: 8, Choices: 2, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(seq[i%len(seq)])
	}
}
