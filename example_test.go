package assoccache_test

import (
	"fmt"

	assoccache "repro"
)

// The quickstart: a set-associative LRU cache at the recommended
// associativity, counting misses over a request sequence.
func ExampleNewSetAssociative() {
	const k = 1 << 10
	cache, err := assoccache.NewSetAssociative(k, assoccache.RecommendedAlpha(k), assoccache.WithSeed(1))
	if err != nil {
		panic(err)
	}
	// Touch 512 items twice: the second pass is all hits.
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < 512; i++ {
			cache.Access(assoccache.Item(i))
		}
	}
	st := cache.Stats()
	fmt.Printf("misses=%d hits=%d\n", st.Misses, st.Hits)
	// Output: misses=512 hits=512
}

// Policies are selected with WithPolicy; here FIFO's Belady anomaly is
// visible through the facade alone.
func ExampleWithPolicy() {
	seq := assoccache.Sequence{1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5}
	for _, k := range []int{3, 4} {
		fifo, err := assoccache.NewFullyAssociative(k, assoccache.WithPolicy(assoccache.FIFO))
		if err != nil {
			panic(err)
		}
		fmt.Printf("k=%d misses=%d\n", k, assoccache.Run(fifo, seq).Misses)
	}
	// Output:
	// k=3 misses=9
	// k=4 misses=10
}

// Belady's offline optimum lower-bounds every online policy.
func ExampleOptimalCost() {
	seq := assoccache.Sequence{1, 2, 3, 1, 2, 3}
	fmt.Println(assoccache.OptimalCost(2, seq))
	// Output: 4
}

// ClassifyMisses attributes each miss to the 3C taxonomy; a direct-mapped
// cache on a repeating working set shows pure conflict misses.
func ExampleClassifyMisses() {
	cache, err := assoccache.NewSetAssociative(64, 1, assoccache.WithSeed(3))
	if err != nil {
		panic(err)
	}
	seq := make(assoccache.Sequence, 0, 64*4)
	for pass := 0; pass < 4; pass++ {
		for i := 0; i < 64; i++ {
			seq = append(seq, assoccache.Item(i))
		}
	}
	b := assoccache.ClassifyMisses(seq, cache)
	fmt.Printf("compulsory=%d capacity=%d conflict>0: %v\n", b.Compulsory, b.Capacity, b.Conflict > 0)
	// Output: compulsory=64 capacity=0 conflict>0: true
}

// RecommendedAlpha returns the paper's advice: a small multiple of log₂ k.
func ExampleRecommendedAlpha() {
	fmt.Println(assoccache.RecommendedAlpha(1 << 10))
	fmt.Println(assoccache.RecommendedAlpha(1 << 20))
	// Output:
	// 64
	// 128
}

// The concurrent sharded cache is the paper's motivating software use case.
func ExampleNewConcurrent() {
	cache, err := assoccache.NewConcurrent(1024, 64)
	if err != nil {
		panic(err)
	}
	cache.Put(42, "answer")
	v, ok := cache.Get(42)
	fmt.Println(v, ok)
	// Output: answer true
}

// Rehashing makes set-associative LRU competitive on arbitrarily long
// sequences (Theorem 5); here it is simply enabled and observed.
func ExampleWithFullFlushRehash() {
	cache, err := assoccache.NewSetAssociative(64, 8,
		assoccache.WithSeed(1), assoccache.WithFullFlushRehash(32))
	if err != nil {
		panic(err)
	}
	for i := 0; i < 200; i++ {
		cache.Access(assoccache.Item(i)) // all cold: every access misses
	}
	fmt.Println(cache.Stats().Rehashes)
	// Output: 6
}
