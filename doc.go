// Package assoccache is a library for building and analyzing set-associative
// caches, reproducing Bender, Das, Farach-Colton and Tagliavini, "An
// Associativity Threshold Phenomenon in Set-Associative Caches" (SPAA 2023,
// arXiv:2304.04954).
//
// # The phenomenon
//
// An α-way set-associative cache of total size k partitions its slots into
// k/α buckets; a hash function assigns each item to one bucket, and each
// bucket runs its own replacement policy on α slots. Small α makes caches
// faster, simpler and more concurrent — but costs cache misses. The paper
// proves a sharp threshold at α = Θ(log k):
//
//   - For α = ω(log k), set-associative LRU matches fully associative LRU
//     (1-competitive with (1+Θ(√(log(k)/α)))-resource augmentation) on all
//     polynomially long request sequences, with high probability.
//   - For α = o(log k), no constant resource augmentation and no constant
//     competitive ratio rescue it: an oblivious adversary defeats the cache
//     with a sequence of length only O(k^1.01).
//   - On arbitrarily long sequences every fixed hash eventually loses, but
//     rehashing every poly(k) *misses* (full or incremental flushing)
//     restores (1+o(1))-competitiveness forever.
//
// # What the library provides
//
// The package exposes cache simulators (fully associative, set-associative,
// and set-associative with full-flush or incremental rehashing), the
// replacement policies the paper studies (LRU, LRU-K, LFU, FIFO, clock,
// reuse-distance, flush-when-full, random), Belady's offline OPT, 3C miss
// classification, and a thread-safe sharded cache for the paper's
// motivating concurrent-software-cache use case.
//
// The reproduction experiments E1–E19 (one per theorem/lemma/proposition;
// see DESIGN.md and EXPERIMENTS.md) live in internal/experiments and are
// runnable via cmd/assocbench or the benchmarks in bench_test.go.
//
// # The cache service
//
// The motivating use case is also built out to a real service boundary: a
// networked sharded cache. internal/wire defines a compact length-prefixed
// binary protocol (GET/SET/DEL/STATS/REHASH, batched pipelining);
// internal/server serves a concurrent.Cache over TCP; cmd/cached is the
// daemon and cmd/cacheload the closed-loop load generator, driven by
// internal/workload generators or recorded traces via internal/load. The
// concurrent cache supports *online* incremental rehashing — the Section
// 6.1 algorithm under per-bucket locks, so a live service can apply the
// paper's "rehash every poly(k) misses" schedule without a stop-the-world
// flush — and exposes per-shard stats plus a conflict-eviction counter
// (evictions that occurred while free slots existed elsewhere). The
// examples/server walkthrough and the internal/server benchmark sweep α end
// to end, making both sides of the threshold tradeoff (lock contention vs
// conflict misses) measurable over the wire.
//
// The service also scales horizontally. internal/cluster puts a
// consistent-hash ring (virtual nodes) in front of any number of cached
// nodes and routes through one pipelined connection per member
// (cmd/cachecluster, examples/cluster). The ring is the rehash story one
// level up: where a single node redraws its intra-node hash and migrates
// bucket contents incrementally, the cluster redraws its inter-node key
// placement on membership change, and consistent hashing bounds the
// movement to ~1/n of the key space — with RemoveNode draining the
// departing node's residents to their new owners under live traffic, every
// key moved or accounted for by an eviction counter, just as the
// incremental rehash accounts for its forced evictions.
//
// Keyspaces can be replicated: with cluster.Options{Replicas: R} every key
// lives on the ring's first R distinct owners, SETs fan out to all R (a
// configurable write quorum W must acknowledge), GETs fall back through
// the replica set on a miss or node failure, and stale replicas are
// re-SET in the background (read repair, flagged on the wire so servers
// count it apart from user traffic). A node crash then loses no reads —
// surviving owners keep serving, and RemoveNode retires the corpse
// without contacting it. R buys that availability at the price of R×
// resident memory and write fan-out, the cluster-level analogue of the
// paper's redundancy-versus-cost tradeoff. The load harness
// (internal/load) drives either topology in closed-loop mode or in an
// open-loop rate-paced mode whose latency percentiles are measured from
// intended send times, making them coordinated-omission-safe; it also
// reports the repair writes a replicated run generated.
//
// ARCHITECTURE.md holds the layer map, the migration invariants, and the
// full wire-protocol specification, which internal/wire's spec test keeps
// in lockstep with the implementation.
//
// # Quick start
//
//	cache, err := assoccache.NewSetAssociative(1<<14, assoccache.RecommendedAlpha(1<<14))
//	if err != nil { ... }
//	for _, block := range accesses {
//		if !cache.Access(block) {
//			// miss: fetch from backing store
//		}
//	}
//	fmt.Printf("miss ratio: %.3f\n", cache.Stats().MissRatio())
//
// See examples/ for runnable programs.
package assoccache
