package assoccache

import (
	"testing"

	"repro/internal/trace"
)

func TestQuickstartFlow(t *testing.T) {
	const k = 1 << 10
	cache, err := NewSetAssociative(k, RecommendedAlpha(k), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	seq := trace.RangeSeq(0, 512).Repeat(4)
	st := Run(cache, seq)
	if st.Accesses != uint64(len(seq)) {
		t.Fatalf("accesses = %d", st.Accesses)
	}
	// Working set (512) fits k=1024 easily at a healthy α: after the first
	// pass there should be almost no extra misses.
	if st.Misses > 600 {
		t.Fatalf("misses = %d, expected ≈ 512 compulsory", st.Misses)
	}
	if st.MissRatio() <= 0 {
		t.Fatal("miss ratio should be positive")
	}
}

func TestRecommendedAlpha(t *testing.T) {
	cases := []struct{ k, want int }{
		{1, 1},
		{2, 2},         // 4·log₂2 = 4 capped to k=2
		{1 << 10, 64},  // 4·10 = 40 → 64
		{1 << 14, 64},  // 4·14 = 56 → 64
		{1 << 20, 128}, // 4·20 = 80 → 128
	}
	for _, c := range cases {
		if got := RecommendedAlpha(c.k); got != c.want {
			t.Errorf("RecommendedAlpha(%d) = %d, want %d", c.k, got, c.want)
		}
	}
	// Must always divide capacity.
	for _, k := range []int{48, 96, 1000, 1 << 12} {
		a := RecommendedAlpha(k)
		if a < 1 || k%a != 0 {
			t.Errorf("RecommendedAlpha(%d) = %d does not divide", k, a)
		}
	}
}

func TestPolicyOption(t *testing.T) {
	for _, kind := range []PolicyKind{LRU, FIFO, Clock, LFU, LRU2, ReuseDistance} {
		c, err := NewSetAssociative(64, 4, WithPolicy(kind))
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		Run(c, trace.RangeSeq(0, 100))
		if c.Stats().Misses == 0 {
			t.Fatalf("%v: no misses on cold trace", kind)
		}
	}
}

func TestRehashOptions(t *testing.T) {
	ff, err := NewSetAssociative(64, 8, WithFullFlushRehash(32))
	if err != nil {
		t.Fatal(err)
	}
	incr, err := NewSetAssociative(64, 8, WithIncrementalRehash(32))
	if err != nil {
		t.Fatal(err)
	}
	broken, err := NewSetAssociative(64, 8, WithBrokenAccessRehash(32))
	if err != nil {
		t.Fatal(err)
	}
	seq := trace.RangeSeq(0, 200).Repeat(2)
	for name, c := range map[string]Cache{"ff": ff, "incr": incr, "broken": broken} {
		st := Run(c, seq)
		if st.Rehashes == 0 {
			t.Errorf("%s: expected rehashes", name)
		}
	}
}

func TestFullyAssociativeRejectsRehash(t *testing.T) {
	if _, err := NewFullyAssociative(8, WithFullFlushRehash(8)); err == nil {
		t.Fatal("rehash option on fully associative cache should error")
	}
	if _, err := NewFullyAssociative(0); err == nil {
		t.Fatal("capacity 0 should error")
	}
}

func TestModuloIndexingOption(t *testing.T) {
	c, err := NewSetAssociative(64, 1, WithModuloIndexing())
	if err != nil {
		t.Fatal(err)
	}
	// Contiguous items stripe perfectly under modulo: 64 items in 64
	// direct-mapped buckets → zero conflicts on repeat.
	seq := trace.RangeSeq(0, 64).Repeat(3)
	st := Run(c, seq)
	if st.Misses != 64 {
		t.Fatalf("modulo direct-mapped on contiguous scan: misses = %d, want 64", st.Misses)
	}
}

func TestOPTFacade(t *testing.T) {
	seq := trace.Sequence{1, 2, 3, 1, 2, 3}
	if got := OptimalCost(2, seq); got != 4 {
		t.Fatalf("OptimalCost = %d, want 4", got)
	}
	c := NewOPT(2, seq)
	st := Run(c, seq)
	if st.Misses != 4 {
		t.Fatalf("OPT run misses = %d, want 4", st.Misses)
	}
}

func TestClassifyMissesFacade(t *testing.T) {
	c, err := NewSetAssociative(64, 1, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	b := ClassifyMisses(trace.RangeSeq(0, 64).Repeat(4), c)
	if b.Compulsory != 64 {
		t.Fatalf("compulsory = %d", b.Compulsory)
	}
	if b.Conflict == 0 {
		t.Fatal("direct-mapped cache should show conflict misses")
	}
}

func TestConcurrentFacade(t *testing.T) {
	c, err := NewConcurrent(64, 8, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	c.Put(1, "v")
	if v, ok := c.Get(1); !ok || v != "v" {
		t.Fatalf("Get = %v/%v", v, ok)
	}
	if _, err := NewConcurrent(64, 8, WithPolicy(FIFO)); err == nil {
		t.Fatal("non-LRU concurrent cache should be rejected")
	}
}

func TestCompanionFacade(t *testing.T) {
	c, err := NewCompanion(64, 1, 16, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	seq := trace.RangeSeq(0, 60).Repeat(5)
	st := Run(c, seq)
	plain, err := NewSetAssociative(64, 1, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	plainSt := Run(plain, seq)
	if st.Misses > plainSt.Misses {
		t.Fatalf("companion cache (%d misses) worse than plain direct-mapped (%d)", st.Misses, plainSt.Misses)
	}
	if _, err := NewCompanion(64, 1, 16, WithFullFlushRehash(8)); err == nil {
		t.Fatal("rehash option on companion cache should error")
	}
}
