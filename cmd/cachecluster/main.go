// Command cachecluster runs cached as a horizontally scaled cluster: keys
// route to member nodes through a consistent-hash ring (internal/cluster)
// and each node is an independent α-way set-associative cache, so the
// paper's intra-node α tradeoff composes with inter-node balance.
//
// It either spawns N in-process nodes on loopback (-spawn, the zero-setup
// path) or points at already-running cached daemons (-addrs), drives them
// with the library's workload generators through the routing client, and
// reports aggregate throughput/latency plus a per-node table: replica-set
// ownership share, each node's own STATS deltas, its repair-write count
// and repair-queue high-water mark — the direct check that consistent
// hashing spreads both keys and load. A "server:" line merges every
// member's METRICS histograms (wire v5) into run-only GET/SET service-time
// p50/p99, printed next to the client-observed latency so transport cost
// and cache cost can be told apart.
//
// Usage:
//
//	cachecluster -spawn 3 -k 65536 -alpha 16 -workload zipf -ops 1000000
//	cachecluster -addrs h1:7070,h2:7070,h3:7070 -workload uniform -conns 8
//	cachecluster -spawn 4 -open -rate 200000 -duration 30s
//	cachecluster -spawn 3 -replicas 2 -write-quorum 1 -workload zipf
//	cachecluster -addrs h1:7070 -bootstrap -workload zipf
//	cachecluster -spawn 3 -workload zipf -zipf-s 1.4 -leases -near-slots 1024
//
// With -bootstrap the -addrs list is treated as seeds only: the actual
// membership is discovered from the highest-epoch MEMBERS view any seed
// reports, so pointing at a single member of an established cluster is
// enough to drive all of it. The balance table is stamped with the
// topology epoch the run ended at, and the client line reports how many
// topology refreshes the routers performed mid-run (nonzero means the
// membership changed underneath the run and the routers converged on
// their own).
//
// With -replicas R each key lives on R distinct owners: SETs fan out to
// all R (W of them, -write-quorum, must acknowledge), GETs fall back
// through the replica set on a miss or node failure, and stale replicas
// are repaired in the background. Per-node residency then sums to R× the
// distinct keys, which is why the balance table reports each node's share
// of replica-set slots (summing to 100%) rather than a per-key share.
//
// With -leases every worker's GETs go out as GETL (wire v7): a miss hands
// exactly one caller cluster-wide a fill lease and concurrent missers
// briefly wait for that fill or are served the key's last known value
// flagged stale, so a cold or invalidated hot key costs O(1) origin
// loads instead of one per storming client. -near-slots N adds a bounded
// per-worker near-cache, version-invalidated by the piggybacked per-key
// versions, which absorbs a hot key's repeat reads before they reach the
// wire at all; -near-ttl bounds its staleness budget. The run report adds
// a "leases:" line (client-side tallies) and a "srv leases:" line (the
// members' grant/expiry/stale-serve counters).
//
// With -open -rate R the harness uses the open-loop rate-paced schedule
// with coordinated-omission-safe percentiles (see internal/load). -rehash
// fans an online REHASH out to every member before the run.
//
// With -trace-sample N every worker stamps every N-th of its batches
// with a sampled trace context (wire v6): each member records a span per
// hop it served, and after the run the harness joins the slowest traced
// slow op's spans across nodes — the cross-node path of one sampled
// request, queue waits included. Independently of sampling, every run
// ends with the cluster-wide hot-key table: the merged top-K key sketch
// per op class (GET/SET/DEL/EVICT), which is where a hot-key storm or a
// conflict-pressure key shows up by name (well, by key hash).
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/concurrent"
	"repro/internal/load"
	"repro/internal/policy"
	"repro/internal/server"
	"repro/internal/telemetry"
	"repro/internal/wire"
	"repro/internal/workload"
)

func main() {
	var (
		spawn    = flag.Int("spawn", 0, "spawn this many in-process nodes on loopback")
		addrs    = flag.String("addrs", "", "comma-separated addresses of running cached nodes (alternative to -spawn)")
		boot     = flag.Bool("bootstrap", false, "treat -addrs as seeds: discover the membership via MEMBERS")
		vnodes   = flag.Int("vnodes", 0, "virtual nodes per member on the ring (0 = default)")
		replicas = flag.Int("replicas", 0, "owners per key R (0 or 1 = unreplicated)")
		quorum   = flag.Int("write-quorum", 0, "owners that must ack a SET, W of R (0 = all R)")
		k        = flag.Int("k", 1<<16, "per-node cache capacity (spawned nodes)")
		alpha    = flag.Int("alpha", 16, "per-node set size α (spawned nodes)")
		polName  = flag.String("policy", "lru", "per-bucket replacement policy (spawned nodes)")
		seed     = flag.Uint64("seed", 1, "hash/workload seed")
		conns    = flag.Int("conns", 4, "concurrent router clients (workers)")
		ops      = flag.Int("ops", 1_000_000, "total GET operations")
		pipeline = flag.Int("pipeline", 16, "requests per round trip")
		valSize  = flag.Int("valsize", 64, "value payload bytes for read-through SETs")
		wl       = flag.String("workload", "zipf", "uniform|zipf|scan")
		universe = flag.Int("universe", 1<<18, "workload universe size")
		zipfS    = flag.Float64("zipf-s", 0.99, "zipf skew exponent")
		readThru = flag.Bool("readthrough", true, "SET every missed key (read-through)")
		verify   = flag.Bool("verify", true, "verify hit payloads carry their key")
		rehash   = flag.Bool("rehash", false, "fan REHASH out to all members before the run")
		open     = flag.Bool("open", false, "open-loop mode: rate-paced arrivals, coordinated-omission-safe percentiles")
		rate     = flag.Float64("rate", 0, "intended aggregate GET rate in ops/sec (open-loop mode, required)")
		duration = flag.Duration("duration", 0, "stop issuing after this long (open-loop mode; 0 = when ops are exhausted)")
		traceSm  = flag.Int("trace-sample", 0, "stamp every Nth batch per worker with a sampled trace context (0 = tracing off)")
		leases   = flag.Bool("leases", false, "lease/singleflight misses (wire v7 GETL): one fill per cold key cluster-wide, concurrent missers wait or eat a stale hint")
		nearSl   = flag.Int("near-slots", 0, "per-worker near-cache slots (0 = off): serve repeat reads in-process, version-invalidated")
		nearTTL  = flag.Duration("near-ttl", 0, "near-cache entry TTL (0 = default); the staleness budget granted to the client edge")
		antiEnt  = flag.Duration("anti-entropy", 0, "background anti-entropy sweep period (wire v8, 0 = off): compare replica record sets and repair divergence, tombstones included")
	)
	flag.Parse()

	if err := validateFlags(*spawn, *addrs, *boot, *replicas, *quorum, *vnodes, *conns, *ops, *pipeline, *valSize, *universe, *open, *rate, *duration); err != nil {
		fatal(err)
	}

	members, cleanup, err := buildMembers(*spawn, *addrs, *k, *alpha, *polName, *seed)
	if err != nil {
		fatal(err)
	}
	defer cleanup()

	// The replication configuration was validated against the member count
	// up front (validateFlags); under -bootstrap the membership is only
	// known after discovery, so cluster.Dial re-checks it there.
	if *traceSm < 0 {
		fatal(fmt.Errorf("-trace-sample %d: sampling interval must not be negative", *traceSm))
	}
	if *nearSl < 0 {
		fatal(fmt.Errorf("-near-slots %d: slot count must not be negative", *nearSl))
	}
	if *nearTTL < 0 {
		fatal(fmt.Errorf("-near-ttl %v: TTL must not be negative", *nearTTL))
	}
	if *antiEnt < 0 {
		fatal(fmt.Errorf("-anti-entropy %v: sweep period must not be negative", *antiEnt))
	}
	opts := cluster.Options{
		VNodes: *vnodes, Replicas: *replicas, WriteQuorum: *quorum, Bootstrap: *boot,
		TraceSample: *traceSm, Leases: *leases,
		NearCache:   cluster.NearCacheOptions{Slots: *nearSl, TTL: *nearTTL},
		AntiEntropy: *antiEnt,
	}
	ctl, err := cluster.Dial(members, opts)
	if err != nil {
		fatal(err)
	}
	defer ctl.Close()
	if *rehash {
		if err := ctl.RehashAll(); err != nil {
			fatal(err)
		}
		fmt.Println("online rehash requested on all members")
	}
	before, err := ctl.StatsAll(false)
	if err != nil {
		fatal(err)
	}
	// Flight-recorder baseline, so the server-side percentiles printed
	// below cover this run only, not whatever the daemons served before
	// (histogram buckets are monotone counters, so before/after subtracts
	// exactly).
	msBefore, err := ctl.MetricsAll(wire.MetricsHistograms)
	if err != nil {
		fatal(err)
	}

	var gen workload.Generator
	switch *wl {
	case "uniform":
		gen = workload.Uniform{Universe: *universe}
	case "zipf":
		gen = workload.Zipf{Universe: *universe, S: *zipfS, Shuffle: true}
	case "scan":
		gen = workload.Scan{Universe: *universe}
	default:
		fatal(fmt.Errorf("unknown workload %q", *wl))
	}
	keys := gen.Generate(*ops, *seed)

	res, err := load.Run(load.Config{
		Dial:        func() (load.Conn, error) { return cluster.Dial(members, opts) },
		Conns:       *conns,
		Keys:        keys,
		Pipeline:    *pipeline,
		ValueSize:   *valSize,
		ReadThrough: *readThru,
		Verify:      *verify,
		OpenLoop:    *open,
		Rate:        *rate,
		Duration:    *duration,
	})
	if err != nil {
		fatal(err)
	}

	mode := "closed-loop"
	if res.OpenLoop {
		mode = fmt.Sprintf("open-loop @ %.0f ops/s intended", res.IntendedRate)
	}
	if *replicas > 1 {
		w := *quorum
		if w == 0 {
			w = *replicas
		}
		mode += fmt.Sprintf(", R=%d W=%d", *replicas, w)
	}
	if *leases {
		mode += ", leases"
	}
	if *nearSl > 0 {
		mode += fmt.Sprintf(", near=%d", *nearSl)
	}
	fmt.Printf("cluster of %d nodes, workload %s: %d ops over %d conns (pipeline %d, %s) in %v\n",
		len(members), gen.Name(), res.Ops, *conns, *pipeline, mode, res.Elapsed.Round(time.Millisecond))
	fmt.Printf("  throughput: %12.0f GET/s\n", res.Throughput)
	lat := ""
	if res.OpenLoop {
		lat = ", from intended send time"
	}
	fmt.Printf("  latency:    p50=%v p90=%v p99=%v max=%v (per %d-deep batch%s)\n",
		res.Latency.P50, res.Latency.P90, res.Latency.P99, res.Latency.Max, *pipeline, lat)
	fmt.Printf("  client:     hits=%d misses=%d (miss ratio %.4f) sets=%d repairs=%d stale=%d refreshes=%d corrupt=%d\n",
		res.Hits, res.Misses, res.MissRatio(), res.Sets, res.Repairs, res.StaleRepairs, res.Refreshes, res.Corrupt)
	fmt.Printf("  memory:     %.2f allocs/op, gc-pause %v (harness process)\n",
		res.AllocsPerOp, res.GCPause.Round(time.Microsecond))
	if *leases || *nearSl > 0 {
		fmt.Printf("  leases:     nearhits=%d stalehints=%d grants=%d lost=%d waits=%d\n",
			res.NearHits, res.StaleHints, res.LeaseGrants, res.LeaseLost, res.LeaseWaits)
	}

	msAfter, err := ctl.MetricsAll(wire.MetricsHistograms)
	if err != nil {
		fatal(err)
	}
	printServerLatency(msBefore, msAfter)

	after, err := ctl.StatsAll(false)
	if err != nil {
		fatal(err)
	}
	printBalance(ctl, before, after)

	agg := cluster.AggregateStats(after)
	fmt.Printf("  aggregate:  len=%d/%d evictions=%d conflict=%d flush=%d rehashes=%d sets=%d repairs=%d stale=%d qhi=%d migrating=%v\n",
		agg.Len, agg.Capacity, agg.Evictions, agg.ConflictEvictions,
		agg.FlushEvictions, agg.Rehashes, agg.Sets, agg.RepairSets, agg.StaleRepairs,
		agg.RepairQueueHighWater, agg.Migrating)
	if agg.LeasesGranted+agg.LeasesExpired+agg.StaleServes > 0 {
		fmt.Printf("  srv leases: granted=%d expired=%d staleserves=%d (summed over cluster)\n",
			agg.LeasesGranted, agg.LeasesExpired, agg.StaleServes)
	}

	// Hot keys are recorded regardless of sampling; spans and the trace
	// join exist only when -trace-sample stamped some batches.
	msHot, err := ctl.MetricsAll(wire.MetricsHotKeys | wire.MetricsTraces | wire.MetricsSlowOps)
	if err != nil {
		fatal(err)
	}
	aggHot := cluster.AggregateMetrics(msHot)
	printHotKeys(aggHot)
	if *traceSm > 0 {
		printTraceJoin(msHot, aggHot)
	}
}

// printHotKeys tabulates the merged space-saving sketch per op class: the
// cluster-wide top keys by GET/SET/DEL traffic and by conflict-eviction
// pressure. Counts are union-and-sum over the members, so a key that is
// hot on every replica ranks by its total cluster traffic; Err is the
// sketch's per-key overestimate bound (true count ≥ Count − Err). Keys
// print as the scrambled 64-bit hashes the servers store — the sketch
// never sees raw keys.
func printHotKeys(agg *wire.Metrics) {
	if len(agg.HotKeys) == 0 {
		return
	}
	fmt.Printf("  hot keys (top 5 per class, merged over cluster; keyhash×count, ±err):\n")
	for _, hc := range agg.HotKeys {
		top := hc.Keys.Top(5)
		parts := make([]string, len(top))
		for i, e := range top {
			parts[i] = fmt.Sprintf("%016x×%d±%d", e.Key, e.Count, e.Err)
		}
		fmt.Printf("    %-5s %s\n", wire.HotClassName(hc.Class), strings.Join(parts, "  "))
	}
}

// printTraceJoin reconstructs one sampled request's cross-node path: it
// picks the slowest slow op that carries a trace ID, collects every span
// recorded under that ID on any member, and prints them in time order
// with the node that served each hop. An async repair hop shows its
// queue wait separately from its apply time — the deferred half of a
// traced write. Nothing prints if no traced op crossed the slow-op
// threshold and no spans were sampled.
func printTraceJoin(all map[string]*wire.Metrics, agg *wire.Metrics) {
	var tid telemetry.TraceID
	var worst uint64
	for _, r := range agg.SlowOps {
		if !r.TraceID.IsZero() && r.DurationNanos > worst {
			worst = r.DurationNanos
			tid = r.TraceID
		}
	}
	if tid.IsZero() && len(agg.Spans) > 0 {
		// No traced slow op: fall back to the trace with the most hops,
		// which the aggregate keeps contiguous.
		var bestLen, runLen int
		var run telemetry.TraceID
		for _, sp := range agg.Spans {
			if sp.TraceID != run {
				run, runLen = sp.TraceID, 0
			}
			runLen++
			if runLen > bestLen {
				bestLen, tid = runLen, run
			}
		}
	}
	if tid.IsZero() {
		return
	}
	type hop struct {
		node string
		sp   telemetry.Span
	}
	var hops []hop
	for addr, m := range all {
		for _, sp := range m.Spans {
			if sp.TraceID == tid {
				hops = append(hops, hop{addr, sp})
			}
		}
	}
	sort.Slice(hops, func(i, j int) bool { return hops[i].sp.UnixNanos < hops[j].sp.UnixNanos })
	fmt.Printf("  trace %s joined across the cluster (%d hops):\n", tid, len(hops))
	const maxHops = 10 // a traced batch is one trace, so a deep pipeline means many hops
	if len(hops) > maxHops {
		fmt.Printf("    (first %d of %d — the whole batch shares the trace)\n", maxHops, len(hops))
		hops = hops[:maxHops]
	}
	for _, h := range hops {
		line := fmt.Sprintf("    %-22s %-4s %-13s %10v", h.node,
			wire.Op(h.sp.Op), wire.Status(h.sp.Status), time.Duration(h.sp.DurationNanos))
		if h.sp.QueueWaitNanos > 0 {
			line += fmt.Sprintf("  after %v in the repair queue", time.Duration(h.sp.QueueWaitNanos))
		}
		fmt.Println(line)
	}
}

// printServerLatency merges every member's METRICS histograms and prints
// the run's server-side GET/SET service-time percentiles — what the
// servers spent per op between decoding a request and encoding its
// response. Read next to the client latency line: the client numbers are
// per pipelined batch and include the network and any queueing, so the gap
// between the two is transport and batching, not cache work.
func printServerLatency(before, after map[string]*wire.Metrics) {
	aggB, aggA := cluster.AggregateMetrics(before), cluster.AggregateMetrics(after)
	parts := []string{}
	for _, op := range []wire.Op{wire.OpGet, wire.OpSet} {
		d := histDelta(aggA.Hist(byte(op)), aggB.Hist(byte(op)))
		if d == nil || d.Count == 0 {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s p50=%v p99=%v", op, d.Quantile(0.50), d.Quantile(0.99)))
	}
	if len(parts) == 0 {
		return
	}
	fmt.Printf("  server:     %s (service time per op, merged over %d nodes)\n",
		strings.Join(parts, " | "), len(after))
}

// histDelta subtracts one cumulative histogram snapshot from a later one
// of the same histogram; every field is a monotone counter, so the
// difference is exactly the samples recorded in between.
func histDelta(a, b *telemetry.HistogramSnapshot) *telemetry.HistogramSnapshot {
	if a == nil {
		return nil
	}
	d := *a
	if b != nil {
		d.Count -= b.Count
		d.Sum -= b.Sum
		for i := range d.Buckets {
			d.Buckets[i] -= b.Buckets[i]
		}
	}
	return &d
}

// printBalance tabulates, per member, its share of replica-set slots over a
// key sample against the traffic the servers actually absorbed during the
// run. Shares are per replica-set slot — divided by samples × R, not by
// samples — so they sum to 100% even when every key resides on R members;
// a per-key denominator would report R× the true residency share. qhi is
// the repair queue's high-water mark since the daemon started (a level,
// not a delta — it proves the queue was occupied even after it drained).
// The table header carries the topology epoch the view was sampled at, and the
// members come from the router's current view (which under -bootstrap, or
// after a mid-run membership change, is the discovered one rather than the
// command line's).
func printBalance(ctl *cluster.Client, before, after map[string]*wire.Stats) {
	const samples = 1 << 16
	share, replicas := ctl.OwnerSample(samples, 42)
	fmt.Printf("  balance at topology epoch %d:\n", ctl.Epoch())
	fmt.Printf("  %-22s %7s %12s %12s %10s %8s %6s %10s\n", "node", "share%", "Δhits", "Δmisses", "Δrepairs", "Δstale", "qhi", "len")
	for _, m := range ctl.Nodes() {
		b, a := before[m], after[m]
		if b == nil || a == nil {
			fmt.Printf("  %-22s %6.1f%%  (joined mid-run; no stats delta)\n",
				m, 100*float64(share[m])/float64(samples*replicas))
			continue
		}
		fmt.Printf("  %-22s %6.1f%% %12d %12d %10d %8d %6d %10d\n",
			m, 100*float64(share[m])/float64(samples*replicas),
			a.Hits-b.Hits, a.Misses-b.Misses, a.RepairSets-b.RepairSets,
			a.StaleRepairs-b.StaleRepairs, a.RepairQueueHighWater, a.Len)
	}
}

// buildMembers spawns in-process nodes or parses -addrs.
func buildMembers(spawn int, addrs string, k, alpha int, polName string, seed uint64) ([]string, func(), error) {
	if addrs != "" {
		return strings.Split(addrs, ","), func() {}, nil
	}
	kind, err := policy.ParseKind(polName)
	if err != nil {
		return nil, nil, err
	}
	var members []string
	var servers []*server.Server
	cleanup := func() {
		for _, s := range servers {
			s.Close()
		}
	}
	for i := 0; i < spawn; i++ {
		cache, err := concurrent.New(concurrent.Config{
			Capacity: k,
			Alpha:    alpha,
			Seed:     seed + uint64(i),
			Policy:   policy.NewFactory(kind, seed+uint64(i)),
		})
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		srv := server.New(cache)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		go srv.Serve(ln)
		servers = append(servers, srv)
		members = append(members, ln.Addr().String())
	}
	fmt.Printf("spawned %d in-process nodes (k=%d α=%d policy=%s each): %s\n",
		spawn, k, alpha, kind, strings.Join(members, " "))
	return members, cleanup, nil
}

// validateFlags rejects nonsensical parameters up front with a clear
// error — including the replication configuration against the member
// count, which used to surface only as a late cluster.Dial error after the
// nodes had already been spawned; the harness flags shared with cacheload
// are checked by load.ValidateHarnessFlags.
func validateFlags(spawn int, addrs string, boot bool, replicas, quorum, vnodes, conns, ops, pipeline, valSize, universe int, open bool, rate float64, duration time.Duration) error {
	switch {
	case spawn < 0:
		return fmt.Errorf("-spawn %d: node count must not be negative", spawn)
	case spawn == 0 && addrs == "":
		return fmt.Errorf("need members: -spawn N or -addrs a,b,c")
	case spawn > 0 && addrs != "":
		return fmt.Errorf("-spawn and -addrs are mutually exclusive")
	case boot && addrs == "":
		return fmt.Errorf("-bootstrap needs seed addresses: -addrs a[,b,...]")
	case vnodes < 0:
		return fmt.Errorf("-vnodes %d: virtual node count must not be negative", vnodes)
	}
	if !boot {
		// Under -bootstrap the membership is discovered, not declared, so
		// only cluster.Dial can check R/W against it.
		n := spawn
		if addrs != "" {
			n = len(strings.Split(addrs, ","))
		}
		if err := cluster.ValidateReplication(replicas, quorum, n); err != nil {
			return err
		}
	}
	return load.ValidateHarnessFlags(conns, ops, pipeline, valSize, universe, open, rate, duration)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "cachecluster: %v\n", err)
	os.Exit(1)
}
