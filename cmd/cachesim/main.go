// Command cachesim replays a binary trace (see cmd/tracegen) through a
// configurable cache and reports hit/miss statistics and the 3C miss
// breakdown.
//
// Usage:
//
//	cachesim -k 4096 -alpha 64 -policy lru trace.satr
//	cachesim -k 4096 -alpha 64 -rehash fullflush -every 65536 trace.satr
//	cachesim -k 4096 -full -policy lfu trace.satr           # fully associative
//	cachesim -k 4096 -opt trace.satr                        # Belady's optimum
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/companion"
	"repro/internal/core"
	"repro/internal/hashfn"
	"repro/internal/metrics"
	"repro/internal/mirror"
	"repro/internal/opt"
	"repro/internal/policy"
	"repro/internal/trace"
)

func main() {
	var (
		k       = flag.Int("k", 1<<12, "total cache capacity")
		alpha   = flag.Int("alpha", 64, "set size α (must divide k)")
		polName = flag.String("policy", "lru", "lru|fifo|clock|lfu|lru2|lru3|reusedist|random|flushwhenfull")
		full    = flag.Bool("full", false, "fully associative instead of set-associative")
		useOpt  = flag.Bool("opt", false, "run Belady's offline OPT (fully associative)")
		rehash  = flag.String("rehash", "none", "none|fullflush|incremental")
		every   = flag.Uint64("every", 0, "rehash every N misses (required with -rehash)")
		modulo  = flag.Bool("modulo", false, "use weak modulo indexing (ablation)")
		seed    = flag.Uint64("seed", 1, "hash seed")
		classes = flag.Bool("3c", true, "print the 3C miss breakdown (set-associative only)")
		comp    = flag.Int("companion", 0, "add a fully associative companion (victim) cache of N slots")
		mirrorK = flag.Int("mirror", 0, "mirror a fully associative simulation of N slots instead of native eviction")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cachesim [flags] trace.satr")
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	seq, err := trace.Read(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fatal(err)
	}

	if *useOpt {
		cost := opt.Cost(*k, seq)
		fmt.Printf("OPT_%d: %d misses over %d accesses (ratio %.4f)\n",
			*k, cost, len(seq), float64(cost)/float64(len(seq)))
		return
	}

	kind, err := policy.ParseKind(*polName)
	if err != nil {
		fatal(err)
	}
	factory := policy.NewFactory(kind, *seed)

	if *full {
		c := core.NewFullAssoc(factory, *k)
		report(core.RunSequence(c, seq), fmt.Sprintf("fully associative %s (k=%d)", kind, *k))
		return
	}

	if *comp > 0 {
		cc, err := companion.New(companion.Config{
			MainCapacity: *k, Alpha: *alpha, CompanionCapacity: *comp,
			Factory: factory, Seed: *seed,
		})
		if err != nil {
			fatal(err)
		}
		report(core.RunSequence(cc, seq),
			fmt.Sprintf("%d-way %s + %d-slot companion (main k=%d)", *alpha, kind, *comp, *k))
		fmt.Printf("  companion hits: %d (conflict misses absorbed)\n", cc.CompanionHits())
		return
	}

	if *mirrorK > 0 {
		m, err := mirror.New(mirror.Config{
			Capacity: *k, Alpha: *alpha, SimCapacity: *mirrorK,
			Factory: factory, Seed: *seed,
		})
		if err != nil {
			fatal(err)
		}
		report(core.RunSequence(m, seq),
			fmt.Sprintf("%d-way mirror of fully associative %s_%d (k=%d)", *alpha, kind, *mirrorK, *k))
		fmt.Printf("  forced overflows: %d\n", m.Overflows())
		return
	}

	cfg := core.SetAssocConfig{Capacity: *k, Alpha: *alpha, Factory: factory, Seed: *seed}
	switch *rehash {
	case "none":
	case "fullflush":
		cfg.Rehash = core.RehashConfig{Mode: core.RehashFullFlush, EveryMisses: *every}
	case "incremental":
		cfg.Rehash = core.RehashConfig{Mode: core.RehashIncremental, EveryMisses: *every}
	default:
		fatal(fmt.Errorf("unknown rehash mode %q", *rehash))
	}
	if *modulo {
		cfg.NewHasher = func(seed uint64, n int) hashfn.Hasher { return hashfn.NewModulo(seed, n) }
	}
	sa, err := core.NewSetAssoc(cfg)
	if err != nil {
		fatal(err)
	}

	label := fmt.Sprintf("%d-way set-associative %s (k=%d, %d buckets, rehash=%s)",
		*alpha, kind, *k, *k / *alpha, *rehash)
	if *classes {
		b := metrics.Classify(seq, sa)
		report(sa.Stats(), label)
		fmt.Printf("  compulsory: %10d\n  capacity:   %10d\n  conflict:   %10d (%.4f of accesses)\n",
			b.Compulsory, b.Capacity, b.Conflict, b.ConflictRatio())
	} else {
		report(core.RunSequence(sa, seq), label)
	}
}

func report(st core.Stats, label string) {
	fmt.Printf("%s\n  accesses:   %10d\n  hits:       %10d\n  misses:     %10d (ratio %.4f)\n  evictions:  %10d\n",
		label, st.Accesses, st.Hits, st.Misses, st.MissRatio(), st.Evictions)
	if st.Rehashes > 0 {
		fmt.Printf("  rehashes:   %10d\n  flush-evict:%10d\n", st.Rehashes, st.FlushEvictions)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "cachesim: %v\n", err)
	os.Exit(1)
}
