// Command benchrun produces the repo's standing benchmark trajectory: one
// fixed-seed pass over the telemetry microbenchmarks and a small matrix of
// end-to-end load scenarios (one node and a 3-node cluster, closed- and
// open-loop, the cluster again with 1/64 request tracing so the
// tracing price tag is a standing column, and the cluster again with the
// v7 lease/near-cache miss path on so herd suppression has one too),
// emitted as a single JSON document. Every scenario is preceded by an unmeasured warm-up pass over
// the same key stream, so the numbers are steady state and the -short
// sizing is comparable to the full one. The committed BENCH_*.json files
// at the repo root are its output, one per PR that moved performance, so
// regressions are visible in review as a diff rather than a feeling.
//
// Usage:
//
//	benchrun -o BENCH_7.json
//	benchrun -short -baseline BENCH_7.json   # CI smoke: seconds, not minutes
//
// The alloc columns are a gate, not a report: if any hot-path telemetry
// operation (histogram Record, counter Add, high-water Set, slow-op
// Append, hot-key sketch Record, span-ring Append) allocates, benchrun
// exits nonzero. The same discipline covers the wire hot path itself: a
// round_trip section prices one steady-state loopback GET/SET round trip
// with testing.AllocsPerRun — which counts process-global mallocs, so
// both the client codec and the server goroutine are inside the gate —
// and benchrun exits nonzero if the zero-copy GET (GetShared) or the
// 16-deep GET batch allocates at all, or plain Get/Set exceed their
// documented copy counts (1 and 2). Each scenario also reports
// allocs/op and total GC pause over the measured pass. So is the
// overhead column: if histogram Record costs
// more than 5% of the server-side GET median in any scenario, benchrun
// exits nonzero rather than printing a number over budget. With
// -baseline it also diffs this run's throughput against a committed
// BENCH_*.json and fails on a >15% GET throughput regression — unless
// the baseline came from a different Go version or GOMAXPROCS, in which
// case the diff is skipped with a notice, because cross-machine numbers
// are labels, not gates. CI runs the -short mode with -baseline on every
// push, so an alloc or throughput regression fails the build before it
// can reach a committed trajectory.
//
// Throughput and latency numbers are machine-dependent; the JSON carries
// GOMAXPROCS and the Go version so a trajectory diff across commits from
// the same machine is meaningful and one across machines is labelled. The
// document deliberately contains no wall-clock timestamp: reruns on the
// same tree should diff only where performance moved.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/concurrent"
	"repro/internal/load"
	"repro/internal/server"
	"repro/internal/telemetry"
	"repro/internal/wire"
	"repro/internal/workload"
)

type report struct {
	Bench       string     `json:"bench"`
	WireVersion int        `json:"wire_version"`
	GoVersion   string     `json:"go_version"`
	GOMAXPROCS  int        `json:"gomaxprocs"`
	Seed        uint64     `json:"seed"`
	Short       bool       `json:"short"`
	Telemetry   telemetryR `json:"telemetry"`
	RoundTrip   roundTripR `json:"round_trip"`
	Scenarios   []scenario `json:"scenarios"`
}

// roundTripR prices one steady-state loopback round trip end to end, via
// testing.AllocsPerRun over an in-process server — process-global malloc
// counting puts both the client codec and the server goroutine inside the
// number. GetShared is the zero-copy read (the contract is 0); plain Get
// adds exactly its one documented copy; Set carries the server's two
// inherent allocations (copy-to-retain + entry header); the 16-deep GET
// batch is priced per batch and must be allocation-free.
type roundTripR struct {
	GetSharedAllocsPerOp float64 `json:"get_shared_allocs_per_op"`
	GetAllocsPerOp       float64 `json:"get_allocs_per_op"`
	SetAllocsPerOp       float64 `json:"set_allocs_per_op"`
	GetBatchAllocsPerOp  float64 `json:"get_batch16_allocs_per_batch"`
	GetNsPerOp           float64 `json:"get_ns_per_op"`
	GetBatchNsPerKey     float64 `json:"get_batch16_ns_per_key"`
}

// telemetryR is the microbenchmark row for the instrumentation itself:
// what one sample costs on the hot path, and the proof it never allocates.
type telemetryR struct {
	RecordNsPerOp      float64 `json:"record_ns_per_op"`
	RecordAllocsPerOp  float64 `json:"record_allocs_per_op"`
	CounterAllocsPerOp float64 `json:"counter_allocs_per_op"`
	HighWaterAllocs    float64 `json:"highwater_allocs_per_op"`
	SlowLogAllocs      float64 `json:"slowlog_allocs_per_op"`
	TopKRecordNsPerOp  float64 `json:"topk_record_ns_per_op"`
	TopKAllocsPerOp    float64 `json:"topk_allocs_per_op"`
	SpanAppendNsPerOp  float64 `json:"span_append_ns_per_op"`
	SpanAllocsPerOp    float64 `json:"span_allocs_per_op"`
	SnapshotNsPerOp    float64 `json:"snapshot_ns_per_op"`
}

type scenario struct {
	Name       string  `json:"name"`
	Nodes      int     `json:"nodes"`
	OpenLoop   bool    `json:"open_loop"`
	RateOpsSec float64 `json:"rate_ops_per_sec,omitempty"`
	Ops        int     `json:"ops"`
	Conns      int     `json:"conns"`
	Pipeline   int     `json:"pipeline"`
	Throughput float64 `json:"throughput_gets_per_sec"`
	MissRatio  float64 `json:"miss_ratio"`
	Client     latNs   `json:"client_latency_per_batch_ns"`
	Server     svrSide `json:"server"`
	// Lease columns, present on the leased row only: how the v7 miss path
	// split the same storm — near-cache absorption, fill leases won, and
	// misses absorbed by waiting or stale hints instead of origin loads.
	NearHits    int `json:"near_hits,omitempty"`
	LeaseGrants int `json:"lease_grants,omitempty"`
	StaleHints  int `json:"stale_hints,omitempty"`
	LeaseWaits  int `json:"lease_waits,omitempty"`
	// RecordOverheadPctOfGetP50 prices the instrumentation against the
	// work it measures: one histogram Record per op, as a percentage of the
	// server-side GET median. The <5%% budget from the issue is judged on
	// this column.
	RecordOverheadPctOfGetP50 float64 `json:"record_overhead_pct_of_get_p50"`
	// AllocsPerOp and GCPauseNs are the harness process's allocation rate
	// and total stop-the-world pause over the measured pass (see
	// load.Result); in-process servers and routers are inside the number.
	AllocsPerOp float64 `json:"allocs_per_op"`
	GCPauseNs   int64   `json:"gc_pause_ns"`
}

type latNs struct {
	P50 int64 `json:"p50"`
	P90 int64 `json:"p90"`
	P99 int64 `json:"p99"`
	Max int64 `json:"max"`
}

// svrSide is the flight recorder's view of the same run, read back over
// the wire with METRICS: service time per op (request decoded → response
// encoded), not round-trip.
type svrSide struct {
	Get      histNs `json:"get"`
	Set      histNs `json:"set"`
	BytesIn  uint64 `json:"bytes_in"`
	BytesOut uint64 `json:"bytes_out"`
}

type histNs struct {
	Count  uint64 `json:"count"`
	MeanNs int64  `json:"mean_ns"`
	P50Ns  int64  `json:"p50_ns"`
	P99Ns  int64  `json:"p99_ns"`
}

func main() {
	var (
		short    = flag.Bool("short", false, "CI smoke sizing: a few seconds total")
		out      = flag.String("o", "", "write the JSON report here (default stdout)")
		seed     = flag.Uint64("seed", 1, "hash/workload seed (fixed for reproducible key streams)")
		baseline = flag.String("baseline", "", "committed BENCH_*.json to diff against: fail on a >15% GET throughput regression")
	)
	flag.Parse()

	rep := report{
		Bench:       "benchrun",
		WireVersion: wire.Version,
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Seed:        *seed,
		Short:       *short,
	}
	rep.Telemetry = benchTelemetry()
	if rep.Telemetry.RecordAllocsPerOp != 0 || rep.Telemetry.CounterAllocsPerOp != 0 ||
		rep.Telemetry.HighWaterAllocs != 0 || rep.Telemetry.SlowLogAllocs != 0 ||
		rep.Telemetry.TopKAllocsPerOp != 0 || rep.Telemetry.SpanAllocsPerOp != 0 {
		emit(rep, *out)
		fatal(fmt.Errorf("telemetry hot path allocates (record=%.1f counter=%.1f highwater=%.1f slowlog=%.1f topk=%.1f span=%.1f allocs/op); the flight recorder must be allocation-free",
			rep.Telemetry.RecordAllocsPerOp, rep.Telemetry.CounterAllocsPerOp,
			rep.Telemetry.HighWaterAllocs, rep.Telemetry.SlowLogAllocs,
			rep.Telemetry.TopKAllocsPerOp, rep.Telemetry.SpanAllocsPerOp))
	}

	rt, err := benchRoundTrip(*seed)
	if err != nil {
		fatal(err)
	}
	rep.RoundTrip = rt
	fmt.Fprintf(os.Stderr, "benchrun: round trip GET %.0fns/op, batch16 %.0fns/key; allocs/op get_shared=%.2f get=%.2f set=%.2f batch16=%.2f\n",
		rt.GetNsPerOp, rt.GetBatchNsPerKey,
		rt.GetSharedAllocsPerOp, rt.GetAllocsPerOp, rt.SetAllocsPerOp, rt.GetBatchAllocsPerOp)
	if rt.GetSharedAllocsPerOp > 0.1 || rt.GetBatchAllocsPerOp > 0.1 ||
		rt.GetAllocsPerOp > 1.1 || rt.SetAllocsPerOp > 2.1 {
		emit(rep, *out)
		fatal(fmt.Errorf("wire round trip allocates (get_shared=%.2f get=%.2f set=%.2f batch16=%.2f allocs/op); the steady-state hot path must stay allocation-free (0 / ≤1 / ≤2 / 0)",
			rt.GetSharedAllocsPerOp, rt.GetAllocsPerOp, rt.SetAllocsPerOp, rt.GetBatchAllocsPerOp))
	}

	ops, conns, pipeline := 400_000, 4, 16
	openRate := 150_000.0
	if *short {
		ops, openRate = 40_000, 40_000
	}
	runs := []struct {
		name        string
		nodes       int
		open        bool
		traceSample int
		leased      bool
	}{
		{"single-node closed-loop", 1, false, 0, false},
		{"single-node open-loop", 1, true, 0, false},
		{"3-node cluster closed-loop", 3, false, 0, false},
		{"3-node cluster open-loop", 3, true, 0, false},
		// The tracing price tag at the recommended production sampling
		// rate, read against the untraced cluster row above it.
		{"3-node cluster closed-loop traced 1/64", 3, false, 64, false},
		// The lease storm: the same closed-loop cluster run with the v7
		// miss path on (leases + near cache), read against the plain
		// cluster row — the standing price/benefit of herd suppression.
		{"3-node cluster closed-loop leased", 3, false, 0, true},
	}
	const overheadBudgetPct = 5.0
	for _, r := range runs {
		s, err := runScenario(r.name, r.nodes, r.open, openRate, ops, conns, pipeline, *seed,
			r.traceSample, r.leased, rep.Telemetry.RecordNsPerOp)
		if err != nil {
			fatal(err)
		}
		rep.Scenarios = append(rep.Scenarios, s)
		fmt.Fprintf(os.Stderr, "benchrun: %-38s %10.0f GET/s  %5.2f allocs/op  gc %-8s server GET p50=%s p99=%s\n",
			s.Name, s.Throughput, s.AllocsPerOp, time.Duration(s.GCPauseNs),
			time.Duration(s.Server.Get.P50Ns), time.Duration(s.Server.Get.P99Ns))
		if s.RecordOverheadPctOfGetP50 > overheadBudgetPct {
			emit(rep, *out)
			fatal(fmt.Errorf("scenario %q: histogram Record costs %.2f%% of the server GET p50, over the %.0f%% instrumentation budget",
				s.Name, s.RecordOverheadPctOfGetP50, overheadBudgetPct))
		}
	}
	emit(rep, *out)
	if *baseline != "" {
		if err := diffBaseline(rep, *baseline); err != nil {
			fatal(err)
		}
	}
}

// diffBaseline gates this run's throughput against a committed
// trajectory file. The gate only fires for scenarios present in both
// documents under the same name, and only when the baseline came from
// the same Go version and GOMAXPROCS — a trajectory from another machine
// or toolchain labels the numbers but cannot judge them.
func diffBaseline(rep report, path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base report
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	if base.GoVersion != rep.GoVersion || base.GOMAXPROCS != rep.GOMAXPROCS {
		fmt.Fprintf(os.Stderr, "benchrun: baseline %s is %s/GOMAXPROCS=%d, this run is %s/GOMAXPROCS=%d; skipping the regression gate (cross-machine numbers are labels, not budgets)\n",
			path, base.GoVersion, base.GOMAXPROCS, rep.GoVersion, rep.GOMAXPROCS)
		return nil
	}
	const tolerance = 0.15
	for _, s := range rep.Scenarios {
		if s.OpenLoop {
			// Open-loop throughput is the intended rate, a configuration,
			// not a capability — and the -short rate differs from the full
			// one. The closed-loop rows are the capability gate.
			continue
		}
		for _, b := range base.Scenarios {
			if b.Name != s.Name || b.Throughput == 0 {
				continue
			}
			if s.Throughput < b.Throughput*(1-tolerance) {
				return fmt.Errorf("scenario %q: %.0f GET/s is %.1f%% below the committed %.0f in %s (budget %.0f%%)",
					s.Name, s.Throughput, 100*(1-s.Throughput/b.Throughput), b.Throughput, path, 100*tolerance)
			}
		}
	}
	fmt.Fprintf(os.Stderr, "benchrun: throughput within %.0f%% of %s on every shared scenario\n", 100*tolerance, path)
	return nil
}

// benchRoundTrip boots one in-process node on loopback and prices the
// steady-state wire round trips for the round_trip gate. The warm-up
// loops absorb the one-time costs (first-writev iovec array, codec buffer
// growth) so the measured runs see the steady state.
func benchRoundTrip(seed uint64) (roundTripR, error) {
	cache, err := concurrent.New(concurrent.Config{Capacity: 1 << 12, Alpha: 16, Seed: seed})
	if err != nil {
		return roundTripR{}, err
	}
	srv := server.New(cache)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return roundTripR{}, err
	}
	go srv.Serve(ln)
	defer srv.Close()
	c, err := wire.Dial(ln.Addr().String())
	if err != nil {
		return roundTripR{}, err
	}
	defer c.Close()

	val := load.Payload(42, 64)
	batch := make([]uint64, 16)
	for i := range batch {
		batch[i] = uint64(i)
		if _, err := c.Set(batch[i], load.Payload(batch[i], 64)); err != nil {
			return roundTripR{}, err
		}
	}
	if _, err := c.Set(42, val); err != nil {
		return roundTripR{}, err
	}
	getShared := func() {
		if _, ok, err := c.GetShared(42); err != nil || !ok {
			fatal(fmt.Errorf("round trip GET: ok=%v err=%v", ok, err))
		}
	}
	get := func() {
		if _, ok, err := c.Get(42); err != nil || !ok {
			fatal(fmt.Errorf("round trip GET: ok=%v err=%v", ok, err))
		}
	}
	set := func() {
		if _, err := c.Set(42, val); err != nil {
			fatal(fmt.Errorf("round trip SET: %v", err))
		}
	}
	visit := func(i int, hit bool, value []byte) {}
	getBatch := func() {
		if err := c.GetBatch(batch, visit); err != nil {
			fatal(fmt.Errorf("round trip GetBatch: %v", err))
		}
	}
	for i := 0; i < 128; i++ {
		getShared()
		set()
		getBatch()
	}
	var rt roundTripR
	rt.GetSharedAllocsPerOp = testing.AllocsPerRun(400, getShared)
	rt.GetAllocsPerOp = testing.AllocsPerRun(400, get)
	rt.SetAllocsPerOp = testing.AllocsPerRun(400, set)
	rt.GetBatchAllocsPerOp = testing.AllocsPerRun(200, getBatch)
	getB := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			getShared()
		}
	})
	rt.GetNsPerOp = float64(getB.NsPerOp())
	batchB := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			getBatch()
		}
	})
	rt.GetBatchNsPerKey = float64(batchB.NsPerOp()) / float64(len(batch))
	return rt, nil
}

// benchTelemetry measures the instrumentation primitives themselves with
// the testing package's machinery, so the numbers match what `go test
// -bench` reports for internal/telemetry.
func benchTelemetry() telemetryR {
	var h telemetry.Histogram
	rec := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Record(time.Duration(i%1_000_000) * time.Microsecond)
		}
	})
	snap := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := h.Snapshot()
			_ = s.Count
		}
	})
	var c telemetry.Counter
	var hw telemetry.HighWater
	sl := telemetry.NewSlowLog(0)
	tk := telemetry.NewTopK(0)
	ring := telemetry.NewSpanRing(0)
	span := telemetry.Span{Op: 1, Status: 2, TraceID: telemetry.TraceID{1}, KeyHash: 3, DurationNanos: 4}
	var n uint64
	topk := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// A zipf-ish stream: a few keys dominate, the tail churns
			// through the sketch's eviction path.
			n++
			k := n % 1024
			if k > 16 {
				k = n
			}
			tk.Record(telemetry.HashKey(k))
		}
	})
	spanB := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ring.Append(span)
		}
	})
	return telemetryR{
		RecordNsPerOp:      float64(rec.NsPerOp()),
		RecordAllocsPerOp:  testing.AllocsPerRun(1000, func() { h.Record(time.Millisecond) }),
		CounterAllocsPerOp: testing.AllocsPerRun(1000, func() { c.Add(7) }),
		HighWaterAllocs:    testing.AllocsPerRun(1000, func() { hw.Set(9) }),
		SlowLogAllocs: testing.AllocsPerRun(1000, func() {
			sl.Append(telemetry.SlowOp{Op: 1, KeyHash: 2, DurationNanos: 3})
		}),
		TopKRecordNsPerOp: float64(topk.NsPerOp()),
		TopKAllocsPerOp:   testing.AllocsPerRun(1000, func() { tk.Record(42) }),
		SpanAppendNsPerOp: float64(spanB.NsPerOp()),
		SpanAllocsPerOp:   testing.AllocsPerRun(1000, func() { ring.Append(span) }),
		SnapshotNsPerOp:   float64(snap.NsPerOp()),
	}
}

// runScenario boots nodes in-process on loopback, drives a fixed-seed
// zipf read-through workload through the standard harness, and reads the
// servers' own view back over METRICS. traceSample > 0 turns request
// tracing on at that sampling interval (cluster scenarios only — the
// single-node harness speaks raw wire, which never volunteers a trace).
func runScenario(name string, nodes int, open bool, rate float64, ops, conns, pipeline int, seed uint64, traceSample int, leased bool, recordNs float64) (scenario, error) {
	const k, alpha = 1 << 15, 16
	var (
		addrs   []string
		servers []*server.Server
	)
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	for i := 0; i < nodes; i++ {
		cache, err := concurrent.New(concurrent.Config{Capacity: k, Alpha: alpha, Seed: seed + uint64(i)})
		if err != nil {
			return scenario{}, err
		}
		srv := server.New(cache)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return scenario{}, err
		}
		go srv.Serve(ln)
		servers = append(servers, srv)
		addrs = append(addrs, ln.Addr().String())
	}

	keys := workload.Zipf{Universe: nodes * 2 * k, S: 0.99, Shuffle: true}.Generate(ops, seed)
	cfg := load.Config{
		Conns:       conns,
		Keys:        keys,
		Pipeline:    pipeline,
		ValueSize:   64,
		ReadThrough: true,
		Verify:      true,
	}
	if nodes == 1 {
		cfg.Addr = addrs[0]
	} else {
		copts := cluster.Options{TraceSample: traceSample}
		if leased {
			copts.Leases = true
			copts.NearCache = cluster.NearCacheOptions{Slots: 1024}
		}
		cfg.Dial = func() (load.Conn, error) {
			return cluster.Dial(addrs, copts)
		}
	}
	// An unmeasured closed-loop pass over the same key stream first: the
	// measured pass then reports steady state, not cache fill. Without
	// this, a -short run is dominated by compulsory misses and reads ~20%
	// slower than the full sizing — which would make the -baseline gate
	// compare cold starts against warm trajectories and cry wolf.
	if _, err := load.Run(cfg); err != nil {
		return scenario{}, err
	}
	msBefore, err := snapshotMetrics(addrs)
	if err != nil {
		return scenario{}, err
	}
	if open {
		cfg.OpenLoop, cfg.Rate = true, rate
	}
	res, err := load.Run(cfg)
	if err != nil {
		return scenario{}, err
	}
	msAfter, err := snapshotMetrics(addrs)
	if err != nil {
		return scenario{}, err
	}
	sv := serverDelta(msBefore, msAfter)
	s := scenario{
		Name:       name,
		Nodes:      nodes,
		OpenLoop:   open,
		Ops:        res.Ops,
		Conns:      conns,
		Pipeline:   pipeline,
		Throughput: res.Throughput,
		MissRatio:  res.MissRatio(),
		Client: latNs{
			P50: int64(res.Latency.P50), P90: int64(res.Latency.P90),
			P99: int64(res.Latency.P99), Max: int64(res.Latency.Max),
		},
		Server: sv,
	}
	s.AllocsPerOp = res.AllocsPerOp
	s.GCPauseNs = int64(res.GCPause)
	if open {
		s.RateOpsSec = rate
	}
	if leased {
		s.NearHits, s.LeaseGrants = res.NearHits, res.LeaseGrants
		s.StaleHints, s.LeaseWaits = res.StaleHints, res.LeaseWaits
	}
	if p50 := sv.Get.P50Ns; p50 > 0 {
		s.RecordOverheadPctOfGetP50 = 100 * recordNs / float64(p50)
	}
	return s, nil
}

// snapshotMetrics reads every node's cumulative flight recorder; two
// snapshots bracketing the measured pass subtract into the run's own
// numbers (every histogram bucket and counter is monotone).
func snapshotMetrics(addrs []string) (map[string]*wire.Metrics, error) {
	per := make(map[string]*wire.Metrics, len(addrs))
	for _, addr := range addrs {
		c, err := wire.Dial(addr)
		if err != nil {
			return nil, err
		}
		m, err := c.Metrics(wire.MetricsHistograms | wire.MetricsCounters)
		c.Close()
		if err != nil {
			return nil, err
		}
		per[addr] = m
	}
	return per, nil
}

// serverDelta merges each bracket across the nodes and subtracts,
// yielding the measured pass's server-side row with the warm-up
// excluded.
func serverDelta(before, after map[string]*wire.Metrics) svrSide {
	aggB, aggA := cluster.AggregateMetrics(before), cluster.AggregateMetrics(after)
	sv := svrSide{
		BytesIn:  aggA.Counter(wire.CounterBytesIn) - aggB.Counter(wire.CounterBytesIn),
		BytesOut: aggA.Counter(wire.CounterBytesOut) - aggB.Counter(wire.CounterBytesOut),
	}
	// Reads travel as GET or, on the leased row, GETL; the two service-time
	// histograms merge bucket-wise into one read column.
	h := histDelta(aggA.Hist(byte(wire.OpGet)), aggB.Hist(byte(wire.OpGet)))
	if hl := histDelta(aggA.Hist(byte(wire.OpGetLease)), aggB.Hist(byte(wire.OpGetLease))); hl != nil && hl.Count > 0 {
		if h == nil {
			h = hl
		} else {
			h.Count += hl.Count
			h.Sum += hl.Sum
			for i := range h.Buckets {
				h.Buckets[i] += hl.Buckets[i]
			}
		}
	}
	if h != nil && h.Count > 0 {
		sv.Get = histNs{Count: h.Count, MeanNs: int64(h.Mean()), P50Ns: int64(h.Quantile(0.50)), P99Ns: int64(h.Quantile(0.99))}
	}
	if h := histDelta(aggA.Hist(byte(wire.OpSet)), aggB.Hist(byte(wire.OpSet))); h != nil && h.Count > 0 {
		sv.Set = histNs{Count: h.Count, MeanNs: int64(h.Mean()), P50Ns: int64(h.Quantile(0.50)), P99Ns: int64(h.Quantile(0.99))}
	}
	return sv
}

// histDelta subtracts one cumulative histogram snapshot from a later one
// of the same histogram.
func histDelta(a, b *telemetry.HistogramSnapshot) *telemetry.HistogramSnapshot {
	if a == nil {
		return nil
	}
	d := *a
	if b != nil {
		d.Count -= b.Count
		d.Sum -= b.Sum
		for i := range d.Buckets {
			d.Buckets[i] -= b.Buckets[i]
		}
	}
	return &d
}

func emit(rep report, out string) {
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchrun: wrote %s\n", out)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchrun: %v\n", err)
	os.Exit(1)
}
