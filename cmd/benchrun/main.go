// Command benchrun produces the repo's standing benchmark trajectory: one
// fixed-seed pass over the telemetry microbenchmarks and a small matrix of
// end-to-end load scenarios (one node and a 3-node cluster, closed- and
// open-loop), emitted as a single JSON document. The committed BENCH_*.json
// files at the repo root are its output, one per PR that moved performance,
// so regressions are visible in review as a diff rather than a feeling.
//
// Usage:
//
//	benchrun -o BENCH_6.json
//	benchrun -short            # CI smoke: seconds, not minutes
//
// The alloc columns are a gate, not a report: if any hot-path telemetry
// operation (histogram Record, counter Add, high-water Set, slow-op
// Append) allocates, benchrun exits nonzero. CI runs the -short mode on
// every push, so an alloc regression on the instrumentation path fails the
// build before it can reach a committed trajectory.
//
// Throughput and latency numbers are machine-dependent; the JSON carries
// GOMAXPROCS and the Go version so a trajectory diff across commits from
// the same machine is meaningful and one across machines is labelled. The
// document deliberately contains no wall-clock timestamp: reruns on the
// same tree should diff only where performance moved.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/concurrent"
	"repro/internal/load"
	"repro/internal/server"
	"repro/internal/telemetry"
	"repro/internal/wire"
	"repro/internal/workload"
)

type report struct {
	Bench       string     `json:"bench"`
	WireVersion int        `json:"wire_version"`
	GoVersion   string     `json:"go_version"`
	GOMAXPROCS  int        `json:"gomaxprocs"`
	Seed        uint64     `json:"seed"`
	Short       bool       `json:"short"`
	Telemetry   telemetryR `json:"telemetry"`
	Scenarios   []scenario `json:"scenarios"`
}

// telemetryR is the microbenchmark row for the instrumentation itself:
// what one sample costs on the hot path, and the proof it never allocates.
type telemetryR struct {
	RecordNsPerOp      float64 `json:"record_ns_per_op"`
	RecordAllocsPerOp  float64 `json:"record_allocs_per_op"`
	CounterAllocsPerOp float64 `json:"counter_allocs_per_op"`
	HighWaterAllocs    float64 `json:"highwater_allocs_per_op"`
	SlowLogAllocs      float64 `json:"slowlog_allocs_per_op"`
	SnapshotNsPerOp    float64 `json:"snapshot_ns_per_op"`
}

type scenario struct {
	Name       string  `json:"name"`
	Nodes      int     `json:"nodes"`
	OpenLoop   bool    `json:"open_loop"`
	RateOpsSec float64 `json:"rate_ops_per_sec,omitempty"`
	Ops        int     `json:"ops"`
	Conns      int     `json:"conns"`
	Pipeline   int     `json:"pipeline"`
	Throughput float64 `json:"throughput_gets_per_sec"`
	MissRatio  float64 `json:"miss_ratio"`
	Client     latNs   `json:"client_latency_per_batch_ns"`
	Server     svrSide `json:"server"`
	// RecordOverheadPctOfGetP50 prices the instrumentation against the
	// work it measures: one histogram Record per op, as a percentage of the
	// server-side GET median. The <5%% budget from the issue is judged on
	// this column.
	RecordOverheadPctOfGetP50 float64 `json:"record_overhead_pct_of_get_p50"`
}

type latNs struct {
	P50 int64 `json:"p50"`
	P90 int64 `json:"p90"`
	P99 int64 `json:"p99"`
	Max int64 `json:"max"`
}

// svrSide is the flight recorder's view of the same run, read back over
// the wire with METRICS: service time per op (request decoded → response
// encoded), not round-trip.
type svrSide struct {
	Get      histNs `json:"get"`
	Set      histNs `json:"set"`
	BytesIn  uint64 `json:"bytes_in"`
	BytesOut uint64 `json:"bytes_out"`
}

type histNs struct {
	Count  uint64 `json:"count"`
	MeanNs int64  `json:"mean_ns"`
	P50Ns  int64  `json:"p50_ns"`
	P99Ns  int64  `json:"p99_ns"`
}

func main() {
	var (
		short = flag.Bool("short", false, "CI smoke sizing: a few seconds total")
		out   = flag.String("o", "", "write the JSON report here (default stdout)")
		seed  = flag.Uint64("seed", 1, "hash/workload seed (fixed for reproducible key streams)")
	)
	flag.Parse()

	rep := report{
		Bench:       "benchrun",
		WireVersion: wire.Version,
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Seed:        *seed,
		Short:       *short,
	}
	rep.Telemetry = benchTelemetry()
	if rep.Telemetry.RecordAllocsPerOp != 0 || rep.Telemetry.CounterAllocsPerOp != 0 ||
		rep.Telemetry.HighWaterAllocs != 0 || rep.Telemetry.SlowLogAllocs != 0 {
		emit(rep, *out)
		fatal(fmt.Errorf("telemetry hot path allocates (record=%.1f counter=%.1f highwater=%.1f slowlog=%.1f allocs/op); the flight recorder must be allocation-free",
			rep.Telemetry.RecordAllocsPerOp, rep.Telemetry.CounterAllocsPerOp,
			rep.Telemetry.HighWaterAllocs, rep.Telemetry.SlowLogAllocs))
	}

	ops, conns, pipeline := 400_000, 4, 16
	openRate := 150_000.0
	if *short {
		ops, openRate = 40_000, 40_000
	}
	runs := []struct {
		name  string
		nodes int
		open  bool
	}{
		{"single-node closed-loop", 1, false},
		{"single-node open-loop", 1, true},
		{"3-node cluster closed-loop", 3, false},
		{"3-node cluster open-loop", 3, true},
	}
	for _, r := range runs {
		s, err := runScenario(r.name, r.nodes, r.open, openRate, ops, conns, pipeline, *seed,
			rep.Telemetry.RecordNsPerOp)
		if err != nil {
			fatal(err)
		}
		rep.Scenarios = append(rep.Scenarios, s)
		fmt.Fprintf(os.Stderr, "benchrun: %-28s %10.0f GET/s  server GET p50=%s p99=%s\n",
			s.Name, s.Throughput,
			time.Duration(s.Server.Get.P50Ns), time.Duration(s.Server.Get.P99Ns))
	}
	emit(rep, *out)
}

// benchTelemetry measures the instrumentation primitives themselves with
// the testing package's machinery, so the numbers match what `go test
// -bench` reports for internal/telemetry.
func benchTelemetry() telemetryR {
	var h telemetry.Histogram
	rec := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Record(time.Duration(i%1_000_000) * time.Microsecond)
		}
	})
	snap := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := h.Snapshot()
			_ = s.Count
		}
	})
	var c telemetry.Counter
	var hw telemetry.HighWater
	sl := telemetry.NewSlowLog(0)
	return telemetryR{
		RecordNsPerOp:      float64(rec.NsPerOp()),
		RecordAllocsPerOp:  testing.AllocsPerRun(1000, func() { h.Record(time.Millisecond) }),
		CounterAllocsPerOp: testing.AllocsPerRun(1000, func() { c.Add(7) }),
		HighWaterAllocs:    testing.AllocsPerRun(1000, func() { hw.Set(9) }),
		SlowLogAllocs: testing.AllocsPerRun(1000, func() {
			sl.Append(telemetry.SlowOp{Op: 1, KeyHash: 2, DurationNanos: 3})
		}),
		SnapshotNsPerOp: float64(snap.NsPerOp()),
	}
}

// runScenario boots nodes in-process on loopback, drives a fixed-seed
// zipf read-through workload through the standard harness, and reads the
// servers' own view back over METRICS.
func runScenario(name string, nodes int, open bool, rate float64, ops, conns, pipeline int, seed uint64, recordNs float64) (scenario, error) {
	const k, alpha = 1 << 15, 16
	var (
		addrs   []string
		servers []*server.Server
	)
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	for i := 0; i < nodes; i++ {
		cache, err := concurrent.New(concurrent.Config{Capacity: k, Alpha: alpha, Seed: seed + uint64(i)})
		if err != nil {
			return scenario{}, err
		}
		srv := server.New(cache)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return scenario{}, err
		}
		go srv.Serve(ln)
		servers = append(servers, srv)
		addrs = append(addrs, ln.Addr().String())
	}

	keys := workload.Zipf{Universe: nodes * 2 * k, S: 0.99, Shuffle: true}.Generate(ops, seed)
	cfg := load.Config{
		Conns:       conns,
		Keys:        keys,
		Pipeline:    pipeline,
		ValueSize:   64,
		ReadThrough: true,
		Verify:      true,
	}
	if nodes == 1 {
		cfg.Addr = addrs[0]
	} else {
		cfg.Dial = func() (load.Conn, error) { return cluster.Dial(addrs, cluster.Options{}) }
	}
	if open {
		cfg.OpenLoop, cfg.Rate = true, rate
	}
	res, err := load.Run(cfg)
	if err != nil {
		return scenario{}, err
	}

	sv, err := collectServerSide(addrs)
	if err != nil {
		return scenario{}, err
	}
	s := scenario{
		Name:       name,
		Nodes:      nodes,
		OpenLoop:   open,
		Ops:        res.Ops,
		Conns:      conns,
		Pipeline:   pipeline,
		Throughput: res.Throughput,
		MissRatio:  res.MissRatio(),
		Client: latNs{
			P50: int64(res.Latency.P50), P90: int64(res.Latency.P90),
			P99: int64(res.Latency.P99), Max: int64(res.Latency.Max),
		},
		Server: sv,
	}
	if open {
		s.RateOpsSec = rate
	}
	if p50 := sv.Get.P50Ns; p50 > 0 {
		s.RecordOverheadPctOfGetP50 = 100 * recordNs / float64(p50)
	}
	return s, nil
}

// collectServerSide merges every node's METRICS into the run's
// server-side row. Nodes were booted fresh for the scenario, so the
// cumulative histograms are the run's histograms.
func collectServerSide(addrs []string) (svrSide, error) {
	per := make(map[string]*wire.Metrics, len(addrs))
	for _, addr := range addrs {
		c, err := wire.Dial(addr)
		if err != nil {
			return svrSide{}, err
		}
		m, err := c.Metrics(wire.MetricsHistograms | wire.MetricsCounters)
		c.Close()
		if err != nil {
			return svrSide{}, err
		}
		per[addr] = m
	}
	agg := cluster.AggregateMetrics(per)
	sv := svrSide{
		BytesIn:  agg.Counter(wire.CounterBytesIn),
		BytesOut: agg.Counter(wire.CounterBytesOut),
	}
	if h := agg.Hist(byte(wire.OpGet)); h != nil {
		sv.Get = histNs{Count: h.Count, MeanNs: int64(h.Mean()), P50Ns: int64(h.Quantile(0.50)), P99Ns: int64(h.Quantile(0.99))}
	}
	if h := agg.Hist(byte(wire.OpSet)); h != nil {
		sv.Set = histNs{Count: h.Count, MeanNs: int64(h.Mean()), P50Ns: int64(h.Quantile(0.50)), P99Ns: int64(h.Quantile(0.99))}
	}
	return sv, nil
}

func emit(rep report, out string) {
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchrun: wrote %s\n", out)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchrun: %v\n", err)
	os.Exit(1)
}
