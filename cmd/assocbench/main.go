// Command assocbench runs the reproduction experiments E1–E19 and prints
// each result as a table shaped like the paper claim it validates.
//
// Usage:
//
//	assocbench [-quick] [-seed N] [-run E1,E5,E7]
//
// Without -run, all experiments execute in order. -quick uses the test-scale
// parameter sets (seconds instead of minutes).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/stats"
)

func main() {
	quick := flag.Bool("quick", false, "use test-scale parameters")
	seed := flag.Uint64("seed", 0x5eed, "master random seed")
	run := flag.String("run", "", "comma-separated experiment ids (e.g. E1,E5); empty = all")
	flag.Parse()

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	cfg.Seed = *seed

	type experiment struct {
		id     string
		title  string
		tables func(experiments.Config) []*stats.Table
	}
	all := []experiment{
		{"E1", "associativity threshold", func(c experiments.Config) []*stats.Table {
			r := experiments.E1Threshold(c)
			return []*stats.Table{r.Table(), r.AblationTable()}
		}},
		{"E2", "Theorem 3 competitiveness", one(func(c experiments.Config) *stats.Table { return experiments.E2Competitive(c).Table() })},
		{"E3", "Lemma 3 max load", one(func(c experiments.Config) *stats.Table { return experiments.E3MaxLoad(c).Table() })},
		{"E4", "Lemma 4 saturated bins", one(func(c experiments.Config) *stats.Table { return experiments.E4Saturated(c).Table() })},
		{"E5", "Theorem 4 adversary", one(func(c experiments.Config) *stats.Table { return experiments.E5Adversary(c).Table() })},
		{"E6", "Proposition 2 regimes", one(func(c experiments.Config) *stats.Table { return experiments.E6Regimes(c).Table() })},
		{"E7", "rehashing (covers E8)", one(func(c experiments.Config) *stats.Table { return experiments.E7E8Rehash(c).Table() })},
		{"E9", "vs offline OPT", one(func(c experiments.Config) *stats.Table { return experiments.E9VsOPT(c).Table() })},
		{"E10", "policy classification", one(func(c experiments.Config) *stats.Table { return experiments.E10Stability(c).Table() })},
		{"E11", "Proposition 6 replay", one(func(c experiments.Config) *stats.Table { return experiments.E11ReuseDist(c).Table() })},
		{"E12", "Belady's anomaly", one(func(c experiments.Config) *stats.Table { return experiments.E12Belady(c).Table() })},
		{"E13", "rehash schedules", one(func(c experiments.Config) *stats.Table { return experiments.E13AccessRehash(c).Table() })},
		{"E14", "LRU-2 scan resistance", one(func(c experiments.Config) *stats.Table { return experiments.E14LRU2(c).Table() })},
		{"E15", "indexing: bit-select vs random", one(func(c experiments.Config) *stats.Table { return experiments.E15Indexing(c).Table() })},
		{"E16", "companion (victim) caches", one(func(c experiments.Config) *stats.Table { return experiments.E16Companion(c).Table() })},
		{"E17", "mirroring technique", one(func(c experiments.Config) *stats.Table { return experiments.E17Mirror(c).Table() })},
		{"E18", "stack-distance profiling", one(func(c experiments.Config) *stats.Table { return experiments.E18StackDist(c).Table() })},
		{"E19", "skewed (d-choice) associativity", one(func(c experiments.Config) *stats.Table { return experiments.E19Skewed(c).Table() })},
	}

	want := map[string]bool{}
	if *run != "" {
		for _, id := range strings.Split(*run, ",") {
			id = strings.TrimSpace(strings.ToUpper(id))
			if id == "E8" {
				id = "E7" // E7 and E8 share a harness
			}
			want[id] = true
		}
	}

	start := time.Now()
	ran := 0
	for _, e := range all {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		ran++
		t0 := time.Now()
		for _, tb := range e.tables(cfg) {
			if err := tb.Render(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "assocbench: rendering %s: %v\n", e.id, err)
				os.Exit(1)
			}
		}
		fmt.Printf("[%s done in %v]\n\n", e.id, time.Since(t0).Round(time.Millisecond))
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "assocbench: no experiments matched -run=%q\n", *run)
		os.Exit(2)
	}
	fmt.Printf("assocbench: %d experiment(s) in %v (scale=%v, seed=%#x)\n",
		ran, time.Since(start).Round(time.Millisecond), scaleName(cfg), cfg.Seed)
}

func one(f func(experiments.Config) *stats.Table) func(experiments.Config) []*stats.Table {
	return func(c experiments.Config) []*stats.Table { return []*stats.Table{f(c)} }
}

func scaleName(cfg experiments.Config) string {
	if cfg.Scale == experiments.Quick {
		return "quick"
	}
	return "full"
}
