// Command tracegen generates synthetic request traces in the library's
// binary trace format, for consumption by cmd/cachesim.
//
// Usage:
//
//	tracegen -workload zipf -n 1000000 -universe 65536 -s 1.0 -o trace.satr
//	tracegen -workload adversary -k 4096 -delta 0.25 -sets 8 -reps 16 -o attack.satr
//
// Workloads: uniform, zipf, scan, phases, zipfscans, markov, adversary,
// fixedset.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/adversary"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		kind     = flag.String("workload", "zipf", "uniform|zipf|scan|phases|zipfscans|markov|adversary|fixedset")
		n        = flag.Int("n", 1_000_000, "number of requests (ignored by adversary/fixedset)")
		universe = flag.Int("universe", 1<<16, "universe size")
		s        = flag.Float64("s", 1.0, "zipf exponent")
		phaseLen = flag.Int("phaselen", 10_000, "phase length (phases)")
		setSize  = flag.Int("setsize", 1<<12, "working-set size per phase (phases)")
		burstEv  = flag.Int("burstevery", 4096, "hot requests between scan bursts (zipfscans)")
		burstLen = flag.Int("burstlen", 2048, "cold items per burst (zipfscans)")
		nbhood   = flag.Int("neighbourhood", 64, "hot window size (markov)")
		sticky   = flag.Float64("stickiness", 0.9, "probability of staying local (markov)")
		k        = flag.Int("k", 1<<12, "cache size the adversary targets")
		delta    = flag.Float64("delta", 0.25, "capacity gap δ (adversary/fixedset)")
		sets     = flag.Int("sets", 8, "number of disjoint sets s (adversary)")
		reps     = flag.Int("reps", 16, "replays per set t (adversary/fixedset)")
		seed     = flag.Uint64("seed", 1, "random seed")
		out      = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var seq trace.Sequence
	switch *kind {
	case "uniform":
		seq = workload.Uniform{Universe: *universe}.Generate(*n, *seed)
	case "zipf":
		seq = workload.Zipf{Universe: *universe, S: *s, Shuffle: true}.Generate(*n, *seed)
	case "scan":
		seq = workload.Scan{Universe: *universe}.Generate(*n, *seed)
	case "phases":
		seq = workload.Phases{PhaseLen: *phaseLen, SetSize: *setSize, Universe: *universe}.Generate(*n, *seed)
	case "zipfscans":
		seq = workload.ZipfWithScans{HotUniverse: *universe, S: *s, BurstEvery: *burstEv, BurstLen: *burstLen}.Generate(*n, *seed)
	case "markov":
		seq = workload.Markov{Universe: *universe, Neighbourhood: *nbhood, Stickiness: *sticky}.Generate(*n, *seed)
	case "adversary":
		adv := adversary.Theorem4{K: *k, Delta: *delta, Sets: *sets, Reps: *reps}
		if err := adv.Validate(); err != nil {
			fatal(err)
		}
		seq = adv.Build()
	case "fixedset":
		seq = adversary.FixedSet{K: *k, Delta: *delta, Reps: *reps}.Build()
	default:
		fatal(fmt.Errorf("unknown workload %q", *kind))
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	if err := trace.Write(w, seq); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "tracegen: wrote %d requests (%d distinct items)\n",
		len(seq), seq.DistinctCount())
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
	os.Exit(1)
}
