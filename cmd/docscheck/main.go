// Command docscheck is the documentation gate CI runs: it fails when an
// exported identifier in the given packages lacks a doc comment (the
// `revive exported` rule, implemented here so CI needs no third-party
// tool), or when a relative link or intra-document anchor in the given
// markdown files points nowhere.
//
// Usage:
//
//	docscheck -md README.md,ARCHITECTURE.md ./internal/cluster ./internal/wire
//
// Each package directory is parsed (tests excluded) and every exported
// top-level func, method, type, const and var must carry a doc comment on
// its declaration or its spec. Each markdown file's links are resolved
// relative to the file; http(s) and mailto targets are skipped, `#anchor`
// fragments are checked against GitHub-style heading slugs of the target
// document.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	md := flag.String("md", "", "comma-separated markdown files to link-check")
	flag.Parse()

	var problems []string
	for _, dir := range flag.Args() {
		ps, err := checkPackageDocs(dir)
		if err != nil {
			fatal(err)
		}
		problems = append(problems, ps...)
	}
	if *md != "" {
		for _, file := range strings.Split(*md, ",") {
			ps, err := checkMarkdown(strings.TrimSpace(file))
			if err != nil {
				fatal(err)
			}
			problems = append(problems, ps...)
		}
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "docscheck: %d problems\n", len(problems))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
	os.Exit(1)
}

// checkPackageDocs reports every exported top-level identifier in dir's
// non-test files that has no doc comment.
func checkPackageDocs(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("parsing %s: %w", dir, err)
	}
	var problems []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil {
						kind := "function"
						if d.Recv != nil {
							kind = "method"
						}
						report(d.Pos(), kind, d.Name.Name)
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
								report(s.Pos(), "type", s.Name.Name)
							}
						case *ast.ValueSpec:
							for _, name := range s.Names {
								if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
									report(name.Pos(), kindOf(d.Tok), name.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	return problems, nil
}

func kindOf(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}

var (
	linkRe  = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)
	fenceRe = regexp.MustCompile("(?s)```.*?```")
	headRe  = regexp.MustCompile(`(?m)^#{1,6}\s+(.+)$`)
	slugRe  = regexp.MustCompile(`[^a-z0-9 \-]`)
)

// anchorsOf returns the GitHub-style heading slugs of a markdown document.
func anchorsOf(content string) map[string]bool {
	anchors := make(map[string]bool)
	for _, m := range headRe.FindAllStringSubmatch(fenceRe.ReplaceAllString(content, ""), -1) {
		slug := strings.ToLower(strings.TrimSpace(m[1]))
		slug = slugRe.ReplaceAllString(slug, "")
		slug = strings.ReplaceAll(slug, " ", "-")
		anchors[slug] = true
	}
	return anchors
}

// checkMarkdown verifies every relative link and anchor in file resolves.
func checkMarkdown(file string) ([]string, error) {
	b, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	content := string(b)
	var problems []string
	for _, m := range linkRe.FindAllStringSubmatch(fenceRe.ReplaceAllString(content, ""), -1) {
		target := m[1]
		if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
			strings.HasPrefix(target, "mailto:") {
			continue
		}
		path, anchor, _ := strings.Cut(target, "#")
		targetFile := file
		if path != "" {
			targetFile = filepath.Join(filepath.Dir(file), path)
			if _, err := os.Stat(targetFile); err != nil {
				problems = append(problems, fmt.Sprintf("%s: link target %s does not exist", file, target))
				continue
			}
		}
		if anchor != "" && strings.HasSuffix(targetFile, ".md") {
			tb := b
			if targetFile != file {
				if tb, err = os.ReadFile(targetFile); err != nil {
					return nil, err
				}
			}
			if !anchorsOf(string(tb))[anchor] {
				problems = append(problems, fmt.Sprintf("%s: anchor %s not found in %s", file, target, targetFile))
			}
		}
	}
	return problems, nil
}
