// Command traceinfo characterizes a binary trace (see cmd/tracegen):
// length, universe, popularity skew with a Zipf-exponent fit, working-set
// curve, inter-reference times, and the one-pass LRU miss-ratio curve —
// everything needed to judge how a workload will interact with a given
// cache size and associativity before running cachesim.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/stackdist"
	"repro/internal/trace"
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: traceinfo trace.satr")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	seq, err := trace.Read(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fatal(err)
	}

	pop := analysis.Popularize(seq)
	fmt.Printf("trace: %d requests, %d distinct items\n", len(seq), pop.Distinct)
	fmt.Printf("popularity: top 1%% of items take %.1f%% of requests, top 10%% take %.1f%%\n",
		100*pop.Top1Pct, 100*pop.Top10Pct)
	fmt.Printf("zipf-exponent fit: %.3f\n\n", pop.ZipfExponent)

	fmt.Println("working-set curve (mean distinct items per window):")
	for _, p := range analysis.WorkingSetCurve(seq, []int{64, 256, 1024, 4096, 16384}) {
		fmt.Printf("  w=%6d: %10.1f\n", p.Window, p.MeanSet)
	}

	reuse := analysis.ReuseTimes(seq)
	fmt.Printf("\ninter-reference times: %d cold accesses, median reuse ≈ %.0f requests\n",
		reuse.Cold, reuse.Median())

	prof := stackdist.New()
	prof.Run(seq)
	fmt.Printf("\nLRU miss-ratio curve (one-pass stack-distance profile, mean depth %.0f):\n",
		prof.MeanDistance())
	for _, k := range []int{64, 256, 1024, 4096, 16384, 65536} {
		if k > 4*prof.Distinct() {
			break
		}
		fmt.Printf("  k=%6d: %.4f\n", k, float64(prof.MissCount(k))/float64(prof.Requests()))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "traceinfo: %v\n", err)
	os.Exit(1)
}
