// Command cached is the sharded cache daemon: a concurrent α-way
// set-associative cache (internal/concurrent) served over TCP with the wire
// protocol (internal/wire).
//
// Usage:
//
//	cached -addr :7070 -k 65536 -alpha 16
//	cached -addr :7070 -k 65536 -alpha 16 -policy clock
//	cached -addr :7070 -k 65536 -alpha 16 -rehash-every 1048576
//	cached -addr :7070 -k 65536 -alpha 16 -rehash-auto -rehash-conflicts 4096
//
// With -rehash-every N the daemon applies the paper's Section 6 schedule:
// every N misses it draws a fresh indexing hash and migrates incrementally
// under live traffic. -rehash-auto derives N from the capacity using the
// paper's poly(k) guidance (k·⌈log₂ k⌉ misses; see
// concurrent.DefaultEveryMisses), and -rehash-conflicts M adds the adaptive
// trigger: rehash every M conflict evictions, so an adversarially exploited
// hash is redrawn long before the miss-count schedule would fire. Clients
// can also force a rehash with the REHASH opcode (cacheload -rehash). STATS
// exposes hit/miss/conflict counters and, on request, per-shard snapshots.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/concurrent"
	"repro/internal/policy"
	"repro/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":7070", "listen address")
		k          = flag.Int("k", 1<<16, "total cache capacity")
		alpha      = flag.Int("alpha", 16, "set size α (must divide k); the paper recommends slightly above log₂ k")
		polName    = flag.String("policy", "lru", "per-bucket replacement policy: lru|fifo|clock|lfu|lru2|lru3|reusedist|random|mru")
		seed       = flag.Uint64("seed", 1, "hash seed")
		rehashEv   = flag.Uint64("rehash-every", 0, "start an online incremental rehash every N misses (0 disables)")
		rehashAuto = flag.Bool("rehash-auto", false, "derive the rehash-every period from k (k·⌈log₂k⌉ misses, the paper's poly(k) guidance)")
		rehashConf = flag.Uint64("rehash-conflicts", 0, "additionally rehash every N conflict evictions (adaptive trigger, 0 disables)")
		migPerMiss = flag.Int("migrate-per-miss", 1, "forced migrations per miss during a rehash")
	)
	flag.Parse()

	kind, err := policy.ParseKind(*polName)
	if err != nil {
		fatal(err)
	}
	every := *rehashEv
	if *rehashAuto {
		if every != 0 {
			fatal(fmt.Errorf("-rehash-auto and -rehash-every are mutually exclusive"))
		}
		every = concurrent.DefaultEveryMisses(*k)
		log.Printf("cached: auto rehash schedule: every %d misses", every)
	}
	cache, err := concurrent.New(concurrent.Config{
		Capacity:             *k,
		Alpha:                *alpha,
		Seed:                 *seed,
		Policy:               policy.NewFactory(kind, *seed),
		RehashEveryMisses:    every,
		RehashEveryConflicts: *rehashConf,
		MigrationPerMiss:     *migPerMiss,
	})
	if err != nil {
		fatal(err)
	}

	srv := server.New(cache)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Printf("cached: shutting down")
		srv.Close()
	}()

	log.Printf("cached: serving k=%d α=%d (%d buckets) policy=%s on %s",
		*k, *alpha, cache.NumBuckets(), kind, *addr)
	if err := srv.ListenAndServe(*addr); err != nil {
		fatal(err)
	}
	snap := cache.Snapshot()
	log.Printf("cached: final stats: hits=%d misses=%d (ratio %.4f) evictions=%d conflict=%d rehashes=%d",
		snap.Hits, snap.Misses, snap.MissRatio(), snap.Evictions, snap.ConflictEvictions, snap.Rehashes)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "cached: %v\n", err)
	os.Exit(1)
}
