// Command cached is the sharded cache daemon: a concurrent α-way
// set-associative cache (internal/concurrent) served over TCP with the wire
// protocol (internal/wire).
//
// Usage:
//
//	cached -addr :7070 -k 65536 -alpha 16
//	cached -addr :7070 -k 65536 -alpha 16 -policy clock
//	cached -addr :7070 -k 65536 -alpha 16 -rehash-every 1048576
//	cached -addr :7070 -k 65536 -alpha 16 -rehash-auto -rehash-conflicts 4096
//	cached -addr :7071 -advertise host2:7071 -join host1:7070
//	cached -addr :7070 -debug-addr localhost:6060
//
// With -join SEED the daemon makes itself a cluster member on startup: it
// fetches the seed's topology, adds its own advertised address under a
// bumped epoch, and pushes the result to every member — so a cluster
// grows one "-join first-node" at a time and any single member address
// lets a client bootstrap the whole view (cluster.Options.Bootstrap,
// cachecluster -bootstrap). -advertise is the address peers and clients
// reach this node at; it defaults to -addr, which only works when that is
// dialable as-is (e.g. loopback testing). Without -join the daemon seeds
// its own topology with just itself, making it usable as the first seed.
//
// With -rehash-every N the daemon applies the paper's Section 6 schedule:
// every N misses it draws a fresh indexing hash and migrates incrementally
// under live traffic. -rehash-auto derives N from the capacity using the
// paper's poly(k) guidance (k·⌈log₂ k⌉ misses; see
// concurrent.DefaultEveryMisses), and -rehash-conflicts M adds the adaptive
// trigger: rehash every M conflict evictions, so an adversarially exploited
// hash is redrawn long before the miss-count schedule would fire. Clients
// can also force a rehash with the REHASH opcode (cacheload -rehash). STATS
// exposes hit/miss/conflict counters and, on request, per-shard snapshots.
//
// With -debug-addr the daemon additionally serves an operator side-channel
// on that address (keep it on localhost or a management network): net/http
// pprof under /debug/pprof/ and a JSON rendering of the flight recorder —
// per-op latency percentiles, byte/connection counters, the slow-op ring —
// at /metrics. It is off by default and separate from the cache port; the
// wire-level equivalent is the METRICS opcode. -slow-op-threshold tunes
// which ops enter the slow-op ring (default 10ms, 0 disables).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/cluster"
	"repro/internal/concurrent"
	"repro/internal/policy"
	"repro/internal/server"
	"repro/internal/wire"
)

func main() {
	var (
		addr       = flag.String("addr", ":7070", "listen address")
		advertise  = flag.String("advertise", "", "address peers and clients reach this node at (default: -addr)")
		join       = flag.String("join", "", "seed address of an existing member: fetch its topology, add self, push to all members")
		k          = flag.Int("k", 1<<16, "total cache capacity")
		alpha      = flag.Int("alpha", 16, "set size α (must divide k); the paper recommends slightly above log₂ k")
		polName    = flag.String("policy", "lru", "per-bucket replacement policy: lru|fifo|clock|lfu|lru2|lru3|reusedist|random|mru")
		seed       = flag.Uint64("seed", 1, "hash seed")
		rehashEv   = flag.Uint64("rehash-every", 0, "start an online incremental rehash every N misses (0 disables)")
		rehashAuto = flag.Bool("rehash-auto", false, "derive the rehash-every period from k (k·⌈log₂k⌉ misses, the paper's poly(k) guidance)")
		rehashConf = flag.Uint64("rehash-conflicts", 0, "additionally rehash every N conflict evictions (adaptive trigger, 0 disables)")
		migPerMiss = flag.Int("migrate-per-miss", 1, "forced migrations per miss during a rehash")
		debugAddr  = flag.String("debug-addr", "", "serve net/http/pprof and a /metrics JSON snapshot on this address (off when empty)")
		slowThresh = flag.Duration("slow-op-threshold", server.DefaultSlowOpThreshold, "ops at least this slow enter the slow-op ring (0 disables the ring)")
		leaseTTL   = flag.Duration("lease-ttl", server.DefaultLeaseTTL, "how long a GETL fill lease stays outstanding (wire v7); keep just above the slowest origin load")
		tombTTL    = flag.Duration("tombstone-ttl", server.DefaultTombstoneTTL, "how long a deleted key's tombstone blocks resurrection (wire v8); keep ~10x the cluster anti-entropy period")
		hintBudget = flag.Int("hint-budget", server.DefaultHintBudget, "byte budget for queued hinted-handoff records (wire v8); oldest dropped when over")
		hintReplay = flag.Duration("hint-replay", server.DefaultHintReplay, "how often queued hints are replayed to their recovered target (wire v8)")
	)
	flag.Parse()

	kind, err := policy.ParseKind(*polName)
	if err != nil {
		fatal(err)
	}
	every := *rehashEv
	if *rehashAuto {
		if every != 0 {
			fatal(fmt.Errorf("-rehash-auto and -rehash-every are mutually exclusive"))
		}
		every = concurrent.DefaultEveryMisses(*k)
		log.Printf("cached: auto rehash schedule: every %d misses", every)
	}
	cache, err := concurrent.New(concurrent.Config{
		Capacity:             *k,
		Alpha:                *alpha,
		Seed:                 *seed,
		Policy:               policy.NewFactory(kind, *seed),
		RehashEveryMisses:    every,
		RehashEveryConflicts: *rehashConf,
		MigrationPerMiss:     *migPerMiss,
	})
	if err != nil {
		fatal(err)
	}

	srv := server.New(cache)
	srv.SetSlowOpThreshold(*slowThresh)
	srv.SetLeaseTTL(*leaseTTL)
	srv.SetTombstoneTTL(*tombTTL)
	if *hintBudget < 0 {
		fatal(fmt.Errorf("-hint-budget %d: byte budget must not be negative", *hintBudget))
	}
	srv.SetHintBudget(*hintBudget)
	srv.SetHintReplayInterval(*hintReplay)
	if *debugAddr != "" {
		serveDebug(*debugAddr, srv)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Printf("cached: shutting down")
		srv.Close()
	}()

	// The listener must be up before -join pushes a topology that includes
	// this node, so Serve runs on a goroutine and the join happens after.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	self := *advertise
	if self == "" {
		self = *addr
	}
	if *join == "" {
		// A standalone node is its own one-member topology, which is what
		// makes it usable as the first seed of a growing cluster. Installed
		// before the listener starts accepting, so a peer joining the
		// instant we come up can never have its founding push stomped by
		// this self-seed.
		srv.SetTopology(wire.Topology{Epoch: 0, Members: []string{self}})
	}
	log.Printf("cached: serving k=%d α=%d (%d buckets) policy=%s on %s",
		*k, *alpha, cache.NumBuckets(), kind, *addr)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	if *join != "" {
		t, skipped, err := cluster.Join(*join, self, nil)
		if err != nil {
			srv.Close()
			<-serveErr
			fatal(err)
		}
		log.Printf("cached: joined cluster via %s: epoch %d, members %s",
			*join, t.Epoch, strings.Join(t.Members, " "))
		if len(skipped) > 0 {
			// A dead member must not abort the join; it learns the new
			// topology later, from a router's refresh-and-re-push or its
			// own restart.
			log.Printf("cached: join could not push the topology to %s; they will converge on their own",
				strings.Join(skipped, " "))
		}
	}

	if err := <-serveErr; err != nil {
		fatal(err)
	}
	snap := cache.Snapshot()
	log.Printf("cached: final stats: hits=%d misses=%d (ratio %.4f) evictions=%d conflict=%d rehashes=%d",
		snap.Hits, snap.Misses, snap.MissRatio(), snap.Evictions, snap.ConflictEvictions, snap.Rehashes)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "cached: %v\n", err)
	os.Exit(1)
}
