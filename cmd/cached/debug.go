package main

import (
	"encoding/json"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"time"

	"repro/internal/server"
	"repro/internal/wire"
)

// serveDebug exposes the operator's localhost side-channel on its own
// listener, separate from the cache port: net/http/pprof under
// /debug/pprof/ and a JSON rendering of the flight recorder at /metrics.
// The JSON view is for humans and scrapers; programs inside the cluster
// use the METRICS wire op, which is what the JSON is built from.
func serveDebug(addr string, srv *server.Server) {
	http.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(debugMetrics(srv)); err != nil {
			log.Printf("cached: /metrics encode: %v", err)
		}
	})
	go func() {
		log.Printf("cached: debug server (pprof, /metrics) on %s", addr)
		if err := http.ListenAndServe(addr, nil); err != nil {
			log.Printf("cached: debug server: %v", err)
		}
	}()
}

// debugHist is one histogram reduced to the numbers an operator reads
// first; the full bucket vector stays on the wire op.
type debugHist struct {
	Count  uint64        `json:"count"`
	Mean   time.Duration `json:"mean_ns"`
	P50    time.Duration `json:"p50_ns"`
	P99    time.Duration `json:"p99_ns"`
	P999   time.Duration `json:"p999_ns"`
	MaxBkt time.Duration `json:"max_bucket_ns"`
}

type debugSlowOp struct {
	Op       string `json:"op"`
	KeyHash  uint64 `json:"key_hash"`
	Duration int64  `json:"duration_ns"`
	Version  uint64 `json:"version"`
	Unix     uint64 `json:"unix_nanos"`
	TraceID  string `json:"trace_id,omitempty"`
}

type debugSpan struct {
	Op        string `json:"op"`
	Status    string `json:"status"`
	TraceID   string `json:"trace_id"`
	KeyHash   uint64 `json:"key_hash"`
	QueueWait int64  `json:"queue_wait_ns"`
	Duration  int64  `json:"duration_ns"`
	Unix      uint64 `json:"unix_nanos"`
}

type debugHotKey struct {
	KeyHash uint64 `json:"key_hash"`
	Count   uint64 `json:"count"`
	Err     uint64 `json:"err"`
}

func debugMetrics(srv *server.Server) map[string]any {
	m := srv.MetricsSnapshot(wire.MetricsAll)
	hists := make(map[string]debugHist, len(m.Hists))
	for i := range m.Hists {
		h := &m.Hists[i]
		hists[wire.HistName(h.ID)] = debugHist{
			Count:  h.Snap.Count,
			Mean:   h.Snap.Mean(),
			P50:    h.Snap.Quantile(0.50),
			P99:    h.Snap.Quantile(0.99),
			P999:   h.Snap.Quantile(0.999),
			MaxBkt: h.Snap.Quantile(1),
		}
	}
	counters := make(map[string]uint64, len(m.Counters))
	for _, c := range m.Counters {
		counters[wire.CounterName(c.ID)] = c.Value
	}
	slow := make([]debugSlowOp, len(m.SlowOps))
	for i, r := range m.SlowOps {
		slow[i] = debugSlowOp{
			Op:       wire.Op(r.Op).String(),
			KeyHash:  r.KeyHash,
			Duration: int64(r.DurationNanos),
			Version:  r.Version,
			Unix:     r.UnixNanos,
		}
		if !r.TraceID.IsZero() {
			slow[i].TraceID = r.TraceID.String()
		}
	}
	spans := make([]debugSpan, len(m.Spans))
	for i, sp := range m.Spans {
		spans[i] = debugSpan{
			Op:        wire.Op(sp.Op).String(),
			Status:    wire.Status(sp.Status).String(),
			TraceID:   sp.TraceID.String(),
			KeyHash:   sp.KeyHash,
			QueueWait: int64(sp.QueueWaitNanos),
			Duration:  int64(sp.DurationNanos),
			Unix:      sp.UnixNanos,
		}
	}
	// Hot keys: the top 10 per class is what an operator scans; the full
	// sketch stays on the wire op.
	hot := make(map[string][]debugHotKey, len(m.HotKeys))
	for _, hc := range m.HotKeys {
		top := hc.Keys.Top(10)
		out := make([]debugHotKey, len(top))
		for i, e := range top {
			out[i] = debugHotKey{KeyHash: e.Key, Count: e.Count, Err: e.Err}
		}
		hot[wire.HotClassName(hc.Class)] = out
	}
	return map[string]any{
		"hists":    hists,
		"counters": counters,
		"slow_ops": slow,
		"traces":   spans,
		"hot_keys": hot,
	}
}
