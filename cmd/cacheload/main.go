// Command cacheload is a load generator for cached. It drives the server
// from the library's workload generators (uniform, zipf, scan, the
// Theorem 4 adversarial cycler) or a recorded .satr trace, over any number
// of connections with optional pipelining, and reports throughput,
// round-trip latency percentiles and the client-observed miss ratio —
// cross-checked against the server's own STATS counters.
//
// The default mode is closed-loop (offered load adapts to server latency;
// right for "how fast can it go"). With -open -rate R the harness switches
// to an open-loop rate-paced schedule whose latency percentiles are
// measured from each batch's intended send time, making them
// coordinated-omission-safe (right for "what is p99 at R ops/s"); see
// internal/load.
//
// Usage:
//
//	cacheload -addr :7070 -workload zipf -universe 200000 -ops 1000000 -conns 8
//	cacheload -addr :7070 -workload adversarial -ops 500000 -conns 4
//	cacheload -addr :7070 -open -rate 100000 -duration 30s -workload zipf
//	cacheload -addr :7070 -trace workload.satr -ops 1000000
//	cacheload -addr :7070 -rehash            # force an online rehash mid-run
//
// The adversarial workload asks the server for its capacity k via STATS and
// builds the Theorem 4 cyclic sequence for it: s disjoint sets of (1−δ)k
// items, each replayed t times. Against a small-α server this manufactures
// conflict misses on every cycle; watch the conflict counter in -stats.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/adversary"
	"repro/internal/load"
	"repro/internal/trace"
	"repro/internal/wire"
	"repro/internal/workload"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "server address")
		conns    = flag.Int("conns", 4, "concurrent connections")
		ops      = flag.Int("ops", 1_000_000, "total GET operations")
		pipeline = flag.Int("pipeline", 16, "requests per round trip")
		valSize  = flag.Int("valsize", 64, "value payload bytes for read-through SETs")
		wl       = flag.String("workload", "zipf", "uniform|zipf|scan|adversarial")
		universe = flag.Int("universe", 1<<18, "workload universe size")
		zipfS    = flag.Float64("zipf-s", 0.99, "zipf skew exponent")
		advDelta = flag.Float64("adv-delta", 0.1, "adversarial capacity gap δ")
		advSets  = flag.Int("adv-sets", 4, "adversarial disjoint set count s")
		advReps  = flag.Int("adv-reps", 8, "adversarial replays per set t")
		seed     = flag.Uint64("seed", 1, "workload seed")
		traceIn  = flag.String("trace", "", "replay a .satr trace instead of a generator")
		readThru = flag.Bool("readthrough", true, "SET every missed key (read-through)")
		verify   = flag.Bool("verify", true, "verify hit payloads carry their key")
		stats    = flag.Bool("stats", true, "fetch and print server STATS after the run")
		rehash   = flag.Bool("rehash", false, "send REHASH before the run starts")
		open     = flag.Bool("open", false, "open-loop mode: rate-paced arrivals, coordinated-omission-safe percentiles")
		rate     = flag.Float64("rate", 0, "intended aggregate GET rate in ops/sec (open-loop mode, required)")
		duration = flag.Duration("duration", 0, "stop issuing after this long (open-loop mode; 0 = when ops are exhausted)")
	)
	flag.Parse()

	if err := validateFlags(*conns, *ops, *pipeline, *valSize, *universe, *open, *rate, *duration); err != nil {
		fatal(err)
	}

	keys, label, err := buildKeys(*addr, *traceIn, *wl, *ops, *universe, *zipfS, *advDelta, *advSets, *advReps, *seed)
	if err != nil {
		fatal(err)
	}

	var before *wire.Stats
	ctl, err := wire.Dial(*addr)
	if err != nil {
		fatal(fmt.Errorf("dial %s: %w", *addr, err))
	}
	if *rehash {
		if err := ctl.Rehash(); err != nil {
			fatal(err)
		}
		fmt.Println("online rehash requested")
	}
	if before, err = ctl.Stats(false); err != nil {
		fatal(err)
	}

	res, err := load.Run(load.Config{
		Addr:        *addr,
		Conns:       *conns,
		Keys:        keys,
		Pipeline:    *pipeline,
		ValueSize:   *valSize,
		ReadThrough: *readThru,
		Verify:      *verify,
		OpenLoop:    *open,
		Rate:        *rate,
		Duration:    *duration,
	})
	if err != nil {
		fatal(err)
	}

	mode := "closed-loop"
	if res.OpenLoop {
		mode = fmt.Sprintf("open-loop @ %.0f ops/s intended", res.IntendedRate)
	}
	fmt.Printf("workload %s: %d ops over %d conns (pipeline %d, %s) in %v\n",
		label, res.Ops, *conns, *pipeline, mode, res.Elapsed.Round(1e6))
	fmt.Printf("  throughput: %12.0f GET/s\n", res.Throughput)
	lat := "per %d-deep batch"
	if res.OpenLoop {
		lat = "from intended send time, per %d-deep batch"
	}
	fmt.Printf("  latency:    p50=%v p90=%v p99=%v max=%v ("+lat+")\n",
		res.Latency.P50, res.Latency.P90, res.Latency.P99, res.Latency.Max, *pipeline)
	fmt.Printf("  client:     hits=%d misses=%d (miss ratio %.4f) sets=%d corrupt=%d\n",
		res.Hits, res.Misses, res.MissRatio(), res.Sets, res.Corrupt)
	fmt.Printf("  memory:     %.2f allocs/op, gc-pause %v (harness process)\n",
		res.AllocsPerOp, res.GCPause.Round(time.Microsecond))

	if *stats {
		after, err := ctl.Stats(true)
		if err != nil {
			fatal(err)
		}
		dh, dm := after.Hits-before.Hits, after.Misses-before.Misses
		fmt.Printf("  server:     Δhits=%d Δmisses=%d len=%d/%d α=%d buckets=%d\n",
			dh, dm, after.Len, after.Capacity, after.Alpha, after.Buckets)
		fmt.Printf("  server:     evictions=%d conflict=%d flush=%d rehashes=%d migrating=%v pending=%d\n",
			after.Evictions, after.ConflictEvictions, after.FlushEvictions,
			after.Rehashes, after.Migrating, after.Pending)
		if n := len(after.Shards); n > 0 {
			minL, maxL := after.Shards[0].Len, after.Shards[0].Len
			for _, sh := range after.Shards {
				if sh.Len < minL {
					minL = sh.Len
				}
				if sh.Len > maxL {
					maxL = sh.Len
				}
			}
			fmt.Printf("  shards:     %d buckets, occupancy min=%d max=%d\n", n, minL, maxL)
		}
	}
	ctl.Close()
}

// validateFlags rejects nonsensical parameters up front with a clear error
// instead of letting them surface as a hang, a panic, or a zero-length run.
func validateFlags(conns, ops, pipeline, valSize, universe int, open bool, rate float64, duration time.Duration) error {
	return load.ValidateHarnessFlags(conns, ops, pipeline, valSize, universe, open, rate, duration)
}

// buildKeys materializes the request key stream.
func buildKeys(addr, traceIn, wl string, ops, universe int, zipfS, advDelta float64, advSets, advReps int, seed uint64) (trace.Sequence, string, error) {
	if traceIn != "" {
		f, err := os.Open(traceIn)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		seq, err := trace.Read(f)
		if err != nil {
			return nil, "", err
		}
		gen := workload.Fixed{Label: fmt.Sprintf("trace(%s)", traceIn), Seq: seq}
		return gen.Generate(ops, seed), gen.Name(), nil
	}

	var gen workload.Generator
	switch wl {
	case "uniform":
		gen = workload.Uniform{Universe: universe}
	case "zipf":
		gen = workload.Zipf{Universe: universe, S: zipfS, Shuffle: true}
	case "scan":
		gen = workload.Scan{Universe: universe}
	case "adversarial":
		// Size the Theorem 4 construction to the server's actual capacity.
		ctl, err := wire.Dial(addr)
		if err != nil {
			return nil, "", fmt.Errorf("dial %s: %w", addr, err)
		}
		st, err := ctl.Stats(false)
		ctl.Close()
		if err != nil {
			return nil, "", err
		}
		adv := adversary.Theorem4{K: int(st.Capacity), Delta: advDelta, Sets: advSets, Reps: advReps}
		if err := adv.Validate(); err != nil {
			return nil, "", err
		}
		gen = workload.Fixed{
			Label: fmt.Sprintf("theorem4(k=%d,δ=%.2f,s=%d,t=%d)", adv.K, advDelta, advSets, advReps),
			Seq:   adv.Build(),
		}
	default:
		return nil, "", fmt.Errorf("unknown workload %q", wl)
	}
	return gen.Generate(ops, seed), gen.Name(), nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "cacheload: %v\n", err)
	os.Exit(1)
}
