package workload

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

func TestGeneratorsProduceRequestedLength(t *testing.T) {
	gens := []Generator{
		Uniform{Universe: 50},
		Zipf{Universe: 50, S: 1.0},
		Zipf{Universe: 50, S: 0.8, Shuffle: true},
		Scan{Universe: 20},
		Phases{PhaseLen: 10, SetSize: 5, Universe: 30},
		ZipfWithScans{HotUniverse: 20, S: 1.0, BurstEvery: 7, BurstLen: 3},
		Fixed{Label: "fixed", Seq: trace.Sequence{1, 2, 3}},
	}
	for _, g := range gens {
		for _, n := range []int{0, 1, 17, 256} {
			got := g.Generate(n, 42)
			if len(got) != n {
				t.Errorf("%s.Generate(%d) returned %d requests", g.Name(), n, len(got))
			}
		}
	}
}

func TestGeneratorsDeterministicInSeed(t *testing.T) {
	gens := []Generator{
		Uniform{Universe: 50},
		Zipf{Universe: 50, S: 1.0, Shuffle: true},
		Phases{PhaseLen: 10, SetSize: 5, Universe: 30},
		ZipfWithScans{HotUniverse: 20, S: 1.0, BurstEvery: 7, BurstLen: 3},
	}
	for _, g := range gens {
		a := g.Generate(500, 7)
		b := g.Generate(500, 7)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s not deterministic at %d", g.Name(), i)
			}
		}
		c := g.Generate(500, 8)
		same := 0
		for i := range a {
			if a[i] == c[i] {
				same++
			}
		}
		if same == len(a) {
			t.Errorf("%s ignores the seed", g.Name())
		}
	}
}

func TestUniformStaysInUniverse(t *testing.T) {
	f := func(seed uint64, uRaw uint8) bool {
		u := int(uRaw%40) + 1
		seq := Uniform{Universe: u, Base: 100}.Generate(200, seed)
		for _, x := range seq {
			if x < 100 || x >= trace.Item(100+u) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestZipfSkew: with s=1 the hottest item should receive roughly
// 1/H(U) of the requests — far more than uniform.
func TestZipfSkew(t *testing.T) {
	const universe = 100
	const n = 100000
	seq := Zipf{Universe: universe, S: 1.0}.Generate(n, 3)
	counts := make(map[trace.Item]int)
	for _, x := range seq {
		counts[x]++
	}
	h := 0.0
	for i := 1; i <= universe; i++ {
		h += 1 / float64(i)
	}
	wantHot := float64(n) / h
	gotHot := float64(counts[0])
	if math.Abs(gotHot-wantHot)/wantHot > 0.1 {
		t.Errorf("hottest item got %.0f requests, want ≈ %.0f", gotHot, wantHot)
	}
	// Rank 1 should clearly beat rank 50.
	if counts[0] <= counts[49] {
		t.Error("Zipf skew missing: rank 1 not hotter than rank 50")
	}
}

func TestZipfZeroSIsUniformish(t *testing.T) {
	const universe = 10
	const n = 50000
	seq := Zipf{Universe: universe, S: 0}.Generate(n, 5)
	counts := make(map[trace.Item]int)
	for _, x := range seq {
		counts[x]++
	}
	want := float64(n) / universe
	for it, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.15 {
			t.Errorf("item %v count %d deviates from uniform %f", it, c, want)
		}
	}
}

func TestZipfShufflePermutesPopularity(t *testing.T) {
	seqPlain := Zipf{Universe: 100, S: 1.2}.Generate(20000, 9)
	seqShuf := Zipf{Universe: 100, S: 1.2, Shuffle: true}.Generate(20000, 9)
	hot := func(s trace.Sequence) trace.Item {
		counts := make(map[trace.Item]int)
		for _, x := range s {
			counts[x]++
		}
		best, bestC := trace.Item(0), -1
		for it, c := range counts {
			if c > bestC {
				best, bestC = it, c
			}
		}
		return best
	}
	if hot(seqPlain) != 0 {
		t.Error("unshuffled Zipf should have item 0 hottest")
	}
	if hot(seqShuf) == 0 {
		t.Log("shuffled Zipf still has item 0 hottest (possible but unlikely); seed-dependent, not failing")
	}
}

func TestScanCycles(t *testing.T) {
	seq := Scan{Universe: 3, Base: 10}.Generate(7, 0)
	want := trace.Sequence{10, 11, 12, 10, 11, 12, 10}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("Scan = %v, want %v", seq, want)
		}
	}
}

func TestPhasesUsesBoundedWorkingSets(t *testing.T) {
	g := Phases{PhaseLen: 50, SetSize: 4, Universe: 1000}
	seq := g.Generate(500, 11)
	for p := 0; p+50 <= len(seq); p += 50 {
		distinct := seq[p : p+50].DistinctCount()
		if distinct > 4 {
			t.Fatalf("phase at %d uses %d distinct items, want ≤ 4", p, distinct)
		}
	}
}

func TestZipfWithScansColdItemsNeverRepeat(t *testing.T) {
	g := ZipfWithScans{HotUniverse: 10, S: 1.0, BurstEvery: 5, BurstLen: 4}
	seq := g.Generate(1000, 13)
	coldCounts := make(map[trace.Item]int)
	for _, x := range seq {
		if x >= 10 { // cold region starts above the hot universe
			coldCounts[x]++
		}
	}
	if len(coldCounts) == 0 {
		t.Fatal("expected some cold burst items")
	}
	for it, c := range coldCounts {
		if c != 1 {
			t.Fatalf("cold item %v repeated %d times", it, c)
		}
	}
}

func TestFixedCycles(t *testing.T) {
	g := Fixed{Label: "x", Seq: trace.Sequence{5, 6}}
	seq := g.Generate(5, 0)
	want := trace.Sequence{5, 6, 5, 6, 5}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("Fixed = %v, want %v", seq, want)
		}
	}
}

func TestGeneratorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s should panic", name)
			}
		}()
		f()
	}
	mustPanic("Uniform U=0", func() { Uniform{}.Generate(1, 0) })
	mustPanic("Zipf U=0", func() { Zipf{}.Generate(1, 0) })
	mustPanic("Scan U=0", func() { Scan{}.Generate(1, 0) })
	mustPanic("Phases bad", func() { Phases{PhaseLen: 1, SetSize: 5, Universe: 2}.Generate(1, 0) })
	mustPanic("Fixed empty", func() { Fixed{}.Generate(1, 0) })
}

func TestMarkovLocality(t *testing.T) {
	// High stickiness with a tiny neighbourhood must produce far fewer
	// distinct items per window than the uniform jumps alone would.
	sticky := Markov{Universe: 10000, Neighbourhood: 8, Stickiness: 0.99}
	loose := Markov{Universe: 10000, Neighbourhood: 8, Stickiness: 0.0}
	s1 := sticky.Generate(20000, 3)
	s2 := loose.Generate(20000, 3)
	if d1, d2 := s1.DistinctCount(), s2.DistinctCount(); d1 >= d2/2 {
		t.Fatalf("sticky distinct %d should be ≪ loose %d", d1, d2)
	}
}

func TestMarkovBoundsAndDeterminism(t *testing.T) {
	g := Markov{Universe: 50, Neighbourhood: 5, Stickiness: 0.8, Base: 100}
	a := g.Generate(5000, 7)
	b := g.Generate(5000, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("not deterministic")
		}
		if a[i] < 100 || a[i] >= 150 {
			t.Fatalf("item %v out of range", a[i])
		}
	}
	mustPanicM := func(g Markov) {
		defer func() { recover() }()
		g.Generate(1, 0)
		t.Fatalf("expected panic for %+v", g)
	}
	mustPanicM(Markov{Universe: 0, Neighbourhood: 1, Stickiness: 0.5})
	mustPanicM(Markov{Universe: 10, Neighbourhood: 20, Stickiness: 0.5})
	mustPanicM(Markov{Universe: 10, Neighbourhood: 2, Stickiness: 1.0})
}
