// Package workload provides synthetic request-sequence generators: the
// benign workloads (uniform, Zipf, scans, phased working sets) used to
// exhibit the associativity threshold on "normal" inputs, and mixtures such
// as Zipf-with-scan-bursts used by the LRU-2 experiment (E14).
//
// All generators are deterministic in (parameters, seed), so every
// experiment is exactly reproducible.
package workload

import (
	"fmt"
	"math"

	"repro/internal/hashfn"
	"repro/internal/trace"
)

// Generator produces request sequences of a requested length.
type Generator interface {
	// Name identifies the generator (used in experiment tables).
	Name() string
	// Generate returns a sequence of n requests, deterministic in seed.
	Generate(n int, seed uint64) trace.Sequence
}

// rng is a small SplitMix64-based PRNG, self-contained so workloads do not
// depend on math/rand ordering guarantees across Go versions.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return hashfn.Mix64(r.state)
}

// intn returns a uniform integer in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("workload: intn(%d)", n))
	}
	// Multiply-shift rejection-free mapping; bias is < 2^-32 for the n used
	// by the experiments, far below sampling noise.
	hi := (r.next() >> 32) * uint64(n) >> 32
	return int(hi)
}

// float64 returns a uniform float in [0, 1).
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// Uniform draws each request independently and uniformly from a universe of
// the given size.
type Uniform struct {
	Universe int
	// Base offsets item identifiers, letting disjoint workloads coexist.
	Base trace.Item
}

// Name implements Generator.
func (u Uniform) Name() string { return fmt.Sprintf("uniform(U=%d)", u.Universe) }

// Generate implements Generator.
func (u Uniform) Generate(n int, seed uint64) trace.Sequence {
	if u.Universe <= 0 {
		panic("workload: Uniform.Universe must be positive")
	}
	r := newRNG(seed)
	out := make(trace.Sequence, n)
	for i := range out {
		out[i] = u.Base + trace.Item(r.intn(u.Universe))
	}
	return out
}

// Zipf draws requests from a Zipf distribution over a finite universe:
// item rank i (1-based) has probability proportional to 1/i^S. It uses an
// exact inverse-CDF sampler with binary search, valid for any S ≥ 0
// (S = 0 degenerates to uniform).
type Zipf struct {
	Universe int
	S        float64
	Base     trace.Item
	// Shuffle, when true, randomly permutes ranks over the universe so that
	// popularity is uncorrelated with item identifier. Without shuffling,
	// item 0 is the hottest.
	Shuffle bool
}

// Name implements Generator.
func (z Zipf) Name() string { return fmt.Sprintf("zipf(U=%d,s=%.2f)", z.Universe, z.S) }

// Generate implements Generator.
func (z Zipf) Generate(n int, seed uint64) trace.Sequence {
	if z.Universe <= 0 {
		panic("workload: Zipf.Universe must be positive")
	}
	cdf := zipfCDF(z.Universe, z.S)
	r := newRNG(seed)

	perm := identityPerm(z.Universe)
	if z.Shuffle {
		shuffle(perm, r)
	}

	out := make(trace.Sequence, n)
	for i := range out {
		u := r.float64()
		rank := searchCDF(cdf, u)
		out[i] = z.Base + trace.Item(perm[rank])
	}
	return out
}

// zipfCDF returns the cumulative distribution over ranks 0..universe-1.
func zipfCDF(universe int, s float64) []float64 {
	cdf := make([]float64, universe)
	total := 0.0
	for i := 0; i < universe; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	cdf[universe-1] = 1 // guard against rounding
	return cdf
}

// searchCDF returns the smallest index i with cdf[i] > u.
func searchCDF(cdf []float64, u float64) int {
	lo, hi := 0, len(cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cdf[mid] > u {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

func identityPerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

func shuffle(p []int, r *rng) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Scan cycles sequentially through a universe: 0, 1, ..., U−1, 0, 1, ...
// A scan over a working set slightly smaller than the cache is the
// canonical workload where set-associativity pays for its buckets.
type Scan struct {
	Universe int
	Base     trace.Item
}

// Name implements Generator.
func (s Scan) Name() string { return fmt.Sprintf("scan(U=%d)", s.Universe) }

// Generate implements Generator.
func (s Scan) Generate(n int, _ uint64) trace.Sequence {
	if s.Universe <= 0 {
		panic("workload: Scan.Universe must be positive")
	}
	out := make(trace.Sequence, n)
	for i := range out {
		out[i] = s.Base + trace.Item(i%s.Universe)
	}
	return out
}

// Phases emulates program phase behaviour: the sequence is divided into
// phases of PhaseLen requests; each phase draws uniformly from a fresh
// working set of SetSize items carved out of a shared universe.
type Phases struct {
	PhaseLen int
	SetSize  int
	Universe int
	Base     trace.Item
}

// Name implements Generator.
func (p Phases) Name() string {
	return fmt.Sprintf("phases(len=%d,set=%d,U=%d)", p.PhaseLen, p.SetSize, p.Universe)
}

// Generate implements Generator.
func (p Phases) Generate(n int, seed uint64) trace.Sequence {
	if p.PhaseLen <= 0 || p.SetSize <= 0 || p.Universe < p.SetSize {
		panic("workload: invalid Phases parameters")
	}
	r := newRNG(seed)
	out := make(trace.Sequence, 0, n)
	for len(out) < n {
		// Draw a fresh working set for this phase.
		set := make([]trace.Item, p.SetSize)
		for i := range set {
			set[i] = p.Base + trace.Item(r.intn(p.Universe))
		}
		for i := 0; i < p.PhaseLen && len(out) < n; i++ {
			out = append(out, set[r.intn(p.SetSize)])
		}
	}
	return out
}

// ZipfWithScans interleaves a hot Zipf working set with periodic one-shot
// scan bursts over cold items that are never revisited. The bursts are the
// "isolated accesses" of the paper's footnote 3: LRU caches them eagerly and
// suffers, LRU-2 ignores items seen only once (experiment E14).
type ZipfWithScans struct {
	HotUniverse int
	S           float64
	// BurstEvery inserts a scan burst after every BurstEvery hot requests.
	BurstEvery int
	// BurstLen is the number of distinct never-reused cold items per burst.
	BurstLen int
	Base     trace.Item
}

// Name implements Generator.
func (z ZipfWithScans) Name() string {
	return fmt.Sprintf("zipf+scans(U=%d,s=%.2f,every=%d,len=%d)",
		z.HotUniverse, z.S, z.BurstEvery, z.BurstLen)
}

// Generate implements Generator.
func (z ZipfWithScans) Generate(n int, seed uint64) trace.Sequence {
	if z.HotUniverse <= 0 || z.BurstEvery <= 0 || z.BurstLen < 0 {
		panic("workload: invalid ZipfWithScans parameters")
	}
	cdf := zipfCDF(z.HotUniverse, z.S)
	r := newRNG(seed)
	out := make(trace.Sequence, 0, n)
	// Cold items start above the hot universe and are never repeated.
	cold := z.Base + trace.Item(z.HotUniverse)
	sinceBurst := 0
	for len(out) < n {
		if sinceBurst == z.BurstEvery {
			sinceBurst = 0
			for i := 0; i < z.BurstLen && len(out) < n; i++ {
				out = append(out, cold)
				cold++
			}
			continue
		}
		out = append(out, z.Base+trace.Item(searchCDF(cdf, r.float64())))
		sinceBurst++
	}
	return out
}

// Fixed replays a pre-built sequence, truncating or cycling to the requested
// length. It adapts hand-built sequences (e.g. adversarial ones) to the
// Generator interface.
type Fixed struct {
	Label string
	Seq   trace.Sequence
}

// Name implements Generator.
func (f Fixed) Name() string { return f.Label }

// Generate implements Generator.
func (f Fixed) Generate(n int, _ uint64) trace.Sequence {
	if len(f.Seq) == 0 {
		panic("workload: Fixed with empty sequence")
	}
	out := make(trace.Sequence, n)
	for i := range out {
		out[i] = f.Seq[i%len(f.Seq)]
	}
	return out
}

// Markov is a two-state locality model: with probability Stickiness the
// next request re-draws from a small hot set around the previous item;
// otherwise it jumps uniformly into the universe (and the hot neighbourhood
// re-centres there). It produces the bursty temporal locality of real
// access traces that neither Zipf (no temporal correlation) nor Scan (no
// randomness) captures.
type Markov struct {
	Universe int
	// Neighbourhood is the size of the hot window around the current locus.
	Neighbourhood int
	// Stickiness is the probability of staying local, in [0, 1).
	Stickiness float64
	Base       trace.Item
}

// Name implements Generator.
func (m Markov) Name() string {
	return fmt.Sprintf("markov(U=%d,nb=%d,p=%.2f)", m.Universe, m.Neighbourhood, m.Stickiness)
}

// Generate implements Generator.
func (m Markov) Generate(n int, seed uint64) trace.Sequence {
	if m.Universe <= 0 || m.Neighbourhood <= 0 || m.Neighbourhood > m.Universe {
		panic("workload: invalid Markov parameters")
	}
	if m.Stickiness < 0 || m.Stickiness >= 1 {
		panic("workload: Markov.Stickiness must be in [0, 1)")
	}
	r := newRNG(seed)
	out := make(trace.Sequence, n)
	locus := 0
	for i := range out {
		if r.float64() < m.Stickiness {
			out[i] = m.Base + trace.Item((locus+r.intn(m.Neighbourhood))%m.Universe)
		} else {
			locus = r.intn(m.Universe)
			out[i] = m.Base + trace.Item(locus)
		}
	}
	return out
}
