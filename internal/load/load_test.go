package load

import (
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
)

func TestConfigValidate(t *testing.T) {
	keys := trace.Sequence{1, 2, 3}
	base := Config{Addr: "x", Conns: 1, Keys: keys}
	cases := []struct {
		name    string
		mutate  func(*Config)
		wantErr string
	}{
		{"ok closed", func(*Config) {}, ""},
		{"ok open", func(c *Config) { c.OpenLoop = true; c.Rate = 100 }, ""},
		{"zero conns", func(c *Config) { c.Conns = 0 }, "conns"},
		{"negative conns", func(c *Config) { c.Conns = -3 }, "conns"},
		{"no keys", func(c *Config) { c.Keys = nil }, "key stream"},
		{"negative pipeline", func(c *Config) { c.Pipeline = -1 }, "pipeline"},
		{"negative duration", func(c *Config) { c.OpenLoop = true; c.Rate = 1; c.Duration = -time.Second }, "duration"},
		{"open without rate", func(c *Config) { c.OpenLoop = true }, "rate"},
		{"open negative rate", func(c *Config) { c.OpenLoop = true; c.Rate = -5 }, "rate"},
		{"closed with rate", func(c *Config) { c.Rate = 100 }, "open-loop"},
	}
	for _, c := range cases {
		cfg := base
		c.mutate(&cfg)
		err := cfg.Validate()
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("%s: Validate() = %v, want nil", c.name, err)
			}
		} else if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: Validate() = %v, want error mentioning %q", c.name, err, c.wantErr)
		}
	}
}

func TestPayloadRoundTrip(t *testing.T) {
	for _, key := range []uint64{0, 1, 1 << 40, ^uint64(0)} {
		for _, size := range []int{0, 8, 64} {
			v := Payload(key, size)
			if len(v) < 8 {
				t.Fatalf("Payload(%d, %d) only %d bytes", key, size, len(v))
			}
			if !VerifyPayload(key, v) {
				t.Errorf("VerifyPayload rejected Payload(%d, %d)", key, size)
			}
			if VerifyPayload(key+1, v) {
				t.Errorf("VerifyPayload accepted wrong key for Payload(%d, %d)", key, size)
			}
		}
	}
}
