// Package load is the load harness for the cached server and its clustered
// form: N connections, each driven by one worker goroutine, replay a key
// stream against the service and measure throughput, latency percentiles
// and the client-observed miss ratio. It has two modes.
//
// Closed loop (the default): each worker keeps at most one batch in flight —
// it sends a pipeline of GETs, waits for all responses, issues read-through
// SETs for the misses, then moves on. Offered load therefore adapts to
// server latency instead of overrunning it, which is the right harness for
// comparing α configurations: the measured QPS difference is the lock
// contention + miss cost difference, not queueing collapse.
//
// Open loop: arrivals follow a fixed rate-paced schedule that does not slow
// down when the server does, and each batch's latency is measured from its
// *intended* send time, not from when the worker got around to sending it.
// This makes the reported percentiles coordinated-omission-safe: a server
// stall inflates the latency of every request that was scheduled during the
// stall, exactly as real clients arriving at their own cadence would have
// experienced it. A closed-loop harness instead stops offering load while
// stalled and records only one slow sample — the classic way tail latency
// gets underreported. Open loop is the right harness for questions like
// "what is p99 at 100k ops/s", closed loop for "how fast can it go".
package load

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/trace"
	"repro/internal/wire"
)

// Conn is one harness connection. Both wire.Client (one node) and
// cluster.Client (consistent-hash routed, optionally replicated) satisfy
// it.
type Conn interface {
	// GetBatch pipelines one GET per key and reports each response through
	// visit; the value passed to visit may alias a connection buffer valid
	// only for the duration of the call.
	GetBatch(keys []uint64, visit func(i int, hit bool, value []byte)) error
	// SetBatch pipelines one SET per key with value(i) producing payloads.
	SetBatch(keys []uint64, value func(i int) []byte) error
	Close() error
}

// RepairReporter is optionally implemented by a Conn (cluster.Client does)
// to report the background read-repair writes it performed. The harness
// sums the counts into Result.Repairs after each worker's connection
// closes, so a replicated run's reported throughput can be priced against
// the maintenance traffic it generated.
type RepairReporter interface {
	// RepairsDone returns the number of completed repair writes.
	RepairsDone() uint64
}

// TopologyReporter is optionally implemented by a Conn (cluster.Client
// does) to report how many times it refreshed its cluster view after
// detecting, via the epochs piggybacked on its responses, that membership
// had changed underneath it. The harness sums the counts into
// Result.Refreshes, so a run that straddled a membership change shows it.
type TopologyReporter interface {
	// TopologyRefreshes returns the number of adopted topology refreshes.
	TopologyRefreshes() uint64
}

// StaleReporter is optionally implemented by a Conn (cluster.Client does)
// to report maintenance writes a destination rejected as version-stale —
// lost-update races the protocol's version check won. The harness sums
// the counts into Result.StaleRepairs.
type StaleReporter interface {
	// StaleRepairs returns the number of version-stale rejections observed.
	StaleRepairs() uint64
}

// LeaseReporter is optionally implemented by a Conn (cluster.Client does)
// to report its lease/near-cache tallies (wire v7): GETs served from the
// in-process near-cache, zero-token stale hints served as hits, fill
// leases granted, fills refused LEASE_LOST, and keys that waited on
// another caller's fill. The harness sums the counts into Result, so a
// storm run shows how much of the herd the lease machinery absorbed.
type LeaseReporter interface {
	LeaseCounters() (nearHits, staleHints, grants, lost, waits uint64)
}

// Config describes one load run.
type Config struct {
	// Addr is the server address, dialed with wire.Dial when Dial is nil.
	Addr string
	// Dial overrides connection establishment, e.g. to route through a
	// cluster.Client or to inject faults. Called once per worker.
	Dial func() (Conn, error)
	// Conns is the number of concurrent connections (workers). Must be ≥1.
	Conns int
	// Keys is the request key stream. It is split into contiguous
	// per-worker chunks, preserving each chunk's order (which adversarial
	// cyclic workloads depend on).
	Keys trace.Sequence
	// Pipeline is the batch depth per round trip; 0 or 1 means one request
	// per round trip. A whole batch is written before any response is read,
	// so keep Pipeline × (frame + ValueSize) comfortably below the kernel's
	// socket buffering (tens of KB): a batch larger than both send and
	// receive buffers can deadlock writer against writer. Typical depths
	// (≤256) are nowhere near the limit.
	Pipeline int
	// ValueSize is the payload size for read-through SETs. Minimum 8: the
	// first 8 bytes encode the key so readers can verify integrity.
	ValueSize int
	// ReadThrough, when true, SETs every missed key (emulating a cache in
	// front of a backing store). When false the run is GET-only.
	ReadThrough bool
	// Verify checks that every GET hit carries the value Payload would have
	// written for that key; mismatches are counted in Result.Corrupt.
	Verify bool

	// OpenLoop switches to the rate-paced arrival schedule described in the
	// package comment. Requires Rate > 0.
	OpenLoop bool
	// Rate is the intended aggregate arrival rate in GET operations per
	// second, divided evenly across workers. Open loop only.
	Rate float64
	// Duration, when positive, stops issuing batches whose intended send
	// time falls after Duration; zero means the run ends when the key
	// stream is exhausted. Open loop only.
	Duration time.Duration
}

// Result aggregates one load run.
type Result struct {
	Ops     int
	Hits    int
	Misses  int
	Sets    int
	Corrupt int
	// Repairs counts background read-repair writes performed by connections
	// that implement RepairReporter (replicated cluster clients); 0
	// otherwise. Repair traffic rides alongside the measured ops — it is
	// replication's maintenance cost, not user throughput.
	Repairs int
	// Refreshes counts topology refreshes performed by connections that
	// implement TopologyReporter (cluster clients); 0 otherwise. A nonzero
	// count means the cluster's membership changed mid-run and the
	// router(s) converged on their own.
	Refreshes int
	// StaleRepairs counts maintenance writes rejected as version-stale,
	// reported by connections that implement StaleReporter; 0 otherwise.
	// Each one is a lost-update race the versioned-write check won.
	StaleRepairs int
	// Lease/near-cache tallies, from connections implementing
	// LeaseReporter (wire v7); all 0 otherwise. NearHits are GETs that
	// never left the client process; StaleHints were served the key's
	// last known value while a fill was in flight; LeaseGrants/LeaseLost
	// count fills this run won and lost; LeaseWaits count keys that
	// deferred to another caller's fill.
	NearHits    int
	StaleHints  int
	LeaseGrants int
	LeaseLost   int
	LeaseWaits  int
	Elapsed     time.Duration
	// Throughput is GET operations per second.
	Throughput float64
	// AllocsPerOp is the process-wide heap allocation count per GET during
	// the run (runtime.MemStats.Mallocs delta over Ops). It covers every
	// goroutine in the process — harness workers, router internals, and
	// any in-process server — which is the point: the PR 9 hot path is
	// gated end to end, and a regression anywhere in the round trip shows
	// up here. External-process servers contribute only their client side.
	AllocsPerOp float64
	// GCPause is the total stop-the-world GC pause accumulated during the
	// run (runtime.MemStats.PauseTotalNs delta) — the latency tax the
	// allocation rate actually charged.
	GCPause time.Duration
	// Latency summarizes per-round-trip latencies (one sample per pipelined
	// batch). In open-loop mode each sample is measured from the batch's
	// intended send time, so schedule slip counts as latency.
	Latency LatencySummary
	// OpenLoop and IntendedRate echo the configuration so reports can label
	// percentiles as coordinated-omission-safe (or not).
	OpenLoop     bool
	IntendedRate float64
}

// MissRatio returns the client-observed GET miss ratio.
func (r Result) MissRatio() float64 {
	if r.Ops == 0 {
		return 0
	}
	return float64(r.Misses) / float64(r.Ops)
}

// LatencySummary holds percentiles over round-trip latency samples.
type LatencySummary struct {
	P50, P90, P99, Max time.Duration
}

func summarize(samples []time.Duration) LatencySummary {
	if len(samples) == 0 {
		return LatencySummary{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	at := func(p float64) time.Duration {
		i := int(p * float64(len(samples)-1))
		return samples[i]
	}
	return LatencySummary{
		P50: at(0.50), P90: at(0.90), P99: at(0.99), Max: samples[len(samples)-1],
	}
}

// Payload builds the deterministic value stored for key: the key in
// little-endian followed by a repeating fill byte, size bytes total
// (minimum 8).
func Payload(key uint64, size int) []byte {
	if size < 8 {
		size = 8
	}
	v := make([]byte, size)
	binary.LittleEndian.PutUint64(v, key)
	fill := byte(key>>3) | 1
	for i := 8; i < size; i++ {
		v[i] = fill
	}
	return v
}

// VerifyPayload reports whether v is a payload Payload could have written
// for key: correct key prefix and correct fill bytes. The length is not
// checked against any particular size, so runs with different ValueSize
// against the same server still verify each other's entries.
func VerifyPayload(key uint64, v []byte) bool {
	if len(v) < 8 || binary.LittleEndian.Uint64(v) != key {
		return false
	}
	fill := byte(key>>3) | 1
	for _, b := range v[8:] {
		if b != fill {
			return false
		}
	}
	return true
}

type workerResult struct {
	ops, hits, misses, sets, corrupt, repairs, refreshes, stale int
	nearHits, staleHints, leaseGrants, leaseLost, leaseWaits    int
	latencies                                                   []time.Duration
	err                                                         error
}

// Validate checks the configuration without running it.
func (cfg Config) Validate() error {
	if cfg.Conns <= 0 {
		return fmt.Errorf("load: conns %d must be positive", cfg.Conns)
	}
	if len(cfg.Keys) == 0 {
		return fmt.Errorf("load: empty key stream")
	}
	if cfg.Pipeline < 0 {
		return fmt.Errorf("load: pipeline depth %d must not be negative", cfg.Pipeline)
	}
	if cfg.Duration < 0 {
		return fmt.Errorf("load: duration %v must not be negative", cfg.Duration)
	}
	if cfg.OpenLoop && cfg.Rate <= 0 {
		return fmt.Errorf("load: open-loop rate %g must be positive", cfg.Rate)
	}
	if !cfg.OpenLoop && cfg.Rate != 0 {
		return fmt.Errorf("load: rate is only meaningful in open-loop mode")
	}
	return nil
}

// ValidateHarnessFlags rejects nonsensical harness command-line parameters
// with flag-style error messages; cmd/cacheload and cmd/cachecluster share
// it so the rules cannot drift. Config.Validate re-checks the subset that
// reaches Run.
func ValidateHarnessFlags(conns, ops, pipeline, valSize, universe int, open bool, rate float64, duration time.Duration) error {
	switch {
	case conns <= 0:
		return fmt.Errorf("-conns %d: connection count must be positive", conns)
	case ops <= 0:
		return fmt.Errorf("-ops %d: operation count must be positive", ops)
	case pipeline < 0:
		return fmt.Errorf("-pipeline %d: batch depth must not be negative", pipeline)
	case valSize < 8:
		return fmt.Errorf("-valsize %d: payloads carry an 8-byte key prefix; need at least 8", valSize)
	case universe <= 0:
		return fmt.Errorf("-universe %d: universe size must be positive", universe)
	case duration < 0:
		return fmt.Errorf("-duration %v: duration must not be negative", duration)
	case open && rate <= 0:
		return fmt.Errorf("-open requires -rate > 0 (got %g)", rate)
	case !open && rate != 0:
		return fmt.Errorf("-rate is only meaningful with -open")
	case !open && duration != 0:
		return fmt.Errorf("-duration is only meaningful with -open")
	}
	return nil
}

// Run executes the configured load and reports aggregate results.
func Run(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	depth := cfg.Pipeline
	if depth <= 0 {
		depth = 1
	}
	dial := cfg.Dial
	if dial == nil {
		dial = func() (Conn, error) { return wire.Dial(cfg.Addr) }
	}

	// Contiguous chunks: worker i replays its slice in order.
	chunks := make([]trace.Sequence, 0, cfg.Conns)
	per := (len(cfg.Keys) + cfg.Conns - 1) / cfg.Conns
	for off := 0; off < len(cfg.Keys); off += per {
		end := off + per
		if end > len(cfg.Keys) {
			end = len(cfg.Keys)
		}
		chunks = append(chunks, cfg.Keys[off:end])
	}

	results := make([]workerResult, len(chunks))
	var wg sync.WaitGroup
	var ms0 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for i, chunk := range chunks {
		wg.Add(1)
		go func(i int, keys trace.Sequence) {
			defer wg.Done()
			results[i] = runWorker(cfg, dial, keys, depth, len(chunks), start)
		}(i, chunk)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var ms1 runtime.MemStats
	runtime.ReadMemStats(&ms1)

	agg := Result{OpenLoop: cfg.OpenLoop, IntendedRate: cfg.Rate}
	var samples []time.Duration
	for _, r := range results {
		if r.err != nil {
			return Result{}, r.err
		}
		agg.Ops += r.ops
		agg.Hits += r.hits
		agg.Misses += r.misses
		agg.Sets += r.sets
		agg.Corrupt += r.corrupt
		agg.Repairs += r.repairs
		agg.Refreshes += r.refreshes
		agg.StaleRepairs += r.stale
		agg.NearHits += r.nearHits
		agg.StaleHints += r.staleHints
		agg.LeaseGrants += r.leaseGrants
		agg.LeaseLost += r.leaseLost
		agg.LeaseWaits += r.leaseWaits
		samples = append(samples, r.latencies...)
	}
	agg.Elapsed = elapsed
	if elapsed > 0 {
		agg.Throughput = float64(agg.Ops) / elapsed.Seconds()
	}
	if agg.Ops > 0 {
		agg.AllocsPerOp = float64(ms1.Mallocs-ms0.Mallocs) / float64(agg.Ops)
	}
	agg.GCPause = time.Duration(ms1.PauseTotalNs - ms0.PauseTotalNs)
	agg.Latency = summarize(samples)
	return agg, nil
}

func runWorker(cfg Config, dial func() (Conn, error), keys trace.Sequence, depth, workers int, start time.Time) (res workerResult) {
	conn, err := dial()
	if err != nil {
		res.err = fmt.Errorf("load: dial: %w", err)
		return res
	}
	// Read the repair count only after Close: a replicated client stops its
	// repair worker there, so the count no longer moves.
	defer func() {
		conn.Close()
		if rr, ok := conn.(RepairReporter); ok {
			res.repairs = int(rr.RepairsDone())
		}
		if tr, ok := conn.(TopologyReporter); ok {
			res.refreshes = int(tr.TopologyRefreshes())
		}
		if sr, ok := conn.(StaleReporter); ok {
			res.stale = int(sr.StaleRepairs())
		}
		if lr, ok := conn.(LeaseReporter); ok {
			nh, sh, lg, ll, lw := lr.LeaseCounters()
			res.nearHits, res.staleHints = int(nh), int(sh)
			res.leaseGrants, res.leaseLost, res.leaseWaits = int(lg), int(ll), int(lw)
		}
	}()

	// Open-loop pacing: this worker owes one batch every interval, on a
	// fixed schedule anchored at the shared start time. The schedule never
	// resets — if the server stalls, the worker falls behind and every
	// subsequent batch's latency includes the backlog it inherited.
	var interval time.Duration
	if cfg.OpenLoop {
		perWorker := cfg.Rate / float64(workers)
		interval = time.Duration(float64(depth) / perWorker * float64(time.Second))
	}

	res.latencies = make([]time.Duration, 0, len(keys)/depth+1)
	batchKeys := make([]uint64, 0, depth)
	missed := make([]uint64, 0, depth)
	batchIdx := 0
	for off := 0; off < len(keys); off += depth {
		end := off + depth
		if end > len(keys) {
			end = len(keys)
		}
		batchKeys = batchKeys[:0]
		for _, k := range keys[off:end] {
			batchKeys = append(batchKeys, uint64(k))
		}

		t0 := time.Now()
		if cfg.OpenLoop {
			intended := start.Add(time.Duration(batchIdx) * interval)
			batchIdx++
			if cfg.Duration > 0 && intended.Sub(start) > cfg.Duration {
				break
			}
			if d := time.Until(intended); d > 0 {
				time.Sleep(d)
			}
			t0 = intended
		}

		missed = missed[:0]
		err := conn.GetBatch(batchKeys, func(i int, hit bool, value []byte) {
			res.ops++
			if hit {
				res.hits++
				if cfg.Verify && !VerifyPayload(batchKeys[i], value) {
					res.corrupt++
				}
			} else {
				res.misses++
				missed = append(missed, batchKeys[i])
			}
		})
		if err != nil {
			res.err = err
			return res
		}
		res.latencies = append(res.latencies, time.Since(t0))

		if cfg.ReadThrough && len(missed) > 0 {
			m := missed
			if err := conn.SetBatch(m, func(i int) []byte {
				return Payload(m[i], cfg.ValueSize)
			}); err != nil {
				res.err = err
				return res
			}
			res.sets += len(m)
		}
	}
	return res
}
