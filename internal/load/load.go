// Package load is a closed-loop load harness for the cached server: N
// connections, each driven by one worker goroutine, replay a key stream
// against the server and measure throughput, round-trip latency percentiles
// and the client-observed miss ratio.
//
// "Closed loop" means each worker keeps at most one batch in flight: it
// sends a pipeline of GETs, waits for all responses, issues read-through
// SETs for the misses, then moves on. Offered load therefore adapts to
// server latency instead of overrunning it, which is the right harness for
// comparing α configurations: the measured QPS difference is the lock
// contention + miss cost difference, not queueing collapse.
package load

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/trace"
	"repro/internal/wire"
)

// Config describes one load run.
type Config struct {
	// Addr is the server address.
	Addr string
	// Conns is the number of concurrent connections (workers). Must be ≥1.
	Conns int
	// Keys is the request key stream. It is split into contiguous
	// per-worker chunks, preserving each chunk's order (which adversarial
	// cyclic workloads depend on).
	Keys trace.Sequence
	// Pipeline is the batch depth per round trip; 0 or 1 means one request
	// per round trip. A whole batch is written before any response is read,
	// so keep Pipeline × (frame + ValueSize) comfortably below the kernel's
	// socket buffering (tens of KB): a batch larger than both send and
	// receive buffers can deadlock writer against writer. Typical depths
	// (≤256) are nowhere near the limit.
	Pipeline int
	// ValueSize is the payload size for read-through SETs. Minimum 8: the
	// first 8 bytes encode the key so readers can verify integrity.
	ValueSize int
	// ReadThrough, when true, SETs every missed key (emulating a cache in
	// front of a backing store). When false the run is GET-only.
	ReadThrough bool
	// Verify checks that every GET hit carries the value Payload would have
	// written for that key; mismatches are counted in Result.Corrupt.
	Verify bool
}

// Result aggregates one load run.
type Result struct {
	Ops     int
	Hits    int
	Misses  int
	Sets    int
	Corrupt int
	Elapsed time.Duration
	// Throughput is GET operations per second.
	Throughput float64
	// Latency summarizes per-round-trip latencies (one sample per pipelined
	// batch).
	Latency LatencySummary
}

// MissRatio returns the client-observed GET miss ratio.
func (r Result) MissRatio() float64 {
	if r.Ops == 0 {
		return 0
	}
	return float64(r.Misses) / float64(r.Ops)
}

// LatencySummary holds percentiles over round-trip latency samples.
type LatencySummary struct {
	P50, P90, P99, Max time.Duration
}

func summarize(samples []time.Duration) LatencySummary {
	if len(samples) == 0 {
		return LatencySummary{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	at := func(p float64) time.Duration {
		i := int(p * float64(len(samples)-1))
		return samples[i]
	}
	return LatencySummary{
		P50: at(0.50), P90: at(0.90), P99: at(0.99), Max: samples[len(samples)-1],
	}
}

// Payload builds the deterministic value stored for key: the key in
// little-endian followed by a repeating fill byte, size bytes total
// (minimum 8).
func Payload(key uint64, size int) []byte {
	if size < 8 {
		size = 8
	}
	v := make([]byte, size)
	binary.LittleEndian.PutUint64(v, key)
	fill := byte(key>>3) | 1
	for i := 8; i < size; i++ {
		v[i] = fill
	}
	return v
}

// VerifyPayload reports whether v is a payload Payload could have written
// for key: correct key prefix and correct fill bytes. The length is not
// checked against any particular size, so runs with different ValueSize
// against the same server still verify each other's entries.
func VerifyPayload(key uint64, v []byte) bool {
	if len(v) < 8 || binary.LittleEndian.Uint64(v) != key {
		return false
	}
	fill := byte(key>>3) | 1
	for _, b := range v[8:] {
		if b != fill {
			return false
		}
	}
	return true
}

type workerResult struct {
	ops, hits, misses, sets, corrupt int
	latencies                        []time.Duration
	err                              error
}

// Run executes the configured load and reports aggregate results.
func Run(cfg Config) (Result, error) {
	if cfg.Conns <= 0 {
		return Result{}, fmt.Errorf("load: conns %d must be positive", cfg.Conns)
	}
	if len(cfg.Keys) == 0 {
		return Result{}, fmt.Errorf("load: empty key stream")
	}
	depth := cfg.Pipeline
	if depth <= 0 {
		depth = 1
	}

	// Contiguous chunks: worker i replays its slice in order.
	chunks := make([]trace.Sequence, 0, cfg.Conns)
	per := (len(cfg.Keys) + cfg.Conns - 1) / cfg.Conns
	for off := 0; off < len(cfg.Keys); off += per {
		end := off + per
		if end > len(cfg.Keys) {
			end = len(cfg.Keys)
		}
		chunks = append(chunks, cfg.Keys[off:end])
	}

	results := make([]workerResult, len(chunks))
	var wg sync.WaitGroup
	start := time.Now()
	for i, chunk := range chunks {
		wg.Add(1)
		go func(i int, keys trace.Sequence) {
			defer wg.Done()
			results[i] = runWorker(cfg, keys, depth)
		}(i, chunk)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var agg Result
	var samples []time.Duration
	for _, r := range results {
		if r.err != nil {
			return Result{}, r.err
		}
		agg.Ops += r.ops
		agg.Hits += r.hits
		agg.Misses += r.misses
		agg.Sets += r.sets
		agg.Corrupt += r.corrupt
		samples = append(samples, r.latencies...)
	}
	agg.Elapsed = elapsed
	if elapsed > 0 {
		agg.Throughput = float64(agg.Ops) / elapsed.Seconds()
	}
	agg.Latency = summarize(samples)
	return agg, nil
}

func runWorker(cfg Config, keys trace.Sequence, depth int) workerResult {
	var res workerResult
	client, err := wire.Dial(cfg.Addr)
	if err != nil {
		res.err = fmt.Errorf("load: dial %s: %w", cfg.Addr, err)
		return res
	}
	defer client.Close()

	res.latencies = make([]time.Duration, 0, len(keys)/depth+1)
	missed := make([]uint64, 0, depth)
	for off := 0; off < len(keys); off += depth {
		end := off + depth
		if end > len(keys) {
			end = len(keys)
		}
		batch := keys[off:end]

		t0 := time.Now()
		for _, k := range batch {
			if err := client.EnqueueGet(uint64(k)); err != nil {
				res.err = err
				return res
			}
		}
		if err := client.Flush(); err != nil {
			res.err = err
			return res
		}
		missed = missed[:0]
		for _, k := range batch {
			resp, err := client.ReadResponse()
			if err != nil {
				res.err = err
				return res
			}
			res.ops++
			switch resp.Status {
			case wire.StatusHit:
				res.hits++
				if cfg.Verify && !VerifyPayload(uint64(k), resp.Value) {
					res.corrupt++
				}
			case wire.StatusMiss:
				res.misses++
				missed = append(missed, uint64(k))
			default:
				res.err = fmt.Errorf("load: unexpected GET response %v", resp.Status)
				return res
			}
		}
		res.latencies = append(res.latencies, time.Since(t0))

		if cfg.ReadThrough && len(missed) > 0 {
			for _, k := range missed {
				if err := client.EnqueueSet(k, Payload(k, cfg.ValueSize)); err != nil {
					res.err = err
					return res
				}
			}
			if err := client.Flush(); err != nil {
				res.err = err
				return res
			}
			for range missed {
				if _, err := client.ReadResponse(); err != nil {
					res.err = err
					return res
				}
				res.sets++
			}
		}
	}
	return res
}
