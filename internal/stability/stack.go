package stability

import (
	"fmt"

	"repro/internal/policy"
	"repro/internal/trace"
)

// StackViolation witnesses that a policy is not a stack algorithm: after
// some prefix of Seq, the cache of size K holds an item the cache of size
// K+1 does not (A_K(σ) ⊄ A_{K+1}(σ), Section 7.1).
type StackViolation struct {
	Seq       trace.Sequence
	PrefixLen int
	K         int
	Missing   trace.Item
	SmallSet  trace.ItemSet
	LargeSet  trace.ItemSet
}

// String renders the witness.
func (v *StackViolation) String() string {
	return fmt.Sprintf(
		"stack property violated: after %v (prefix %d), A_%d=%v contains %v not in A_%d=%v",
		v.Seq[:v.PrefixLen], v.PrefixLen, v.K, v.SmallSet.Sorted(), v.Missing, v.K+1, v.LargeSet.Sorted())
}

// CheckStack verifies the inclusion A_k(σ') ⊆ A_{k+1}(σ') for every prefix
// σ' of seq and every k in [1, maxCap). It runs all cache sizes in lockstep,
// so one pass over seq checks every (prefix, k) pair.
func CheckStack(factory policy.Factory, seq trace.Sequence, maxCap int) *StackViolation {
	if maxCap < 2 {
		panic("stability: CheckStack needs maxCap ≥ 2")
	}
	caches := make([]policy.Policy, maxCap)
	for i := range caches {
		caches[i] = factory(i + 1)
	}
	for pos, x := range seq {
		for _, c := range caches {
			c.Request(x)
		}
		for k := 1; k < maxCap; k++ {
			small := trace.NewItemSet(caches[k-1].Items()...)
			large := trace.NewItemSet(caches[k].Items()...)
			for it := range small {
				if !large.Contains(it) {
					return &StackViolation{
						Seq: seq, PrefixLen: pos + 1, K: k, Missing: it,
						SmallSet: small, LargeSet: large,
					}
				}
			}
		}
	}
	return nil
}

// SearchStack runs randomized CheckStack trials and returns the first
// witness, or nil.
func SearchStack(factory policy.Factory, cfg SearchConfig) *StackViolation {
	r := newSearchRNG(cfg.Seed)
	for t := 0; t < cfg.Trials; t++ {
		if v := CheckStack(factory, r.sequence(cfg), cfg.MaxCap); v != nil {
			return v
		}
	}
	return nil
}

// AnomalyWitness records an occurrence of Belady's anomaly: a > b but
// C(A_a, σ) > C(A_b, σ).
type AnomalyWitness struct {
	Seq                  trace.Sequence
	SmallK, LargeK       int
	SmallCost, LargeCost uint64
}

// String renders the witness.
func (v *AnomalyWitness) String() string {
	return fmt.Sprintf("Belady's anomaly on %v: C(A_%d)=%d > C(A_%d)=%d",
		v.Seq, v.LargeK, v.LargeCost, v.SmallK, v.SmallCost)
}

// CheckBelady compares miss counts across all cache sizes in [1, maxCap] on
// one sequence and reports an anomaly witness if a larger cache ever incurs
// strictly more misses than a smaller one.
func CheckBelady(factory policy.Factory, seq trace.Sequence, maxCap int) *AnomalyWitness {
	costs := make([]uint64, maxCap+1)
	for k := 1; k <= maxCap; k++ {
		costs[k] = MissCount(factory, k, seq)
	}
	for b := 1; b <= maxCap; b++ {
		for a := b + 1; a <= maxCap; a++ {
			if costs[a] > costs[b] {
				return &AnomalyWitness{Seq: seq, SmallK: b, LargeK: a, SmallCost: costs[b], LargeCost: costs[a]}
			}
		}
	}
	return nil
}

// SearchBelady runs randomized CheckBelady trials and returns the first
// anomaly witness, or nil. Stack algorithms can never produce one.
func SearchBelady(factory policy.Factory, cfg SearchConfig) *AnomalyWitness {
	r := newSearchRNG(cfg.Seed)
	for t := 0; t < cfg.Trials; t++ {
		if v := CheckBelady(factory, r.sequence(cfg), cfg.MaxCap); v != nil {
			return v
		}
	}
	return nil
}

// ClassicBeladySequence returns the textbook FIFO anomaly instance
// 1 2 3 4 1 2 5 1 2 3 4 5 (zero-based items), on which FIFO misses 9 times
// with 3 slots but 10 times with 4 slots.
func ClassicBeladySequence() trace.Sequence {
	raw := []int{1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5}
	out := make(trace.Sequence, len(raw))
	for i, v := range raw {
		out[i] = trace.Item(v - 1)
	}
	return out
}

// ConservativeViolation witnesses non-conservativeness: a consecutive window
// of Seq with at most K distinct items on which the policy (with cache size
// K) misses more than K times.
type ConservativeViolation struct {
	Seq        trace.Sequence
	Start, End int // window [Start, End)
	Distinct   int
	MissesIn   int
	K          int
}

// String renders the witness.
func (v *ConservativeViolation) String() string {
	return fmt.Sprintf(
		"conservativeness violated (k=%d): window %v of %v has %d distinct items but %d misses",
		v.K, v.Seq[v.Start:v.End], v.Seq, v.Distinct, v.MissesIn)
}

// CheckConservative runs the policy with cache size k over seq, then scans
// every consecutive window: a conservative algorithm incurs at most k misses
// on any window containing at most k distinct items (Section 3).
func CheckConservative(factory policy.Factory, seq trace.Sequence, k int) *ConservativeViolation {
	p := factory(k)
	missAt := make([]bool, len(seq))
	for i, x := range seq {
		hit, _, _ := p.Request(x)
		missAt[i] = !hit
	}
	for start := 0; start < len(seq); start++ {
		distinct := make(trace.ItemSet)
		misses := 0
		for end := start; end < len(seq); end++ {
			distinct.Add(seq[end])
			if missAt[end] {
				misses++
			}
			if distinct.Len() <= k && misses > k {
				return &ConservativeViolation{
					Seq: seq, Start: start, End: end + 1,
					Distinct: distinct.Len(), MissesIn: misses, K: k,
				}
			}
		}
	}
	return nil
}

// SearchConservative runs randomized CheckConservative trials and returns
// the first witness, or nil.
func SearchConservative(factory policy.Factory, cfg SearchConfig) *ConservativeViolation {
	r := newSearchRNG(cfg.Seed)
	for t := 0; t < cfg.Trials; t++ {
		k := 1 + r.intn(cfg.MaxCap)
		if v := CheckConservative(factory, r.sequence(cfg), k); v != nil {
			return v
		}
	}
	return nil
}
