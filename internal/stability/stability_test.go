package stability

import (
	"strings"
	"testing"

	"repro/internal/policy"
	"repro/internal/trace"
)

func factoryOf(k policy.Kind) policy.Factory { return policy.NewFactory(k, 1) }

// TestPaperClaimsLemma1AndCorollary2 is the headline Section 7 check: the
// randomized stability search must find no violation for LRU, LRU-2, LRU-3
// and LFU (Lemma 1), and must find violations for FIFO and clock
// (Corollary 2).
func TestPaperClaimsLemma1AndCorollary2(t *testing.T) {
	cfg := DefaultSearchConfig(42)
	for _, k := range []policy.Kind{policy.LRUKind, policy.LRU2Kind, policy.LRU3Kind, policy.LFUKind} {
		if v := SearchStability(factoryOf(k), cfg); v != nil {
			t.Errorf("%v claimed stable but: %v", k, v)
		}
	}
	for _, k := range []policy.Kind{policy.FIFOKind, policy.ClockKind} {
		if v := SearchStability(factoryOf(k), cfg); v == nil {
			t.Errorf("%v claimed unstable but no violation found in %d trials", k, cfg.Trials)
		}
	}
}

// TestStackClassification: LRU/LRU-K/LFU/R are stack algorithms; FIFO and
// clock are not (they exhibit Belady's anomaly, hence cannot be stack).
func TestStackClassification(t *testing.T) {
	cfg := DefaultSearchConfig(43)
	for _, k := range []policy.Kind{policy.LRUKind, policy.LRU2Kind, policy.LFUKind, policy.ReuseDistKind} {
		if v := SearchStack(factoryOf(k), cfg); v != nil {
			t.Errorf("%v claimed stack but: %v", k, v)
		}
	}
	for _, k := range []policy.Kind{policy.FIFOKind, policy.ClockKind} {
		if v := SearchStack(factoryOf(k), cfg); v == nil {
			t.Errorf("%v claimed non-stack but no inclusion violation found", k)
		}
	}
}

// TestProposition6 verifies both halves of Proposition 6 for the
// reuse-distance algorithm R: it is a stack algorithm (no inclusion
// violation) but not stable (the paper's exact counterexample works).
func TestProposition6(t *testing.T) {
	cfg := DefaultSearchConfig(44)
	if v := SearchStack(factoryOf(policy.ReuseDistKind), cfg); v != nil {
		t.Errorf("R should be a stack algorithm, but: %v", v)
	}
	w, err := PaperReuseDistWitness()
	if err != nil {
		t.Fatalf("paper counterexample failed to replay: %v", err)
	}
	if w.A != 4 || w.B != 3 {
		t.Errorf("witness sizes a=%d b=%d, want 4 and 3", w.A, w.B)
	}
	if !strings.Contains(w.String(), "stability violated") {
		t.Errorf("witness string: %s", w)
	}
}

func TestCheckStabilityVacuousHypothesis(t *testing.T) {
	// If the small cache evicts nothing (not full), the hypothesis is
	// vacuous and no violation can be reported.
	tau := trace.Sequence{0}
	x := trace.NewItemSet(0, 1)
	if v := CheckStability(factoryOf(policy.FIFOKind), tau, x, 1, 3, 2); v != nil {
		t.Fatalf("vacuous instance reported violation: %v", v)
	}
}

func TestCheckStabilityPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s should panic", name)
			}
		}()
		f()
	}
	mustPanic("a<=b", func() {
		CheckStability(factoryOf(policy.LRUKind), nil, trace.NewItemSet(1), 1, 2, 2)
	})
	mustPanic("z not in X", func() {
		CheckStability(factoryOf(policy.LRUKind), nil, trace.NewItemSet(1), 2, 3, 2)
	})
}

// TestBeladyAnomaly: FIFO must exhibit the anomaly on the classic sequence
// (and clock via search); stack algorithms never can.
func TestBeladyAnomaly(t *testing.T) {
	seq := ClassicBeladySequence()
	fifoCost3 := MissCount(factoryOf(policy.FIFOKind), 3, seq)
	fifoCost4 := MissCount(factoryOf(policy.FIFOKind), 4, seq)
	if fifoCost3 != 9 || fifoCost4 != 10 {
		t.Fatalf("FIFO costs on classic sequence: k=3→%d (want 9), k=4→%d (want 10)", fifoCost3, fifoCost4)
	}
	if w := CheckBelady(factoryOf(policy.FIFOKind), seq, 4); w == nil {
		t.Fatal("CheckBelady missed the classic FIFO anomaly")
	}
	cfg := DefaultSearchConfig(45)
	for _, k := range []policy.Kind{policy.LRUKind, policy.LFUKind, policy.LRU2Kind, policy.ReuseDistKind} {
		if w := SearchBelady(factoryOf(k), cfg); w != nil {
			t.Errorf("stack algorithm %v showed Belady's anomaly: %v", k, w)
		}
	}
}

// TestConservativeClassification: LRU/FIFO/clock pass the window check;
// flush-when-full fails it. The paper also claims LFU is conservative
// (Section 3), but that claim is wrong — see TestLFUNotConservative.
func TestConservativeClassification(t *testing.T) {
	cfg := DefaultSearchConfig(46)
	cfg.Trials = 1500
	for _, k := range []policy.Kind{policy.LRUKind, policy.FIFOKind, policy.ClockKind} {
		if v := SearchConservative(factoryOf(k), cfg); v != nil {
			t.Errorf("%v claimed conservative but: %v", k, v)
		}
	}
	if v := SearchConservative(factoryOf(policy.FlushWhenFullKind), cfg); v == nil {
		t.Error("flush-when-full claimed non-conservative but no witness found")
	}
}

// TestLFUNotConservative documents a reproduction finding: contrary to the
// paper's Section 3 classification, LFU is NOT conservative. Once item A's
// frequency count reaches 2, fresh items B and C (count ≤ 1) evict each
// other forever; the window B C B C has 2 distinct items but 4 misses with
// k = 2.
func TestLFUNotConservative(t *testing.T) {
	seq := trace.Sequence{0, 0, 1, 2, 1, 2} // A A B C B C
	v := CheckConservative(factoryOf(policy.LFUKind), seq, 2)
	if v == nil {
		t.Fatal("expected the deterministic LFU conservativeness witness")
	}
	if v.MissesIn <= v.K || v.Distinct > v.K {
		t.Fatalf("not a real witness: %+v", v)
	}
	// The randomized search finds witnesses too.
	cfg := DefaultSearchConfig(46)
	if w := SearchConservative(factoryOf(policy.LFUKind), cfg); w == nil {
		t.Error("randomized search should also find LFU witnesses")
	}
}

func TestCheckConservativeDirectWitness(t *testing.T) {
	// The deterministic A X Y X witness with k=2 from the policy tests.
	seq := trace.Sequence{10, 20, 30, 20}
	v := CheckConservative(factoryOf(policy.FlushWhenFullKind), seq, 2)
	if v == nil {
		t.Fatal("expected a conservativeness violation")
	}
	if v.MissesIn <= v.K {
		t.Fatalf("witness has %d misses with k=%d, not a violation", v.MissesIn, v.K)
	}
}

// TestClassifyPolicyConsistency runs the full E10 classification for every
// family with paper claims and checks consistency.
func TestClassifyPolicyConsistency(t *testing.T) {
	cfg := DefaultSearchConfig(47)
	cfg.Trials = 1500
	for _, k := range []policy.Kind{
		policy.LRUKind, policy.LRU2Kind, policy.LFUKind,
		policy.FIFOKind, policy.ClockKind, policy.ReuseDistKind,
	} {
		verdict := ClassifyPolicy(k, cfg)
		if !verdict.Consistent() {
			t.Errorf("%v verdict inconsistent with paper claims: stable witness=%v stack witness=%v anomaly=%v",
				k, verdict.StabilityWitness, verdict.StackWitness, verdict.AnomalyWitness)
		}
	}
}

func TestContentsAndOutOn(t *testing.T) {
	// LRU with capacity 2 on 1,2,3: contents {2,3}; accessing 1 evicts 2.
	f := factoryOf(policy.LRUKind)
	c := Contents(f, 2, trace.Sequence{1, 2, 3})
	if !c.Equal(trace.NewItemSet(2, 3)) {
		t.Fatalf("Contents = %v", c.Sorted())
	}
	out, after := OutOn(f, 2, trace.Sequence{1, 2, 3}, 1)
	if !out.Equal(trace.NewItemSet(2)) {
		t.Fatalf("Out = %v, want {2}", out.Sorted())
	}
	if !after.Equal(trace.NewItemSet(1, 3)) {
		t.Fatalf("after = %v, want {1,3}", after.Sorted())
	}
}

func TestMissCount(t *testing.T) {
	got := MissCount(factoryOf(policy.LRUKind), 2, trace.Sequence{1, 2, 1, 3, 1})
	if got != 3 {
		t.Fatalf("MissCount = %d, want 3", got)
	}
}

// TestMRUClassification records our classification of MRU (not in the
// paper): it conforms to a last-access order family, hence is a stack
// algorithm, but the family is not monotone and MRU is not stable.
func TestMRUClassification(t *testing.T) {
	factory := factoryOf(policy.MRUKind)
	cfg := DefaultSearchConfig(48)
	cfg.Trials = 20000
	if v := SearchStack(factory, cfg); v != nil {
		t.Errorf("MRU should be a stack algorithm: %v", v)
	}
	if v := SearchStability(factory, cfg); v == nil {
		t.Error("MRU should not be stable; no violation found")
	}
	if w := SearchBelady(factory, cfg); w != nil {
		t.Errorf("MRU (stack) showed Belady's anomaly: %v", w)
	}
}

func TestKnownMRUWitnessReplays(t *testing.T) {
	w, err := KnownMRUWitness()
	if err != nil {
		t.Fatal(err)
	}
	if w.A != 4 || w.B != 3 {
		t.Fatalf("witness sizes %d/%d, want 4/3", w.A, w.B)
	}
}
