package stability

import (
	"strings"
	"testing"

	"repro/internal/policy"
	"repro/internal/trace"
)

// TestTheorem6ConstructionForStackAlgorithms: for every stack family, the
// constructive order of Theorem 6 must exist on random sequences (every
// A_i \ A_{i−1} a singleton) and the algorithm must conform to the family
// it induces.
func TestTheorem6ConstructionForStackAlgorithms(t *testing.T) {
	cfg := DefaultSearchConfig(60)
	cfg.Trials = 300 // DeriveOrder is O(s·|σ|) per query; keep it modest
	for _, kind := range []policy.Kind{
		policy.LRUKind, policy.LRU2Kind, policy.LFUKind,
		policy.ReuseDistKind, policy.MRUKind,
	} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			factory := factoryOf(kind)
			r := newSearchRNG(cfg.Seed + uint64(kind))
			for trial := 0; trial < cfg.Trials; trial++ {
				seq := r.sequence(cfg)
				if _, err := DeriveOrder(factory, seq); err != nil {
					t.Fatalf("construction failed for stack algorithm: %v", err)
				}
			}
			fam := DerivedFamily(kind.String(), factory)
			if v := SearchConformance(factory, fam, SearchConfig{
				Trials: 150, Universe: cfg.Universe, MaxLen: 10, MaxCap: 4, Seed: cfg.Seed,
			}); v != nil {
				t.Fatalf("%v does not conform to its derived family: %v", kind, v)
			}
		})
	}
}

// TestTheorem6ConstructionFailsForNonStack: for FIFO and clock the
// construction must break on some sequence — that breakdown is precisely a
// stack-property violation.
func TestTheorem6ConstructionFailsForNonStack(t *testing.T) {
	cfg := DefaultSearchConfig(61)
	for _, kind := range []policy.Kind{policy.FIFOKind, policy.ClockKind} {
		factory := factoryOf(kind)
		r := newSearchRNG(cfg.Seed + uint64(kind))
		found := false
		for trial := 0; trial < 2000 && !found; trial++ {
			seq := r.sequence(cfg)
			if _, err := DeriveOrder(factory, seq); err != nil {
				if !strings.Contains(err.Error(), "stack property violated") {
					t.Fatalf("unexpected error text: %v", err)
				}
				found = true
			}
		}
		if !found {
			t.Errorf("%v: Theorem 6 construction never failed; it should for non-stack algorithms", kind)
		}
	}
}

// TestDerivedOrderMatchesLRUFamily: for LRU, the derived order restricted
// to accessed items must agree with the analytic LRU order family
// (recency order).
func TestDerivedOrderMatchesLRUFamily(t *testing.T) {
	factory := factoryOf(policy.LRUKind)
	analytic := LRUKFamily(1)
	r := newSearchRNG(77)
	cfg := DefaultSearchConfig(77)
	for trial := 0; trial < 200; trial++ {
		seq := r.sequence(cfg)
		order, err := DeriveOrder(factory, seq)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < len(order); i++ {
			for j := i + 1; j < len(order); j++ {
				if !analytic.Less(seq, order[i], order[j]) {
					t.Fatalf("derived order %v disagrees with recency order at (%v, %v) on %v",
						order, order[i], order[j], seq)
				}
			}
		}
	}
}

// TestLemma8CacheContentsFollowOrder: for a lazy policy conforming to a
// monotone family (LRU, LFU), the k−1 smallest accessed items w.r.t. ⪯σ
// are always cached by A_k (Lemma 8).
func TestLemma8CacheContentsFollowOrder(t *testing.T) {
	type pipeline struct {
		kind policy.Kind
		fam  OrderFamily
	}
	cfg := DefaultSearchConfig(62)
	for _, p := range []pipeline{
		{policy.LRUKind, LRUKFamily(1)},
		{policy.LRU2Kind, LRUKFamily(2)},
		{policy.LFUKind, LFUFamily()},
	} {
		factory := factoryOf(p.kind)
		r := newSearchRNG(cfg.Seed + uint64(p.kind))
		for trial := 0; trial < 400; trial++ {
			seq := r.sequence(cfg)
			items := seq.Universe().Sorted()
			s := len(items)
			// Sort accessed items by ⪯σ (insertion sort via Less).
			sorted := append([]trace.Item(nil), items...)
			for i := 1; i < len(sorted); i++ {
				for j := i; j > 0 && p.fam.Less(seq, sorted[j], sorted[j-1]); j-- {
					sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
				}
			}
			for k := 1; k <= s; k++ {
				contents := Contents(factory, k, seq)
				for _, x := range sorted[:minInt(k-1, len(sorted))] {
					if !contents.Contains(x) {
						t.Fatalf("%v: Lemma 8 violated on %v: %v (rank < k=%d) not in A_k=%v",
							p.kind, seq, x, k, contents.Sorted())
					}
				}
			}
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
