// Package stability implements the Section 7 framework: the stability
// property of Definition (1), the stack-algorithm property, order families
// with their monotonicity and self-similarity conditions, Belady's anomaly,
// and conservativeness — together with randomized searches that find
// counterexample witnesses for the policies the paper proves unstable.
package stability

import (
	"fmt"

	"repro/internal/hashfn"
	"repro/internal/policy"
	"repro/internal/trace"
)

// Contents returns A_capacity(seq): the cache contents after a fresh policy
// instance serves seq.
func Contents(factory policy.Factory, capacity int, seq trace.Sequence) trace.ItemSet {
	p := factory(capacity)
	for _, x := range seq {
		p.Request(x)
	}
	return trace.NewItemSet(p.Items()...)
}

// OutOn returns Out(A_capacity, tau, z) — the set of items evicted in
// response to the access to z right after tau has been served — together
// with the contents after that access, A_capacity(tau·z).
func OutOn(factory policy.Factory, capacity int, tau trace.Sequence, z trace.Item) (out, after trace.ItemSet) {
	p := factory(capacity)
	for _, x := range tau {
		p.Request(x)
	}
	out = make(trace.ItemSet)
	_, evicted, didEvict := p.Request(z)
	if didEvict {
		out.Add(evicted)
	}
	if be, ok := p.(policy.BatchEvictions); ok {
		for _, e := range be.TakeEvictions() {
			out.Add(e)
		}
	}
	return out, trace.NewItemSet(p.Items()...)
}

// MissCount returns C(A_capacity, seq).
func MissCount(factory policy.Factory, capacity int, seq trace.Sequence) uint64 {
	p := factory(capacity)
	var misses uint64
	for _, x := range seq {
		if hit, _, _ := p.Request(x); !hit {
			misses++
		}
	}
	return misses
}

// StabilityViolation is a witness that a policy is not stable: an instance
// of Definition (1)'s hypothesis whose conclusion fails.
type StabilityViolation struct {
	Tau  trace.Sequence
	X    trace.ItemSet
	Z    trace.Item
	A, B int // cache sizes, A > B

	// OutB is Out(A_B, τ[X], z); ContentsA is A_A(τz); the intersection is
	// nonempty (hypothesis holds) yet ContentsB = A_B(τ[X]z) ⊄ ContentsA.
	OutB      trace.ItemSet
	ContentsA trace.ItemSet
	ContentsB trace.ItemSet
	// Missing is an item of ContentsB \ ContentsA certifying the failure.
	Missing trace.Item
}

// String renders the witness in the paper's notation.
func (v *StabilityViolation) String() string {
	return fmt.Sprintf(
		"stability violated: τ=%v X=%v z=%v a=%d b=%d: Out(A_b,τ[X],z)=%v intersects A_a(τz)=%v, but %v ∈ A_b(τ[X]z)=%v is not in A_a(τz)",
		v.Tau, v.X.Sorted(), v.Z, v.A, v.B, v.OutB.Sorted(), v.ContentsA.Sorted(), v.Missing, v.ContentsB.Sorted())
}

// CheckStability tests Definition (1) on one instance (τ, X, z, a, b) with
// a > b and z ∈ X. It returns a witness if the definition is violated, nil
// otherwise (including when the hypothesis is vacuous).
func CheckStability(factory policy.Factory, tau trace.Sequence, x trace.ItemSet, z trace.Item, a, b int) *StabilityViolation {
	if a <= b {
		panic(fmt.Sprintf("stability: need a > b, got a=%d b=%d", a, b))
	}
	if !x.Contains(z) {
		panic("stability: z must be in X")
	}
	tauX := tau.Restrict(x)
	outB, contentsB := OutOn(factory, b, tauX, z)
	contentsA := Contents(factory, a, tau.Append(z))
	if !outB.Intersects(contentsA) {
		return nil // hypothesis vacuous: nothing to check
	}
	for it := range contentsB {
		if !contentsA.Contains(it) {
			return &StabilityViolation{
				Tau: tau, X: x, Z: z, A: a, B: b,
				OutB: outB, ContentsA: contentsA, ContentsB: contentsB,
				Missing: it,
			}
		}
	}
	return nil
}

// SearchConfig parameterizes the randomized counterexample searches. Small
// universes and short sequences suffice: the paper's own counterexamples
// live in universes of five items.
type SearchConfig struct {
	Trials   int
	Universe int // items are drawn from [0, Universe)
	MaxLen   int // sequences have length in [1, MaxLen]
	MaxCap   int // cache sizes are drawn from [1, MaxCap]; a > b enforced
	Seed     uint64
}

// DefaultSearchConfig returns the configuration the experiments use.
func DefaultSearchConfig(seed uint64) SearchConfig {
	return SearchConfig{Trials: 4000, Universe: 6, MaxLen: 16, MaxCap: 5, Seed: seed}
}

// SearchStability runs randomized trials of CheckStability and returns the
// first witness found, or nil if the policy passed every trial. For the
// provably stable policies (LRU, LRU-K, LFU) it must return nil; for FIFO
// and clock it finds a witness within a few hundred trials.
func SearchStability(factory policy.Factory, cfg SearchConfig) *StabilityViolation {
	r := newSearchRNG(cfg.Seed)
	for t := 0; t < cfg.Trials; t++ {
		tau, x, z, a, b := r.stabilityInstance(cfg)
		if v := CheckStability(factory, tau, x, z, a, b); v != nil {
			return v
		}
	}
	return nil
}

// searchRNG generates the random instances for all searches in the package.
type searchRNG struct{ seq *hashfn.SeedSequence }

func newSearchRNG(seed uint64) *searchRNG {
	return &searchRNG{seq: hashfn.NewSeedSequence(seed)}
}

func (r *searchRNG) intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("stability: intn(%d)", n))
	}
	return int((r.seq.Next() >> 32) * uint64(n) >> 32)
}

func (r *searchRNG) sequence(cfg SearchConfig) trace.Sequence {
	n := 1 + r.intn(cfg.MaxLen)
	out := make(trace.Sequence, n)
	for i := range out {
		out[i] = trace.Item(r.intn(cfg.Universe))
	}
	return out
}

// stabilityInstance draws (τ, X, z, a, b) with z ∈ X and a > b ≥ 1.
func (r *searchRNG) stabilityInstance(cfg SearchConfig) (trace.Sequence, trace.ItemSet, trace.Item, int, int) {
	tau := r.sequence(cfg)
	x := make(trace.ItemSet)
	for i := 0; i < cfg.Universe; i++ {
		if r.intn(2) == 0 {
			x.Add(trace.Item(i))
		}
	}
	z := trace.Item(r.intn(cfg.Universe))
	x.Add(z)
	b := 1 + r.intn(cfg.MaxCap-1)
	a := b + 1 + r.intn(cfg.MaxCap-b)
	return tau, x, z, a, b
}
