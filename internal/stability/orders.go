package stability

import (
	"fmt"
	"math"

	"repro/internal/policy"
	"repro/internal/trace"
)

// OrderFamily is a family of total orders {⪯σ} over the universe, indexed
// by request sequences (Section 7.1). Less(σ, x, y) reports x ⪯σ y.
// The families here are total orders by construction (ties broken by item
// identity), so Less(σ,x,y) && Less(σ,y,x) iff x == y.
type OrderFamily struct {
	Name string
	Less func(seq trace.Sequence, x, y trace.Item) bool
}

// LRUKFamily returns the order family LRU-K conforms to (Lemma 5):
// Φ(σ,x) = number of requests since the K-th most recent access to x
// (∞ if accessed fewer than K times); x ⪯σ y iff Φ(σ,x) < Φ(σ,y), ties
// toward smaller identity.
func LRUKFamily(k int) OrderFamily {
	if k <= 0 {
		panic(fmt.Sprintf("stability: LRU-K family needs K ≥ 1, got %d", k))
	}
	return OrderFamily{
		Name: fmt.Sprintf("lru%d", k),
		Less: func(seq trace.Sequence, x, y trace.Item) bool {
			tx, ty := kthRecentAccess(seq, x, k), kthRecentAccess(seq, y, k)
			if tx != ty {
				// A later K-th access means fewer requests since it, i.e.
				// smaller Φ, i.e. ⪯-smaller. Missing history (−1) sorts last.
				return tx > ty
			}
			return x <= y
		},
	}
}

// kthRecentAccess returns the position (0-based) of the k-th most recent
// access to x in seq, or −1 if x has been accessed fewer than k times.
func kthRecentAccess(seq trace.Sequence, x trace.Item, k int) int {
	seen := 0
	for i := len(seq) - 1; i >= 0; i-- {
		if seq[i] == x {
			seen++
			if seen == k {
				return i
			}
		}
	}
	return -1
}

// LFUFamily returns the order family LFU conforms to (Lemma 6):
// Φ(σ,x) = number of accesses to x in σ; x ⪯σ y iff Φ(σ,x) > Φ(σ,y), ties
// toward smaller identity.
func LFUFamily() OrderFamily {
	return OrderFamily{
		Name: "lfu",
		Less: func(seq trace.Sequence, x, y trace.Item) bool {
			cx, cy := accessCount(seq, x), accessCount(seq, y)
			if cx != cy {
				return cx > cy
			}
			return x <= y
		},
	}
}

func accessCount(seq trace.Sequence, x trace.Item) int {
	c := 0
	for _, it := range seq {
		if it == x {
			c++
		}
	}
	return c
}

// ReuseDistFamily returns the order family the algorithm R of Proposition 6
// conforms to: Φ(σ,x) = number of requests between the last two accesses to
// x (∞ if accessed fewer than twice); x ⪯σ y iff Φ(σ,x) < Φ(σ,y), ties
// toward smaller identity. This family is *not* monotone, which is why R is
// a stack algorithm but not stable.
func ReuseDistFamily() OrderFamily {
	return OrderFamily{
		Name: "reusedist",
		Less: func(seq trace.Sequence, x, y trace.Item) bool {
			dx, dy := reuseDistance(seq, x), reuseDistance(seq, y)
			if dx != dy {
				return dx < dy
			}
			return x <= y
		},
	}
}

func reuseDistance(seq trace.Sequence, x trace.Item) int64 {
	last, secondLast := -1, -1
	for i := len(seq) - 1; i >= 0 && secondLast < 0; i-- {
		if seq[i] == x {
			if last < 0 {
				last = i
			} else {
				secondLast = i
			}
		}
	}
	if secondLast < 0 {
		return math.MaxInt64
	}
	return int64(last - secondLast - 1)
}

// MonotoneViolation witnesses non-monotonicity of an order family: items
// x, y ∈ σ with y ≠ z such that x ⪯σ y but not x ⪯σz y.
type MonotoneViolation struct {
	Seq  trace.Sequence
	Z    trace.Item
	X, Y trace.Item
}

// String renders the witness.
func (v *MonotoneViolation) String() string {
	return fmt.Sprintf("monotonicity violated: %v ⪯ %v after %v, but not after appending %v",
		v.X, v.Y, v.Seq, v.Z)
}

// CheckMonotone tests the monotonicity condition on one (σ, z) pair: for
// every x, y ∈ σ with y ≠ z, x ⪯σ y must imply x ⪯σz y.
func CheckMonotone(f OrderFamily, seq trace.Sequence, z trace.Item) *MonotoneViolation {
	items := seq.Universe().Sorted()
	ext := seq.Append(z)
	for _, x := range items {
		for _, y := range items {
			if y == z || x == y {
				continue
			}
			if f.Less(seq, x, y) && !f.Less(ext, x, y) {
				return &MonotoneViolation{Seq: seq, Z: z, X: x, Y: y}
			}
		}
	}
	return nil
}

// SearchMonotone runs randomized CheckMonotone trials and returns the first
// witness, or nil. The LRU-K and LFU families pass; ReuseDistFamily fails.
func SearchMonotone(f OrderFamily, cfg SearchConfig) *MonotoneViolation {
	r := newSearchRNG(cfg.Seed)
	for t := 0; t < cfg.Trials; t++ {
		seq := r.sequence(cfg)
		z := trace.Item(r.intn(cfg.Universe))
		if v := CheckMonotone(f, seq, z); v != nil {
			return v
		}
	}
	return nil
}

// SelfSimilarViolation witnesses non-self-similarity: x, y ∈ σ[X] with
// x ⪯σ[X] y but not x ⪯σ y.
type SelfSimilarViolation struct {
	Seq  trace.Sequence
	X    trace.ItemSet
	A, B trace.Item
}

// String renders the witness.
func (v *SelfSimilarViolation) String() string {
	return fmt.Sprintf("self-similarity violated: %v ⪯ %v in σ[X]=%v but not in σ=%v (X=%v)",
		v.A, v.B, v.Seq.Restrict(v.X), v.Seq, v.X.Sorted())
}

// CheckSelfSimilar tests self-similarity on one (σ, X) pair: for every
// x, y ∈ σ[X], x ⪯σ[X] y must imply x ⪯σ y.
func CheckSelfSimilar(f OrderFamily, seq trace.Sequence, x trace.ItemSet) *SelfSimilarViolation {
	restricted := seq.Restrict(x)
	items := restricted.Universe().Sorted()
	for _, a := range items {
		for _, b := range items {
			if a == b {
				continue
			}
			if f.Less(restricted, a, b) && !f.Less(seq, a, b) {
				return &SelfSimilarViolation{Seq: seq, X: x, A: a, B: b}
			}
		}
	}
	return nil
}

// SearchSelfSimilar runs randomized CheckSelfSimilar trials and returns the
// first witness, or nil.
func SearchSelfSimilar(f OrderFamily, cfg SearchConfig) *SelfSimilarViolation {
	r := newSearchRNG(cfg.Seed)
	for t := 0; t < cfg.Trials; t++ {
		seq := r.sequence(cfg)
		x := make(trace.ItemSet)
		for i := 0; i < cfg.Universe; i++ {
			if r.intn(2) == 0 {
				x.Add(trace.Item(i))
			}
		}
		if v := CheckSelfSimilar(f, seq, x); v != nil {
			return v
		}
	}
	return nil
}

// ConformanceViolation witnesses that a policy does not conform to an order
// family: on an eviction, the victim was not the ⪯τz-maximum cached item.
type ConformanceViolation struct {
	Seq      trace.Sequence
	At       int
	Evicted  trace.Item
	Expected trace.Item
}

// String renders the witness.
func (v *ConformanceViolation) String() string {
	return fmt.Sprintf("conformance violated at step %d of %v: evicted %v, order family says %v",
		v.At, v.Seq, v.Evicted, v.Expected)
}

// CheckConformance runs a lazy policy of the given capacity over seq and
// verifies that every eviction victim is exactly the ⪯τz-maximum among the
// items cached before the access (the conformance condition of Section 7.1
// specialized to lazy algorithms).
func CheckConformance(factory policy.Factory, f OrderFamily, seq trace.Sequence, capacity int) *ConformanceViolation {
	p := factory(capacity)
	for i, z := range seq {
		before := p.Items()
		prefixWithZ := seq[:i+1]
		_, evicted, didEvict := p.Request(z)
		if !didEvict {
			continue
		}
		expected := before[0]
		for _, cand := range before[1:] {
			// expected = ⪯-max so far; replace when expected ⪯ cand.
			if f.Less(prefixWithZ, expected, cand) {
				expected = cand
			}
		}
		if evicted != expected {
			return &ConformanceViolation{Seq: seq, At: i, Evicted: evicted, Expected: expected}
		}
	}
	return nil
}

// SearchConformance runs randomized CheckConformance trials and returns the
// first witness, or nil.
func SearchConformance(factory policy.Factory, f OrderFamily, cfg SearchConfig) *ConformanceViolation {
	r := newSearchRNG(cfg.Seed)
	for t := 0; t < cfg.Trials; t++ {
		capacity := 1 + r.intn(cfg.MaxCap)
		if v := CheckConformance(factory, f, r.sequence(cfg), capacity); v != nil {
			return v
		}
	}
	return nil
}
