package stability

import (
	"testing"

	"repro/internal/policy"
	"repro/internal/trace"
)

// TestLemma5OrderFamily: the LRU-K family is monotone and self-similar, and
// the LRU-K policies conform to it.
func TestLemma5OrderFamily(t *testing.T) {
	cfg := DefaultSearchConfig(50)
	for _, k := range []int{1, 2, 3} {
		fam := LRUKFamily(k)
		if v := SearchMonotone(fam, cfg); v != nil {
			t.Errorf("LRU-%d family not monotone: %v", k, v)
		}
		if v := SearchSelfSimilar(fam, cfg); v != nil {
			t.Errorf("LRU-%d family not self-similar: %v", k, v)
		}
	}
	if v := SearchConformance(factoryOf(policy.LRUKind), LRUKFamily(1), cfg); v != nil {
		t.Errorf("LRU does not conform to its family: %v", v)
	}
	if v := SearchConformance(factoryOf(policy.LRU2Kind), LRUKFamily(2), cfg); v != nil {
		t.Errorf("LRU-2 does not conform to its family: %v", v)
	}
	if v := SearchConformance(factoryOf(policy.LRU3Kind), LRUKFamily(3), cfg); v != nil {
		t.Errorf("LRU-3 does not conform to its family: %v", v)
	}
}

// TestLemma6OrderFamily: the LFU family is monotone and self-similar, and
// LFU conforms to it.
func TestLemma6OrderFamily(t *testing.T) {
	cfg := DefaultSearchConfig(51)
	fam := LFUFamily()
	if v := SearchMonotone(fam, cfg); v != nil {
		t.Errorf("LFU family not monotone: %v", v)
	}
	if v := SearchSelfSimilar(fam, cfg); v != nil {
		t.Errorf("LFU family not self-similar: %v", v)
	}
	if v := SearchConformance(factoryOf(policy.LFUKind), fam, cfg); v != nil {
		t.Errorf("LFU does not conform to its family: %v", v)
	}
}

// TestReuseDistFamilyNotMonotone: R conforms to its family (which makes it
// a stack algorithm via Theorem 6), but the family is NOT monotone — the
// structural reason R escapes Theorem 8 and ends up unstable.
func TestReuseDistFamilyNotMonotone(t *testing.T) {
	cfg := DefaultSearchConfig(52)
	fam := ReuseDistFamily()
	if v := SearchConformance(factoryOf(policy.ReuseDistKind), fam, cfg); v != nil {
		t.Errorf("R does not conform to its family: %v", v)
	}
	if v := SearchMonotone(fam, cfg); v == nil {
		t.Error("reuse-distance family should NOT be monotone, no witness found")
	}
}

func TestMonotoneWitnessByHand(t *testing.T) {
	// A concrete non-monotonicity witness for the reuse-distance family:
	// σ = A B A B has Φ(A)=1, Φ(B)=1 → A ⪯σ B. Appending A after a long
	// gap... use σ = A A B B (Φ(A)=0 via A A, Φ(B)=0) then z=A:
	// σz = A A B B A gives Φ(A)=2 > Φ(B)=0, so B ⪯ A flips the order of
	// pair (A, B) even though B ≠ z... (the accessed item became larger).
	seq := trace.Sequence{0, 0, 1, 1}
	fam := ReuseDistFamily()
	if !fam.Less(seq, 0, 1) {
		t.Fatal("expected A ⪯σ B (equal Φ, tie toward smaller id)")
	}
	v := CheckMonotone(fam, seq, 0)
	if v == nil {
		t.Fatal("expected monotonicity violation when accessing A after σ")
	}
	if v.X != 0 || v.Y != 1 {
		t.Fatalf("witness pair (%v, %v), want (A, B)", v.X, v.Y)
	}
}

func TestKthRecentAccess(t *testing.T) {
	seq := trace.Sequence{5, 7, 5, 9, 5}
	if got := kthRecentAccess(seq, 5, 1); got != 4 {
		t.Fatalf("1st recent of 5 = %d, want 4", got)
	}
	if got := kthRecentAccess(seq, 5, 2); got != 2 {
		t.Fatalf("2nd recent of 5 = %d, want 2", got)
	}
	if got := kthRecentAccess(seq, 5, 4); got != -1 {
		t.Fatalf("4th recent of 5 = %d, want -1", got)
	}
	if got := kthRecentAccess(seq, 100, 1); got != -1 {
		t.Fatalf("absent item = %d, want -1", got)
	}
}

func TestReuseDistancePhi(t *testing.T) {
	// σ = A Y Z Z Z Z A B Y Y B C from the paper; at the end:
	// Φ(Y): last two accesses adjacent → 0; Φ(B): positions 8,11 → 2;
	// Φ(A): positions 1,7 → 5; Φ(C): one access → ∞.
	seq, err := trace.ParseLetters("AYZZZZABYYBC")
	if err != nil {
		t.Fatal(err)
	}
	y, b, a, c := trace.Item(24), trace.Item(1), trace.Item(0), trace.Item(2)
	if got := reuseDistance(seq, y); got != 0 {
		t.Fatalf("Φ(Y) = %d, want 0", got)
	}
	if got := reuseDistance(seq, b); got != 2 {
		t.Fatalf("Φ(B) = %d, want 2", got)
	}
	if got := reuseDistance(seq, a); got != 5 {
		t.Fatalf("Φ(A) = %d, want 5", got)
	}
	if got := reuseDistance(seq, c); got <= 1000 {
		t.Fatalf("Φ(C) = %d, want ∞", got)
	}
	// Paper's order: Y ⪯σ Z ⪯σ B ⪯σ A.
	fam := ReuseDistFamily()
	z := trace.Item(25)
	for _, pair := range [][2]trace.Item{{y, z}, {z, b}, {b, a}} {
		if !fam.Less(seq, pair[0], pair[1]) {
			t.Fatalf("expected %v ⪯σ %v", pair[0], pair[1])
		}
	}
}

// TestTheorem8Empirically: conforming to a monotone self-similar family
// implies stability. We cross-check by confirming that the families that
// pass monotone+self-similar searches belong to policies that also pass the
// stability search — already covered individually, but this ties the two
// observations together for the Theorem 8 pipeline.
func TestTheorem8Empirically(t *testing.T) {
	cfg := DefaultSearchConfig(53)
	type pipeline struct {
		kind policy.Kind
		fam  OrderFamily
	}
	for _, p := range []pipeline{
		{policy.LRUKind, LRUKFamily(1)},
		{policy.LRU2Kind, LRUKFamily(2)},
		{policy.LFUKind, LFUFamily()},
	} {
		mono := SearchMonotone(p.fam, cfg) == nil
		self := SearchSelfSimilar(p.fam, cfg) == nil
		conform := SearchConformance(factoryOf(p.kind), p.fam, cfg) == nil
		stable := SearchStability(factoryOf(p.kind), cfg) == nil
		if mono && self && conform && !stable {
			t.Errorf("%v: Theorem 8 contradiction — monotone+self-similar+conformant but unstable", p.kind)
		}
	}
}
