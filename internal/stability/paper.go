package stability

import (
	"fmt"

	"repro/internal/policy"
	"repro/internal/trace"
)

// PaperReuseDistWitness replays the exact counterexample from the proof of
// Proposition 6: universe {A, B, C, Y, Z}, σ = A Y Z Z Z Z A B Y Y B C,
// X = {A, B, C, Y}, comparing R₃ against R₄ on the final access to C.
// The paper concludes that R₃ evicts B (still cached by R₄) while retaining
// A (already evicted by R₄), violating Definition (1).
//
// It returns the violation CheckStability finds, and an error if the
// policies do not behave exactly as the paper describes.
func PaperReuseDistWitness() (*StabilityViolation, error) {
	sigma, err := trace.ParseLetters("AYZZZZABYYBC")
	if err != nil {
		return nil, err
	}
	itemA, itemB, itemC, itemY := sigma[0], sigma[7], sigma[11], sigma[1]
	x := trace.NewItemSet(itemA, itemB, itemC, itemY)
	tau, z := sigma[:len(sigma)-1], sigma[len(sigma)-1]
	if z != itemC {
		return nil, fmt.Errorf("stability: expected final access C, got %v", z)
	}
	factory := policy.NewFactory(policy.ReuseDistKind, 0)

	// Verify the two intermediate facts the paper states.
	outB, _ := OutOn(factory, 3, tau.Restrict(x), z)
	if !outB.Contains(itemB) || outB.Len() != 1 {
		return nil, fmt.Errorf("stability: R₃ evicted %v on the final access, paper says {B}", outB.Sorted())
	}
	out4, contents4 := OutOn(factory, 4, tau, z)
	if !out4.Contains(itemA) || out4.Len() != 1 {
		return nil, fmt.Errorf("stability: R₄ evicted %v on the final access, paper says {A}", out4.Sorted())
	}
	if !contents4.Contains(itemB) {
		return nil, fmt.Errorf("stability: paper says B remains in R₄, contents are %v", contents4.Sorted())
	}

	v := CheckStability(factory, tau, x, z, 4, 3)
	if v == nil {
		return nil, fmt.Errorf("stability: paper counterexample did not violate Definition (1)")
	}
	return v, nil
}

// KnownMRUWitness replays a stability violation for MRU found by
// SearchStability (MRU is not in the paper; this is our classification,
// kept as a deterministic regression artifact). The instance is
// τ = D B A C D A A C D A F D D C E B, X = {A, C, D, E}, z = C, a = 4,
// b = 3: MRU₃ on τ[X] evicts E (still cached by MRU₄) while retaining A
// (already evicted by MRU₄).
func KnownMRUWitness() (*StabilityViolation, error) {
	tau, err := trace.ParseLetters("DBACDAACDAFDDCEB")
	if err != nil {
		return nil, err
	}
	x := trace.NewItemSet(0, 2, 3, 4) // {A, C, D, E}
	z := trace.Item(2)                // C
	v := CheckStability(policy.NewFactory(policy.MRUKind, 0), tau, x, z, 4, 3)
	if v == nil {
		return nil, fmt.Errorf("stability: known MRU witness no longer violates Definition (1)")
	}
	return v, nil
}

// PolicyVerdict is the expected-vs-observed classification of one policy
// family, produced by ClassifyPolicy for experiment E10.
type PolicyVerdict struct {
	Kind policy.Kind

	// Claims from the paper (Lemma 1, Corollary 2, Proposition 6, §7.1).
	ClaimStable bool
	ClaimStack  bool

	// Observations from the randomized searches: a nil witness means no
	// violation was found in the configured number of trials.
	StabilityWitness *StabilityViolation
	StackWitness     *StackViolation
	AnomalyWitness   *AnomalyWitness
}

// Consistent reports whether the observations match the paper's claims:
// claimed-stable policies must have no stability witness, claimed-unstable
// ones must have one, and likewise for the stack property.
func (v PolicyVerdict) Consistent() bool {
	if v.ClaimStable == (v.StabilityWitness != nil) {
		return false
	}
	if v.ClaimStack == (v.StackWitness != nil) {
		return false
	}
	// A stack algorithm can never exhibit Belady's anomaly.
	if v.ClaimStack && v.AnomalyWitness != nil {
		return false
	}
	return true
}

// ClassifyPolicy runs the stability, stack and anomaly searches for one
// policy family and packages the verdict against the paper's claims.
//
// The reuse-distance algorithm's instability is too rare for the random
// search to hit (the paper's own counterexample is carefully crafted), so
// for that family the deterministic Proposition 6 witness is consulted when
// the search comes up empty.
func ClassifyPolicy(kind policy.Kind, cfg SearchConfig) PolicyVerdict {
	factory := policy.NewFactory(kind, cfg.Seed)
	v := PolicyVerdict{
		Kind:             kind,
		ClaimStable:      kind.Stable(),
		ClaimStack:       kind.Stack(),
		StabilityWitness: SearchStability(factory, cfg),
		StackWitness:     SearchStack(factory, cfg),
		AnomalyWitness:   SearchBelady(factory, cfg),
	}
	if v.StabilityWitness == nil && !v.ClaimStable {
		switch kind {
		case policy.ReuseDistKind:
			if w, err := PaperReuseDistWitness(); err == nil {
				v.StabilityWitness = w
			}
		case policy.MRUKind:
			if w, err := KnownMRUWitness(); err == nil {
				v.StabilityWitness = w
			}
		}
	}
	return v
}
