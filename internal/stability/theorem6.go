package stability

import (
	"fmt"

	"repro/internal/policy"
	"repro/internal/trace"
)

// DeriveOrder implements the constructive direction (⇒) of Theorem 6: for
// a lazy stack algorithm A and a sequence σ with s distinct items, the
// ⪯σ-order is
//
//   - position 1: the last requested item σ_|σ|;
//   - position i ∈ [2, s]: the unique item of A_i(σ) \ A_{i−1}(σ);
//   - positions beyond s: the unaccessed items in increasing identity.
//
// It returns the accessed items in ⪯σ order. If A is not a stack algorithm
// the construction breaks down — some A_i(σ) \ A_{i−1}(σ) is not a
// singleton — and an error describing the failure is returned, which is
// itself a non-stack witness.
func DeriveOrder(factory policy.Factory, seq trace.Sequence) ([]trace.Item, error) {
	s := seq.DistinctCount()
	if s == 0 {
		return nil, nil
	}
	order := make([]trace.Item, 0, s)
	order = append(order, seq[len(seq)-1])
	prev := Contents(factory, 1, seq)
	for i := 2; i <= s; i++ {
		cur := Contents(factory, i, seq)
		diff := make([]trace.Item, 0, 1)
		for it := range cur {
			if !prev.Contains(it) {
				diff = append(diff, it)
			}
		}
		if len(diff) != 1 || !prev.SubsetOf(cur) {
			return nil, fmt.Errorf(
				"stability: Theorem 6 construction failed at size %d on %v: |A_%d \\ A_%d| = %d (stack property violated)",
				i, seq, i, i-1, len(diff))
		}
		order = append(order, diff[0])
		prev = cur
	}
	return order, nil
}

// DerivedFamily wraps DeriveOrder as an OrderFamily: Less(σ, x, y) compares
// positions in the derived order, with unaccessed items ranked after all
// accessed ones by identity. It panics if the underlying algorithm is not
// stack on the queried sequence; use DeriveOrder directly to probe.
func DerivedFamily(name string, factory policy.Factory) OrderFamily {
	return OrderFamily{
		Name: "derived-" + name,
		Less: func(seq trace.Sequence, x, y trace.Item) bool {
			order, err := DeriveOrder(factory, seq)
			if err != nil {
				panic(err)
			}
			px, py := -1, -1
			for i, it := range order {
				if it == x {
					px = i
				}
				if it == y {
					py = i
				}
			}
			switch {
			case px >= 0 && py >= 0:
				return px <= py
			case px >= 0:
				return true // accessed ⪯ unaccessed
			case py >= 0:
				return false
			default:
				return x <= y
			}
		},
	}
}
