package experiments

// Extension experiments E15–E18 cover the systems the paper's related-work
// section discusses around the core contribution: randomized vs hardware
// bit-selection indexing (Topham–González [57]), companion/victim caches
// ([16, 39, 17, 31]), the fully-associative mirroring technique (Bender et
// al. [11]), and Mattson-style stack-distance profiling ([38], the origin
// of Section 7.1's stack algorithms).

import (
	"fmt"

	"repro/internal/companion"
	"repro/internal/core"
	"repro/internal/hwcache"
	"repro/internal/mirror"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/stackdist"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// E15Row is one associativity point of the indexing comparison.
type E15Row struct {
	Alpha         int
	BitSelectAMAT float64
	RandomAMAT    stats.Summary
	BitSelectMem  float64 // memory-miss ratio
	RandomMem     stats.Summary
}

// E15Result compares hardware bit-selection indexing against the paper's
// randomized indexing on the classic power-of-two-stride pathology (a
// column-major walk over a row-major matrix with power-of-two leading
// dimension). Bit selection funnels a whole column into a handful of sets
// at every α; randomized indexing restores the threshold behaviour.
type E15Result struct {
	Rows      int
	Cols      int
	LD        uint64
	L1Lines   int
	Trials    int
	RowsTable []E15Row
}

// E15Indexing runs experiment E15.
func E15Indexing(cfg Config) *E15Result {
	matRows := cfg.pick(256, 512)
	const cols = 8
	ld := uint64(1024) // elements; 8 KiB row stride at 8-byte elements
	l1Lines := 512
	trials := cfg.pick(4, 8)
	passes := cfg.pick(4, 8)
	res := &E15Result{Rows: matRows, Cols: cols, LD: ld, L1Lines: l1Lines, Trials: trials}
	addrs := hwcache.ColumnWalk(matRows, cols, 8, ld, passes)

	build := func(alpha int, bitSelect bool, seed uint64) *hwcache.Hierarchy {
		return hwcache.MustNew(hwcache.Config{
			LineSize: 64,
			Levels: []hwcache.LevelConfig{
				{Name: "L1", Lines: l1Lines, Alpha: alpha, Kind: policy.LRUKind, Latency: 4},
			},
			MemLatency: 100,
			Seed:       seed,
			BitSelect:  bitSelect,
		})
	}
	for _, alpha := range []int{1, 2, 4, 8, 16, 32} {
		bit := build(alpha, true, 1)
		bit.AccessAll(addrs)

		out := sim.RunTrialsVec(trials, cfg.Seed+uint64(alpha*17), 2, func(_ int, seed uint64) []float64 {
			h := build(alpha, false, seed)
			h.AccessAll(addrs)
			return []float64{h.AMAT(), h.MissRatio()}
		})
		res.RowsTable = append(res.RowsTable, E15Row{
			Alpha:         alpha,
			BitSelectAMAT: bit.AMAT(),
			RandomAMAT:    stats.Of(out[0]),
			BitSelectMem:  bit.MissRatio(),
			RandomMem:     stats.Of(out[1]),
		})
	}
	return res
}

// Table renders the indexing comparison.
func (r *E15Result) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("E15: bit-selection vs randomized indexing (column walk %d×%d, ld=%d, L1=%d lines)",
			r.Rows, r.Cols, r.LD, r.L1Lines),
		"alpha", "AMAT bit-select", "AMAT randomized", "mem-miss bit", "mem-miss rnd")
	t.Note = "Hardware set indexing is address-bits modulo the set count: a power-of-two leading\n" +
		"dimension funnels whole columns into few sets regardless of α. The paper's fully random\n" +
		"indexing model [57] removes the pathology and the α-threshold re-emerges."
	for _, row := range r.RowsTable {
		t.AddRowf(row.Alpha, row.BitSelectAMAT, row.RandomAMAT.Mean, row.BitSelectMem, row.RandomMem.Mean)
	}
	return t
}

// E16Row is one (α, companion-size) cell of the companion ablation.
type E16Row struct {
	Alpha         int
	CompanionSize int
	ExcessFactor  stats.Summary
	CompanionHits stats.Summary
}

// E16Result measures how much fully associative companion capacity
// substitutes for associativity: conflict misses of an α-way cache are
// absorbed by a companion of a few dozen slots even at α = 1, connecting
// the paper's threshold to the victim-cache literature it cites.
type E16Result struct {
	K      int
	Trials int
	Passes int
	Rows   []E16Row
}

// E16Companion runs experiment E16.
func E16Companion(cfg Config) *E16Result {
	k := cfg.pick(1<<9, 1<<11)
	trials := cfg.pick(6, 16)
	passes := cfg.pick(6, 10)
	res := &E16Result{K: k, Trials: trials, Passes: passes}

	kPrime := k / 2
	seq := trace.RangeSeq(0, trace.Item(kPrime)).Repeat(passes)
	baseline := float64(kPrime)

	for _, alpha := range []int{1, 2, 4} {
		for _, comp := range []int{1, k / 64, k / 16, k / 4} {
			if comp < 1 {
				comp = 1
			}
			out := sim.RunTrialsVec(trials, cfg.Seed+uint64(alpha*1000+comp), 2, func(_ int, seed uint64) []float64 {
				cc, err := companion.New(companion.Config{
					MainCapacity: k, Alpha: alpha, CompanionCapacity: comp,
					Factory: lruFactory(), Seed: seed,
				})
				if err != nil {
					panic(err)
				}
				st := core.RunSequence(cc, seq)
				return []float64{float64(st.Misses) / baseline, float64(cc.CompanionHits())}
			})
			res.Rows = append(res.Rows, E16Row{
				Alpha: alpha, CompanionSize: comp,
				ExcessFactor:  stats.Of(out[0]),
				CompanionHits: stats.Of(out[1]),
			})
		}
	}
	return res
}

// Table renders the companion ablation.
func (r *E16Result) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("E16: companion (victim) cache vs associativity (k=%d, scan of k/2 items × %d passes)", r.K, r.Passes),
		"alpha", "companion", "excess-factor", "companion-hits")
	t.Note = "A small fully associative companion absorbs the conflict victims of an undersized α —\n" +
		"the victim-cache alternative ([31], footnote 2) to raising α past the log k threshold."
	for _, row := range r.Rows {
		t.AddRowf(row.Alpha, row.CompanionSize, row.ExcessFactor.Mean, row.CompanionHits.Mean)
	}
	return t
}

// E17Row is one (policy, α) cell of the mirroring comparison.
type E17Row struct {
	Kind        policy.Kind
	Alpha       int
	NativeRatio stats.Summary // native ⟨A⟩_k vs fully associative A_k'
	MirrorRatio stats.Summary // mirror(A_k') vs fully associative A_k'
	Overflows   stats.Summary
}

// E17Result compares the paper's native set-associative caches against the
// related-work mirroring technique [11]: mirroring tracks the fully
// associative cost for ANY policy (even unstable ones like FIFO) at the
// cost of simulating the fully associative algorithm beside the cache.
type E17Result struct {
	K      int
	KPrime int
	Trials int
	Rows   []E17Row
}

// E17Mirror runs experiment E17.
func E17Mirror(cfg Config) *E17Result {
	k := cfg.pick(1<<9, 1<<10)
	kPrime := k * 3 / 4
	trials := cfg.pick(4, 10)
	seqLen := cfg.pick(40_000, 150_000)
	res := &E17Result{K: k, KPrime: kPrime, Trials: trials}
	gen := workload.Phases{PhaseLen: 2 * kPrime, SetSize: kPrime, Universe: 4 * k}

	for _, kind := range []policy.Kind{policy.LRUKind, policy.FIFOKind} {
		for _, alpha := range []int{8, 64} {
			out := sim.RunTrialsVec(trials, cfg.Seed+uint64(alpha)+uint64(kind*7), 3, func(_ int, seed uint64) []float64 {
				seq := gen.Generate(seqLen, seed)
				factory := policy.NewFactory(kind, seed)
				fa := core.NewFullAssoc(factory, kPrime)
				native := core.MustNewSetAssoc(core.SetAssocConfig{
					Capacity: k, Alpha: alpha, Factory: factory, Seed: seed + 1,
				})
				mir, err := mirror.New(mirror.Config{
					Capacity: k, Alpha: alpha, SimCapacity: kPrime, Factory: factory, Seed: seed + 1,
				})
				if err != nil {
					panic(err)
				}
				faCost := float64(core.RunSequence(fa, seq).Misses)
				nativeCost := float64(core.RunSequence(native, seq).Misses)
				mirrorCost := float64(core.RunSequence(mir, seq).Misses)
				return []float64{nativeCost / faCost, mirrorCost / faCost, float64(mir.Overflows())}
			})
			res.Rows = append(res.Rows, E17Row{
				Kind: kind, Alpha: alpha,
				NativeRatio: stats.Of(out[0]),
				MirrorRatio: stats.Of(out[1]),
				Overflows:   stats.Of(out[2]),
			})
		}
	}
	return res
}

// Table renders the mirroring comparison.
func (r *E17Result) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("E17: native set-associativity vs the mirroring technique [11] (k=%d, k'=%d)", r.K, r.KPrime),
		"policy", "alpha", "native ratio", "mirror ratio", "mirror overflows")
	t.Note = "Both run at k slots and are compared against fully associative A_k'. The mirror follows\n" +
		"the simulated fully associative evictions, so it works even for unstable policies (FIFO),\n" +
		"but must run the simulation beside the cache — the cost the paper's native analysis avoids."
	for _, row := range r.Rows {
		t.AddRowf(row.Kind.String(), row.Alpha, row.NativeRatio.Mean, row.MirrorRatio.Mean, row.Overflows.Mean)
	}
	return t
}

// E18Row is one workload of the stack-distance profile.
type E18Row struct {
	Workload     string
	Distinct     int
	MeanDistance float64
	// Curve holds miss ratios at the probe sizes.
	Curve []float64
	// MatchesSim records whether the one-pass profile agreed exactly with
	// direct LRU simulation at every probe size.
	MatchesSim bool
}

// E18Result exercises Mattson's one-pass stack-distance profiler [38] on
// the workload families, producing whole miss-ratio curves and verifying
// them against direct simulation — the algorithmic payoff of the stack
// property studied in Section 7.1.
type E18Result struct {
	SeqLen     int
	ProbeSizes []int
	Rows       []E18Row
}

// E18StackDist runs experiment E18.
func E18StackDist(cfg Config) *E18Result {
	seqLen := cfg.pick(30_000, 200_000)
	probes := []int{16, 64, 256, 1024, 4096}
	res := &E18Result{SeqLen: seqLen, ProbeSizes: probes}

	gens := []workload.Generator{
		workload.Uniform{Universe: 2048},
		workload.Zipf{Universe: 8192, S: 1.0, Shuffle: true},
		workload.Scan{Universe: 3000},
		workload.Phases{PhaseLen: 5000, SetSize: 500, Universe: 16384},
	}
	for gi, gen := range gens {
		seq := gen.Generate(seqLen, cfg.Seed+uint64(gi))
		p := stackdist.New()
		p.Run(seq)
		curve := p.MissRatioCurve(probes)
		matches := true
		for _, k := range probes {
			fa := core.NewFullAssoc(lruFactory(), k)
			if core.RunSequence(fa, seq).Misses != p.MissCount(k) {
				matches = false
			}
		}
		res.Rows = append(res.Rows, E18Row{
			Workload:     gen.Name(),
			Distinct:     p.Distinct(),
			MeanDistance: p.MeanDistance(),
			Curve:        curve,
			MatchesSim:   matches,
		})
	}
	return res
}

// Table renders the profiles.
func (r *E18Result) Table() *stats.Table {
	headers := []string{"workload", "distinct", "mean-depth"}
	for _, k := range r.ProbeSizes {
		headers = append(headers, fmt.Sprintf("miss@k=%d", k))
	}
	headers = append(headers, "matches-sim")
	t := stats.NewTable(
		fmt.Sprintf("E18: one-pass LRU miss-ratio curves via stack distances [38] (|σ|=%d)", r.SeqLen),
		headers...)
	t.Note = "Stack algorithms admit single-pass profiling of every cache size at once (Mattson 1970);\n" +
		"each curve is verified cell-by-cell against direct LRU simulation."
	for _, row := range r.Rows {
		cells := []interface{}{row.Workload, row.Distinct, row.MeanDistance}
		for _, v := range row.Curve {
			cells = append(cells, v)
		}
		cells = append(cells, row.MatchesSim)
		t.AddRowf(cells...)
	}
	return t
}
