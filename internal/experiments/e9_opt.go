package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/opt"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// E9Row is one workload of the Proposition 5 validation.
type E9Row struct {
	Workload string
	R        float64 // the augmentation knob r of Proposition 5
	// Ratio is C(⟨LRU⟩FF_k, σ) / C(OPT_k'', σ) with k'' = k'/r.
	Ratio stats.Summary
	// Bound is the paper's 1 + 1/(r−1) + o(1) guarantee.
	Bound float64
}

// E9Result validates Proposition 5: set-associative LRU with rehashing is
// (1 + 1/(r−1) + o(1))-competitive with the offline optimum OPT under
// (1 + o(1))·r resource augmentation. With r = 2 this is the classic
// (2 + o(1)) vs OPT at (2 + o(1))× capacity.
type E9Result struct {
	K      int
	Alpha  int
	KPrime int
	Trials int
	SeqLen int
	Rows   []E9Row
}

// E9VsOPT runs experiment E9.
func E9VsOPT(cfg Config) *E9Result {
	k := cfg.pick(1<<8, 1<<9)
	alpha := cfg.pick(32, 64)
	trials := cfg.pick(4, 10)
	seqLen := cfg.pick(30_000, 200_000)

	// k' = k / (1 + Θ(sqrt(log k / α))) as in Theorem 5's hypothesis.
	deltaTheta := math.Sqrt(math.Log(float64(k)) / float64(alpha))
	kPrime := int(float64(k) / (1 + deltaTheta))
	res := &E9Result{K: k, Alpha: alpha, KPrime: kPrime, Trials: trials, SeqLen: seqLen}

	gens := []workload.Generator{
		workload.Zipf{Universe: 4 * k, S: 0.9, Shuffle: true},
		workload.Phases{PhaseLen: 3 * k, SetSize: k * 3 / 4, Universe: 8 * k},
		workload.Uniform{Universe: 2 * k},
	}
	for _, r := range []float64{2, 3} {
		kDoublePrime := int(float64(kPrime) / r)
		for gi, gen := range gens {
			ratios := sim.RunTrials(trials, cfg.Seed+uint64(gi*977)+uint64(r), func(_ int, seed uint64) float64 {
				seq := gen.Generate(seqLen, seed)
				sa := core.MustNewSetAssoc(core.SetAssocConfig{
					Capacity: k, Alpha: alpha, Factory: lruFactory(), Seed: seed + 7,
					Rehash: core.RehashConfig{Mode: core.RehashFullFlush, EveryMisses: uint64(4 * k)},
				})
				saCost := core.RunSequence(sa, seq).Misses
				optCost := opt.Cost(kDoublePrime, seq)
				if optCost == 0 {
					return 1
				}
				return float64(saCost) / float64(optCost)
			})
			res.Rows = append(res.Rows, E9Row{
				Workload: gen.Name(),
				R:        r,
				Ratio:    stats.Of(ratios),
				Bound:    1 + 1/(r-1),
			})
		}
	}
	return res
}

// Table renders the Proposition 5 validation.
func (r *E9Result) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("E9: Proposition 5 — ⟨LRU⟩FF vs offline OPT (k=%d, α=%d, k'=%d, |σ|=%d)",
			r.K, r.Alpha, r.KPrime, r.SeqLen),
		"workload", "r", "measured ratio", "±95%", "paper bound 1+1/(r−1)+o(1)")
	t.Note = "OPT runs at k'' = k'/r slots; the set-associative cache at k with full-flush rehashing.\n" +
		"Paper: ratio ≤ 1 + 1/(r−1) + o(1) w.h.p.; r=2 gives the classic (2+o(1))."
	for _, row := range r.Rows {
		t.AddRowf(row.Workload, row.R, row.Ratio.Mean, row.Ratio.CI95, row.Bound)
	}
	return t
}
