package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/policy"
)

// The experiment tests assert the *shape* the paper predicts — who wins, by
// roughly what factor, where the crossover falls — at Quick scale.

func TestE1ThresholdShape(t *testing.T) {
	res := E1Threshold(QuickConfig())
	if len(res.Rows) < 5 {
		t.Fatalf("too few sweep points: %d", len(res.Rows))
	}
	first := res.Rows[0] // α = 1, direct-mapped
	last := res.Rows[len(res.Rows)-1]
	if first.Alpha != 1 {
		t.Fatalf("sweep should start at α=1, got %d", first.Alpha)
	}
	// Direct-mapped must be much worse than fully associative: with δ=1/2
	// the working set is half the cache and every pass conflicts heavily.
	if first.ExcessFactor.Mean < 2 {
		t.Errorf("α=1 excess factor %.2f, expected ≫ 1", first.ExcessFactor.Mean)
	}
	if first.OverflowProb < 0.99 {
		t.Errorf("α=1 overflow probability %.2f, expected ≈ 1", first.OverflowProb)
	}
	// Well above the threshold the set-associative cache matches the
	// fully associative one (factor ≈ 1) and overflow is rare.
	if last.ExcessFactor.Mean > 1.05 {
		t.Errorf("α=%d excess factor %.3f, expected ≈ 1", last.Alpha, last.ExcessFactor.Mean)
	}
	// Monotone-ish decrease: the curve must never rise substantially.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].ExcessFactor.Mean > res.Rows[i-1].ExcessFactor.Mean*1.25+0.1 {
			t.Errorf("excess factor rose from %.3f (α=%d) to %.3f (α=%d)",
				res.Rows[i-1].ExcessFactor.Mean, res.Rows[i-1].Alpha,
				res.Rows[i].ExcessFactor.Mean, res.Rows[i].Alpha)
		}
	}
	// The crossover (factor within 10% of 1) must happen at ω(1) but well
	// below k: between log₂k/2 and a constant multiple of log₂k·(12/δ²)…
	// empirically within [2, 128·log₂k]; the point is it is neither 1 nor k.
	lg := log2(res.K)
	crossover := -1
	for _, row := range res.Rows {
		if row.ExcessFactor.Mean < 1.1 {
			crossover = row.Alpha
			break
		}
	}
	if crossover < 2 || crossover > 128*lg {
		t.Errorf("crossover at α=%d, expected in [2, %d] (Θ(log k) with constants)", crossover, 128*lg)
	}

	// Ablation shape: contiguous+modulo has no conflicts even at α=1;
	// strided+modulo is catastrophic at every α.
	if res.ModuloContiguous[0].ExcessFactor.Mean > 1.01 {
		t.Errorf("modulo on contiguous scan should be conflict-free, factor %.3f",
			res.ModuloContiguous[0].ExcessFactor.Mean)
	}
	for _, row := range res.ModuloStrided {
		if row.Alpha < res.K/2 && row.ExcessFactor.Mean < 2 {
			t.Errorf("modulo on strided scan should be catastrophic at α=%d, factor %.3f",
				row.Alpha, row.ExcessFactor.Mean)
		}
	}
}

func TestE2CompetitiveShape(t *testing.T) {
	res := E2Competitive(QuickConfig())
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range res.Rows {
		if !row.Lemma2Holds {
			t.Errorf("α=%d: Lemma 2 inequality violated", row.Alpha)
		}
		// The cost ratio must be close to 1 (1-competitive with additive
		// slack); generous tolerance for Quick scale.
		if row.CostRatio.Mean > 1.3 {
			t.Errorf("α=%d: cost ratio %.3f, expected ≈ 1", row.Alpha, row.CostRatio.Mean)
		}
		// Bad evictions must be rare in absolute terms. The paper's
		// per-step bound is loose at these sizes; we check the rate is tiny.
		if row.BadEvictionRate.Mean > 0.02 {
			t.Errorf("α=%d: bad eviction rate %.4f, expected ≪ 1", row.Alpha, row.BadEvictionRate.Mean)
		}
	}
}

func TestE3MaxLoadRespectsBound(t *testing.T) {
	res := E3MaxLoad(QuickConfig())
	for _, row := range res.Rows {
		noise := 3*0.03 + 0.01 // 3σ of a 200-trial Bernoulli + slack
		if row.Empirical > row.Bound+noise {
			t.Errorf("k=%d α=%d: empirical %.4f > bound %.4f", row.K, row.Alpha, row.Empirical, row.Bound)
		}
	}
}

func TestE4SaturationMeetsGuarantee(t *testing.T) {
	res := E4Saturated(QuickConfig())
	for _, row := range res.Rows {
		if row.SuccessFrac < row.GuaranteeLow-0.07 {
			t.Errorf("n=%d m=%d: success %.3f below floor %.3f",
				row.Bins, row.Balls, row.SuccessFrac, row.GuaranteeLow)
		}
		if row.MeanSat < row.Threshold {
			t.Errorf("n=%d m=%d: mean saturated %.1f below f/8=%.1f",
				row.Bins, row.Balls, row.MeanSat, row.Threshold)
		}
	}
}

func TestE5AdversaryShape(t *testing.T) {
	res := E5Adversary(QuickConfig())
	for _, row := range res.Rows {
		conservativeKind := row.Kind.Conservative()
		if conservativeKind && !row.ConservativeBaseline {
			t.Errorf("%v: conservative baseline floor violated", row.Kind)
		}
		if row.Kind == policy.LFUKind && row.ConservativeBaseline {
			t.Errorf("LFU baseline unexpectedly hit the conservative floor (it should not; see §3 discrepancy)")
		}
		// The adversary must hurt: for conservative policies at small α the
		// ratio must be clearly above 1, and it should grow as α shrinks.
		if conservativeKind && row.Alpha == 2 && row.Ratio.Mean < 2 {
			t.Errorf("%v α=2: ratio %.2f, adversary too weak", row.Kind, row.Ratio.Mean)
		}
	}
	// Ratio decreasing in α for LRU.
	get := func(alpha int) float64 {
		for _, row := range res.Rows {
			if row.Kind == policy.LRUKind && row.Alpha == alpha {
				return row.Ratio.Mean
			}
		}
		t.Fatalf("missing LRU α=%d row", alpha)
		return 0
	}
	if !(get(2) > get(8)) {
		t.Errorf("LRU adversary ratio should shrink with α: α2=%.2f α8=%.2f", get(2), get(8))
	}
}

func TestE6RegimesNotCompetitive(t *testing.T) {
	res := E6Regimes(QuickConfig())
	if len(res.Rows) != 3 {
		t.Fatalf("want 3 regimes, got %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if !row.NotCompetitive {
			t.Errorf("regime %q: expected non-competitiveness (ratio %.2f vs c=%.1f)",
				row.Regime, row.Ratio.Mean, row.TargetC)
		}
	}
}

func TestE7E8RehashShape(t *testing.T) {
	res := E7E8Rehash(QuickConfig())
	long, short := res.MaxReps(), res.MinReps()

	noneShort, ok1 := res.RatioFor(core.RehashNone, short)
	noneLong, ok2 := res.RatioFor(core.RehashNone, long)
	ffLong, ok3 := res.RatioFor(core.RehashFullFlush, long)
	ifLong, ok4 := res.RatioFor(core.RehashIncremental, long)
	if !(ok1 && ok2 && ok3 && ok4) {
		t.Fatal("missing cells")
	}
	// Without rehashing the ratio grows with sequence length.
	if noneLong <= noneShort {
		t.Errorf("no-rehash ratio should grow with length: %.2f (t=%d) vs %.2f (t=%d)",
			noneShort, short, noneLong, long)
	}
	// Both rehashing variants beat no-rehash on long sequences...
	if ffLong >= noneLong || ifLong >= noneLong {
		t.Errorf("rehashing should win on long runs: none=%.2f ff=%.2f if=%.2f", noneLong, ffLong, ifLong)
	}
	// ...and match each other (same guarantee, Proposition 4).
	relDiff := (ffLong - ifLong) / ffLong
	if relDiff < 0 {
		relDiff = -relDiff
	}
	if relDiff > 0.35 {
		t.Errorf("FF and IF should be comparable: ff=%.2f if=%.2f", ffLong, ifLong)
	}
}

func TestE9VsOPTWithinBound(t *testing.T) {
	res := E9VsOPT(QuickConfig())
	for _, row := range res.Rows {
		// o(1) slack: allow 20% over the asymptotic bound at Quick scale.
		if row.Ratio.Mean > row.Bound*1.2 {
			t.Errorf("%s r=%.0f: ratio %.3f exceeds bound %.2f(+20%%)",
				row.Workload, row.R, row.Ratio.Mean, row.Bound)
		}
	}
}

func TestE10ClassificationConsistent(t *testing.T) {
	res := E10Stability(QuickConfig())
	if !res.AllConsistent() {
		for _, v := range res.Verdicts {
			if !v.Consistent() {
				t.Errorf("%v inconsistent", v.Kind)
			}
		}
	}
	if res.LFUConservativeDiscrepancy == nil {
		t.Error("expected the LFU conservativeness discrepancy witness")
	}
	// LRU, FIFO, clock must have no conservativeness witness.
	for _, k := range []policy.Kind{policy.LRUKind, policy.FIFOKind, policy.ClockKind} {
		if w := res.ConservativeWitnesses[k]; w != nil {
			t.Errorf("%v should be conservative, witness: %v", k, w)
		}
	}
}

func TestE11Proposition6(t *testing.T) {
	res := E11ReuseDist(QuickConfig())
	if res.StackWitness != nil {
		t.Errorf("R should be stack: %v", res.StackWitness)
	}
	if res.PaperReplayError != nil {
		t.Errorf("paper counterexample: %v", res.PaperReplayError)
	}
	if res.PaperWitness == nil {
		t.Error("missing paper witness")
	}
	if res.FamilyMonotoneWitness == nil {
		t.Error("reuse-distance family should fail monotonicity")
	}
}

func TestE12BeladyShape(t *testing.T) {
	res := E12Belady(QuickConfig())
	if res.ClassicFIFOCost3 != 9 || res.ClassicFIFOCost4 != 10 {
		t.Errorf("classic FIFO costs %d/%d, want 9/10", res.ClassicFIFOCost3, res.ClassicFIFOCost4)
	}
	if res.FIFOWitness == nil || res.ClockWitness == nil {
		t.Error("FIFO and clock should both show anomalies")
	}
	for kind, w := range res.StackAnomalies {
		if w != nil {
			t.Errorf("stack family %v showed an anomaly: %v", kind, w)
		}
	}
}

func TestE13ScheduleShape(t *testing.T) {
	res := E13AccessRehash(QuickConfig())
	// Find the largest reps value present.
	maxReps := 0
	for _, row := range res.Rows {
		if row.Reps > maxReps {
			maxReps = row.Reps
		}
	}
	missSched, ok1 := res.RatioFor("every 2k misses (paper)", maxReps)
	accessSched, ok2 := res.RatioFor("every 2k accesses (broken)", maxReps)
	if !ok1 || !ok2 {
		t.Fatal("missing schedule cells")
	}
	// The broken schedule must be much worse on long replays.
	if accessSched < 2*missSched {
		t.Errorf("access-schedule %.2f should be ≫ miss-schedule %.2f on long replays", accessSched, missSched)
	}
}

func TestE14LRU2Wins(t *testing.T) {
	res := E14LRU2(QuickConfig())
	lru, ok1 := res.MissRatioFor(policy.LRUKind)
	lru2, ok2 := res.MissRatioFor(policy.LRU2Kind)
	if !ok1 || !ok2 {
		t.Fatal("missing rows")
	}
	if lru2 >= lru {
		t.Errorf("LRU-2 (%.4f) should beat LRU (%.4f) on scan-polluted workloads", lru2, lru)
	}
}

func TestTablesRender(t *testing.T) {
	cfg := QuickConfig()
	tables := []interface{ String() string }{
		E3MaxLoad(cfg).Table(),
		E4Saturated(cfg).Table(),
		E11ReuseDist(cfg).Table(),
		E12Belady(cfg).Table(),
	}
	for i, tb := range tables {
		s := tb.String()
		if !strings.Contains(s, "##") || len(s) < 40 {
			t.Errorf("table %d renders poorly:\n%s", i, s)
		}
	}
}
