package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/skewed"
	"repro/internal/stats"
	"repro/internal/trace"
)

// E19Row is one (d, α) cell of the skewed-associativity sweep.
type E19Row struct {
	Choices      int
	Alpha        int
	ExcessFactor stats.Summary
}

// E19Result extends the paper's single-choice model with skewed
// associativity (Seznec-style d-choice placement): the power of two choices
// flattens the balls-and-bins tail, so the associativity threshold moves to
// much smaller α. This quantifies how much of the Θ(log k) threshold is
// specific to single-choice placement.
type E19Result struct {
	K      int
	Delta  float64
	Passes int
	Trials int
	Rows   []E19Row
}

// E19Skewed runs experiment E19 on the same workload as E1: repeated scans
// of a (1−δ)k working set, where the fully associative baseline misses only
// compulsorily.
func E19Skewed(cfg Config) *E19Result {
	k := cfg.pick(1<<10, 1<<12)
	trials := cfg.pick(8, 20)
	passes := cfg.pick(6, 10)
	const delta = 0.5
	res := &E19Result{K: k, Delta: delta, Passes: passes, Trials: trials}

	kPrime := int((1 - delta) * float64(k))
	seq := trace.RangeSeq(0, trace.Item(kPrime)).Repeat(passes)
	baseline := float64(kPrime)

	for _, d := range []int{1, 2, 4} {
		for _, alpha := range []int{1, 2, 4, 8, 16, 32} {
			vals := sim.RunTrials(trials, cfg.Seed+uint64(d*100+alpha), func(_ int, seed uint64) float64 {
				c, err := skewed.New(skewed.Config{Capacity: k, Alpha: alpha, Choices: d, Seed: seed})
				if err != nil {
					panic(err)
				}
				return float64(core.RunSequence(c, seq).Misses) / baseline
			})
			res.Rows = append(res.Rows, E19Row{Choices: d, Alpha: alpha, ExcessFactor: stats.Of(vals)})
		}
	}
	return res
}

// ExcessFor returns the mean excess factor for a (d, α) cell.
func (r *E19Result) ExcessFor(d, alpha int) (float64, bool) {
	for _, row := range r.Rows {
		if row.Choices == d && row.Alpha == alpha {
			return row.ExcessFactor.Mean, true
		}
	}
	return 0, false
}

// Table renders the sweep.
func (r *E19Result) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("E19: skewed associativity — the threshold under d-choice placement (k=%d, δ=%.2f)", r.K, r.Delta),
		"choices d", "alpha", "excess-factor", "±95%")
	t.Note = "Extension beyond the paper: with d independent hash functions per item (Seznec's skewed-\n" +
		"associative cache), two choices flatten the bucket-load tail and the conflict-miss\n" +
		"threshold moves to far smaller α than the single-choice Θ(log k)."
	for _, row := range r.Rows {
		t.AddRowf(row.Choices, row.Alpha, row.ExcessFactor.Mean, row.ExcessFactor.CI95)
	}
	return t
}
