package experiments

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
)

// RehashRow is one (mode, sequence-length) point of the Theorem 5 /
// Proposition 4 validation.
type RehashRow struct {
	Mode core.RehashMode
	Reps int // t: replays per adversarial set; |σ| grows linearly in t
	// Ratio is C(cache, σ) / C(LRU_k', σ) over trials.
	Ratio stats.Summary
	// Rehashes is the mean number of hash changes.
	Rehashes stats.Summary
}

// RehashResult packages E7 (full flushing) and E8 (incremental flushing):
// on ever-longer adversarial sequences, the never-rehashing cache's
// competitive ratio grows without bound, while both rehashing variants stay
// bounded close to 1 — and the two variants match each other.
type RehashResult struct {
	K           int
	Alpha       int
	Delta       float64
	Sets        int
	EveryMisses uint64
	Trials      int
	Rows        []RehashRow
}

// E7E8Rehash runs experiments E7 and E8 together (same harness, three
// rehash modes side by side).
func E7E8Rehash(cfg Config) *RehashResult {
	// α must be in the ω(log k) regime for rehashing to help: a fresh hash
	// must be good for the current working set with probability bounded
	// away from zero (Lemma 3). δ is set to make a bad set likely enough to
	// observe at laptop scale (~25% of sets), which is the honest downscale
	// of the paper's astronomically long adversary.
	k := cfg.pick(1<<9, 1<<10)
	// With n = k/α buckets and mean bucket load (1−δ)α ≈ 21.4, overflow
	// (load > α = 32) sits ≈ 2.2σ out, so a random hash leaves some bucket
	// oversubscribed for a fixed k'-item set with probability ≈ 20–35% —
	// frequent enough to observe bad sets at laptop scale, rare enough that
	// a redraw fixes them (the Lemma 3 regime).
	alpha := 32
	const delta = 0.33
	sets := cfg.pick(8, 16)
	everyMisses := uint64(2 * k)
	trials := cfg.pick(8, 12)
	res := &RehashResult{
		K: k, Alpha: alpha, Delta: delta, Sets: sets,
		EveryMisses: everyMisses, Trials: trials,
	}

	repsList := []int{cfg.pick(16, 16), cfg.pick(48, 48), cfg.pick(96, 160)}
	modes := []core.RehashMode{core.RehashNone, core.RehashFullFlush, core.RehashIncremental}

	for _, reps := range repsList {
		adv := adversary.Theorem4{K: k, Delta: delta, Sets: sets, Reps: reps}
		seq := adv.Build()
		baseline := float64(adv.KPrime() * sets) // conservative LRU at k'

		for _, mode := range modes {
			rehash := core.RehashConfig{}
			if mode != core.RehashNone {
				rehash = core.RehashConfig{Mode: mode, EveryMisses: everyMisses}
			}
			// The trial master seed is shared across modes so that all three
			// caches draw the same initial hash and face the same bad sets —
			// a paired comparison.
			out := sim.RunTrialsVec(trials, cfg.Seed+uint64(reps*31), 2, func(_ int, seed uint64) []float64 {
				sa := core.MustNewSetAssoc(core.SetAssocConfig{
					Capacity: k, Alpha: alpha, Factory: lruFactory(), Seed: seed,
					Rehash: rehash,
				})
				st := core.RunSequence(sa, seq)
				return []float64{float64(st.Misses) / baseline, float64(st.Rehashes)}
			})
			res.Rows = append(res.Rows, RehashRow{
				Mode: mode, Reps: reps,
				Ratio:    stats.Of(out[0]),
				Rehashes: stats.Of(out[1]),
			})
		}
	}
	return res
}

// Table renders the Theorem 5 / Proposition 4 validation.
func (r *RehashResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("E7/E8: rehashing on long adversarial sequences (k=%d, α=%d, δ=%.2f, s=%d, rehash every %d misses)",
			r.K, r.Alpha, r.Delta, r.Sets, r.EveryMisses),
		"mode", "t (reps/set)", "cost ratio vs LRU_k'", "±95%", "rehashes")
	t.Note = "Paper (Thm 5, Prop 4): without rehashing the ratio grows with sequence length; with\n" +
		"full or incremental flushing it stays 1 + o(1), and the two flushing styles match."
	for _, row := range r.Rows {
		t.AddRowf(row.Mode.String(), row.Reps, row.Ratio.Mean, row.Ratio.CI95, row.Rehashes.Mean)
	}
	return t
}

// RatioFor returns the mean ratio for a (mode, reps) cell, for tests.
func (r *RehashResult) RatioFor(mode core.RehashMode, reps int) (float64, bool) {
	for _, row := range r.Rows {
		if row.Mode == mode && row.Reps == reps {
			return row.Ratio.Mean, true
		}
	}
	return 0, false
}

// MaxReps returns the largest sequence length (in reps) the experiment ran.
func (r *RehashResult) MaxReps() int {
	maxR := 0
	for _, row := range r.Rows {
		if row.Reps > maxR {
			maxR = row.Reps
		}
	}
	return maxR
}

// MinReps returns the smallest sequence length (in reps).
func (r *RehashResult) MinReps() int {
	if len(r.Rows) == 0 {
		return 0
	}
	minR := r.Rows[0].Reps
	for _, row := range r.Rows {
		if row.Reps < minR {
			minR = row.Reps
		}
	}
	return minR
}
