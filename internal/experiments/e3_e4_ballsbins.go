package experiments

import (
	"fmt"

	"repro/internal/ballsbins"
	"repro/internal/stats"
)

// E3Row is one (k, α) point of the Lemma 3 validation.
type E3Row struct {
	K, Alpha  int
	Delta     float64
	Balls     int     // (1−δ)k
	Bins      int     // k/α
	Empirical float64 // Monte-Carlo Pr[max load > α]
	Bound     float64 // exp(−δ²α/12)
}

// E3Result validates Lemma 3: throwing (1−δ)k balls into k/α bins leaves
// every bin at load ≤ α except with probability ≤ exp(−δ²α/12), provided
// δ ≥ sqrt(12·ln(k/α)/α).
type E3Result struct {
	Trials int
	Rows   []E3Row
}

// E3MaxLoad runs experiment E3.
func E3MaxLoad(cfg Config) *E3Result {
	trials := cfg.pick(200, 2000)
	res := &E3Result{Trials: trials}
	type point struct{ k, alpha int }
	points := []point{
		{1 << 12, 128}, {1 << 12, 256}, {1 << 12, 512},
		{1 << 14, 256}, {1 << 14, 512}, {1 << 14, 1024},
	}
	if cfg.Scale == Quick {
		points = points[:3]
	}
	for i, p := range points {
		delta := ballsbins.Lemma3DeltaFloor(p.k, p.alpha)
		if delta > 0.5 {
			delta = 0.5
		}
		m := int((1 - delta) * float64(p.k))
		n := p.k / p.alpha
		res.Rows = append(res.Rows, E3Row{
			K: p.k, Alpha: p.alpha, Delta: delta, Balls: m, Bins: n,
			Empirical: ballsbins.MaxLoadExceedance(m, n, p.alpha, trials, cfg.Seed+uint64(i)),
			Bound:     ballsbins.Lemma3Bound(delta, p.alpha),
		})
	}
	return res
}

// Table renders the Lemma 3 validation.
func (r *E3Result) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("E3: Lemma 3 — max bucket load (Monte-Carlo, %d trials/row)", r.Trials),
		"k", "alpha", "delta", "balls", "bins", "Pr[max>α] empirical", "paper bound")
	t.Note = "Paper: Pr[max load > α] ≤ exp(−δ²α/12) at δ = sqrt(12·ln(k/α)/α)."
	for _, row := range r.Rows {
		t.AddRowf(row.K, row.Alpha, row.Delta, row.Balls, row.Bins, row.Empirical, row.Bound)
	}
	return t
}

// E4Row is one (n, m, ε) point of the Lemma 4 validation.
type E4Row struct {
	Bins, Balls  int
	Eps          float64
	F            float64 // f(n, m, ε)
	Threshold    float64 // f/8
	MeanSat      float64 // mean saturated-bin count
	SuccessFrac  float64 // fraction of trials with count > f/8
	GuaranteeLow float64 // 1 − exp(−f/32)
}

// E4Result validates Lemma 4: the number of εh-saturated bins exceeds
// f(n,m,ε)/8 with probability at least 1 − exp(−f/32). This is the
// saturation engine behind the Theorem 4 adversary.
type E4Result struct {
	Trials int
	Rows   []E4Row
}

// E4Saturated runs experiment E4, using the Theorem 4 parameterization
// n = k/α, m = (1−δ)k, ε = 2δ/(1−δ).
func E4Saturated(cfg Config) *E4Result {
	trials := cfg.pick(150, 1000)
	res := &E4Result{Trials: trials}
	type point struct {
		k, alpha int
		delta    float64
	}
	points := []point{
		{1 << 12, 8, 0.15}, {1 << 12, 16, 0.2}, {1 << 12, 32, 0.15},
		{1 << 14, 16, 0.15}, {1 << 14, 32, 0.1},
	}
	if cfg.Scale == Quick {
		points = points[:3]
	}
	for i, p := range points {
		n := p.k / p.alpha
		m := int((1 - p.delta) * float64(p.k))
		eps := 2 * p.delta / (1 - p.delta)
		successFrac, meanSat := ballsbins.SaturationStats(m, n, eps, trials, cfg.Seed+uint64(100+i))
		res.Rows = append(res.Rows, E4Row{
			Bins: n, Balls: m, Eps: eps,
			F:            ballsbins.F(n, m, eps),
			Threshold:    ballsbins.Lemma4Threshold(n, m, eps),
			MeanSat:      meanSat,
			SuccessFrac:  successFrac,
			GuaranteeLow: 1 - ballsbins.Lemma4FailureBound(n, m, eps),
		})
	}
	return res
}

// Table renders the Lemma 4 validation.
func (r *E4Result) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("E4: Lemma 4 — εh-saturated bins (Monte-Carlo, %d trials/row)", r.Trials),
		"bins", "balls", "eps", "f(n,m,ε)", "f/8", "mean saturated", "Pr[>f/8] emp", "paper floor")
	t.Note = "Paper: more than f/8 bins are εh-saturated w.p. ≥ 1 − exp(−f/32); ε = 2δ/(1−δ) as in Theorem 4."
	for _, row := range r.Rows {
		t.AddRowf(row.Bins, row.Balls, row.Eps, row.F, row.Threshold,
			row.MeanSat, row.SuccessFrac, row.GuaranteeLow)
	}
	return t
}
