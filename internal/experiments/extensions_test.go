package experiments

import (
	"testing"

	"repro/internal/policy"
)

func TestE15IndexingShape(t *testing.T) {
	res := E15Indexing(QuickConfig())
	if len(res.RowsTable) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range res.RowsTable {
		// Bit selection must be clearly worse than randomized indexing on
		// the power-of-two column walk, at every α below the working set.
		if row.Alpha <= 16 && row.BitSelectAMAT < 1.3*row.RandomAMAT.Mean {
			t.Errorf("α=%d: bit-select AMAT %.1f not clearly worse than randomized %.1f",
				row.Alpha, row.BitSelectAMAT, row.RandomAMAT.Mean)
		}
	}
	// Randomized indexing should improve with α (threshold behaviour).
	first, last := res.RowsTable[0], res.RowsTable[len(res.RowsTable)-1]
	if last.RandomAMAT.Mean > first.RandomAMAT.Mean+0.5 {
		t.Errorf("randomized AMAT should not degrade with α: %.2f → %.2f",
			first.RandomAMAT.Mean, last.RandomAMAT.Mean)
	}
}

func TestE16CompanionShape(t *testing.T) {
	res := E16Companion(QuickConfig())
	byCell := map[[2]int]float64{}
	for _, row := range res.Rows {
		byCell[[2]int{row.Alpha, row.CompanionSize}] = row.ExcessFactor.Mean
	}
	k := res.K
	// At α=1, a large companion must sharply reduce the excess factor
	// relative to a 1-slot companion.
	small, ok1 := byCell[[2]int{1, 1}]
	big, ok2 := byCell[[2]int{1, k / 4}]
	if !ok1 || !ok2 {
		t.Fatalf("missing cells; have %v", byCell)
	}
	if big >= small {
		t.Errorf("α=1: companion k/4 (%.2f) should beat companion 1 (%.2f)", big, small)
	}
	if big > 1.6 {
		t.Errorf("α=1 with k/4 companion still thrashing: excess %.2f", big)
	}
}

func TestE17MirrorShape(t *testing.T) {
	res := E17Mirror(QuickConfig())
	for _, row := range res.Rows {
		if row.Alpha < 64 {
			// Below the Lemma 3 regime the mirror's buckets overflow and
			// its guarantee lapses; those rows are illustrative only.
			continue
		}
		// In the ω(log k) regime the mirror must track the fully
		// associative cost within a few percent for every policy —
		// including FIFO, where the paper's native analysis has no
		// guarantee — and forced overflows must be rare.
		if row.MirrorRatio.Mean > 1.05 {
			t.Errorf("%v α=%d: mirror ratio %.3f, expected ≈ 1", row.Kind, row.Alpha, row.MirrorRatio.Mean)
		}
		// "Rare" means a negligible fraction of the requests: each phase of
		// the workload redraws the balls-and-bins layout, so a handful of
		// overflows per run is expected, but not a systematic fraction.
		if row.Overflows.Mean > 0.005*float64(40_000) {
			t.Errorf("%v α=%d: %.0f overflows, expected ≪ 0.5%% of requests", row.Kind, row.Alpha, row.Overflows.Mean)
		}
	}
}

func TestE18StackDistShape(t *testing.T) {
	res := E18StackDist(QuickConfig())
	if len(res.Rows) != 4 {
		t.Fatalf("want 4 workloads, got %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if !row.MatchesSim {
			t.Errorf("%s: one-pass profile disagreed with direct simulation", row.Workload)
		}
		// Curves are non-increasing in k.
		for i := 1; i < len(row.Curve); i++ {
			if row.Curve[i] > row.Curve[i-1]+1e-12 {
				t.Errorf("%s: miss-ratio curve rose at probe %d", row.Workload, i)
			}
		}
	}
}

func TestExtensionTablesRender(t *testing.T) {
	cfg := QuickConfig()
	for i, s := range []string{
		E15Indexing(cfg).Table().String(),
		E16Companion(cfg).Table().String(),
		E17Mirror(cfg).Table().String(),
		E18StackDist(cfg).Table().String(),
	} {
		if len(s) < 100 {
			t.Errorf("table %d too short:\n%s", i, s)
		}
	}
}

func TestE17UsesUnstablePolicy(t *testing.T) {
	// Guard: E17 must include FIFO (the point is that mirroring covers
	// policies outside the paper's stable class).
	res := E17Mirror(QuickConfig())
	hasFIFO := false
	for _, row := range res.Rows {
		if row.Kind == policy.FIFOKind {
			hasFIFO = true
		}
	}
	if !hasFIFO {
		t.Fatal("E17 must cover FIFO")
	}
}

func TestE19SkewedShape(t *testing.T) {
	res := E19Skewed(QuickConfig())
	// At every α where single-choice still conflicts, d=2 must be at least
	// as good, and at small α strictly better by a wide margin.
	for _, alpha := range []int{2, 4, 8} {
		one, ok1 := res.ExcessFor(1, alpha)
		two, ok2 := res.ExcessFor(2, alpha)
		if !ok1 || !ok2 {
			t.Fatalf("missing cells at α=%d", alpha)
		}
		if two > one+0.02 {
			t.Errorf("α=%d: d=2 (%.3f) worse than d=1 (%.3f)", alpha, two, one)
		}
	}
	one4, _ := res.ExcessFor(1, 4)
	two4, _ := res.ExcessFor(2, 4)
	if (two4 - 1) > 0.5*(one4-1) {
		t.Errorf("α=4: two choices should remove most conflicts: d1=%.3f d2=%.3f", one4, two4)
	}
	// The d=2 crossover (excess < 1.1) must happen at a smaller α than d=1.
	crossover := func(d int) int {
		for _, alpha := range []int{1, 2, 4, 8, 16, 32} {
			if v, ok := res.ExcessFor(d, alpha); ok && v < 1.1 {
				return alpha
			}
		}
		return 1 << 30
	}
	if crossover(2) >= crossover(1) {
		t.Errorf("d=2 crossover α=%d should be below d=1 crossover α=%d", crossover(2), crossover(1))
	}
}
