package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// E2Row is one (α, δ) point of the Theorem 3 validation.
type E2Row struct {
	Alpha        int
	Delta        float64
	Augmentation float64 // (1−δ)⁻¹
	// BadEvictionRate is B/|σ| averaged over trials; Theorem 3's proof
	// bounds E[B_i] by exp(−δ²α/12) per step.
	BadEvictionRate stats.Summary
	// StepBound is the per-step bound exp(−δ²α/12).
	StepBound float64
	// CostRatio is C(⟨LRU⟩_k, σ) / C(LRU_k', σ).
	CostRatio stats.Summary
	// Lemma2Holds reports whether C(sa) ≤ C(fa) + B held in every trial
	// (it must: Lemma 2 is an identity-level inequality).
	Lemma2Holds bool
}

// E2Result validates Theorem 3 / Proposition 1: for α in the ω(log k)
// regime, with δ = sqrt(24·c·ln(k)/α), the set-associative cache is
// 1-competitive (additive O(1)): bad evictions are rare and the total cost
// matches the fully associative baseline.
type E2Result struct {
	K      int
	Trials int
	SeqLen int
	Rows   []E2Row
}

// E2Competitive runs experiment E2.
func E2Competitive(cfg Config) *E2Result {
	k := cfg.pick(1<<10, 1<<12)
	trials := cfg.pick(6, 16)
	seqLen := cfg.pick(40_000, 400_000)
	res := &E2Result{K: k, Trials: trials, SeqLen: seqLen}

	const c = 1.0
	for _, alpha := range e2Alphas(k) {
		delta := math.Sqrt(24 * c * math.Log(float64(k)) / float64(alpha))
		if delta > 0.5 {
			delta = 0.5 // Theorem 3 hypothesis cap
		}
		kPrime := int((1 - delta) * float64(k))

		// The workload interleaves scans of a k'-item working set with
		// uniform accesses into it — a stressful in-capacity pattern: the
		// fully associative cache never misses after warmup, so any
		// set-associative excess is pure associativity cost.
		gen := workload.Phases{PhaseLen: 4 * kPrime, SetSize: kPrime, Universe: kPrime}

		badRates := make([]float64, 0, trials)
		ratios := make([]float64, 0, trials)
		lemma2 := true
		out := sim.RunTrialsVec(trials, cfg.Seed^uint64(alpha*2654435761), 3, func(_ int, seed uint64) []float64 {
			seq := gen.Generate(seqLen, seed)
			sa := core.MustNewSetAssoc(core.SetAssocConfig{
				Capacity: k, Alpha: alpha, Factory: lruFactory(), Seed: seed + 1,
			})
			fa := core.NewFullAssoc(lruFactory(), kPrime)
			rep := sim.CompareBadEvictions(seq, sa, fa)
			holds := 1.0
			if rep.Candidate.Misses > rep.Baseline.Misses+rep.BadEvictions {
				holds = 0
			}
			ratio := float64(rep.Candidate.Misses) / float64(maxU64(rep.Baseline.Misses, 1))
			return []float64{
				float64(rep.BadEvictions) / float64(len(seq)),
				ratio,
				holds,
			}
		})
		for i := 0; i < trials; i++ {
			badRates = append(badRates, out[0][i])
			ratios = append(ratios, out[1][i])
			if out[2][i] == 0 {
				lemma2 = false
			}
		}
		res.Rows = append(res.Rows, E2Row{
			Alpha:           alpha,
			Delta:           delta,
			Augmentation:    1 / (1 - delta),
			BadEvictionRate: stats.Of(badRates),
			StepBound:       math.Exp(-delta * delta * float64(alpha) / 12),
			CostRatio:       stats.Of(ratios),
			Lemma2Holds:     lemma2,
		})
	}
	return res
}

func e2Alphas(k int) []int {
	lg := log2(k)
	cands := []int{lg * 4, lg * 8, lg * 16, lg * 32}
	var out []int
	for _, a := range cands {
		a = nextPow2(a)
		if a < k && (len(out) == 0 || out[len(out)-1] != a) {
			out = append(out, a)
		}
	}
	return out
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p *= 2
	}
	return p
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Table renders the Theorem 3 validation.
func (r *E2Result) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("E2: Theorem 3 — 1-competitiveness in the ω(log k) regime (k=%d, |σ|=%d)", r.K, r.SeqLen),
		"alpha", "delta", "augment", "bad-evict-rate", "per-step-bound", "cost-ratio", "lemma2")
	t.Note = "δ = sqrt(24·ln(k)/α). Paper: bad evictions occur at rate ≤ exp(−δ²α/12) per step and\n" +
		"the cost ratio vs fully associative LRU at (1−δ)k is 1 + o(1)."
	for _, row := range r.Rows {
		t.AddRowf(row.Alpha, row.Delta, row.Augmentation,
			row.BadEvictionRate.Mean, row.StepBound, row.CostRatio.Mean, row.Lemma2Holds)
	}
	return t
}
