package experiments

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// E13Row is one (schedule, length) point of the rehash-schedule comparison.
type E13Row struct {
	Schedule string
	Reps     int
	Ratio    stats.Summary // cost vs fully associative LRU at k'
	Rehashes stats.Summary
}

// E13Result validates the Section 6 remark: rehashing after a fixed number
// of *accesses* is broken — an adversary that replays one fixed (1−δ)k-item
// set forever gives the schedule infinitely many chances to redraw a bad
// hash, and every full flush forces the whole working set to re-miss. The
// miss-count schedule settles: once a good hash is found, misses (and hence
// rehashes) stop.
type E13Result struct {
	K      int
	Alpha  int
	Delta  float64
	Trials int
	Rows   []E13Row
}

// E13AccessRehash runs experiment E13.
func E13AccessRehash(cfg Config) *E13Result {
	k := cfg.pick(1<<9, 1<<10)
	alpha := cfg.pick(32, 64)
	const delta = 0.35
	trials := cfg.pick(6, 12)
	res := &E13Result{K: k, Alpha: alpha, Delta: delta, Trials: trials}

	type schedule struct {
		name   string
		rehash core.RehashConfig
	}
	schedules := []schedule{
		{"no rehash", core.RehashConfig{}},
		{"every 2k misses (paper)", core.RehashConfig{Mode: core.RehashFullFlush, EveryMisses: uint64(2 * k)}},
		{"every 2k accesses (broken)", core.RehashConfig{Mode: core.RehashFullFlush, EveryAccesses: uint64(2 * k)}},
	}
	for _, reps := range []int{cfg.pick(16, 32), cfg.pick(64, 128), cfg.pick(128, 512)} {
		attack := adversary.FixedSet{K: k, Delta: delta, Reps: reps}
		seq := attack.Build()
		baseline := float64(attack.KPrime()) // conservative LRU at k' misses once per item
		for _, sch := range schedules {
			out := sim.RunTrialsVec(trials, cfg.Seed+uint64(reps)<<3, 2, func(_ int, seed uint64) []float64 {
				sa := core.MustNewSetAssoc(core.SetAssocConfig{
					Capacity: k, Alpha: alpha, Factory: lruFactory(), Seed: seed,
					Rehash: sch.rehash,
				})
				st := core.RunSequence(sa, seq)
				return []float64{float64(st.Misses) / baseline, float64(st.Rehashes)}
			})
			res.Rows = append(res.Rows, E13Row{
				Schedule: sch.name, Reps: reps,
				Ratio: stats.Of(out[0]), Rehashes: stats.Of(out[1]),
			})
		}
	}
	return res
}

// RatioFor returns the mean ratio for a (schedule, reps) cell.
func (r *E13Result) RatioFor(schedule string, reps int) (float64, bool) {
	for _, row := range r.Rows {
		if row.Schedule == schedule && row.Reps == reps {
			return row.Ratio.Mean, true
		}
	}
	return 0, false
}

// Table renders the schedule comparison.
func (r *E13Result) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("E13: rehash schedules under the fixed-set replay attack (k=%d, α=%d, δ=%.2f)",
			r.K, r.Alpha, r.Delta),
		"schedule", "passes", "cost ratio vs LRU_k'", "±95%", "rehashes")
	t.Note = "Paper (§6 remark): rehashing every N accesses lets the adversary replay one fixed set\n" +
		"forever — each flush re-misses the whole working set, so the ratio grows with the passes.\n" +
		"Rehashing every N misses settles after finitely many redraws."
	for _, row := range r.Rows {
		t.AddRowf(row.Schedule, row.Reps, row.Ratio.Mean, row.Ratio.CI95, row.Rehashes.Mean)
	}
	return t
}

// E14Row is one policy of the scan-resistance comparison.
type E14Row struct {
	Kind      policy.Kind
	MissRatio stats.Summary
}

// E14Result validates footnote 3: LRU-2 outperforms LRU when the workload
// mixes a hot set with isolated one-shot accesses (scan bursts), because
// LRU-2 only deems an item important after two recent accesses.
type E14Result struct {
	K      int
	SeqLen int
	Trials int
	Rows   []E14Row
}

// E14LRU2 runs experiment E14.
func E14LRU2(cfg Config) *E14Result {
	k := cfg.pick(1<<7, 1<<8)
	seqLen := cfg.pick(60_000, 400_000)
	trials := cfg.pick(4, 10)
	res := &E14Result{K: k, SeqLen: seqLen, Trials: trials}

	// Hot set fills ~3/4 of the cache; bursts half the cache size, arriving
	// often enough that plain LRU keeps losing hot items.
	gen := workload.ZipfWithScans{
		HotUniverse: k * 3 / 4,
		S:           0.6,
		BurstEvery:  k,
		BurstLen:    k / 2,
	}
	for _, kind := range []policy.Kind{policy.LRUKind, policy.LRU2Kind, policy.LRU3Kind, policy.LFUKind, policy.FIFOKind} {
		ratios := sim.RunTrials(trials, cfg.Seed+uint64(kind*131), func(_ int, seed uint64) float64 {
			fa := core.NewFullAssoc(policy.NewFactory(kind, seed), k)
			seq := gen.Generate(seqLen, seed)
			st := core.RunSequence(fa, seq)
			return st.MissRatio()
		})
		res.Rows = append(res.Rows, E14Row{Kind: kind, MissRatio: stats.Of(ratios)})
	}
	return res
}

// MissRatioFor returns the mean miss ratio for one policy kind.
func (r *E14Result) MissRatioFor(kind policy.Kind) (float64, bool) {
	for _, row := range r.Rows {
		if row.Kind == kind {
			return row.MissRatio.Mean, true
		}
	}
	return 0, false
}

// Table renders the comparison.
func (r *E14Result) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("E14: LRU-K scan resistance (k=%d, Zipf hot set + one-shot scan bursts, |σ|=%d)", r.K, r.SeqLen),
		"policy", "miss ratio", "±95%")
	t.Note = "Paper footnote 3: LRU-2 often outperforms LRU because it is less sensitive to isolated accesses."
	for _, row := range r.Rows {
		t.AddRowf(row.Kind.String(), row.MissRatio.Mean, row.MissRatio.CI95)
	}
	return t
}
