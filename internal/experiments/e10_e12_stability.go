package experiments

import (
	"fmt"

	"repro/internal/policy"
	"repro/internal/stability"
	"repro/internal/stats"
)

// E10Result is the Section 7 classification of every policy family against
// the paper's claims (Lemma 1, Corollary 2, Proposition 6, plus the
// conservativeness taxonomy of Section 3).
type E10Result struct {
	SearchTrials int
	Verdicts     []stability.PolicyVerdict
	// ConservativeWitnesses maps each kind to a conservativeness
	// counterexample, nil if none was found.
	ConservativeWitnesses map[policy.Kind]*stability.ConservativeViolation
	// LFUConservativeDiscrepancy is set when LFU — which the paper lists as
	// conservative — produced a conservativeness witness (it always does;
	// see the reproduction note on policy.Kind.Conservative).
	LFUConservativeDiscrepancy *stability.ConservativeViolation
}

// E10Stability runs experiment E10.
func E10Stability(cfg Config) *E10Result {
	sCfg := stability.DefaultSearchConfig(cfg.Seed)
	sCfg.Trials = cfg.pick(1200, 6000)
	res := &E10Result{
		SearchTrials:          sCfg.Trials,
		ConservativeWitnesses: make(map[policy.Kind]*stability.ConservativeViolation),
	}
	kinds := []policy.Kind{
		policy.LRUKind, policy.LRU2Kind, policy.LRU3Kind, policy.LFUKind,
		policy.FIFOKind, policy.ClockKind, policy.ReuseDistKind, policy.MRUKind,
	}
	for _, k := range kinds {
		res.Verdicts = append(res.Verdicts, stability.ClassifyPolicy(k, sCfg))
		w := stability.SearchConservative(policy.NewFactory(k, cfg.Seed), sCfg)
		res.ConservativeWitnesses[k] = w
		if k == policy.LFUKind {
			res.LFUConservativeDiscrepancy = w
		}
	}
	return res
}

// AllConsistent reports whether every verdict matched the paper's stability
// and stack claims.
func (r *E10Result) AllConsistent() bool {
	for _, v := range r.Verdicts {
		if !v.Consistent() {
			return false
		}
	}
	return true
}

// Table renders the classification.
func (r *E10Result) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("E10: policy classification (randomized search, %d trials/property)", r.SearchTrials),
		"policy", "stable (paper)", "stable (found)", "stack (paper)", "stack (found)", "anomaly", "conservative (found)")
	t.Note = "Lemma 1: LRU/LRU-K/LFU stable. Corollary 2: FIFO/clock not. Proposition 6: reuse-distance\n" +
		"stack but not stable. Reproduction note: LFU is NOT conservative despite the paper's §3 claim."
	for _, v := range r.Verdicts {
		t.AddRowf(
			v.Kind.String(),
			v.ClaimStable,
			v.StabilityWitness == nil,
			v.ClaimStack,
			v.StackWitness == nil,
			v.AnomalyWitness != nil,
			r.ConservativeWitnesses[v.Kind] == nil,
		)
	}
	return t
}

// E11Result replays Proposition 6 in detail: the reuse-distance algorithm R
// passes every stack-property search yet violates stability on the paper's
// exact counterexample.
type E11Result struct {
	StackWitness     *stability.StackViolation // must be nil
	PaperWitness     *stability.StabilityViolation
	PaperReplayError error
	// FamilyMonotone must be false: R's order family fails monotonicity,
	// which is how it escapes Theorem 8.
	FamilyMonotoneWitness *stability.MonotoneViolation
}

// E11ReuseDist runs experiment E11.
func E11ReuseDist(cfg Config) *E11Result {
	sCfg := stability.DefaultSearchConfig(cfg.Seed + 1)
	sCfg.Trials = cfg.pick(1500, 6000)
	res := &E11Result{}
	res.StackWitness = stability.SearchStack(policy.NewFactory(policy.ReuseDistKind, 0), sCfg)
	res.PaperWitness, res.PaperReplayError = stability.PaperReuseDistWitness()
	res.FamilyMonotoneWitness = stability.SearchMonotone(stability.ReuseDistFamily(), sCfg)
	return res
}

// Table renders the Proposition 6 replay.
func (r *E11Result) Table() *stats.Table {
	t := stats.NewTable("E11: Proposition 6 — reuse-distance R is stack but not stable",
		"check", "outcome")
	t.AddRow("stack property (randomized search)", boolOutcome(r.StackWitness == nil, "no violation (stack ✓)", "VIOLATED"))
	if r.PaperReplayError != nil {
		t.AddRow("paper counterexample σ=AYZZZZABYYBC", "replay FAILED: "+r.PaperReplayError.Error())
	} else {
		t.AddRow("paper counterexample σ=AYZZZZABYYBC", "stability violated as claimed: "+r.PaperWitness.String())
	}
	t.AddRow("order family monotone?", boolOutcome(r.FamilyMonotoneWitness != nil,
		"not monotone (as required to escape Theorem 8)", "unexpectedly monotone"))
	return t
}

func boolOutcome(ok bool, yes, no string) string {
	if ok {
		return yes
	}
	return no
}

// E12Result validates the Belady-anomaly taxonomy of Section 7.1: FIFO and
// clock exhibit the anomaly (hence are not stack algorithms); the stack
// families never do.
type E12Result struct {
	ClassicFIFOCost3 uint64 // 9 on the textbook sequence
	ClassicFIFOCost4 uint64 // 10
	FIFOWitness      *stability.AnomalyWitness
	ClockWitness     *stability.AnomalyWitness
	// StackAnomalies maps each stack family to a witness; all must be nil.
	StackAnomalies map[policy.Kind]*stability.AnomalyWitness
}

// E12Belady runs experiment E12.
func E12Belady(cfg Config) *E12Result {
	sCfg := stability.DefaultSearchConfig(cfg.Seed + 2)
	sCfg.Trials = cfg.pick(3000, 8000)
	// Anomalies need longer sequences than stability violations: the small
	// cache must get "lucky" over a full eviction cycle.
	sCfg.MaxLen = 32
	seq := stability.ClassicBeladySequence()
	res := &E12Result{
		ClassicFIFOCost3: stability.MissCount(policy.NewFactory(policy.FIFOKind, 0), 3, seq),
		ClassicFIFOCost4: stability.MissCount(policy.NewFactory(policy.FIFOKind, 0), 4, seq),
		FIFOWitness:      stability.SearchBelady(policy.NewFactory(policy.FIFOKind, 0), sCfg),
		ClockWitness:     stability.SearchBelady(policy.NewFactory(policy.ClockKind, 0), sCfg),
		StackAnomalies:   make(map[policy.Kind]*stability.AnomalyWitness),
	}
	for _, k := range []policy.Kind{policy.LRUKind, policy.LRU2Kind, policy.LFUKind, policy.ReuseDistKind} {
		res.StackAnomalies[k] = stability.SearchBelady(policy.NewFactory(k, 0), sCfg)
	}
	return res
}

// Table renders the anomaly results.
func (r *E12Result) Table() *stats.Table {
	t := stats.NewTable("E12: Belady's anomaly (Section 7.1)", "check", "outcome")
	t.AddRow("FIFO classic sequence cost k=3 / k=4",
		fmt.Sprintf("%d / %d (anomaly: larger cache misses more)", r.ClassicFIFOCost3, r.ClassicFIFOCost4))
	t.AddRow("FIFO randomized anomaly search", boolOutcome(r.FIFOWitness != nil, "anomaly found", "none found"))
	t.AddRow("clock randomized anomaly search", boolOutcome(r.ClockWitness != nil, "anomaly found", "none found"))
	for kind, w := range r.StackAnomalies {
		t.AddRow(fmt.Sprintf("%v anomaly search (stack family)", kind),
			boolOutcome(w == nil, "none (stack ✓)", "UNEXPECTED anomaly"))
	}
	return t
}
