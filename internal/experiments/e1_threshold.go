package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hashfn"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// E1Row is one point of the threshold curve.
type E1Row struct {
	Alpha int
	// ExcessFactor is C(⟨LRU⟩_k, σ) / C(LRU_k', σ) averaged over seeds,
	// where σ repeatedly scans a working set of k' = (1−δ)k items. The
	// fully associative cache misses only on the first pass, so this factor
	// is 1 when associativity costs nothing.
	ExcessFactor stats.Summary
	// OverflowProb is the fraction of seeds in which some bucket was
	// oversubscribed by the working set (the balls-and-bins event that
	// drives the phenomenon).
	OverflowProb float64
}

// E1Result is the headline threshold experiment: with the capacity gap δ
// fixed, the paging cost of an α-way set-associative LRU cache relative to
// a fully associative LRU cache of size (1−δ)k collapses from "unboundedly
// worse" to "equal" as α crosses Θ(log k).
type E1Result struct {
	K      int
	Delta  float64
	Passes int
	Trials int
	Rows   []E1Row

	// Ablation: the same sweep with the weak modulo indexer on a contiguous
	// working set (stripes perfectly; zero conflicts at any α) and on a
	// strided working set (collides catastrophically at every α). The point:
	// without the fully-random model the threshold phenomenon is not about
	// α at all, it is about luck.
	ModuloContiguous []E1Row
	ModuloStrided    []E1Row
}

// E1Threshold runs experiment E1 (the paper's headline phenomenon).
func E1Threshold(cfg Config) *E1Result {
	k := cfg.pick(1<<10, 1<<12)
	trials := cfg.pick(8, 24)
	passes := cfg.pick(6, 10)
	const delta = 0.5 // r = 2 resource augmentation, the Corollary 1 regime
	res := &E1Result{K: k, Delta: delta, Passes: passes, Trials: trials}

	alphas := alphaSweep(k)
	kPrime := int((1 - delta) * float64(k))
	scan := trace.RangeSeq(0, trace.Item(kPrime))
	seq := scan.Repeat(passes)
	faCost := uint64(kPrime) // conservative fully associative: compulsory only

	run := func(alpha int, newHasher func(seed uint64, n int) hashfn.Hasher, base trace.Item, stride trace.Item) E1Row {
		workload := seq
		if stride > 1 {
			strided := make(trace.Sequence, 0, len(seq))
			for _, x := range seq {
				strided = append(strided, base+x*stride)
			}
			workload = strided
		}
		overflows := 0
		vals := sim.RunTrials(trials, cfg.Seed+uint64(alpha), func(_ int, seed uint64) float64 {
			sa := core.MustNewSetAssoc(core.SetAssocConfig{
				Capacity: k, Alpha: alpha, Factory: lruFactory(), Seed: seed,
				NewHasher: newHasher,
			})
			st := core.RunSequence(sa, workload)
			if st.Misses > faCost {
				overflows++
			}
			return float64(st.Misses) / float64(faCost)
		})
		return E1Row{
			Alpha:        alpha,
			ExcessFactor: stats.Of(vals),
			OverflowProb: float64(overflows) / float64(trials),
		}
	}

	for _, alpha := range alphas {
		res.Rows = append(res.Rows, run(alpha, nil, 0, 1))
	}
	modulo := func(seed uint64, n int) hashfn.Hasher { return hashfn.NewModulo(seed, n) }
	for _, alpha := range alphas {
		res.ModuloContiguous = append(res.ModuloContiguous, run(alpha, modulo, 0, 1))
	}
	for _, alpha := range alphas {
		// Stride by the bucket count so that, under modulo indexing, the
		// whole working set lands in one bucket.
		res.ModuloStrided = append(res.ModuloStrided, run(alpha, modulo, 0, trace.Item(k/alpha)))
	}
	return res
}

// alphaSweep returns the powers of two from 1 to k/2 (capped to keep rows
// readable), always including values straddling log₂ k.
func alphaSweep(k int) []int {
	var out []int
	for a := 1; a <= k/2 && a <= 1024; a *= 2 {
		out = append(out, a)
	}
	return out
}

// Table renders the main curve.
func (r *E1Result) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("E1: associativity threshold (k=%d, δ=%.2f, log2 k=%d)", r.K, r.Delta, log2(r.K)),
		"alpha", "excess-factor", "±95%", "overflow-prob")
	t.Note = "Excess misses of α-way set-associative LRU over fully associative LRU of size (1−δ)k\n" +
		"on repeated scans of a (1−δ)k working set. Paper: factor ≫ 1 for α = o(log k), → 1 for α = ω(log k)."
	for _, row := range r.Rows {
		t.AddRowf(row.Alpha, row.ExcessFactor.Mean, row.ExcessFactor.CI95, row.OverflowProb)
	}
	return t
}

// AblationTable renders the hash-quality ablation.
func (r *E1Result) AblationTable() *stats.Table {
	t := stats.NewTable(
		"E1 ablation: modulo indexing instead of a fully random hash",
		"alpha", "contiguous-excess", "strided-excess")
	t.Note = "Contiguous working sets stripe perfectly under modulo (no conflicts even at α=1);\n" +
		"strided ones collapse into one bucket (catastrophic at every α). The fully random\n" +
		"model is what makes the phenomenon about α rather than about address layout."
	for i := range r.ModuloContiguous {
		t.AddRowf(r.ModuloContiguous[i].Alpha,
			r.ModuloContiguous[i].ExcessFactor.Mean,
			r.ModuloStrided[i].ExcessFactor.Mean)
	}
	return t
}
