package experiments

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/stats"
)

// E5Row is one (policy, α) point of the Theorem 4 validation.
type E5Row struct {
	Kind  policy.Kind
	Alpha int
	// FullAssocCost is C(A_k', σ): for conservative policies exactly k'·s.
	FullAssocCost stats.Summary
	// SetAssocCost is C(⟨A⟩_k, σ).
	SetAssocCost stats.Summary
	// Ratio is the empirical competitive ratio.
	Ratio stats.Summary
	// ConservativeBaseline reports whether the fully associative cost hit
	// the k'·s floor exactly in every trial (the conservative property the
	// proof of Theorem 4 relies on).
	ConservativeBaseline bool
}

// E5Result validates Theorem 4: the adversarial sequence (s disjoint sets of
// (1−δ)k items, each replayed t times) forces the set-associative cache far
// above the fully associative baseline, for every conservative policy.
//
// Reproduction note: the paper claims LFU is conservative; it is not (see
// policy.Kind.Conservative). The LFU rows show exactly the failure mode: its
// fully associative baseline cost explodes past k'·s because frequency
// counts from earlier phases pin dead items, so the measured "competitive
// ratio" is small for the wrong reason. The Theorem 4 *mechanism* (bucket
// oversubscription in the set-associative cache) still fires for LFU.
type E5Result struct {
	K      int
	Delta  float64
	Sets   int
	Reps   int
	KPrime int
	Trials int
	Rows   []E5Row
}

// E5Adversary runs experiment E5.
func E5Adversary(cfg Config) *E5Result {
	k := cfg.pick(1<<8, 1<<9)
	trials := cfg.pick(4, 12)
	const delta = 0.25
	adv := adversary.Theorem4{K: k, Delta: delta, Sets: 8, Reps: cfg.pick(8, 24)}
	res := &E5Result{
		K: k, Delta: delta, Sets: adv.Sets, Reps: adv.Reps,
		KPrime: adv.KPrime(), Trials: trials,
	}
	seq := adv.Build()
	floor := uint64(adv.KPrime() * adv.Sets)

	kinds := []policy.Kind{policy.LRUKind, policy.FIFOKind, policy.ClockKind, policy.LFUKind}
	for _, kind := range kinds {
		for _, alpha := range []int{2, 4, 8} {
			out := sim.RunTrialsVec(trials, cfg.Seed^uint64(alpha)<<8^uint64(kind), 2, func(_ int, seed uint64) []float64 {
				factory := policy.NewFactory(kind, seed)
				sa := core.MustNewSetAssoc(core.SetAssocConfig{
					Capacity: k, Alpha: alpha, Factory: factory, Seed: seed,
				})
				fa := core.NewFullAssoc(factory, adv.KPrime())
				saCost := core.RunSequence(sa, seq).Misses
				faCost := core.RunSequence(fa, seq).Misses
				return []float64{float64(saCost), float64(faCost)}
			})
			saCosts, faCosts := out[0], out[1]
			ratios := make([]float64, trials)
			conservative := true
			for i := range ratios {
				ratios[i] = saCosts[i] / faCosts[i]
				if uint64(faCosts[i]) != floor {
					conservative = false
				}
			}
			res.Rows = append(res.Rows, E5Row{
				Kind: kind, Alpha: alpha,
				FullAssocCost:        stats.Of(faCosts),
				SetAssocCost:         stats.Of(saCosts),
				Ratio:                stats.Of(ratios),
				ConservativeBaseline: conservative,
			})
		}
	}
	return res
}

// Table renders the Theorem 4 validation.
func (r *E5Result) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("E5: Theorem 4 adversary (k=%d, δ=%.2f, s=%d sets × t=%d reps, k'=%d)",
			r.K, r.Delta, r.Sets, r.Reps, r.KPrime),
		"policy", "alpha", "C(fullassoc k')", "C(setassoc k)", "ratio", "baseline=k'·s")
	t.Note = "Paper: conservative A misses exactly k'·s fully associatively, while ⟨A⟩_k pays conflict\n" +
		"misses on every repetition of an unlucky set — ratio grows with t. LFU's baseline column\n" +
		"documents the paper's Section 3 slip: LFU is not conservative, so its floor is violated."
	for _, row := range r.Rows {
		t.AddRowf(row.Kind.String(), row.Alpha,
			row.FullAssocCost.Mean, row.SetAssocCost.Mean, row.Ratio.Mean, row.ConservativeBaseline)
	}
	return t
}

// E6Row is one regime of Proposition 2.
type E6Row struct {
	Regime       string
	Alpha        int
	Augmentation float64
	TargetC      float64
	SeqLen       int
	Ratio        stats.Summary
	// NotCompetitive reports whether the measured ratio beat the target c
	// in the majority of trials (the "not c-competitive w.p. ≥ 1/2" form).
	NotCompetitive bool
}

// E6Result validates Proposition 2: in each of the three regimes —
// (1) logarithmic α with barely-super-1 augmentation, (2) sub-logarithmic α
// with constant augmentation, (3) direct-mapped (α = 1) with sub-logarithmic
// augmentation — set-associative LRU is not c-competitive on sequences of
// length O(k^{1+o(1)})·α.
type E6Result struct {
	K      int
	Trials int
	Rows   []E6Row
}

// E6Regimes runs experiment E6.
func E6Regimes(cfg Config) *E6Result {
	k := cfg.pick(1<<8, 1<<9)
	trials := cfg.pick(6, 16)
	res := &E6Result{K: k, Trials: trials}
	lg := log2(k)

	type regime struct {
		name  string
		alpha int
		r     float64
		c     float64
		sets  int
		reps  int
	}
	regimes := []regime{
		// (1) α = Θ(log k), r = 1 + o(√(log k/α)): tiny capacity gap.
		{"alpha=Θ(log k), r→1", nextPow2(lg), 1.02, 2, 8, cfg.pick(16, 48)},
		// (2) α = o(log k), r = O(1).
		{"alpha=o(log k), r=2", 2, 2, 2, 8, cfg.pick(16, 48)},
		// (3) α = 1 (direct-mapped), r = o(log k).
		{"alpha=1 (direct), r=3", 1, 3, 2, 8, cfg.pick(16, 48)},
	}
	for i, rg := range regimes {
		delta := 1 - 1/rg.r
		adv := adversary.Theorem4{K: k, Delta: delta, Sets: rg.sets, Reps: rg.reps}
		seq := adv.Build()
		ratios := sim.RunTrials(trials, cfg.Seed+uint64(1000*i), func(_ int, seed uint64) float64 {
			sa := core.MustNewSetAssoc(core.SetAssocConfig{
				Capacity: k, Alpha: rg.alpha, Factory: lruFactory(), Seed: seed,
			})
			fa := core.NewFullAssoc(lruFactory(), adv.KPrime())
			saCost := core.RunSequence(sa, seq).Misses
			faCost := core.RunSequence(fa, seq).Misses
			return float64(saCost) / float64(faCost)
		})
		beat := 0
		for _, ratio := range ratios {
			if ratio > rg.c {
				beat++
			}
		}
		res.Rows = append(res.Rows, E6Row{
			Regime: rg.name, Alpha: rg.alpha, Augmentation: rg.r, TargetC: rg.c,
			SeqLen: len(seq), Ratio: stats.Of(ratios),
			NotCompetitive: beat*2 > trials,
		})
	}
	return res
}

// Table renders the Proposition 2 validation.
func (r *E6Result) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("E6: Proposition 2 — non-competitiveness regimes (k=%d)", r.K),
		"regime", "alpha", "augment r", "target c", "|σ|", "measured ratio", "not-c-competitive")
	t.Note = "Paper: in each regime there is a sequence of length O(α·k^{1+o(1)}) on which ⟨LRU⟩_k\n" +
		"is not c-competitive with LRU_{k/r} (w.p. ≥ 1/2 over the hash)."
	for _, row := range r.Rows {
		t.AddRowf(row.Regime, row.Alpha, row.Augmentation, row.TargetC,
			row.SeqLen, row.Ratio.Mean, row.NotCompetitive)
	}
	return t
}
