// Package experiments defines the reproduction experiments E1–E19, one per
// quantitative claim of the paper (see DESIGN.md §3 for the index). Each
// experiment is a pure function of a Config, returns a structured result,
// and renders a stats.Table shaped like the claim it validates. The
// cmd/assocbench binary prints the tables; bench_test.go at the module root
// exposes each experiment as a testing.B benchmark; the package tests assert
// the *shape* of each result (who wins, by roughly what factor, where the
// crossover falls) rather than absolute numbers.
package experiments

import (
	"repro/internal/policy"
)

// Scale selects experiment sizes.
type Scale int

const (
	// Quick is sized for unit tests and CI: seconds, not minutes.
	Quick Scale = iota
	// Full is the paper-shaped scale used by cmd/assocbench.
	Full
)

// Config parameterizes every experiment.
type Config struct {
	// Seed makes the whole experiment deterministic.
	Seed uint64
	// Scale selects Quick or Full parameter sets.
	Scale Scale
}

// DefaultConfig returns the standard full-scale configuration.
func DefaultConfig() Config { return Config{Seed: 0x5eed, Scale: Full} }

// QuickConfig returns the test-scale configuration.
func QuickConfig() Config { return Config{Seed: 0x5eed, Scale: Quick} }

// pick returns q at Quick scale and f at Full scale.
func (c Config) pick(q, f int) int {
	if c.Scale == Quick {
		return q
	}
	return f
}

func lruFactory() policy.Factory { return policy.NewFactory(policy.LRUKind, 0) }

// log2 returns ⌊log₂ n⌋ for n ≥ 1.
func log2(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}
