package telemetry

import (
	"testing"
	"time"
)

// BenchmarkRecord measures the hot-path cost of one histogram sample —
// the number cmd/benchrun reports as record_ns_per_op and compares to the
// per-op service time to bound instrumentation overhead.
func BenchmarkRecord(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.RecordNanos(uint64(i)*2654435761 + 1)
	}
}

// BenchmarkRecordParallel shows contention behavior: per-op histograms are
// touched by every connection goroutine at once.
func BenchmarkRecordParallel(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := uint64(12345)
		for pb.Next() {
			v = v*2654435761 + 1
			h.RecordNanos(v)
		}
	})
}

// BenchmarkSnapshot prices the read side (taken per METRICS request).
func BenchmarkSnapshot(b *testing.B) {
	var h Histogram
	for i := 0; i < 10000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := h.Snapshot()
		_ = s.Count
	}
}
