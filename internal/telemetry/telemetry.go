// Package telemetry is the server-side flight recorder: allocation-free,
// atomics-only primitives for recording what a hot request path did —
// log-bucketed latency histograms, monotonic counters, high-water-mark
// gauges, and a ring-buffered slow-op log — cheap enough to run always-on
// in the cached request loop.
//
// The design constraints, in order:
//
//   - Recording must be lock-free and allocation-free. Histogram.Record is
//     a bucket-index computation plus one atomic add; Counter.Add and
//     HighWater.Set are one or two atomics. A test pins 0 allocs/op and CI
//     fails on regression (cmd/benchrun).
//   - Snapshots must be mergeable: the cluster router fans METRICS out to
//     every member and merges the per-node histograms into one cluster
//     view, so HistogramSnapshot.Merge(a, b) of two nodes' snapshots must
//     equal the snapshot a single node would have produced had it recorded
//     both streams. Bucket-wise addition gives exactly that, and a property
//     test pins it.
//   - Percentiles must be reconstructable from the buckets. The histogram
//     is log-linear: SubBuckets linear sub-buckets per power of two, which
//     bounds the relative error of any reconstructed quantile by
//     1/SubBuckets (6.25%) — accurate enough to tell a 100µs p99 from a
//     10ms one, which is the job.
//
// The recording side (Histogram, Counter, HighWater, SlowLog) is written
// against concurrent writers; the snapshot side is weakly consistent (a
// snapshot taken during concurrent recording may tear between buckets) but
// every count lands in exactly one bucket, so nothing is lost or double
// counted across snapshots of a quiescent recorder.
package telemetry

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: log-linear over nanoseconds.
const (
	// SubBits is log2 of the linear sub-bucket count per power of two.
	SubBits = 4
	// SubBuckets is the number of linear sub-buckets per power of two;
	// quantiles reconstructed from the buckets have relative error at most
	// 1/SubBuckets.
	SubBuckets = 1 << SubBits
	// NumBuckets is the total bucket count: SubBuckets exact buckets for
	// values below SubBuckets ns, then SubBuckets sub-buckets for each of
	// the 64−SubBits octaves from 2^SubBits through 2⁶³.
	NumBuckets = (64 - SubBits + 1) * SubBuckets
)

// bucketIndex maps a nanosecond value to its bucket. Values below
// SubBuckets map exactly; above, the bucket is identified by the position
// of the leading bit (the octave) and the next SubBits bits (the linear
// sub-bucket within it).
func bucketIndex(v uint64) int {
	if v < SubBuckets {
		return int(v)
	}
	exp := 63 - leadingZeros(v)
	sub := (v >> (uint(exp) - SubBits)) & (SubBuckets - 1)
	return (exp-SubBits+1)*SubBuckets + int(sub)
}

// leadingZeros is bits.LeadingZeros64 without the import.
func leadingZeros(v uint64) int {
	n := 0
	if v>>32 == 0 {
		n += 32
		v <<= 32
	}
	if v>>48 == 0 {
		n += 16
		v <<= 16
	}
	if v>>56 == 0 {
		n += 8
		v <<= 8
	}
	if v>>60 == 0 {
		n += 4
		v <<= 4
	}
	if v>>62 == 0 {
		n += 2
		v <<= 2
	}
	if v>>63 == 0 {
		n++
	}
	return n
}

// BucketLow returns the smallest nanosecond value that lands in bucket i.
// Together with the next bucket's low bound it delimits the bucket's value
// range; quantile reconstruction answers with the bucket midpoint.
func BucketLow(i int) uint64 {
	if i < SubBuckets {
		return uint64(i)
	}
	exp := i/SubBuckets + SubBits - 1
	sub := uint64(i % SubBuckets)
	return 1<<uint(exp) | sub<<(uint(exp)-SubBits)
}

// bucketMid returns the representative (midpoint) value of bucket i.
func bucketMid(i int) uint64 {
	lo := BucketLow(i)
	if i < SubBuckets {
		return lo // exact region
	}
	width := uint64(1) << uint(i/SubBuckets-1)
	return lo + width/2
}

// Histogram is a lock-free log-linear latency histogram. The zero value is
// ready to use. Record is safe for any number of concurrent callers and
// performs no allocation; Snapshot may run concurrently with Record and
// returns a weakly consistent copy.
type Histogram struct {
	counts [NumBuckets]atomic.Uint64
}

// Record adds one duration sample. Negative durations clamp to zero.
func (h *Histogram) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.RecordNanos(uint64(d))
}

// RecordNanos adds one sample of ns nanoseconds. It is a single atomic
// add — the sample's sum contribution is reconstructed from the bucket
// midpoint at snapshot time, trading exact means for half the hot-path
// cost (the overhead budget cmd/benchrun enforces against GET p50).
func (h *Histogram) RecordNanos(ns uint64) {
	h.counts[bucketIndex(ns)].Add(1)
}

// Snapshot copies the histogram's current state. It is weakly consistent
// under concurrent Record: the per-bucket counts are each read atomically,
// but the set of buckets is not read as one atomic unit.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.counts {
		if n := h.counts[i].Load(); n != 0 {
			s.Buckets[i] = n
			s.Count += n
			s.Sum += n * bucketMid(i)
		}
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram, the mergeable
// unit the METRICS wire payload carries. Count is the total sample count
// (always the sum of Buckets) and Sum the total recorded nanoseconds
// reconstructed from bucket midpoints (relative error ≤ 1/SubBuckets, the
// same bound as quantiles — the recorder does not keep an exact sum so
// that RecordNanos stays a single atomic add).
type HistogramSnapshot struct {
	Count   uint64
	Sum     uint64
	Buckets [NumBuckets]uint64
}

// Merge adds o's samples into s. Merging the snapshots of two recorders
// yields exactly the snapshot one recorder would have produced from both
// sample streams — the property that makes per-node histograms mergeable
// into a cluster view.
func (s *HistogramSnapshot) Merge(o *HistogramSnapshot) {
	for i, n := range o.Buckets {
		s.Buckets[i] += n
	}
	s.Count += o.Count
	s.Sum += o.Sum
}

// Quantile reconstructs the p-quantile (0 ≤ p ≤ 1) from the buckets,
// answering the midpoint of the bucket holding the p·(Count−1)-th sample.
// Relative error is bounded by 1/SubBuckets. An empty snapshot answers 0.
func (s *HistogramSnapshot) Quantile(p float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := uint64(math.Ceil(p * float64(s.Count-1)))
	var seen uint64
	for i, n := range s.Buckets {
		seen += n
		if n != 0 && seen > rank {
			return time.Duration(bucketMid(i))
		}
	}
	// Unreachable when Count == ΣBuckets; answer the top occupied bucket.
	for i := NumBuckets - 1; i >= 0; i-- {
		if s.Buckets[i] != 0 {
			return time.Duration(bucketMid(i))
		}
	}
	return 0
}

// Mean returns the arithmetic mean of the recorded samples, derived from
// the bucket-midpoint Sum (relative error ≤ 1/SubBuckets).
func (s *HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.Sum / s.Count)
}

// Counter is a monotonic atomic counter. The zero value is ready to use.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// HighWater is a gauge that additionally remembers the highest value ever
// set — the fix for point-in-time gauges (like a queue depth) whose peaks
// fall between polls. The zero value is ready to use.
type HighWater struct {
	cur atomic.Uint64
	hi  atomic.Uint64
}

// Set records the gauge's current value, raising the high-water mark when
// v exceeds it.
func (g *HighWater) Set(v uint64) {
	g.cur.Store(v)
	for {
		hi := g.hi.Load()
		if v <= hi || g.hi.CompareAndSwap(hi, v) {
			return
		}
	}
}

// Cur returns the most recently set value.
func (g *HighWater) Cur() uint64 { return g.cur.Load() }

// High returns the highest value ever set.
func (g *HighWater) High() uint64 { return g.hi.Load() }

// SlowOp is one flight-recorder entry: an operation whose service time
// crossed the slow threshold. The key is retained as a scrambled hash
// (HashKey), not verbatim — enough to correlate repeat offenders without
// the log exposing raw keys.
type SlowOp struct {
	// Op is the wire opcode byte of the slow operation.
	Op byte
	// KeyHash is HashKey of the operation's key (0 for keyless ops).
	KeyHash uint64
	// DurationNanos is the measured service time.
	DurationNanos uint64
	// Version is the value version involved (stored version of a GET hit,
	// assigned version of a SET; 0 otherwise).
	Version uint64
	// UnixNanos is the wall-clock completion time.
	UnixNanos uint64
	// TraceID is the originating request's trace ID when the slow op was
	// traced (wire v6 trace context); all-zero otherwise. It is what joins
	// a slow op on one node to the cluster-side spans that caused it.
	TraceID TraceID
}

// Duration returns the service time as a time.Duration.
func (o SlowOp) Duration() time.Duration { return time.Duration(o.DurationNanos) }

// HashKey scrambles a cache key for the slow-op log (SplitMix64 finalizer:
// bijective, so distinct keys stay distinguishable, but not invertible by
// eyeball). Loggers use it so the flight recorder never spells raw keys.
func HashKey(key uint64) uint64 {
	z := key + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// DefaultSlowLogSize is the ring capacity of a SlowLog built by NewSlowLog
// when asked for size 0.
const DefaultSlowLogSize = 256

// SlowLog is a fixed-size ring buffer of SlowOp records: the newest
// records win, the total is counted monotonically, and Append performs no
// allocation. Appends are expected to be rare (only ops over the slow
// threshold land here), so a mutex — not the histogram's lock-free path —
// protects the ring.
type SlowLog struct {
	mu    sync.Mutex
	recs  []SlowOp
	next  int // ring write position
	full  bool
	total atomic.Uint64
}

// NewSlowLog builds a ring of the given capacity (DefaultSlowLogSize when
// size ≤ 0).
func NewSlowLog(size int) *SlowLog {
	if size <= 0 {
		size = DefaultSlowLogSize
	}
	return &SlowLog{recs: make([]SlowOp, size)}
}

// Append records one slow op, overwriting the oldest once the ring is
// full.
func (l *SlowLog) Append(r SlowOp) {
	l.mu.Lock()
	l.recs[l.next] = r
	l.next++
	if l.next == len(l.recs) {
		l.next = 0
		l.full = true
	}
	l.mu.Unlock()
	l.total.Add(1)
}

// Total returns the number of records ever appended (the ring holds only
// the newest len ≤ cap of them).
func (l *SlowLog) Total() uint64 { return l.total.Load() }

// Cap returns the ring capacity.
func (l *SlowLog) Cap() int { return len(l.recs) }

// Snapshot returns the retained records, oldest first.
func (l *SlowLog) Snapshot() []SlowOp {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.full {
		return append([]SlowOp(nil), l.recs[:l.next]...)
	}
	out := make([]SlowOp, 0, len(l.recs))
	out = append(out, l.recs[l.next:]...)
	return append(out, l.recs[:l.next]...)
}
