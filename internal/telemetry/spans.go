package telemetry

import (
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID is a 16-byte request trace identifier, minted by the cluster
// router and carried end to end through the wire v6 trace context — across
// batch fan-out, fallback reads, quorum writes, and async repair-queue
// entries. The zero value means "untraced".
type TraceID [16]byte

// IsZero reports whether the ID is the untraced zero value.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String renders the ID as 32 lowercase hex digits, the form every
// human-facing surface (cachecluster, -debug-addr JSON, slow-op dumps)
// uses so IDs can be grepped across nodes.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// Span is one sampled request observation on one node: what a traced
// request did there and how long each part took. The key is retained only
// as a scrambled hash (HashKey), never verbatim. Spans from different
// nodes that share a TraceID are the same logical request seen at each
// hop — joining them reconstructs the request's cluster-side path,
// including repairs applied from the async queue seconds later.
type Span struct {
	// Op is the wire opcode byte the node served.
	Op byte
	// Status is the wire status byte of the response (or of the applied
	// queued write).
	Status byte
	// TraceID identifies the originating request.
	TraceID TraceID
	// KeyHash is HashKey of the operation's key (0 for keyless ops).
	KeyHash uint64
	// QueueWaitNanos is time spent queued before service — nonzero only
	// for writes applied from the async repair queue, where it measures
	// how far the repair lagged its originating request.
	QueueWaitNanos uint64
	// DurationNanos is the service time proper (queue wait excluded).
	DurationNanos uint64
	// UnixNanos is the wall-clock completion time.
	UnixNanos uint64
}

// Duration returns the service time as a time.Duration.
func (s Span) Duration() time.Duration { return time.Duration(s.DurationNanos) }

// DefaultSpanRingSize is the ring capacity of a SpanRing built by
// NewSpanRing when asked for size 0.
const DefaultSpanRingSize = 1024

// SpanRing is a fixed-size ring buffer of sampled spans. Like SlowLog it
// is allocation-free on the write path and mutex-protected: only sampled
// requests reach it (1/N as chosen by the router), so Append is off the
// common path and a mutex beats the complexity of a lock-free ring.
type SpanRing struct {
	mu    sync.Mutex
	recs  []Span
	next  int // ring write position
	full  bool
	total atomic.Uint64
}

// NewSpanRing builds a ring of the given capacity (DefaultSpanRingSize
// when size ≤ 0).
func NewSpanRing(size int) *SpanRing {
	if size <= 0 {
		size = DefaultSpanRingSize
	}
	return &SpanRing{recs: make([]Span, size)}
}

// Append records one span, overwriting the oldest once the ring is full.
// It performs no allocation.
func (r *SpanRing) Append(s Span) {
	r.mu.Lock()
	r.recs[r.next] = s
	r.next++
	if r.next == len(r.recs) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
	r.total.Add(1)
}

// Total returns the number of spans ever appended (the ring holds only
// the newest len ≤ cap of them).
func (r *SpanRing) Total() uint64 { return r.total.Load() }

// Cap returns the ring capacity.
func (r *SpanRing) Cap() int { return len(r.recs) }

// Snapshot returns the retained spans, oldest first.
func (r *SpanRing) Snapshot() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Span(nil), r.recs[:r.next]...)
	}
	out := make([]Span, 0, len(r.recs))
	out = append(out, r.recs[r.next:]...)
	return append(out, r.recs[:r.next]...)
}
