package telemetry

import (
	"sync"
	"testing"
)

// TestSpanRing pins ring semantics: partial fill, wrap, oldest-first
// snapshots, total counting, default sizing.
func TestSpanRing(t *testing.T) {
	r := NewSpanRing(4)
	if got := r.Snapshot(); len(got) != 0 {
		t.Fatalf("fresh ring holds %d spans", len(got))
	}
	for i := 1; i <= 3; i++ {
		r.Append(Span{Op: byte(i)})
	}
	got := r.Snapshot()
	if len(got) != 3 || got[0].Op != 1 || got[2].Op != 3 {
		t.Fatalf("partial ring snapshot = %+v", got)
	}
	for i := 4; i <= 10; i++ {
		r.Append(Span{Op: byte(i)})
	}
	got = r.Snapshot()
	if len(got) != 4 {
		t.Fatalf("full ring holds %d, want 4", len(got))
	}
	for i, s := range got {
		if want := byte(7 + i); s.Op != want {
			t.Fatalf("ring[%d].Op = %d, want %d", i, s.Op, want)
		}
	}
	if r.Total() != 10 {
		t.Fatalf("Total = %d, want 10", r.Total())
	}
	if NewSpanRing(0).Cap() != DefaultSpanRingSize {
		t.Fatal("NewSpanRing(0) must default the capacity")
	}
}

// TestSpanRingRace is the satellite-required -race test: concurrent
// appenders and snapshotters, then an exact total check.
func TestSpanRingRace(t *testing.T) {
	r := NewSpanRing(64)
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if s := r.Snapshot(); len(s) > r.Cap() {
					t.Error("snapshot larger than capacity")
					return
				}
			}
		}
	}()
	var aw sync.WaitGroup
	for w := 0; w < workers; w++ {
		aw.Add(1)
		go func(w int) {
			defer aw.Done()
			var id TraceID
			id[0] = byte(w)
			for i := 0; i < per; i++ {
				r.Append(Span{Op: 1, TraceID: id, DurationNanos: uint64(i)})
			}
		}(w)
	}
	aw.Wait()
	close(stop)
	wg.Wait()
	if r.Total() != workers*per {
		t.Fatalf("Total = %d, want %d", r.Total(), workers*per)
	}
}

// TestSpanRingZeroAllocs: sampled-span recording must not allocate.
func TestSpanRingZeroAllocs(t *testing.T) {
	r := NewSpanRing(64)
	s := Span{Op: 1, TraceID: TraceID{1, 2, 3}, KeyHash: 9, DurationNanos: 100}
	if n := testing.AllocsPerRun(1000, func() { r.Append(s) }); n != 0 {
		t.Fatalf("SpanRing.Append allocates %.1f/op, want 0", n)
	}
}

// TestTraceID pins the zero test and hex rendering used to join IDs
// across nodes.
func TestTraceID(t *testing.T) {
	var z TraceID
	if !z.IsZero() {
		t.Error("zero TraceID not IsZero")
	}
	id := TraceID{0xab, 0x01}
	if id.IsZero() {
		t.Error("nonzero TraceID reports IsZero")
	}
	if got := id.String(); got != "ab010000000000000000000000000000" {
		t.Errorf("String = %q", got)
	}
}
