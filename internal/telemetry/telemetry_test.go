package telemetry

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestBucketIndexProperties sweeps representative values across the full
// uint64 range and pins the invariants quantile reconstruction relies on:
// indices are in range, non-decreasing in the value, exact below
// SubBuckets, and every bucket's low bound maps back to that bucket.
func TestBucketIndexProperties(t *testing.T) {
	prev := -1
	var prevV uint64
	check := func(v uint64) {
		i := bucketIndex(v)
		if i < 0 || i >= NumBuckets {
			t.Fatalf("bucketIndex(%d) = %d, out of [0,%d)", v, i, NumBuckets)
		}
		if i < prev {
			t.Fatalf("bucketIndex not monotonic: v=%d idx=%d after v=%d idx=%d", v, i, prevV, prev)
		}
		if lo := BucketLow(i); bucketIndex(lo) != i {
			t.Fatalf("BucketLow(%d) = %d maps to bucket %d", i, lo, bucketIndex(lo))
		}
		prev, prevV = i, v
	}
	for v := uint64(0); v < 4096; v++ {
		check(v)
	}
	for shift := uint(12); shift < 64; shift++ {
		base := uint64(1) << shift
		for _, off := range []uint64{0, 1, base / 3, base/2 + 1, base - 1} {
			check(base + off)
		}
	}
	check(^uint64(0))

	for v := uint64(0); v < SubBuckets; v++ {
		if bucketIndex(v) != int(v) {
			t.Fatalf("small value %d not exact: bucket %d", v, bucketIndex(v))
		}
	}
	// The low bound of bucket i must not exceed any value mapping to i —
	// i.e. relative bucket width ≤ 1/SubBuckets above the exact region.
	for i := SubBuckets; i < NumBuckets-1; i++ {
		lo, next := BucketLow(i), BucketLow(i+1)
		if next <= lo {
			t.Fatalf("bucket %d bounds not increasing: [%d, %d)", i, lo, next)
		}
		if width := next - lo; width > lo/SubBuckets+1 {
			t.Fatalf("bucket %d width %d exceeds %d/16", i, width, lo)
		}
	}
}

// TestQuantileAccuracy records a known distribution and checks the
// reconstructed quantiles stay within the histogram's 1/SubBuckets
// relative-error bound.
func TestQuantileAccuracy(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(1))
	vals := make([]uint64, 0, 100000)
	for i := 0; i < 100000; i++ {
		// Log-uniform from ~1µs to ~16ms, the latency range that matters.
		v := uint64(1000) << uint(rng.Intn(15))
		v += uint64(rng.Int63n(int64(v)))
		vals = append(vals, v)
		h.RecordNanos(v)
	}
	s := h.Snapshot()
	if s.Count != uint64(len(vals)) {
		t.Fatalf("Count = %d, want %d", s.Count, len(vals))
	}
	sorted := append([]uint64(nil), vals...)
	for i := range sorted {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	for _, p := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := sorted[int(p*float64(len(sorted)-1))]
		got := uint64(s.Quantile(p))
		err := float64(got)/float64(exact) - 1
		if err < 0 {
			err = -err
		}
		// Midpoint answers are within half a bucket width of the truth, but
		// rank quantization adds a little; allow the full bucket width.
		if err > 1.0/SubBuckets {
			t.Errorf("p%.3f = %d, exact %d, relative error %.3f > %.3f", p, got, exact, err, 1.0/SubBuckets)
		}
	}
	var sum uint64
	for _, v := range vals {
		sum += v
	}
	exactMean := float64(sum) / float64(len(vals))
	if got := float64(s.Mean()); math.Abs(got/exactMean-1) > 1.0/SubBuckets {
		t.Errorf("Mean = %v, exact %v, beyond the 1/%d midpoint bound", got, exactMean, SubBuckets)
	}
}

// TestQuantileEdgeCases pins the empty and single-sample answers.
func TestQuantileEdgeCases(t *testing.T) {
	var empty HistogramSnapshot
	if empty.Quantile(0.99) != 0 || empty.Mean() != 0 {
		t.Error("empty snapshot must answer 0")
	}
	var h Histogram
	h.Record(5 * time.Millisecond)
	s := h.Snapshot()
	for _, p := range []float64{0, 0.5, 1, -1, 2} {
		got := s.Quantile(p)
		if got < 4*time.Millisecond || got > 6*time.Millisecond {
			t.Errorf("single-sample Quantile(%v) = %v, want ~5ms", p, got)
		}
	}
	h.Record(-time.Second) // negative clamps to 0, must not panic
	if h.Snapshot().Count != 2 {
		t.Error("negative duration not recorded as a clamped sample")
	}
}

// TestMergeProperty is the satellite-required property test: merging the
// snapshots of two independent recorders equals the snapshot of one
// recorder fed both streams.
func TestMergeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var a, b, both Histogram
	for i := 0; i < 20000; i++ {
		v := uint64(rng.Int63()) >> uint(rng.Intn(40))
		if rng.Intn(2) == 0 {
			a.RecordNanos(v)
		} else {
			b.RecordNanos(v)
		}
		both.RecordNanos(v)
	}
	merged := a.Snapshot()
	bs := b.Snapshot()
	merged.Merge(&bs)
	want := both.Snapshot()
	if merged != want {
		t.Fatal("merge of snapshots != snapshot of merged stream")
	}
	// Merge must be order-independent too.
	merged2 := b.Snapshot()
	as := a.Snapshot()
	merged2.Merge(&as)
	if merged2 != want {
		t.Fatal("merge is order-dependent")
	}
}

// TestConcurrentRecordSnapshot is the -race stress: hammer Record from
// many goroutines while snapshotting, then verify no sample was lost.
func TestConcurrentRecordSnapshot(t *testing.T) {
	var h Histogram
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent snapshotter
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s := h.Snapshot()
				var n uint64
				for _, c := range s.Buckets {
					n += c
				}
				if n != s.Count {
					t.Error("snapshot Count != sum of buckets")
					return
				}
			}
		}
	}()
	var workersWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		workersWG.Add(1)
		go func(seed int64) {
			defer workersWG.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				h.RecordNanos(uint64(rng.Int63n(1 << 30)))
			}
		}(int64(w))
	}
	workersWG.Wait()
	close(stop)
	wg.Wait()
	if got := h.Snapshot().Count; got != workers*perWorker {
		t.Fatalf("lost samples: Count = %d, want %d", got, workers*perWorker)
	}
}

func TestCounterAndHighWater(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Add(2)
			}
		}()
	}
	wg.Wait()
	if c.Load() != 8000 {
		t.Fatalf("Counter = %d, want 8000", c.Load())
	}

	var g HighWater
	g.Set(3)
	g.Set(10)
	g.Set(4)
	if g.Cur() != 4 || g.High() != 10 {
		t.Fatalf("HighWater cur=%d high=%d, want 4/10", g.Cur(), g.High())
	}
	// Concurrent Sets: high water must end at the global max.
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for j := uint64(0); j < 500; j++ {
				g.Set(base*1000 + j)
			}
		}(uint64(i))
	}
	wg.Wait()
	if g.High() != 7499 {
		t.Fatalf("HighWater high = %d, want 7499", g.High())
	}
}

func TestSlowLogRing(t *testing.T) {
	l := NewSlowLog(4)
	if got := l.Snapshot(); len(got) != 0 {
		t.Fatalf("fresh log holds %d records", len(got))
	}
	for i := 1; i <= 3; i++ {
		l.Append(SlowOp{Op: byte(i), DurationNanos: uint64(i)})
	}
	got := l.Snapshot()
	if len(got) != 3 || got[0].Op != 1 || got[2].Op != 3 {
		t.Fatalf("partial ring snapshot = %+v", got)
	}
	for i := 4; i <= 10; i++ { // wrap the ring
		l.Append(SlowOp{Op: byte(i), DurationNanos: uint64(i)})
	}
	got = l.Snapshot()
	if len(got) != 4 {
		t.Fatalf("full ring holds %d records, want 4", len(got))
	}
	for i, r := range got { // newest 4, oldest first: ops 7,8,9,10
		if want := byte(7 + i); r.Op != want {
			t.Fatalf("ring[%d].Op = %d, want %d", i, r.Op, want)
		}
	}
	if l.Total() != 10 {
		t.Fatalf("Total = %d, want 10", l.Total())
	}
	if NewSlowLog(0).Cap() != DefaultSlowLogSize {
		t.Fatal("NewSlowLog(0) must default the capacity")
	}
}

func TestHashKey(t *testing.T) {
	seen := map[uint64]bool{}
	for k := uint64(0); k < 1000; k++ {
		h := HashKey(k)
		if h == k {
			t.Fatalf("HashKey(%d) is identity", k)
		}
		if seen[h] {
			t.Fatalf("HashKey collision at %d", k)
		}
		seen[h] = true
	}
}

// TestRecordZeroAllocs is the satellite-required assertion: the Record
// path must not allocate.
func TestRecordZeroAllocs(t *testing.T) {
	var h Histogram
	if n := testing.AllocsPerRun(1000, func() { h.Record(123456 * time.Nanosecond) }); n != 0 {
		t.Fatalf("Histogram.Record allocates %.1f/op, want 0", n)
	}
	var c Counter
	if n := testing.AllocsPerRun(1000, func() { c.Add(1) }); n != 0 {
		t.Fatalf("Counter.Add allocates %.1f/op, want 0", n)
	}
	var g HighWater
	if n := testing.AllocsPerRun(1000, func() { g.Set(7) }); n != 0 {
		t.Fatalf("HighWater.Set allocates %.1f/op, want 0", n)
	}
	l := NewSlowLog(64)
	if n := testing.AllocsPerRun(1000, func() { l.Append(SlowOp{Op: 1}) }); n != 0 {
		t.Fatalf("SlowLog.Append allocates %.1f/op, want 0", n)
	}
}
