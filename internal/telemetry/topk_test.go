package telemetry

import (
	"math/rand"
	"sync"
	"testing"
)

// zipfStream draws n keys from a zipf distribution over [0, universe) and
// feeds them both to the sketch (scrambled, as the server does) and to an
// exact counter, returning the exact counts keyed by scrambled key.
func zipfStream(t *TopK, n, universe int, seed int64) map[uint64]uint64 {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 1.2, 1, uint64(universe-1))
	exact := make(map[uint64]uint64)
	for i := 0; i < n; i++ {
		k := HashKey(z.Uint64())
		exact[k]++
		if t != nil {
			t.Record(k)
		}
	}
	return exact
}

// TestTopKBoundedError is the satellite-required property test: on zipf
// input every tracked key obeys the space-saving bounds
// (Count−Err ≤ true ≤ Count), the error never exceeds the per-stripe N/K
// guarantee, and the genuinely hottest key is both tracked and ranked
// first.
func TestTopKBoundedError(t *testing.T) {
	const n, universe = 200000, 100000
	sk := NewTopK(256)
	exact := zipfStream(sk, n, universe, 1)

	snap := sk.Snapshot()
	if len(snap) == 0 {
		t.Fatal("empty snapshot after 200k records")
	}
	for _, e := range snap {
		true_ := exact[e.Key]
		if e.Count < true_ {
			t.Errorf("key %x: Count %d undercounts true %d", e.Key, e.Count, true_)
		}
		if e.Count-e.Err > true_ {
			t.Errorf("key %x: Count−Err = %d exceeds true %d (bound violated)", e.Key, e.Count-e.Err, true_)
		}
	}
	// Per-stripe guarantee: Err ≤ N_stripe/K_stripe ≤ N/(K/stripes) — use
	// the loose whole-stream bound, which must still hold.
	perStripeCap := sk.Cap() / topKStripes
	for _, e := range snap {
		if e.Err > uint64(n/perStripeCap) {
			t.Errorf("key %x: Err %d exceeds N/K bound %d", e.Key, e.Err, n/perStripeCap)
		}
	}
	// The true hottest key must be tracked and ranked first: its count
	// under zipf(1.2) is far above any bound slack.
	var hotKey, hotCnt uint64
	for k, c := range exact {
		if c > hotCnt {
			hotKey, hotCnt = k, c
		}
	}
	if snap[0].Key != hotKey {
		t.Errorf("hottest key %x (true count %d) not ranked first; got %x (Count %d)",
			hotKey, hotCnt, snap[0].Key, snap[0].Count)
	}
}

// TestTopKMergeAssociative pins the aggregate property the cluster relies
// on: merging per-node snapshots is associative and commutative, so the
// router may fold nodes in any order.
func TestTopKMergeAssociative(t *testing.T) {
	sks := make([]TopKSnapshot, 3)
	for i := range sks {
		sk := NewTopK(64)
		zipfStream(sk, 30000, 5000, int64(10+i))
		sks[i] = sk.Snapshot()
	}
	a, b, c := sks[0], sks[1], sks[2]
	left := a.Merge(b).Merge(c)
	right := a.Merge(b.Merge(c))
	if len(left) != len(right) {
		t.Fatalf("associativity: %d vs %d entries", len(left), len(right))
	}
	for i := range left {
		if left[i] != right[i] {
			t.Fatalf("associativity broken at %d: %+v vs %+v", i, left[i], right[i])
		}
	}
	ab, ba := a.Merge(b), b.Merge(a)
	for i := range ab {
		if ab[i] != ba[i] {
			t.Fatalf("commutativity broken at %d: %+v vs %+v", i, ab[i], ba[i])
		}
	}
	// Merged counts must equal the sum of the parts for shared keys.
	want := make(map[uint64]uint64)
	for _, s := range sks {
		for _, e := range s {
			want[e.Key] += e.Count
		}
	}
	for _, e := range left {
		if e.Count != want[e.Key] {
			t.Fatalf("merged count for %x = %d, want %d", e.Key, e.Count, want[e.Key])
		}
	}
}

// TestTopKEviction forces heavy replacement through a tiny sketch and
// checks the index stays consistent (every tracked key findable, ranking
// sane) after the tombstone-rebuild cycles that churn provokes.
func TestTopKEviction(t *testing.T) {
	sk := NewTopK(16)
	rng := rand.New(rand.NewSource(7))
	const hot = uint64(0xdeadbeef)
	for i := 0; i < 100000; i++ {
		if i%4 == 0 {
			sk.Record(hot)
		} else {
			sk.Record(rng.Uint64()) // one-off churn keys
		}
	}
	snap := sk.Snapshot()
	if got := sk.Cap(); len(snap) > got {
		t.Fatalf("snapshot has %d entries, capacity %d", len(snap), got)
	}
	if snap[0].Key != hot {
		t.Fatalf("hot key not ranked first after churn: got %x count=%d", snap[0].Key, snap[0].Count)
	}
	if snap[0].Count < 25000 {
		t.Fatalf("hot key count %d, want ≥ its 25000 true occurrences", snap[0].Count)
	}
}

// TestTopKConcurrent is the -race exercise across stripes.
func TestTopKConcurrent(t *testing.T) {
	sk := NewTopK(128)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 20000; i++ {
				sk.Record(rng.Uint64() % 1000)
			}
		}(int64(w))
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			sk.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	var total uint64
	for _, e := range sk.Snapshot() {
		total += e.Count
	}
	if total == 0 {
		t.Fatal("concurrent records all lost")
	}
}

// TestTopKZeroAllocs pins the sketch's hot path: recording — tracked key
// or eviction — must not allocate (the tracing-off GET path feeds every
// request through it).
func TestTopKZeroAllocs(t *testing.T) {
	sk := NewTopK(64)
	var i uint64
	if n := testing.AllocsPerRun(5000, func() { i++; sk.Record(i) }); n != 0 {
		t.Fatalf("TopK.Record (evicting) allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(5000, func() { sk.Record(42) }); n != 0 {
		t.Fatalf("TopK.Record (tracked) allocates %.1f/op, want 0", n)
	}
}
