package telemetry

import (
	"sort"
	"sync"
)

// DefaultTopKCapacity is the total entry capacity of a TopK built by
// NewTopK when asked for capacity 0.
const DefaultTopKCapacity = 512

// topKStripes is the lock-stripe count: keys hash to a stripe, each an
// independent space-saving sketch over its substream, so concurrent
// connection goroutines rarely contend on one mutex.
const topKStripes = 8

// TopK is a space-saving heavy-hitters sketch: it tracks an approximate
// top-K of the keys fed to Record using bounded memory, with the classic
// guarantees — a tracked key's Count never undercounts its true
// occurrences and overcounts by at most its Err, and any key whose true
// count exceeds N/K (per stripe) is tracked. Record is allocation-free
// and lock-striped; the sketch feeds the METRICS HOTKEYS section, one
// instance per op class, so "which keys are hot" is answerable per node
// and — because snapshots merge — per cluster.
//
// Keys are opaque uint64s: the server feeds HashKey-scrambled keys so the
// sketch, like the slow-op log, never retains raw keys.
type TopK struct {
	stripes [topKStripes]topKStripe
}

type topKStripe struct {
	mu     sync.Mutex
	keys   []uint64
	counts []uint64
	errs   []uint64
	used   int
	minCnt uint64 // lower bound on the smallest count once full
	// idx is an open-addressing index over keys: 0 empty, -1 tombstone,
	// else slot+1. Tombstones from evictions are reclaimed by an in-place
	// rebuild, so the sketch never allocates after construction.
	idx   []int32
	mask  uint32
	tombs int
}

// NewTopK builds a sketch tracking up to capacity keys in total across
// its stripes (DefaultTopKCapacity when capacity ≤ 0).
func NewTopK(capacity int) *TopK {
	if capacity <= 0 {
		capacity = DefaultTopKCapacity
	}
	per := (capacity + topKStripes - 1) / topKStripes
	if per < 1 {
		per = 1
	}
	idxSize := 4
	for idxSize < 2*per {
		idxSize <<= 1
	}
	t := &TopK{}
	for i := range t.stripes {
		s := &t.stripes[i]
		s.keys = make([]uint64, per)
		s.counts = make([]uint64, per)
		s.errs = make([]uint64, per)
		s.idx = make([]int32, idxSize)
		s.mask = uint32(idxSize - 1)
	}
	return t
}

// Cap returns the total entry capacity across stripes.
func (t *TopK) Cap() int {
	n := 0
	for i := range t.stripes {
		n += len(t.stripes[i].keys)
	}
	return n
}

// Record counts one occurrence of key. It takes one stripe mutex and
// performs no allocation; the common case (key already tracked) is one
// index probe and an increment.
func (t *TopK) Record(key uint64) {
	h := HashKey(key)
	s := &t.stripes[h>>(64-3)]
	hh := uint32(h)
	s.mu.Lock()
	if s.tombs > len(s.idx)/4 {
		s.rebuild()
	}
	if slot := s.find(key, hh); slot >= 0 {
		s.counts[slot]++
	} else if s.used < len(s.keys) {
		slot = s.used
		s.used++
		s.keys[slot] = key
		s.counts[slot] = 1
		s.errs[slot] = 0
		s.insert(hh, slot)
	} else {
		// Space-saving replacement: the new key inherits the minimum
		// count as its error bound and evicts that minimum's owner.
		slot = s.argMin()
		min := s.counts[slot]
		s.del(uint32(HashKey(s.keys[slot])), slot)
		s.keys[slot] = key
		s.errs[slot] = min
		s.counts[slot] = min + 1
		s.insert(hh, slot)
	}
	s.mu.Unlock()
}

// find returns the slot tracking key, or -1.
func (s *topKStripe) find(key uint64, h uint32) int {
	i := h & s.mask
	for {
		v := s.idx[i]
		if v == 0 {
			return -1
		}
		if v > 0 && s.keys[v-1] == key {
			return int(v - 1)
		}
		i = (i + 1) & s.mask
	}
}

// insert places slot into the index; the caller guarantees key is absent.
func (s *topKStripe) insert(h uint32, slot int) {
	i := h & s.mask
	for {
		v := s.idx[i]
		if v <= 0 {
			if v == -1 {
				s.tombs--
			}
			s.idx[i] = int32(slot + 1)
			return
		}
		i = (i + 1) & s.mask
	}
}

// del tombstones the index entry pointing at slot, probing from h (the
// evicted key's hash, so the probe follows the chain insert used).
func (s *topKStripe) del(h uint32, slot int) {
	i := h & s.mask
	for {
		if s.idx[i] == int32(slot+1) {
			s.idx[i] = -1
			s.tombs++
			return
		}
		i = (i + 1) & s.mask
	}
}

// rebuild re-indexes every tracked key in place, dropping tombstones. It
// runs O(capacity) work amortized over the O(capacity/4) deletions that
// accumulated the tombstones, and touches only preallocated arrays.
func (s *topKStripe) rebuild() {
	for i := range s.idx {
		s.idx[i] = 0
	}
	s.tombs = 0
	for slot := 0; slot < s.used; slot++ {
		h := uint32(HashKey(s.keys[slot]))
		i := h & s.mask
		for s.idx[i] != 0 {
			i = (i + 1) & s.mask
		}
		s.idx[i] = int32(slot + 1)
	}
}

// argMin returns the slot with the smallest count. A cached lower bound
// lets the scan stop at the first slot matching it, so on heavy-tailed
// streams — where many slots sit at the minimum — eviction is far cheaper
// than a full scan.
func (s *topKStripe) argMin() int {
	best, bestC := 0, s.counts[0]
	for i := 1; i < len(s.counts) && bestC > s.minCnt; i++ {
		if s.counts[i] < bestC {
			best, bestC = i, s.counts[i]
		}
	}
	s.minCnt = bestC
	return best
}

// TopKEntry is one tracked key in a snapshot. Count obeys the
// space-saving bounds: Count−Err ≤ true occurrences ≤ Count.
type TopKEntry struct {
	// Key is the key as recorded (scrambled by the server before
	// recording, so it joins against slow-op and span key hashes).
	Key uint64
	// Count is the tracked occurrence count (an overestimate).
	Count uint64
	// Err is the maximum overestimation: the minimum count the entry
	// inherited when it displaced another key.
	Err uint64
}

// TopKSnapshot is a point-in-time copy of a TopK, sorted by Count
// descending (ties by Key ascending — a total order, so equal snapshots
// compare equal and Merge is associative).
type TopKSnapshot []TopKEntry

// Snapshot copies the sketch's tracked entries, sorted hottest first.
func (t *TopK) Snapshot() TopKSnapshot {
	var out TopKSnapshot
	for i := range t.stripes {
		s := &t.stripes[i]
		s.mu.Lock()
		for j := 0; j < s.used; j++ {
			out = append(out, TopKEntry{Key: s.keys[j], Count: s.counts[j], Err: s.errs[j]})
		}
		s.mu.Unlock()
	}
	out.sortCanonical()
	return out
}

// Merge combines two snapshots into a new one: counts and error bounds
// of shared keys add, disjoint keys carry over. No truncation happens
// here — the union stays a valid sketch of the combined stream and keeps
// Merge associative and commutative (the property the cluster aggregate
// relies on); trim for display with Top.
func (s TopKSnapshot) Merge(o TopKSnapshot) TopKSnapshot {
	by := make(map[uint64]TopKEntry, len(s)+len(o))
	for _, e := range s {
		by[e.Key] = e
	}
	for _, e := range o {
		if prev, ok := by[e.Key]; ok {
			e.Count += prev.Count
			e.Err += prev.Err
		}
		by[e.Key] = e
	}
	out := make(TopKSnapshot, 0, len(by))
	for _, e := range by {
		out = append(out, e)
	}
	out.sortCanonical()
	return out
}

// Top returns the hottest n entries (fewer if the snapshot is smaller).
func (s TopKSnapshot) Top(n int) TopKSnapshot {
	if n > len(s) {
		n = len(s)
	}
	return s[:n]
}

func (s TopKSnapshot) sortCanonical() {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Count != s[j].Count {
			return s[i].Count > s[j].Count
		}
		return s[i].Key < s[j].Key
	})
}
