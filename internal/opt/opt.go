// Package opt implements Belady's offline optimal paging algorithm OPT
// (furthest-in-future eviction). The paper uses OPT in Proposition 5, where
// set-associative LRU with rehashing is shown to be (1 + 1/(r−1) + o(1))-
// competitive with OPT under (1+o(1))r resource augmentation.
//
// OPT is offline: it must be constructed with the full request sequence, and
// Access must then be fed exactly that sequence, in order.
package opt

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/trace"
)

// Belady is the offline optimal paging algorithm for a cache of fixed
// capacity. It implements core.Cache so it can be run in lockstep with the
// online algorithms.
type Belady struct {
	capacity int
	seq      trace.Sequence
	// nextUse[i] is the position of the next request for seq[i] after i,
	// or infinity if there is none.
	nextUse []int64
	pos     int
	cached  map[trace.Item]struct{}
	heap    beladyHeap
	stats   core.Stats
}

var _ core.Cache = (*Belady)(nil)

const never = int64(math.MaxInt64)

// New builds OPT_capacity for the given request sequence, precomputing
// next-use times with a single backward scan.
func New(capacity int, seq trace.Sequence) *Belady {
	if capacity <= 0 {
		panic(fmt.Sprintf("opt: capacity %d must be positive", capacity))
	}
	nextUse := make([]int64, len(seq))
	lastSeen := make(map[trace.Item]int64, 1024)
	for i := len(seq) - 1; i >= 0; i-- {
		if j, ok := lastSeen[seq[i]]; ok {
			nextUse[i] = j
		} else {
			nextUse[i] = never
		}
		lastSeen[seq[i]] = int64(i)
	}
	return &Belady{
		capacity: capacity,
		seq:      seq,
		nextUse:  nextUse,
		cached:   make(map[trace.Item]struct{}, capacity),
	}
}

// Access implements core.Cache. x must equal the next item of the sequence
// the Belady instance was built with.
func (b *Belady) Access(x trace.Item) bool {
	hit, _, _ := b.AccessDetail(x)
	return hit
}

// AccessDetail implements core.Cache.
func (b *Belady) AccessDetail(x trace.Item) (hit bool, evicted trace.Item, didEvict bool) {
	if b.pos >= len(b.seq) {
		panic("opt: accessed past the end of the precomputed sequence")
	}
	if b.seq[b.pos] != x {
		panic(fmt.Sprintf("opt: access %v at position %d, expected %v", x, b.pos, b.seq[b.pos]))
	}
	next := b.nextUse[b.pos]
	b.pos++
	b.stats.Accesses++

	if _, ok := b.cached[x]; ok {
		b.stats.Hits++
		b.heap.push(beladyEntry{item: x, next: next})
		return true, 0, false
	}
	b.stats.Misses++
	if len(b.cached) == b.capacity {
		victim, ok := b.popVictim()
		if !ok {
			panic("opt: heap lost track of cached items")
		}
		delete(b.cached, victim)
		b.stats.Evictions++
		evicted, didEvict = victim, true
	}
	b.cached[x] = struct{}{}
	b.heap.push(beladyEntry{item: x, next: next})
	return false, evicted, didEvict
}

// popVictim returns the cached item whose next use is furthest in the
// future, skipping stale heap entries (an entry is stale if the item was
// evicted, or was accessed again after the entry was pushed — in which case
// a fresher entry with a later next-use exists).
func (b *Belady) popVictim() (trace.Item, bool) {
	for len(b.heap) > 0 {
		top := b.heap.pop()
		if _, ok := b.cached[top.item]; !ok {
			continue
		}
		// An entry is current iff its next-use is still in the future or
		// never; entries whose next-use position has already been served
		// were superseded by the access at that position.
		if top.next != never && top.next < int64(b.pos) {
			continue
		}
		return top.item, true
	}
	return 0, false
}

// Contains implements core.Cache.
func (b *Belady) Contains(x trace.Item) bool {
	_, ok := b.cached[x]
	return ok
}

// Len implements core.Cache.
func (b *Belady) Len() int { return len(b.cached) }

// Capacity implements core.Cache.
func (b *Belady) Capacity() int { return b.capacity }

// Items implements core.Cache.
func (b *Belady) Items() []trace.Item {
	out := make([]trace.Item, 0, len(b.cached))
	for it := range b.cached {
		out = append(out, it)
	}
	return out
}

// Stats implements core.Cache.
func (b *Belady) Stats() core.Stats { return b.stats }

// Reset implements core.Cache: the instance rewinds to the beginning of its
// sequence.
func (b *Belady) Reset() {
	b.pos = 0
	b.cached = make(map[trace.Item]struct{}, b.capacity)
	b.heap = b.heap[:0]
	b.stats = core.Stats{}
}

// Cost runs OPT_capacity over seq and returns the total number of misses —
// the C(OPT_k, σ) term of Proposition 5.
func Cost(capacity int, seq trace.Sequence) uint64 {
	b := New(capacity, seq)
	for _, x := range seq {
		b.Access(x)
	}
	return b.Stats().Misses
}

// beladyHeap is a max-heap on next-use time with deterministic tie-breaking
// toward larger item ids; ties only arise between never-used-again items.
type beladyHeap []beladyEntry

type beladyEntry struct {
	item trace.Item
	next int64
}

func (h beladyHeap) before(a, b beladyEntry) bool {
	if a.next != b.next {
		return a.next > b.next
	}
	return a.item > b.item
}

func (h *beladyHeap) push(e beladyEntry) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.before((*h)[i], (*h)[parent]) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *beladyHeap) pop() beladyEntry {
	old := *h
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	n := len(*h)
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && h.before((*h)[l], (*h)[best]) {
			best = l
		}
		if r < n && h.before((*h)[r], (*h)[best]) {
			best = r
		}
		if best == i {
			break
		}
		(*h)[i], (*h)[best] = (*h)[best], (*h)[i]
		i = best
	}
	return top
}
