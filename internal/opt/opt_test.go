package opt

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/trace"
)

func TestBeladyTextbookExample(t *testing.T) {
	// Classic example: k=3, σ = 1 2 3 4 1 2 5 1 2 3 4 5 → OPT misses 7.
	seq := trace.Sequence{1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5}
	if got := Cost(3, seq); got != 7 {
		t.Fatalf("OPT cost = %d, want 7", got)
	}
}

func TestBeladySmallCases(t *testing.T) {
	cases := []struct {
		k    int
		seq  trace.Sequence
		want uint64
	}{
		{1, trace.Sequence{1, 1, 1}, 1},
		{1, trace.Sequence{1, 2, 1, 2}, 4},
		{2, trace.Sequence{1, 2, 3, 1, 2}, 4}, // evict 3's... OPT: miss 1,2,3(evict 2 or keeps 1),1,2 → 4
		{2, trace.Sequence{}, 0},
		{3, trace.Sequence{1, 2, 3, 1, 2, 3}, 3},
	}
	for i, c := range cases {
		if got := Cost(c.k, c.seq); got != c.want {
			t.Fatalf("case %d: Cost(%d, %v) = %d, want %d", i, c.k, c.seq, got, c.want)
		}
	}
}

func TestBeladyPanicsOnWrongSequence(t *testing.T) {
	b := New(2, trace.Sequence{1, 2})
	b.Access(1)
	defer func() {
		if recover() == nil {
			t.Fatal("accessing the wrong item should panic")
		}
	}()
	b.Access(9)
}

func TestBeladyPanicsPastEnd(t *testing.T) {
	b := New(2, trace.Sequence{1})
	b.Access(1)
	defer func() {
		if recover() == nil {
			t.Fatal("accessing past the end should panic")
		}
	}()
	b.Access(1)
}

func TestBeladyReset(t *testing.T) {
	seq := trace.Sequence{1, 2, 3, 1, 2, 3}
	b := New(2, seq)
	for _, x := range seq {
		b.Access(x)
	}
	first := b.Stats().Misses
	b.Reset()
	for _, x := range seq {
		b.Access(x)
	}
	if b.Stats().Misses != first {
		t.Fatalf("replay misses %d != %d", b.Stats().Misses, first)
	}
}

// TestBeladyOptimality property-checks Belady's optimality: on random
// sequences, OPT's cost is ≤ the cost of every online policy at the same
// capacity, and OPT is itself a valid paging execution (its miss count is at
// least the number of distinct items beyond capacity... at least the
// compulsory misses).
func TestBeladyOptimality(t *testing.T) {
	kinds := []policy.Kind{policy.LRUKind, policy.FIFOKind, policy.ClockKind, policy.LFUKind, policy.LRU2Kind, policy.RandomKind}
	f := func(raw []uint8, capRaw uint8, seed uint64) bool {
		if len(raw) == 0 {
			return true
		}
		capacity := int(capRaw%6) + 1
		seq := make(trace.Sequence, len(raw))
		for i, r := range raw {
			seq[i] = trace.Item(r % 12)
		}
		optCost := Cost(capacity, seq)
		// Lower bound: compulsory misses.
		if optCost < uint64(min(seq.DistinctCount(), len(seq))) {
			t.Logf("OPT cost %d below compulsory %d", optCost, seq.DistinctCount())
			return false
		}
		for _, kind := range kinds {
			c := core.NewFullAssoc(policy.NewFactory(kind, seed), capacity)
			st := core.RunSequence(c, seq)
			if optCost > st.Misses {
				t.Logf("OPT cost %d > %v cost %d on %v (k=%d)", optCost, kind, st.Misses, seq, capacity)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestBeladyMonotoneInCapacity: OPT's cost never increases with capacity
// (OPT is trivially a stack-like algorithm in cost).
func TestBeladyMonotoneInCapacity(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		seq := make(trace.Sequence, len(raw))
		for i, r := range raw {
			seq[i] = trace.Item(r % 10)
		}
		prev := Cost(1, seq)
		for k := 2; k <= 8; k++ {
			cur := Cost(k, seq)
			if cur > prev {
				t.Logf("OPT cost increased from %d (k=%d) to %d (k=%d) on %v", prev, k-1, cur, k, seq)
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestLRUCompetitiveVsOPT checks Sleator–Tarjan empirically: with r-resource
// augmentation, C(LRU_k) ≤ (1 + 1/(r−1))·C(OPT_{k/r}) + k on random traces.
func TestLRUCompetitiveVsOPT(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 10 {
			return true
		}
		seq := make(trace.Sequence, len(raw))
		for i, r := range raw {
			seq[i] = trace.Item(r % 20)
		}
		const k, r = 8, 2
		lru := core.NewFullAssoc(policy.NewFactory(policy.LRUKind, 0), k)
		lruCost := core.RunSequence(lru, seq).Misses
		optCost := Cost(k/r, seq)
		bound := (1+1.0/(r-1))*float64(optCost) + float64(k)
		if float64(lruCost) > bound {
			t.Logf("LRU %d > bound %.1f (OPT %d) on %v", lruCost, bound, optCost, seq)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
