// Package companion implements companion caches — the related-work cache
// organization the paper contrasts itself against (Brehob et al., Mendel
// and Seiden, Buchbinder et al.; known in the architecture literature as
// victim caches, Jouppi [31]): an α-way set-associative main cache paired
// with a small fully associative companion that catches the main cache's
// victims.
//
// On a main-cache miss that hits the companion, the item is promoted back
// into its bucket and the bucket's victim is demoted into the companion (a
// swap); such an access is not charged as a paging miss. On a full miss,
// the fetched item goes to its bucket and the bucket's victim (if any) is
// demoted. The companion evicts least-recently-demoted-or-used.
//
// The companion absorbs exactly the conflict misses of oversubscribed
// buckets, so a small companion can substitute for a large increase in α —
// the quantitative comparison is experiment E16.
package companion

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hashfn"
	"repro/internal/policy"
	"repro/internal/trace"
)

// Cache is a set-associative main cache plus a fully associative companion.
// It implements core.Cache; Capacity reports main + companion slots.
type Cache struct {
	alpha     int
	hasher    *hashfn.Random
	buckets   []policy.Policy
	comp      *policy.LRU
	stats     core.Stats
	compHits  uint64
	demotions uint64
}

var _ core.Cache = (*Cache)(nil)

// Config describes a companion cache.
type Config struct {
	// MainCapacity is the set-associative main cache's slot count.
	MainCapacity int
	// Alpha is the main cache's set size; must divide MainCapacity.
	Alpha int
	// CompanionCapacity is the fully associative companion's slot count.
	CompanionCapacity int
	// Factory builds the per-bucket policy of the main cache (LRU in the
	// classic victim-cache design).
	Factory policy.Factory
	// Seed drives the indexing hash.
	Seed uint64
}

// New builds a companion cache.
func New(cfg Config) (*Cache, error) {
	if cfg.MainCapacity <= 0 || cfg.Alpha <= 0 || cfg.MainCapacity%cfg.Alpha != 0 {
		return nil, fmt.Errorf("companion: bad main geometry k=%d α=%d", cfg.MainCapacity, cfg.Alpha)
	}
	if cfg.CompanionCapacity <= 0 {
		return nil, fmt.Errorf("companion: companion capacity %d must be positive", cfg.CompanionCapacity)
	}
	if cfg.Factory == nil {
		return nil, fmt.Errorf("companion: nil factory")
	}
	n := cfg.MainCapacity / cfg.Alpha
	c := &Cache{
		alpha:   cfg.Alpha,
		hasher:  hashfn.NewRandom(cfg.Seed, n),
		buckets: make([]policy.Policy, n),
		comp:    policy.NewLRU(cfg.CompanionCapacity),
	}
	for i := range c.buckets {
		c.buckets[i] = cfg.Factory(cfg.Alpha)
	}
	return c, nil
}

// Access implements core.Cache.
func (c *Cache) Access(x trace.Item) bool {
	hit, _, _ := c.AccessDetail(x)
	return hit
}

// AccessDetail implements core.Cache. The reported eviction is the item
// that left the cache entirely (pushed out of the companion), if any.
func (c *Cache) AccessDetail(x trace.Item) (hit bool, evicted trace.Item, didEvict bool) {
	c.stats.Accesses++
	b := c.hasher.Bucket(x)
	pol := c.buckets[b]

	if pol.Contains(x) {
		pol.Request(x) // refresh recency
		c.stats.Hits++
		return true, 0, false
	}

	if c.comp.Contains(x) {
		// Companion hit: promote x into its bucket, demote the bucket's
		// victim into the companion (swap). Not a paging miss.
		c.comp.Delete(x)
		c.compHits++
		c.stats.Hits++
		_, victim, didDemote := pol.Request(x)
		if didDemote {
			evicted, didEvict = c.demote(victim)
		}
		return true, evicted, didEvict
	}

	// Full miss: fetch into the bucket, demoting its victim if full.
	c.stats.Misses++
	_, victim, didDemote := pol.Request(x)
	if didDemote {
		evicted, didEvict = c.demote(victim)
	}
	return false, evicted, didEvict
}

// demote pushes a main-cache victim into the companion, returning the item
// the companion had to discard, if any.
func (c *Cache) demote(victim trace.Item) (trace.Item, bool) {
	c.demotions++
	_, out, didOut := c.comp.Request(victim)
	if didOut {
		c.stats.Evictions++
	}
	return out, didOut
}

// Contains implements core.Cache.
func (c *Cache) Contains(x trace.Item) bool {
	if c.comp.Contains(x) {
		return true
	}
	return c.buckets[c.hasher.Bucket(x)].Contains(x)
}

// Len implements core.Cache.
func (c *Cache) Len() int {
	total := c.comp.Len()
	for _, pol := range c.buckets {
		total += pol.Len()
	}
	return total
}

// Capacity implements core.Cache (main + companion slots).
func (c *Cache) Capacity() int { return c.alpha*len(c.buckets) + c.comp.Capacity() }

// MainCapacity returns the set-associative portion's slot count.
func (c *Cache) MainCapacity() int { return c.alpha * len(c.buckets) }

// CompanionCapacity returns the companion's slot count.
func (c *Cache) CompanionCapacity() int { return c.comp.Capacity() }

// Items implements core.Cache.
func (c *Cache) Items() []trace.Item {
	out := c.comp.Items()
	for _, pol := range c.buckets {
		out = append(out, pol.Items()...)
	}
	return out
}

// Stats implements core.Cache.
func (c *Cache) Stats() core.Stats { return c.stats }

// Reset implements core.Cache.
func (c *Cache) Reset() {
	for _, pol := range c.buckets {
		pol.Reset()
	}
	c.comp.Reset()
	c.stats = core.Stats{}
	c.compHits = 0
	c.demotions = 0
}

// CompanionHits returns the number of accesses saved by the companion —
// conflict misses the plain set-associative cache would have paid.
func (c *Cache) CompanionHits() uint64 { return c.compHits }

// Demotions returns how many victims were pushed into the companion.
func (c *Cache) Demotions() uint64 { return c.demotions }
