package companion

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/trace"
	"repro/internal/workload"
)

func lruFactory() policy.Factory { return policy.NewFactory(policy.LRUKind, 0) }

func mustNew(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestValidation(t *testing.T) {
	bad := []Config{
		{MainCapacity: 0, Alpha: 1, CompanionCapacity: 1, Factory: lruFactory()},
		{MainCapacity: 8, Alpha: 3, CompanionCapacity: 1, Factory: lruFactory()},
		{MainCapacity: 8, Alpha: 2, CompanionCapacity: 0, Factory: lruFactory()},
		{MainCapacity: 8, Alpha: 2, CompanionCapacity: 2, Factory: nil},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func TestCompanionCatchesConflictVictims(t *testing.T) {
	// Direct-mapped main cache: two items in the same bucket thrash without
	// a companion, but a 1-slot companion turns the thrash into swaps.
	c := mustNew(t, Config{MainCapacity: 4, Alpha: 1, CompanionCapacity: 4, Factory: lruFactory(), Seed: 0})
	// Find two items in the same bucket.
	var a, b trace.Item
	found := false
	seen := map[int]trace.Item{}
	h := c.hasher
	for x := trace.Item(0); !found && x < 100; x++ {
		bkt := h.Bucket(x)
		if prev, ok := seen[bkt]; ok {
			a, b = prev, x
			found = true
		} else {
			seen[bkt] = x
		}
	}
	if !found {
		t.Fatal("no colliding pair found")
	}
	// Alternate a and b: first two accesses are compulsory misses; every
	// later access hits either the bucket or the companion.
	misses := 0
	for i := 0; i < 50; i++ {
		for _, x := range []trace.Item{a, b} {
			if !c.Access(x) {
				misses++
			}
		}
	}
	if misses != 2 {
		t.Fatalf("misses = %d, want 2 (compulsory only)", misses)
	}
	if c.CompanionHits() == 0 {
		t.Fatal("expected companion hits on the thrashing pair")
	}
}

func TestMatchesPlainSetAssocWhenCompanionUseless(t *testing.T) {
	// A workload that never overflows any bucket gives the companion
	// nothing to do: miss counts must match the plain set-associative cache.
	cc := mustNew(t, Config{MainCapacity: 64, Alpha: 8, CompanionCapacity: 8, Factory: lruFactory(), Seed: 5})
	sa := core.MustNewSetAssoc(core.SetAssocConfig{Capacity: 64, Alpha: 8, Factory: lruFactory(), Seed: 5})
	seq := workload.Uniform{Universe: 16}.Generate(5000, 3)
	ccStats := core.RunSequence(cc, seq)
	saStats := core.RunSequence(sa, seq)
	if cc.Demotions() == 0 {
		// No bucket ever filled: identical behaviour expected.
		if ccStats.Misses != saStats.Misses {
			t.Fatalf("misses differ with idle companion: %d vs %d", ccStats.Misses, saStats.Misses)
		}
	}
}

func TestCompanionNeverWorseThanPlain(t *testing.T) {
	// On scan workloads, the companion absorbs conflict victims, so the
	// companion cache (even counting its extra slots against a bigger
	// plain cache) beats the plain set-associative cache of main size.
	const k = 256
	seq := trace.RangeSeq(0, 200).Repeat(8)
	for _, alpha := range []int{1, 2, 4} {
		cc := mustNew(t, Config{MainCapacity: k, Alpha: alpha, CompanionCapacity: 32, Factory: lruFactory(), Seed: 7})
		sa := core.MustNewSetAssoc(core.SetAssocConfig{Capacity: k, Alpha: alpha, Factory: lruFactory(), Seed: 7})
		ccM := core.RunSequence(cc, seq).Misses
		saM := core.RunSequence(sa, seq).Misses
		if ccM > saM {
			t.Errorf("α=%d: companion cache missed more (%d) than plain (%d)", alpha, ccM, saM)
		}
	}
}

func TestGeometryAndLen(t *testing.T) {
	c := mustNew(t, Config{MainCapacity: 32, Alpha: 4, CompanionCapacity: 8, Factory: lruFactory(), Seed: 1})
	if c.Capacity() != 40 || c.MainCapacity() != 32 || c.CompanionCapacity() != 8 {
		t.Fatalf("geometry %d/%d/%d", c.Capacity(), c.MainCapacity(), c.CompanionCapacity())
	}
	core.RunSequence(c, trace.RangeSeq(0, 100))
	if c.Len() > c.Capacity() {
		t.Fatalf("Len %d > capacity", c.Len())
	}
	if len(c.Items()) != c.Len() {
		t.Fatalf("Items %d != Len %d", len(c.Items()), c.Len())
	}
}

func TestResetReplays(t *testing.T) {
	c := mustNew(t, Config{MainCapacity: 16, Alpha: 2, CompanionCapacity: 4, Factory: lruFactory(), Seed: 3})
	seq := workload.Uniform{Universe: 40}.Generate(2000, 9)
	first := core.RunSequence(c, seq)
	c.Reset()
	second := core.RunSequence(c, seq)
	if first != second {
		t.Fatalf("replay diverged: %+v vs %+v", first, second)
	}
}

func TestContractInvariants(t *testing.T) {
	f := func(raw []uint8) bool {
		c, err := New(Config{MainCapacity: 8, Alpha: 2, CompanionCapacity: 3, Factory: lruFactory(), Seed: 2})
		if err != nil {
			return false
		}
		for _, r := range raw {
			x := trace.Item(r % 30)
			c.Access(x)
			if !c.Contains(x) {
				return false
			}
			if c.Len() > c.Capacity() {
				return false
			}
		}
		st := c.Stats()
		return st.Hits+st.Misses == st.Accesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestNoDuplicateResidency: an item must never be in both the companion and
// a bucket at once.
func TestNoDuplicateResidency(t *testing.T) {
	c := mustNew(t, Config{MainCapacity: 8, Alpha: 1, CompanionCapacity: 4, Factory: lruFactory(), Seed: 11})
	seq := workload.Uniform{Universe: 20}.Generate(3000, 13)
	for _, x := range seq {
		c.Access(x)
		seen := make(map[trace.Item]int)
		for _, it := range c.Items() {
			seen[it]++
			if seen[it] > 1 {
				t.Fatalf("%v resident twice after accessing %v", it, x)
			}
		}
	}
}
