package core

import (
	"fmt"
	"sort"

	"repro/internal/hashfn"
	"repro/internal/policy"
	"repro/internal/trace"
)

// RehashMode selects the rehashing strategy of a set-associative cache.
type RehashMode int

const (
	// RehashNone never changes the hash function (the Section 4 cache).
	RehashNone RehashMode = iota
	// RehashFullFlush evicts everything and draws a new hash function when
	// the trigger fires: the ⟨LRU⟩FF algorithm of Section 6.
	RehashFullFlush
	// RehashIncremental draws a new hash function and migrates items
	// gradually: the ⟨LRU⟩IF algorithm of Section 6.1. At most two hash
	// functions are live at any time.
	RehashIncremental
)

// String implements fmt.Stringer.
func (m RehashMode) String() string {
	switch m {
	case RehashNone:
		return "none"
	case RehashFullFlush:
		return "fullflush"
	case RehashIncremental:
		return "incremental"
	default:
		return fmt.Sprintf("RehashMode(%d)", int(m))
	}
}

// RehashConfig configures when and how a set-associative cache rehashes.
type RehashConfig struct {
	Mode RehashMode

	// EveryMisses triggers a rehash every EveryMisses cache misses — the
	// paper's schedule (rehash every poly(k) misses). Ignored if zero.
	EveryMisses uint64

	// EveryAccesses triggers a rehash every EveryAccesses requests,
	// regardless of misses. The paper proves this schedule is broken (the
	// Section 6 remark: an adversary fixes one item set and replays it
	// forever); it exists here for experiment E13. Ignored if zero.
	// EveryMisses and EveryAccesses are mutually exclusive.
	EveryAccesses uint64

	// MigrationPerMiss is the number of forced evictions of non-remapped
	// items performed per miss during an incremental rehash. The paper only
	// requires that all k migrations happen before the next rehash; 1 (the
	// default when zero) is the gentlest schedule, larger values finish the
	// migration sooner at the cost of burstier eviction work. Ignored by
	// other modes.
	MigrationPerMiss int
}

func (r RehashConfig) validate() error {
	if r.Mode == RehashNone {
		return nil
	}
	if (r.EveryMisses == 0) == (r.EveryAccesses == 0) {
		return fmt.Errorf("core: rehash mode %v needs exactly one of EveryMisses/EveryAccesses", r.Mode)
	}
	return nil
}

// SetAssocConfig describes an α-way set-associative cache ⟨A⟩_k.
type SetAssocConfig struct {
	// Capacity is the total slot count k.
	Capacity int
	// Alpha is the set (bucket) size α; it must divide Capacity.
	Alpha int
	// Factory stamps out one policy instance A_α per bucket.
	Factory policy.Factory
	// Seed drives the indexing hash function(s). Two caches with equal
	// configs replay identically.
	Seed uint64
	// Rehash selects the rehashing behaviour (zero value: never rehash).
	Rehash RehashConfig
	// NewHasher overrides the indexing-function family; nil means the
	// fully-random model (hashfn.NewRandom). The modulo ablation in E1
	// passes hashfn.NewModulo here.
	NewHasher func(seed uint64, buckets int) hashfn.Hasher
}

func (c SetAssocConfig) validate() error {
	if c.Capacity <= 0 {
		return fmt.Errorf("core: capacity %d must be positive", c.Capacity)
	}
	if c.Alpha <= 0 || c.Alpha > c.Capacity {
		return fmt.Errorf("core: alpha %d must be in [1, %d]", c.Alpha, c.Capacity)
	}
	if c.Capacity%c.Alpha != 0 {
		return fmt.Errorf("core: alpha %d must divide capacity %d", c.Alpha, c.Capacity)
	}
	if c.Factory == nil {
		return fmt.Errorf("core: nil policy factory")
	}
	return c.Rehash.validate()
}

// SetAssoc is the α-way set-associative cache ⟨A⟩_k: the k slots are
// partitioned into k/α buckets, a hash function assigns each item to one
// bucket, and each bucket runs an independent instance of the replacement
// policy with capacity α (the algorithm box in Section 4).
//
// During an incremental rehash, items that have not been touched since the
// hash change stay in their physical bucket under the *old* mapping while
// new insertions use the new mapping; a physical bucket's policy instance
// orders both kinds of residents together, and lookups consult the new
// mapping first, then the old one.
type SetAssoc struct {
	cfg     SetAssocConfig
	n       int // number of buckets, k/α
	buckets []policy.Policy
	hasher  hashfn.Hasher
	seeds   *hashfn.SeedSequence
	stats   Stats

	sinceTrigger uint64

	// Incremental-flushing state. oldHasher is non-nil while a migration is
	// in progress. oldRes maps every not-yet-remapped item to the physical
	// bucket it still occupies. sweep/sweepPos implement the paper's "evict
	// one arbitrary non-remapped item" schedule, one per miss.
	oldHasher hashfn.Hasher
	oldRes    map[trace.Item]int
	sweep     []trace.Item
	sweepPos  int
}

var _ Cache = (*SetAssoc)(nil)

// NewSetAssoc builds a set-associative cache from cfg.
func NewSetAssoc(cfg SetAssocConfig) (*SetAssoc, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.NewHasher == nil {
		cfg.NewHasher = func(seed uint64, buckets int) hashfn.Hasher {
			return hashfn.NewRandom(seed, buckets)
		}
	}
	s := &SetAssoc{cfg: cfg, n: cfg.Capacity / cfg.Alpha}
	s.init()
	return s, nil
}

// MustNewSetAssoc is NewSetAssoc, panicking on config errors. Intended for
// experiment code with statically known-good parameters.
func MustNewSetAssoc(cfg SetAssocConfig) *SetAssoc {
	s, err := NewSetAssoc(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

func (s *SetAssoc) init() {
	s.seeds = hashfn.NewSeedSequence(s.cfg.Seed)
	s.hasher = s.cfg.NewHasher(s.seeds.Next(), s.n)
	s.buckets = make([]policy.Policy, s.n)
	for i := range s.buckets {
		s.buckets[i] = s.cfg.Factory(s.cfg.Alpha)
	}
	s.stats = Stats{}
	s.sinceTrigger = 0
	s.oldHasher = nil
	s.oldRes = nil
	s.sweep = nil
	s.sweepPos = 0
}

// Access implements Cache.
func (s *SetAssoc) Access(x trace.Item) bool {
	hit, _, _ := s.AccessDetail(x)
	return hit
}

// AccessDetail implements Cache.
func (s *SetAssoc) AccessDetail(x trace.Item) (hit bool, evicted trace.Item, didEvict bool) {
	s.stats.Accesses++
	b := s.hasher.Bucket(x)
	pol := s.buckets[b]

	if ob, isOld := s.oldResident(x); isOld {
		if ob == b {
			// The old and new mappings agree; touching x remaps it in place.
			delete(s.oldRes, x)
			hit, evicted, didEvict = pol.Request(x)
		} else {
			// Hit on a non-remapped item: move it to its new bucket, which
			// may evict from there (Section 6.1).
			s.buckets[ob].Delete(x)
			delete(s.oldRes, x)
			_, evicted, didEvict = pol.Request(x)
			hit = true
		}
	} else {
		hit, evicted, didEvict = pol.Request(x)
	}
	if didEvict {
		s.stats.Evictions++
		// The victim may itself have been awaiting remapping.
		delete(s.oldRes, evicted)
	}

	if hit {
		s.stats.Hits++
	} else {
		s.stats.Misses++
		if s.oldHasher != nil {
			rate := s.cfg.Rehash.MigrationPerMiss
			if rate <= 0 {
				rate = 1
			}
			for i := 0; i < rate && len(s.oldRes) > 0; i++ {
				s.forcedEvictOne()
			}
		}
	}
	if s.oldHasher != nil && len(s.oldRes) == 0 {
		s.finishMigration()
	}
	s.maybeRehash(hit)
	return hit, evicted, didEvict
}

func (s *SetAssoc) oldResident(x trace.Item) (int, bool) {
	if s.oldRes == nil {
		return 0, false
	}
	ob, ok := s.oldRes[x]
	return ob, ok
}

// forcedEvictOne evicts one not-yet-remapped item, advancing the sweep. It
// is called once per miss during a migration, implementing the "k arbitrary
// points in time before the next rehash" schedule.
func (s *SetAssoc) forcedEvictOne() {
	for s.sweepPos < len(s.sweep) {
		it := s.sweep[s.sweepPos]
		s.sweepPos++
		ob, ok := s.oldRes[it]
		if !ok {
			continue // already remapped or evicted
		}
		s.buckets[ob].Delete(it)
		delete(s.oldRes, it)
		s.stats.FlushEvictions++
		return
	}
}

func (s *SetAssoc) finishMigration() {
	s.oldHasher = nil
	s.oldRes = nil
	s.sweep = nil
	s.sweepPos = 0
}

func (s *SetAssoc) maybeRehash(hit bool) {
	r := s.cfg.Rehash
	if r.Mode == RehashNone {
		return
	}
	switch {
	case r.EveryMisses > 0:
		if !hit {
			s.sinceTrigger++
		}
		if s.sinceTrigger < r.EveryMisses {
			return
		}
	case r.EveryAccesses > 0:
		s.sinceTrigger++
		if s.sinceTrigger < r.EveryAccesses {
			return
		}
	}
	s.sinceTrigger = 0
	s.rehash()
}

func (s *SetAssoc) rehash() {
	s.stats.Rehashes++
	switch s.cfg.Rehash.Mode {
	case RehashFullFlush:
		for _, pol := range s.buckets {
			s.stats.FlushEvictions += uint64(pol.Len())
			// Reset rather than Delete: the paper's rehash replaces the
			// bucket instances outright, clearing their access history
			// (which is what "cools down" LFU/LRU-K buckets, footnote 7).
			pol.Reset()
		}
		s.finishMigration()
		s.hasher = s.cfg.NewHasher(s.seeds.Next(), s.n)

	case RehashIncremental:
		// "Every rehash finishes before the next one begins": if the sweep
		// has not drained the previous generation yet, force-complete it so
		// at most two hash functions are ever live.
		if s.oldHasher != nil {
			for it, ob := range s.oldRes {
				s.buckets[ob].Delete(it)
				s.stats.FlushEvictions++
			}
			s.finishMigration()
		}
		s.oldHasher = s.hasher
		s.hasher = s.cfg.NewHasher(s.seeds.Next(), s.n)
		s.oldRes = make(map[trace.Item]int)
		for i, pol := range s.buckets {
			for _, it := range pol.Items() {
				s.oldRes[it] = i
			}
		}
		s.sweep = make([]trace.Item, 0, len(s.oldRes))
		for it := range s.oldRes {
			s.sweep = append(s.sweep, it)
		}
		// Deterministic sweep order; the paper allows any order.
		sort.Slice(s.sweep, func(i, j int) bool { return s.sweep[i] < s.sweep[j] })
		s.sweepPos = 0
	}
}

// Contains implements Cache.
func (s *SetAssoc) Contains(x trace.Item) bool {
	if ob, ok := s.oldResident(x); ok {
		return s.buckets[ob].Contains(x)
	}
	return s.buckets[s.hasher.Bucket(x)].Contains(x)
}

// Len implements Cache.
func (s *SetAssoc) Len() int {
	total := 0
	for _, pol := range s.buckets {
		total += pol.Len()
	}
	return total
}

// Capacity implements Cache.
func (s *SetAssoc) Capacity() int { return s.cfg.Capacity }

// Items implements Cache.
func (s *SetAssoc) Items() []trace.Item {
	out := make([]trace.Item, 0, s.Len())
	for _, pol := range s.buckets {
		out = append(out, pol.Items()...)
	}
	return out
}

// Stats implements Cache.
func (s *SetAssoc) Stats() Stats { return s.stats }

// Reset implements Cache, restoring the exact initial state (including the
// hash-function seed schedule).
func (s *SetAssoc) Reset() { s.init() }

// Alpha returns the set size α.
func (s *SetAssoc) Alpha() int { return s.cfg.Alpha }

// NumBuckets returns k/α.
func (s *SetAssoc) NumBuckets() int { return s.n }

// BucketOf returns the bucket index x maps to under the current hash.
func (s *SetAssoc) BucketOf(x trace.Item) int { return s.hasher.Bucket(x) }

// BucketLen returns the number of items in physical bucket i.
func (s *SetAssoc) BucketLen(i int) int { return s.buckets[i].Len() }

// BucketItems returns a snapshot of physical bucket i.
func (s *SetAssoc) BucketItems(i int) []trace.Item { return s.buckets[i].Items() }

// Migrating reports whether an incremental rehash is in progress.
func (s *SetAssoc) Migrating() bool { return s.oldHasher != nil }

// PendingMigration returns the number of items still mapped by the old hash.
func (s *SetAssoc) PendingMigration() int { return len(s.oldRes) }
