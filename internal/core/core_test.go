package core

import (
	"testing"
	"testing/quick"

	"repro/internal/policy"
	"repro/internal/trace"
)

func lruFactory() policy.Factory { return policy.NewFactory(policy.LRUKind, 0) }

func TestFullAssocCountsMisses(t *testing.T) {
	c := NewFullAssoc(lruFactory(), 2)
	seq := trace.Sequence{1, 2, 1, 3, 1} // misses: 1,2,3; hits: 1,1
	st := RunSequence(c, seq)
	if st.Misses != 3 || st.Hits != 2 || st.Accesses != 5 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Evictions != 1 { // 3 evicts 2
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

func TestSetAssocAlphaEqualsKMatchesFullAssoc(t *testing.T) {
	// With α = k there is one bucket: the set-associative cache must behave
	// exactly like the fully associative one on every request.
	const k = 16
	sa := MustNewSetAssoc(SetAssocConfig{Capacity: k, Alpha: k, Factory: lruFactory(), Seed: 1})
	fa := NewFullAssoc(lruFactory(), k)
	seq := trace.Sequence{}
	for i := 0; i < 2000; i++ {
		seq = append(seq, trace.Item((i*i+i/3)%50))
	}
	for _, x := range seq {
		h1, e1, d1 := sa.AccessDetail(x)
		h2, e2, d2 := fa.AccessDetail(x)
		if h1 != h2 || d1 != d2 || (d1 && e1 != e2) {
			t.Fatalf("diverged on %v: sa=(%v,%v,%v) fa=(%v,%v,%v)", x, h1, e1, d1, h2, e2, d2)
		}
	}
}

func TestSetAssocValidation(t *testing.T) {
	base := SetAssocConfig{Capacity: 8, Alpha: 2, Factory: lruFactory()}
	if _, err := NewSetAssoc(base); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := base
	bad.Alpha = 3 // does not divide 8
	if _, err := NewSetAssoc(bad); err == nil {
		t.Fatal("alpha=3, k=8 should be rejected")
	}
	bad = base
	bad.Capacity = 0
	if _, err := NewSetAssoc(bad); err == nil {
		t.Fatal("capacity=0 should be rejected")
	}
	bad = base
	bad.Factory = nil
	if _, err := NewSetAssoc(bad); err == nil {
		t.Fatal("nil factory should be rejected")
	}
	bad = base
	bad.Rehash = RehashConfig{Mode: RehashFullFlush}
	if _, err := NewSetAssoc(bad); err == nil {
		t.Fatal("rehash mode without trigger should be rejected")
	}
	bad = base
	bad.Rehash = RehashConfig{Mode: RehashFullFlush, EveryMisses: 5, EveryAccesses: 5}
	if _, err := NewSetAssoc(bad); err == nil {
		t.Fatal("both triggers set should be rejected")
	}
}

func TestSetAssocItemsStayInTheirBucket(t *testing.T) {
	sa := MustNewSetAssoc(SetAssocConfig{Capacity: 32, Alpha: 4, Factory: lruFactory(), Seed: 3})
	for i := 0; i < 500; i++ {
		x := trace.Item(i % 60)
		sa.Access(x)
		if sa.Contains(x) {
			b := sa.BucketOf(x)
			found := false
			for _, it := range sa.BucketItems(b) {
				if it == x {
					found = true
				}
			}
			if !found {
				t.Fatalf("%v cached but not in its bucket %d", x, b)
			}
		}
	}
	total := 0
	for i := 0; i < sa.NumBuckets(); i++ {
		if l := sa.BucketLen(i); l > sa.Alpha() {
			t.Fatalf("bucket %d holds %d > α=%d", i, l, sa.Alpha())
		} else {
			total += l
		}
	}
	if total != sa.Len() {
		t.Fatalf("bucket sum %d != Len %d", total, sa.Len())
	}
}

func TestSetAssocConflictMissesHappen(t *testing.T) {
	// A working set equal to the cache size always fits a fully associative
	// LRU after the first pass, but with small α some bucket overflows with
	// high probability, so the set-associative cache keeps missing.
	const k = 64
	sa := MustNewSetAssoc(SetAssocConfig{Capacity: k, Alpha: 2, Factory: lruFactory(), Seed: 7})
	fa := NewFullAssoc(lruFactory(), k)
	pass := trace.RangeSeq(0, k)
	seq := pass.Repeat(10)
	saStats := RunSequence(sa, seq)
	faStats := RunSequence(fa, seq)
	if faStats.Misses != k {
		t.Fatalf("full-assoc misses = %d, want %d (only compulsory)", faStats.Misses, k)
	}
	if saStats.Misses <= faStats.Misses {
		t.Fatalf("set-assoc misses = %d, expected conflict misses beyond %d", saStats.Misses, k)
	}
}

func TestSetAssocDeterministicInSeed(t *testing.T) {
	run := func(seed uint64) Stats {
		sa := MustNewSetAssoc(SetAssocConfig{Capacity: 32, Alpha: 4, Factory: lruFactory(), Seed: seed})
		return RunSequence(sa, trace.RangeSeq(0, 48).Repeat(5))
	}
	if run(1) != run(1) {
		t.Fatal("same seed produced different stats")
	}
}

func TestSetAssocResetRestoresInitialState(t *testing.T) {
	sa := MustNewSetAssoc(SetAssocConfig{
		Capacity: 16, Alpha: 4, Factory: lruFactory(), Seed: 5,
		Rehash: RehashConfig{Mode: RehashFullFlush, EveryMisses: 10},
	})
	seq := trace.RangeSeq(0, 40).Repeat(3)
	first := RunSequence(sa, seq)
	sa.Reset()
	if sa.Len() != 0 || sa.Stats() != (Stats{}) {
		t.Fatalf("Reset left state: len=%d stats=%+v", sa.Len(), sa.Stats())
	}
	second := RunSequence(sa, seq)
	if first != second {
		t.Fatalf("replay after Reset differs: %+v vs %+v", first, second)
	}
}

func TestFullFlushRehashTriggersOnMisses(t *testing.T) {
	sa := MustNewSetAssoc(SetAssocConfig{
		Capacity: 8, Alpha: 2, Factory: lruFactory(), Seed: 2,
		Rehash: RehashConfig{Mode: RehashFullFlush, EveryMisses: 4},
	})
	// 8 distinct cold items = 8 misses = 2 rehashes.
	RunSequence(sa, trace.RangeSeq(100, 108))
	if got := sa.Stats().Rehashes; got != 2 {
		t.Fatalf("rehashes = %d, want 2", got)
	}
	// After the last flush at miss 8, the cache holds only items accessed
	// since then: none.
	if sa.Len() != 0 {
		t.Fatalf("post-flush Len = %d, want 0", sa.Len())
	}
}

func TestFullFlushEmptiesAndRedistributes(t *testing.T) {
	sa := MustNewSetAssoc(SetAssocConfig{
		Capacity: 16, Alpha: 4, Factory: lruFactory(), Seed: 9,
		Rehash: RehashConfig{Mode: RehashFullFlush, EveryMisses: 1000},
	})
	warm := trace.RangeSeq(0, 12)
	st := RunSequence(sa, warm)
	// 12 random items into 4 buckets of size 4 may overflow a bucket, so
	// regular evictions are possible; flush evictions are not (the trigger
	// is far away).
	if st.FlushEvictions != 0 {
		t.Fatalf("premature flush evictions: %d", st.FlushEvictions)
	}
	if uint64(sa.Len())+st.Evictions != 12 {
		t.Fatalf("Len %d + evictions %d != 12 inserted", sa.Len(), st.Evictions)
	}
}

func TestAccessRehashModeCountsAccesses(t *testing.T) {
	sa := MustNewSetAssoc(SetAssocConfig{
		Capacity: 8, Alpha: 2, Factory: lruFactory(), Seed: 2,
		Rehash: RehashConfig{Mode: RehashFullFlush, EveryAccesses: 5},
	})
	// 10 accesses → 2 rehashes regardless of hits.
	seq := trace.Sequence{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}
	RunSequence(sa, seq)
	if got := sa.Stats().Rehashes; got != 2 {
		t.Fatalf("rehashes = %d, want 2", got)
	}
}

func TestStatsAccounting(t *testing.T) {
	f := func(raw []uint8) bool {
		sa := MustNewSetAssoc(SetAssocConfig{Capacity: 8, Alpha: 2, Factory: lruFactory(), Seed: 11})
		for _, r := range raw {
			sa.Access(trace.Item(r % 30))
		}
		st := sa.Stats()
		return st.Accesses == uint64(len(raw)) &&
			st.Hits+st.Misses == st.Accesses &&
			st.Evictions <= st.Misses &&
			sa.Len() <= sa.Capacity()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSequenceReturnsDelta(t *testing.T) {
	c := NewFullAssoc(lruFactory(), 4)
	RunSequence(c, trace.RangeSeq(0, 4))
	delta := RunSequence(c, trace.RangeSeq(0, 4)) // all hits
	if delta.Misses != 0 || delta.Hits != 4 {
		t.Fatalf("delta = %+v", delta)
	}
}
