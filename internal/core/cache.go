// Package core implements the paper's cache models: the fully associative
// paging algorithm A_k (one replacement policy over k slots), the α-way
// set-associative algorithm ⟨A⟩_k (k/α independent policy instances of
// capacity α behind a random indexing function, Section 4), and the
// rehashing variants ⟨LRU⟩FF (full flushing) and ⟨LRU⟩IF (incremental
// flushing) of Section 6.
package core

import "repro/internal/trace"

// Cache is a paging algorithm instance operating on a fixed number of slots.
// Both fully associative and set-associative caches implement it, so the
// lockstep comparators in internal/sim can treat them uniformly.
type Cache interface {
	// Access serves one request and reports whether it hit.
	Access(x trace.Item) bool

	// AccessDetail serves one request and additionally reports the item
	// evicted by the regular replacement mechanism, if any. Evictions caused
	// by flushing/rehashing are not reported here; they are tallied in
	// Stats().FlushEvictions. A hit can carry an eviction: under incremental
	// flushing, hitting a non-remapped item inserts it into its new bucket,
	// which may evict.
	AccessDetail(x trace.Item) (hit bool, evicted trace.Item, didEvict bool)

	// Contains reports whether x is currently cached, without side effects.
	Contains(x trace.Item) bool

	// Len returns the number of cached items.
	Len() int

	// Capacity returns the total number of slots k.
	Capacity() int

	// Items returns a snapshot of the cached items in unspecified order.
	Items() []trace.Item

	// Stats returns the counters accumulated since construction or Reset.
	Stats() Stats

	// Reset empties the cache and zeroes the counters.
	Reset()
}

// Stats aggregates the cost counters of a cache. C(A_k, σ) in the paper is
// Misses.
type Stats struct {
	Accesses  uint64 // |σ| served so far
	Hits      uint64
	Misses    uint64 // the paging cost C(·, σ)
	Evictions uint64 // regular (replacement-policy) evictions

	// Rehashes counts hash-function changes (Section 6).
	Rehashes uint64
	// FlushEvictions counts items evicted by flushing machinery: the whole-
	// cache flushes of ⟨LRU⟩FF and the forced migration evictions of ⟨LRU⟩IF.
	FlushEvictions uint64
}

// MissRatio returns Misses/Accesses, or 0 for an empty run.
func (s Stats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// RunSequence plays an entire request sequence through c and returns the
// stats delta for just that sequence.
func RunSequence(c Cache, seq trace.Sequence) Stats {
	before := c.Stats()
	for _, x := range seq {
		c.Access(x)
	}
	return diffStats(before, c.Stats())
}

func diffStats(before, after Stats) Stats {
	return Stats{
		Accesses:       after.Accesses - before.Accesses,
		Hits:           after.Hits - before.Hits,
		Misses:         after.Misses - before.Misses,
		Evictions:      after.Evictions - before.Evictions,
		Rehashes:       after.Rehashes - before.Rehashes,
		FlushEvictions: after.FlushEvictions - before.FlushEvictions,
	}
}
