package core

import (
	"repro/internal/policy"
	"repro/internal/trace"
)

// FullAssoc is the fully associative paging algorithm A_k: a single
// replacement policy instance managing all k slots. It is the comparison
// baseline in every competitive-analysis experiment.
type FullAssoc struct {
	pol   policy.Policy
	stats Stats
}

var _ Cache = (*FullAssoc)(nil)

// NewFullAssoc builds A_k from a policy factory and a capacity.
func NewFullAssoc(factory policy.Factory, capacity int) *FullAssoc {
	return &FullAssoc{pol: factory(capacity)}
}

// Access implements Cache.
func (f *FullAssoc) Access(x trace.Item) bool {
	hit, _, _ := f.AccessDetail(x)
	return hit
}

// AccessDetail implements Cache.
func (f *FullAssoc) AccessDetail(x trace.Item) (hit bool, evicted trace.Item, didEvict bool) {
	hit, evicted, didEvict = f.pol.Request(x)
	f.stats.Accesses++
	if hit {
		f.stats.Hits++
	} else {
		f.stats.Misses++
	}
	if didEvict {
		f.stats.Evictions++
	}
	if be, ok := f.pol.(policy.BatchEvictions); ok {
		// Non-lazy policies (flush-when-full) may evict in bulk.
		f.stats.Evictions += uint64(len(be.TakeEvictions()))
	}
	return hit, evicted, didEvict
}

// Contains implements Cache.
func (f *FullAssoc) Contains(x trace.Item) bool { return f.pol.Contains(x) }

// Len implements Cache.
func (f *FullAssoc) Len() int { return f.pol.Len() }

// Capacity implements Cache.
func (f *FullAssoc) Capacity() int { return f.pol.Capacity() }

// Items implements Cache.
func (f *FullAssoc) Items() []trace.Item { return f.pol.Items() }

// Stats implements Cache.
func (f *FullAssoc) Stats() Stats { return f.stats }

// Reset implements Cache.
func (f *FullAssoc) Reset() {
	f.pol.Reset()
	f.stats = Stats{}
}

// Policy exposes the underlying policy instance (used by the stability
// framework, which inspects cache contents mid-sequence).
func (f *FullAssoc) Policy() policy.Policy { return f.pol }
