package core

import (
	"testing"

	"repro/internal/trace"
)

func incrementalCache(k, alpha int, everyMisses uint64, seed uint64) *SetAssoc {
	return MustNewSetAssoc(SetAssocConfig{
		Capacity: k, Alpha: alpha, Factory: lruFactory(), Seed: seed,
		Rehash: RehashConfig{Mode: RehashIncremental, EveryMisses: everyMisses},
	})
}

func TestIncrementalRehashPreservesHotItems(t *testing.T) {
	// Items that are re-accessed during the migration window must migrate,
	// not vanish: a hot item accessed right after the rehash stays a hit.
	// Only 4 items ever enter a 16-slot cache, so no bucket (α = 4) can
	// overflow before the rehash; the rehash triggers on the 4th miss.
	sa := incrementalCache(16, 4, 4, 3)
	hot := trace.Item(1000)
	sa.Access(hot)
	for i := 0; i < 3; i++ {
		sa.Access(trace.Item(2000 + i))
	}
	if sa.Stats().Rehashes != 1 {
		t.Fatalf("rehashes = %d, want exactly 1", sa.Stats().Rehashes)
	}
	if sa.Len() == 0 {
		t.Fatal("incremental rehash should not empty the cache")
	}
	// With zero misses since the rehash, the sweep has not evicted anything:
	// hot must still be present (as a non-remapped resident).
	if !sa.Contains(hot) {
		t.Fatalf("hot item lost immediately after incremental rehash")
	}
	if hit := sa.Access(hot); !hit {
		t.Fatal("hot item should hit and migrate to its new bucket")
	}
	if !sa.Contains(hot) {
		t.Fatal("hot item should remain cached after migrating")
	}
}

func TestIncrementalMigrationDrains(t *testing.T) {
	sa := incrementalCache(16, 4, 4, 5)
	// Warm with 16 items (16 misses → 4 rehashes along the way, fine).
	RunSequence(sa, trace.RangeSeq(0, 16))
	// Now drive enough misses that the sweep (1 forced eviction per miss)
	// must finish any pending migration.
	RunSequence(sa, trace.RangeSeq(100, 160))
	// Access one more cold item; if migration is done, nothing pending.
	if sa.Migrating() {
		// Another k misses guarantee completion.
		RunSequence(sa, trace.RangeSeq(200, 232))
	}
	if sa.PendingMigration() > sa.Capacity() {
		t.Fatalf("pending migration %d exceeds capacity", sa.PendingMigration())
	}
}

func TestIncrementalNeverExceedsCapacity(t *testing.T) {
	sa := incrementalCache(16, 2, 6, 7)
	for i := 0; i < 4000; i++ {
		sa.Access(trace.Item(i % 40))
		if sa.Len() > sa.Capacity() {
			t.Fatalf("step %d: Len %d > capacity %d", i, sa.Len(), sa.Capacity())
		}
		for b := 0; b < sa.NumBuckets(); b++ {
			if sa.BucketLen(b) > sa.Alpha() {
				t.Fatalf("step %d: bucket %d holds %d > α", i, b, sa.BucketLen(b))
			}
		}
	}
}

func TestIncrementalContainsConsistent(t *testing.T) {
	sa := incrementalCache(16, 4, 5, 11)
	present := map[trace.Item]bool{}
	for i := 0; i < 2000; i++ {
		x := trace.Item(i * 13 % 37)
		hit := sa.Access(x)
		if hit != present[x] && present[x] {
			// A previously present item can disappear (evicted/swept), so a
			// miss despite present[x] is legal; but a hit despite !present[x]
			// would mean Contains/Access disagree with history.
			_ = hit
		}
		// After the access, the item must be cached and Contains must agree.
		if !sa.Contains(x) {
			t.Fatalf("step %d: %v not present right after access", i, x)
		}
		// Rebuild presence from the cache's own view.
		for k := range present {
			present[k] = sa.Contains(k)
		}
		present[x] = true
	}
}

func TestIncrementalStatsBalance(t *testing.T) {
	sa := incrementalCache(32, 4, 16, 13)
	RunSequence(sa, trace.RangeSeq(0, 48).Repeat(20))
	st := sa.Stats()
	if st.Hits+st.Misses != st.Accesses {
		t.Fatalf("hits %d + misses %d != accesses %d", st.Hits, st.Misses, st.Accesses)
	}
	if st.Rehashes == 0 {
		t.Fatal("expected rehashes on this workload")
	}
	// Conservation: everything that entered the cache either left or is
	// still cached. Items enter exactly on misses.
	inserted := st.Misses
	left := st.Evictions + st.FlushEvictions
	if inserted < left {
		t.Fatalf("more departures (%d) than arrivals (%d)", left, inserted)
	}
	if inserted-left != uint64(sa.Len()) {
		t.Fatalf("conservation: inserted %d − left %d != len %d", inserted, left, sa.Len())
	}
}

func TestFullFlushStatsBalance(t *testing.T) {
	sa := MustNewSetAssoc(SetAssocConfig{
		Capacity: 32, Alpha: 4, Factory: lruFactory(), Seed: 13,
		Rehash: RehashConfig{Mode: RehashFullFlush, EveryMisses: 16},
	})
	RunSequence(sa, trace.RangeSeq(0, 48).Repeat(20))
	st := sa.Stats()
	if st.Misses-st.Evictions-st.FlushEvictions != uint64(sa.Len()) {
		t.Fatalf("conservation failed: %+v len=%d", st, sa.Len())
	}
}

func TestIncrementalMatchesNoRehashBeforeFirstTrigger(t *testing.T) {
	// Until the first rehash fires, an incremental cache must behave exactly
	// like a never-rehashing one with the same seed.
	seq := trace.RangeSeq(0, 30)
	inc := incrementalCache(16, 4, 1000, 17)
	plain := MustNewSetAssoc(SetAssocConfig{Capacity: 16, Alpha: 4, Factory: lruFactory(), Seed: 17})
	for _, x := range seq {
		h1, e1, d1 := inc.AccessDetail(x)
		h2, e2, d2 := plain.AccessDetail(x)
		if h1 != h2 || d1 != d2 || (d1 && e1 != e2) {
			t.Fatalf("diverged before first rehash on %v", x)
		}
	}
}

func TestIncrementalMigrationRateAblation(t *testing.T) {
	// Higher migration rates drain the old generation faster; all rates
	// preserve the capacity invariant and end with an empty backlog once
	// enough misses occur.
	build := func(rate int) *SetAssoc {
		return MustNewSetAssoc(SetAssocConfig{
			Capacity: 32, Alpha: 4, Factory: lruFactory(), Seed: 3,
			Rehash: RehashConfig{Mode: RehashIncremental, EveryMisses: 16, MigrationPerMiss: rate},
		})
	}
	seq := trace.RangeSeq(0, 48).Repeat(10)
	var pendingAfterTrigger []int
	for _, rate := range []int{1, 4, 32} {
		sa := build(rate)
		maxPending := 0
		for _, x := range seq {
			sa.Access(x)
			if sa.Len() > sa.Capacity() {
				t.Fatalf("rate %d: capacity exceeded", rate)
			}
			if p := sa.PendingMigration(); p > maxPending {
				maxPending = p
			}
		}
		pendingAfterTrigger = append(pendingAfterTrigger, maxPending)
	}
	// The aggressive schedule should never have a larger backlog high-water
	// mark than the gentle one.
	if pendingAfterTrigger[2] > pendingAfterTrigger[0] {
		t.Fatalf("rate 32 backlog %d > rate 1 backlog %d",
			pendingAfterTrigger[2], pendingAfterTrigger[0])
	}
}

func TestIncrementalMigrationRateDefaultsToOne(t *testing.T) {
	sa := incrementalCache(16, 4, 4, 3)
	// Trigger a rehash with 4 misses, then cause one more miss: exactly one
	// forced eviction (the default rate).
	for i := 0; i < 4; i++ {
		sa.Access(trace.Item(1000 + i))
	}
	before := sa.PendingMigration()
	if before == 0 {
		t.Fatal("expected a migration in progress")
	}
	sa.Access(trace.Item(2000)) // miss → one forced eviction (plus possible insert-evict)
	after := sa.PendingMigration()
	if before-after > 2 {
		t.Fatalf("default rate should evict at most ~1 old resident per miss: %d → %d", before, after)
	}
}
