package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestStreamMoments(t *testing.T) {
	var s Stream
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", s.Mean())
	}
	// Population variance of this classic sample is 4; unbiased is 32/7.
	if math.Abs(s.Variance()-32.0/7) > 1e-12 {
		t.Fatalf("Variance = %v, want %v", s.Variance(), 32.0/7)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestStreamMatchesDirectComputation(t *testing.T) {
	f := func(raw []float32) bool {
		if len(raw) < 2 {
			return true
		}
		var s Stream
		var sum float64
		for _, x := range raw {
			s.Add(float64(x))
			sum += float64(x)
		}
		mean := sum / float64(len(raw))
		var ss float64
		for _, x := range raw {
			d := float64(x) - mean
			ss += d * d
		}
		wantVar := ss / float64(len(raw)-1)
		return math.Abs(s.Mean()-mean) < 1e-6*(1+math.Abs(mean)) &&
			math.Abs(s.Variance()-wantVar) < 1e-4*(1+wantVar)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	var small, large Stream
	vals := []float64{1, 2, 3, 4, 5}
	for _, v := range vals {
		small.Add(v)
	}
	for i := 0; i < 20; i++ {
		for _, v := range vals {
			large.Add(v)
		}
	}
	if large.CI95() >= small.CI95() {
		t.Fatalf("CI should shrink: %v vs %v", large.CI95(), small.CI95())
	}
}

func TestOf(t *testing.T) {
	s := Of([]float64{1, 2, 3})
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 {
		t.Fatalf("Of = %+v", s)
	}
}

func TestQuantile(t *testing.T) {
	sample := []float64{4, 1, 3, 2}
	if got := Quantile(sample, 0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(sample, 1); got != 4 {
		t.Fatalf("q1 = %v", got)
	}
	if got := Quantile(sample, 0.5); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("median = %v, want 2.5", got)
	}
	// Input must not be mutated.
	if sample[0] != 4 {
		t.Fatal("Quantile mutated its input")
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty sample should give NaN")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.9, 10, 100} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Fatalf("Total = %d", h.Total())
	}
	// -1, 0, 1.9 → bin 0; 2 → bin 1; 9.9, 10, 100 → bin 4.
	if h.Counts[0] != 3 || h.Counts[1] != 1 || h.Counts[4] != 3 {
		t.Fatalf("Counts = %v", h.Counts)
	}
	if math.Abs(h.Fraction(0)-3.0/7) > 1e-12 {
		t.Fatalf("Fraction(0) = %v", h.Fraction(0))
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.Note = "a note"
	tb.AddRow("alpha", "1")
	tb.AddRowf("beta", 2.5)
	tb.AddRow("only-one-cell")
	out := tb.String()
	for _, want := range []string{"## Demo", "a note", "name", "alpha", "beta", "2.5", "only-one-cell"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header and rule lines must align in width.
	if len(lines) < 4 {
		t.Fatalf("too few lines:\n%s", out)
	}
}

func TestTablePadsAndTruncatesCells(t *testing.T) {
	tb := NewTable("t", "a")
	tb.AddRow("x", "extra-cell-dropped")
	if len(tb.Rows[0]) != 1 {
		t.Fatalf("row = %v", tb.Rows[0])
	}
}
