// Package stats provides the small statistical toolkit the experiment
// harness needs: streaming moments (Welford), normal-approximation
// confidence intervals, histograms, and plain-text table rendering for the
// paper-shaped outputs of cmd/assocbench.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Stream accumulates a sample one value at a time using Welford's method,
// which is numerically stable for long runs.
type Stream struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (s *Stream) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// N returns the number of observations.
func (s *Stream) N() int { return s.n }

// Mean returns the sample mean (0 for an empty stream).
func (s *Stream) Mean() float64 { return s.mean }

// Variance returns the unbiased sample variance.
func (s *Stream) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Stream) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation (0 for an empty stream).
func (s *Stream) Min() float64 { return s.min }

// Max returns the largest observation (0 for an empty stream).
func (s *Stream) Max() float64 { return s.max }

// CI95 returns the half-width of a 95% normal-approximation confidence
// interval for the mean.
func (s *Stream) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	return 1.96 * s.StdDev() / math.Sqrt(float64(s.n))
}

// Summary condenses a stream for table output.
type Summary struct {
	N    int
	Mean float64
	Std  float64
	Min  float64
	Max  float64
	CI95 float64
}

// Summarize returns the stream's Summary.
func (s *Stream) Summarize() Summary {
	return Summary{N: s.n, Mean: s.mean, Std: s.StdDev(), Min: s.min, Max: s.max, CI95: s.CI95()}
}

// Of summarizes a finished sample.
func Of(sample []float64) Summary {
	var st Stream
	for _, x := range sample {
		st.Add(x)
	}
	return st.Summarize()
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the sample using nearest-
// rank interpolation. The input is not modified.
func Quantile(sample []float64, q float64) float64 {
	if len(sample) == 0 {
		return math.NaN()
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of [0,1]", q))
	}
	sorted := make([]float64, len(sample))
	copy(sorted, sample)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram counts observations into uniform-width bins over [lo, hi).
// Out-of-range observations clamp into the first/last bin.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram builds a histogram with the given bin count over [lo, hi).
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic(fmt.Sprintf("stats: invalid histogram [%v,%v)/%d", lo, hi, bins))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add incorporates one observation.
func (h *Histogram) Add(x float64) {
	bins := len(h.Counts)
	i := int(float64(bins) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= bins {
		i = bins - 1
	}
	h.Counts[i]++
	h.total++
}

// Total returns the number of observations.
func (h *Histogram) Total() int { return h.total }

// Fraction returns the fraction of observations in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}
