package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table, used by cmd/assocbench to
// print each experiment in the shape the paper's claims take.
type Table struct {
	Title   string
	Note    string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped, missing
// cells are blank.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddRowf appends a row of formatted cells; each argument is rendered with
// a compact default format (%v for strings, %.4g for floats).
func (t *Table) AddRowf(cells ...interface{}) {
	strs := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			strs[i] = v
		case float64:
			strs[i] = fmt.Sprintf("%.4g", v)
		case float32:
			strs[i] = fmt.Sprintf("%.4g", v)
		default:
			strs[i] = fmt.Sprintf("%v", v)
		}
	}
	t.AddRow(strs...)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n", t.Title)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	rule := make([]string, len(t.Headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range t.Rows {
		writeRow(row)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string, for tests and logs.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Render(&b); err != nil {
		return fmt.Sprintf("stats: render error: %v", err)
	}
	return b.String()
}
