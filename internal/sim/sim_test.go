package sim

import (
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/trace"
)

func lruFactory() policy.Factory { return policy.NewFactory(policy.LRUKind, 0) }

func TestLockstepVisitsEveryPair(t *testing.T) {
	seq := trace.RangeSeq(0, 10)
	caches := []core.Cache{
		core.NewFullAssoc(lruFactory(), 4),
		core.NewFullAssoc(lruFactory(), 8),
	}
	visits := make(map[int]int)
	Lockstep(seq, caches, func(ci int, ev StepEvent) {
		visits[ci]++
		if ev.Item != seq[ev.Index] {
			t.Fatalf("event item %v != seq[%d] = %v", ev.Item, ev.Index, seq[ev.Index])
		}
	})
	if visits[0] != 10 || visits[1] != 10 {
		t.Fatalf("visits = %v", visits)
	}
}

// TestLemma2Inequality is the core accounting identity of the paper:
// C(X,σ) ≤ C(Y,σ) + B where B counts bad evictions of X w.r.t. Y. We check
// it on random workloads with X = set-associative LRU and Y = smaller
// fully-associative LRU.
func TestLemma2Inequality(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		sa := core.MustNewSetAssoc(core.SetAssocConfig{
			Capacity: 32, Alpha: 4, Factory: lruFactory(), Seed: seed,
		})
		fa := core.NewFullAssoc(lruFactory(), 24)
		seq := make(trace.Sequence, 4000)
		state := seed*2654435761 + 1
		for i := range seq {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			seq[i] = trace.Item(state % 64)
		}
		rep := CompareBadEvictions(seq, sa, fa)
		if rep.Candidate.Misses > rep.Baseline.Misses+rep.BadEvictions {
			t.Fatalf("seed %d: Lemma 2 violated: %d > %d + %d",
				seed, rep.Candidate.Misses, rep.Baseline.Misses, rep.BadEvictions)
		}
		// The proof's injection also gives M ≤ B.
		if rep.BadMisses > rep.BadEvictions {
			t.Fatalf("seed %d: bad misses %d > bad evictions %d", seed, rep.BadMisses, rep.BadEvictions)
		}
	}
}

func TestCompareBadEvictionsIdenticalCachesHaveNone(t *testing.T) {
	// A cache compared against an identical copy never has bad misses:
	// both hold exactly the same items at all times.
	a := core.NewFullAssoc(lruFactory(), 8)
	b := core.NewFullAssoc(lruFactory(), 8)
	seq := trace.RangeSeq(0, 20).Repeat(5)
	rep := CompareBadEvictions(seq, a, b)
	if rep.BadMisses != 0 {
		t.Fatalf("identical caches produced %d bad misses", rep.BadMisses)
	}
	if rep.Candidate.Misses != rep.Baseline.Misses {
		t.Fatalf("identical caches miss differently: %d vs %d", rep.Candidate.Misses, rep.Baseline.Misses)
	}
}

func TestRunTrialsDeterministicAndOrdered(t *testing.T) {
	fn := func(trial int, seed uint64) float64 {
		return float64(trial)*1e-9 + float64(seed%1000)
	}
	a := RunTrials(50, 7, fn)
	b := RunTrials(50, 7, fn)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trial %d differs across runs", i)
		}
	}
	c := RunTrialsWorkers(50, 7, 1, fn)
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("trial %d depends on worker count", i)
		}
	}
}

func TestRunTrialsRunsAllExactlyOnce(t *testing.T) {
	var count int64
	RunTrials(100, 1, func(trial int, seed uint64) float64 {
		atomic.AddInt64(&count, 1)
		return 0
	})
	if count != 100 {
		t.Fatalf("ran %d trials, want 100", count)
	}
}

func TestRunTrialsEdgeCases(t *testing.T) {
	if got := RunTrials(0, 1, nil); got != nil {
		t.Fatalf("0 trials should return nil, got %v", got)
	}
	got := RunTrialsWorkers(3, 1, 100, func(int, uint64) float64 { return 1 })
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	got = RunTrialsWorkers(3, 1, 0, func(int, uint64) float64 { return 1 })
	if len(got) != 3 {
		t.Fatalf("len with workers=0 should still be 3, got %d", len(got))
	}
}

func TestRunTrialsVec(t *testing.T) {
	cols := RunTrialsVec(10, 3, 2, func(trial int, seed uint64) []float64 {
		return []float64{float64(trial), float64(trial) * 2}
	})
	if len(cols) != 2 || len(cols[0]) != 10 {
		t.Fatalf("shape = %d×%d", len(cols), len(cols[0]))
	}
	for i := 0; i < 10; i++ {
		if cols[0][i] != float64(i) || cols[1][i] != float64(i)*2 {
			t.Fatalf("cols wrong at %d: %v %v", i, cols[0][i], cols[1][i])
		}
	}
}

func TestRunTrialsVecPanicsOnWrongArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("wrong metric count should panic")
		}
	}()
	RunTrialsVec(1, 1, 3, func(int, uint64) []float64 { return []float64{1} })
}
