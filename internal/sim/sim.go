// Package sim provides the execution machinery shared by every experiment:
// a lockstep comparator that runs several caches over one request sequence
// while observing per-access events (the "bad eviction" bookkeeping of
// Lemma 2), and a parallel trial runner that fans independent
// (seed, configuration) trials out over a bounded worker pool.
package sim

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/hashfn"
	"repro/internal/trace"
)

// StepEvent describes what one cache did on one request during a lockstep
// run.
type StepEvent struct {
	// Index is the position of the request in the sequence.
	Index int
	// Item is the requested item.
	Item trace.Item
	// Hit reports whether the cache hit.
	Hit bool
	// Evicted/DidEvict report the regular eviction triggered by the access.
	Evicted  trace.Item
	DidEvict bool
}

// Lockstep runs seq through every cache, in order, invoking observe (if
// non-nil) once per (cache, request) pair after the caches with smaller
// indices have already served the request. Per-request ordering across
// caches is what the bad-eviction definition needs: the baseline must be
// up-to-date (Y(i), the contents right after σ_i) when the candidate's
// eviction is examined.
func Lockstep(seq trace.Sequence, caches []core.Cache, observe func(cacheIdx int, ev StepEvent)) {
	for i, x := range seq {
		for ci, c := range caches {
			hit, evicted, didEvict := c.AccessDetail(x)
			if observe != nil {
				observe(ci, StepEvent{Index: i, Item: x, Hit: hit, Evicted: evicted, DidEvict: didEvict})
			}
		}
	}
}

// BadEvictionReport summarizes a candidate-vs-baseline lockstep run.
// Candidate corresponds to X and baseline to Y in Lemma 2: an eviction of x
// by X at time i is bad iff x ∈ Y(i), and C(X,σ) ≤ C(Y,σ) + B.
type BadEvictionReport struct {
	Candidate core.Stats
	Baseline  core.Stats
	// BadEvictions counts evictions by the candidate of items present in
	// the baseline at the time of eviction (the quantity B of Lemma 2).
	BadEvictions uint64
	// BadMisses counts candidate misses that were baseline hits (M in the
	// proof of Lemma 2; the lemma shows M ≤ B).
	BadMisses uint64
}

// CompareBadEvictions runs seq through candidate and baseline in lockstep
// and tallies bad evictions and bad misses of candidate with respect to
// baseline. Both caches must be freshly constructed (or Reset).
func CompareBadEvictions(seq trace.Sequence, candidate, baseline core.Cache) BadEvictionReport {
	var rep BadEvictionReport
	for _, x := range seq {
		// Baseline first, so its contents reflect Y(i) when the candidate's
		// eviction at time i is inspected.
		bHit := baseline.Access(x)
		cHit, evicted, didEvict := candidate.AccessDetail(x)
		if didEvict && baseline.Contains(evicted) {
			rep.BadEvictions++
		}
		if !cHit && bHit {
			rep.BadMisses++
		}
	}
	rep.Candidate = candidate.Stats()
	rep.Baseline = baseline.Stats()
	return rep
}

// TrialFunc runs one independent trial and returns its observation. Trials
// must be self-contained: everything they touch is derived from the seed.
type TrialFunc func(trial int, seed uint64) float64

// RunTrials executes n independent trials in parallel on up to
// runtime.GOMAXPROCS(0) workers and returns the observations in trial
// order. Seeds are derived deterministically from masterSeed, so results
// are reproducible regardless of scheduling.
func RunTrials(n int, masterSeed uint64, fn TrialFunc) []float64 {
	return RunTrialsWorkers(n, masterSeed, runtime.GOMAXPROCS(0), fn)
}

// RunTrialsWorkers is RunTrials with an explicit worker count.
func RunTrialsWorkers(n int, masterSeed uint64, workers int, fn TrialFunc) []float64 {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	// Pre-derive all seeds so that trial i sees the same seed no matter how
	// work is interleaved across workers.
	seeds := make([]uint64, n)
	seq := hashfn.NewSeedSequence(masterSeed)
	for i := range seeds {
		seeds[i] = seq.Next()
	}

	out := make([]float64, n)
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				out[i] = fn(i, seeds[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// RunTrialsVec is RunTrials for trials that produce several named metrics at
// once; it returns one slice per metric, each in trial order.
func RunTrialsVec(n int, masterSeed uint64, metrics int, fn func(trial int, seed uint64) []float64) [][]float64 {
	flat := make([][]float64, n)
	RunTrials(n, masterSeed, func(trial int, seed uint64) float64 {
		flat[trial] = fn(trial, seed)
		return 0
	})
	// Validate arity here, on the caller's goroutine, so a contract
	// violation panics recoverable-y instead of crashing a worker.
	for i, v := range flat {
		if len(v) != metrics {
			panic(fmt.Sprintf("sim: trial %d returned %d metrics, want %d", i, len(v), metrics))
		}
	}
	out := make([][]float64, metrics)
	for m := range out {
		col := make([]float64, n)
		for i := range col {
			col[i] = flat[i][m]
		}
		out[m] = col
	}
	return out
}
