package stackdist

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestKnownDistances(t *testing.T) {
	p := New()
	type step struct {
		item trace.Item
		d    int
		warm bool
	}
	steps := []step{
		{1, 0, false}, // cold
		{1, 0, true},  // immediately re-touched: depth 0
		{2, 0, false}, // cold
		{1, 1, true},  // one item (2) newer
		{3, 0, false},
		{2, 2, true}, // 3 and 1 newer
		{2, 0, true},
	}
	for i, s := range steps {
		d, warm := p.Touch(s.item)
		if d != s.d || warm != s.warm {
			t.Fatalf("step %d: Touch(%v) = (%d, %v), want (%d, %v)", i, s.item, d, warm, s.d, s.warm)
		}
	}
	if p.ColdMisses() != 3 || p.Distinct() != 3 {
		t.Fatalf("cold=%d distinct=%d", p.ColdMisses(), p.Distinct())
	}
	if p.Requests() != uint64(len(steps)) {
		t.Fatalf("requests = %d", p.Requests())
	}
}

// TestMatchesDirectLRUSimulation is the core correctness property: the
// profiler's MissCount(k) must equal C(LRU_k, σ) from direct simulation,
// for every k, on random traces — one pass vs |K| passes.
func TestMatchesDirectLRUSimulation(t *testing.T) {
	f := func(raw []uint8) bool {
		seq := make(trace.Sequence, len(raw))
		for i, r := range raw {
			seq[i] = trace.Item(r % 24)
		}
		p := New()
		p.Run(seq)
		for k := 1; k <= 12; k++ {
			fa := core.NewFullAssoc(policy.NewFactory(policy.LRUKind, 0), k)
			want := core.RunSequence(fa, seq).Misses
			if got := p.MissCount(k); got != want {
				t.Logf("k=%d: profiler %d, simulation %d on %v", k, got, want, seq)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestMatchesDirectLRUSimulationLarge(t *testing.T) {
	seq := workload.Zipf{Universe: 2000, S: 0.9, Shuffle: true}.Generate(30000, 7)
	p := New()
	p.Run(seq)
	for _, k := range []int{1, 16, 128, 777, 2000, 4000} {
		fa := core.NewFullAssoc(policy.NewFactory(policy.LRUKind, 0), k)
		want := core.RunSequence(fa, seq).Misses
		if got := p.MissCount(k); got != want {
			t.Fatalf("k=%d: profiler %d, simulation %d", k, got, want)
		}
	}
}

func TestMissCountMonotoneInK(t *testing.T) {
	// The curve from a single profile must be non-increasing in k — the
	// stack-inclusion property that defines stack algorithms.
	seq := workload.Phases{PhaseLen: 200, SetSize: 40, Universe: 300}.Generate(5000, 3)
	p := New()
	p.Run(seq)
	prev := p.MissCount(1)
	for k := 2; k < 400; k++ {
		cur := p.MissCount(k)
		if cur > prev {
			t.Fatalf("miss count rose from %d (k=%d) to %d (k=%d)", prev, k-1, cur, k)
		}
		prev = cur
	}
}

func TestHistogramAccounting(t *testing.T) {
	seq := workload.Uniform{Universe: 50}.Generate(2000, 9)
	p := New()
	p.Run(seq)
	var warm uint64
	for _, c := range p.Histogram() {
		warm += c
	}
	if warm+p.ColdMisses() != uint64(len(seq)) {
		t.Fatalf("warm %d + cold %d != %d", warm, p.ColdMisses(), len(seq))
	}
	// Infinite cache misses = cold misses.
	if p.MissCount(1<<30) != p.ColdMisses() {
		t.Fatalf("infinite-cache misses %d != cold %d", p.MissCount(1<<30), p.ColdMisses())
	}
	// Zero-size cache misses every request.
	if p.MissCount(0) != uint64(len(seq)) {
		t.Fatalf("k=0 misses = %d", p.MissCount(0))
	}
}

func TestMissRatioCurveAndMeanDistance(t *testing.T) {
	seq := trace.Sequence{1, 2, 1, 2, 1, 2}
	p := New()
	p.Run(seq)
	// Warm accesses all at depth 1.
	if p.MeanDistance() != 1 {
		t.Fatalf("mean distance = %v, want 1", p.MeanDistance())
	}
	curve := p.MissRatioCurve([]int{1, 2})
	if curve[0] != 1.0 { // k=1: every access misses
		t.Fatalf("curve[k=1] = %v", curve[0])
	}
	if curve[1] != 2.0/6 { // k=2: only the two cold misses
		t.Fatalf("curve[k=2] = %v", curve[1])
	}
}

func TestEmptyProfiler(t *testing.T) {
	p := New()
	if p.Requests() != 0 || p.Distinct() != 0 {
		t.Fatal("fresh profiler not empty")
	}
	if got := p.MissRatioCurve([]int{4}); len(got) != 1 || !isNaN(got[0]) {
		t.Fatalf("empty curve = %v", got)
	}
	if !isNaN(p.MeanDistance()) {
		t.Fatal("mean distance of empty profile should be NaN")
	}
}

func isNaN(f float64) bool { return f != f }

// TestTreapBalance sanity-checks the order-statistics tree under a
// worst-case access pattern (sequential, which inserts monotone keys).
func TestTreapBalance(t *testing.T) {
	p := New()
	const n = 100000
	for i := 0; i < n; i++ {
		p.Touch(trace.Item(i))
	}
	// Touch the oldest item: depth must be n−1.
	d, warm := p.Touch(0)
	if !warm || d != n-1 {
		t.Fatalf("Touch(0) = (%d, %v), want (%d, true)", d, warm, n-1)
	}
}
