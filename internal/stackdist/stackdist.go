// Package stackdist implements Mattson's stack-distance profiling (Mattson
// et al. 1970, the paper's reference [38] and the origin of the "stack
// algorithm" class studied in Section 7.1).
//
// For a stack algorithm, the cache of size k holds exactly the k smallest
// items of the algorithm's eviction order, so a single pass that maintains
// the full order (the "stack") yields the miss count of *every* cache size
// simultaneously: a request at stack depth d hits in all caches of size > d
// and misses in all smaller ones. The package profiles LRU (depth = reuse
// stack distance) and exposes the resulting miss-ratio curve C(k) for all k.
//
// The implementation uses an order-statistics tree (a balanced treap keyed
// by last-access time) for O(log n) per request, plus a histogram of stack
// distances. Correctness is cross-checked against direct LRU simulation in
// the tests, and the profiler powers experiment E18.
package stackdist

import (
	"math"

	"repro/internal/hashfn"
	"repro/internal/trace"
)

// Profiler computes LRU stack distances in one pass.
type Profiler struct {
	root  *node
	nodes map[trace.Item]*node
	clock int64
	// hist[d] counts requests with stack distance exactly d (0-based: the
	// most recently used item has distance 0). Cold accesses (first touch)
	// are counted separately in cold.
	hist []uint64
	cold uint64
	rng  uint64
}

// node is a treap node keyed by last-access time (max time = most recent).
// The in-order traversal from the largest key gives the LRU stack.
type node struct {
	item        trace.Item
	time        int64
	prio        uint64
	size        int
	left, right *node
}

// New returns an empty profiler.
func New() *Profiler {
	return &Profiler{
		nodes: make(map[trace.Item]*node, 1024),
		rng:   0x9e3779b97f4a7c15,
	}
}

// Touch processes one request and returns its stack distance, with
// (0, false) for a cold (first-ever) access.
func (p *Profiler) Touch(x trace.Item) (depth int, warm bool) {
	p.clock++
	n, ok := p.nodes[x]
	if ok {
		// Depth = number of items accessed more recently than x.
		depth = p.countNewer(n.time)
		p.root = deleteKey(p.root, n.time)
		n.time = p.clock
		n.left, n.right = nil, nil
		n.size = 1
		p.root = insert(p.root, n)
		p.recordDepth(depth)
		return depth, true
	}
	n = &node{item: x, time: p.clock, prio: p.nextPrio(), size: 1}
	p.nodes[x] = n
	p.root = insert(p.root, n)
	p.cold++
	return 0, false
}

// Run profiles a whole sequence.
func (p *Profiler) Run(seq trace.Sequence) {
	for _, x := range seq {
		p.Touch(x)
	}
}

// Requests returns the number of requests profiled.
func (p *Profiler) Requests() uint64 {
	total := p.cold
	for _, c := range p.hist {
		total += c
	}
	return total
}

// ColdMisses returns the number of first-touch (compulsory) accesses.
func (p *Profiler) ColdMisses() uint64 { return p.cold }

// Distinct returns the number of distinct items seen.
func (p *Profiler) Distinct() int { return len(p.nodes) }

// Histogram returns the stack-distance counts; index d is the number of
// warm requests at depth exactly d.
func (p *Profiler) Histogram() []uint64 {
	out := make([]uint64, len(p.hist))
	copy(out, p.hist)
	return out
}

// MissCount returns C(LRU_k, σ) for the profiled sequence: cold misses plus
// warm requests at depth ≥ k. One profile answers every k — the whole
// miss-ratio curve in a single pass.
func (p *Profiler) MissCount(k int) uint64 {
	if k <= 0 {
		return p.Requests()
	}
	misses := p.cold
	for d := k; d < len(p.hist); d++ {
		misses += p.hist[d]
	}
	return misses
}

// MissRatioCurve returns the miss ratio at each of the given cache sizes.
func (p *Profiler) MissRatioCurve(sizes []int) []float64 {
	total := float64(p.Requests())
	out := make([]float64, len(sizes))
	for i, k := range sizes {
		if total == 0 {
			out[i] = math.NaN()
			continue
		}
		out[i] = float64(p.MissCount(k)) / total
	}
	return out
}

// MeanDistance returns the mean stack distance of warm requests, or NaN if
// there were none. It is a scalar locality signature of the workload.
func (p *Profiler) MeanDistance() float64 {
	var sum, count float64
	for d, c := range p.hist {
		sum += float64(d) * float64(c)
		count += float64(c)
	}
	if count == 0 {
		return math.NaN()
	}
	return sum / count
}

func (p *Profiler) recordDepth(d int) {
	for len(p.hist) <= d {
		p.hist = append(p.hist, 0)
	}
	p.hist[d]++
}

func (p *Profiler) nextPrio() uint64 {
	p.rng += 0x9e3779b97f4a7c15
	return hashfn.Mix64(p.rng)
}

// countNewer returns the number of items with last-access time > t.
func (p *Profiler) countNewer(t int64) int {
	count := 0
	n := p.root
	for n != nil {
		if t < n.time {
			count += size(n.right) + 1
			n = n.left
		} else {
			n = n.right
		}
	}
	return count
}

func size(n *node) int {
	if n == nil {
		return 0
	}
	return n.size
}

func update(n *node) {
	n.size = size(n.left) + size(n.right) + 1
}

// insert adds a node keyed by n.time into the treap rooted at root.
func insert(root, n *node) *node {
	if root == nil {
		return n
	}
	if n.time < root.time {
		root.left = insert(root.left, n)
		if root.left.prio > root.prio {
			root = rotateRight(root)
		}
	} else {
		root.right = insert(root.right, n)
		if root.right.prio > root.prio {
			root = rotateLeft(root)
		}
	}
	update(root)
	return root
}

// deleteKey removes the node with the exact key t.
func deleteKey(root *node, t int64) *node {
	if root == nil {
		return nil
	}
	switch {
	case t < root.time:
		root.left = deleteKey(root.left, t)
	case t > root.time:
		root.right = deleteKey(root.right, t)
	default:
		return merge(root.left, root.right)
	}
	update(root)
	return root
}

// merge joins two treaps where every key in a is smaller than every key in b.
func merge(a, b *node) *node {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	case a.prio > b.prio:
		a.right = merge(a.right, b)
		update(a)
		return a
	default:
		b.left = merge(a, b.left)
		update(b)
		return b
	}
}

func rotateRight(n *node) *node {
	l := n.left
	n.left = l.right
	l.right = n
	update(n)
	update(l)
	return l
}

func rotateLeft(n *node) *node {
	r := n.right
	n.right = r.left
	r.left = n
	update(n)
	update(r)
	return r
}
