package policy

import (
	"math"

	"repro/internal/trace"
)

// ReuseDist is the algorithm R of Proposition 6: it always evicts the cached
// item with the largest reuse distance, where Φ(σ, x) is the number of
// requests strictly between the last two accesses to x in σ, and Φ = ∞ when
// x has been accessed fewer than twice. The order family is
// x ⪯σ y iff Φ(σ,x) < Φ(σ,y) or (Φ equal and x ≤ y), and the victim is the
// ⪯σ-maximum cached item.
//
// R conforms to an order family, so it is a stack algorithm (Theorem 6),
// but the family is not monotone and R is provably not stable — the paper's
// counterexample σ = A Y Z Z Z Z A B Y Y B C is reproduced in the stability
// tests and in experiment E11.
type ReuseDist struct {
	capacity int
	clock    int64
	// last two access times per item, most recent last; length 1 or 2.
	hist   map[trace.Item][]int64
	cached map[trace.Item]struct{}
	heap   *ordHeap
}

// infDist is the priority encoding Φ = ∞ (fewer than two accesses).
const infDist = int64(math.MaxInt64)

// NewReuseDist returns an empty reuse-distance cache of the given capacity.
func NewReuseDist(capacity int) *ReuseDist {
	validateCapacity(capacity)
	return &ReuseDist{
		capacity: capacity,
		hist:     make(map[trace.Item][]int64),
		cached:   make(map[trace.Item]struct{}, capacity),
		// Victim = max distance, ties toward larger item id.
		heap: newOrdHeap(func(a, b ordEntry) bool {
			if a.pri != b.pri {
				return a.pri > b.pri
			}
			return a.item > b.item
		}),
	}
}

// Request implements Policy.
func (r *ReuseDist) Request(x trace.Item) (hit bool, evicted trace.Item, didEvict bool) {
	r.clock++
	h := r.hist[x]
	if len(h) == 2 {
		h[0], h[1] = h[1], r.clock
	} else {
		h = append(h, r.clock)
	}
	r.hist[x] = h

	if _, ok := r.cached[x]; ok {
		r.heap.push(ordEntry{item: x, pri: r.distance(x)})
		return true, 0, false
	}
	if len(r.cached) == r.capacity {
		victim, ok := r.heap.popVictim(r.isCurrent)
		if !ok {
			panic("policy: reuse-distance heap lost track of cached items")
		}
		delete(r.cached, victim)
		evicted, didEvict = victim, true
	}
	r.cached[x] = struct{}{}
	r.heap.push(ordEntry{item: x, pri: r.distance(x)})
	r.heap.maybeCompact(len(r.cached), r.liveEntries)
	return false, evicted, didEvict
}

// distance returns Φ(σ, x): the number of requests strictly between the last
// two accesses to x, or infDist if x has been accessed fewer than twice.
func (r *ReuseDist) distance(x trace.Item) int64 {
	h := r.hist[x]
	if len(h) < 2 {
		return infDist
	}
	return h[1] - h[0] - 1
}

func (r *ReuseDist) isCurrent(e ordEntry) bool {
	if _, ok := r.cached[e.item]; !ok {
		return false
	}
	return r.distance(e.item) == e.pri
}

func (r *ReuseDist) liveEntries() []ordEntry {
	out := make([]ordEntry, 0, len(r.cached))
	for it := range r.cached {
		out = append(out, ordEntry{item: it, pri: r.distance(it)})
	}
	return out
}

// Contains implements Policy.
func (r *ReuseDist) Contains(x trace.Item) bool {
	_, ok := r.cached[x]
	return ok
}

// Len implements Policy.
func (r *ReuseDist) Len() int { return len(r.cached) }

// Capacity implements Policy.
func (r *ReuseDist) Capacity() int { return r.capacity }

// Items implements Policy.
func (r *ReuseDist) Items() []trace.Item {
	out := make([]trace.Item, 0, len(r.cached))
	for it := range r.cached {
		out = append(out, it)
	}
	return out
}

// Delete implements Policy; history is retained.
func (r *ReuseDist) Delete(x trace.Item) bool {
	if _, ok := r.cached[x]; !ok {
		return false
	}
	delete(r.cached, x)
	return true
}

// Reset implements Policy; history is cleared.
func (r *ReuseDist) Reset() {
	r.clock = 0
	r.hist = make(map[trace.Item][]int64)
	r.cached = make(map[trace.Item]struct{}, r.capacity)
	r.heap.reset()
}
