// Package policy implements the replacement policies studied by the paper:
// LRU, LRU-K, LFU, FIFO, clock (Section 3), the reuse-distance algorithm R
// (Proposition 6), flush-when-full (the non-lazy, non-conservative example),
// and a seeded random policy used as an ablation baseline.
//
// A Policy manages the contents of one fixed-capacity cache. The same
// implementation serves as a fully associative cache of size k and as a
// single bucket (set) of size α inside a set-associative cache; the paper's
// α-way set-associative A runs one instance of A_α per bucket.
//
// All policies here except FlushWhenFull are lazy in the paper's sense: they
// fetch an item only on a miss, evict at most one item per miss, and evict
// only when the cache is full.
package policy

import (
	"fmt"

	"repro/internal/trace"
)

// Policy is the contract every replacement policy implements.
//
// Request serves one request. If the request hits, it returns hit=true and
// no eviction. If it misses, the item is fetched into the cache; when the
// cache was full, exactly one victim is evicted and returned (lazy policies).
// FlushWhenFull is the exception: it may evict the whole cache, in which case
// it additionally implements BatchEvictions.
type Policy interface {
	Request(x trace.Item) (hit bool, evicted trace.Item, didEvict bool)

	// Contains reports whether x is currently cached, without touching any
	// recency/frequency state.
	Contains(x trace.Item) bool

	// Len returns the number of currently cached items.
	Len() int

	// Capacity returns the fixed capacity this policy was built with.
	Capacity() int

	// Items returns a snapshot of the cached items in unspecified order.
	Items() []trace.Item

	// Delete removes x from the cache without counting it as an eviction,
	// reporting whether it was present. Incremental flushing uses this to
	// migrate items between hash functions.
	Delete(x trace.Item) bool

	// Reset empties the cache and clears all access history.
	Reset()
}

// BatchEvictions is implemented by non-lazy policies whose Request may evict
// more than one item (flush-when-full). TakeEvictions returns and clears the
// items evicted beyond the single one reported by the last Request.
type BatchEvictions interface {
	TakeEvictions() []trace.Item
}

// Kind names a policy family.
type Kind int

// The supported policy families.
const (
	LRUKind Kind = iota
	FIFOKind
	ClockKind
	LFUKind
	LRU2Kind
	LRU3Kind
	ReuseDistKind
	RandomKind
	FlushWhenFullKind
	MRUKind
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case LRUKind:
		return "lru"
	case FIFOKind:
		return "fifo"
	case ClockKind:
		return "clock"
	case LFUKind:
		return "lfu"
	case LRU2Kind:
		return "lru2"
	case LRU3Kind:
		return "lru3"
	case ReuseDistKind:
		return "reusedist"
	case RandomKind:
		return "random"
	case FlushWhenFullKind:
		return "flushwhenfull"
	case MRUKind:
		return "mru"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind converts a name accepted on CLI flags into a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "lru":
		return LRUKind, nil
	case "fifo":
		return FIFOKind, nil
	case "clock":
		return ClockKind, nil
	case "lfu":
		return LFUKind, nil
	case "lru2", "lru-2":
		return LRU2Kind, nil
	case "lru3", "lru-3":
		return LRU3Kind, nil
	case "reusedist", "r":
		return ReuseDistKind, nil
	case "random":
		return RandomKind, nil
	case "flushwhenfull", "fwf":
		return FlushWhenFullKind, nil
	case "mru":
		return MRUKind, nil
	default:
		return 0, fmt.Errorf("policy: unknown kind %q", s)
	}
}

// Lazy reports whether the policy family is lazy in the paper's sense.
func (k Kind) Lazy() bool { return k != FlushWhenFullKind }

// Conservative reports whether the policy family is conservative (incurs at
// most k misses on any window with at most k distinct items). LRU, FIFO and
// clock are conservative; flush-when-full is not (Section 3).
//
// Reproduction note: the paper also lists LFU as conservative, but that
// claim is false — frequency counts pin old hot items in the cache, so two
// fresh items can thrash each other indefinitely. A concrete witness with
// k = 2 is σ = A A B C B C: after A's count reaches 2, B and C (count ≤ 1)
// evict each other, giving 4 misses on the window B C B C, which has only 2
// distinct items. internal/stability's randomized search finds such
// witnesses immediately, so we classify LFU as non-conservative; see
// EXPERIMENTS.md (E10) for the discrepancy discussion. LRU-K (K ≥ 2),
// reuse-distance and random are likewise not conservative.
func (k Kind) Conservative() bool {
	switch k {
	case LRUKind, FIFOKind, ClockKind:
		return true
	default:
		return false
	}
}

// Stable reports the paper's classification of the family: LRU, LRU-K and
// LFU are stable (Lemma 1); FIFO and clock are not (Corollary 2);
// reuse-distance is stack but not stable (Proposition 6). MRU is likewise
// stack but not stable (our classification, confirmed by the randomized
// search — its order family moves the accessed item to the ⪯-maximum, so
// it is not monotone). Random and flush-when-full are neither.
func (k Kind) Stable() bool {
	switch k {
	case LRUKind, LRU2Kind, LRU3Kind, LFUKind:
		return true
	default:
		return false
	}
}

// Stack reports whether the family is a stack algorithm (Section 7.1).
// All the order-family policies qualify via Theorem 6: LRU, LRU-K, LFU,
// reuse-distance and MRU.
func (k Kind) Stack() bool {
	switch k {
	case LRUKind, LRU2Kind, LRU3Kind, LFUKind, ReuseDistKind, MRUKind:
		return true
	default:
		return false
	}
}

// Factory builds a fresh policy instance of a given capacity. Factories are
// how the cache simulators stamp out one policy per bucket.
type Factory func(capacity int) Policy

// NewFactory returns a Factory for the given kind. The seed is only used by
// RandomKind; deterministic policies ignore it.
func NewFactory(kind Kind, seed uint64) Factory {
	switch kind {
	case LRUKind:
		return func(c int) Policy { return NewLRU(c) }
	case FIFOKind:
		return func(c int) Policy { return NewFIFO(c) }
	case ClockKind:
		return func(c int) Policy { return NewClock(c) }
	case LFUKind:
		return func(c int) Policy { return NewLFU(c) }
	case LRU2Kind:
		return func(c int) Policy { return NewLRUK(c, 2) }
	case LRU3Kind:
		return func(c int) Policy { return NewLRUK(c, 3) }
	case ReuseDistKind:
		return func(c int) Policy { return NewReuseDist(c) }
	case RandomKind:
		return func(c int) Policy { return NewRandom(c, seed) }
	case FlushWhenFullKind:
		return func(c int) Policy { return NewFlushWhenFull(c) }
	case MRUKind:
		return func(c int) Policy { return NewMRU(c) }
	default:
		panic(fmt.Sprintf("policy: unknown kind %v", kind))
	}
}

// AllKinds lists every supported policy family, in a stable order.
func AllKinds() []Kind {
	return []Kind{
		LRUKind, FIFOKind, ClockKind, LFUKind, LRU2Kind, LRU3Kind,
		ReuseDistKind, RandomKind, FlushWhenFullKind, MRUKind,
	}
}

func validateCapacity(c int) {
	if c <= 0 {
		panic(fmt.Sprintf("policy: capacity %d must be positive", c))
	}
}
