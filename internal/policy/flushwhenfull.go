package policy

import "repro/internal/trace"

// FlushWhenFull is the paper's example of a non-lazy, non-conservative
// policy (Section 3, citing Karlin et al.): when an item is fetched but
// every slot is taken, the whole cache is flushed before inserting. Request
// reports one of the flushed items through the usual single-eviction return;
// the remainder are available via TakeEvictions (the BatchEvictions
// interface).
type FlushWhenFull struct {
	capacity int
	present  map[trace.Item]struct{}
	pending  []trace.Item // evictions beyond the one reported by Request
}

// NewFlushWhenFull returns an empty flush-when-full cache.
func NewFlushWhenFull(capacity int) *FlushWhenFull {
	validateCapacity(capacity)
	return &FlushWhenFull{
		capacity: capacity,
		present:  make(map[trace.Item]struct{}, capacity),
	}
}

// Request implements Policy.
func (f *FlushWhenFull) Request(x trace.Item) (hit bool, evicted trace.Item, didEvict bool) {
	if _, ok := f.present[x]; ok {
		return true, 0, false
	}
	if len(f.present) == f.capacity {
		first := true
		for it := range f.present {
			if first {
				evicted, didEvict = it, true
				first = false
			} else {
				f.pending = append(f.pending, it)
			}
		}
		f.present = make(map[trace.Item]struct{}, f.capacity)
	}
	f.present[x] = struct{}{}
	return false, evicted, didEvict
}

// TakeEvictions implements BatchEvictions.
func (f *FlushWhenFull) TakeEvictions() []trace.Item {
	out := f.pending
	f.pending = nil
	return out
}

// Contains implements Policy.
func (f *FlushWhenFull) Contains(x trace.Item) bool {
	_, ok := f.present[x]
	return ok
}

// Len implements Policy.
func (f *FlushWhenFull) Len() int { return len(f.present) }

// Capacity implements Policy.
func (f *FlushWhenFull) Capacity() int { return f.capacity }

// Items implements Policy.
func (f *FlushWhenFull) Items() []trace.Item {
	out := make([]trace.Item, 0, len(f.present))
	for it := range f.present {
		out = append(out, it)
	}
	return out
}

// Delete implements Policy.
func (f *FlushWhenFull) Delete(x trace.Item) bool {
	if _, ok := f.present[x]; !ok {
		return false
	}
	delete(f.present, x)
	return true
}

// Reset implements Policy.
func (f *FlushWhenFull) Reset() {
	f.present = make(map[trace.Item]struct{}, f.capacity)
	f.pending = nil
}
