package policy

import "repro/internal/trace"

// FIFO is the first-in first-out policy: the victim is the item that has
// been cached longest, regardless of how recently it was accessed. FIFO is
// conservative but neither a stack algorithm (it exhibits Belady's anomaly)
// nor stable (Corollary 2).
type FIFO struct {
	capacity int
	present  map[trace.Item]struct{}
	// queue is a ring buffer of cached items in insertion order.
	queue []trace.Item
	headI int // index of the oldest element
	size  int
}

// NewFIFO returns an empty FIFO cache of the given capacity.
func NewFIFO(capacity int) *FIFO {
	validateCapacity(capacity)
	return &FIFO{
		capacity: capacity,
		present:  make(map[trace.Item]struct{}, capacity),
		queue:    make([]trace.Item, capacity),
	}
}

// Request implements Policy.
func (f *FIFO) Request(x trace.Item) (hit bool, evicted trace.Item, didEvict bool) {
	if _, ok := f.present[x]; ok {
		return true, 0, false
	}
	if f.size == f.capacity {
		victim := f.queue[f.headI]
		f.headI = (f.headI + 1) % f.capacity
		f.size--
		delete(f.present, victim)
		evicted, didEvict = victim, true
	}
	tail := (f.headI + f.size) % f.capacity
	f.queue[tail] = x
	f.size++
	f.present[x] = struct{}{}
	return false, evicted, didEvict
}

// Contains implements Policy.
func (f *FIFO) Contains(x trace.Item) bool {
	_, ok := f.present[x]
	return ok
}

// Len implements Policy.
func (f *FIFO) Len() int { return f.size }

// Capacity implements Policy.
func (f *FIFO) Capacity() int { return f.capacity }

// Items implements Policy, oldest first.
func (f *FIFO) Items() []trace.Item {
	out := make([]trace.Item, 0, f.size)
	for i := 0; i < f.size; i++ {
		out = append(out, f.queue[(f.headI+i)%f.capacity])
	}
	return out
}

// Delete implements Policy. Deleting from the middle of a FIFO compacts the
// ring; it is O(size) and only used by flushing machinery, never on the
// request fast path.
func (f *FIFO) Delete(x trace.Item) bool {
	if _, ok := f.present[x]; !ok {
		return false
	}
	delete(f.present, x)
	kept := make([]trace.Item, 0, f.size-1)
	for i := 0; i < f.size; i++ {
		it := f.queue[(f.headI+i)%f.capacity]
		if it != x {
			kept = append(kept, it)
		}
	}
	f.headI = 0
	f.size = len(kept)
	copy(f.queue, kept)
	return true
}

// Reset implements Policy.
func (f *FIFO) Reset() {
	f.present = make(map[trace.Item]struct{}, f.capacity)
	f.headI = 0
	f.size = 0
}
