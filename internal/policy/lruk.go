package policy

import (
	"fmt"

	"repro/internal/trace"
)

// LRUK implements the LRU-K policy of O'Neil et al., as formalized by the
// paper's order family in Lemma 5: Φ(σ, x) is the number of requests since
// the K-th most recent access to x (∞ if x has been accessed fewer than K
// times), and the victim is the cached item with maximal Φ, breaking ties
// toward the larger item identifier. Ties between finite Φ values are
// impossible because K-th access times are distinct.
//
// LRUK(1) is exactly LRU; the two implementations are cross-checked in
// tests. Like LFU, access history is kept for the whole lifetime of the
// instance — an item's previous accesses still count after it is evicted —
// which is what makes the order family monotone and self-similar.
type LRUK struct {
	capacity int
	k        int
	clock    int64 // virtual time: number of requests served
	// hist[x] holds the times of the up-to-K most recent accesses to x,
	// most recent last. kth(x) = hist[x][0] once len == K.
	hist   map[trace.Item][]int64
	cached map[trace.Item]struct{}
	heap   *ordHeap
}

// NewLRUK returns an empty LRU-K cache of the given capacity.
func NewLRUK(capacity, k int) *LRUK {
	validateCapacity(capacity)
	if k <= 0 {
		panic(fmt.Sprintf("policy: LRU-K parameter %d must be positive", k))
	}
	return &LRUK{
		capacity: capacity,
		k:        k,
		hist:     make(map[trace.Item][]int64),
		cached:   make(map[trace.Item]struct{}, capacity),
		// pri is the K-th most recent access time, or noKth for items with
		// fewer than K accesses (Φ = ∞, evicted first). Victim = min pri,
		// ties toward larger item id.
		heap: newOrdHeap(func(a, b ordEntry) bool {
			if a.pri != b.pri {
				return a.pri < b.pri
			}
			return a.item > b.item
		}),
	}
}

// noKth is the priority of items with fewer than K accesses: smaller than
// every real time, so they are evicted before any item with a full history.
const noKth = int64(-1)

// K returns the history depth parameter.
func (l *LRUK) K() int { return l.k }

// Request implements Policy.
func (l *LRUK) Request(x trace.Item) (hit bool, evicted trace.Item, didEvict bool) {
	l.clock++
	h := l.hist[x]
	if len(h) == l.k {
		copy(h, h[1:])
		h[l.k-1] = l.clock
	} else {
		h = append(h, l.clock)
	}
	l.hist[x] = h

	if _, ok := l.cached[x]; ok {
		l.heap.push(ordEntry{item: x, pri: l.kth(x)})
		return true, 0, false
	}
	if len(l.cached) == l.capacity {
		victim, ok := l.heap.popVictim(l.isCurrent)
		if !ok {
			panic("policy: LRU-K heap lost track of cached items")
		}
		delete(l.cached, victim)
		evicted, didEvict = victim, true
	}
	l.cached[x] = struct{}{}
	l.heap.push(ordEntry{item: x, pri: l.kth(x)})
	l.heap.maybeCompact(len(l.cached), l.liveEntries)
	return false, evicted, didEvict
}

// kth returns the time of the K-th most recent access to x, or noKth if x
// has fewer than K recorded accesses.
func (l *LRUK) kth(x trace.Item) int64 {
	h := l.hist[x]
	if len(h) < l.k {
		return noKth
	}
	return h[0]
}

func (l *LRUK) isCurrent(e ordEntry) bool {
	if _, ok := l.cached[e.item]; !ok {
		return false
	}
	return l.kth(e.item) == e.pri
}

func (l *LRUK) liveEntries() []ordEntry {
	out := make([]ordEntry, 0, len(l.cached))
	for it := range l.cached {
		out = append(out, ordEntry{item: it, pri: l.kth(it)})
	}
	return out
}

// Contains implements Policy.
func (l *LRUK) Contains(x trace.Item) bool {
	_, ok := l.cached[x]
	return ok
}

// Len implements Policy.
func (l *LRUK) Len() int { return len(l.cached) }

// Capacity implements Policy.
func (l *LRUK) Capacity() int { return l.capacity }

// Items implements Policy.
func (l *LRUK) Items() []trace.Item {
	out := make([]trace.Item, 0, len(l.cached))
	for it := range l.cached {
		out = append(out, it)
	}
	return out
}

// Delete implements Policy; history is retained.
func (l *LRUK) Delete(x trace.Item) bool {
	if _, ok := l.cached[x]; !ok {
		return false
	}
	delete(l.cached, x)
	return true
}

// Reset implements Policy; history is cleared (a fresh instance).
func (l *LRUK) Reset() {
	l.clock = 0
	l.hist = make(map[trace.Item][]int64)
	l.cached = make(map[trace.Item]struct{}, l.capacity)
	l.heap.reset()
}
