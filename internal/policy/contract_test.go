package policy

import (
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

// TestPolicyContract property-checks the Policy invariants every family
// must uphold, on random traces: Len never exceeds Capacity, lazy policies
// evict only when full and at most one item per miss, hits never evict,
// Contains agrees with Items, and the evicted item is no longer present.
func TestPolicyContract(t *testing.T) {
	for _, kind := range AllKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			f := func(seed uint64, capRaw uint8, reqs []uint8) bool {
				capacity := int(capRaw%8) + 1
				p := NewFactory(kind, seed)(capacity)
				for _, r := range reqs {
					x := trace.Item(r % 16)
					wasFull := p.Len() == capacity
					wasCached := p.Contains(x)
					hit, evicted, didEvict := p.Request(x)
					if be, ok := p.(BatchEvictions); ok {
						be.TakeEvictions()
					}
					if hit != wasCached {
						t.Logf("hit=%v but wasCached=%v", hit, wasCached)
						return false
					}
					if hit && didEvict {
						t.Log("hit evicted something")
						return false
					}
					if didEvict && !wasFull && kind.Lazy() {
						t.Log("lazy policy evicted while not full")
						return false
					}
					if didEvict && p.Contains(evicted) {
						t.Logf("evicted %v still present", evicted)
						return false
					}
					if !p.Contains(x) {
						t.Logf("requested %v not present after Request", x)
						return false
					}
					if p.Len() > capacity {
						t.Logf("Len %d > capacity %d", p.Len(), capacity)
						return false
					}
					if got := len(p.Items()); got != p.Len() {
						t.Logf("Items length %d != Len %d", got, p.Len())
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPolicyDeleteContract property-checks Delete across all families:
// deleting a cached item removes exactly that item and returns true;
// deleting an absent item is a no-op returning false.
func TestPolicyDeleteContract(t *testing.T) {
	for _, kind := range AllKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			f := func(seed uint64, reqs []uint8, delRaw uint8) bool {
				p := NewFactory(kind, seed)(4)
				for _, r := range reqs {
					p.Request(trace.Item(r % 12))
					if be, ok := p.(BatchEvictions); ok {
						be.TakeEvictions()
					}
				}
				x := trace.Item(delRaw % 12)
				had := p.Contains(x)
				before := p.Len()
				got := p.Delete(x)
				if got != had {
					t.Logf("Delete(%v) = %v, had = %v", x, got, had)
					return false
				}
				wantLen := before
				if had {
					wantLen--
				}
				if p.Len() != wantLen || p.Contains(x) {
					t.Logf("after Delete(%v): Len=%d want %d, Contains=%v", x, p.Len(), wantLen, p.Contains(x))
					return false
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPolicyResetContract verifies Reset restores a pristine, replayable
// instance for every family.
func TestPolicyResetContract(t *testing.T) {
	for _, kind := range AllKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			replay := func(p Policy) []bool {
				hits := make([]bool, 0, 64)
				for i := 0; i < 64; i++ {
					h, _, _ := p.Request(trace.Item(i * 7 % 11))
					if be, ok := p.(BatchEvictions); ok {
						be.TakeEvictions()
					}
					hits = append(hits, h)
				}
				return hits
			}
			p := NewFactory(kind, 3)(3)
			first := replay(p)
			p.Reset()
			if p.Len() != 0 {
				t.Fatalf("Len after Reset = %d", p.Len())
			}
			second := replay(p)
			for i := range first {
				if first[i] != second[i] {
					t.Fatalf("replay diverged at %d: %v vs %v", i, first[i], second[i])
				}
			}
		})
	}
}

// TestConservativePoliciesNeverExceedWindowBound spot-checks the
// conservativeness definition for the families the paper classifies as
// conservative, on adversarial-ish cyclic traces.
func TestConservativePoliciesNeverExceedWindowBound(t *testing.T) {
	for _, kind := range []Kind{LRUKind, FIFOKind, ClockKind} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			const k = 3
			p := NewFactory(kind, 0)(k)
			// Cycle over k distinct items with occasional extra item: any
			// window with ≤ k distinct items must have ≤ k misses.
			seq := trace.Sequence{}
			for i := 0; i < 30; i++ {
				seq = append(seq, trace.Item(i%k))
				if i%7 == 0 {
					seq = append(seq, trace.Item(100+i))
				}
			}
			missAt := make([]bool, len(seq))
			for i, x := range seq {
				hit, _, _ := p.Request(x)
				missAt[i] = !hit
			}
			for start := 0; start < len(seq); start++ {
				distinct := make(trace.ItemSet)
				misses := 0
				for end := start; end < len(seq); end++ {
					distinct.Add(seq[end])
					if missAt[end] {
						misses++
					}
					if distinct.Len() <= k && misses > k {
						t.Fatalf("window [%d,%d) has %d distinct, %d misses", start, end+1, distinct.Len(), misses)
					}
				}
			}
		})
	}
}
