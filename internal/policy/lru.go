package policy

import "repro/internal/trace"

// LRU is the least-recently-used policy, implemented with an intrusive
// doubly-linked list for O(1) Request. It is the fast path used by the large
// simulations; its eviction order is identical to LRUK with K = 1 (verified
// by tests), and it conforms to the monotone, self-similar order family of
// Lemma 5, hence is stable.
type LRU struct {
	capacity int
	nodes    map[trace.Item]*lruNode
	// head.next is the most recently used node; tail.prev the least.
	head, tail lruNode
}

type lruNode struct {
	item       trace.Item
	prev, next *lruNode
}

// NewLRU returns an empty LRU cache of the given capacity.
func NewLRU(capacity int) *LRU {
	validateCapacity(capacity)
	l := &LRU{
		capacity: capacity,
		nodes:    make(map[trace.Item]*lruNode, capacity),
	}
	l.head.next = &l.tail
	l.tail.prev = &l.head
	return l
}

// Request implements Policy.
func (l *LRU) Request(x trace.Item) (hit bool, evicted trace.Item, didEvict bool) {
	if n, ok := l.nodes[x]; ok {
		l.unlink(n)
		l.pushFront(n)
		return true, 0, false
	}
	if len(l.nodes) == l.capacity {
		victim := l.tail.prev
		l.unlink(victim)
		delete(l.nodes, victim.item)
		evicted, didEvict = victim.item, true
	}
	n := &lruNode{item: x}
	l.nodes[x] = n
	l.pushFront(n)
	return false, evicted, didEvict
}

// Contains implements Policy.
func (l *LRU) Contains(x trace.Item) bool {
	_, ok := l.nodes[x]
	return ok
}

// Len implements Policy.
func (l *LRU) Len() int { return len(l.nodes) }

// Capacity implements Policy.
func (l *LRU) Capacity() int { return l.capacity }

// Items implements Policy. Items are returned from most to least recently
// used; callers that need set semantics must not rely on the order.
func (l *LRU) Items() []trace.Item {
	out := make([]trace.Item, 0, len(l.nodes))
	for n := l.head.next; n != &l.tail; n = n.next {
		out = append(out, n.item)
	}
	return out
}

// Delete implements Policy.
func (l *LRU) Delete(x trace.Item) bool {
	n, ok := l.nodes[x]
	if !ok {
		return false
	}
	l.unlink(n)
	delete(l.nodes, x)
	return true
}

// Reset implements Policy.
func (l *LRU) Reset() {
	l.nodes = make(map[trace.Item]*lruNode, l.capacity)
	l.head.next = &l.tail
	l.tail.prev = &l.head
}

// Victim returns the item LRU would evict next (the least recently used),
// without modifying the cache. It reports false when the cache is empty.
func (l *LRU) Victim() (trace.Item, bool) {
	if len(l.nodes) == 0 {
		return 0, false
	}
	return l.tail.prev.item, true
}

func (l *LRU) unlink(n *lruNode) {
	n.prev.next = n.next
	n.next.prev = n.prev
	n.prev, n.next = nil, nil
}

func (l *LRU) pushFront(n *lruNode) {
	n.next = l.head.next
	n.prev = &l.head
	l.head.next.prev = n
	l.head.next = n
}
