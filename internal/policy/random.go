package policy

import (
	"repro/internal/hashfn"
	"repro/internal/trace"
)

// Random evicts a uniformly random cached item. It is lazy but neither
// conservative, stack, nor stable; it serves as a baseline/ablation policy.
// Randomness is seeded and self-contained so simulations stay reproducible.
type Random struct {
	capacity int
	items    []trace.Item // dense slot array for O(1) random choice
	index    map[trace.Item]int
	rngState uint64
	seed     uint64
}

// NewRandom returns an empty random-replacement cache of the given capacity.
func NewRandom(capacity int, seed uint64) *Random {
	validateCapacity(capacity)
	return &Random{
		capacity: capacity,
		items:    make([]trace.Item, 0, capacity),
		index:    make(map[trace.Item]int, capacity),
		rngState: seed,
		seed:     seed,
	}
}

// Request implements Policy.
func (r *Random) Request(x trace.Item) (hit bool, evicted trace.Item, didEvict bool) {
	if _, ok := r.index[x]; ok {
		return true, 0, false
	}
	if len(r.items) == r.capacity {
		victimSlot := int(r.next() % uint64(len(r.items)))
		victim := r.items[victimSlot]
		r.removeSlot(victimSlot)
		evicted, didEvict = victim, true
	}
	r.index[x] = len(r.items)
	r.items = append(r.items, x)
	return false, evicted, didEvict
}

func (r *Random) next() uint64 {
	r.rngState += 0x9e3779b97f4a7c15
	return hashfn.Mix64(r.rngState)
}

func (r *Random) removeSlot(i int) {
	victim := r.items[i]
	last := len(r.items) - 1
	r.items[i] = r.items[last]
	r.index[r.items[i]] = i
	r.items = r.items[:last]
	delete(r.index, victim)
}

// Contains implements Policy.
func (r *Random) Contains(x trace.Item) bool {
	_, ok := r.index[x]
	return ok
}

// Len implements Policy.
func (r *Random) Len() int { return len(r.items) }

// Capacity implements Policy.
func (r *Random) Capacity() int { return r.capacity }

// Items implements Policy.
func (r *Random) Items() []trace.Item {
	out := make([]trace.Item, len(r.items))
	copy(out, r.items)
	return out
}

// Delete implements Policy.
func (r *Random) Delete(x trace.Item) bool {
	i, ok := r.index[x]
	if !ok {
		return false
	}
	r.removeSlot(i)
	return true
}

// Reset implements Policy. The RNG restarts from the original seed so a
// Reset instance replays identically.
func (r *Random) Reset() {
	r.items = r.items[:0]
	r.index = make(map[trace.Item]int, r.capacity)
	r.rngState = r.seed
}
