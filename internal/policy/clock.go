package policy

import "repro/internal/trace"

// Clock is the classic second-chance approximation of LRU: cached items sit
// on a circular list with a reference bit; a hit sets the bit, and on a miss
// the clock hand sweeps forward clearing bits until it finds an unreferenced
// item to evict. Clock is conservative but, like FIFO, neither a stack
// algorithm nor stable (Corollary 2).
type Clock struct {
	capacity int
	slots    []clockSlot
	index    map[trace.Item]int
	hand     int
	size     int
}

type clockSlot struct {
	item trace.Item
	ref  bool
	used bool
}

// NewClock returns an empty clock cache of the given capacity.
func NewClock(capacity int) *Clock {
	validateCapacity(capacity)
	return &Clock{
		capacity: capacity,
		slots:    make([]clockSlot, capacity),
		index:    make(map[trace.Item]int, capacity),
	}
}

// Request implements Policy.
func (c *Clock) Request(x trace.Item) (hit bool, evicted trace.Item, didEvict bool) {
	if i, ok := c.index[x]; ok {
		c.slots[i].ref = true
		return true, 0, false
	}
	if c.size < c.capacity {
		// Fill the first unused slot; while the cache is not yet full the
		// hand never needs to move.
		for i := range c.slots {
			if !c.slots[i].used {
				c.slots[i] = clockSlot{item: x, ref: true, used: true}
				c.index[x] = i
				c.size++
				return false, 0, false
			}
		}
	}
	// Sweep: clear reference bits until an unreferenced victim is found.
	for {
		s := &c.slots[c.hand]
		if s.ref {
			s.ref = false
			c.hand = (c.hand + 1) % c.capacity
			continue
		}
		victim := s.item
		delete(c.index, victim)
		*s = clockSlot{item: x, ref: true, used: true}
		c.index[x] = c.hand
		c.hand = (c.hand + 1) % c.capacity
		return false, victim, true
	}
}

// Contains implements Policy.
func (c *Clock) Contains(x trace.Item) bool {
	_, ok := c.index[x]
	return ok
}

// Len implements Policy.
func (c *Clock) Len() int { return c.size }

// Capacity implements Policy.
func (c *Clock) Capacity() int { return c.capacity }

// Items implements Policy.
func (c *Clock) Items() []trace.Item {
	out := make([]trace.Item, 0, c.size)
	for _, s := range c.slots {
		if s.used {
			out = append(out, s.item)
		}
	}
	return out
}

// Delete implements Policy.
func (c *Clock) Delete(x trace.Item) bool {
	i, ok := c.index[x]
	if !ok {
		return false
	}
	c.slots[i] = clockSlot{}
	delete(c.index, x)
	c.size--
	return true
}

// Reset implements Policy.
func (c *Clock) Reset() {
	for i := range c.slots {
		c.slots[i] = clockSlot{}
	}
	c.index = make(map[trace.Item]int, c.capacity)
	c.hand = 0
	c.size = 0
}
