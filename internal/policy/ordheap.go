package policy

import "repro/internal/trace"

// ordHeap is a binary heap with lazy deletion, shared by the order-family
// policies (LFU, LRU-K, reuse-distance). Each access pushes a fresh
// (item, priority) entry; entries whose priority no longer matches the
// item's current priority are stale and skipped during pops. When the heap
// grows well past the number of live items it is compacted in place.
//
// The heap orders entries so that the top is the next eviction victim. The
// paper's order families break ties by item identity, so less is always a
// strict total order and victims are deterministic.
type ordHeap struct {
	entries []ordEntry
	less    func(a, b ordEntry) bool
}

type ordEntry struct {
	item trace.Item
	pri  int64
}

func newOrdHeap(less func(a, b ordEntry) bool) *ordHeap {
	return &ordHeap{less: less}
}

func (h *ordHeap) push(e ordEntry) {
	h.entries = append(h.entries, e)
	h.siftUp(len(h.entries) - 1)
}

// popVictim removes and returns the highest-priority entry that is still
// current according to isCurrent. It reports false if no live entry remains.
func (h *ordHeap) popVictim(isCurrent func(ordEntry) bool) (trace.Item, bool) {
	for len(h.entries) > 0 {
		top := h.entries[0]
		h.popTop()
		if isCurrent(top) {
			return top.item, true
		}
	}
	return 0, false
}

// maybeCompact rebuilds the heap from the live entries when stale entries
// dominate. live is the number of currently cached items; current yields
// their present priorities.
func (h *ordHeap) maybeCompact(live int, current func() []ordEntry) {
	if len(h.entries) <= 4*live+16 {
		return
	}
	h.entries = append(h.entries[:0], current()...)
	for i := len(h.entries)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

func (h *ordHeap) reset() { h.entries = h.entries[:0] }

func (h *ordHeap) popTop() {
	last := len(h.entries) - 1
	h.entries[0] = h.entries[last]
	h.entries = h.entries[:last]
	if last > 0 {
		h.siftDown(0)
	}
}

func (h *ordHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.entries[i], h.entries[parent]) {
			return
		}
		h.entries[i], h.entries[parent] = h.entries[parent], h.entries[i]
		i = parent
	}
}

func (h *ordHeap) siftDown(i int) {
	n := len(h.entries)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && h.less(h.entries[left], h.entries[smallest]) {
			smallest = left
		}
		if right < n && h.less(h.entries[right], h.entries[smallest]) {
			smallest = right
		}
		if smallest == i {
			return
		}
		h.entries[i], h.entries[smallest] = h.entries[smallest], h.entries[i]
		i = smallest
	}
}
