package policy

import "repro/internal/trace"

// MRU is the most-recently-used policy: the victim is the cached item with
// the most recent access. MRU is the classical choice for cyclic scans
// larger than the cache (where LRU gets zero hits) and appears in database
// buffer managers.
//
// MRU conforms to the order family x ⪯σ y iff last(σ,x) < last(σ,y) (older
// is smaller, ties impossible among accessed items; unaccessed items rank
// by identity), so by Theorem 6 it is a stack algorithm. The family is
// *not* monotone — an access moves the touched item to the ⪯-maximum — so,
// like the reuse-distance algorithm of Proposition 6, MRU escapes
// Theorem 8; the randomized search in internal/stability finds stability
// violations for it (see the classification tests).
type MRU struct {
	capacity int
	nodes    map[trace.Item]*lruNode
	// head.next is the most recently used node — the eviction victim.
	head, tail lruNode
}

// NewMRU returns an empty MRU cache of the given capacity.
func NewMRU(capacity int) *MRU {
	validateCapacity(capacity)
	m := &MRU{
		capacity: capacity,
		nodes:    make(map[trace.Item]*lruNode, capacity),
	}
	m.head.next = &m.tail
	m.tail.prev = &m.head
	return m
}

// Request implements Policy.
func (m *MRU) Request(x trace.Item) (hit bool, evicted trace.Item, didEvict bool) {
	if n, ok := m.nodes[x]; ok {
		m.unlink(n)
		m.pushFront(n)
		return true, 0, false
	}
	if len(m.nodes) == m.capacity {
		victim := m.head.next // most recently used
		m.unlink(victim)
		delete(m.nodes, victim.item)
		evicted, didEvict = victim.item, true
	}
	n := &lruNode{item: x}
	m.nodes[x] = n
	m.pushFront(n)
	return false, evicted, didEvict
}

// Contains implements Policy.
func (m *MRU) Contains(x trace.Item) bool {
	_, ok := m.nodes[x]
	return ok
}

// Len implements Policy.
func (m *MRU) Len() int { return len(m.nodes) }

// Capacity implements Policy.
func (m *MRU) Capacity() int { return m.capacity }

// Items implements Policy, most recently used first.
func (m *MRU) Items() []trace.Item {
	out := make([]trace.Item, 0, len(m.nodes))
	for n := m.head.next; n != &m.tail; n = n.next {
		out = append(out, n.item)
	}
	return out
}

// Delete implements Policy.
func (m *MRU) Delete(x trace.Item) bool {
	n, ok := m.nodes[x]
	if !ok {
		return false
	}
	m.unlink(n)
	delete(m.nodes, x)
	return true
}

// Reset implements Policy.
func (m *MRU) Reset() {
	m.nodes = make(map[trace.Item]*lruNode, m.capacity)
	m.head.next = &m.tail
	m.tail.prev = &m.head
}

func (m *MRU) unlink(n *lruNode) {
	n.prev.next = n.next
	n.next.prev = n.prev
	n.prev, n.next = nil, nil
}

func (m *MRU) pushFront(n *lruNode) {
	n.next = m.head.next
	n.prev = &m.head
	m.head.next.prev = n
	m.head.next = n
}
