package policy

import (
	"testing"

	"repro/internal/trace"
)

func requestAll(t *testing.T, p Policy, items ...trace.Item) {
	t.Helper()
	for _, it := range items {
		p.Request(it)
	}
}

func mustEvict(t *testing.T, p Policy, x, want trace.Item) {
	t.Helper()
	hit, evicted, didEvict := p.Request(x)
	if hit {
		t.Fatalf("Request(%v) unexpectedly hit", x)
	}
	if !didEvict {
		t.Fatalf("Request(%v) evicted nothing, want %v", x, want)
	}
	if evicted != want {
		t.Fatalf("Request(%v) evicted %v, want %v", x, evicted, want)
	}
}

func TestLRUBasicEvictionOrder(t *testing.T) {
	l := NewLRU(3)
	requestAll(t, l, 0, 1, 2)
	if l.Len() != 3 {
		t.Fatalf("Len = %d, want 3", l.Len())
	}
	// 0 is least recently used.
	mustEvict(t, l, 3, 0)
	// Touch 1; now 2 is least recent.
	if hit, _, _ := l.Request(1); !hit {
		t.Fatal("Request(1) should hit")
	}
	mustEvict(t, l, 4, 2)
}

func TestLRUHitDoesNotEvict(t *testing.T) {
	l := NewLRU(2)
	requestAll(t, l, 5, 6)
	hit, _, didEvict := l.Request(5)
	if !hit || didEvict {
		t.Fatalf("hit=%v didEvict=%v, want hit and no eviction", hit, didEvict)
	}
}

func TestLRUVictim(t *testing.T) {
	l := NewLRU(2)
	if _, ok := l.Victim(); ok {
		t.Fatal("empty cache should have no victim")
	}
	requestAll(t, l, 1, 2)
	if v, ok := l.Victim(); !ok || v != 1 {
		t.Fatalf("Victim = %v/%v, want 1/true", v, ok)
	}
}

func TestLRUDelete(t *testing.T) {
	l := NewLRU(3)
	requestAll(t, l, 1, 2, 3)
	if !l.Delete(2) {
		t.Fatal("Delete(2) should succeed")
	}
	if l.Delete(2) {
		t.Fatal("second Delete(2) should fail")
	}
	if l.Len() != 2 || l.Contains(2) {
		t.Fatalf("after delete: Len=%d Contains(2)=%v", l.Len(), l.Contains(2))
	}
	// Deleting mid-list must preserve eviction order of the rest.
	mustNotEvict(t, l, 4)
	mustEvict(t, l, 5, 1)
}

func mustNotEvict(t *testing.T, p Policy, x trace.Item) {
	t.Helper()
	hit, _, didEvict := p.Request(x)
	if hit {
		t.Fatalf("Request(%v) unexpectedly hit", x)
	}
	if didEvict {
		t.Fatalf("Request(%v) unexpectedly evicted", x)
	}
}

func TestLRUItemsOrder(t *testing.T) {
	l := NewLRU(3)
	requestAll(t, l, 1, 2, 3, 1)
	got := l.Items()
	want := []trace.Item{1, 3, 2} // MRU first
	if len(got) != len(want) {
		t.Fatalf("Items = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Items = %v, want %v", got, want)
		}
	}
}

func TestLRUReset(t *testing.T) {
	l := NewLRU(2)
	requestAll(t, l, 1, 2)
	l.Reset()
	if l.Len() != 0 || l.Contains(1) {
		t.Fatalf("after Reset: Len=%d Contains(1)=%v", l.Len(), l.Contains(1))
	}
	mustNotEvict(t, l, 7)
	mustNotEvict(t, l, 8)
	mustEvict(t, l, 9, 7)
}

func TestLRUCapacityOne(t *testing.T) {
	l := NewLRU(1)
	mustNotEvict(t, l, 1)
	mustEvict(t, l, 2, 1)
	if hit, _, _ := l.Request(2); !hit {
		t.Fatal("Request(2) should hit")
	}
}

func TestLRUPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLRU(0) should panic")
		}
	}()
	NewLRU(0)
}

// TestLRUMatchesLRUK1 cross-checks the fast intrusive-list LRU against the
// order-family-based LRUK with K = 1 on long random traces: every access
// must agree on hit/miss and on the eviction victim.
func TestLRUMatchesLRUK1(t *testing.T) {
	for _, capacity := range []int{1, 2, 3, 7, 16} {
		lru := NewLRU(capacity)
		lruk := NewLRUK(capacity, 1)
		rng := uint64(12345)
		next := func() uint64 {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return rng
		}
		for i := 0; i < 20000; i++ {
			x := trace.Item(next() % 40)
			h1, e1, d1 := lru.Request(x)
			h2, e2, d2 := lruk.Request(x)
			if h1 != h2 || d1 != d2 || (d1 && e1 != e2) {
				t.Fatalf("capacity %d, step %d, item %v: LRU (%v,%v,%v) != LRUK1 (%v,%v,%v)",
					capacity, i, x, h1, e1, d1, h2, e2, d2)
			}
		}
	}
}
