package policy

import "repro/internal/trace"

// LFU is the least-frequently-used policy, conforming exactly to the order
// family of Lemma 6: Φ(σ, x) is the total number of accesses to x in the
// whole history σ (not just while cached), x ⪯σ y iff Φ(σ,x) > Φ(σ,y) or
// (Φ equal and x ≤ y), and the eviction victim is the ⪯σ-maximum cached item
// — i.e. the least-frequently accessed one, breaking ties toward the larger
// item identifier. Keeping whole-history counts (rather than resetting them
// on eviction) is what makes LFU monotone and self-similar, hence stable.
type LFU struct {
	capacity int
	counts   map[trace.Item]int64 // full access history, survives eviction
	cached   map[trace.Item]struct{}
	heap     *ordHeap
}

// NewLFU returns an empty LFU cache of the given capacity.
func NewLFU(capacity int) *LFU {
	validateCapacity(capacity)
	return &LFU{
		capacity: capacity,
		counts:   make(map[trace.Item]int64),
		cached:   make(map[trace.Item]struct{}, capacity),
		// Victim = min count, ties toward larger item id.
		heap: newOrdHeap(func(a, b ordEntry) bool {
			if a.pri != b.pri {
				return a.pri < b.pri
			}
			return a.item > b.item
		}),
	}
}

// Request implements Policy.
func (l *LFU) Request(x trace.Item) (hit bool, evicted trace.Item, didEvict bool) {
	l.counts[x]++
	if _, ok := l.cached[x]; ok {
		l.heap.push(ordEntry{item: x, pri: l.counts[x]})
		return true, 0, false
	}
	if len(l.cached) == l.capacity {
		victim, ok := l.heap.popVictim(l.isCurrent)
		if !ok {
			panic("policy: LFU heap lost track of cached items")
		}
		delete(l.cached, victim)
		evicted, didEvict = victim, true
	}
	l.cached[x] = struct{}{}
	l.heap.push(ordEntry{item: x, pri: l.counts[x]})
	l.heap.maybeCompact(len(l.cached), l.liveEntries)
	return false, evicted, didEvict
}

func (l *LFU) isCurrent(e ordEntry) bool {
	if _, ok := l.cached[e.item]; !ok {
		return false
	}
	return l.counts[e.item] == e.pri
}

func (l *LFU) liveEntries() []ordEntry {
	out := make([]ordEntry, 0, len(l.cached))
	for it := range l.cached {
		out = append(out, ordEntry{item: it, pri: l.counts[it]})
	}
	return out
}

// Contains implements Policy.
func (l *LFU) Contains(x trace.Item) bool {
	_, ok := l.cached[x]
	return ok
}

// Len implements Policy.
func (l *LFU) Len() int { return len(l.cached) }

// Capacity implements Policy.
func (l *LFU) Capacity() int { return l.capacity }

// Items implements Policy.
func (l *LFU) Items() []trace.Item {
	out := make([]trace.Item, 0, len(l.cached))
	for it := range l.cached {
		out = append(out, it)
	}
	return out
}

// Delete implements Policy. The access history of x is retained, matching
// the order-family semantics (Φ counts accesses in σ, not residency).
func (l *LFU) Delete(x trace.Item) bool {
	if _, ok := l.cached[x]; !ok {
		return false
	}
	delete(l.cached, x)
	return true
}

// Reset implements Policy. Unlike Delete, Reset clears history as well: it
// models a brand-new instance, which is how rehashing "cools down" LFU
// buckets (footnote 7 of the paper).
func (l *LFU) Reset() {
	l.counts = make(map[trace.Item]int64)
	l.cached = make(map[trace.Item]struct{}, l.capacity)
	l.heap.reset()
}

// Count exposes Φ(σ, x): the number of accesses to x seen by this instance.
func (l *LFU) Count(x trace.Item) int64 { return l.counts[x] }
