package policy

import (
	"testing"

	"repro/internal/trace"
)

func TestFIFOEvictionOrder(t *testing.T) {
	f := NewFIFO(3)
	requestAll(t, f, 0, 1, 2)
	// Hitting 0 must NOT protect it: FIFO ignores recency.
	if hit, _, _ := f.Request(0); !hit {
		t.Fatal("Request(0) should hit")
	}
	mustEvict(t, f, 3, 0)
	mustEvict(t, f, 4, 1)
}

func TestFIFODeleteCompacts(t *testing.T) {
	f := NewFIFO(3)
	requestAll(t, f, 0, 1, 2)
	if !f.Delete(1) {
		t.Fatal("Delete(1) should succeed")
	}
	mustNotEvict(t, f, 3)
	mustEvict(t, f, 4, 0)
	mustEvict(t, f, 5, 2)
}

func TestFIFOItemsOldestFirst(t *testing.T) {
	f := NewFIFO(3)
	requestAll(t, f, 7, 8, 9, 10) // evicts 7
	got := f.Items()
	want := []trace.Item{8, 9, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Items = %v, want %v", got, want)
		}
	}
}

func TestClockSecondChance(t *testing.T) {
	c := NewClock(3)
	requestAll(t, c, 0, 1, 2)
	// All reference bits are set; the sweep clears 0,1,2 then evicts 0.
	mustEvict(t, c, 3, 0)
	// Now 1 and 2 have cleared bits, 3 is referenced. Touch 1 to set its bit.
	if hit, _, _ := c.Request(1); !hit {
		t.Fatal("Request(1) should hit")
	}
	// Hand is past 0's old slot (now 3). Sweep: slot1(=1,ref) cleared,
	// slot2(=2,clear) evicted.
	mustEvict(t, c, 4, 2)
}

func TestClockDelete(t *testing.T) {
	c := NewClock(2)
	requestAll(t, c, 1, 2)
	if !c.Delete(1) {
		t.Fatal("Delete(1) should succeed")
	}
	if c.Len() != 1 || c.Contains(1) {
		t.Fatalf("Len=%d Contains(1)=%v", c.Len(), c.Contains(1))
	}
	mustNotEvict(t, c, 3)
}

func TestLFUEvictsLeastFrequent(t *testing.T) {
	l := NewLFU(3)
	requestAll(t, l, 0, 0, 0, 1, 1, 2)
	// Counts: 0→3, 1→2, 2→1. Victim is 2.
	mustEvict(t, l, 3, 2)
	// Counts now: 0→3, 1→2, 3→1. Victim is 3.
	mustEvict(t, l, 4, 3)
}

func TestLFUTieBreaksTowardLargerItem(t *testing.T) {
	l := NewLFU(2)
	requestAll(t, l, 1, 2) // both count 1
	// The order family says x ⪯σ y iff count(x) > count(y) or (equal and
	// x ≤ y); the victim is the ⪯-max, i.e. the larger id on ties.
	mustEvict(t, l, 3, 2)
}

func TestLFUHistorySurvivesEviction(t *testing.T) {
	l := NewLFU(2)
	requestAll(t, l, 0, 0, 1, 2) // evicts 1 (count 1 vs 2's... )
	// Counts: 0→2, 1→1, 2→1. On access 2, victim among {0,1}: least count
	// is 1 → evict 1.
	if l.Contains(1) {
		t.Fatal("1 should have been evicted")
	}
	// Re-access 1: its historical count (1) increments to 2.
	requestAll(t, l, 1) // cache full {0,2}: victim = least count = 2 (count 1)
	if l.Contains(2) {
		t.Fatal("2 should have been evicted (count 1 < count 2 of item 0)")
	}
	if got := l.Count(1); got != 2 {
		t.Fatalf("Count(1) = %d, want 2 (history retained)", got)
	}
}

func TestLRUKColdItemsEvictedFirst(t *testing.T) {
	// With K=2, items accessed once have Φ = ∞ and are evicted before any
	// item with two accesses, tie-broken toward the larger id.
	l := NewLRUK(3, 2)
	requestAll(t, l, 0, 0, 1, 2)
	// 0 has 2 accesses; 1 and 2 have one each → both ∞; victim = larger id 2.
	mustEvict(t, l, 3, 2)
}

func TestLRUKEvictsOldestKthAccess(t *testing.T) {
	l := NewLRUK(2, 2)
	requestAll(t, l, 0, 1, 0, 1, 0) // times: 0:{3,5}, 1:{2,4}
	// Both have K=2 accesses; kth(0)=3, kth(1)=2 → 1 is older, evict 1.
	mustEvict(t, l, 7, 1)
}

func TestLRUKScanResistance(t *testing.T) {
	// The motivating property (footnote 3): an isolated access does not
	// displace the hot set under LRU-2 but does under LRU.
	hot := []trace.Item{0, 1}
	lru := NewLRU(2)
	lru2 := NewLRUK(2, 2)
	for i := 0; i < 3; i++ {
		for _, h := range hot {
			lru.Request(h)
			lru2.Request(h)
		}
	}
	lru.Request(99) // isolated access; both are lazy so both must admit it
	lru2.Request(99)
	if lru.Contains(0) || lru2.Contains(0) {
		t.Fatal("both policies must evict something to admit the scan item")
	}
	// The difference appears on the next hot access: LRU-2 evicts the
	// isolated item (Φ = ∞), recovering the hot set; LRU evicts another hot
	// item because the scan item is the most recent.
	lru.Request(0)
	lru2.Request(0)
	if !lru.Contains(99) || lru.Contains(1) {
		t.Fatal("LRU should keep the scan item and lose hot item 1")
	}
	if lru2.Contains(99) || !lru2.Contains(1) {
		t.Fatal("LRU-2 should evict the scan item and keep hot item 1")
	}
}

func TestReuseDistPaperExampleR3(t *testing.T) {
	// From Proposition 6: R₃ on σ[X] = A Y A B Y Y B C evicts B on the final
	// access to C.
	seq, err := trace.ParseLetters("AYABYYB")
	if err != nil {
		t.Fatal(err)
	}
	r := NewReuseDist(3)
	for _, x := range seq {
		r.Request(x)
	}
	itemB := trace.Item('B' - 'A')
	itemC := trace.Item('C' - 'A')
	hit, evicted, didEvict := r.Request(itemC)
	if hit {
		t.Fatal("C should miss")
	}
	if !didEvict || evicted != itemB {
		t.Fatalf("R3 evicted %v (didEvict=%v), paper says B", evicted, didEvict)
	}
}

func TestReuseDistPaperExampleR4(t *testing.T) {
	// R₄ on the full σ = A Y Z Z Z Z A B Y Y B C evicts A on the access to C.
	seq, err := trace.ParseLetters("AYZZZZABYYB")
	if err != nil {
		t.Fatal(err)
	}
	r := NewReuseDist(4)
	for _, x := range seq {
		r.Request(x)
	}
	itemA := trace.Item(0)
	itemC := trace.Item(2)
	_, evicted, didEvict := r.Request(itemC)
	if !didEvict || evicted != itemA {
		t.Fatalf("R4 evicted %v (didEvict=%v), paper says A", evicted, didEvict)
	}
	if !r.Contains(trace.Item(1)) {
		t.Fatal("B should remain in R4")
	}
}

func TestRandomPolicyDeterministicInSeed(t *testing.T) {
	run := func() []trace.Item {
		p := NewRandom(3, 42)
		var evictions []trace.Item
		for i := 0; i < 200; i++ {
			_, e, d := p.Request(trace.Item(i % 10))
			if d {
				evictions = append(evictions, e)
			}
		}
		return evictions
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("eviction counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("eviction %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRandomPolicyResetReplays(t *testing.T) {
	p := NewRandom(2, 7)
	first := make([]trace.Item, 0)
	for i := 0; i < 50; i++ {
		_, e, d := p.Request(trace.Item(i % 7))
		if d {
			first = append(first, e)
		}
	}
	p.Reset()
	second := make([]trace.Item, 0)
	for i := 0; i < 50; i++ {
		_, e, d := p.Request(trace.Item(i % 7))
		if d {
			second = append(second, e)
		}
	}
	if len(first) != len(second) {
		t.Fatalf("replay lengths differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, first[i], second[i])
		}
	}
}

func TestFlushWhenFullFlushesEverything(t *testing.T) {
	f := NewFlushWhenFull(3)
	requestAll(t, f, 0, 1, 2)
	_, evicted, didEvict := f.Request(3)
	if !didEvict {
		t.Fatal("flush should report an eviction")
	}
	rest := f.TakeEvictions()
	all := trace.NewItemSet(append(rest, evicted)...)
	if !all.Equal(trace.NewItemSet(0, 1, 2)) {
		t.Fatalf("flushed %v, want {0,1,2}", all.Sorted())
	}
	if f.Len() != 1 || !f.Contains(3) {
		t.Fatalf("after flush: Len=%d Contains(3)=%v", f.Len(), f.Contains(3))
	}
}

func TestFlushWhenFullNotConservativeWitness(t *testing.T) {
	// Window "X Y X" (items 1 0... using A X Y X pattern) has 2 distinct
	// items but 3 misses with capacity 2.
	f := NewFlushWhenFull(2)
	seq := trace.Sequence{10, 20, 30, 20} // A X Y X
	misses := 0
	missAt := make([]bool, len(seq))
	for i, x := range seq {
		hit, _, _ := f.Request(x)
		f.TakeEvictions()
		if !hit {
			misses++
			missAt[i] = true
		}
	}
	// Window positions 1..3: items {20, 30}, all three accesses miss.
	if !(missAt[1] && missAt[2] && missAt[3]) {
		t.Fatalf("expected misses at positions 1..3, got %v", missAt)
	}
}

func TestKindStringAndParseRoundTrip(t *testing.T) {
	for _, k := range AllKinds() {
		parsed, err := ParseKind(k.String())
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", k.String(), err)
		}
		if parsed != k {
			t.Fatalf("round trip %v → %q → %v", k, k.String(), parsed)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Fatal("ParseKind(nope) should fail")
	}
}

func TestFactoryProducesRightCapacity(t *testing.T) {
	for _, k := range AllKinds() {
		p := NewFactory(k, 1)(5)
		if p.Capacity() != 5 {
			t.Fatalf("%v factory capacity = %d, want 5", k, p.Capacity())
		}
		if p.Len() != 0 {
			t.Fatalf("%v fresh instance Len = %d, want 0", k, p.Len())
		}
	}
}

func TestMRUEvictsMostRecent(t *testing.T) {
	m := NewMRU(3)
	requestAll(t, m, 0, 1, 2)
	// 2 is the most recently used: it goes first.
	mustEvict(t, m, 3, 2)
	// Now 3 is most recent.
	mustEvict(t, m, 4, 3)
	// Hitting 0 makes it most recent.
	if hit, _, _ := m.Request(0); !hit {
		t.Fatal("Request(0) should hit")
	}
	mustEvict(t, m, 5, 0)
}

func TestMRUBeatsLRUOnLargeCycle(t *testing.T) {
	// Cycling over k+1 items: LRU misses every access after warmup; MRU
	// retains k−1 of the items and hits them every pass.
	const k = 8
	seq := trace.RangeSeq(0, k+1).Repeat(20)
	lruMisses, mruMisses := 0, 0
	lru, mru := NewLRU(k), NewMRU(k)
	for _, x := range seq {
		if h, _, _ := lru.Request(x); !h {
			lruMisses++
		}
		if h, _, _ := mru.Request(x); !h {
			mruMisses++
		}
	}
	if lruMisses != len(seq) {
		t.Fatalf("LRU on a k+1 cycle should miss every access, missed %d/%d", lruMisses, len(seq))
	}
	if mruMisses >= lruMisses/2 {
		t.Fatalf("MRU should beat LRU on the cycle: %d vs %d", mruMisses, lruMisses)
	}
}
