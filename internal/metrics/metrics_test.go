package metrics

import (
	"testing"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/trace"
)

func lruFactory() policy.Factory { return policy.NewFactory(policy.LRUKind, 0) }

func TestClassifyPureCompulsory(t *testing.T) {
	// Distinct cold items that always fit: every miss is compulsory.
	sa := core.MustNewSetAssoc(core.SetAssocConfig{Capacity: 16, Alpha: 16, Factory: lruFactory(), Seed: 1})
	b := Classify(trace.RangeSeq(0, 10), sa)
	if b.Compulsory != 10 || b.Capacity != 0 || b.Conflict != 0 || b.Hits != 0 {
		t.Fatalf("breakdown = %+v", b)
	}
	if b.Misses() != 10 {
		t.Fatalf("Misses = %d", b.Misses())
	}
}

func TestClassifyCapacityMisses(t *testing.T) {
	// Cycle over 2k items with a fully-associative-equivalent cache (α=k):
	// after the first pass everything is a capacity miss, never conflict.
	const k = 8
	sa := core.MustNewSetAssoc(core.SetAssocConfig{Capacity: k, Alpha: k, Factory: lruFactory(), Seed: 1})
	seq := trace.RangeSeq(0, 2*k).Repeat(4)
	b := Classify(seq, sa)
	if b.Conflict != 0 {
		t.Fatalf("α=k cache cannot have conflict misses, got %d", b.Conflict)
	}
	if b.Compulsory != 2*k {
		t.Fatalf("compulsory = %d, want %d", b.Compulsory, 2*k)
	}
	if b.Capacity == 0 {
		t.Fatal("expected capacity misses on an oversized cycle")
	}
}

func TestClassifyConflictMisses(t *testing.T) {
	// A working set exactly the cache size never capacity-misses after
	// warmup, so all repeat misses of a low-associativity cache are
	// conflict misses.
	const k = 64
	sa := core.MustNewSetAssoc(core.SetAssocConfig{Capacity: k, Alpha: 1, Factory: lruFactory(), Seed: 3})
	seq := trace.RangeSeq(0, k).Repeat(6)
	b := Classify(seq, sa)
	if b.Compulsory != k {
		t.Fatalf("compulsory = %d, want %d", b.Compulsory, k)
	}
	if b.Capacity != 0 {
		t.Fatalf("capacity misses = %d, want 0 (working set fits)", b.Capacity)
	}
	if b.Conflict == 0 {
		t.Fatal("direct-mapped cache should conflict-miss on this workload")
	}
	if b.ConflictRatio() <= 0 {
		t.Fatal("ConflictRatio should be positive")
	}
}

func TestClassifyAccounting(t *testing.T) {
	sa := core.MustNewSetAssoc(core.SetAssocConfig{Capacity: 16, Alpha: 2, Factory: lruFactory(), Seed: 9})
	seq := trace.RangeSeq(0, 40).Repeat(3)
	b := Classify(seq, sa)
	if b.Accesses != uint64(len(seq)) {
		t.Fatalf("accesses = %d, want %d", b.Accesses, len(seq))
	}
	if b.Hits+b.Misses() != b.Accesses {
		t.Fatalf("hits %d + misses %d != accesses %d", b.Hits, b.Misses(), b.Accesses)
	}
	// The breakdown must agree with the cache's own counters.
	if b.Misses() != sa.Stats().Misses {
		t.Fatalf("breakdown misses %d != cache misses %d", b.Misses(), sa.Stats().Misses)
	}
}

func TestConflictRatioEmptyRun(t *testing.T) {
	var b Breakdown
	if b.ConflictRatio() != 0 {
		t.Fatal("empty breakdown should have ratio 0")
	}
}
