// Package metrics classifies cache misses using the standard 3C model the
// paper's introduction references: compulsory misses (first access ever),
// capacity misses (the working set exceeds the cache: a same-size fully
// associative LRU cache also misses), and conflict misses (caused purely by
// the associativity restriction — the miss would have hit under full
// associativity). Conflict misses are exactly what the adversary of
// Theorem 4 manufactures and what rehashing repairs.
package metrics

import (
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/trace"
)

// Breakdown partitions the misses of a set-associative cache run.
type Breakdown struct {
	Accesses   uint64
	Hits       uint64
	Compulsory uint64
	Capacity   uint64
	Conflict   uint64
}

// Misses returns the total miss count.
func (b Breakdown) Misses() uint64 { return b.Compulsory + b.Capacity + b.Conflict }

// ConflictRatio returns the fraction of all accesses that conflict-missed.
func (b Breakdown) ConflictRatio() float64 {
	if b.Accesses == 0 {
		return 0
	}
	return float64(b.Conflict) / float64(b.Accesses)
}

// Classify runs seq through the given set-associative cache and a fully
// associative LRU reference of the same total capacity, attributing each
// set-associative miss to one 3C class:
//
//   - compulsory: the item has never been accessed before;
//   - capacity:   the fully associative reference also misses;
//   - conflict:   the fully associative reference hits.
//
// The cache must be freshly constructed (or Reset).
func Classify(seq trace.Sequence, cache core.Cache) Breakdown {
	ref := core.NewFullAssoc(policy.NewFactory(policy.LRUKind, 0), cache.Capacity())
	seen := make(trace.ItemSet, 1024)
	var b Breakdown
	for _, x := range seq {
		refHit := ref.Access(x)
		hit := cache.Access(x)
		b.Accesses++
		switch {
		case hit:
			b.Hits++
		case !seen.Contains(x):
			b.Compulsory++
		case refHit:
			b.Conflict++
		default:
			b.Capacity++
		}
		seen.Add(x)
	}
	return b
}
