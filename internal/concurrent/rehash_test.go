package concurrent

import (
	"sync"
	"testing"
	"time"

	"repro/internal/policy"
)

// TestRehashPreservesReachableEntries fills a cache, rehashes, and checks
// that every entry is either still readable (with its value) or accounted
// for by the eviction counters — no entry may silently vanish.
func TestRehashPreservesReachableEntries(t *testing.T) {
	c, err := New(Config{Capacity: 256, Alpha: 8, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	const n = 200 // below capacity, but individual buckets may still overflow
	inserted := 0
	for i := uint64(0); i < n; i++ {
		c.Put(i, i*3)
		inserted++
	}
	preSnap := c.Snapshot()
	resident := preSnap.Len

	c.Rehash()
	if !c.Migrating() && c.PendingMigration() != 0 {
		t.Fatalf("pending %d without migration", c.PendingMigration())
	}

	// Touch every key: hits migrate items, misses force-evict stragglers.
	found := 0
	for i := uint64(0); i < n; i++ {
		if v, ok := c.Get(i); ok {
			if v != i*3 {
				t.Fatalf("Get(%d) = %v, want %d", i, v, i*3)
			}
			found++
		}
	}
	snap := c.Snapshot()
	// Every resident at rehash time is either found, migration-evicted
	// (FlushEvictions), or displaced by a migrating insert (Evictions).
	lost := resident - found
	evicted := int(snap.FlushEvictions-preSnap.FlushEvictions) + int(snap.Evictions-preSnap.Evictions)
	if lost > evicted {
		t.Fatalf("%d entries lost but only %d evictions recorded", lost, evicted)
	}
	if snap.Rehashes != 1 {
		t.Fatalf("rehashes = %d, want 1", snap.Rehashes)
	}
}

// TestRehashDrainsViaMisses checks that misses alone finish the migration:
// the paper's schedule forces one eviction per miss, so after enough misses
// on disjoint keys the old generation must be gone.
func TestRehashDrainsViaMisses(t *testing.T) {
	c, err := New(Config{Capacity: 64, Alpha: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 64; i++ {
		c.Put(i, i)
	}
	c.Rehash()
	if !c.Migrating() {
		t.Fatal("migration should be in progress")
	}
	start := c.PendingMigration()
	if start == 0 {
		t.Fatal("nothing pending after rehash of a full cache")
	}
	// Misses on never-inserted keys: each must retire ≥1 pending item.
	for i := uint64(0); i < uint64(start); i++ {
		if _, ok := c.Get(1_000_000 + i); ok {
			t.Fatalf("unexpected hit on fresh key %d", 1_000_000+i)
		}
	}
	if c.Migrating() || c.PendingMigration() != 0 {
		t.Fatalf("migration not drained: migrating=%v pending=%d", c.Migrating(), c.PendingMigration())
	}
	snap := c.Snapshot()
	if snap.FlushEvictions == 0 {
		t.Fatal("no flush evictions recorded")
	}
	if snap.Len > snap.Capacity {
		t.Fatalf("Len %d > capacity %d", snap.Len, snap.Capacity)
	}
}

// TestRehashEveryMisses checks the automatic Section 6 schedule. The
// trigger fires asynchronously, so the assertion polls briefly.
func TestRehashEveryMisses(t *testing.T) {
	c, err := New(Config{Capacity: 32, Alpha: 4, Seed: 3, RehashEveryMisses: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 350; i++ {
		c.Get(i) // every Get misses: fresh keys, nothing inserted
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.Snapshot().Rehashes != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("rehashes = %d after 350 misses with period 100, want 3", c.Snapshot().Rehashes)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBackToBackRehash checks the "at most two live hash functions"
// invariant: a second Rehash during a migration force-completes the first.
func TestBackToBackRehash(t *testing.T) {
	c, err := New(Config{Capacity: 128, Alpha: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 128; i++ {
		c.Put(i, i)
	}
	c.Rehash()
	p1 := c.PendingMigration()
	c.Rehash() // force-completes the first migration
	snap := c.Snapshot()
	if snap.Rehashes != 2 {
		t.Fatalf("rehashes = %d, want 2", snap.Rehashes)
	}
	if int(snap.FlushEvictions) < p1 {
		t.Fatalf("flush evictions %d < first migration's pending %d", snap.FlushEvictions, p1)
	}
	if snap.Len > snap.Capacity {
		t.Fatalf("Len %d > capacity %d", snap.Len, snap.Capacity)
	}
}

// TestCounterConservation is the satellite stress test: under full parallel
// contention (with -race), hits + misses must equal the total number of Get
// calls, and occupancy invariants must hold — evidence that the per-bucket
// counters lose nothing.
func TestCounterConservation(t *testing.T) {
	c, err := New(Config{Capacity: 512, Alpha: 8, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const getsPerG = 20_000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < getsPerG; i++ {
				key := uint64((g*7 + i) % 1024)
				if _, ok := c.Get(key); !ok {
					c.Put(key, key)
				}
			}
		}(g)
	}
	wg.Wait()

	hits, misses := c.Stats()
	total := uint64(goroutines * getsPerG)
	if hits+misses != total {
		t.Fatalf("hits %d + misses %d = %d, want %d", hits, misses, hits+misses, total)
	}
	// Per-shard Get counters must add up to the same totals.
	var shardHits, shardMisses uint64
	for _, sh := range c.ShardStats() {
		shardHits += sh.Hits
		shardMisses += sh.Misses
	}
	if shardHits != hits || shardMisses != misses {
		t.Fatalf("shard sums %d/%d != global %d/%d", shardHits, shardMisses, hits, misses)
	}
	if c.Len() > c.Capacity() {
		t.Fatalf("Len %d > capacity %d", c.Len(), c.Capacity())
	}
}

// TestConcurrentRehashStress rehashes repeatedly while readers and writers
// hammer the cache; run with -race. Invariants: counters conserve, the
// migration always drains, and occupancy never exceeds capacity.
func TestConcurrentRehashStress(t *testing.T) {
	c, err := New(Config{Capacity: 512, Alpha: 8, Seed: 23, MigrationPerMiss: 2})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 6
	const opsPerG = 10_000
	var wg sync.WaitGroup
	gets := make([]uint64, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsPerG; i++ {
				key := uint64((g*opsPerG + i) % 2048)
				switch i % 4 {
				case 0, 1:
					gets[g]++
					if v, ok := c.Get(key); ok && v != key {
						t.Errorf("Get(%d) = %v", key, v)
						return
					}
				case 2:
					c.Put(key, key)
				case 3:
					c.Delete(key)
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			c.Rehash()
		}
	}()
	wg.Wait()
	<-done

	// Drain any in-flight migration with misses on fresh keys.
	for i := uint64(0); c.Migrating(); i++ {
		if i > 10_000 {
			t.Fatalf("migration failed to drain: pending %d", c.PendingMigration())
		}
		c.Get(uint64(1)<<40 + i)
	}

	hits, misses := c.Stats()
	var wantGets uint64
	for _, g := range gets {
		wantGets += g
	}
	// The drain loop above also issued Gets; count them via totals instead.
	if hits+misses < wantGets {
		t.Fatalf("hits %d + misses %d < issued gets %d", hits, misses, wantGets)
	}
	snap := c.Snapshot()
	if snap.Len > snap.Capacity {
		t.Fatalf("Len %d > capacity %d", snap.Len, snap.Capacity)
	}
	if snap.Pending != 0 {
		t.Fatalf("pending %d after drain", snap.Pending)
	}
	if snap.Rehashes != 50 {
		t.Fatalf("rehashes = %d, want 50", snap.Rehashes)
	}
	// Occupancy bookkeeping must agree with a fresh bucket-by-bucket count.
	if got := c.Len(); got != int(c.occupancy.Load()) {
		t.Fatalf("occupancy counter %d != recount %d", c.occupancy.Load(), got)
	}
}

// TestRehashWithNonLRUPolicy exercises migration under a different bucket
// policy (clock), covering the Policy-factory path.
func TestRehashWithNonLRUPolicy(t *testing.T) {
	c, err := New(Config{
		Capacity: 64, Alpha: 4, Seed: 9,
		Policy: policy.NewFactory(policy.ClockKind, 9),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 64; i++ {
		c.Put(i, i)
	}
	c.Rehash()
	for i := uint64(0); i < 64; i++ {
		if v, ok := c.Get(i); ok && v != i {
			t.Fatalf("Get(%d) = %v", i, v)
		}
	}
	for i := uint64(0); c.Migrating(); i++ {
		c.Get(1_000_000 + i)
	}
	if c.Len() > c.Capacity() {
		t.Fatalf("Len %d > capacity", c.Len())
	}
}
