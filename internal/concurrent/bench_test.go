package concurrent

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// BenchmarkAlphaSweepParallel measures parallel Get/Put throughput as α
// varies at fixed capacity k. Smaller α means more buckets, hence fewer
// lock collisions and higher throughput — the contention half of the
// paper's tradeoff (the miss-cost half is measured end to end by
// internal/server's benchmark and the E1/E2 experiments).
func BenchmarkAlphaSweepParallel(b *testing.B) {
	const k = 1 << 14
	for _, alpha := range []int{1, 4, 16, 64, 256, 1024, k} {
		b.Run(fmt.Sprintf("alpha=%d", alpha), func(b *testing.B) {
			c, err := New(Config{Capacity: k, Alpha: alpha, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			// Warm the cache with a working set around capacity.
			for i := uint64(0); i < k; i++ {
				c.Put(i, i)
			}
			var ctr atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				// Each goroutine walks its own arithmetic stream over a
				// universe slightly above k: mostly hits, with misses and
				// Put traffic mixed in.
				base := ctr.Add(1) * 0x9e3779b9
				i := uint64(0)
				for pb.Next() {
					key := (base + i*7) % (k + k/8)
					if _, ok := c.Get(key); !ok {
						c.Put(key, key)
					}
					i++
				}
			})
		})
	}
}

// BenchmarkSnapshotFastPath is the before/after for the atomic hasher-pair
// snapshot: the same parallel read-mostly load with the fast path enabled
// (steady-state reads touch only their bucket lock) versus forced onto the
// old rehashMu.RLock slow path (every read touches the shared RWMutex cache
// line). The gap is the cost of reader-count cache-line bouncing.
func BenchmarkSnapshotFastPath(b *testing.B) {
	const k = 1 << 14
	for _, mode := range []string{"atomic", "rwlock"} {
		b.Run(mode, func(b *testing.B) {
			disableFastPath = mode == "rwlock"
			defer func() { disableFastPath = false }()
			c, err := New(Config{Capacity: k, Alpha: 16, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			for i := uint64(0); i < k; i++ {
				c.Put(i, i)
			}
			var ctr atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				base := ctr.Add(1) * 0x9e3779b9
				i := uint64(0)
				for pb.Next() {
					key := (base + i*7) % k
					if _, ok := c.Get(key); !ok {
						c.Put(key, key)
					}
					i++
				}
			})
		})
	}
}

// BenchmarkRehashDuringLoad measures Get throughput while online rehashes
// fire on the paper's every-N-misses schedule, quantifying the overhead of
// live migration.
func BenchmarkRehashDuringLoad(b *testing.B) {
	const k = 1 << 12
	for _, every := range []uint64{0, 1 << 14, 1 << 10} {
		name := "rehash=off"
		if every > 0 {
			name = fmt.Sprintf("rehash=every%d", every)
		}
		b.Run(name, func(b *testing.B) {
			c, err := New(Config{Capacity: k, Alpha: 16, Seed: 1, RehashEveryMisses: every})
			if err != nil {
				b.Fatal(err)
			}
			var ctr atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				base := ctr.Add(1) * 0x9e3779b9
				i := uint64(0)
				for pb.Next() {
					key := (base + i*3) % (2 * k)
					if _, ok := c.Get(key); !ok {
						c.Put(key, key)
					}
					i++
				}
			})
		})
	}
}
