package concurrent

import (
	"testing"
	"time"
)

func TestDefaultEveryMisses(t *testing.T) {
	cases := []struct {
		k    int
		want uint64
	}{
		{1, 1},
		{2, 2},        // log₂ 2 = 1
		{1024, 10240}, // 1024 · 10
		{1 << 16, 16 << 16},
		{1000, 10000}, // ⌈log₂ 1000⌉ = 10
	}
	for _, c := range cases {
		if got := DefaultEveryMisses(c.k); got != c.want {
			t.Errorf("DefaultEveryMisses(%d) = %d, want %d", c.k, got, c.want)
		}
	}
}

// TestConflictTriggeredRehash drives a tiny direct-mapped cache with
// colliding inserts and checks that the adaptive schedule fires off the
// conflict-eviction counter, not the miss counter.
func TestConflictTriggeredRehash(t *testing.T) {
	c, err := New(Config{Capacity: 8, Alpha: 1, Seed: 1, RehashEveryConflicts: 16})
	if err != nil {
		t.Fatal(err)
	}
	// Pure Put traffic: misses stay at zero, so only the conflict trigger
	// can start a rehash. With 8 direct-mapped buckets and a universe of
	// 64, collisions are immediate and plentiful.
	deadline := time.Now().Add(5 * time.Second)
	for i := uint64(0); ; i++ {
		c.Put(i%64, i)
		snap := c.Snapshot()
		if snap.Rehashes > 0 {
			if snap.Hits+snap.Misses != 0 {
				t.Fatalf("unexpected Get traffic: %d hits, %d misses", snap.Hits, snap.Misses)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no rehash after %d puts, %d conflict evictions",
				i+1, snap.ConflictEvictions)
		}
	}
}
