// Package concurrent implements the paper's motivating software use case
// (Section 1, citing Adas et al. and RocksDB's block cache): a concurrent
// key-value cache built from a set-associative layout. Because the buckets
// of a set-associative cache are independent, each can be guarded by its own
// mutex; a request only contends with requests that hash to the same bucket,
// so throughput scales with the number of buckets. This is exactly the
// "smaller α, bigger benefits" side of the paper's tradeoff — and the
// library's miss-cost analysis (experiments E1/E2) quantifies the other
// side.
package concurrent

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/hashfn"
	"repro/internal/policy"
	"repro/internal/trace"
)

// Cache is a thread-safe set-associative LRU key-value cache with
// per-bucket locking. The zero value is not usable; call New.
type Cache struct {
	buckets []bucket
	hasher  *hashfn.Random
	alpha   int

	hits   atomic.Uint64
	misses atomic.Uint64
}

type bucket struct {
	mu     sync.Mutex
	lru    *policy.LRU
	values map[trace.Item]interface{}
	_      [32]byte // pad to keep hot buckets off shared cache lines
}

// Config describes a concurrent cache.
type Config struct {
	// Capacity is the total number of entries k.
	Capacity int
	// Alpha is the bucket size α; smaller α means more buckets and less
	// lock contention, at the paging cost the paper characterizes. Alpha
	// must divide Capacity. The paper's advice: α slightly above log₂ k
	// captures nearly all of full associativity's hit rate.
	Alpha int
	// Seed drives the indexing hash.
	Seed uint64
}

// New builds a concurrent cache.
func New(cfg Config) (*Cache, error) {
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("concurrent: capacity %d must be positive", cfg.Capacity)
	}
	if cfg.Alpha <= 0 || cfg.Alpha > cfg.Capacity || cfg.Capacity%cfg.Alpha != 0 {
		return nil, fmt.Errorf("concurrent: alpha %d must divide capacity %d", cfg.Alpha, cfg.Capacity)
	}
	n := cfg.Capacity / cfg.Alpha
	c := &Cache{
		buckets: make([]bucket, n),
		hasher:  hashfn.NewRandom(cfg.Seed, n),
		alpha:   cfg.Alpha,
	}
	for i := range c.buckets {
		c.buckets[i].lru = policy.NewLRU(cfg.Alpha)
		c.buckets[i].values = make(map[trace.Item]interface{}, cfg.Alpha)
	}
	return c, nil
}

// Get returns the value cached under key, if any, updating recency.
func (c *Cache) Get(key uint64) (interface{}, bool) {
	b := &c.buckets[c.hasher.Bucket(trace.Item(key))]
	b.mu.Lock()
	defer b.mu.Unlock()
	v, ok := b.values[trace.Item(key)]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	b.lru.Request(trace.Item(key)) // hit: refresh recency
	c.hits.Add(1)
	return v, true
}

// Put caches value under key, evicting the bucket's LRU entry if needed.
// It returns the evicted key and whether an eviction happened.
func (c *Cache) Put(key uint64, value interface{}) (evictedKey uint64, evicted bool) {
	item := trace.Item(key)
	b := &c.buckets[c.hasher.Bucket(item)]
	b.mu.Lock()
	defer b.mu.Unlock()
	_, victim, didEvict := b.lru.Request(item)
	if didEvict {
		delete(b.values, victim)
	}
	b.values[item] = value
	return uint64(victim), didEvict
}

// GetOrLoad returns the cached value for key, or runs load exactly once (per
// miss) to produce and cache it. The load runs outside the bucket lock, so
// concurrent misses for the same key may race and both load; the last writer
// wins, which is the usual contract of lock-free-read caches.
func (c *Cache) GetOrLoad(key uint64, load func() (interface{}, error)) (interface{}, error) {
	if v, ok := c.Get(key); ok {
		return v, nil
	}
	v, err := load()
	if err != nil {
		return nil, err
	}
	c.Put(key, v)
	return v, nil
}

// Delete removes key, reporting whether it was present.
func (c *Cache) Delete(key uint64) bool {
	item := trace.Item(key)
	b := &c.buckets[c.hasher.Bucket(item)]
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.lru.Delete(item) {
		return false
	}
	delete(b.values, item)
	return true
}

// Len returns the total number of cached entries (a racy snapshot).
func (c *Cache) Len() int {
	total := 0
	for i := range c.buckets {
		b := &c.buckets[i]
		b.mu.Lock()
		total += b.lru.Len()
		b.mu.Unlock()
	}
	return total
}

// Capacity returns the total entry capacity k.
func (c *Cache) Capacity() int { return c.alpha * len(c.buckets) }

// Alpha returns the bucket size α.
func (c *Cache) Alpha() int { return c.alpha }

// NumBuckets returns the number of independent buckets (lock granularity).
func (c *Cache) NumBuckets() int { return len(c.buckets) }

// Stats returns cumulative hit/miss counters for Get calls.
func (c *Cache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}
