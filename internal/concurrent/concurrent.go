// Package concurrent implements the paper's motivating software use case
// (Section 1, citing Adas et al. and RocksDB's block cache): a concurrent
// key-value cache built from a set-associative layout. Because the buckets
// of a set-associative cache are independent, each can be guarded by its own
// mutex; a request only contends with requests that hash to the same bucket,
// so throughput scales with the number of buckets. This is exactly the
// "smaller α, bigger benefits" side of the paper's tradeoff — and the
// library's miss-cost analysis (experiments E1/E2) quantifies the other
// side.
//
// The cache also supports *online* incremental rehashing: the ⟨LRU⟩IF
// algorithm of Section 6.1, ported from internal/core to the concurrent
// setting. A rehash draws a fresh indexing hash while the old one stays
// live; items migrate to their new bucket lazily when touched, and every
// miss force-evicts a bounded number of not-yet-remapped items, so no
// stop-the-world flush is ever needed and no entry is dropped except by
// eviction. Rehash *initiation* does pause concurrent operations briefly —
// marking every resident as awaiting remapping takes the cache-wide write
// lock for O(residents) — but the migration itself runs under per-bucket
// locks amortized across subsequent traffic. At most two hash functions
// are live at any time.
package concurrent

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/hashfn"
	"repro/internal/policy"
	"repro/internal/trace"
)

// Cache is a thread-safe set-associative key-value cache with per-bucket
// locking and optional online rehashing. The zero value is not usable;
// call New.
type Cache struct {
	buckets []bucket
	alpha   int
	seeds   *hashfn.SeedSequence

	// pair is the atomically published {hasher, oldHasher} snapshot. When no
	// migration is in flight (pair.old == nil) operations run a lock-free
	// fast path: load the pair, lock the one target bucket, and re-validate
	// that the pair is unchanged. Rehash publishes its new pair *before* the
	// marking pass touches any bucket lock, so a fast-path operation that
	// re-validates successfully under its bucket lock is guaranteed either
	// to run entirely before the rehash is visible (and its entries are then
	// marked by the pass like any other resident) or to detect the swap and
	// retry on the slow path. Reads therefore touch no shared cache line
	// beyond their own bucket while the cache is stable.
	pair atomic.Pointer[hasherPair]

	// rehashMu serializes the slow path against rehash initiation and
	// migration completion. Operations take the read side only while a
	// migration is in flight (or when fast-path validation fails); Rehash
	// and maybeFinishMigration take the write side.
	rehashMu sync.RWMutex

	// migrating mirrors oldHasher != nil so the post-operation fast path can
	// check for migration completion without taking rehashMu.
	migrating atomic.Bool
	// pending counts items still resident under the old hash.
	pending atomic.Int64
	// sweepCursor is the next bucket index the forced-eviction sweep visits.
	sweepCursor atomic.Int64

	rehashEveryMisses    uint64
	rehashEveryConflicts uint64
	migrationPerMiss     int

	hits              atomic.Uint64
	misses            atomic.Uint64
	evictions         atomic.Uint64
	conflictEvictions atomic.Uint64
	flushEvictions    atomic.Uint64
	rehashes          atomic.Uint64
	// occupancy tracks the total entry count so evictions can be classified
	// as conflict (free slots existed elsewhere) without a global lock.
	occupancy atomic.Int64
}

// hasherPair is one immutable snapshot of the live indexing function(s).
// old is non-nil exactly while an incremental migration is in progress.
type hasherPair struct {
	hasher *hashfn.Random
	old    *hashfn.Random
}

// disableFastPath forces every operation onto the rehashMu.RLock slow path.
// It exists only so the before/after benchmark can measure what the atomic
// snapshot buys; it is never set outside tests.
var disableFastPath bool

type bucket struct {
	mu     sync.Mutex
	pol    policy.Policy
	values map[trace.Item]interface{}
	// old marks residents that have not been remapped since the last rehash
	// began. Items in old are indexed by the *previous* hash function.
	old map[trace.Item]struct{}

	// Per-shard Get counters, guarded by mu.
	hits      uint64
	misses    uint64
	evictions uint64

	_ [32]byte // pad to keep hot buckets off shared cache lines
}

// Config describes a concurrent cache.
type Config struct {
	// Capacity is the total number of entries k.
	Capacity int
	// Alpha is the bucket size α; smaller α means more buckets and less
	// lock contention, at the paging cost the paper characterizes. Alpha
	// must divide Capacity. The paper's advice: α slightly above log₂ k
	// captures nearly all of full associativity's hit rate.
	Alpha int
	// Seed drives the indexing hash and the rehash seed schedule.
	Seed uint64
	// Policy stamps out one replacement-policy instance per bucket.
	// Nil means LRU.
	Policy policy.Factory
	// RehashEveryMisses, when nonzero, starts an online incremental rehash
	// every RehashEveryMisses Get misses — the paper's "rehash every poly(k)
	// misses" schedule (Section 6), which keeps the cache competitive on
	// arbitrarily long request sequences. DefaultEveryMisses derives the
	// paper-guided value from the capacity.
	RehashEveryMisses uint64
	// RehashEveryConflicts, when nonzero, additionally starts a rehash every
	// RehashEveryConflicts conflict evictions (evictions that happened while
	// free slots existed elsewhere). Conflict evictions are exactly the
	// currency in which an unlucky — or adversarially exploited — hash
	// function pays, so this is an adaptive trigger: a well-hashed workload
	// almost never trips it, while a Theorem 4 cycler does so long before
	// the miss-count schedule would.
	RehashEveryConflicts uint64
	// MigrationPerMiss bounds the forced evictions of not-yet-remapped items
	// performed per miss during a migration; zero means 1 (the gentlest
	// schedule the paper allows).
	MigrationPerMiss int
}

// New builds a concurrent cache.
func New(cfg Config) (*Cache, error) {
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("concurrent: capacity %d must be positive", cfg.Capacity)
	}
	if cfg.Alpha <= 0 || cfg.Alpha > cfg.Capacity || cfg.Capacity%cfg.Alpha != 0 {
		return nil, fmt.Errorf("concurrent: alpha %d must divide capacity %d", cfg.Alpha, cfg.Capacity)
	}
	factory := cfg.Policy
	if factory == nil {
		factory = func(c int) policy.Policy { return policy.NewLRU(c) }
	}
	n := cfg.Capacity / cfg.Alpha
	c := &Cache{
		buckets:              make([]bucket, n),
		seeds:                hashfn.NewSeedSequence(cfg.Seed),
		alpha:                cfg.Alpha,
		rehashEveryMisses:    cfg.RehashEveryMisses,
		rehashEveryConflicts: cfg.RehashEveryConflicts,
		migrationPerMiss:     cfg.MigrationPerMiss,
	}
	if c.migrationPerMiss <= 0 {
		c.migrationPerMiss = 1
	}
	c.pair.Store(&hasherPair{hasher: hashfn.NewRandom(c.seeds.Next(), n)})
	for i := range c.buckets {
		c.buckets[i].pol = factory(cfg.Alpha)
		c.buckets[i].values = make(map[trace.Item]interface{}, cfg.Alpha)
	}
	return c, nil
}

// DefaultEveryMisses returns the paper-guided automatic rehash period for a
// cache of capacity k: k·⌈log₂ k⌉ misses. Section 6 requires only that the
// period be poly(k); the k log k choice is the smallest natural ω(k) period,
// which amortizes the O(k) worst-case cost of one migration to o(1) per
// miss while still rehashing often enough that no fixed hash function is
// exposed to the adversary's Θ(k^1.01)-length defeating sequence between
// flushes.
func DefaultEveryMisses(k int) uint64 {
	if k <= 1 {
		return 1
	}
	log := 0
	for n := k - 1; n > 0; n >>= 1 {
		log++
	}
	return uint64(k) * uint64(log)
}

// Get returns the value cached under key, if any, updating recency. During a
// migration a hit on a not-yet-remapped item moves it to its new bucket, and
// a miss force-evicts up to MigrationPerMiss old residents (Section 6.1).
func (c *Cache) Get(key uint64) (interface{}, bool) {
	item := trace.Item(key)
	v, ok, fast := c.getFast(item)
	if !fast {
		c.rehashMu.RLock()
		p := c.pair.Load()
		v, ok = c.lookup(p, item)
		if !ok && p.old != nil {
			c.migrateSteps()
		}
		c.rehashMu.RUnlock()
		c.maybeFinishMigration()
	}

	if ok {
		c.hits.Add(1)
		return v, true
	}
	m := c.misses.Add(1)
	if c.rehashEveryMisses > 0 && m%c.rehashEveryMisses == 0 {
		// Initiate asynchronously so the request that trips the schedule
		// does not absorb the O(residents) marking pause itself. At most
		// one goroutine per period crossing; Rehash serializes internally.
		go c.Rehash()
	}
	return nil, false
}

// getFast is the single-bucket fast path: valid only while no migration is
// in flight. The pair re-validation under the bucket lock is what makes it
// safe; see the pair field comment. The third return reports whether the
// fast path applied at all.
func (c *Cache) getFast(item trace.Item) (interface{}, bool, bool) {
	p := c.pair.Load()
	if p.old != nil || disableFastPath {
		return nil, false, false
	}
	b := &c.buckets[p.hasher.Bucket(item)]
	b.mu.Lock()
	if c.pair.Load() != p {
		b.mu.Unlock()
		return nil, false, false
	}
	v, ok := b.values[item]
	if !ok {
		b.misses++
		b.mu.Unlock()
		return nil, false, true
	}
	b.pol.Request(item)
	b.hits++
	b.mu.Unlock()
	return v, true, true
}

// lookup finds item under the live hash function(s) of pair p. Caller holds
// rehashMu.RLock, under which p is stable.
func (c *Cache) lookup(p *hasherPair, item trace.Item) (interface{}, bool) {
	nb := p.hasher.Bucket(item)
	ob := nb
	if p.old != nil {
		ob = p.old.Bucket(item)
	}
	if ob == nb {
		b := &c.buckets[nb]
		b.mu.Lock()
		defer b.mu.Unlock()
		v, ok := b.values[item]
		if !ok {
			b.misses++
			return nil, false
		}
		c.clearOldMark(b, item)
		b.pol.Request(item)
		b.hits++
		return v, true
	}

	bn, bo := &c.buckets[nb], &c.buckets[ob]
	c.lockPair(nb, ob)
	defer c.unlockPair(nb, ob)

	if v, ok := bn.values[item]; ok {
		bn.pol.Request(item)
		bn.hits++
		return v, true
	}
	if _, isOld := bo.old[item]; isOld {
		// Hit on a non-remapped item: move it to its new bucket, which may
		// evict from there (Section 6.1).
		v := bo.values[item]
		bo.pol.Delete(item)
		delete(bo.values, item)
		delete(bo.old, item)
		c.pending.Add(-1)
		c.occupancy.Add(-1)
		c.insertLocked(bn, item, v)
		bn.hits++
		return v, true
	}
	bn.misses++
	return nil, false
}

// Put caches value under key, evicting from the target bucket if needed.
// It returns the evicted key and whether an eviction happened.
func (c *Cache) Put(key uint64, value interface{}) (evictedKey uint64, evicted bool) {
	item := trace.Item(key)
	if victim, didEvict, fast := c.putFast(item, value); fast {
		return uint64(victim), didEvict
	}
	c.rehashMu.RLock()
	p := c.pair.Load()
	nb := p.hasher.Bucket(item)
	ob := nb
	if p.old != nil {
		ob = p.old.Bucket(item)
	}
	var victim trace.Item
	var didEvict bool
	if ob == nb {
		b := &c.buckets[nb]
		b.mu.Lock()
		c.clearOldMark(b, item)
		victim, didEvict = c.insertLocked(b, item, value)
		b.mu.Unlock()
	} else {
		bn, bo := &c.buckets[nb], &c.buckets[ob]
		c.lockPair(nb, ob)
		if _, isOld := bo.old[item]; isOld {
			// Overwrite of a non-remapped item: drop the stale resident and
			// store fresh in the new bucket.
			bo.pol.Delete(item)
			delete(bo.values, item)
			delete(bo.old, item)
			c.pending.Add(-1)
			c.occupancy.Add(-1)
		}
		victim, didEvict = c.insertLocked(bn, item, value)
		c.unlockPair(nb, ob)
	}
	c.rehashMu.RUnlock()
	c.maybeFinishMigration()
	return uint64(victim), didEvict
}

// putFast is Put's single-bucket fast path; see getFast.
func (c *Cache) putFast(item trace.Item, value interface{}) (victim trace.Item, didEvict, fast bool) {
	p := c.pair.Load()
	if p.old != nil || disableFastPath {
		return 0, false, false
	}
	b := &c.buckets[p.hasher.Bucket(item)]
	b.mu.Lock()
	if c.pair.Load() != p {
		b.mu.Unlock()
		return 0, false, false
	}
	victim, didEvict = c.insertLocked(b, item, value)
	b.mu.Unlock()
	return victim, didEvict, true
}

// insertLocked stores item→value in bucket b, whose mutex the caller holds,
// handling eviction bookkeeping. It returns the (single) reported victim.
func (c *Cache) insertLocked(b *bucket, item trace.Item, value interface{}) (victim trace.Item, didEvict bool) {
	hit, victim, didEvict := b.pol.Request(item)
	if didEvict {
		delete(b.values, victim)
		c.clearOldMark(b, victim)
		b.evictions++
		c.evictions.Add(1)
		// Occupancy is unchanged (one out, one in); if the cache as a whole
		// still has free slots, this eviction is a pure conflict eviction —
		// the associativity restriction, not capacity, caused it.
		if c.occupancy.Load() < int64(c.Capacity()) {
			cv := c.conflictEvictions.Add(1)
			if c.rehashEveryConflicts > 0 && cv%c.rehashEveryConflicts == 0 {
				// Adaptive schedule: a burst of conflict evictions means the
				// current hash is being exploited; redraw it. Asynchronous
				// for the same reason as the miss-count trigger.
				go c.Rehash()
			}
		}
	} else if !hit {
		c.occupancy.Add(1)
	}
	// Non-lazy policies (flush-when-full) may evict a whole batch beyond the
	// single reported victim.
	if be, ok := b.pol.(policy.BatchEvictions); ok {
		for _, ev := range be.TakeEvictions() {
			if _, present := b.values[ev]; present {
				delete(b.values, ev)
				c.clearOldMark(b, ev)
				b.evictions++
				c.evictions.Add(1)
				c.occupancy.Add(-1)
			}
		}
	}
	b.values[item] = value
	return victim, didEvict
}

// clearOldMark removes item's awaiting-remap marker, if present. Caller
// holds b.mu.
func (c *Cache) clearOldMark(b *bucket, item trace.Item) {
	if b.old == nil {
		return
	}
	if _, ok := b.old[item]; ok {
		delete(b.old, item)
		c.pending.Add(-1)
	}
}

// lockPair locks two distinct buckets in index order, avoiding deadlock
// between operations whose old/new buckets cross.
func (c *Cache) lockPair(i, j int) {
	if i > j {
		i, j = j, i
	}
	c.buckets[i].mu.Lock()
	c.buckets[j].mu.Lock()
}

func (c *Cache) unlockPair(i, j int) {
	c.buckets[i].mu.Unlock()
	c.buckets[j].mu.Unlock()
}

// Update atomically reads and conditionally replaces the value cached
// under key: fn receives the current value (nil, false when absent) while
// the owning bucket's lock is held and returns the value to store plus
// whether to store it at all. A false second result leaves the cache
// untouched — the read-check-write is one critical section, so no
// concurrent Put or Update can interleave between fn's decision and the
// store. This is the primitive behind the server's versioned writes: a
// compare on the stored version and the conditional overwrite must be
// atomic or the lost-update race they exist to kill reopens at bucket
// scale.
//
// fn must not call back into the cache, and it may be invoked more than
// once for a single Update (a concurrent rehash can force the fast path to
// retry), so it must behave as a pure function of its argument. Update
// returns whether a store happened and, when it did, Put's eviction
// report.
func (c *Cache) Update(key uint64, fn func(old interface{}, present bool) (interface{}, bool)) (stored bool, evictedKey uint64, evicted bool) {
	item := trace.Item(key)
	if st, victim, didEvict, fast := c.updateFast(item, fn); fast {
		return st, uint64(victim), didEvict
	}
	c.rehashMu.RLock()
	p := c.pair.Load()
	nb := p.hasher.Bucket(item)
	ob := nb
	if p.old != nil {
		ob = p.old.Bucket(item)
	}
	var victim trace.Item
	var didEvict bool
	if ob == nb {
		b := &c.buckets[nb]
		b.mu.Lock()
		old, present := b.values[item]
		if v, store := fn(old, present); store {
			stored = true
			c.clearOldMark(b, item)
			victim, didEvict = c.insertLocked(b, item, v)
		}
		b.mu.Unlock()
	} else {
		bn, bo := &c.buckets[nb], &c.buckets[ob]
		c.lockPair(nb, ob)
		old, present := bn.values[item]
		inOld := false
		if !present {
			if _, isOld := bo.old[item]; isOld {
				old, present = bo.values[item], true
				inOld = true
			}
		}
		if v, store := fn(old, present); store {
			stored = true
			if inOld {
				// Overwrite of a non-remapped item: drop the stale resident
				// and store fresh in the new bucket, exactly like Put.
				bo.pol.Delete(item)
				delete(bo.values, item)
				delete(bo.old, item)
				c.pending.Add(-1)
				c.occupancy.Add(-1)
			}
			victim, didEvict = c.insertLocked(bn, item, v)
		}
		c.unlockPair(nb, ob)
	}
	c.rehashMu.RUnlock()
	c.maybeFinishMigration()
	return stored, uint64(victim), didEvict
}

// updateFast is Update's single-bucket fast path; see getFast.
func (c *Cache) updateFast(item trace.Item, fn func(old interface{}, present bool) (interface{}, bool)) (stored bool, victim trace.Item, didEvict, fast bool) {
	p := c.pair.Load()
	if p.old != nil || disableFastPath {
		return false, 0, false, false
	}
	b := &c.buckets[p.hasher.Bucket(item)]
	b.mu.Lock()
	if c.pair.Load() != p {
		b.mu.Unlock()
		return false, 0, false, false
	}
	old, present := b.values[item]
	if v, store := fn(old, present); store {
		stored = true
		victim, didEvict = c.insertLocked(b, item, v)
	}
	b.mu.Unlock()
	return stored, victim, didEvict, true
}

// GetOrLoad returns the cached value for key, or runs load exactly once (per
// miss) to produce and cache it. The load runs outside the bucket lock, so
// concurrent misses for the same key may race and both load; the last writer
// wins, which is the usual contract of lock-free-read caches.
func (c *Cache) GetOrLoad(key uint64, load func() (interface{}, error)) (interface{}, error) {
	if v, ok := c.Get(key); ok {
		return v, nil
	}
	v, err := load()
	if err != nil {
		return nil, err
	}
	c.Put(key, v)
	return v, nil
}

// Delete removes key, reporting whether it was present.
func (c *Cache) Delete(key uint64) bool {
	item := trace.Item(key)
	if ok, fast := c.deleteFast(item); fast {
		return ok
	}
	ok := c.delete(item)
	c.maybeFinishMigration()
	return ok
}

// deleteFast is Delete's single-bucket fast path; see getFast.
func (c *Cache) deleteFast(item trace.Item) (ok, fast bool) {
	p := c.pair.Load()
	if p.old != nil || disableFastPath {
		return false, false
	}
	b := &c.buckets[p.hasher.Bucket(item)]
	b.mu.Lock()
	if c.pair.Load() != p {
		b.mu.Unlock()
		return false, false
	}
	if !b.pol.Delete(item) {
		b.mu.Unlock()
		return false, true
	}
	delete(b.values, item)
	c.occupancy.Add(-1)
	b.mu.Unlock()
	return true, true
}

func (c *Cache) delete(item trace.Item) bool {
	c.rehashMu.RLock()
	defer c.rehashMu.RUnlock()
	p := c.pair.Load()
	nb := p.hasher.Bucket(item)
	ob := nb
	if p.old != nil {
		ob = p.old.Bucket(item)
	}
	if ob == nb {
		b := &c.buckets[nb]
		b.mu.Lock()
		defer b.mu.Unlock()
		if !b.pol.Delete(item) {
			return false
		}
		delete(b.values, item)
		c.clearOldMark(b, item)
		c.occupancy.Add(-1)
		return true
	}
	bn, bo := &c.buckets[nb], &c.buckets[ob]
	c.lockPair(nb, ob)
	defer c.unlockPair(nb, ob)
	if bn.pol.Delete(item) {
		delete(bn.values, item)
		c.occupancy.Add(-1)
		return true
	}
	if _, isOld := bo.old[item]; isOld {
		bo.pol.Delete(item)
		delete(bo.values, item)
		delete(bo.old, item)
		c.pending.Add(-1)
		c.occupancy.Add(-1)
		return true
	}
	return false
}

// Rehash begins an online incremental rehash: a fresh indexing hash is
// drawn, every current resident is marked as awaiting remapping, and the
// migration proceeds under live traffic — hits move items to their new
// bucket, misses force-evict stragglers. If a previous migration is still in
// progress it is force-completed first, so at most two hash functions are
// ever live (the Section 6.1 invariant "every rehash finishes before the
// next one begins").
//
// Rehash blocks all cache operations for the duration of the marking pass
// (O(residents) under the write lock); the migration that follows is fully
// concurrent. See the package comment.
func (c *Cache) Rehash() {
	c.rehashMu.Lock()
	defer c.rehashMu.Unlock()
	p := c.pair.Load()
	if p.old != nil {
		for i := range c.buckets {
			b := &c.buckets[i]
			b.mu.Lock()
			for it := range b.old {
				b.pol.Delete(it)
				delete(b.values, it)
				c.occupancy.Add(-1)
				c.flushEvictions.Add(1)
			}
			b.old = nil
			b.mu.Unlock()
		}
		c.pending.Store(0)
		p = &hasherPair{hasher: p.hasher}
		c.pair.Store(p)
		c.migrating.Store(false)
	}

	// Publish the new pair BEFORE the marking pass takes any bucket lock.
	// Fast-path operations re-validate the pair under their bucket lock:
	// one that validated against the old pair finished before this store
	// became visible through its bucket's mutex, so the marking pass below
	// will see (and mark) whatever it inserted; one that observes the new
	// pair falls back to the slow path and blocks on rehashMu until the
	// marking pass is done.
	c.pair.Store(&hasherPair{
		hasher: hashfn.NewRandom(c.seeds.Next(), len(c.buckets)),
		old:    p.hasher,
	})
	total := 0
	for i := range c.buckets {
		b := &c.buckets[i]
		b.mu.Lock()
		items := b.pol.Items()
		b.old = make(map[trace.Item]struct{}, len(items))
		for _, it := range items {
			b.old[it] = struct{}{}
		}
		total += len(items)
		b.mu.Unlock()
	}
	c.rehashes.Add(1)
	c.sweepCursor.Store(0)
	c.pending.Store(int64(total))
	if total == 0 {
		// Nothing to migrate: the rehash completes immediately.
		c.pair.Store(&hasherPair{hasher: c.pair.Load().hasher})
		c.migrating.Store(false)
		return
	}
	c.migrating.Store(true)
}

// migrateSteps force-evicts up to migrationPerMiss not-yet-remapped items,
// sweeping buckets in order. Caller holds rehashMu.RLock and no bucket
// locks.
func (c *Cache) migrateSteps() {
	n := int64(len(c.buckets))
	for done := 0; done < c.migrationPerMiss; {
		i := c.sweepCursor.Load()
		if i >= n {
			return
		}
		b := &c.buckets[i]
		b.mu.Lock()
		evicted := false
		for it := range b.old {
			b.pol.Delete(it)
			delete(b.values, it)
			delete(b.old, it)
			c.pending.Add(-1)
			c.occupancy.Add(-1)
			c.flushEvictions.Add(1)
			evicted = true
			break
		}
		drained := len(b.old) == 0
		b.mu.Unlock()
		if evicted {
			done++
		}
		if drained {
			c.sweepCursor.CompareAndSwap(i, i+1)
		}
	}
}

// maybeFinishMigration retires the old hash function once every resident has
// been remapped or evicted. Called after operations release rehashMu.
func (c *Cache) maybeFinishMigration() {
	if !c.migrating.Load() || c.pending.Load() != 0 {
		return
	}
	c.rehashMu.Lock()
	if p := c.pair.Load(); p.old != nil && c.pending.Load() == 0 {
		c.pair.Store(&hasherPair{hasher: p.hasher})
		c.migrating.Store(false)
	}
	c.rehashMu.Unlock()
}

// Migrating reports whether an incremental rehash is in progress.
func (c *Cache) Migrating() bool { return c.migrating.Load() }

// PendingMigration returns the number of items still awaiting remapping.
func (c *Cache) PendingMigration() int { return int(c.pending.Load()) }

// Len returns the total number of cached entries (a racy snapshot).
func (c *Cache) Len() int {
	total := 0
	for i := range c.buckets {
		b := &c.buckets[i]
		b.mu.Lock()
		total += b.pol.Len()
		b.mu.Unlock()
	}
	return total
}

// Keys returns a racy snapshot of all resident keys, bucket by bucket.
// Entries inserted or evicted while the snapshot is taken may or may not
// appear; no key is reported twice.
func (c *Cache) Keys() []uint64 {
	out := make([]uint64, 0, c.occupancy.Load())
	for i := range c.buckets {
		b := &c.buckets[i]
		b.mu.Lock()
		for it := range b.values {
			out = append(out, uint64(it))
		}
		b.mu.Unlock()
	}
	return out
}

// Entries visits every resident entry, bucket by bucket, with the owning
// bucket's lock held — a racy snapshot with the same guarantees as Keys
// (entries inserted or evicted mid-walk may or may not appear, none twice),
// but carrying the values, so callers enumerating versioned records need
// not re-read each key. visit runs under a bucket lock: it must be cheap,
// must not block, and must not call back into the cache. The walk touches
// no policy state, so an enumeration never perturbs recency.
func (c *Cache) Entries(visit func(key uint64, v interface{})) {
	for i := range c.buckets {
		b := &c.buckets[i]
		b.mu.Lock()
		for it, v := range b.values {
			visit(uint64(it), v)
		}
		b.mu.Unlock()
	}
}

// DeleteIf removes key only if fn, called with the current value under the
// owning bucket's lock, returns true. The read-check-delete is one critical
// section — the conditional mirror of Update — so a concurrent write cannot
// land between fn's decision and the removal. It reports whether a delete
// happened; an absent key never invokes fn. This is the primitive behind
// tombstone reaping: "delete this tombstone unless someone revived the key
// since I scanned it" must be atomic or the reap races a reviving write.
func (c *Cache) DeleteIf(key uint64, fn func(v interface{}) bool) bool {
	ok := c.deleteIf(trace.Item(key), fn)
	c.maybeFinishMigration()
	return ok
}

func (c *Cache) deleteIf(item trace.Item, fn func(v interface{}) bool) bool {
	c.rehashMu.RLock()
	defer c.rehashMu.RUnlock()
	p := c.pair.Load()
	nb := p.hasher.Bucket(item)
	ob := nb
	if p.old != nil {
		ob = p.old.Bucket(item)
	}
	if ob == nb {
		b := &c.buckets[nb]
		b.mu.Lock()
		defer b.mu.Unlock()
		v, present := b.values[item]
		if !present || !fn(v) {
			return false
		}
		b.pol.Delete(item)
		delete(b.values, item)
		c.clearOldMark(b, item)
		c.occupancy.Add(-1)
		return true
	}
	bn, bo := &c.buckets[nb], &c.buckets[ob]
	c.lockPair(nb, ob)
	defer c.unlockPair(nb, ob)
	if v, present := bn.values[item]; present {
		if !fn(v) {
			return false
		}
		bn.pol.Delete(item)
		delete(bn.values, item)
		c.occupancy.Add(-1)
		return true
	}
	if _, isOld := bo.old[item]; isOld {
		if !fn(bo.values[item]) {
			return false
		}
		bo.pol.Delete(item)
		delete(bo.values, item)
		delete(bo.old, item)
		c.pending.Add(-1)
		c.occupancy.Add(-1)
		return true
	}
	return false
}

// Capacity returns the total entry capacity k.
func (c *Cache) Capacity() int { return c.alpha * len(c.buckets) }

// Alpha returns the bucket size α.
func (c *Cache) Alpha() int { return c.alpha }

// NumBuckets returns the number of independent buckets (lock granularity).
func (c *Cache) NumBuckets() int { return len(c.buckets) }

// Stats returns cumulative hit/miss counters for Get calls.
func (c *Cache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// Snapshot is a point-in-time view of the cache's cumulative counters.
type Snapshot struct {
	Hits   uint64
	Misses uint64
	// Evictions counts policy evictions caused by insertions.
	Evictions uint64
	// ConflictEvictions is the subset of Evictions that happened while the
	// cache as a whole still had free slots: pure associativity conflicts,
	// the paper's Theorem 4 currency.
	ConflictEvictions uint64
	// FlushEvictions counts forced evictions performed by rehash migrations.
	FlushEvictions uint64
	// Rehashes counts completed Rehash calls.
	Rehashes uint64
	// Migrating reports an in-progress incremental rehash; Pending is the
	// number of items still awaiting remapping.
	Migrating bool
	Pending   int
	Len       int
	Capacity  int
	Alpha     int
	Buckets   int
}

// MissRatio returns Misses / (Hits + Misses), or 0 before any Get.
func (s Snapshot) MissRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Misses) / float64(total)
}

// Snapshot returns the cache-wide counter snapshot.
func (c *Cache) Snapshot() Snapshot {
	return Snapshot{
		Hits:              c.hits.Load(),
		Misses:            c.misses.Load(),
		Evictions:         c.evictions.Load(),
		ConflictEvictions: c.conflictEvictions.Load(),
		FlushEvictions:    c.flushEvictions.Load(),
		Rehashes:          c.rehashes.Load(),
		Migrating:         c.migrating.Load(),
		Pending:           int(c.pending.Load()),
		Len:               c.Len(),
		Capacity:          c.Capacity(),
		Alpha:             c.alpha,
		Buckets:           len(c.buckets),
	}
}

// ShardStat is one bucket's view of the load: its Get hits and misses, the
// evictions it performed, and its current occupancy.
type ShardStat struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Len       int
}

// ShardStats returns a per-bucket stats snapshot, indexed by bucket. The
// spread across shards is the direct measure of the balls-and-bins imbalance
// the paper's threshold analysis is about.
func (c *Cache) ShardStats() []ShardStat {
	out := make([]ShardStat, len(c.buckets))
	for i := range c.buckets {
		b := &c.buckets[i]
		b.mu.Lock()
		out[i] = ShardStat{Hits: b.hits, Misses: b.misses, Evictions: b.evictions, Len: b.pol.Len()}
		b.mu.Unlock()
	}
	return out
}
