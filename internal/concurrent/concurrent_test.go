package concurrent

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func mustNew(t *testing.T, capacity, alpha int) *Cache {
	t.Helper()
	c, err := New(Config{Capacity: capacity, Alpha: alpha, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBasicPutGet(t *testing.T) {
	c := mustNew(t, 16, 4)
	c.Put(1, "one")
	c.Put(2, "two")
	if v, ok := c.Get(1); !ok || v != "one" {
		t.Fatalf("Get(1) = %v, %v", v, ok)
	}
	if _, ok := c.Get(99); ok {
		t.Fatal("Get(99) should miss")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d/%d", hits, misses)
	}
}

func TestEvictionWithinBucket(t *testing.T) {
	// One bucket (α = capacity): behaves like plain LRU.
	c := mustNew(t, 2, 2)
	c.Put(1, "a")
	c.Put(2, "b")
	evictedKey, evicted := c.Put(3, "c")
	if !evicted || evictedKey != 1 {
		t.Fatalf("evicted %v/%v, want 1/true", evictedKey, evicted)
	}
	if _, ok := c.Get(1); ok {
		t.Fatal("1 should be gone")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestValuesFollowEvictions(t *testing.T) {
	c := mustNew(t, 4, 1) // direct-mapped: heavy eviction traffic
	for i := uint64(0); i < 100; i++ {
		c.Put(i, i*10)
	}
	if c.Len() > c.Capacity() {
		t.Fatalf("Len %d > capacity", c.Len())
	}
	// Every cached key must return its own value.
	for i := uint64(0); i < 100; i++ {
		if v, ok := c.Get(i); ok && v != i*10 {
			t.Fatalf("Get(%d) = %v, want %d", i, v, i*10)
		}
	}
}

func TestDelete(t *testing.T) {
	c := mustNew(t, 8, 2)
	c.Put(5, "x")
	if !c.Delete(5) {
		t.Fatal("Delete(5) should succeed")
	}
	if c.Delete(5) {
		t.Fatal("second Delete(5) should fail")
	}
	if _, ok := c.Get(5); ok {
		t.Fatal("deleted key should miss")
	}
}

func TestGetOrLoad(t *testing.T) {
	c := mustNew(t, 8, 2)
	loads := 0
	load := func() (interface{}, error) { loads++; return "val", nil }
	v, err := c.GetOrLoad(7, load)
	if err != nil || v != "val" || loads != 1 {
		t.Fatalf("first GetOrLoad: %v %v loads=%d", v, err, loads)
	}
	v, err = c.GetOrLoad(7, load)
	if err != nil || v != "val" || loads != 1 {
		t.Fatalf("second GetOrLoad should hit: %v %v loads=%d", v, err, loads)
	}
	wantErr := errors.New("boom")
	if _, err := c.GetOrLoad(8, func() (interface{}, error) { return nil, wantErr }); !errors.Is(err, wantErr) {
		t.Fatalf("error not propagated: %v", err)
	}
	if _, ok := c.Get(8); ok {
		t.Fatal("failed load must not cache")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Capacity: 0, Alpha: 1},
		{Capacity: 8, Alpha: 0},
		{Capacity: 8, Alpha: 3},
		{Capacity: 8, Alpha: 16},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func TestGeometry(t *testing.T) {
	c := mustNew(t, 64, 4)
	if c.Capacity() != 64 || c.Alpha() != 4 || c.NumBuckets() != 16 {
		t.Fatalf("geometry = %d/%d/%d", c.Capacity(), c.Alpha(), c.NumBuckets())
	}
}

// TestConcurrentAccess hammers the cache from many goroutines under the race
// detector: per-bucket locking must keep every invariant intact.
func TestConcurrentAccess(t *testing.T) {
	c := mustNew(t, 256, 8)
	const goroutines = 8
	const opsPerG = 5000
	var wg sync.WaitGroup
	var errCount atomic.Int64
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsPerG; i++ {
				key := uint64((g*opsPerG + i) % 512)
				switch i % 3 {
				case 0:
					c.Put(key, key)
				case 1:
					if v, ok := c.Get(key); ok && v != key {
						errCount.Add(1)
					}
				case 2:
					c.Delete(key)
				}
			}
		}(g)
	}
	wg.Wait()
	if errCount.Load() != 0 {
		t.Fatalf("%d value mismatches under concurrency", errCount.Load())
	}
	if c.Len() > c.Capacity() {
		t.Fatalf("Len %d > capacity %d", c.Len(), c.Capacity())
	}
}

// TestConcurrentGetOrLoad checks the documented last-writer-wins contract.
func TestConcurrentGetOrLoad(t *testing.T) {
	c := mustNew(t, 64, 4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := uint64(0); i < 200; i++ {
				v, err := c.GetOrLoad(i, func() (interface{}, error) {
					return fmt.Sprintf("v%d", i), nil
				})
				if err != nil || v != fmt.Sprintf("v%d", i) {
					t.Errorf("GetOrLoad(%d) = %v, %v", i, v, err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestUpdateBasics pins Update's contract: fn sees absent keys, the
// stored value round-trips, and a false second return leaves the cache
// untouched without reporting a store.
func TestUpdateBasics(t *testing.T) {
	c := mustNew(t, 64, 4)

	stored, _, _ := c.Update(7, func(old interface{}, present bool) (interface{}, bool) {
		if present || old != nil {
			t.Errorf("fn saw (%v, %v) for an absent key", old, present)
		}
		return "first", true
	})
	if !stored {
		t.Fatal("Update declined to store on an absent key")
	}
	if v, ok := c.Get(7); !ok || v != "first" {
		t.Fatalf("Get after Update = %v, %v", v, ok)
	}

	stored, _, _ = c.Update(7, func(old interface{}, present bool) (interface{}, bool) {
		if !present || old != "first" {
			t.Errorf("fn saw (%v, %v), want (first, true)", old, present)
		}
		return nil, false // conditional write loses: keep the current value
	})
	if stored {
		t.Fatal("Update reported a store fn declined")
	}
	if v, ok := c.Get(7); !ok || v != "first" {
		t.Fatalf("declined Update changed the value: %v, %v", v, ok)
	}

	if stored, _, _ = c.Update(7, func(old interface{}, present bool) (interface{}, bool) {
		return "second", true
	}); !stored {
		t.Fatal("overwriting Update declined")
	}
	if v, _ := c.Get(7); v != "second" {
		t.Fatalf("value after overwrite = %v", v)
	}
}

// TestUpdateAtomicIncrement is the reason Update exists: a read-modify-
// write through Get+Put loses increments under concurrency, Update must
// not — fn runs under the bucket lock, so every increment lands.
func TestUpdateAtomicIncrement(t *testing.T) {
	c := mustNew(t, 64, 4)
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Update(3, func(old interface{}, present bool) (interface{}, bool) {
					n := 0
					if present {
						n = old.(int)
					}
					return n + 1, true
				})
			}
		}()
	}
	wg.Wait()
	if v, ok := c.Get(3); !ok || v != workers*per {
		t.Fatalf("count = %v (present %v), want %d: increments were lost", v, ok, workers*per)
	}
}

// TestUpdateDuringMigration drives Update across an in-flight incremental
// rehash: values in not-yet-remapped buckets must be found, updated and
// remapped without losing the old-bucket accounting.
func TestUpdateDuringMigration(t *testing.T) {
	c := mustNew(t, 256, 4)
	const n = 150
	for k := uint64(0); k < n; k++ {
		c.Put(k, int(0))
	}
	c.Rehash()
	if !c.Migrating() {
		t.Skip("migration completed instantly; nothing to exercise")
	}
	for k := uint64(0); k < n; k++ {
		c.Update(k, func(old interface{}, present bool) (interface{}, bool) {
			if !present {
				return nil, false // evicted by the migration: accounted, skip
			}
			return old.(int) + 1, true
		})
	}
	for k := uint64(0); k < n; k++ {
		if v, ok := c.Get(k); ok && v != 1 {
			t.Fatalf("key %d = %v after update-under-migration, want 1", k, v)
		}
	}
	if c.Len() > c.Capacity() {
		t.Fatalf("Len %d > capacity %d", c.Len(), c.Capacity())
	}
}
