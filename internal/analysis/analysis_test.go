package analysis

import (
	"math"
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

func TestWorkingSetCurveKnown(t *testing.T) {
	// Cycle over 4 items: any window of length w ≤ 4 holds exactly w
	// distinct items; windows ≥ 4 hold 4.
	seq := trace.RangeSeq(0, 4).Repeat(25)
	pts := WorkingSetCurve(seq, []int{1, 2, 4, 8})
	want := []float64{1, 2, 4, 4}
	for i, p := range pts {
		if math.Abs(p.MeanSet-want[i]) > 1e-9 {
			t.Errorf("window %d: mean set %.3f, want %.0f", p.Window, p.MeanSet, want[i])
		}
	}
}

func TestWorkingSetCurveEdges(t *testing.T) {
	if pts := WorkingSetCurve(nil, []int{4}); pts[0].MeanSet != 0 {
		t.Fatal("empty sequence should give 0")
	}
	seq := trace.Sequence{1, 2}
	// Window longer than the sequence clamps.
	pts := WorkingSetCurve(seq, []int{100})
	if pts[0].MeanSet != 2 {
		t.Fatalf("clamped window = %v", pts[0].MeanSet)
	}
	if pts := WorkingSetCurve(seq, []int{0}); pts[0].MeanSet != 0 {
		t.Fatal("window 0 should give 0")
	}
}

func TestWorkingSetGrowsWithLocalityLoss(t *testing.T) {
	local := workload.Phases{PhaseLen: 1000, SetSize: 10, Universe: 10000}.Generate(20000, 1)
	spread := workload.Uniform{Universe: 10000}.Generate(20000, 1)
	wLocal := WorkingSetCurve(local, []int{500})[0].MeanSet
	wSpread := WorkingSetCurve(spread, []int{500})[0].MeanSet
	if wLocal >= wSpread/3 {
		t.Fatalf("phased working set %.1f should be ≪ uniform %.1f", wLocal, wSpread)
	}
}

func TestReuseTimesKnown(t *testing.T) {
	// σ = A B A: A's reuse time is 2 (bucket [2,4) = index 1), B cold.
	h := ReuseTimes(trace.Sequence{0, 1, 0})
	if h.Cold != 2 {
		t.Fatalf("cold = %d, want 2", h.Cold)
	}
	if len(h.Buckets) < 2 || h.Buckets[1] != 1 {
		t.Fatalf("buckets = %v, want count at [2,4)", h.Buckets)
	}
}

func TestReuseMedian(t *testing.T) {
	// Tight loop over 2 items: all reuse times are 2 → median in [2,4).
	h := ReuseTimes(trace.RangeSeq(0, 2).Repeat(100))
	m := h.Median()
	if m < 2 || m >= 4 {
		t.Fatalf("median = %v, want within [2,4)", m)
	}
	var empty ReuseHistogram
	if empty.Median() != 0 {
		t.Fatal("empty histogram median should be 0")
	}
}

func TestPopularityUniformVsZipf(t *testing.T) {
	uni := Popularize(workload.Uniform{Universe: 1000}.Generate(100000, 5))
	zip := Popularize(workload.Zipf{Universe: 1000, S: 1.0}.Generate(100000, 5))
	if uni.Top1Pct > 0.03 {
		t.Errorf("uniform top-1%% share %.3f too concentrated", uni.Top1Pct)
	}
	if zip.Top1Pct < 0.2 {
		t.Errorf("zipf top-1%% share %.3f too flat", zip.Top1Pct)
	}
	// Exponent fit: ≈ 0 for uniform, ≈ 1 for Zipf(1) (fit is biased low by
	// the sampled tail, so allow generous bands).
	if math.Abs(uni.ZipfExponent) > 0.25 {
		t.Errorf("uniform fitted exponent %.3f, want ≈ 0", uni.ZipfExponent)
	}
	if zip.ZipfExponent < 0.6 {
		t.Errorf("zipf fitted exponent %.3f, want ≈ 1", zip.ZipfExponent)
	}
}

func TestPopularityEdges(t *testing.T) {
	p := Popularize(nil)
	if p.Distinct != 0 || !math.IsNaN(p.ZipfExponent) {
		t.Fatalf("empty popularity = %+v", p)
	}
	p = Popularize(trace.Sequence{7, 7})
	if p.Distinct != 1 || p.Top1Pct != 1 {
		t.Fatalf("single-item popularity = %+v", p)
	}
}
