// Package analysis provides workload-characterization tools used to sanity-
// check traces before feeding them to the experiments: Denning working-set
// curves, inter-reference (reuse) time histograms, item-popularity
// statistics with a Zipf-exponent fit, and — together with
// internal/stackdist — LRU miss-ratio curves. The cmd/traceinfo tool prints
// a full report for a trace file.
package analysis

import (
	"math"
	"sort"

	"repro/internal/trace"
)

// WorkingSetPoint is one point of the Denning working-set curve: the mean
// number of distinct items in a sliding window of the given length.
type WorkingSetPoint struct {
	Window  int
	MeanSet float64
}

// WorkingSetCurve computes the mean working-set size w(T) for each window
// length using the standard two-pointer sweep, O(|σ|) per window.
func WorkingSetCurve(seq trace.Sequence, windows []int) []WorkingSetPoint {
	out := make([]WorkingSetPoint, 0, len(windows))
	for _, w := range windows {
		out = append(out, WorkingSetPoint{Window: w, MeanSet: meanWorkingSet(seq, w)})
	}
	return out
}

func meanWorkingSet(seq trace.Sequence, window int) float64 {
	if window <= 0 || len(seq) == 0 {
		return 0
	}
	if window > len(seq) {
		window = len(seq)
	}
	counts := make(map[trace.Item]int, 1024)
	distinct := 0
	var sum float64
	samples := 0
	for i, x := range seq {
		if counts[x] == 0 {
			distinct++
		}
		counts[x]++
		if i >= window {
			old := seq[i-window]
			counts[old]--
			if counts[old] == 0 {
				distinct--
			}
		}
		if i >= window-1 {
			sum += float64(distinct)
			samples++
		}
	}
	if samples == 0 {
		return 0
	}
	return sum / float64(samples)
}

// ReuseHistogram is a histogram of inter-reference times: for each warm
// request, the number of requests since the previous access to the same
// item, bucketed into powers of two.
type ReuseHistogram struct {
	// Buckets[i] counts reuse times in [2^i, 2^(i+1)).
	Buckets []uint64
	// Cold counts first-ever accesses.
	Cold uint64
}

// ReuseTimes computes the inter-reference histogram of a sequence.
func ReuseTimes(seq trace.Sequence) ReuseHistogram {
	last := make(map[trace.Item]int, 1024)
	var h ReuseHistogram
	for i, x := range seq {
		prev, ok := last[x]
		if !ok {
			h.Cold++
		} else {
			dist := i - prev // ≥ 1
			b := bitLen(uint64(dist)) - 1
			for len(h.Buckets) <= b {
				h.Buckets = append(h.Buckets, 0)
			}
			h.Buckets[b]++
		}
		last[x] = i
	}
	return h
}

func bitLen(v uint64) int {
	n := 0
	for v > 0 {
		v >>= 1
		n++
	}
	return n
}

// Median returns the median inter-reference time (bucket midpoint), or 0 if
// there were no warm accesses.
func (h ReuseHistogram) Median() float64 {
	var total uint64
	for _, c := range h.Buckets {
		total += c
	}
	if total == 0 {
		return 0
	}
	var cum uint64
	for i, c := range h.Buckets {
		cum += c
		if cum*2 >= total {
			lo := float64(uint64(1) << i)
			return lo * 1.5
		}
	}
	return 0
}

// Popularity summarizes the item-frequency distribution of a sequence.
type Popularity struct {
	Distinct int
	// TopShare[i] is the fraction of requests going to the top 10^(i+1)
	// percent... simplified: Top1Pct and Top10Pct shares.
	Top1Pct  float64
	Top10Pct float64
	// ZipfExponent is the least-squares slope of log(freq) vs log(rank),
	// negated; ≈ s for a Zipf(s) workload, ≈ 0 for uniform. NaN when there
	// are fewer than 3 distinct items.
	ZipfExponent float64
}

// Popularize computes popularity statistics.
func Popularize(seq trace.Sequence) Popularity {
	counts := make(map[trace.Item]uint64, 1024)
	for _, x := range seq {
		counts[x]++
	}
	freqs := make([]uint64, 0, len(counts))
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	sort.Slice(freqs, func(i, j int) bool { return freqs[i] > freqs[j] })

	p := Popularity{Distinct: len(freqs), ZipfExponent: math.NaN()}
	if len(freqs) == 0 {
		return p
	}
	total := float64(len(seq))
	share := func(fraction float64) float64 {
		n := int(math.Ceil(fraction * float64(len(freqs))))
		if n < 1 {
			n = 1
		}
		var s uint64
		for _, c := range freqs[:n] {
			s += c
		}
		return float64(s) / total
	}
	p.Top1Pct = share(0.01)
	p.Top10Pct = share(0.10)

	if len(freqs) >= 3 {
		// Least-squares fit of log f_r = a − s·log r over all ranks.
		var sx, sy, sxx, sxy float64
		n := float64(len(freqs))
		for r, c := range freqs {
			x := math.Log(float64(r + 1))
			y := math.Log(float64(c))
			sx += x
			sy += y
			sxx += x * x
			sxy += x * y
		}
		denom := n*sxx - sx*sx
		if denom > 0 {
			p.ZipfExponent = -(n*sxy - sx*sy) / denom
		}
	}
	return p
}
