package ballsbins

import (
	"math"
	"testing"
	"testing/quick"
)

func TestThrowConservesBalls(t *testing.T) {
	f := func(seed uint64, mRaw, nRaw uint16) bool {
		m := int(mRaw % 5000)
		n := int(nRaw%100) + 1
		loads := Throw(m, n, seed)
		total := 0
		for _, l := range loads {
			if l < 0 {
				return false
			}
			total += l
		}
		return total == m && len(loads) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestThrowDeterministic(t *testing.T) {
	a := Throw(1000, 10, 5)
	b := Throw(1000, 10, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different loads")
		}
	}
}

func TestMaxLoadAndSaturatedCount(t *testing.T) {
	loads := []int{3, 1, 4, 1, 5}
	if MaxLoad(loads) != 5 {
		t.Fatalf("MaxLoad = %d", MaxLoad(loads))
	}
	if got := SaturatedCount(loads, 3); got != 3 {
		t.Fatalf("SaturatedCount(≥3) = %d, want 3", got)
	}
	if got := SaturatedCount(loads, 5.5); got != 0 {
		t.Fatalf("SaturatedCount(≥5.5) = %d, want 0", got)
	}
	if MaxLoad(nil) != 0 {
		t.Fatal("MaxLoad(nil) should be 0")
	}
}

// TestLemma3BoundHolds is the scientific check: the Monte-Carlo exceedance
// probability must respect the paper's exp(−δ²α/12) bound whenever the
// hypothesis δ ≥ sqrt(12 ln(k/α)/α) holds.
func TestLemma3BoundHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo check")
	}
	cases := []struct {
		k, alpha int
	}{
		{1 << 12, 256},
		{1 << 12, 512},
		{1 << 14, 512},
	}
	for _, c := range cases {
		delta := Lemma3DeltaFloor(c.k, c.alpha)
		if delta > 0.5 {
			t.Fatalf("k=%d α=%d: delta floor %.3f > 1/2, pick a larger α", c.k, c.alpha, delta)
		}
		m := int((1 - delta) * float64(c.k))
		n := c.k / c.alpha
		const trials = 400
		p := MaxLoadExceedance(m, n, c.alpha, trials, 77)
		bound := Lemma3Bound(delta, c.alpha)
		// The empirical probability must not exceed the bound by more than
		// Monte-Carlo noise (3 sigma of a Bernoulli(bound) estimator, plus
		// slack for tiny bounds).
		noise := 3*math.Sqrt(bound*(1-bound)/trials) + 0.01
		if p > bound+noise {
			t.Errorf("k=%d α=%d δ=%.3f: empirical %.4f > bound %.4f + noise %.4f",
				c.k, c.alpha, delta, p, bound, noise)
		}
	}
}

// TestLemma4GuaranteeHolds checks the saturated-bins lower bound: in at
// least 1 − exp(−f/32) of trials, more than f/8 bins are εh-saturated.
func TestLemma4GuaranteeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo check")
	}
	// Theorem 4 regime: n = k/α bins, m = (1−δ)k balls, ε = 2δ/(1−δ).
	k := 1 << 12
	alpha := 16
	delta := 0.2
	n := k / alpha
	m := int((1 - delta) * float64(k))
	eps := 2 * delta / (1 - delta)

	successFrac, meanSat := SaturationStats(m, n, eps, 300, 99)
	wantFrac := 1 - Lemma4FailureBound(n, m, eps)
	if successFrac < wantFrac-0.05 {
		t.Errorf("success fraction %.3f < guaranteed %.3f", successFrac, wantFrac)
	}
	if meanSat <= 0 {
		t.Error("expected some saturated bins on average")
	}
}

func TestAnalyticFormulas(t *testing.T) {
	// f(n, m, ε) = n exp(−2ε²h).
	if got, want := F(100, 200, 0.5), 100*math.Exp(-2*0.25*2); math.Abs(got-want) > 1e-9 {
		t.Fatalf("F = %v, want %v", got, want)
	}
	if got := Lemma4Threshold(100, 200, 0.5); math.Abs(got-F(100, 200, 0.5)/8) > 1e-12 {
		t.Fatalf("Lemma4Threshold = %v", got)
	}
	if got, want := Lemma3Bound(0.5, 48), math.Exp(-0.25*48.0/12); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Lemma3Bound = %v, want %v", got, want)
	}
	// Chernoff sanity: bounds decrease in μ and ε.
	if ChernoffUpper(0.5, 10) <= ChernoffUpper(0.5, 100) {
		t.Fatal("ChernoffUpper should decrease in mu")
	}
	if ChernoffLower(0.1, 50) <= ChernoffLower(0.9, 50) {
		t.Fatal("ChernoffLower should decrease in eps")
	}
	if ReverseChernoff(0.3, 20) <= 0 || ReverseChernoff(0.3, 20) > 0.25 {
		t.Fatalf("ReverseChernoff out of range: %v", ReverseChernoff(0.3, 20))
	}
}

// TestReverseChernoffConsistentWithSimulation: the reverse Chernoff bound
// (Theorem 2) promises the saturation probability is not exponentially
// smaller than the upper bound suggests; empirically, Pr[L ≥ (1+ε)h] for a
// single bin should be ≥ (1/4)exp(−2ε²h) in the valid regime.
func TestReverseChernoffConsistentWithSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo check")
	}
	const n = 64
	const m = 64 * 8 // h = 8
	eps := 0.5
	h := float64(m) / n
	threshold := (1 + eps) * h
	const trials = 300
	hits := 0
	for trial := 0; trial < trials; trial++ {
		loads := Throw(m, n, uint64(1000+trial))
		if float64(loads[0]) >= threshold {
			hits++
		}
	}
	p := float64(hits) / trials
	lower := ReverseChernoff(eps, h)
	if p < lower/4 { // generous slack: Theorem 2 is ε ∈ [0, 1/p−2] with constants
		t.Errorf("empirical single-bin saturation %.4f ≪ reverse-Chernoff floor %.4f", p, lower)
	}
}

func TestPanicsOnBadArgs(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s should panic", name)
			}
		}()
		f()
	}
	mustPanic("Throw bins=0", func() { Throw(10, 0, 1) })
	mustPanic("Throw m<0", func() { Throw(-1, 5, 1) })
	mustPanic("MaxLoadExceedance trials=0", func() { MaxLoadExceedance(1, 1, 1, 0, 1) })
	mustPanic("SaturationStats trials=0", func() { SaturationStats(1, 1, 0.1, 0, 1) })
}
