// Package ballsbins implements the balls-and-bins processes and the
// concentration bounds at the heart of the paper's analysis: Lemma 3 (the
// max-load bound behind Theorem 3's bad-eviction probability) and Lemma 4
// (the saturated-bins lower bound behind Theorem 4's adversary), together
// with the Chernoff machinery of Theorems 1 and 2.
package ballsbins

import (
	"fmt"
	"math"

	"repro/internal/hashfn"
	"repro/internal/trace"
)

// Throw throws m balls independently and uniformly at random into n bins
// (deterministically in the seed) and returns the bin loads.
func Throw(m, n int, seed uint64) []int {
	if n <= 0 {
		panic(fmt.Sprintf("ballsbins: bin count %d must be positive", n))
	}
	if m < 0 {
		panic(fmt.Sprintf("ballsbins: ball count %d must be nonnegative", m))
	}
	loads := make([]int, n)
	h := hashfn.NewRandom(seed, n)
	for i := 0; i < m; i++ {
		loads[h.Bucket(trace.Item(i))]++
	}
	return loads
}

// MaxLoad returns the maximum bin load.
func MaxLoad(loads []int) int {
	maxL := 0
	for _, l := range loads {
		if l > maxL {
			maxL = l
		}
	}
	return maxL
}

// SaturatedCount returns the number of bins with load ≥ threshold. Lemma 4
// calls a bin a-saturated when its load is at least h+a for average load h;
// callers compute the threshold h+εh themselves.
func SaturatedCount(loads []int, threshold float64) int {
	count := 0
	for _, l := range loads {
		if float64(l) >= threshold {
			count++
		}
	}
	return count
}

// Lemma3Bound returns the paper's upper bound exp(−δ²α/12) on the
// probability that the maximum load exceeds α when (1−δ)k balls are thrown
// into k/α bins, valid for δ ≥ sqrt(12·ln(k/α)/α) and δ ≤ 1/2.
func Lemma3Bound(delta float64, alpha int) float64 {
	return math.Exp(-delta * delta * float64(alpha) / 12)
}

// Lemma3DeltaFloor returns the smallest δ the Lemma 3 hypothesis allows for
// a cache of size k with set size α: sqrt(12·ln(k/α)/α).
func Lemma3DeltaFloor(k, alpha int) float64 {
	return math.Sqrt(12 * math.Log(float64(k)/float64(alpha)) / float64(alpha))
}

// F returns f(n, m, ε) = n·exp(−2ε²h) with h = m/n, the expected-count scale
// of εh-saturated bins in Lemma 4.
func F(n, m int, eps float64) float64 {
	h := float64(m) / float64(n)
	return float64(n) * math.Exp(-2*eps*eps*h)
}

// Lemma4Threshold returns f(n, m, ε)/8: Lemma 4 guarantees that more than
// this many bins are εh-saturated with probability ≥ 1 − exp(−f/32).
func Lemma4Threshold(n, m int, eps float64) float64 {
	return F(n, m, eps) / 8
}

// Lemma4FailureBound returns exp(−f(n,m,ε)/32), the bound on the probability
// that Lemma 4's saturation guarantee fails.
func Lemma4FailureBound(n, m int, eps float64) float64 {
	return math.Exp(-F(n, m, eps) / 32)
}

// ChernoffUpper returns exp(−ε²μ/3), the Theorem 1 bound on
// Pr[X ≥ (1+ε)μ] for a sum of negatively associated 0/1 variables.
func ChernoffUpper(eps, mu float64) float64 {
	return math.Exp(-eps * eps * mu / 3)
}

// ChernoffLower returns exp(−ε²μ/2), the Theorem 1 bound on Pr[X ≤ (1−ε)μ].
func ChernoffLower(eps, mu float64) float64 {
	return math.Exp(-eps * eps * mu / 2)
}

// ReverseChernoff returns (1/4)·exp(−2ε²μ), the Theorem 2 lower bound on
// Pr[X ≥ (1+ε)μ] for independent 0/1 variables with success probability
// ≤ 1/2.
func ReverseChernoff(eps, mu float64) float64 {
	return 0.25 * math.Exp(-2*eps*eps*mu)
}

// MaxLoadExceedance estimates Pr[max load > α] by Monte-Carlo: trials
// independent throws of m balls into n bins, seeded from seed.
func MaxLoadExceedance(m, n, alpha, trials int, seed uint64) float64 {
	if trials <= 0 {
		panic(fmt.Sprintf("ballsbins: trial count %d must be positive", trials))
	}
	seeds := hashfn.NewSeedSequence(seed)
	exceed := 0
	for t := 0; t < trials; t++ {
		if MaxLoad(Throw(m, n, seeds.Next())) > alpha {
			exceed++
		}
	}
	return float64(exceed) / float64(trials)
}

// SaturationStats estimates, over trials independent throws, the fraction of
// trials in which the number of εh-saturated bins exceeds f(n,m,ε)/8 (Lemma 4
// predicts this fraction ≥ 1 − exp(−f/32)), as well as the mean saturated-bin
// count.
func SaturationStats(m, n int, eps float64, trials int, seed uint64) (successFrac, meanSaturated float64) {
	if trials <= 0 {
		panic(fmt.Sprintf("ballsbins: trial count %d must be positive", trials))
	}
	h := float64(m) / float64(n)
	threshold := h + eps*h
	target := Lemma4Threshold(n, m, eps)
	seeds := hashfn.NewSeedSequence(seed)
	successes, total := 0, 0
	for t := 0; t < trials; t++ {
		c := SaturatedCount(Throw(m, n, seeds.Next()), threshold)
		total += c
		if float64(c) > target {
			successes++
		}
	}
	return float64(successes) / float64(trials), float64(total) / float64(trials)
}
