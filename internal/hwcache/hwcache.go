// Package hwcache is an address-level hardware-cache front end over the
// library's cache simulators: byte addresses are split into cache lines,
// and a multi-level hierarchy (e.g. L1/L2) of set-associative caches serves
// each line access, with a latency model for average-memory-access-time
// estimates.
//
// Real hardware indexes sets by address bits — exactly the Modulo indexer
// of internal/hashfn — which is why power-of-two strides are pathological
// on real machines. The paper's model (and the randomized indexing of
// Topham and González [57] it builds on) replaces bit selection with a
// random hash. The hierarchy supports both, and experiment E15 measures the
// difference on the classic matrix column-walk pathology.
package hwcache

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hashfn"
	"repro/internal/policy"
	"repro/internal/trace"
)

// LevelConfig describes one cache level.
type LevelConfig struct {
	// Name labels the level in reports ("L1", "L2", ...).
	Name string
	// Lines is the level's capacity in cache lines.
	Lines int
	// Alpha is the associativity; must divide Lines.
	Alpha int
	// Kind is the per-set replacement policy (hardware is typically LRU or
	// an approximation like clock).
	Kind policy.Kind
	// Latency is the hit latency in cycles.
	Latency uint64
}

// Config describes a hierarchy.
type Config struct {
	// LineSize is the cache-line size in bytes; must be a power of two.
	LineSize int
	// Levels are ordered nearest-first (L1 first). At least one required.
	Levels []LevelConfig
	// MemLatency is the cost in cycles of missing every level.
	MemLatency uint64
	// Seed drives the randomized indexing.
	Seed uint64
	// BitSelect selects hardware-style bit-selection (modulo) indexing
	// instead of the paper's randomized indexing.
	BitSelect bool
}

// Hierarchy simulates a multi-level set-associative cache hierarchy.
type Hierarchy struct {
	cfg        Config
	lineShift  uint
	levels     []core.Cache
	hitsAt     []uint64 // per level
	memMisses  uint64
	accesses   uint64
	cycleTotal uint64
}

// New builds a hierarchy.
func New(cfg Config) (*Hierarchy, error) {
	if cfg.LineSize <= 0 || cfg.LineSize&(cfg.LineSize-1) != 0 {
		return nil, fmt.Errorf("hwcache: line size %d must be a positive power of two", cfg.LineSize)
	}
	if len(cfg.Levels) == 0 {
		return nil, fmt.Errorf("hwcache: at least one level required")
	}
	h := &Hierarchy{cfg: cfg, hitsAt: make([]uint64, len(cfg.Levels))}
	for s := cfg.LineSize; s > 1; s >>= 1 {
		h.lineShift++
	}
	for i, lv := range cfg.Levels {
		if lv.Lines <= 0 || lv.Alpha <= 0 || lv.Lines%lv.Alpha != 0 {
			return nil, fmt.Errorf("hwcache: level %d bad geometry lines=%d α=%d", i, lv.Lines, lv.Alpha)
		}
		saCfg := core.SetAssocConfig{
			Capacity: lv.Lines,
			Alpha:    lv.Alpha,
			Factory:  policy.NewFactory(lv.Kind, cfg.Seed),
			Seed:     cfg.Seed + uint64(i)*0x9e3779b97f4a7c15,
		}
		if cfg.BitSelect {
			saCfg.NewHasher = func(_ uint64, n int) hashfn.Hasher {
				// Hardware bit selection ignores the seed: the set index is
				// the line number modulo the set count.
				return hashfn.NewModulo(0, n)
			}
		}
		sa, err := core.NewSetAssoc(saCfg)
		if err != nil {
			return nil, fmt.Errorf("hwcache: level %d: %w", i, err)
		}
		h.levels = append(h.levels, sa)
	}
	return h, nil
}

// MustNew is New, panicking on configuration errors.
func MustNew(cfg Config) *Hierarchy {
	h, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return h
}

// Line returns the cache-line item a byte address belongs to.
func (h *Hierarchy) Line(addr uint64) trace.Item {
	return trace.Item(addr >> h.lineShift)
}

// Access serves one byte-address access and returns the index of the level
// that supplied the line (len(levels) means main memory). Lower levels are
// filled on the way back (inclusive hierarchy, no writeback modelling —
// the paper's cost model counts fetches only).
func (h *Hierarchy) Access(addr uint64) int {
	h.accesses++
	line := h.Line(addr)
	suppliedBy := len(h.levels)
	for i, c := range h.levels {
		if c.Access(line) {
			suppliedBy = i
			break
		}
	}
	if suppliedBy == len(h.levels) {
		h.memMisses++
		h.cycleTotal += h.cfg.MemLatency
	} else {
		h.hitsAt[suppliedBy]++
		h.cycleTotal += h.cfg.Levels[suppliedBy].Latency
	}
	return suppliedBy
}

// AccessAll serves a slice of byte addresses.
func (h *Hierarchy) AccessAll(addrs []uint64) {
	for _, a := range addrs {
		h.Access(a)
	}
}

// Accesses returns the number of accesses served.
func (h *Hierarchy) Accesses() uint64 { return h.accesses }

// HitsAt returns the number of accesses supplied by level i.
func (h *Hierarchy) HitsAt(i int) uint64 { return h.hitsAt[i] }

// MemMisses returns the number of accesses that went to memory.
func (h *Hierarchy) MemMisses() uint64 { return h.memMisses }

// LevelStats returns the raw simulator counters for level i. Note that a
// level only sees the accesses that missed all nearer levels.
func (h *Hierarchy) LevelStats(i int) core.Stats { return h.levels[i].Stats() }

// MissRatio returns the fraction of accesses that reached memory.
func (h *Hierarchy) MissRatio() float64 {
	if h.accesses == 0 {
		return 0
	}
	return float64(h.memMisses) / float64(h.accesses)
}

// AMAT returns the average memory access time in cycles under the
// configured latency model.
func (h *Hierarchy) AMAT() float64 {
	if h.accesses == 0 {
		return 0
	}
	return float64(h.cycleTotal) / float64(h.accesses)
}

// Reset restores the hierarchy to its initial state.
func (h *Hierarchy) Reset() {
	for _, c := range h.levels {
		c.Reset()
	}
	for i := range h.hitsAt {
		h.hitsAt[i] = 0
	}
	h.memMisses = 0
	h.accesses = 0
	h.cycleTotal = 0
}
