package hwcache

import (
	"testing"

	"repro/internal/policy"
)

func l1l2(bitSelect bool) Config {
	return Config{
		LineSize: 64,
		Levels: []LevelConfig{
			{Name: "L1", Lines: 512, Alpha: 8, Kind: policy.LRUKind, Latency: 4},
			{Name: "L2", Lines: 8192, Alpha: 16, Kind: policy.LRUKind, Latency: 12},
		},
		MemLatency: 200,
		Seed:       1,
		BitSelect:  bitSelect,
	}
}

func TestValidation(t *testing.T) {
	bad := []Config{
		{LineSize: 0, Levels: []LevelConfig{{Lines: 8, Alpha: 2, Kind: policy.LRUKind}}},
		{LineSize: 48, Levels: []LevelConfig{{Lines: 8, Alpha: 2, Kind: policy.LRUKind}}},
		{LineSize: 64},
		{LineSize: 64, Levels: []LevelConfig{{Lines: 8, Alpha: 3, Kind: policy.LRUKind}}},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func TestLineMapping(t *testing.T) {
	h := MustNew(l1l2(false))
	if h.Line(0) != 0 || h.Line(63) != 0 || h.Line(64) != 1 || h.Line(6400) != 100 {
		t.Fatalf("line mapping broken: %d %d %d %d", h.Line(0), h.Line(63), h.Line(64), h.Line(6400))
	}
}

func TestSpatialLocality(t *testing.T) {
	// Walking bytes sequentially touches each 64-byte line 64 times: only
	// 1/64 of accesses can miss anywhere.
	h := MustNew(l1l2(false))
	addrs := SequentialWalk(64*1024, 1<<30, 1)
	h.AccessAll(addrs)
	if h.MemMisses() != 1024 {
		t.Fatalf("mem misses = %d, want 1024 cold lines", h.MemMisses())
	}
	if h.HitsAt(0) != uint64(len(addrs))-1024 {
		t.Fatalf("L1 hits = %d", h.HitsAt(0))
	}
}

func TestInclusionAndLevels(t *testing.T) {
	// A working set that fits L2 but not L1: after warmup, accesses hit L2
	// (or L1), never memory.
	h := MustNew(l1l2(false))
	// 2048 lines = 128 KiB: 4× L1, fits L2 (8192 lines).
	addrs := SequentialWalk(3*2048*64, 2048*64, 64)
	h.AccessAll(addrs)
	if h.MemMisses() != 2048 {
		t.Fatalf("mem misses = %d, want 2048 compulsory", h.MemMisses())
	}
	if h.HitsAt(1) == 0 {
		t.Fatal("expected L2 hits for the L1-overflowing working set")
	}
}

func TestAMATBounds(t *testing.T) {
	h := MustNew(l1l2(false))
	addrs := PointerChase(50_000, 4096, 64, 3)
	h.AccessAll(addrs)
	amat := h.AMAT()
	if amat < 4 || amat > 200 {
		t.Fatalf("AMAT = %.1f outside [4, 200]", amat)
	}
	if h.Accesses() != 50_000 {
		t.Fatalf("accesses = %d", h.Accesses())
	}
	counts := h.HitsAt(0) + h.HitsAt(1) + h.MemMisses()
	if counts != h.Accesses() {
		t.Fatalf("level counts %d != accesses %d", counts, h.Accesses())
	}
}

// TestColumnWalkPathology is the E15 story in miniature: a column walk with
// power-of-two leading dimension thrashes under bit-selection indexing but
// is fine under randomized indexing.
func TestColumnWalkPathology(t *testing.T) {
	// Matrix: 256 rows × 8 cols of 8-byte elements, ld = 1024 elements
	// (8 KiB row stride). Column stride = 8 KiB: under bit selection with
	// 64 sets × 64 B lines (L1: 512 lines / 8-way = 64 sets → set index
	// cycles every 64·64 B = 4 KiB), every element of a column maps to at
	// most 2 distinct sets (8 KiB stride ≡ 0 mod 4 KiB) — 256 rows hammer
	// 8-way sets. Randomized indexing spreads them.
	addrs := ColumnWalk(256, 8, 8, 1024, 6)

	bit := MustNew(l1l2(true))
	bit.AccessAll(addrs)
	rnd := MustNew(l1l2(false))
	rnd.AccessAll(addrs)

	// Working set: 256 rows × 8 cols, one 64B line per element-row pair →
	// 2048 distinct lines... it fits L2 either way; compare L1 behaviour
	// via AMAT.
	if bit.AMAT() < 1.5*rnd.AMAT() {
		t.Errorf("bit-selection AMAT %.1f should be ≫ randomized %.1f on the column walk",
			bit.AMAT(), rnd.AMAT())
	}
}

func TestReset(t *testing.T) {
	h := MustNew(l1l2(false))
	addrs := PointerChase(10_000, 1024, 64, 5)
	h.AccessAll(addrs)
	first := h.AMAT()
	h.Reset()
	if h.Accesses() != 0 || h.MemMisses() != 0 {
		t.Fatal("Reset left counters")
	}
	h.AccessAll(addrs)
	if h.AMAT() != first {
		t.Fatalf("replay AMAT %.3f != %.3f", h.AMAT(), first)
	}
}

func TestPatternPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s should panic", name)
			}
		}()
		f()
	}
	mustPanic("SequentialWalk zero stride", func() { SequentialWalk(1, 10, 0) })
	mustPanic("ColumnWalk ld<cols", func() { ColumnWalk(2, 8, 8, 4, 1) })
	mustPanic("PointerChase slots=0", func() { PointerChase(1, 0, 8, 1) })
}

func TestPointerChaseCoversAllSlots(t *testing.T) {
	addrs := PointerChase(4096, 64, 8, 7)
	seen := map[uint64]bool{}
	for _, a := range addrs {
		seen[a] = true
	}
	// A permutation cycle may decompose into sub-cycles; the chase from
	// slot 0 covers its own cycle. At minimum it repeats and stays in range.
	for a := range seen {
		if a >= 64*8 {
			t.Fatalf("address %d out of range", a)
		}
	}
}
