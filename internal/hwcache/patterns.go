package hwcache

import (
	"fmt"

	"repro/internal/hashfn"
)

// Address-pattern generators for hardware-flavored workloads. These emit
// byte addresses (not items); the hierarchy's line mapping and indexing
// decide how they collide.

// SequentialWalk returns n addresses walking an array of the given byte
// size forward with the given element stride, wrapping around.
func SequentialWalk(n int, arrayBytes, stride uint64) []uint64 {
	if arrayBytes == 0 || stride == 0 {
		panic("hwcache: zero array or stride")
	}
	out := make([]uint64, n)
	var off uint64
	for i := range out {
		out[i] = off
		off = (off + stride) % arrayBytes
	}
	return out
}

// ColumnWalk returns the addresses of a column-major walk over a row-major
// matrix: rows × cols elements of elemSize bytes with leading dimension
// ld (in elements, ≥ cols). Iterating down a column strides by ld·elemSize
// bytes — with a power-of-two ld this is the canonical conflict-miss
// pathology under bit-selection indexing.
func ColumnWalk(rows, cols int, elemSize, ld uint64, passes int) []uint64 {
	if ld < uint64(cols) {
		panic(fmt.Sprintf("hwcache: ld %d < cols %d", ld, cols))
	}
	out := make([]uint64, 0, rows*cols*passes)
	for p := 0; p < passes; p++ {
		for c := 0; c < cols; c++ {
			for r := 0; r < rows; r++ {
				out = append(out, (uint64(r)*ld+uint64(c))*elemSize)
			}
		}
	}
	return out
}

// PointerChase returns n addresses following a random permutation cycle
// over slots slots of slotSize bytes — a dependent-load pattern with no
// spatial locality and working set slots·slotSize.
func PointerChase(n, slots int, slotSize uint64, seed uint64) []uint64 {
	if slots <= 0 {
		panic("hwcache: slots must be positive")
	}
	perm := make([]int, slots)
	for i := range perm {
		perm[i] = i
	}
	seq := hashfn.NewSeedSequence(seed)
	for i := slots - 1; i > 0; i-- {
		j := int((seq.Next() >> 32) * uint64(i+1) >> 32)
		perm[i], perm[j] = perm[j], perm[i]
	}
	out := make([]uint64, n)
	cur := 0
	for i := range out {
		out[i] = uint64(cur) * slotSize
		cur = perm[cur]
	}
	return out
}
