package hashfn

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

func TestRandomHasherInRange(t *testing.T) {
	f := func(seed uint64, item uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		h := NewRandom(seed, n)
		b := h.Bucket(trace.Item(item))
		return b >= 0 && b < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomHasherDeterministic(t *testing.T) {
	a := NewRandom(99, 64)
	b := NewRandom(99, 64)
	for i := 0; i < 1000; i++ {
		if a.Bucket(trace.Item(i)) != b.Bucket(trace.Item(i)) {
			t.Fatalf("same seed disagrees on item %d", i)
		}
	}
}

func TestRandomHasherSeedsDiffer(t *testing.T) {
	a := NewRandom(1, 64)
	b := NewRandom(2, 64)
	same := 0
	const items = 10000
	for i := 0; i < items; i++ {
		if a.Bucket(trace.Item(i)) == b.Bucket(trace.Item(i)) {
			same++
		}
	}
	// Two independent random functions over 64 buckets agree ~1/64 of the
	// time; allow wide slack.
	frac := float64(same) / items
	if frac > 0.05 {
		t.Fatalf("seeds 1 and 2 agree on %.3f of items; hasher may ignore the seed", frac)
	}
}

// TestRandomHasherUniformity chi-square tests the bucket distribution of a
// contiguous universe: the statistic for n buckets has mean ≈ n−1 and
// stddev ≈ sqrt(2n); we allow six sigma.
func TestRandomHasherUniformity(t *testing.T) {
	const n = 128
	const items = 128 * 1000
	h := NewRandom(7, n)
	counts := make([]float64, n)
	for i := 0; i < items; i++ {
		counts[h.Bucket(trace.Item(i))]++
	}
	expected := float64(items) / n
	chi2 := 0.0
	for _, c := range counts {
		d := c - expected
		chi2 += d * d / expected
	}
	limit := float64(n-1) + 6*math.Sqrt(2*float64(n))
	if chi2 > limit {
		t.Fatalf("chi-square %.1f exceeds %.1f: buckets not uniform", chi2, limit)
	}
}

func TestMix64Bijectivity(t *testing.T) {
	// Spot-check injectivity on a sample; Mix64 is a bijection by
	// construction (all steps invertible).
	seen := make(map[uint64]uint64, 10000)
	for i := uint64(0); i < 10000; i++ {
		v := Mix64(i)
		if prev, ok := seen[v]; ok {
			t.Fatalf("collision: Mix64(%d) == Mix64(%d)", i, prev)
		}
		seen[v] = i
	}
}

func TestModuloHasher(t *testing.T) {
	m := NewModulo(0, 8)
	for i := 0; i < 100; i++ {
		if got := m.Bucket(trace.Item(i)); got != i%8 {
			t.Fatalf("Bucket(%d) = %d, want %d", i, got, i%8)
		}
	}
	if m.Buckets() != 8 {
		t.Fatalf("Buckets = %d", m.Buckets())
	}
	// The weakness the ablation relies on: a stride-8 universe all collides.
	m2 := NewModulo(0, 8)
	first := m2.Bucket(0)
	for i := 0; i < 10; i++ {
		if m2.Bucket(trace.Item(8*i)) != first {
			t.Fatal("strided universe should collide under modulo")
		}
	}
}

func TestSeedSequenceDeterministicAndDistinct(t *testing.T) {
	a := NewSeedSequence(5)
	b := NewSeedSequence(5)
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		va, vb := a.Next(), b.Next()
		if va != vb {
			t.Fatal("same master seed produced different sequences")
		}
		if seen[va] {
			t.Fatal("seed sequence repeated a value suspiciously early")
		}
		seen[va] = true
	}
}

func TestNewRandomPanicsOnBadBuckets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRandom(seed, 0) should panic")
		}
	}()
	NewRandom(1, 0)
}
