// Package hashfn provides the indexing functions used by set-associative
// caches. The paper assumes a fully random hash h : U → [k/α]; we substitute
// a seeded SplitMix64-style finalizing mixer, which for deterministic
// (adversary-oblivious) item sets is statistically indistinguishable from a
// fully random function in the balls-and-bins events the analysis relies on
// (verified empirically in experiments E3/E4).
//
// The package also provides a deliberately weak modulo indexer used as an
// ablation: it violates the fully-random assumption on structured universes
// and makes the threshold phenomenon disappear (experiment E1).
package hashfn

import (
	"fmt"

	"repro/internal/trace"
)

// Hasher maps items to bucket indices in [0, Buckets()).
type Hasher interface {
	// Bucket returns the bucket index of x.
	Bucket(x trace.Item) int
	// Buckets returns the number of buckets n.
	Buckets() int
}

// Mix64 applies the SplitMix64 finalizer to x. It is a bijection on 64-bit
// integers with excellent avalanche behaviour.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Random is a seeded pseudo-random Hasher. Two Random hashers with the same
// seed and bucket count agree on every item; distinct seeds behave as
// independent draws of the indexing function, which is what rehashing needs.
type Random struct {
	seed    uint64
	buckets int
}

// NewRandom returns a Random hasher over n buckets. n must be positive.
func NewRandom(seed uint64, n int) *Random {
	if n <= 0 {
		panic(fmt.Sprintf("hashfn: bucket count %d must be positive", n))
	}
	return &Random{seed: seed, buckets: n}
}

// Bucket implements Hasher.
func (r *Random) Bucket(x trace.Item) int {
	h := Mix64(uint64(x) ^ r.seed)
	// Lemire's multiply-shift maps h uniformly onto [0, buckets) without the
	// modulo bias of h % buckets.
	hi, _ := mul64(h, uint64(r.buckets))
	return int(hi)
}

// Buckets implements Hasher.
func (r *Random) Buckets() int { return r.buckets }

// Seed returns the seed this hasher was built with.
func (r *Random) Seed() uint64 { return r.seed }

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return hi, lo
}

// Modulo is the weak indexer x mod n (plus a fixed offset so that seed-like
// variation is possible). It is *not* fully random: contiguous universes
// stripe perfectly evenly, and strided universes can all collide. Used only
// for the hash-quality ablation.
type Modulo struct {
	offset  uint64
	buckets int
}

// NewModulo returns a Modulo hasher over n buckets.
func NewModulo(offset uint64, n int) *Modulo {
	if n <= 0 {
		panic(fmt.Sprintf("hashfn: bucket count %d must be positive", n))
	}
	return &Modulo{offset: offset, buckets: n}
}

// Bucket implements Hasher.
func (m *Modulo) Bucket(x trace.Item) int {
	return int((uint64(x) + m.offset) % uint64(m.buckets))
}

// Buckets implements Hasher.
func (m *Modulo) Buckets() int { return m.buckets }

// SeedSequence derives a stream of independent-looking seeds from one master
// seed; used to give each trial in a multi-seed experiment its own hash
// function and workload randomness.
type SeedSequence struct {
	state uint64
}

// NewSeedSequence returns a SeedSequence starting from master.
func NewSeedSequence(master uint64) *SeedSequence {
	return &SeedSequence{state: master}
}

// Next returns the next derived seed. The underlying generator is SplitMix64,
// whose outputs are equidistributed over the full 64-bit period.
func (s *SeedSequence) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	return Mix64(s.state)
}
