// Package adversary constructs the oblivious adversarial request sequences
// of Section 5 (Theorem 4) and the fixed-set repetition attack from the
// Section 6 remark about rehashing on access counts.
//
// The Theorem 4 adversary picks s disjoint sets S_1..S_s of k' = (1−δ)k
// items each, and replays each set sequentially t times before moving to
// the next. A conservative fully associative algorithm of size k' misses
// only on each item's first access (cost k's), while in the set-associative
// cache each S_i independently has constant probability of oversubscribing
// some bucket, whose conflict misses then recur on all t repetitions.
package adversary

import (
	"fmt"
	"math"

	"repro/internal/trace"
)

// Theorem4 describes one instantiation of the Theorem 4 adversary.
type Theorem4 struct {
	// K is the set-associative cache size k.
	K int
	// Delta is the capacity gap δ; each S_i has k' = (1−δ)k items.
	Delta float64
	// Sets is the number s of disjoint item sets.
	Sets int
	// Reps is the number t of sequential replays of each set.
	Reps int
	// Base offsets all item identifiers.
	Base trace.Item
}

// Validate checks the construction parameters.
func (a Theorem4) Validate() error {
	if a.K <= 0 {
		return fmt.Errorf("adversary: k = %d must be positive", a.K)
	}
	if a.Delta <= 0 || a.Delta >= 1 {
		return fmt.Errorf("adversary: delta = %v must be in (0, 1)", a.Delta)
	}
	if a.Sets <= 0 || a.Reps <= 0 {
		return fmt.Errorf("adversary: sets = %d and reps = %d must be positive", a.Sets, a.Reps)
	}
	return nil
}

// KPrime returns k' = (1−δ)k, the size of each adversarial item set.
func (a Theorem4) KPrime() int {
	kp := int(math.Floor((1 - a.Delta) * float64(a.K)))
	if kp < 1 {
		kp = 1
	}
	return kp
}

// SequenceLen returns the length of the sequence Build produces: s·t·k'.
func (a Theorem4) SequenceLen() int { return a.Sets * a.Reps * a.KPrime() }

// ItemSets returns the s disjoint item sets S_1..S_s, as contiguous ranges
// (disjointness is all the proof requires; contiguity is irrelevant once the
// items pass through the fully random indexing hash).
func (a Theorem4) ItemSets() []trace.ItemSet {
	kp := trace.Item(a.KPrime())
	out := make([]trace.ItemSet, a.Sets)
	for i := range out {
		lo := a.Base + trace.Item(i)*kp
		out[i] = trace.Range(lo, lo+kp)
	}
	return out
}

// Build materializes the full adversarial sequence:
//
//	for i = 1..s: repeat t times: access every item of S_i sequentially.
func (a Theorem4) Build() trace.Sequence {
	if err := a.Validate(); err != nil {
		panic(err)
	}
	kp := trace.Item(a.KPrime())
	out := make(trace.Sequence, 0, a.SequenceLen())
	for i := 0; i < a.Sets; i++ {
		lo := a.Base + trace.Item(i)*kp
		pass := trace.RangeSeq(lo, lo+kp)
		for rep := 0; rep < a.Reps; rep++ {
			out = append(out, pass...)
		}
	}
	return out
}

// PaperParams returns the parameters the proof of Theorem 4 uses:
// s = 16·exp(8(1−δ)⁻¹δ²α) and t = c·α·s², for target competitive ratio c.
// These blow up quickly; experiments cap them with ScaledParams.
func PaperParams(alpha int, delta, c float64) (s, t int) {
	sf := 16 * math.Exp(8*delta*delta*float64(alpha)/(1-delta))
	return saturatingInt(sf), saturatingInt(c * float64(alpha) * sf * sf)
}

// saturatingInt converts a (possibly huge or infinite) float to an int,
// saturating instead of overflowing: the paper's parameters grow like
// exp(α) and blow past int64 for realistic α.
func saturatingInt(f float64) int {
	const maxSafe = float64(1 << 62)
	if f >= maxSafe || math.IsInf(f, 1) {
		return 1 << 62
	}
	return int(math.Ceil(f))
}

// ScaledParams caps the paper's parameters at laptop scale while preserving
// the construction's shape: s is clamped to [4, maxSets] and t to
// [2, maxReps]. The theorem's mechanism (each S_i independently
// oversubscribes some bucket with constant probability) is unaffected by
// the caps; only the attainable competitive-ratio certificate shrinks.
func ScaledParams(alpha int, delta, c float64, maxSets, maxReps int) (s, t int) {
	s, t = PaperParams(alpha, delta, c)
	s = clamp(s, 4, maxSets)
	t = clamp(t, 2, maxReps)
	return s, t
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// FixedSet is the Section 6 remark's attack against rehash-every-N-accesses:
// a single set of k' = (1−δ)k items is replayed ad infinitum. Against a
// miss-count rehash schedule this sequence is harmless (after at most one
// unlucky hash the cache settles), but a schedule that rehashes on access
// counts redraws the hash forever, repeatedly recreating conflict misses.
type FixedSet struct {
	K     int
	Delta float64
	Reps  int
	Base  trace.Item
}

// KPrime returns the working-set size (1−δ)k.
func (f FixedSet) KPrime() int {
	kp := int(math.Floor((1 - f.Delta) * float64(f.K)))
	if kp < 1 {
		kp = 1
	}
	return kp
}

// Build materializes the replayed-set sequence of length Reps·KPrime().
func (f FixedSet) Build() trace.Sequence {
	if f.K <= 0 || f.Delta <= 0 || f.Delta >= 1 || f.Reps <= 0 {
		panic(fmt.Sprintf("adversary: invalid FixedSet %+v", f))
	}
	kp := trace.Item(f.KPrime())
	pass := trace.RangeSeq(f.Base, f.Base+kp)
	return pass.Repeat(f.Reps)
}
