package adversary

import (
	"testing"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/trace"
)

func TestTheorem4Shape(t *testing.T) {
	a := Theorem4{K: 100, Delta: 0.2, Sets: 3, Reps: 4}
	if got := a.KPrime(); got != 80 {
		t.Fatalf("KPrime = %d, want 80", got)
	}
	seq := a.Build()
	if len(seq) != a.SequenceLen() || len(seq) != 3*4*80 {
		t.Fatalf("len = %d, want %d", len(seq), 3*4*80)
	}
	// Sets must be disjoint and each phase must only touch its own set.
	sets := a.ItemSets()
	for i := 0; i < len(sets); i++ {
		for j := i + 1; j < len(sets); j++ {
			if sets[i].Intersects(sets[j]) {
				t.Fatalf("S%d and S%d intersect", i, j)
			}
		}
	}
	phaseLen := 4 * 80
	for i := 0; i < 3; i++ {
		phase := seq[i*phaseLen : (i+1)*phaseLen]
		if !phase.Universe().Equal(sets[i]) {
			t.Fatalf("phase %d universe mismatch", i)
		}
	}
}

// TestTheorem4FullAssocCost: the conservative fully-associative baseline at
// capacity k' misses exactly once per distinct item — C(A_k', σ) = k'·s.
func TestTheorem4FullAssocCost(t *testing.T) {
	a := Theorem4{K: 64, Delta: 0.25, Sets: 4, Reps: 5}
	seq := a.Build()
	for _, kind := range []policy.Kind{policy.LRUKind, policy.FIFOKind, policy.ClockKind} {
		fa := core.NewFullAssoc(policy.NewFactory(kind, 0), a.KPrime())
		st := core.RunSequence(fa, seq)
		want := uint64(a.KPrime() * a.Sets)
		if st.Misses != want {
			t.Errorf("%v full-assoc misses = %d, want %d", kind, st.Misses, want)
		}
	}
}

// TestTheorem4HurtsSetAssociative: the set-associative cache (same policy,
// larger capacity k) must suffer repeated conflict misses: strictly more
// than k'·s, typically by a large factor when α is small.
func TestTheorem4HurtsSetAssociative(t *testing.T) {
	a := Theorem4{K: 256, Delta: 0.1, Sets: 4, Reps: 20}
	seq := a.Build()
	sa := core.MustNewSetAssoc(core.SetAssocConfig{
		Capacity: a.K, Alpha: 2, Factory: policy.NewFactory(policy.LRUKind, 0), Seed: 5,
	})
	st := core.RunSequence(sa, seq)
	baseline := uint64(a.KPrime() * a.Sets)
	if st.Misses < 2*baseline {
		t.Errorf("adversary too weak: set-assoc misses %d < 2×%d", st.Misses, baseline)
	}
}

func TestPaperParamsGrowth(t *testing.T) {
	s1, t1 := PaperParams(16, 0.1, 1)
	s2, t2 := PaperParams(64, 0.1, 1)
	if s2 <= s1 || t2 <= t1 {
		t.Fatalf("paper params should grow with α: s %d→%d, t %d→%d", s1, s2, t1, t2)
	}
	if s1 < 16 {
		t.Fatalf("s = %d below the additive floor 16", s1)
	}
}

func TestScaledParamsClamped(t *testing.T) {
	s, reps := ScaledParams(1024, 0.5, 10, 8, 50)
	if s != 8 || reps != 50 {
		t.Fatalf("ScaledParams = (%d, %d), want clamped (8, 50)", s, reps)
	}
	s, reps = ScaledParams(4, 0.01, 1, 100, 1000)
	if s < 4 || reps < 2 {
		t.Fatalf("ScaledParams = (%d, %d), want floors applied", s, reps)
	}
}

func TestFixedSetBuild(t *testing.T) {
	f := FixedSet{K: 10, Delta: 0.2, Reps: 3, Base: 50}
	seq := f.Build()
	if f.KPrime() != 8 {
		t.Fatalf("KPrime = %d, want 8", f.KPrime())
	}
	if len(seq) != 24 {
		t.Fatalf("len = %d, want 24", len(seq))
	}
	if seq.DistinctCount() != 8 {
		t.Fatalf("distinct = %d, want 8", seq.DistinctCount())
	}
	if seq[0] != 50 || seq[8] != 50 {
		t.Fatalf("replay structure broken: %v", seq[:10])
	}
}

func TestValidation(t *testing.T) {
	bad := []Theorem4{
		{K: 0, Delta: 0.5, Sets: 1, Reps: 1},
		{K: 10, Delta: 0, Sets: 1, Reps: 1},
		{K: 10, Delta: 1, Sets: 1, Reps: 1},
		{K: 10, Delta: 0.5, Sets: 0, Reps: 1},
		{K: 10, Delta: 0.5, Sets: 1, Reps: 0},
	}
	for i, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
	mustPanic := func() {
		defer func() { recover() }()
		(Theorem4{}).Build()
		t.Error("Build on invalid config should panic")
	}
	mustPanic()
	if err := (Theorem4{K: 10, Delta: 0.5, Sets: 1, Reps: 1}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestKPrimeFloor(t *testing.T) {
	a := Theorem4{K: 2, Delta: 0.9, Sets: 1, Reps: 1}
	if a.KPrime() < 1 {
		t.Fatal("KPrime must be at least 1")
	}
	var universe trace.ItemSet = a.ItemSets()[0]
	if universe.Len() != a.KPrime() {
		t.Fatalf("item set size %d != KPrime %d", universe.Len(), a.KPrime())
	}
}
