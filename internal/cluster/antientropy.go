package cluster

import (
	"fmt"
	"time"

	"repro/internal/wire"
)

// Anti-entropy (wire v8) is the cluster's self-healing backstop: a
// periodic sweep that compares every member's resident record set —
// {key, version, tombstone} triples from the chunked KEYS stream — and
// repairs divergence in both directions through the same conditional
// versioned writes (v4) that replication and warm-up use. Hinted handoff
// (server.go's hint queue) heals the failures the router *observed*;
// anti-entropy heals the ones nobody observed — a hint dropped for
// budget, a member that crashed holding queued hints, replicas diverged
// by a partition. Tombstones flow through the sweep like any other
// record, which is what makes delete durable: a replica that missed a
// DEL learns the tombstone here instead of resurrecting the value, and
// the divergence window for any key is bounded by the sweep period.

// aeChunk bounds how many records one pipelined repair round trip
// carries, keeping peak buffering (chunk × value size) modest — the same
// ceiling warm-up and migration use.
const aeChunk = 256

// antiEntropyLoop runs sweeps every interval until Close. Started by
// Dial when Options.AntiEntropy > 0; Close stops it via aeStop and waits
// on aeDone.
func (c *Client) antiEntropyLoop(interval time.Duration) {
	defer close(c.aeDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.aeStop:
			return
		case <-t.C:
			c.AntiEntropySweep()
		}
	}
}

// aeRecord is one key's winning record during a sweep: the highest
// version any member holds, and which member holds it (the value source
// for live repairs).
type aeRecord struct {
	rec    wire.KeyRec
	holder string
}

// AntiEntropySweep runs one full sweep: snapshot every reachable
// member's record set, determine each key's winning record (highest
// version, tombstone or live), and repair every owner that is missing it
// or holds an older version. Tombstone repairs are written directly from
// the snapshot; live repairs re-read the value from the winning holder
// first, so the bytes written are at least as fresh as the snapshot.
// Winning tombstones also invalidate this router's near-cache, so a
// delete that happened entirely on other routers cannot keep serving
// here past the sweep.
//
// Unreachable members are skipped — their records neither win nor get
// repaired this round; the next sweep retries. It returns how many
// repairs applied and the first error encountered (nil when every
// reachable member was fully processed). Runs on dedicated connections
// registered for interrupt, so Close can cut a sweep short.
func (c *Client) AntiEntropySweep() (repaired int, err error) {
	if c.closed.Load() {
		return 0, fmt.Errorf("cluster: client closed")
	}
	c.mu.RLock()
	members := c.ring.Nodes()
	rf := c.effReplicas()
	c.mu.RUnlock()

	// Phase 1: snapshot. One dedicated connection per reachable member,
	// held open for the repair phase (value reads and repair writes).
	conns := make(map[string]*wire.Client, len(members))
	defer func() {
		for _, cl := range conns {
			c.warmupRelease(cl)
		}
	}()
	best := make(map[uint64]aeRecord)
	held := make(map[uint64]map[string]uint64)
	for _, addr := range members {
		if c.closed.Load() {
			return repaired, fmt.Errorf("cluster: client closed")
		}
		cl, derr := c.warmupDial(addr)
		if derr != nil {
			continue // unreachable: skip this round
		}
		recs, kerr := cl.Keys()
		if kerr != nil {
			c.warmupRelease(cl)
			if err == nil {
				err = fmt.Errorf("cluster: anti-entropy KEYS %s: %w", addr, kerr)
			}
			continue
		}
		conns[addr] = cl
		for _, rec := range recs {
			h := held[rec.Key]
			if h == nil {
				h = make(map[string]uint64, rf)
				held[rec.Key] = h
			}
			h[addr] = rec.Version
			if b, ok := best[rec.Key]; !ok || rec.Version > b.rec.Version {
				best[rec.Key] = aeRecord{rec: rec, holder: addr}
			}
		}
	}

	// Phase 2: plan. For each key, every owner missing the winning
	// record (or holding an older version) gets a repair. The ring is
	// consulted once under the read lock so a concurrent topology change
	// cannot split the plan across two views.
	plans := make(map[string][]aeRecord)
	c.mu.RLock()
	for key, b := range best {
		for _, owner := range c.ring.OwnersFor(key, rf) {
			if hv, ok := held[key][owner]; !ok || hv < b.rec.Version {
				plans[owner] = append(plans[owner], b)
			}
		}
	}
	c.mu.RUnlock()

	// Winning tombstones invalidate the near-cache regardless of whether
	// any owner needs repair: this router may be the only diverged party.
	if c.near != nil {
		for key, b := range best {
			if b.rec.Tombstone {
				c.near.tombstone(key, b.rec.Version)
			}
		}
	}

	// Phase 3: repair. Tombstones go straight from the snapshot; live
	// records are re-read from their winning holder in the same chunk,
	// then conditionally re-written to the lagging owner.
	for target, plan := range plans {
		dst := conns[target]
		if dst == nil {
			continue // owner unreachable; next sweep retries
		}
		var tombs []wire.KeyRec
		liveBySrc := make(map[string][]wire.KeyRec)
		for _, p := range plan {
			if p.rec.Tombstone {
				tombs = append(tombs, p.rec)
			} else {
				liveBySrc[p.holder] = append(liveBySrc[p.holder], p.rec)
			}
		}
		for off := 0; off < len(tombs); off += aeChunk {
			end := off + aeChunk
			if end > len(tombs) {
				end = len(tombs)
			}
			applied, stale, serr := dst.SetBatchRecs(tombs[off:end], wire.SetFlagRepair, nil)
			c.aeRepairs.Add(uint64(applied))
			c.aeStale.Add(uint64(stale))
			repaired += applied
			if serr != nil {
				if err == nil {
					err = fmt.Errorf("cluster: anti-entropy repairing %s: %w", target, serr)
				}
				break
			}
		}
		for srcAddr, recs := range liveBySrc {
			src := conns[srcAddr]
			if src == nil {
				continue
			}
			n, serr := c.aeRepairLive(src, dst, recs)
			c.aeRepairs.Add(uint64(n))
			repaired += n
			if serr != nil && err == nil {
				err = fmt.Errorf("cluster: anti-entropy repairing %s from %s: %w", target, srcAddr, serr)
			}
		}
	}
	c.aeSweeps.Add(1)
	return repaired, err
}

// aeRepairLive copies recs' values from src to dst in bounded chunks:
// re-read each value (with the version it is stored under now, which may
// be newer than the snapshot's), then conditionally re-write it. A key
// that misses on src vanished since the snapshot — evicted, or deleted
// into a tombstone GET does not serve — and is skipped; the next sweep
// sees the newer state.
func (c *Client) aeRepairLive(src, dst *wire.Client, recs []wire.KeyRec) (repaired int, err error) {
	keys := make([]uint64, 0, aeChunk)
	vers := make([]uint64, 0, aeChunk)
	vals := make([][]byte, 0, aeChunk)
	for off := 0; off < len(recs); off += aeChunk {
		end := off + aeChunk
		if end > len(recs) {
			end = len(recs)
		}
		keys, vers, vals = keys[:0], vers[:0], vals[:0]
		chunk := recs[off:end]
		sub := make([]uint64, len(chunk))
		for i, rec := range chunk {
			sub[i] = rec.Key
		}
		gerr := src.GetBatchVersions(sub, func(i int, hit bool, ver uint64, val []byte) {
			if !hit {
				return
			}
			keys = append(keys, sub[i])
			vers = append(vers, ver)
			vals = append(vals, append([]byte(nil), val...))
		})
		if gerr != nil {
			return repaired, gerr
		}
		applied, stale, serr := dst.SetBatchVersioned(keys, wire.SetFlagRepair,
			func(i int) uint64 { return vers[i] },
			func(i int) []byte { return vals[i] })
		c.aeStale.Add(uint64(stale))
		repaired += applied
		if serr != nil {
			return repaired, serr
		}
	}
	return repaired, nil
}

// AntiEntropyCounters is the router's sweep tally; see
// Client.AntiEntropy.
type AntiEntropyCounters struct {
	// Sweeps counts completed sweep passes (including ones that found
	// nothing to repair). Repairs counts records conditionally written to
	// a lagging owner and applied; Stale counts repair writes the owner
	// rejected because it already held something strictly newer — for a
	// maintenance copy, success by other means.
	Sweeps, Repairs, Stale uint64
}

// AntiEntropy returns the anti-entropy sweep counters.
func (c *Client) AntiEntropy() AntiEntropyCounters {
	return AntiEntropyCounters{
		Sweeps:  c.aeSweeps.Load(),
		Repairs: c.aeRepairs.Load(),
		Stale:   c.aeStale.Load(),
	}
}
