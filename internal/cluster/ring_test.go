package cluster

import (
	"fmt"
	"testing"
)

func TestRingDeterministicAndBalanced(t *testing.T) {
	nodes := []string{"a:1", "b:1", "c:1", "d:1", "e:1"}
	r1 := NewRing(0, nodes...)
	r2 := NewRing(0, nodes...)
	const n = 100_000
	for i := uint64(0); i < 1000; i++ {
		o1, ok1 := r1.Node(i)
		o2, ok2 := r2.Node(i)
		if !ok1 || !ok2 || o1 != o2 {
			t.Fatalf("rings disagree on key %d: %q vs %q", i, o1, o2)
		}
	}
	share := r1.Sample(n, 7)
	for _, node := range nodes {
		frac := float64(share[node]) / n
		if frac < 0.10 || frac > 0.30 {
			t.Errorf("node %s owns %.1f%% of sampled keys; want near 20%%", node, 100*frac)
		}
	}
}

// TestRingBoundedMovement is the consistent-hashing contract: adding a
// member moves keys only *to* it, and only about 1/(n+1) of them; removing
// a member moves keys only *off* it.
func TestRingBoundedMovement(t *testing.T) {
	nodes := []string{"a:1", "b:1", "c:1", "d:1", "e:1"}
	before := NewRing(0, nodes...)
	after := NewRing(0, nodes...)
	after.Add("f:1")

	const n = 100_000
	moved := 0
	for i := 0; i < n; i++ {
		key := uint64(i) * 0x9e3779b97f4a7c15
		ob, _ := before.Node(key)
		oa, _ := after.Node(key)
		if ob != oa {
			moved++
			if oa != "f:1" {
				t.Fatalf("key %d moved %q → %q, not to the added node", key, ob, oa)
			}
		}
	}
	frac := float64(moved) / n
	if frac < 0.05 || frac > 0.35 {
		t.Errorf("adding a 6th node moved %.1f%% of keys; want near 1/6", 100*frac)
	}

	after.Remove("f:1")
	for i := 0; i < n; i++ {
		key := uint64(i) * 0x9e3779b97f4a7c15
		ob, _ := before.Node(key)
		oa, _ := after.Node(key)
		if ob != oa {
			t.Fatalf("add+remove is not a no-op: key %d owned by %q then %q", key, ob, oa)
		}
	}
}

// TestOwnersForDistinct: a key's replica set has exactly R distinct
// members, its head agrees with Node, and asking for more replicas than
// members returns every member.
func TestOwnersForDistinct(t *testing.T) {
	nodes := []string{"a:1", "b:1", "c:1", "d:1", "e:1"}
	r := NewRing(0, nodes...)
	for _, rep := range []int{1, 2, 3, 5} {
		for key := uint64(0); key < 2000; key++ {
			owners := r.OwnersFor(key, rep)
			if len(owners) != rep {
				t.Fatalf("OwnersFor(%d, %d) returned %d owners", key, rep, len(owners))
			}
			seen := make(map[string]bool, rep)
			for _, o := range owners {
				if seen[o] {
					t.Fatalf("OwnersFor(%d, %d) repeats owner %q: %v", key, rep, o, owners)
				}
				seen[o] = true
			}
			if primary, _ := r.Node(key); owners[0] != primary {
				t.Fatalf("OwnersFor(%d)[0] = %q, Node = %q", key, owners[0], primary)
			}
		}
	}
	if got := r.OwnersFor(1, 99); len(got) != len(nodes) {
		t.Fatalf("OwnersFor(1, 99) returned %d owners, want all %d members", len(got), len(nodes))
	}
	if got := r.OwnersFor(1, 0); got != nil {
		t.Fatalf("OwnersFor(1, 0) = %v, want nil", got)
	}
	if got := NewRing(0).OwnersFor(1, 2); got != nil {
		t.Fatalf("empty ring OwnersFor = %v, want nil", got)
	}
}

// TestOwnersForFullMembership pins the R = n edge: every member is an
// owner of every key, exactly once, with the primary still in front — and
// R above n is clamped, never padded with repeats.
func TestOwnersForFullMembership(t *testing.T) {
	nodes := []string{"a:1", "b:1", "c:1", "d:1"}
	r := NewRing(0, nodes...)
	for key := uint64(0); key < 2000; key++ {
		owners := r.OwnersFor(key, len(nodes))
		if len(owners) != len(nodes) {
			t.Fatalf("OwnersFor(%d, n) returned %d owners, want all %d", key, len(owners), len(nodes))
		}
		seen := make(map[string]bool, len(owners))
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("OwnersFor(%d, n) repeats %q: %v", key, o, owners)
			}
			seen[o] = true
		}
		if primary, _ := r.Node(key); owners[0] != primary {
			t.Fatalf("OwnersFor(%d, n)[0] = %q, Node = %q", key, owners[0], primary)
		}
		if clamped := r.OwnersFor(key, len(nodes)+3); len(clamped) != len(nodes) {
			t.Fatalf("OwnersFor(%d, n+3) returned %d owners, want clamp to %d", key, len(clamped), len(nodes))
		}
	}
	// The client-facing guard rejects R > n up front rather than clamping:
	// a configured replication factor the cluster cannot honor is an
	// operator error, not a silent degrade.
	if err := ValidateReplication(len(nodes)+1, 0, len(nodes)); err == nil {
		t.Error("ValidateReplication accepted R > member count")
	}
}

// TestOwnersForVirtualNodeCollisions builds a ring whose virtual points
// collide pairwise at identical hashes (impossible to arrange through the
// public API, so the points are planted directly) and checks the owner
// walk still yields distinct owners in the deterministic (hash, node)
// order the sort defines.
func TestOwnersForVirtualNodeCollisions(t *testing.T) {
	r := &Ring{
		vnodes: 2,
		nodes:  map[string]bool{"a:1": true, "b:1": true},
		points: []point{
			{hash: 100, node: "a:1"},
			{hash: 100, node: "b:1"}, // collides with a's point
			{hash: 200, node: "a:1"},
			{hash: 200, node: "b:1"}, // and again
		},
	}
	for key := uint64(0); key < 500; key++ {
		owners := r.OwnersFor(key, 2)
		if len(owners) != 2 {
			t.Fatalf("OwnersFor(%d, 2) = %v on a colliding ring", key, owners)
		}
		if owners[0] == owners[1] {
			t.Fatalf("OwnersFor(%d, 2) repeats %q despite two members", key, owners[0])
		}
		// Ties break by node name, so "a:1" always precedes "b:1" at the
		// same hash: the walk is deterministic, not accidental.
		if owners[0] != "a:1" || owners[1] != "b:1" {
			t.Fatalf("OwnersFor(%d, 2) = %v, want deterministic [a:1 b:1] under total collision", key, owners)
		}
	}
}

// TestOwnersForReassignmentOnAdd is the replicated consistent-hashing
// contract: joining an (n+1)-th member changes a key's R-way owner set only
// by inserting the newcomer, and does so for only about R/(n+1) of keys.
func TestOwnersForReassignmentOnAdd(t *testing.T) {
	nodes := []string{"a:1", "b:1", "c:1", "d:1", "e:1"}
	const rep = 2
	before := NewRing(0, nodes...)
	after := NewRing(0, nodes...)
	after.Add("f:1")

	const n = 100_000
	changed := 0
	for i := 0; i < n; i++ {
		key := uint64(i) * 0x9e3779b97f4a7c15
		ob := before.OwnersFor(key, rep)
		oa := after.OwnersFor(key, rep)
		same := true
		for j := range ob {
			if ob[j] != oa[j] {
				same = false
			}
		}
		if same {
			continue
		}
		changed++
		// A changed set must contain the newcomer, and its other members
		// must all come from the old set: nothing reshuffles between
		// incumbents.
		if !contains(oa, "f:1") {
			t.Fatalf("key %d owner set changed %v → %v without involving the added node", key, ob, oa)
		}
		for _, o := range oa {
			if o != "f:1" && !contains(ob, o) {
				t.Fatalf("key %d gained incumbent owner %q not in old set %v", key, o, ob)
			}
		}
	}
	// Expect ≈ R/(n+1) = 2/6 ≈ 33% of owner sets touched; generous bounds
	// absorb virtual-node variance.
	frac := float64(changed) / n
	if frac < 0.20 || frac > 0.50 {
		t.Errorf("adding a 6th node changed %.1f%% of %d-way owner sets; want near %.0f%%",
			100*frac, rep, 100*float64(rep)/float64(len(nodes)+1))
	}
}

// TestSampleOwnersBalance: replica-set slots divide roughly evenly, and the
// counts sum to samples × R — the denominator per-replica-set balance
// reporting divides by.
func TestSampleOwnersBalance(t *testing.T) {
	nodes := []string{"a:1", "b:1", "c:1", "d:1"}
	r := NewRing(0, nodes...)
	const n, rep = 50_000, 3
	share := r.SampleOwners(n, rep, 7)
	total := 0
	for _, node := range nodes {
		total += share[node]
		frac := float64(share[node]) / (n * rep)
		if frac < 0.15 || frac > 0.35 {
			t.Errorf("node %s holds %.1f%% of replica-set slots; want near 25%%", node, 100*frac)
		}
	}
	if total != n*rep {
		t.Errorf("replica-set slots sum to %d, want %d×%d", total, n, rep)
	}
}

func TestValidateReplication(t *testing.T) {
	cases := []struct {
		replicas, quorum, members int
		ok                        bool
	}{
		{0, 0, 3, true}, // unreplicated default
		{1, 1, 1, true}, // R=W=1
		{2, 0, 3, true}, // W defaults to R
		{2, 1, 3, true}, // sloppy quorum
		{3, 3, 3, true}, // write-all
		{-1, 0, 3, false},
		{4, 0, 3, false}, // more replicas than members
		{2, 3, 3, false}, // quorum above R
		{0, 2, 3, false}, // quorum above implicit R=1
		{2, -1, 3, false},
	}
	for _, c := range cases {
		err := ValidateReplication(c.replicas, c.quorum, c.members)
		if (err == nil) != c.ok {
			t.Errorf("ValidateReplication(%d, %d, %d) = %v, want ok=%v",
				c.replicas, c.quorum, c.members, err, c.ok)
		}
	}
}

func TestRingEmptyAndMembership(t *testing.T) {
	r := NewRing(4)
	if _, ok := r.Node(1); ok {
		t.Fatal("empty ring claimed an owner")
	}
	r.Add("a:1")
	r.Add("a:1") // duplicate add is a no-op
	if got := r.NumNodes(); got != 1 {
		t.Fatalf("NumNodes = %d, want 1", got)
	}
	if owner, ok := r.Node(42); !ok || owner != "a:1" {
		t.Fatalf("single-node ring routed to %q, %v", owner, ok)
	}
	r.Remove("missing") // absent remove is a no-op
	r.Remove("a:1")
	if _, ok := r.Node(1); ok || r.NumNodes() != 0 {
		t.Fatal("ring not empty after removing its only member")
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		vnodes int
		nodes  []string
		ok     bool
	}{
		{0, []string{"a:1"}, true},
		{64, []string{"a:1", "b:1"}, true},
		{-1, []string{"a:1"}, false},
		{0, nil, false},
		{0, []string{""}, false},
		{0, []string{"a:1", "a:1"}, false},
	}
	for _, c := range cases {
		err := Validate(c.vnodes, c.nodes)
		if (err == nil) != c.ok {
			t.Errorf("Validate(%d, %v) = %v, want ok=%v", c.vnodes, c.nodes, err, c.ok)
		}
	}
}

func BenchmarkRingLookup(b *testing.B) {
	for _, nodes := range []int{3, 16, 64} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			r := NewRing(0)
			for i := 0; i < nodes; i++ {
				r.Add(fmt.Sprintf("10.0.0.%d:7070", i))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Node(uint64(i))
			}
		})
	}
}
