package cluster

import (
	"fmt"
	"testing"
)

func TestRingDeterministicAndBalanced(t *testing.T) {
	nodes := []string{"a:1", "b:1", "c:1", "d:1", "e:1"}
	r1 := NewRing(0, nodes...)
	r2 := NewRing(0, nodes...)
	const n = 100_000
	for i := uint64(0); i < 1000; i++ {
		o1, ok1 := r1.Node(i)
		o2, ok2 := r2.Node(i)
		if !ok1 || !ok2 || o1 != o2 {
			t.Fatalf("rings disagree on key %d: %q vs %q", i, o1, o2)
		}
	}
	share := r1.Sample(n, 7)
	for _, node := range nodes {
		frac := float64(share[node]) / n
		if frac < 0.10 || frac > 0.30 {
			t.Errorf("node %s owns %.1f%% of sampled keys; want near 20%%", node, 100*frac)
		}
	}
}

// TestRingBoundedMovement is the consistent-hashing contract: adding a
// member moves keys only *to* it, and only about 1/(n+1) of them; removing
// a member moves keys only *off* it.
func TestRingBoundedMovement(t *testing.T) {
	nodes := []string{"a:1", "b:1", "c:1", "d:1", "e:1"}
	before := NewRing(0, nodes...)
	after := NewRing(0, nodes...)
	after.Add("f:1")

	const n = 100_000
	moved := 0
	for i := 0; i < n; i++ {
		key := uint64(i) * 0x9e3779b97f4a7c15
		ob, _ := before.Node(key)
		oa, _ := after.Node(key)
		if ob != oa {
			moved++
			if oa != "f:1" {
				t.Fatalf("key %d moved %q → %q, not to the added node", key, ob, oa)
			}
		}
	}
	frac := float64(moved) / n
	if frac < 0.05 || frac > 0.35 {
		t.Errorf("adding a 6th node moved %.1f%% of keys; want near 1/6", 100*frac)
	}

	after.Remove("f:1")
	for i := 0; i < n; i++ {
		key := uint64(i) * 0x9e3779b97f4a7c15
		ob, _ := before.Node(key)
		oa, _ := after.Node(key)
		if ob != oa {
			t.Fatalf("add+remove is not a no-op: key %d owned by %q then %q", key, ob, oa)
		}
	}
}

func TestRingEmptyAndMembership(t *testing.T) {
	r := NewRing(4)
	if _, ok := r.Node(1); ok {
		t.Fatal("empty ring claimed an owner")
	}
	r.Add("a:1")
	r.Add("a:1") // duplicate add is a no-op
	if got := r.NumNodes(); got != 1 {
		t.Fatalf("NumNodes = %d, want 1", got)
	}
	if owner, ok := r.Node(42); !ok || owner != "a:1" {
		t.Fatalf("single-node ring routed to %q, %v", owner, ok)
	}
	r.Remove("missing") // absent remove is a no-op
	r.Remove("a:1")
	if _, ok := r.Node(1); ok || r.NumNodes() != 0 {
		t.Fatal("ring not empty after removing its only member")
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		vnodes int
		nodes  []string
		ok     bool
	}{
		{0, []string{"a:1"}, true},
		{64, []string{"a:1", "b:1"}, true},
		{-1, []string{"a:1"}, false},
		{0, nil, false},
		{0, []string{""}, false},
		{0, []string{"a:1", "a:1"}, false},
	}
	for _, c := range cases {
		err := Validate(c.vnodes, c.nodes)
		if (err == nil) != c.ok {
			t.Errorf("Validate(%d, %v) = %v, want ok=%v", c.vnodes, c.nodes, err, c.ok)
		}
	}
}

func BenchmarkRingLookup(b *testing.B) {
	for _, nodes := range []int{3, 16, 64} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			r := NewRing(0)
			for i := 0; i < nodes; i++ {
				r.Add(fmt.Sprintf("10.0.0.%d:7070", i))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Node(uint64(i))
			}
		})
	}
}
