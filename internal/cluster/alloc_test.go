package cluster

import (
	"sync/atomic"
	"testing"

	"repro/internal/wire"
)

// TestRouterGetBatchAllocs gates the router's plain GetBatch fan-out at
// zero heap allocations per batch in steady state: the partition scratch
// (idxs, byNode map, subBatch structs) is pooled, the member locks are
// taken without closures, and the wire codec underneath is allocation-free.
// AllocsPerRun counts process-global mallocs, so the member servers'
// request handling is inside the gate too.
func TestRouterGetBatchAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime allocates per operation; alloc gate runs without -race")
	}
	addrs := startCluster(t, 2, 4096, 16)
	c, err := Dial(addrs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	keys := make([]uint64, 16)
	for i := range keys {
		keys[i] = uint64(i)
		if err := c.Set(keys[i], []byte("payload-64-bytes")); err != nil {
			t.Fatal(err)
		}
	}
	var missed int
	visit := func(i int, hit bool, value []byte) {
		if !hit {
			missed++
		}
	}
	run := func() {
		if err := c.GetBatch(keys, visit); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ {
		run()
	}
	if allocs := testing.AllocsPerRun(200, run); allocs > 0.1 {
		t.Errorf("GetBatch(16 keys, 2 nodes) allocates %.2f objects/batch, want 0", allocs)
	}
	if missed > 0 {
		t.Errorf("%d unexpected misses on resident keys", missed)
	}
}

// TestLeaseRedialUsesConfiguredDialer pins the Options.Dial plumbing — and
// with it Options.DialTimeout, which Dial folds into the default dialer —
// on the lease replay path: when a leased batch loses its connection and
// replays through a redial, that redial must go through the configured
// dialer, not the package default.
func TestLeaseRedialUsesConfiguredDialer(t *testing.T) {
	addrs := startCluster(t, 1, 4096, 16)
	var dials atomic.Int32
	c, err := Dial(addrs, Options{
		Leases: true,
		Dial: func(addr string) (*wire.Client, error) {
			dials.Add(1)
			return wire.Dial(addr)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Set(1, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.Get(1); err != nil || !ok {
		t.Fatalf("seed read: ok=%v err=%v", ok, err)
	}
	n := dials.Load()
	if n == 0 {
		t.Fatal("configured dialer was never used for the initial connection")
	}
	// Kill the member connections behind the router's back; the next
	// leased read fails its flush and must replay through a redial.
	c.mu.RLock()
	for _, nc := range c.nodes {
		nc.mu.Lock()
		if nc.cl != nil {
			nc.cl.Close()
		}
		nc.mu.Unlock()
	}
	c.mu.RUnlock()
	if _, ok, err := c.Get(1); err != nil || !ok {
		t.Fatalf("leased read after connection kill: ok=%v err=%v", ok, err)
	}
	if got := dials.Load(); got != n+1 {
		t.Errorf("dialer used %d times after redial, want %d — the lease replay path bypassed Options.Dial", got, n+1)
	}
}
