package cluster

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
	"repro/internal/wire"
)

// Options configures a Client.
type Options struct {
	// VNodes is the virtual-node count per member; 0 means DefaultVNodes.
	VNodes int
	// Replicas is R, the number of distinct owners per key (the ring's
	// first R members clockwise from the key's hash). 0 or 1 disables
	// replication. R multiplies resident memory and write fan-out to buy
	// availability: any single owner can serve a read, so R-1 node losses
	// are survivable without losing a read.
	Replicas int
	// WriteQuorum is W, how many of the R owners must acknowledge a SET
	// before it succeeds; 0 means all of them. W < R keeps writes available
	// through R-W node failures at the cost of leaving the failed owners
	// stale until read repair catches them.
	WriteQuorum int
	// Bootstrap treats the dialed addresses as seeds rather than the
	// membership: the member list comes from the highest-epoch MEMBERS
	// view any seed reports, so a single address of an established
	// cluster is enough to route to all of it.
	Bootstrap bool
	// DisableWarmup turns off the proactive replica warm-up AddNode
	// otherwise starts; the newcomer's share then refills lazily through
	// read-through misses and read repair instead.
	DisableWarmup bool
	// DialTimeout bounds member connection establishment when Dial is nil;
	// 0 means wire.DefaultDialTimeout. A black-holed member address then
	// costs a bounded wait instead of parking warm-up, join, refresh or a
	// routed batch in the kernel's connect retry cycle. Ignored when Dial
	// is set — a custom dialer owns its own timeout policy.
	DialTimeout time.Duration
	// Dial overrides the member connection factory (default wire.Dial).
	Dial DialFunc
	// TraceSample enables end-to-end request tracing (wire v6): every
	// N-th batch (or single-key operation) is stamped with a sampled
	// trace context that rides the whole fan-out — every sub-batch,
	// every fallback round, every quorum write, and any background
	// repair the operation schedules — so the member-side span rings can
	// be joined on the trace ID into the request's cluster-wide path.
	// 0 disables tracing entirely: no request carries trace bytes and
	// the member-side cost is zero.
	TraceSample int
	// Leases opts into the v7 lease/singleflight miss path: the client's
	// GETs go out as GETL, a miss hands exactly one caller (cluster-wide)
	// a fill lease, and concurrent missers briefly wait for that fill or
	// are served the key's last known value flagged stale, instead of
	// stampeding the origin.
	//
	// Leases assume read-through usage — the memcached lease model: a SET
	// of a key this client was granted a lease for is sent as the lease
	// fill, and if the lease was lost (a concurrent write superseded it,
	// or it expired) the fill is DISCARDED as a successful no-op, because
	// fresher data already won. A caller that genuinely overwrites keys
	// it is concurrently reading through should leave Leases off.
	Leases bool
	// NearCache enables a bounded in-process cache of recently read
	// values, version-invalidated by the cluster's piggybacked per-key
	// versions; see NearCacheOptions. Useful alone, but designed to pair
	// with Leases: together a hot key's read storm is absorbed at the
	// client instead of at the key's primary owner.
	NearCache NearCacheOptions
	// AntiEntropy enables the background anti-entropy sweep (wire v8) at
	// the given period; 0 disables it. Each sweep streams every member's
	// KEYS records — key, version, tombstone — diffs each key's replica
	// set against the newest record observed, and repairs divergence in
	// both directions with conditional versioned writes (values re-read
	// from a holder, deletions propagated as tombstones). The sweep is the
	// self-healing backstop under replication: whatever read repair and
	// hinted handoff miss converges within one period. Meaningful only
	// with Replicas > 1; see AntiEntropySweep for the deterministic form.
	AntiEntropy time.Duration
}

// Client routes cache traffic across a cluster of cached nodes. It is
// built from two explicit layers: a topology layer (topology.go) — the
// consistent-hash ring plus the epoch-versioned member list, kept
// converged with the cluster through piggybacked epoch checks, MEMBERS
// refreshes and TOPOLOGY pushes — and a transport layer (transport.go),
// one pipelined wire connection per member, lazily dialed and redialed
// once on failure. Keys map to members through the ring and STATS/REHASH
// fan out to every member.
//
// With Options.Replicas = R > 1 the Client replicates each key across the
// ring's first R distinct owners: SETs fan out to all R (W of them must
// acknowledge), GETs try the primary and fall back through the replica set
// on a miss or a connection failure, and a fallback hit schedules
// background read repair — the value is re-SET, flagged as repair traffic,
// on the owners that missed. Node loss therefore costs availability
// nothing as long as one owner of each key survives, and the repaired
// copies regenerate without operator action.
//
// A Client is safe for concurrent use. Batches against distinct members
// proceed in parallel; batches sharing a member serialize on that member's
// connection. Membership changes (AddNode, RemoveNode, an adopted refresh)
// exclude all traffic for their duration, which is what makes RemoveNode's
// migration accounting exact. For peak throughput the load harness opens
// one Client per worker, exactly as it opens one wire.Client per worker
// against a single node.
//
// A member connection that fails is redialed once per operation; if the
// redial or the replay fails too, the error surfaces to the caller — or,
// under replication, the affected keys fail over to the next owner. A
// replay is only attempted when no response of the failed batch has been
// delivered, so observers never see a request double-counted.
type Client struct {
	dial     DialFunc
	vnodes   int
	replicas int  // R; ≤1 means unreplicated
	quorum   int  // W; 0 means R
	noWarmup bool // Options.DisableWarmup

	mu    sync.RWMutex // guards ring, nodes and epoch; write side = membership changes
	ring  *Ring
	nodes map[string]*nodeConn
	epoch uint64 // topology epoch of the current view

	// curEpoch mirrors epoch and staleEpoch records the highest epoch seen
	// in any response above it, so the hot path detects staleness with two
	// atomic loads; refreshes counts adopted refreshes. refreshing is the
	// single-flight latch of refreshTopology: the MEMBERS fetches run with
	// c.mu released, and the latch keeps concurrent callers from piling a
	// fetch fan-out per batch onto a cluster that just changed.
	curEpoch   atomic.Uint64
	staleEpoch atomic.Uint64
	refreshes  atomic.Uint64
	refreshing atomic.Bool
	closed     atomic.Bool

	// staleRepairs counts this router's synchronous maintenance writes
	// (warm-up and migration copies) that a destination rejected as
	// version-stale — the destination already held a strictly newer value,
	// so the copy was superseded rather than lost.
	staleRepairs atomic.Uint64

	// Tracing (Options.TraceSample): every traceSample-th batch is minted
	// a sampled trace context from the per-client seed and the batch
	// counter — unique without coordination, nonzero by construction.
	traceSample  int
	traceSeed    uint64
	traceCounter atomic.Uint64

	// Warm-up bookkeeping: the dedicated connections of in-flight warm-ups
	// (so Close can interrupt their streams) and a WaitGroup Close waits on
	// so no warm-up goroutine outlives the client.
	warmupMu    sync.Mutex
	warmupConns map[*wire.Client]struct{}
	warmupWG    sync.WaitGroup

	// Read-repair machinery: detected-stale replicas are queued here and a
	// single background goroutine re-SETs them with wire.SetFlagRepair.
	repairCh     chan repairTask
	repairDone   chan struct{}
	repairClosed bool // guarded by mu; set once by Close

	fallbackHits     atomic.Uint64
	repairsScheduled atomic.Uint64
	repairsApplied   atomic.Uint64
	repairsDropped   atomic.Uint64

	// Lease/near-cache machinery (wire v7, lease.go/nearcache.go). grants
	// holds the fill leases this client was granted and has not yet
	// resolved; grantsN mirrors len(grants) so hot paths skip the mutex
	// when no grant is outstanding. near is nil unless Options.NearCache
	// enabled it.
	leases  bool
	near    *nearCache
	grantMu sync.Mutex
	grants  map[uint64]*leaseGrant
	grantsN atomic.Int64

	nearHits    atomic.Uint64 // GETs served from the near-cache
	staleHints  atomic.Uint64 // zero-token LEASE responses served as stale hits
	leaseGrants atomic.Uint64 // fill leases granted to this client
	leaseLost   atomic.Uint64 // fills refused LEASE_LOST
	leaseWaits  atomic.Uint64 // keys that waited on another caller's fill

	// Hinted handoff and anti-entropy (wire v8, antientropy.go). hintsSent
	// counts writes parked on a live member for a dead owner after the
	// direct write failed; hintsFailed counts handoffs that found no live
	// member to park on (the write is then only recoverable by
	// anti-entropy). aeStop/aeDone bracket the background sweep goroutine
	// Options.AntiEntropy starts.
	hintsSent   atomic.Uint64
	hintsFailed atomic.Uint64
	aeSweeps    atomic.Uint64
	aeRepairs   atomic.Uint64
	aeStale     atomic.Uint64
	aeStarted   bool // set once in Dial, before any use
	aeStop      chan struct{}
	aeDone      chan struct{}
	aeStopOnce  sync.Once
}

// Dial builds a routing client. Without Options.Bootstrap, addrs is the
// membership: every address is dialed eagerly and, unless the members
// already hold exactly this view, a bumped topology is pushed at them so
// later clients can bootstrap from any one of them. With Options.Bootstrap
// the addresses are seeds: the membership is discovered through MEMBERS
// and one live seed suffices.
func Dial(addrs []string, opts Options) (*Client, error) {
	if err := Validate(opts.VNodes, addrs); err != nil {
		return nil, err
	}
	dial := opts.Dial
	if dial == nil {
		if d := opts.DialTimeout; d > 0 {
			dial = func(addr string) (*wire.Client, error) { return wire.DialTimeout(addr, d) }
		} else {
			dial = wire.Dial
		}
	}
	members := addrs
	var epoch uint64
	var push bool
	if opts.Bootstrap {
		var err error
		members, epoch, push, err = resolveSeeds(addrs, dial)
		if err != nil {
			return nil, err
		}
	}
	if err := ValidateReplication(opts.Replicas, opts.WriteQuorum, len(members)); err != nil {
		return nil, err
	}
	c := &Client{
		dial:        dial,
		vnodes:      opts.VNodes,
		replicas:    opts.Replicas,
		quorum:      opts.WriteQuorum,
		noWarmup:    opts.DisableWarmup,
		traceSample: opts.TraceSample,
		leases:      opts.Leases,
		near:        newNearCache(opts.NearCache),
		traceSeed:   telemetry.HashKey(uint64(time.Now().UnixNano())) | 1,
		ring:        NewRing(opts.VNodes, members...),
		epoch:       epoch,
		nodes:       make(map[string]*nodeConn, len(members)),
		warmupConns: make(map[*wire.Client]struct{}),
		repairCh:    make(chan repairTask, repairQueueDepth),
		repairDone:  make(chan struct{}),
		aeStop:      make(chan struct{}),
		aeDone:      make(chan struct{}),
	}
	c.curEpoch.Store(epoch)
	// The repair worker starts before the member dials so that the error
	// path below can Close (which waits for the worker) without hanging.
	go c.repairLoop()
	if opts.AntiEntropy > 0 {
		c.aeStarted = true
		go c.antiEntropyLoop(opts.AntiEntropy)
	}
	for _, a := range members {
		nc := &nodeConn{addr: a}
		// Explicitly listed members are dialed eagerly so a typo fails
		// fast. Bootstrap-discovered members are dialed lazily instead: a
		// crashed member must not block new routers from joining a cluster
		// whose whole design (replica fallback, drainless RemoveNode of a
		// dead address) tolerates it.
		if !opts.Bootstrap {
			if _, err := nc.client(dial); err != nil {
				c.Close()
				return nil, err
			}
		}
		c.nodes[a] = nc
	}
	if !opts.Bootstrap {
		// Probe each member's MEMBERS view through the pooled connection
		// just dialed (no second handshake) to settle the starting epoch:
		// adopt the members' epoch when they already hold exactly this
		// view, else advance past every reported epoch and push.
		views := make(map[string]wire.Topology, len(members))
		for _, a := range members {
			nc := c.nodes[a]
			nc.mu.Lock()
			var t wire.Topology
			err := nc.withRetry(dial, func(cl *wire.Client) error {
				var err error
				t, err = cl.Members()
				return err
			})
			nc.mu.Unlock()
			if err != nil {
				c.Close()
				return nil, fmt.Errorf("cluster: MEMBERS %s: %w", a, err)
			}
			views[a] = t
		}
		c.mu.Lock()
		c.epoch, push = explicitEpoch(views, members)
		c.curEpoch.Store(c.epoch)
		c.mu.Unlock()
	}
	if push {
		c.mu.Lock()
		c.pushTopologyLocked(nil)
		c.mu.Unlock()
	}
	return c, nil
}

// Close stops the read-repair worker, interrupts and waits out any
// in-flight warm-up, and tears down every member connection.
func (c *Client) Close() error {
	c.closed.Store(true)
	// Stop the anti-entropy sweeper first: a sweep mid-flight exits at its
	// next dial or chunk boundary once the flag is up, and the wait below
	// guarantees none outlives this call.
	c.aeStopOnce.Do(func() { close(c.aeStop) })
	if c.aeStarted {
		<-c.aeDone
	}
	// Closing the dedicated connections aborts warm-up streams mid-flight;
	// the goroutines then exit through their error paths and the WaitGroup
	// at the bottom guarantees none outlives this call.
	c.warmupMu.Lock()
	for cl := range c.warmupConns {
		cl.Close()
	}
	c.warmupMu.Unlock()
	c.mu.Lock()
	wait := false
	if !c.repairClosed {
		c.repairClosed = true
		close(c.repairCh)
		wait = true
	}
	for _, nc := range c.nodes {
		nc.mu.Lock()
		nc.drop()
		nc.mu.Unlock()
	}
	c.mu.Unlock()
	if wait {
		<-c.repairDone
		// An in-flight repair may have redialed a member between the drop
		// above and the worker's exit; drop again now that nothing can
		// reopen connections.
		c.mu.Lock()
		for _, nc := range c.nodes {
			nc.mu.Lock()
			nc.drop()
			nc.mu.Unlock()
		}
		c.mu.Unlock()
	}
	c.warmupWG.Wait()
	return nil
}

// nextTrace decides whether the next batch is traced and mints its
// context: the trace ID packs the per-client seed (nonzero by
// construction, so the ID can never be the all-zero protocol error)
// with a scramble of the batch counter, unique across clients without
// coordination. Minting is two atomics on the untraced path.
func (c *Client) nextTrace() batchTrace {
	if c.traceSample <= 0 {
		return batchTrace{}
	}
	n := c.traceCounter.Add(1)
	if n%uint64(c.traceSample) != 0 {
		return batchTrace{}
	}
	var bt batchTrace
	bt.traced = true
	bt.tc.Flags = wire.TraceFlagSampled
	binary.LittleEndian.PutUint64(bt.tc.ID[:8], c.traceSeed)
	binary.LittleEndian.PutUint64(bt.tc.ID[8:], telemetry.HashKey(c.traceSeed^n))
	return bt
}

// Nodes returns the current members in sorted order.
func (c *Client) Nodes() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ring.Nodes()
}

// effReplicas returns the effective replica count: the configured R clamped
// to the current membership, and at least 1. Caller holds c.mu (either
// side).
func (c *Client) effReplicas() int {
	r := c.replicas
	if r < 1 {
		r = 1
	}
	if n := c.ring.NumNodes(); r > n {
		r = n
	}
	return r
}

// effQuorum returns the effective write quorum for r replicas: the
// configured W, or r when W is 0, clamped to r. Caller holds c.mu.
func (c *Client) effQuorum(r int) int {
	w := c.quorum
	if w <= 0 || w > r {
		w = r
	}
	return w
}

// Owners returns key's current replica set, primary first. Unreplicated
// clients return a single owner. It reports the routing decision only;
// whether each owner actually holds the key is a cache question.
func (c *Client) Owners(key uint64) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ring.OwnersFor(key, c.effReplicas())
}

// RingSample returns a snapshot of the primary-ownership shares over n
// sampled keys; see Ring.Sample.
func (c *Client) RingSample(n int, seed uint64) map[string]int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ring.Sample(n, seed)
}

// OwnerSample returns each member's replica-set slot count over n sampled
// keys plus the effective replica count; see Ring.SampleOwners. Dividing a
// count by n × replicas yields the member's share of total residency — the
// per-replica-set balance that stays ≤ 100% even though every key resides
// on R members.
func (c *Client) OwnerSample(n int, seed uint64) (share map[string]int, replicas int) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	r := c.effReplicas()
	return c.ring.SampleOwners(n, r, seed), r
}

// partition splits keys by owning member, building the partition in sc.
// The returned sub-batches are owned by sc and die at sc.release. Caller
// holds c.mu (either side).
func (c *Client) partition(sc *batchScratch, keys []uint64) ([]*subBatch, error) {
	idxs := sc.idxs[:0]
	for i := range keys {
		idxs = append(idxs, i)
	}
	sc.idxs = idxs
	return c.partitionIdx(sc, keys, idxs)
}

// partitionIdx splits the selected indices of keys by owning member —
// partition over a subset, for the lease paths that carve a batch into
// near-served, granted and remote fractions. The returned sub-batches are
// owned by sc and die at sc.release. Caller holds c.mu (either side).
func (c *Client) partitionIdx(sc *batchScratch, keys []uint64, idxs []int) ([]*subBatch, error) {
	for _, i := range idxs {
		addr, ok := c.ring.Node(keys[i])
		if !ok {
			return nil, fmt.Errorf("cluster: empty ring")
		}
		nc := c.nodes[addr]
		sub := sc.byNode[nc]
		if sub == nil {
			sub = sc.newSub(nc)
			sc.byNode[nc] = sub
			sc.subs = append(sc.subs, sub)
		}
		sub.idx = append(sub.idx, i)
	}
	sortSubs(sc.subs)
	return sc.subs, nil
}

// GetBatch routes one GET per key and calls visit exactly once per key. All
// members' pipelines are flushed before any response is read, so the batch
// costs one round trip regardless of how many members it spans; under
// replication, keys that miss or whose owner is unreachable cost one extra
// round trip per fallback owner tried. The value passed to visit aliases a
// connection buffer valid only for the duration of the call. Visit order is
// unspecified beyond key order within one member's sub-batch.
func (c *Client) GetBatch(keys []uint64, visit func(i int, hit bool, value []byte)) error {
	c.maybeRefresh()
	bt := c.nextTrace()
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.leases || c.near != nil {
		return c.getBatchLeased(keys, bt, visit)
	}
	if c.effReplicas() > 1 {
		return c.getBatchReplicated(keys, bt, nil, visit)
	}
	sc := getBatchScratch()
	defer sc.release()
	subs, err := c.partition(sc, keys)
	if err != nil {
		return err
	}
	lockSubs(subs)
	defer unlockSubs(subs)

	for _, s := range subs {
		s.err = s.enqueueGets(c.dial, keys, bt)
	}
	for _, s := range subs {
		if s.err == nil {
			s.err = c.readGets(s, keys, visit)
		}
		if s.err != nil {
			if s.delivered > 0 {
				// Cannot replay without double-delivering; the batch fails
				// and every flushed connection may hold undrained responses.
				dropSubs(subs)
				return s.err
			}
			if err := c.replayGets(s, keys, bt, visit); err != nil {
				dropSubs(subs)
				return err
			}
		}
	}
	return nil
}

// readGets drains one sub-batch's GET responses, observing the topology
// epoch each one carries.
func (c *Client) readGets(s *subBatch, keys []uint64, visit func(i int, hit bool, value []byte)) error {
	cl := s.nc.cl
	for _, i := range s.idx {
		resp, err := cl.ReadResponse()
		if err != nil {
			return err
		}
		c.observeEpoch(resp.Epoch)
		hit := false
		switch resp.Status {
		case wire.StatusHit:
			hit = true
			s.nc.hits.Add(1)
		case wire.StatusMiss:
			s.nc.misses.Add(1)
		default:
			return fmt.Errorf("cluster: unexpected GET response %v from %s", resp.Status, s.nc.addr)
		}
		s.nc.gets.Add(1)
		s.delivered++
		visit(i, hit, resp.Value)
	}
	return nil
}

// replayGets redials once and replays an entirely undelivered sub-batch.
func (c *Client) replayGets(s *subBatch, keys []uint64, bt batchTrace, visit func(i int, hit bool, value []byte)) error {
	s.nc.drop()
	s.nc.redials.Add(1)
	if err := s.enqueueGets(c.dial, keys, bt); err != nil {
		return err
	}
	return c.readGets(s, keys, visit)
}

// SetBatch routes one SET per key, with value(i) producing the i-th
// payload. Pipelining and recovery mirror GetBatch. Under replication each
// key is written to all R owners and the batch fails unless every key is
// acknowledged by at least W of them; owners that failed their write while
// the key still met quorum are queued for background repair.
func (c *Client) SetBatch(keys []uint64, value func(i int) []byte) error {
	c.maybeRefresh()
	bt := c.nextTrace()
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.leases || c.near != nil {
		return c.setBatchLeased(keys, bt, value)
	}
	if c.effReplicas() > 1 {
		return c.setBatchReplicated(keys, bt, value)
	}
	return c.setBatchPlain(keys, bt, value)
}

// setBatchPlain is the unreplicated SET round: pipeline per owner,
// replay-once recovery. Caller holds c.mu.RLock.
func (c *Client) setBatchPlain(keys []uint64, bt batchTrace, value func(i int) []byte) error {
	sc := getBatchScratch()
	defer sc.release()
	subs, err := c.partition(sc, keys)
	if err != nil {
		return err
	}
	lockSubs(subs)
	defer unlockSubs(subs)

	for _, s := range subs {
		s.err = s.enqueueSets(c.dial, keys, value, bt)
	}
	for _, s := range subs {
		if s.err == nil {
			s.err = c.readSets(s, keys, value)
		}
		if s.err != nil {
			if s.delivered > 0 {
				dropSubs(subs)
				return s.err
			}
			s.nc.drop()
			s.nc.redials.Add(1)
			if err := s.enqueueSets(c.dial, keys, value, bt); err != nil {
				dropSubs(subs)
				return err
			}
			if err := c.readSets(s, keys, value); err != nil {
				dropSubs(subs)
				return err
			}
		}
	}
	return nil
}

// readSets drains one sub-batch's SET responses, observing the topology
// epoch each one carries and (when the near-cache is on) caching each
// stored value under the version the owner assigned it.
func (c *Client) readSets(s *subBatch, keys []uint64, value func(i int) []byte) error {
	cl := s.nc.cl
	for _, i := range s.idx[s.delivered:] {
		resp, err := cl.ReadResponse()
		if err != nil {
			return err
		}
		c.observeEpoch(resp.Epoch)
		if resp.Status != wire.StatusOK {
			return fmt.Errorf("cluster: unexpected SET response %v from %s", resp.Status, s.nc.addr)
		}
		s.nc.sets.Add(1)
		s.delivered++
		if c.near != nil {
			c.near.store(keys[i], resp.Version, value(i), time.Now())
		}
	}
	return nil
}

// Get fetches key from its owner. The returned value is a copy and safe to
// retain.
func (c *Client) Get(key uint64) ([]byte, bool, error) {
	var (
		val []byte
		hit bool
	)
	err := c.GetBatch([]uint64{key}, func(_ int, h bool, v []byte) {
		if h {
			hit = true
			val = append([]byte(nil), v...)
		}
	})
	return val, hit, err
}

// Set stores value under key on its owner.
func (c *Client) Set(key uint64, value []byte) error {
	return c.SetBatch([]uint64{key}, func(int) []byte { return value })
}

// Del deletes key as a versioned write (wire v8): every owner stores a
// tombstone, and the call reports whether any owner still held a live
// value. Like SET, the delete succeeds once W owners acknowledge it; an
// unreachable owner no longer fails the whole call — its tombstone is
// parked as a hint on a live acknowledged owner (hinted handoff) and
// replayed when the owner returns, with the anti-entropy sweep as the
// backstop. Fewer than W reachable owners is an error: the delete is not
// yet durable by this cluster's own definition of durable.
func (c *Client) Del(key uint64) (bool, error) {
	c.maybeRefresh()
	bt := c.nextTrace()
	c.mu.RLock()
	defer c.mu.RUnlock()
	owners := c.ring.OwnersFor(key, c.effReplicas())
	if len(owners) == 0 {
		return false, fmt.Errorf("cluster: empty ring")
	}
	w := c.effQuorum(len(owners))
	// Purge the local edge before and after the fan-out: before, so a
	// grant can't turn a later SET into a fill of the deleted key; after,
	// so a concurrent read that repopulated the near-cache mid-delete
	// can't outlive the delete past one purge.
	if c.near != nil {
		c.near.remove(key)
	}
	if c.grantsN.Load() > 0 {
		c.finishGrant(key)
	}
	present := false
	acked := 0
	var ver uint64
	var failed []string
	var lastErr error
	for _, addr := range owners {
		nc := c.nodes[addr]
		nc.mu.Lock()
		nc.dels.Add(1)
		err := nc.withRetry(c.dial, func(cl *wire.Client) error {
			var p bool
			var v uint64
			var err error
			if bt.traced {
				p, v, err = cl.DelTraced(key, bt.tc)
			} else {
				p, v, err = cl.Del(key)
			}
			if err == nil {
				present = present || p
				if v > ver {
					ver = v
				}
			}
			c.observeEpoch(cl.LastEpoch())
			return err
		})
		nc.mu.Unlock()
		if err != nil {
			nc.mu.Lock()
			nc.drop()
			nc.mu.Unlock()
			failed = append(failed, addr)
			lastErr = err
			continue
		}
		acked++
	}
	if acked < w {
		return present, fmt.Errorf("cluster: DEL %d acknowledged by %d of %d owners, write quorum %d: %w",
			key, acked, len(owners), w, lastErr)
	}
	// The quorum holds tombstones at ≥ ver; park one hint per missed owner
	// so the delete chases it down on rejoin instead of waiting a full
	// anti-entropy period.
	for _, addr := range failed {
		c.hintHandoff(addr, key, true, ver, nil)
	}
	if c.near != nil {
		c.near.remove(key)
	}
	return present, nil
}

// hintHandoff parks a versioned write (tombstone or value) intended for
// dead target on the first live member that accepts it, preferring the
// key's other owners — they are the nodes a rejoining target's replica
// set already converges with. Caller holds c.mu (either side). Returns
// whether a member accepted the hint.
func (c *Client) hintHandoff(target string, key uint64, tomb bool, ver uint64, val []byte) bool {
	if ver == 0 {
		// No version observed (the write never landed anywhere we heard
		// back from): nothing safe to hint — a zero version is a protocol
		// error and anti-entropy will reconcile whatever state exists.
		c.hintsFailed.Add(1)
		return false
	}
	candidates := c.ring.OwnersFor(key, c.effReplicas())
	for _, addr := range c.ring.Nodes() {
		if !contains(candidates, addr) {
			candidates = append(candidates, addr)
		}
	}
	for _, addr := range candidates {
		if addr == target {
			continue
		}
		nc := c.nodes[addr]
		if nc == nil {
			continue
		}
		nc.mu.Lock()
		err := nc.withRetry(c.dial, func(cl *wire.Client) error {
			return cl.Hint(target, key, tomb, ver, val)
		})
		nc.mu.Unlock()
		if err == nil {
			c.hintsSent.Add(1)
			return true
		}
	}
	c.hintsFailed.Add(1)
	return false
}

// HandoffCounters is the router's hinted-handoff tally; see
// Client.Handoff.
type HandoffCounters struct {
	// Sent counts writes parked on a live member for an unreachable owner;
	// Failed counts handoffs no live member would accept (recoverable only
	// by anti-entropy).
	Sent, Failed uint64
}

// Handoff returns the hinted-handoff counters.
func (c *Client) Handoff() HandoffCounters {
	return HandoffCounters{Sent: c.hintsSent.Load(), Failed: c.hintsFailed.Load()}
}

// StatsAll fans STATS out to every member and returns the snapshots keyed
// by address.
func (c *Client) StatsAll(detail bool) (map[string]*wire.Stats, error) {
	c.maybeRefresh()
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]*wire.Stats, len(c.nodes))
	for _, addr := range c.ring.Nodes() {
		nc := c.nodes[addr]
		nc.mu.Lock()
		err := nc.withRetry(c.dial, func(cl *wire.Client) error {
			st, err := cl.Stats(detail)
			if err == nil {
				out[addr] = st
				c.observeEpoch(cl.LastEpoch())
			}
			return err
		})
		nc.mu.Unlock()
		if err != nil {
			return nil, fmt.Errorf("cluster: STATS %s: %w", addr, err)
		}
	}
	return out, nil
}

// RehashAll asks every member to begin an online incremental rehash — the
// intra-node half of the rebalancing story; the ring handles the inter-node
// half.
func (c *Client) RehashAll() error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, addr := range c.ring.Nodes() {
		nc := c.nodes[addr]
		nc.mu.Lock()
		err := nc.withRetry(c.dial, func(cl *wire.Client) error { return cl.Rehash() })
		nc.mu.Unlock()
		if err != nil {
			return fmt.Errorf("cluster: REHASH %s: %w", addr, err)
		}
	}
	return nil
}

// AggregateStats sums per-member snapshots into one cluster-wide view.
// Alpha is carried over only when all members agree (0 otherwise), and
// Migrating reports whether any member is mid-rehash.
// RepairQueueHighWater is the maximum across members, not the sum: it
// answers "how close did any node come to shedding", and summing
// independent peaks would invent a depth no queue ever held.
func AggregateStats(stats map[string]*wire.Stats) wire.Stats {
	var agg wire.Stats
	first := true
	for _, st := range stats {
		agg.Hits += st.Hits
		agg.Misses += st.Misses
		agg.Evictions += st.Evictions
		agg.ConflictEvictions += st.ConflictEvictions
		agg.FlushEvictions += st.FlushEvictions
		agg.Rehashes += st.Rehashes
		agg.Sets += st.Sets
		agg.RepairSets += st.RepairSets
		agg.RepairQueueDepth += st.RepairQueueDepth
		agg.RepairsShed += st.RepairsShed
		agg.StaleRepairs += st.StaleRepairs
		agg.LeasesGranted += st.LeasesGranted
		agg.LeasesExpired += st.LeasesExpired
		agg.StaleServes += st.StaleServes
		agg.Tombstones += st.Tombstones
		agg.TombstonesReaped += st.TombstonesReaped
		agg.HintsQueued += st.HintsQueued
		agg.HintsReplayed += st.HintsReplayed
		if st.RepairQueueHighWater > agg.RepairQueueHighWater {
			agg.RepairQueueHighWater = st.RepairQueueHighWater
		}
		agg.Pending += st.Pending
		agg.Len += st.Len
		agg.Capacity += st.Capacity
		agg.Buckets += st.Buckets
		agg.Migrating = agg.Migrating || st.Migrating
		if first {
			agg.Alpha = st.Alpha
			first = false
		} else if agg.Alpha != st.Alpha {
			agg.Alpha = 0
		}
	}
	return agg
}

// NodeCounters is the router's per-member traffic tally. Repairs counts
// background read-repair, migration and warm-up SETs written to the
// member, kept separate from Sets so replica maintenance never reads as
// user write traffic.
type NodeCounters struct {
	Gets, Hits, Misses, Sets, Dels, Redials, Repairs uint64
}

// Counters returns the per-member routing counters, keyed by address.
func (c *Client) Counters() map[string]NodeCounters {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]NodeCounters, len(c.nodes))
	for addr, nc := range c.nodes {
		out[addr] = NodeCounters{
			Gets: nc.gets.Load(), Hits: nc.hits.Load(), Misses: nc.misses.Load(),
			Sets: nc.sets.Load(), Dels: nc.dels.Load(), Redials: nc.redials.Load(),
			Repairs: nc.repairs.Load(),
		}
	}
	return out
}
