package cluster

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/wire"
)

// DialFunc establishes the wire connection to one member. The default is
// wire.Dial; tests substitute wrappers (stall injection) and deployments
// can layer TLS here.
type DialFunc func(addr string) (*wire.Client, error)

// Options configures a Client.
type Options struct {
	// VNodes is the virtual-node count per member; 0 means DefaultVNodes.
	VNodes int
	// Replicas is R, the number of distinct owners per key (the ring's
	// first R members clockwise from the key's hash). 0 or 1 disables
	// replication. R multiplies resident memory and write fan-out to buy
	// availability: any single owner can serve a read, so R-1 node losses
	// are survivable without losing a read.
	Replicas int
	// WriteQuorum is W, how many of the R owners must acknowledge a SET
	// before it succeeds; 0 means all of them. W < R keeps writes available
	// through R-W node failures at the cost of leaving the failed owners
	// stale until read repair catches them.
	WriteQuorum int
	// Dial overrides the member connection factory (default wire.Dial).
	Dial DialFunc
}

// Client routes cache traffic across a cluster of cached nodes: keys map to
// members through a consistent-hash ring, each member is served by one
// pipelined wire connection, and STATS/REHASH fan out to every member.
//
// With Options.Replicas = R > 1 the Client replicates each key across the
// ring's first R distinct owners: SETs fan out to all R (W of them must
// acknowledge), GETs try the primary and fall back through the replica set
// on a miss or a connection failure, and a fallback hit schedules
// background read repair — the value is re-SET, flagged as repair traffic,
// on the owners that missed. Node loss therefore costs availability
// nothing as long as one owner of each key survives, and the repaired
// copies regenerate without operator action.
//
// A Client is safe for concurrent use. Batches against distinct members
// proceed in parallel; batches sharing a member serialize on that member's
// connection. Membership changes (AddNode, RemoveNode) exclude all traffic
// for their duration, which is what makes RemoveNode's migration
// accounting exact. For peak throughput the load harness opens one Client
// per worker, exactly as it opens one wire.Client per worker against a
// single node.
//
// A member connection that fails is redialed once per operation; if the
// redial or the replay fails too, the error surfaces to the caller — or,
// under replication, the affected keys fail over to the next owner. A
// replay is only attempted when no response of the failed batch has been
// delivered, so observers never see a request double-counted.
type Client struct {
	dial     DialFunc
	vnodes   int
	replicas int // R; ≤1 means unreplicated
	quorum   int // W; 0 means R

	mu    sync.RWMutex // guards ring and nodes; write side = membership changes
	ring  *Ring
	nodes map[string]*nodeConn

	// Read-repair machinery: detected-stale replicas are queued here and a
	// single background goroutine re-SETs them with wire.SetFlagRepair.
	repairCh     chan repairTask
	repairDone   chan struct{}
	repairClosed bool // guarded by mu; set once by Close

	fallbackHits     atomic.Uint64
	repairsScheduled atomic.Uint64
	repairsApplied   atomic.Uint64
	repairsDropped   atomic.Uint64
}

// nodeConn is one member's connection state plus the router's per-member
// traffic counters.
type nodeConn struct {
	addr string
	mu   sync.Mutex // serializes use of cl
	cl   *wire.Client

	gets, hits, misses, sets, dels, redials, repairs atomic.Uint64
}

// client returns the live connection, dialing if needed. Caller holds nc.mu.
func (nc *nodeConn) client(dial DialFunc) (*wire.Client, error) {
	if nc.cl != nil {
		return nc.cl, nil
	}
	cl, err := dial(nc.addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial %s: %w", nc.addr, err)
	}
	nc.cl = cl
	return cl, nil
}

// drop discards the connection after an error. Caller holds nc.mu.
func (nc *nodeConn) drop() {
	if nc.cl != nil {
		nc.cl.Close()
		nc.cl = nil
	}
}

// Dial connects to every member and returns a routing client.
func Dial(addrs []string, opts Options) (*Client, error) {
	if err := Validate(opts.VNodes, addrs); err != nil {
		return nil, err
	}
	if err := ValidateReplication(opts.Replicas, opts.WriteQuorum, len(addrs)); err != nil {
		return nil, err
	}
	dial := opts.Dial
	if dial == nil {
		dial = wire.Dial
	}
	c := &Client{
		dial:       dial,
		vnodes:     opts.VNodes,
		replicas:   opts.Replicas,
		quorum:     opts.WriteQuorum,
		ring:       NewRing(opts.VNodes, addrs...),
		nodes:      make(map[string]*nodeConn, len(addrs)),
		repairCh:   make(chan repairTask, repairQueueDepth),
		repairDone: make(chan struct{}),
	}
	// The repair worker starts before the member dials so that the error
	// path below can Close (which waits for the worker) without hanging.
	go c.repairLoop()
	for _, a := range addrs {
		nc := &nodeConn{addr: a}
		if _, err := nc.client(dial); err != nil {
			c.Close()
			return nil, err
		}
		c.nodes[a] = nc
	}
	return c, nil
}

// Close stops the read-repair worker and tears down every member
// connection.
func (c *Client) Close() error {
	c.mu.Lock()
	wait := false
	if !c.repairClosed {
		c.repairClosed = true
		close(c.repairCh)
		wait = true
	}
	for _, nc := range c.nodes {
		nc.mu.Lock()
		nc.drop()
		nc.mu.Unlock()
	}
	c.mu.Unlock()
	if wait {
		<-c.repairDone
		// An in-flight repair may have redialed a member between the drop
		// above and the worker's exit; drop again now that nothing can
		// reopen connections.
		c.mu.Lock()
		for _, nc := range c.nodes {
			nc.mu.Lock()
			nc.drop()
			nc.mu.Unlock()
		}
		c.mu.Unlock()
	}
	return nil
}

// Nodes returns the current members in sorted order.
func (c *Client) Nodes() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ring.Nodes()
}

// effReplicas returns the effective replica count: the configured R clamped
// to the current membership, and at least 1. Caller holds c.mu (either
// side).
func (c *Client) effReplicas() int {
	r := c.replicas
	if r < 1 {
		r = 1
	}
	if n := c.ring.NumNodes(); r > n {
		r = n
	}
	return r
}

// effQuorum returns the effective write quorum for r replicas: the
// configured W, or r when W is 0, clamped to r. Caller holds c.mu.
func (c *Client) effQuorum(r int) int {
	w := c.quorum
	if w <= 0 || w > r {
		w = r
	}
	return w
}

// Owners returns key's current replica set, primary first. Unreplicated
// clients return a single owner. It reports the routing decision only;
// whether each owner actually holds the key is a cache question.
func (c *Client) Owners(key uint64) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ring.OwnersFor(key, c.effReplicas())
}

// RingSample returns a snapshot of the primary-ownership shares over n
// sampled keys; see Ring.Sample.
func (c *Client) RingSample(n int, seed uint64) map[string]int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ring.Sample(n, seed)
}

// OwnerSample returns each member's replica-set slot count over n sampled
// keys plus the effective replica count; see Ring.SampleOwners. Dividing a
// count by n × replicas yields the member's share of total residency — the
// per-replica-set balance that stays ≤ 100% even though every key resides
// on R members.
func (c *Client) OwnerSample(n int, seed uint64) (share map[string]int, replicas int) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	r := c.effReplicas()
	return c.ring.SampleOwners(n, r, seed), r
}

// subBatch is the slice of one batch owned by a single member.
type subBatch struct {
	nc        *nodeConn
	idx       []int // positions in the original batch, in enqueue order
	err       error
	delivered int
}

// partition splits keys by owning member. Caller holds c.mu (either side).
func (c *Client) partition(keys []uint64) ([]*subBatch, error) {
	byNode := make(map[*nodeConn]*subBatch)
	var subs []*subBatch
	for i, k := range keys {
		addr, ok := c.ring.Node(k)
		if !ok {
			return nil, fmt.Errorf("cluster: empty ring")
		}
		nc := c.nodes[addr]
		sub := byNode[nc]
		if sub == nil {
			sub = &subBatch{nc: nc}
			byNode[nc] = sub
			subs = append(subs, sub)
		}
		sub.idx = append(sub.idx, i)
	}
	sortSubs(subs)
	return subs, nil
}

// sortSubs orders sub-batches by member address. Lock acquisition must be
// totally ordered to stay deadlock-free across concurrent batches.
func sortSubs(subs []*subBatch) {
	sort.Slice(subs, func(i, j int) bool { return subs[i].nc.addr < subs[j].nc.addr })
}

// lockSubs acquires every involved member connection in address order and
// returns the matching unlock.
func lockSubs(subs []*subBatch) func() {
	for _, s := range subs {
		s.nc.mu.Lock()
	}
	return func() {
		for _, s := range subs {
			s.nc.mu.Unlock()
		}
	}
}

// GetBatch routes one GET per key and calls visit exactly once per key. All
// members' pipelines are flushed before any response is read, so the batch
// costs one round trip regardless of how many members it spans; under
// replication, keys that miss or whose owner is unreachable cost one extra
// round trip per fallback owner tried. The value passed to visit aliases a
// connection buffer valid only for the duration of the call. Visit order is
// unspecified beyond key order within one member's sub-batch.
func (c *Client) GetBatch(keys []uint64, visit func(i int, hit bool, value []byte)) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.effReplicas() > 1 {
		return c.getBatchReplicated(keys, visit)
	}
	subs, err := c.partition(keys)
	if err != nil {
		return err
	}
	unlock := lockSubs(subs)
	defer unlock()

	for _, s := range subs {
		s.err = s.enqueueGets(c.dial, keys)
	}
	for _, s := range subs {
		if s.err == nil {
			s.err = s.readGets(keys, visit)
		}
		if s.err != nil {
			if s.delivered > 0 {
				// Cannot replay without double-delivering; the batch fails
				// and every flushed connection may hold undrained responses.
				dropSubs(subs)
				return s.err
			}
			if err := s.replayGets(c.dial, keys, visit); err != nil {
				dropSubs(subs)
				return err
			}
		}
	}
	return nil
}

// dropSubs discards every involved member connection after a failed batch:
// some were flushed but never fully drained, and reusing one would hand a
// later batch the stale responses of this one. Callers hold the node locks.
func dropSubs(subs []*subBatch) {
	for _, s := range subs {
		s.nc.drop()
	}
}

func (s *subBatch) enqueueGets(dial DialFunc, keys []uint64) error {
	cl, err := s.nc.client(dial)
	if err != nil {
		return err
	}
	for _, i := range s.idx {
		if err := cl.EnqueueGet(keys[i]); err != nil {
			return err
		}
	}
	return cl.Flush()
}

func (s *subBatch) readGets(keys []uint64, visit func(i int, hit bool, value []byte)) error {
	cl := s.nc.cl
	for _, i := range s.idx {
		resp, err := cl.ReadResponse()
		if err != nil {
			return err
		}
		hit := false
		switch resp.Status {
		case wire.StatusHit:
			hit = true
			s.nc.hits.Add(1)
		case wire.StatusMiss:
			s.nc.misses.Add(1)
		default:
			return fmt.Errorf("cluster: unexpected GET response %v from %s", resp.Status, s.nc.addr)
		}
		s.nc.gets.Add(1)
		s.delivered++
		visit(i, hit, resp.Value)
	}
	return nil
}

// replayGets redials once and replays an entirely undelivered sub-batch.
func (s *subBatch) replayGets(dial DialFunc, keys []uint64, visit func(i int, hit bool, value []byte)) error {
	s.nc.drop()
	s.nc.redials.Add(1)
	if err := s.enqueueGets(dial, keys); err != nil {
		return err
	}
	return s.readGets(keys, visit)
}

// SetBatch routes one SET per key, with value(i) producing the i-th
// payload. Pipelining and recovery mirror GetBatch. Under replication each
// key is written to all R owners and the batch fails unless every key is
// acknowledged by at least W of them; owners that failed their write while
// the key still met quorum are queued for background repair.
func (c *Client) SetBatch(keys []uint64, value func(i int) []byte) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.effReplicas() > 1 {
		return c.setBatchReplicated(keys, value)
	}
	subs, err := c.partition(keys)
	if err != nil {
		return err
	}
	unlock := lockSubs(subs)
	defer unlock()

	for _, s := range subs {
		s.err = s.enqueueSets(c.dial, keys, value)
	}
	for _, s := range subs {
		if s.err == nil {
			s.err = s.readSets()
		}
		if s.err != nil {
			if s.delivered > 0 {
				dropSubs(subs)
				return s.err
			}
			s.nc.drop()
			s.nc.redials.Add(1)
			if err := s.enqueueSets(c.dial, keys, value); err != nil {
				dropSubs(subs)
				return err
			}
			if err := s.readSets(); err != nil {
				dropSubs(subs)
				return err
			}
		}
	}
	return nil
}

func (s *subBatch) enqueueSets(dial DialFunc, keys []uint64, value func(i int) []byte) error {
	cl, err := s.nc.client(dial)
	if err != nil {
		return err
	}
	for _, i := range s.idx {
		if err := cl.EnqueueSet(keys[i], value(i)); err != nil {
			return err
		}
	}
	return cl.Flush()
}

func (s *subBatch) readSets() error {
	cl := s.nc.cl
	for range s.idx {
		resp, err := cl.ReadResponse()
		if err != nil {
			return err
		}
		if resp.Status != wire.StatusOK {
			return fmt.Errorf("cluster: unexpected SET response %v from %s", resp.Status, s.nc.addr)
		}
		s.nc.sets.Add(1)
		s.delivered++
	}
	return nil
}

// Get fetches key from its owner. The returned value is a copy and safe to
// retain.
func (c *Client) Get(key uint64) ([]byte, bool, error) {
	var (
		val []byte
		hit bool
	)
	err := c.GetBatch([]uint64{key}, func(_ int, h bool, v []byte) {
		if h {
			hit = true
			val = append([]byte(nil), v...)
		}
	})
	return val, hit, err
}

// Set stores value under key on its owner.
func (c *Client) Set(key uint64, value []byte) error {
	return c.SetBatch([]uint64{key}, func(int) []byte { return value })
}

// Del removes key from every owner, reporting whether any of them held it.
// Under replication the delete fans out to the whole replica set; an
// unreachable owner fails the call, since leaving a live copy behind would
// resurrect the key through read repair.
func (c *Client) Del(key uint64) (bool, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	owners := c.ring.OwnersFor(key, c.effReplicas())
	if len(owners) == 0 {
		return false, fmt.Errorf("cluster: empty ring")
	}
	present := false
	for _, addr := range owners {
		nc := c.nodes[addr]
		nc.mu.Lock()
		nc.dels.Add(1)
		err := nc.withRetry(c.dial, func(cl *wire.Client) error {
			p, err := cl.Del(key)
			present = present || p
			return err
		})
		nc.mu.Unlock()
		if err != nil {
			return present, err
		}
	}
	return present, nil
}

// withRetry runs op against the member connection, redialing once on
// failure. Caller holds nc.mu. Only safe for idempotent round trips.
func (nc *nodeConn) withRetry(dial DialFunc, op func(cl *wire.Client) error) error {
	cl, err := nc.client(dial)
	if err == nil {
		if err = op(cl); err == nil {
			return nil
		}
	}
	nc.drop()
	nc.redials.Add(1)
	cl, err2 := nc.client(dial)
	if err2 != nil {
		return fmt.Errorf("%w (redial: %v)", err, err2)
	}
	if err := op(cl); err != nil {
		nc.drop()
		return err
	}
	return nil
}

// StatsAll fans STATS out to every member and returns the snapshots keyed
// by address.
func (c *Client) StatsAll(detail bool) (map[string]*wire.Stats, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]*wire.Stats, len(c.nodes))
	for _, addr := range c.ring.Nodes() {
		nc := c.nodes[addr]
		nc.mu.Lock()
		err := nc.withRetry(c.dial, func(cl *wire.Client) error {
			st, err := cl.Stats(detail)
			if err == nil {
				out[addr] = st
			}
			return err
		})
		nc.mu.Unlock()
		if err != nil {
			return nil, fmt.Errorf("cluster: STATS %s: %w", addr, err)
		}
	}
	return out, nil
}

// RehashAll asks every member to begin an online incremental rehash — the
// intra-node half of the rebalancing story; the ring handles the inter-node
// half.
func (c *Client) RehashAll() error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, addr := range c.ring.Nodes() {
		nc := c.nodes[addr]
		nc.mu.Lock()
		err := nc.withRetry(c.dial, func(cl *wire.Client) error { return cl.Rehash() })
		nc.mu.Unlock()
		if err != nil {
			return fmt.Errorf("cluster: REHASH %s: %w", addr, err)
		}
	}
	return nil
}

// AggregateStats sums per-member snapshots into one cluster-wide view.
// Alpha is carried over only when all members agree (0 otherwise), and
// Migrating reports whether any member is mid-rehash.
func AggregateStats(stats map[string]*wire.Stats) wire.Stats {
	var agg wire.Stats
	first := true
	for _, st := range stats {
		agg.Hits += st.Hits
		agg.Misses += st.Misses
		agg.Evictions += st.Evictions
		agg.ConflictEvictions += st.ConflictEvictions
		agg.FlushEvictions += st.FlushEvictions
		agg.Rehashes += st.Rehashes
		agg.Sets += st.Sets
		agg.RepairSets += st.RepairSets
		agg.Pending += st.Pending
		agg.Len += st.Len
		agg.Capacity += st.Capacity
		agg.Buckets += st.Buckets
		agg.Migrating = agg.Migrating || st.Migrating
		if first {
			agg.Alpha = st.Alpha
			first = false
		} else if agg.Alpha != st.Alpha {
			agg.Alpha = 0
		}
	}
	return agg
}

// NodeCounters is the router's per-member traffic tally. Repairs counts
// background read-repair SETs written to the member, kept separate from
// Sets so replica maintenance never reads as user write traffic.
type NodeCounters struct {
	Gets, Hits, Misses, Sets, Dels, Redials, Repairs uint64
}

// Counters returns the per-member routing counters, keyed by address.
func (c *Client) Counters() map[string]NodeCounters {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]NodeCounters, len(c.nodes))
	for addr, nc := range c.nodes {
		out[addr] = NodeCounters{
			Gets: nc.gets.Load(), Hits: nc.hits.Load(), Misses: nc.misses.Load(),
			Sets: nc.sets.Load(), Dels: nc.dels.Load(), Redials: nc.redials.Load(),
			Repairs: nc.repairs.Load(),
		}
	}
	return out
}

// AddNode joins a new member: its connection is dialed eagerly (failing
// fast on a bad address) and the ring is extended. No data moves at join
// time — consistent hashing bounds the reassigned share to roughly
// 1/(n+1) of the key space, and those keys simply miss on the new member
// and refill through the caller's read-through path, exactly like the
// fresh buckets after an intra-node rehash.
func (c *Client) AddNode(addr string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.nodes[addr]; exists {
		return fmt.Errorf("cluster: node %s already a member", addr)
	}
	nc := &nodeConn{addr: addr}
	if _, err := nc.client(c.dial); err != nil {
		return err
	}
	c.nodes[addr] = nc
	c.ring.Add(addr)
	return nil
}

// migrateChunk bounds how many keys RemoveNode drains per pipelined round
// trip, keeping peak buffering (chunk × value size) modest.
const migrateChunk = 256

// RemoveNode retires a member. Unreplicated (R = 1), it migrates the
// departing node's residents to their new owners before the connection
// closes: the cluster-level analogue of the paper's incremental rehash,
// where no entry is lost except by accounted eviction. moved counts entries
// re-stored on their new owner (which may evict there — the destination's
// eviction counters account for it); dropped counts entries that vanished
// between the key snapshot and the drain (concurrent eviction on the
// departing member).
//
// With R > 1 the drain is unnecessary and RemoveNode becomes cheap: every
// resident of the departing node also lives on R-1 surviving owners, so
// the member is simply dropped from the ring (moved and dropped are 0) and
// the key's new R-th owner refills lazily through read repair. Because
// this path never contacts the departing node, it also handles a crashed
// member: RemoveNode on a dead address cleans it out of the ring and stops
// the router paying a failed dial per batch.
//
// RemoveNode excludes all other traffic on this Client for its duration.
func (c *Client) RemoveNode(addr string) (moved, dropped int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	nc, ok := c.nodes[addr]
	if !ok {
		return 0, 0, fmt.Errorf("cluster: node %s is not a member", addr)
	}
	if c.ring.NumNodes() == 1 {
		return 0, 0, fmt.Errorf("cluster: cannot remove the last member %s", addr)
	}
	if c.effReplicas() > 1 {
		nc.mu.Lock()
		nc.drop()
		nc.mu.Unlock()
		delete(c.nodes, addr)
		c.ring.Remove(addr)
		return 0, 0, nil
	}

	nc.mu.Lock()
	defer nc.mu.Unlock()
	var keys []uint64
	if err := nc.withRetry(c.dial, func(cl *wire.Client) error {
		var err error
		keys, err = cl.Keys()
		return err
	}); err != nil {
		return 0, 0, fmt.Errorf("cluster: KEYS %s: %w", addr, err)
	}

	// Reroute first so owners are computed against the post-removal ring,
	// then drain the departing member chunk by chunk. If the drain fails
	// the member is restored: leaving it removed would orphan its
	// undrained residents outside both the moved and dropped counts.
	c.ring.Remove(addr)
	drained := false
	defer func() {
		if drained {
			nc.drop()
			delete(c.nodes, addr)
		} else {
			c.ring.Add(addr)
		}
	}()

	src := nc.cl
	for off := 0; off < len(keys); off += migrateChunk {
		end := off + migrateChunk
		if end > len(keys) {
			end = len(keys)
		}
		chunk := keys[off:end]

		vals := make([][]byte, len(chunk))
		hit := make([]bool, len(chunk))
		if err := src.GetBatch(chunk, func(i int, h bool, v []byte) {
			if h {
				hit[i] = true
				vals[i] = append([]byte(nil), v...)
			}
		}); err != nil {
			return moved, dropped, fmt.Errorf("cluster: draining %s: %w", addr, err)
		}

		// Partition the chunk's survivors by new owner and re-store them.
		byOwner := make(map[*nodeConn][]int)
		for i, k := range chunk {
			if !hit[i] {
				dropped++
				continue
			}
			owner, ok := c.ring.Node(k)
			if !ok {
				return moved, dropped, fmt.Errorf("cluster: empty ring during migration")
			}
			byOwner[c.nodes[owner]] = append(byOwner[c.nodes[owner]], i)
		}
		for dst, idx := range byOwner {
			dst.mu.Lock()
			err := dst.withRetry(c.dial, func(cl *wire.Client) error {
				sub := make([]uint64, len(idx))
				for j, i := range idx {
					sub[j] = chunk[i]
				}
				// Migration writes carry the repair flag: they are replica
				// maintenance, not user traffic, and the destination's
				// STATS keeps them out of its user SET count.
				return cl.SetBatchFlags(sub, wire.SetFlagRepair, func(j int) []byte { return vals[idx[j]] })
			})
			if err == nil {
				dst.repairs.Add(uint64(len(idx)))
			}
			dst.mu.Unlock()
			if err != nil {
				return moved, dropped, fmt.Errorf("cluster: migrating to %s: %w", dst.addr, err)
			}
			moved += len(idx)
		}
	}
	drained = true
	return moved, dropped, nil
}
