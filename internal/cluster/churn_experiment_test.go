package cluster

import (
	"net"
	"testing"
	"time"

	"repro/internal/concurrent"
	"repro/internal/server"
	"repro/internal/wire"
)

// TestChurnSelfHealExperiment is the measurement harness behind
// hypotheses/H4-churn-self-heal.md: one churn cycle — a member drops out,
// the cluster keeps deleting and updating, the member rejoins *with its
// pre-partition data* — run three times with the healing mechanisms
// ablated:
//
//	neither    hints discarded (budget 0), no sweep: the rejoined member
//	           keeps serving deleted keys and stale values indefinitely
//	hints-only hint replay heals everything its queue survived to deliver
//	full       a deliberately starved hint budget drops most hints and the
//	           anti-entropy sweep still converges the cluster
//
// The assertions are H4's acceptance criteria; the t.Logf table is the
// data the hypothesis doc quotes (visible under -v).
func TestChurnSelfHealExperiment(t *testing.T) {
	const (
		total    = 300 // keys 1..100 deleted, 101..200 updated, 201..300 untouched
		doomed   = 100
		updated  = 200
		replayMs = 20
	)

	type mode struct {
		name       string
		hintBudget int  // -1 = default (everything fits), 0 = drop all
		sweep      bool // run AntiEntropySweep after rejoin
	}
	modes := []mode{
		{name: "neither", hintBudget: 0, sweep: false},
		{name: "hints-only", hintBudget: -1, sweep: false},
		{name: "full", hintBudget: 900, sweep: true}, // ~12 of ~130 victim hints fit
	}

	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			// Three nodes whose caches outlive their servers, so the victim
			// can rejoin holding exactly what it held when it dropped out —
			// a partition, not a disk loss.
			caches := make([]*concurrent.Cache, 3)
			srvs := make([]*server.Server, 3)
			addrs := make([]string, 3)
			boot := func(i int, addr string) {
				srv := server.New(caches[i])
				srv.SetHintReplayInterval(replayMs * time.Millisecond)
				if m.hintBudget >= 0 {
					srv.SetHintBudget(m.hintBudget)
				}
				ln, err := net.Listen("tcp", addr)
				if err != nil {
					t.Fatal(err)
				}
				go srv.Serve(ln)
				t.Cleanup(func() { srv.Close() })
				srvs[i], addrs[i] = srv, ln.Addr().String()
			}
			for i := range caches {
				cache, err := concurrent.New(concurrent.Config{Capacity: 4096, Alpha: 16, Seed: uint64(i + 1)})
				if err != nil {
					t.Fatal(err)
				}
				caches[i] = cache
				boot(i, "127.0.0.1:0")
			}

			c, err := Dial(addrs, Options{Replicas: 2, WriteQuorum: 1})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			for k := uint64(1); k <= total; k++ {
				if err := c.Set(k, []byte("v1")); err != nil {
					t.Fatal(err)
				}
			}

			// Partition: node 1 drops; deletes and updates proceed at W=1.
			victim := addrs[1]
			srvs[1].Close()
			for k := uint64(1); k <= doomed; k++ {
				if _, err := c.Del(k); err != nil {
					t.Fatal(err)
				}
			}
			for k := uint64(doomed + 1); k <= updated; k++ {
				if err := c.Set(k, []byte("v2")); err != nil {
					t.Fatal(err)
				}
			}
			victimOwned := 0
			c.mu.RLock()
			for k := uint64(1); k <= updated; k++ {
				for _, o := range c.ring.OwnersFor(k, 2) {
					if o == victim {
						victimOwned++
					}
				}
			}
			c.mu.RUnlock()
			// Every victim-owned write either parks a hint or fails to; wait
			// for the handoff tally so the background repair path has decided.
			deadline := time.Now().Add(10 * time.Second)
			for {
				h := c.Handoff()
				if int(h.Sent+h.Failed) >= victimOwned {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("handoff decided %d of %d victim-owned writes", h.Sent+h.Failed, victimOwned)
				}
				time.Sleep(2 * time.Millisecond)
			}

			// Rejoin with the pre-partition cache: live v1 copies of every
			// deleted and updated key the victim owns.
			rejoin := time.Now()
			boot(1, victim)

			// divergence counts the victim's wrong records: a deleted key it
			// still holds live, or an updated key it still holds at v1.
			divergence := func() int {
				vc, err := wire.Dial(victim)
				if err != nil {
					return -1 // victim mid-restart; count as diverged
				}
				defer vc.Close()
				n := 0
				for k := uint64(1); k <= doomed; k++ {
					if _, hit, err := vc.Get(k); err == nil && hit {
						n++
					}
				}
				for k := uint64(doomed + 1); k <= updated; k++ {
					if v, hit, err := vc.Get(k); err == nil && hit && string(v) == "v1" {
						n++
					}
				}
				return n
			}
			// resurrected counts deleted keys the *router* still serves — the
			// user-visible failure, reachable whenever the victim answers for
			// a key before its healthier replica.
			resurrected := func() int {
				n := 0
				for k := uint64(1); k <= doomed; k++ {
					if _, hit, err := c.Get(k); err == nil && hit {
						n++
					}
				}
				return n
			}

			d0, r0 := divergence(), resurrected()
			switch m.name {
			case "neither":
				// No mechanism: the divergence is permanent. Confirm it is
				// still there after several would-be replay intervals.
				time.Sleep(10 * replayMs * time.Millisecond)
				d1, r1 := divergence(), resurrected()
				if d1 == 0 || r1 == 0 {
					t.Fatalf("ablated cluster healed itself: divergence %d→%d, resurrected %d→%d",
						d0, d1, r0, r1)
				}
				t.Logf("neither: divergence %d records, resurrected deletes served %d — unchanged after %dms",
					d1, r1, 10*replayMs)
			case "hints-only":
				// Hint replay alone must converge, and quickly.
				var healed time.Duration
				for {
					if divergence() == 0 {
						healed = time.Since(rejoin)
						break
					}
					if time.Now().After(deadline) {
						t.Fatalf("hints did not heal the victim; divergence still %d", divergence())
					}
					time.Sleep(2 * time.Millisecond)
				}
				if n := resurrected(); n != 0 {
					t.Fatalf("resurrected deletes after hint replay: %d", n)
				}
				t.Logf("hints-only: initial divergence %d, healed in %v, resurrected deletes 0", d0, healed)
			case "full":
				// Most hints were dropped by the starved budget, so replay
				// alone cannot finish; the sweep must. One sweep = the
				// divergence bound.
				time.Sleep(3 * replayMs * time.Millisecond) // let surviving hints land first
				dHints := divergence()
				rep, err := c.AntiEntropySweep()
				if err != nil {
					t.Fatal(err)
				}
				if d, r := divergence(), resurrected(); d != 0 || r != 0 {
					t.Fatalf("after sweep: divergence %d, resurrected %d; want 0/0", d, r)
				}
				t.Logf("full: initial divergence %d, after starved hint replay %d, sweep repaired %d records → divergence 0, resurrected deletes 0",
					d0, dHints, rep)
				if dHints == 0 {
					t.Logf("full: note — starved budget still let every victim hint through; raise key count or shrink budget for a sharper ablation")
				}
			}
		})
	}
}
