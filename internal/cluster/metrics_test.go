package cluster

import (
	"testing"
	"time"

	"repro/internal/wire"
)

// TestMetricsFanOutAndMerge drives traffic through a 3-node cluster, fans
// METRICS out, and checks the merged cluster view equals the sum of the
// per-node views — bucket-exactly for histograms, sum-exactly for
// counters — and that the GET histogram count matches the GETs the nodes
// served.
func TestMetricsFanOutAndMerge(t *testing.T) {
	addrs := startCluster(t, 3, 4096, 16)
	ctl, err := Dial(addrs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	const nkeys = 2000
	keys := make([]uint64, nkeys)
	for i := range keys {
		keys[i] = uint64(i)
	}
	if err := ctl.SetBatch(keys, func(int) []byte { return []byte("v") }); err != nil {
		t.Fatal(err)
	}
	if err := ctl.GetBatch(keys, func(int, bool, []byte) {}); err != nil {
		t.Fatal(err)
	}

	per, err := ctl.MetricsAll(wire.MetricsAll)
	if err != nil {
		t.Fatal(err)
	}
	if len(per) != 3 {
		t.Fatalf("METRICS fan-out returned %d nodes, want 3", len(per))
	}
	agg := AggregateMetrics(per)

	var wantGets, wantSets uint64
	for addr, m := range per {
		h := m.Hist(byte(wire.OpGet))
		if h == nil || h.Count == 0 {
			t.Fatalf("node %s served no GETs", addr)
		}
		wantGets += h.Count
		wantSets += m.Hist(byte(wire.OpSet)).Count
	}
	got := agg.Hist(byte(wire.OpGet))
	if got == nil || got.Count != wantGets {
		t.Fatalf("merged GET count = %v, want %d", got, wantGets)
	}
	if wantGets != nkeys {
		t.Errorf("cluster served %d GETs, client issued %d", wantGets, nkeys)
	}
	if sets := agg.Hist(byte(wire.OpSet)); sets.Count != wantSets || wantSets != nkeys {
		t.Errorf("merged SET count = %d (per-node sum %d), client issued %d", sets.Count, wantSets, nkeys)
	}

	// Merged histogram = bucket-wise sum of the per-node ones.
	var manual = *per[addrs[0]].Hist(byte(wire.OpGet))
	for _, addr := range addrs[1:] {
		manual.Merge(per[addr].Hist(byte(wire.OpGet)))
	}
	if *got != manual {
		t.Error("AggregateMetrics GET histogram differs from manual merge")
	}
	if p99 := got.Quantile(0.99); p99 <= 0 || p99 > time.Second {
		t.Errorf("cluster GET p99 = %v, implausible", p99)
	}

	// Counters sum across nodes.
	var wantBytes uint64
	for _, m := range per {
		wantBytes += m.Counter(wire.CounterBytesIn)
	}
	if agg.Counter(wire.CounterBytesIn) != wantBytes || wantBytes == 0 {
		t.Errorf("merged BYTES_IN = %d, want %d (nonzero)", agg.Counter(wire.CounterBytesIn), wantBytes)
	}

	// Merged sections keep ascending-ID order (the wire invariant).
	for i := 1; i < len(agg.Hists); i++ {
		if agg.Hists[i].ID <= agg.Hists[i-1].ID {
			t.Fatal("merged histogram IDs not ascending")
		}
	}
	for i := 1; i < len(agg.Counters); i++ {
		if agg.Counters[i].ID <= agg.Counters[i-1].ID {
			t.Fatal("merged counter IDs not ascending")
		}
	}
}

// TestMetricsLocalizesHotNode pins the diagnosis story the aggregate
// client view cannot tell: per-node METRICS separates one slow member
// from two healthy ones.
func TestMetricsLocalizesHotNode(t *testing.T) {
	addrs := startCluster(t, 3, 4096, 16)
	ctl, err := Dial(addrs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	keys := make([]uint64, 3000)
	for i := range keys {
		keys[i] = uint64(i)
	}
	if err := ctl.SetBatch(keys, func(int) []byte { return []byte("v") }); err != nil {
		t.Fatal(err)
	}
	per, err := ctl.MetricsAll(wire.MetricsHistograms)
	if err != nil {
		t.Fatal(err)
	}
	// Healthy loopback nodes: every node's SET p50 is microseconds, and no
	// node's median is orders of magnitude above another's. (The injected
	// hot-node act lives in examples/cluster; here we pin that the per-node
	// numbers exist and are comparable at all.)
	var p50s []time.Duration
	for addr, m := range per {
		h := m.Hist(byte(wire.OpSet))
		if h == nil || h.Count == 0 {
			t.Fatalf("node %s reports no SET histogram", addr)
		}
		p50s = append(p50s, h.Quantile(0.5))
	}
	for _, p := range p50s {
		if p <= 0 || p > time.Second {
			t.Fatalf("per-node SET p50 = %v, implausible", p)
		}
	}
}
