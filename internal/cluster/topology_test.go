package cluster

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/load"
	"repro/internal/server"
	"repro/internal/wire"
)

// TestSeedConvergenceSmoke is the CI convergence smoke: three nodes are
// started from one seed the way cmd/cached does it — the first node seeds
// its own one-member topology, each later node Joins through the first —
// and afterwards every member must report the identical member list and
// epoch.
func TestSeedConvergenceSmoke(t *testing.T) {
	addrs := make([]string, 3)
	addr0, srv0 := startNodeWithServer(t, 1024, 16, 1)
	addrs[0] = addr0
	srv0.SetTopology(wire.Topology{Epoch: 0, Members: []string{addr0}})
	for i := 1; i < 3; i++ {
		addrs[i], _ = startNodeWithServer(t, 1024, 16, uint64(i+1))
		if _, _, err := Join(addrs[0], addrs[i], nil); err != nil {
			t.Fatalf("Join(%s, %s): %v", addrs[0], addrs[i], err)
		}
	}

	var views []wire.Topology
	for _, a := range addrs {
		cl, err := wire.Dial(a)
		if err != nil {
			t.Fatal(err)
		}
		tp, err := cl.Members()
		cl.Close()
		if err != nil {
			t.Fatalf("MEMBERS %s: %v", a, err)
		}
		views = append(views, tp)
	}
	want := views[0]
	if want.Epoch != 2 {
		t.Errorf("epoch after two joins = %d, want 2", want.Epoch)
	}
	if len(want.Members) != 3 || !sameMembers(want.Members, addrs) {
		t.Fatalf("converged members = %v, want %v", want.Members, addrs)
	}
	for i, v := range views[1:] {
		if v.Epoch != want.Epoch || !sameMembers(v.Members, want.Members) {
			t.Errorf("member %d view = %+v, member 0 view = %+v; epochs/members must agree", i+1, v, want)
		}
	}

	// The payoff: a router bootstrapped from any single member sees the
	// whole cluster.
	ctl, err := Dial([]string{addrs[2]}, Options{Bootstrap: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	if got := ctl.Nodes(); !sameMembers(got, addrs) {
		t.Fatalf("bootstrap from %s routed to %v, want all of %v", addrs[2], got, addrs)
	}
	if ctl.Epoch() != want.Epoch {
		t.Errorf("bootstrap epoch = %d, want %d", ctl.Epoch(), want.Epoch)
	}
}

// TestSubsetDialDoesNotRewriteMembership: pointing a plain (non-bootstrap)
// router at a subset of an established cluster must route to that subset
// only — it must NOT push the subset as the cluster's topology and evict
// the unlisted members from everyone else's view.
func TestSubsetDialDoesNotRewriteMembership(t *testing.T) {
	addrs := startCluster(t, 3, 1024, 16)
	full, err := Dial(addrs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	epoch := full.Epoch()

	sub, err := Dial(addrs[:2], Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if got := sub.Nodes(); !sameMembers(got, addrs[:2]) {
		t.Fatalf("subset router routes to %v, want its asserted %v", got, addrs[:2])
	}
	for _, a := range addrs {
		cl, err := wire.Dial(a)
		if err != nil {
			t.Fatal(err)
		}
		tp, err := cl.Members()
		cl.Close()
		if err != nil {
			t.Fatal(err)
		}
		if tp.Epoch != epoch || !sameMembers(tp.Members, addrs) {
			t.Errorf("member %s holds %+v after a subset Dial; want the full view at epoch %d kept", a, tp, epoch)
		}
	}
	// The full router must not have been destabilized either.
	if err := full.Set(1, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if full.Epoch() != epoch || !sameMembers(full.Nodes(), addrs) {
		t.Errorf("full router at %v epoch %d; the subset Dial must not have moved it", full.Nodes(), full.Epoch())
	}
}

// TestJoinRetriesLostRace: a Join whose push loses an equal-epoch race
// (another join landed between its MEMBERS fetch and its push) must detect
// the loss from the push response — the held view lacks self — and retry
// on top of the winner's view instead of reporting success while orphaned.
func TestJoinRetriesLostRace(t *testing.T) {
	seedAddr, seedSrv := startNodeWithServer(t, 1024, 16, 1)
	seedSrv.SetTopology(wire.Topology{Epoch: 0, Members: []string{seedAddr}})
	selfAddr, _ := startNodeWithServer(t, 1024, 16, 2)

	// The dial hook injects a rival join's push exactly between this
	// join's MEMBERS fetch (first seed dial) and its own push (second
	// seed dial) — the same-epoch tie piggybacking can never surface.
	rival := wire.Topology{Epoch: 1, Members: []string{seedAddr, "phantom:1"}}
	seedDials := 0
	dial := func(addr string) (*wire.Client, error) {
		if addr == seedAddr {
			seedDials++
			if seedDials == 2 {
				cl, err := wire.Dial(seedAddr)
				if err != nil {
					return nil, err
				}
				if _, err := cl.PushTopology(rival); err != nil {
					return nil, err
				}
				cl.Close()
			}
		}
		return wire.Dial(addr)
	}

	got, _, err := Join(seedAddr, selfAddr, dial)
	if err != nil {
		t.Fatalf("Join after a lost race: %v", err)
	}
	if !contains(got.Members, selfAddr) {
		t.Fatalf("joined view %v lacks self %s", got.Members, selfAddr)
	}
	if !contains(got.Members, "phantom:1") {
		t.Fatalf("joined view %v dropped the race winner's member; retry must build on the winning view", got.Members)
	}
	if got.Epoch != 2 {
		t.Errorf("joined epoch = %d, want 2 (rival's 1, escalated once)", got.Epoch)
	}
	cl, err := wire.Dial(seedAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	held, err := cl.Members()
	if err != nil {
		t.Fatal(err)
	}
	if held.Epoch != got.Epoch || !sameMembers(held.Members, got.Members) {
		t.Errorf("seed holds %+v, joiner returned %+v; they must agree", held, got)
	}
}

// TestBootstrapToleratesCrashedMember: a crashed member must not block new
// routers from bootstrapping — discovered members are dialed lazily, and
// with R > 1 the dead node's keys are served by fallback anyway.
func TestBootstrapToleratesCrashedMember(t *testing.T) {
	addrs := make([]string, 3)
	servers := make([]*server.Server, 3)
	for i := range addrs {
		addrs[i], servers[i] = startNodeWithServer(t, 4096, 16, uint64(i+1))
	}
	seeder, err := Dial(addrs, Options{Replicas: 2, WriteQuorum: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer seeder.Close()
	if err := seeder.Set(1, []byte("v")); err != nil {
		t.Fatal(err)
	}

	if err := servers[2].Close(); err != nil {
		t.Fatal(err)
	}
	late, err := Dial(addrs[:1], Options{Bootstrap: true, Replicas: 2, WriteQuorum: 1})
	if err != nil {
		t.Fatalf("bootstrap with a crashed member failed: %v", err)
	}
	defer late.Close()
	if got := late.Nodes(); !sameMembers(got, addrs) {
		t.Fatalf("bootstrapped view = %v, want the full membership %v (dead member included)", got, addrs)
	}
	if v, hit, err := late.Get(1); err != nil || !hit || string(v) != "v" {
		t.Fatalf("read through the degraded cluster = %q, hit=%v, %v", v, hit, err)
	}
}

// TestBootstrapSkipsDeadFreshSeed: when every reachable seed is fresh, the
// founding membership is the reachable seeds only — an unreachable seed
// must not be enrolled as a ring owner.
func TestBootstrapSkipsDeadFreshSeed(t *testing.T) {
	live := startNode(t, 1024, 16, 1)
	dead := "127.0.0.1:1" // reserved port; dial fails immediately
	ctl, err := Dial([]string{dead, live}, Options{Bootstrap: true})
	if err != nil {
		t.Fatalf("bootstrap with one dead fresh seed failed: %v", err)
	}
	defer ctl.Close()
	if got := ctl.Nodes(); len(got) != 1 || got[0] != live {
		t.Fatalf("founding members = %v, want only the reachable seed %v", got, live)
	}
	if err := ctl.Set(1, []byte("v")); err != nil {
		t.Fatalf("write through the founded cluster: %v", err)
	}
}

// TestAddNodeAfterCloseRefused: membership changes on a closed client must
// be refused rather than mutate a torn-down ring or spawn a warm-up that
// outlives Close.
func TestAddNodeAfterCloseRefused(t *testing.T) {
	addrs := startCluster(t, 2, 1024, 16)
	ctl, err := Dial(addrs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.AddNode(startNode(t, 1024, 16, 9)); err == nil {
		t.Fatal("AddNode on a closed client succeeded")
	}
}

// TestPushTieEscalates pins the same-epoch conflict path that piggybacked
// epochs alone can never surface: a member already holding a *different*
// view at the epoch the router is pushing forces the router to escalate
// past the tie, so both sides of a racing membership change converge on a
// strictly newest view instead of diverging forever.
func TestPushTieEscalates(t *testing.T) {
	addrs := startCluster(t, 2, 1024, 16)
	ctl, err := Dial(addrs, Options{DisableWarmup: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	base := ctl.Epoch()

	// A rival router's partial push: member 0 now holds epoch base+1 with
	// a phantom member this router will never list.
	direct, err := wire.Dial(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	rival := append(append([]string(nil), addrs...), "phantom:1")
	if _, err := direct.PushTopology(wire.Topology{Epoch: base + 1, Members: rival}); err != nil {
		t.Fatal(err)
	}
	direct.Close()

	// AddNode bumps to base+1 and pushes — ties with the rival on member 0,
	// must escalate above it, and every member must end on the escalated
	// view.
	newAddr := startNode(t, 1024, 16, 5)
	if _, err := ctl.AddNode(newAddr); err != nil {
		t.Fatal(err)
	}
	want := append(append([]string(nil), addrs...), newAddr)
	if got := ctl.Epoch(); got <= base+1 {
		t.Errorf("router epoch = %d after a tie at %d; want escalation above it", got, base+1)
	}
	for _, a := range want {
		cl, err := wire.Dial(a)
		if err != nil {
			t.Fatal(err)
		}
		tp, err := cl.Members()
		cl.Close()
		if err != nil {
			t.Fatal(err)
		}
		if tp.Epoch != ctl.Epoch() || !sameMembers(tp.Members, want) {
			t.Errorf("member %s holds %+v, want epoch %d members %v", a, tp, ctl.Epoch(), want)
		}
	}
}

// TestPushLosesToNewerView pins the other race arm: a member reporting a
// strictly newer topology during a push means this router already lost —
// it must adopt that view (last-writer-wins) rather than keep routing on a
// view the cluster has moved past.
func TestPushLosesToNewerView(t *testing.T) {
	addrs := startCluster(t, 2, 1024, 16)
	ctl, err := Dial(addrs, Options{DisableWarmup: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	base := ctl.Epoch()

	// The cluster has moved two epochs ahead of this router behind its back.
	direct, err := wire.Dial(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := direct.PushTopology(wire.Topology{Epoch: base + 2, Members: addrs}); err != nil {
		t.Fatal(err)
	}
	direct.Close()

	// AddNode pushes base+1, hears base+2, and must adopt it — the added
	// member is dropped again (documented last-writer-wins).
	newAddr := startNode(t, 1024, 16, 6)
	if _, err := ctl.AddNode(newAddr); err != nil {
		t.Fatal(err)
	}
	if got := ctl.Epoch(); got != base+2 {
		t.Errorf("router epoch = %d, want the newer view's %d adopted", got, base+2)
	}
	if got := ctl.Nodes(); !sameMembers(got, addrs) {
		t.Errorf("router members = %v, want the newer view %v (the lost AddNode undone)", got, addrs)
	}
}

// TestCloseInterruptsWarmup: Close on a client with an in-flight warm-up
// must interrupt it and not return until the warm-up goroutine exited —
// no stray repair-SETs or leaked connections after Close.
func TestCloseInterruptsWarmup(t *testing.T) {
	const nkeys = 3000
	addr0, srv0 := startNodeWithServer(t, 8192, 64, 1)
	addr1, srv1 := startNodeWithServer(t, 8192, 64, 2)
	// Tiny chunks stretch the stream so Close reliably lands mid-warm-up.
	srv0.SetKeysChunk(16)
	srv1.SetKeysChunk(16)
	ctl, err := Dial([]string{addr0, addr1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]uint64, nkeys)
	for i := range keys {
		keys[i] = uint64(i) + 1
	}
	if err := ctl.SetBatch(keys, func(i int) []byte { return load.Payload(keys[i], 32) }); err != nil {
		t.Fatal(err)
	}

	newAddr := startNode(t, 8192, 64, 3)
	w, err := ctl.AddNode(newAddr)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl.Close(); err != nil {
		t.Fatal(err)
	}
	// Close already waited for the goroutine; Wait must return immediately
	// rather than hang on an orphaned warm-up.
	done := make(chan WarmupStats, 1)
	go func() { done <- w.Wait() }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Warmup.Wait hung after Close; the warm-up goroutine leaked")
	}
}

// TestBootstrapRouterConverges is the e2e acceptance for self-converging
// membership: a router bootstrapped from a single seed follows
// AddNode/RemoveNode performed by a *different* router, with no manual
// ring edits — staleness is detected via the epochs piggybacked on its
// own traffic and healed by a MEMBERS refresh.
func TestBootstrapRouterConverges(t *testing.T) {
	addrs := startCluster(t, 3, 4096, 16)
	admin, err := Dial(addrs, Options{DisableWarmup: true})
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()

	follower, err := Dial(addrs[:1], Options{Bootstrap: true})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	if got := follower.Nodes(); !sameMembers(got, addrs) {
		t.Fatalf("bootstrapped router sees %v, want %v", got, addrs)
	}

	// converge drives traffic through the follower until its view matches
	// want (or times out): each batch piggybacks the servers' epoch, and
	// the next operation refreshes.
	converge := func(want []string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		keys := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
		for !sameMembers(follower.Nodes(), want) {
			if time.Now().After(deadline) {
				t.Fatalf("follower stuck at %v (epoch %d), want %v", follower.Nodes(), follower.Epoch(), want)
			}
			if err := follower.GetBatch(keys, func(int, bool, []byte) {}); err != nil {
				t.Fatal(err)
			}
		}
	}

	newAddr := startNode(t, 4096, 16, 9)
	if _, err := admin.AddNode(newAddr); err != nil {
		t.Fatal(err)
	}
	converge(append(append([]string(nil), addrs...), newAddr))
	if follower.Epoch() != admin.Epoch() {
		t.Errorf("epochs diverge after AddNode: follower %d, admin %d", follower.Epoch(), admin.Epoch())
	}
	if follower.TopologyRefreshes() == 0 {
		t.Error("follower converged without a counted topology refresh")
	}

	if _, _, err := admin.RemoveNode(newAddr); err != nil {
		t.Fatal(err)
	}
	converge(addrs)
	if follower.Epoch() != admin.Epoch() {
		t.Errorf("epochs diverge after RemoveNode: follower %d, admin %d", follower.Epoch(), admin.Epoch())
	}
}

// TestWarmupKillsFallbacks is the warm-up acceptance: after AddNode's
// background warm-up completes, a full sweep of the preloaded keyspace
// reads entirely from primaries — no misses and ≈ 0 replica fallbacks —
// because the newcomer's share was streamed into it proactively.
func TestWarmupKillsFallbacks(t *testing.T) {
	const nkeys = 1500
	// α = 64 keeps bucket overflow out of the picture, so any post-join
	// miss would be attributable to a warm-up gap rather than an eviction.
	addrs := startCluster(t, 3, 8192, 64)
	ctl, err := Dial(addrs, Options{Replicas: 2, WriteQuorum: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	keys := make([]uint64, nkeys)
	for i := range keys {
		keys[i] = uint64(i) + 1
	}
	if err := ctl.SetBatch(keys, func(i int) []byte { return load.Payload(keys[i], 32) }); err != nil {
		t.Fatal(err)
	}

	newAddr := startNode(t, 8192, 64, 7)
	w, err := ctl.AddNode(newAddr)
	if err != nil {
		t.Fatal(err)
	}
	ws := w.Wait()
	if ws.Err != nil || ws.Failed != 0 {
		t.Fatalf("warm-up failed: %+v", ws)
	}
	if ws.Copied == 0 {
		t.Fatal("warm-up copied nothing; the newcomer owns ~2/4 of replica slots and must receive its share")
	}
	if ws.Streamed < nkeys {
		t.Errorf("warm-up streamed %d keys across sources, want ≥ %d (every source enumerated)", ws.Streamed, nkeys)
	}

	// The newcomer must physically hold its share.
	stats, err := ctl.StatsAll(false)
	if err != nil {
		t.Fatal(err)
	}
	if st := stats[newAddr]; st == nil || st.Len == 0 {
		t.Fatalf("newcomer %s holds no keys after warm-up", newAddr)
	}

	rep0 := ctl.Replication()
	misses := 0
	if err := ctl.GetBatch(keys, func(_ int, hit bool, _ []byte) {
		if !hit {
			misses++
		}
	}); err != nil {
		t.Fatal(err)
	}
	if misses != 0 {
		t.Errorf("%d misses sweeping %d keys after warm-up; want 0", misses, nkeys)
	}
	if fb := ctl.Replication().FallbackHits - rep0.FallbackHits; fb != 0 {
		t.Errorf("%d fallback reads in the post-warm-up sweep; warm-up should have filled every new primary", fb)
	}
}

// TestMigrationStreamsMultipleChunks pins the chunked-KEYS migration
// contract: retiring a node whose resident set spans many stream chunks
// moves or accounts for every key.
func TestMigrationStreamsMultipleChunks(t *testing.T) {
	const nkeys = 2000
	addr0, srv0 := startNodeWithServer(t, 8192, 64, 1)
	addr1, srv1 := startNodeWithServer(t, 8192, 64, 2)
	// 64 keys per KEYS frame: the victim's residents (≈ nkeys/2) stream in
	// well over a dozen frames.
	srv0.SetKeysChunk(64)
	srv1.SetKeysChunk(64)
	addrs := []string{addr0, addr1}

	ctl, err := Dial(addrs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	keys := make([]uint64, nkeys)
	for i := range keys {
		keys[i] = uint64(i) + 1
	}
	if err := ctl.SetBatch(keys, func(i int) []byte { return load.Payload(keys[i], 32) }); err != nil {
		t.Fatal(err)
	}

	before, err := ctl.StatsAll(false)
	if err != nil {
		t.Fatal(err)
	}
	residents := int(before[addr0].Len)
	if residents <= 64 {
		t.Fatalf("victim holds %d keys; need more than one 64-key chunk for this test to mean anything", residents)
	}

	moved, dropped, err := ctl.RemoveNode(addr0)
	if err != nil {
		t.Fatal(err)
	}
	if moved+dropped != residents {
		t.Errorf("migration accounted for %d+%d keys, victim held %d", moved, dropped, residents)
	}

	present := 0
	if err := ctl.GetBatch(keys, func(_ int, hit bool, v []byte) {
		if hit {
			present++
		}
	}); err != nil {
		t.Fatal(err)
	}
	after, err := ctl.StatsAll(false)
	if err != nil {
		t.Fatal(err)
	}
	accounted := dropped + int(after[addr1].Evictions-before[addr1].Evictions)
	if absent := nkeys - present; absent > accounted {
		t.Errorf("%d keys lost but only %d accounted for (moved=%d dropped=%d)", absent, accounted, moved, dropped)
	}
}

// TestRemoveNodeCrashedMemberR1 pins the unreplicated error path: a
// crashed member cannot be drained, so RemoveNode must fail cleanly and
// leave the membership (and ring) unchanged rather than orphan the
// victim's residents.
func TestRemoveNodeCrashedMemberR1(t *testing.T) {
	addr0, srv0 := startNodeWithServer(t, 1024, 16, 1)
	addr1, _ := startNodeWithServer(t, 1024, 16, 2)
	ctl, err := Dial([]string{addr0, addr1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	epoch := ctl.Epoch()
	if err := srv0.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ctl.RemoveNode(addr0); err == nil {
		t.Fatal("RemoveNode on a crashed member at R=1 succeeded; the drain is impossible and must error")
	}
	if got := ctl.Nodes(); len(got) != 2 {
		t.Fatalf("membership = %v after failed RemoveNode, want both members kept", got)
	}
	if ctl.Epoch() != epoch {
		t.Errorf("epoch moved from %d to %d on a failed RemoveNode", epoch, ctl.Epoch())
	}
}

// TestRefreshNotBlockedByDeadMember pins the refresh-outside-the-lock fix:
// a topology refresh that is stuck dialing a black-holed member must not
// stall routing for every other caller. One goroutine's batch triggers the
// refresh and blocks on the dead dial; concurrent batches on live members
// must complete within a tight bound (under the old exclusive-lock refresh
// they queued behind the dead dial on c.mu), and once the dial fails the
// refresh completes and the router converges on the pushed epoch.
func TestRefreshNotBlockedByDeadMember(t *testing.T) {
	addr0, _ := startNodeWithServer(t, 1024, 16, 1)
	addr1, _ := startNodeWithServer(t, 1024, 16, 2)
	addr2, srv2 := startNodeWithServer(t, 1024, 16, 3)
	addrs := []string{addr0, addr1, addr2}

	var blackhole atomic.Bool
	gate := make(chan struct{})
	dial := func(addr string) (*wire.Client, error) {
		if addr == addr2 && blackhole.Load() {
			<-gate // a SYN into the void: nothing answers until the timeout
			return nil, fmt.Errorf("dial %s: black-holed", addr)
		}
		return wire.Dial(addr)
	}
	ctl, err := Dial(addrs, Options{Dial: dial})
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	base := ctl.Epoch()

	// Keys primarily owned by the members that stay alive, plus at least
	// one on node 0 so traffic piggybacks the epoch bump below.
	var liveKeys []uint64
	var on0 bool
	for k := uint64(1); k < 100_000 && (len(liveKeys) < 8 || !on0); k++ {
		owner := ctl.Owners(k)[0]
		if owner == addr2 {
			continue
		}
		liveKeys = append(liveKeys, k)
		on0 = on0 || owner == addr0
	}
	if !on0 || len(liveKeys) < 8 {
		t.Fatal("could not find live-owned keys; ring is degenerate")
	}

	// Crash member 2 and black-hole its address, then move the cluster's
	// epoch forward behind the router's back.
	if err := srv2.Close(); err != nil {
		t.Fatal(err)
	}
	blackhole.Store(true)
	direct, err := wire.Dial(addr0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := direct.PushTopology(wire.Topology{Epoch: base + 1, Members: addrs}); err != nil {
		t.Fatal(err)
	}
	direct.Close()

	// First batch observes the newer epoch; the next one triggers the
	// refresh and parks on the black-holed dial.
	if err := ctl.GetBatch(liveKeys, func(int, bool, []byte) {}); err != nil {
		t.Fatal(err)
	}
	stuck := make(chan error, 1)
	go func() { stuck <- ctl.GetBatch(liveKeys, func(int, bool, []byte) {}) }()

	// Give the refresh a moment to reach the dead member, then demand that
	// other traffic still flows. 5s is the timeout bound: far above a
	// healthy batch, far below a kernel connect cycle — and the old code
	// held c.mu across the dial, so these batches would sit here until the
	// gate opened.
	time.Sleep(50 * time.Millisecond)
	for i := 0; i < 5; i++ {
		done := make(chan error, 1)
		go func() { done <- ctl.GetBatch(liveKeys, func(int, bool, []byte) {}) }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("batch %d during stuck refresh: %v", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("routing stalled behind a refresh stuck on a dead member")
		}
	}

	// Release the dead dial; the refresh fails over, adopts the pushed
	// view and the stuck caller comes back.
	close(gate)
	select {
	case err := <-stuck:
		if err != nil {
			t.Fatalf("the refresh-triggering batch failed: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("the refresh-triggering batch never returned after the dial failed")
	}
	deadline := time.Now().Add(5 * time.Second)
	for ctl.Epoch() != base+1 {
		if time.Now().After(deadline) {
			t.Fatalf("router epoch = %d, want %d adopted after the refresh", ctl.Epoch(), base+1)
		}
		if err := ctl.GetBatch(liveKeys, func(int, bool, []byte) {}); err != nil {
			t.Fatal(err)
		}
	}
	if ctl.TopologyRefreshes() == 0 {
		t.Error("no refresh counted despite the adopted epoch")
	}
}

// TestJoinSkipsDeadMember pins the join fault tolerance: a dead non-seed
// member must not abort a join — it is skipped, reported in the skipped
// list, and kept in the topology (it may only be temporarily down).
func TestJoinSkipsDeadMember(t *testing.T) {
	addr0, srv0 := startNodeWithServer(t, 1024, 16, 1)
	srv0.SetTopology(wire.Topology{Epoch: 0, Members: []string{addr0}})
	addr1, _ := startNodeWithServer(t, 1024, 16, 2)
	if _, skipped, err := Join(addr0, addr1, nil); err != nil || len(skipped) != 0 {
		t.Fatalf("healthy join = skipped %v, err %v", skipped, err)
	}
	addr2, srv2 := startNodeWithServer(t, 1024, 16, 3)
	if _, _, err := Join(addr0, addr2, nil); err != nil {
		t.Fatal(err)
	}
	if err := srv2.Close(); err != nil { // dies without leaving
		t.Fatal(err)
	}

	addr3, _ := startNodeWithServer(t, 1024, 16, 4)
	top, skipped, err := Join(addr0, addr3, nil)
	if err != nil {
		t.Fatalf("join with a dead non-seed member aborted: %v", err)
	}
	if len(skipped) != 1 || skipped[0] != addr2 {
		t.Errorf("skipped = %v, want exactly the dead member %s", skipped, addr2)
	}
	if !contains(top.Members, addr3) || !contains(top.Members, addr2) {
		t.Errorf("joined view %v must contain self %s and keep the (possibly only briefly) dead %s", top.Members, addr3, addr2)
	}
	// The reachable members hold the new view.
	for _, a := range []string{addr0, addr1, addr3} {
		cl, err := wire.Dial(a)
		if err != nil {
			t.Fatal(err)
		}
		held, err := cl.Members()
		cl.Close()
		if err != nil {
			t.Fatal(err)
		}
		if held.Epoch != top.Epoch || !sameMembers(held.Members, top.Members) {
			t.Errorf("member %s holds %+v, want %+v", a, held, top)
		}
	}
}
