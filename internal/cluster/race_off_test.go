//go:build !race

package cluster

// raceEnabled reports that the race detector is off.
const raceEnabled = false
