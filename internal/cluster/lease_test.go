package cluster

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/load"
	"repro/internal/trace"
)

// TestLeaseHerdSuppression is the regression test for the v7 lease
// semantics: N independent read-through clients storm one cold key
// concurrently, and exactly ONE of them observes the miss (winning the
// fill lease and loading the origin); the rest are absorbed — they wait
// out the fill and read the stored value. Under pre-v7 semantics every
// client misses and every client loads the origin, so this test fails
// with misses == N.
func TestLeaseHerdSuppression(t *testing.T) {
	addrs := startCluster(t, 3, 4096, 16)
	const n = 8
	const key = uint64(0xC01D)
	payload := []byte("origin-load-payload")

	clients := make([]*Client, n)
	for i := range clients {
		c, err := Dial(addrs, Options{Leases: true, NearCache: NearCacheOptions{Slots: 64}})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[i] = c
	}

	var misses, originLoads atomic.Int64
	start := make(chan struct{})
	var wg sync.WaitGroup
	for _, c := range clients {
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			<-start
			// One read-through iteration, as the harness performs it: GET,
			// and on a miss load the origin and SET the result back.
			val, hit, err := c.Get(key)
			if err != nil {
				t.Error(err)
				return
			}
			if !hit {
				misses.Add(1)
				originLoads.Add(1)
				if err := c.Set(key, payload); err != nil {
					t.Error(err)
				}
				return
			}
			if string(val) != string(payload) {
				t.Errorf("storm read returned %q, want %q", val, payload)
			}
		}(c)
	}
	close(start)
	wg.Wait()

	if got := misses.Load(); got != 1 {
		t.Fatalf("storm of %d clients observed %d misses, want exactly 1 (the lease holder)", n, got)
	}
	if got := originLoads.Load(); got != 1 {
		t.Fatalf("storm of %d clients loaded the origin %d times, want exactly 1", n, got)
	}

	// The servers agree: one lease was granted cluster-wide and one SET
	// (the holder's fill) landed.
	stats, err := clients[0].StatsAll(false)
	if err != nil {
		t.Fatal(err)
	}
	agg := AggregateStats(stats)
	if agg.LeasesGranted != 1 {
		t.Fatalf("cluster granted %d leases, want 1", agg.LeasesGranted)
	}
	if agg.Sets != 1 {
		t.Fatalf("cluster absorbed %d SETs, want 1 (the single fill)", agg.Sets)
	}
}

// TestLeaseHerdSuppressionReplicated repeats the storm under R=2: round 0
// leases at the primary, the grant falls back through the replica (also
// cold), and the invariant is the same — one origin load, everyone else
// served.
func TestLeaseHerdSuppressionReplicated(t *testing.T) {
	addrs := startCluster(t, 3, 4096, 16)
	const n = 6
	const key = uint64(0xC01D2)
	payload := []byte("replicated-origin-load")

	clients := make([]*Client, n)
	for i := range clients {
		c, err := Dial(addrs, Options{Replicas: 2, Leases: true, NearCache: NearCacheOptions{Slots: 64}})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[i] = c
	}

	var misses atomic.Int64
	start := make(chan struct{})
	var wg sync.WaitGroup
	for _, c := range clients {
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			<-start
			_, hit, err := c.Get(key)
			if err != nil {
				t.Error(err)
				return
			}
			if !hit {
				misses.Add(1)
				if err := c.Set(key, payload); err != nil {
					t.Error(err)
				}
			}
		}(c)
	}
	close(start)
	wg.Wait()

	if got := misses.Load(); got != 1 {
		t.Fatalf("replicated storm of %d clients observed %d misses, want exactly 1", n, got)
	}
	stats, err := clients[0].StatsAll(false)
	if err != nil {
		t.Fatal(err)
	}
	if agg := AggregateStats(stats); agg.LeasesGranted != 1 {
		t.Fatalf("cluster granted %d leases, want 1", agg.LeasesGranted)
	}

	// The fill propagated: both owners eventually hold the key (the
	// non-primary through the fill's background repair).
	c := clients[0]
	owners := c.Owners(key)
	if len(owners) != 2 {
		t.Fatalf("Owners(%d) = %v, want 2", key, owners)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		stats, err := c.StatsAll(false)
		if err != nil {
			t.Fatal(err)
		}
		total := uint64(0)
		for _, addr := range owners {
			if st := stats[addr]; st != nil {
				total += st.Len
			}
		}
		if total >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fill did not propagate to the replica: %d copies resident", total)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestLeaseFillDiscardedWhenLost pins the documented read-through
// contract: a SET arriving while the key's lease was superseded by a
// fresher write is discarded as a successful no-op — the fresher value
// survives.
func TestLeaseFillDiscardedWhenLost(t *testing.T) {
	addrs := startCluster(t, 1, 4096, 16)
	holder, err := Dial(addrs, Options{Leases: true})
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Close()
	writer, err := Dial(addrs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer writer.Close()

	const key = uint64(77)
	if _, hit, err := holder.Get(key); err != nil || hit {
		t.Fatalf("cold GET: hit=%v err=%v", hit, err)
	}
	// A plain client's user SET lands between the holder's miss and fill.
	if err := writer.Set(key, []byte("fresh-user-write")); err != nil {
		t.Fatal(err)
	}
	// The holder's read-through fill must lose and be discarded.
	if err := holder.Set(key, []byte("stale-fill")); err != nil {
		t.Fatal(err)
	}
	_, _, lost, _ := leaseTally(holder)
	if lost != 1 {
		t.Fatalf("holder counted %d lost fills, want 1", lost)
	}
	val, hit, err := writer.Get(key)
	if err != nil || !hit {
		t.Fatalf("GET after fill: hit=%v err=%v", hit, err)
	}
	if string(val) != "fresh-user-write" {
		t.Fatalf("discarded fill overwrote the fresher write: got %q", val)
	}
}

func leaseTally(c *Client) (nearHits, staleHints, lost, waits uint64) {
	nh, sh, _, ll, lw := c.LeaseCounters()
	return nh, sh, ll, lw
}

// seqPayload encodes a worker-visible sequence number into a payload and
// seqOf reads it back, so readers can assert ordering on what they were
// actually served.
func seqPayload(seq uint64) []byte {
	v := make([]byte, 8)
	binary.LittleEndian.PutUint64(v, seq)
	return v
}

func seqOf(v []byte) uint64 { return binary.LittleEndian.Uint64(v) }

// TestNearCacheMonotonicUnderWrites races near-cached readers against a
// sequential writer per key and asserts every reader observes each key's
// sequence numbers non-decreasing: the version-invalidated near-cache
// never serves an older value after a newer one has been observed
// through the same client. Run with -race, this is also the data-race
// check on the near-cache and grant table.
func TestNearCacheMonotonicUnderWrites(t *testing.T) {
	addrs := startCluster(t, 3, 4096, 16)
	c, err := Dial(addrs, Options{Leases: true, NearCache: NearCacheOptions{Slots: 128, TTL: 5 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const nKeys = 4
	const writes = 200
	const readers = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// One sequential writer per key: its SETs get strictly increasing
	// server versions, so payload sequence order == version order.
	for k := 0; k < nKeys; k++ {
		wg.Add(1)
		go func(key uint64) {
			defer wg.Done()
			for seq := uint64(1); seq <= writes; seq++ {
				if err := c.Set(key, seqPayload(seq)); err != nil {
					t.Error(err)
					return
				}
			}
		}(uint64(1000 + k))
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := make(map[uint64]uint64, nKeys)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for k := 0; k < nKeys; k++ {
					key := uint64(1000 + k)
					val, hit, err := c.Get(key)
					if err != nil {
						t.Error(err)
						return
					}
					if !hit {
						continue
					}
					seq := seqOf(val)
					if seq < last[key] {
						t.Errorf("key %d: observed seq %d after %d — near-cache served a resurrected older value", key, seq, last[key])
						return
					}
					last[key] = seq
				}
			}
		}()
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	// Writers finish on their own; readers spin until told to stop.
	time.Sleep(50 * time.Millisecond)
	close(stop)
	<-done
}

// TestNearCacheNoResurrectionAfterDel deletes a near-cached key and
// asserts that once a subsequent read has observed the miss, the value
// never reappears (nothing writes it again).
func TestNearCacheNoResurrectionAfterDel(t *testing.T) {
	addrs := startCluster(t, 3, 4096, 16)
	c, err := Dial(addrs, Options{NearCache: NearCacheOptions{Slots: 64, TTL: 20 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const key = uint64(4242)
	if err := c.Set(key, []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	if _, hit, err := c.Get(key); err != nil || !hit {
		t.Fatalf("warm GET: hit=%v err=%v", hit, err)
	}
	if present, err := c.Del(key); err != nil || !present {
		t.Fatalf("DEL: present=%v err=%v", present, err)
	}
	// Del purges the near-cache, so the miss must be immediate.
	for i := 0; i < 10; i++ {
		_, hit, err := c.Get(key)
		if err != nil {
			t.Fatal(err)
		}
		if hit {
			t.Fatalf("GET %d after DEL returned the deleted value", i)
		}
	}
}

// TestLoadHarnessCollectsLeaseCounters wires a leased/near-cached cluster
// client through the load harness and asserts the LeaseReporter tallies
// surface in the Result — a hot workload must show near-cache absorption.
func TestLoadHarnessCollectsLeaseCounters(t *testing.T) {
	addrs := startCluster(t, 3, 4096, 16)
	opts := Options{Leases: true, NearCache: NearCacheOptions{Slots: 512}}

	// A maximally hot stream: one key read over and over.
	keys := make(trace.Sequence, 4096)
	for i := range keys {
		keys[i] = 7
	}
	res, err := load.Run(load.Config{
		Dial:        func() (load.Conn, error) { return Dial(addrs, opts) },
		Conns:       2,
		Keys:        keys,
		Pipeline:    16,
		ValueSize:   16,
		ReadThrough: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NearHits == 0 {
		t.Fatalf("hot single-key run reported 0 near-cache hits (grants=%d waits=%d)", res.LeaseGrants, res.LeaseWaits)
	}
	if res.LeaseGrants == 0 {
		t.Fatal("read-through run reported 0 lease grants")
	}
	if res.Misses > res.LeaseGrants+res.LeaseWaits {
		t.Fatalf("misses=%d exceed grants+waits=%d: the storm was not lease-bounded", res.Misses, res.LeaseGrants+res.LeaseWaits)
	}
}
