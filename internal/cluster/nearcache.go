package cluster

import (
	"sync"
	"time"
)

// DefaultNearCacheTTL bounds how long a near-cache entry serves reads
// without revalidation when Options.NearCache.TTL is zero. The TTL is the
// staleness budget a deployment grants the edge: within it a hot key's
// reads never leave the process. 100ms keeps a storming client from
// hammering the owner more than ~10×/s per key while staying well under
// human-visible staleness.
const DefaultNearCacheTTL = 100 * time.Millisecond

// NearCacheOptions configures the client-side near-cache (wire v7): a
// bounded in-process cache of recently read values, each stamped with the
// per-key version (v4) the cluster stored it under. Versions are what
// make the near-cache safe: an entry is just a replica whose staleness is
// detectable — any response carrying a newer version for the key
// supersedes it, and an older version can never overwrite it, so the
// versions one client observes for a key are monotonic even with the
// near-cache interposed.
type NearCacheOptions struct {
	// Slots bounds resident entries; ≤ 0 disables the near-cache.
	Slots int
	// TTL bounds how long an entry serves reads without revalidation;
	// 0 means DefaultNearCacheTTL.
	TTL time.Duration
}

// nearEntry is one cached value: the payload (an owned copy), the version
// it was stored under, its serve deadline, and the clock reference bit.
type nearEntry struct {
	val     []byte
	ver     uint64
	expires time.Time
	used    bool
}

// nearCache is the bounded version-aware cache behind NearCacheOptions.
// Eviction is CLOCK over a ring of resident keys — one bit per entry, no
// per-access list surgery. Values are replaced, never mutated, so a
// slice handed out under the lock stays valid after release.
type nearCache struct {
	ttl   time.Duration
	slots int

	mu      sync.Mutex
	entries map[uint64]*nearEntry
	ring    []uint64 // resident keys, swept by the clock hand
	hand    int

	hits, misses, stores, evicts uint64 // under mu; see snapshot
}

func newNearCache(o NearCacheOptions) *nearCache {
	if o.Slots <= 0 {
		return nil
	}
	ttl := o.TTL
	if ttl <= 0 {
		ttl = DefaultNearCacheTTL
	}
	return &nearCache{
		ttl:     ttl,
		slots:   o.Slots,
		entries: make(map[uint64]*nearEntry, o.Slots),
		ring:    make([]uint64, 0, o.Slots),
	}
}

// lookup serves key locally when a live (unexpired) entry exists.
func (n *nearCache) lookup(key uint64, now time.Time) ([]byte, uint64, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	e := n.entries[key]
	if e == nil || now.After(e.expires) {
		n.misses++
		return nil, 0, false
	}
	e.used = true
	n.hits++
	return e.val, e.ver, true
}

// storeLocked caches val (copied) at ver unless a strictly newer version
// is already resident — an older value never overwrites a newer one, the
// invariant that keeps observed versions monotonic. An equal version
// refreshes the serve deadline.
func (n *nearCache) storeLocked(key, ver uint64, val []byte, now time.Time) {
	e := n.entries[key]
	if e != nil {
		if ver < e.ver {
			return
		}
		if ver > e.ver {
			e.ver = ver
			e.val = append([]byte(nil), val...)
		}
		e.expires = now.Add(n.ttl)
		e.used = true
		n.stores++
		return
	}
	if len(n.entries) >= n.slots {
		n.evictLocked()
	}
	n.entries[key] = &nearEntry{
		val:     append([]byte(nil), val...),
		ver:     ver,
		expires: now.Add(n.ttl),
		used:    true,
	}
	n.ring = append(n.ring, key)
	n.stores++
}

// store is storeLocked behind the lock.
func (n *nearCache) store(key, ver uint64, val []byte, now time.Time) {
	n.mu.Lock()
	n.storeLocked(key, ver, val, now)
	n.mu.Unlock()
}

// reconcile merges a response (ver, val) for key with the resident entry
// and returns the fresher of the two — what the caller should deliver.
// When the near-cache already holds a strictly newer version (a write
// through this client raced the read), that value wins; otherwise the
// response is cached and served. Either way the caller delivers a value
// at least as new as anything this client has observed for the key.
func (n *nearCache) reconcile(key, ver uint64, val []byte, now time.Time) ([]byte, uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if e := n.entries[key]; e != nil && e.ver > ver {
		e.used = true
		return e.val, e.ver
	}
	n.storeLocked(key, ver, val, now)
	return n.entries[key].val, ver
}

// remove drops key's entry (a DEL, or a lost lease naming a fresher
// version this client has not seen). The ring slot is reclaimed lazily by
// the clock sweep.
func (n *nearCache) remove(key uint64) {
	n.mu.Lock()
	delete(n.entries, key)
	n.mu.Unlock()
}

// tombstone applies a remotely-learned delete (v8): drop key's entry iff
// the resident version is at or below the tombstone's. This is the same
// version-monotonic admit rule as storeLocked, inverted — a delete at ver
// supersedes any value ≤ ver, while an entry strictly newer than the
// tombstone proves a later write already superseded the delete and must
// keep serving. The ring slot is reclaimed lazily by the clock sweep.
func (n *nearCache) tombstone(key, ver uint64) {
	n.mu.Lock()
	if e := n.entries[key]; e != nil && e.ver <= ver {
		delete(n.entries, key)
	}
	n.mu.Unlock()
}

// evictLocked frees one slot: the clock hand sweeps the ring, clearing
// reference bits and evicting the first entry found unreferenced since
// its last sweep. Ring slots whose entries were removed out-of-band are
// compacted in passing.
func (n *nearCache) evictLocked() {
	for len(n.ring) > 0 {
		if n.hand >= len(n.ring) {
			n.hand = 0
		}
		k := n.ring[n.hand]
		e := n.entries[k]
		switch {
		case e == nil: // removed out-of-band; reclaim the slot
			n.ring[n.hand] = n.ring[len(n.ring)-1]
			n.ring = n.ring[:len(n.ring)-1]
		case e.used:
			e.used = false
			n.hand++
		default:
			delete(n.entries, k)
			n.ring[n.hand] = n.ring[len(n.ring)-1]
			n.ring = n.ring[:len(n.ring)-1]
			n.evicts++
			return
		}
	}
}

// NearCacheCounters is the near-cache's serving tally; see
// Client.NearCache.
type NearCacheCounters struct {
	// Hits and Misses count lookup outcomes (a miss includes expired
	// entries); Stores counts values cached or refreshed; Evicts counts
	// entries displaced by the clock.
	Hits, Misses, Stores, Evicts uint64
	// Len is the current resident entry count.
	Len int
}

func (n *nearCache) snapshot() NearCacheCounters {
	n.mu.Lock()
	defer n.mu.Unlock()
	return NearCacheCounters{
		Hits: n.hits, Misses: n.misses, Stores: n.stores, Evicts: n.evicts,
		Len: len(n.entries),
	}
}
