package cluster

import (
	"net"
	"testing"
	"time"

	"repro/internal/concurrent"
	"repro/internal/server"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// TestTraceEndToEnd pins the tentpole acceptance path on a live 2-node
// replicated cluster: a traced read whose primary is stale takes the
// full route — router → primary (MISS) → fallback owner (HIT) → async
// repair queued back at the primary — and every hop, including the
// deferred repair drain, records a span under the same trace ID.
// Joining the per-node METRICS on that ID reconstructs the cross-node
// path, the primary's slow-op ring joins to it too, and the HOTKEYS
// section ranks the planted hot key first on every owner.
func TestTraceEndToEnd(t *testing.T) {
	srvs := make(map[string]*server.Server, 2)
	addrs := make([]string, 2)
	for i := range addrs {
		cache, err := concurrent.New(concurrent.Config{Capacity: 4096, Alpha: 8, Seed: uint64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		srv := server.New(cache)
		srv.SetSlowOpThreshold(time.Nanosecond) // every op is "slow": the join must still pick the right one
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		t.Cleanup(func() { srv.Close() })
		addrs[i] = ln.Addr().String()
		srvs[addrs[i]] = srv
	}
	ctl, err := Dial(addrs, Options{Replicas: 2, TraceSample: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	// Plant the hot key: its SETs fan out to both owners, so both rank it
	// in their SET class; the noise keys get a fraction of its traffic.
	const hotKey = 99
	for i := 0; i < 50; i++ {
		if err := ctl.Set(hotKey, []byte("hot")); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < 10; k++ {
		for i := 0; i < 5; i++ {
			if err := ctl.Set(1000+k, []byte("cold")); err != nil {
				t.Fatal(err)
			}
		}
	}

	owners := ctl.Owners(hotKey)
	if len(owners) != 2 {
		t.Fatalf("hot key has %d owners, want 2", len(owners))
	}
	primary := owners[0]

	// Make the primary stale behind the router's back, then read: the
	// traced GET misses the primary, hits the fallback owner, and queues
	// an async repair of the primary under the same trace.
	direct, err := wire.Dial(primary)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := direct.Del(hotKey); err != nil {
		direct.Close()
		t.Fatal(err)
	}
	direct.Close()
	val, hit, err := ctl.Get(hotKey)
	if err != nil || !hit || string(val) != "hot" {
		t.Fatalf("fallback read = %q/%v/%v, want a hit on %q", val, hit, err, "hot")
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		all, err := ctl.MetricsAll(wire.MetricsAll)
		if err != nil {
			t.Fatal(err)
		}
		// The repair's drain-time span is the only SET span with a queue
		// wait on the primary; its trace ID is the original GET's.
		var tid telemetry.TraceID
		for _, sp := range all[primary].Spans {
			if sp.Op == byte(wire.OpSet) && sp.QueueWaitNanos > 0 {
				tid = sp.TraceID
			}
		}
		if tid.IsZero() {
			if time.Now().After(deadline) {
				t.Fatalf("the repair drain span never appeared on the primary (%d spans there)", len(all[primary].Spans))
			}
			time.Sleep(10 * time.Millisecond)
			continue
		}

		// The trace joins across both nodes: the primary holds the MISS
		// and the repair, the fallback owner holds the HIT.
		for _, addr := range addrs {
			found := false
			for _, sp := range all[addr].Spans {
				if sp.TraceID == tid {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("node %s recorded no span for trace %s — the cross-node join is broken", addr, tid)
			}
		}

		// The aggregate groups the trace's spans contiguously; the full
		// path is at least MISS + HIT + repair drain.
		agg := AggregateMetrics(all)
		var pathLen int
		for _, sp := range agg.Spans {
			if sp.TraceID == tid {
				pathLen++
			}
		}
		if pathLen < 3 {
			t.Errorf("aggregate holds %d spans for trace %s, want the full ≥3-hop path", pathLen, tid)
		}

		// The primary's slow-op ring joins to the same trace (the traced
		// MISS crossed the 1ns threshold).
		joined := false
		for _, r := range all[primary].SlowOps {
			if r.TraceID == tid {
				joined = true
				break
			}
		}
		if !joined {
			t.Error("no slow-op record on the primary joins the trace ID")
		}

		// Hot-key attribution: the planted key ranks first in the SET
		// class on every owner, and in the merged cluster view.
		wantHash := telemetry.HashKey(hotKey)
		for _, addr := range addrs {
			hs := all[addr].HotClass(wire.HotSet)
			if len(hs) == 0 || hs[0].Key != wantHash {
				t.Errorf("node %s does not rank the planted hot key first in its SET class", addr)
			}
		}
		if hs := agg.HotClass(wire.HotSet); len(hs) == 0 || hs[0].Key != wantHash {
			t.Error("the merged cluster view does not rank the planted hot key first")
		} else if hs[0].Count < 100 {
			// 50 SETs × 2 owners; the sketch may overestimate, never under
			// by more than Err.
			t.Errorf("merged hot-key count = %d, want ≥100", hs[0].Count)
		}
		return
	}
}

// TestTraceSampling pins the sampling contract: TraceSample = N stamps
// exactly every N-th batch, and TraceSample = 0 sends no trace bytes at
// all (the member span rings stay empty).
func TestTraceSampling(t *testing.T) {
	addrs := startCluster(t, 2, 1024, 8)

	ctl, err := Dial(addrs, Options{TraceSample: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := ctl.Set(uint64(i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	all, err := ctl.MetricsAll(wire.MetricsTraces)
	if err != nil {
		t.Fatal(err)
	}
	ctl.Close()
	spans := 0
	seen := make(map[telemetry.TraceID]bool)
	for _, m := range all {
		spans += len(m.Spans)
		for _, sp := range m.Spans {
			if seen[sp.TraceID] {
				t.Errorf("trace ID %s minted twice for distinct batches", sp.TraceID)
			}
			seen[sp.TraceID] = true
		}
	}
	if spans != 10 {
		t.Errorf("40 single-key batches at TraceSample=4 produced %d spans, want 10", spans)
	}

	ctl, err = Dial(addrs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	for i := 0; i < 20; i++ {
		if _, _, err := ctl.Get(uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	all, err = ctl.MetricsAll(wire.MetricsTraces)
	if err != nil {
		t.Fatal(err)
	}
	for addr, m := range all {
		for _, sp := range m.Spans {
			if seen[sp.TraceID] {
				continue // left over from the sampled client's phase
			}
			t.Errorf("untraced client produced span %s on %s", sp.TraceID, addr)
		}
	}
}
