package cluster

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/telemetry"
	"repro/internal/wire"
)

// MetricsAll fans METRICS out to every member and returns the
// flight-recorder snapshots keyed by address — the per-node view, where a
// hot member is visible. AggregateMetrics folds them into the cluster
// view.
func (c *Client) MetricsAll(flags wire.MetricsFlags) (map[string]*wire.Metrics, error) {
	c.maybeRefresh()
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]*wire.Metrics, len(c.nodes))
	for _, addr := range c.ring.Nodes() {
		nc := c.nodes[addr]
		nc.mu.Lock()
		err := nc.withRetry(c.dial, func(cl *wire.Client) error {
			m, err := cl.Metrics(flags)
			if err == nil {
				out[addr] = m
				c.observeEpoch(cl.LastEpoch())
			}
			return err
		})
		nc.mu.Unlock()
		if err != nil {
			return nil, fmt.Errorf("cluster: METRICS %s: %w", addr, err)
		}
	}
	return out, nil
}

// AggregateMetrics merges per-member flight-recorder snapshots into one
// cluster-wide view: histograms merge bucket-wise (the merged histogram
// equals what one recorder fed every node's samples would hold, so
// cluster quantiles are exact up to bucket resolution, not averages of
// averages), counters sum, slow-op rings concatenate in member-address
// iteration order (each ring is oldest-first, but cross-member order is
// not reconstructed — records carry UnixNanos for that), hot-key
// sketches merge by union-and-sum per class (associative and
// commutative, so the cluster ranking is collection-order independent),
// and spans concatenate grouped by trace ID so one request's
// cluster-wide path reads contiguously.
func AggregateMetrics(metrics map[string]*wire.Metrics) *wire.Metrics {
	agg := &wire.Metrics{}
	hists := make(map[byte]*telemetry.HistogramSnapshot)
	counters := make(map[byte]uint64)
	hot := make(map[byte]telemetry.TopKSnapshot)
	for _, m := range metrics {
		agg.Flags |= m.Flags
		for i := range m.Hists {
			h := &m.Hists[i]
			if have, ok := hists[h.ID]; ok {
				have.Merge(&h.Snap)
			} else {
				snap := h.Snap
				hists[h.ID] = &snap
			}
		}
		for _, c := range m.Counters {
			counters[c.ID] += c.Value
		}
		agg.SlowOps = append(agg.SlowOps, m.SlowOps...)
		for _, hc := range m.HotKeys {
			hot[hc.Class] = hot[hc.Class].Merge(hc.Keys)
		}
		agg.Spans = append(agg.Spans, m.Spans...)
	}
	// Rebuild the sections in the ascending-ID order the wire form keeps.
	for id := byte(1); id != 0; id++ {
		if h, ok := hists[id]; ok {
			agg.Hists = append(agg.Hists, wire.OpHist{ID: id, Snap: *h})
		}
		if v, ok := counters[id]; ok {
			agg.Counters = append(agg.Counters, wire.MetricCounter{ID: id, Value: v})
		}
		if ks, ok := hot[id]; ok && len(ks) > 0 {
			agg.HotKeys = append(agg.HotKeys, wire.HotKeyClass{Class: id, Keys: ks})
		}
	}
	// Group spans by trace ID (stable within a trace, so each member's
	// oldest-first order survives), then by time within the trace.
	sort.SliceStable(agg.Spans, func(i, j int) bool {
		a, b := &agg.Spans[i], &agg.Spans[j]
		if c := bytes.Compare(a.TraceID[:], b.TraceID[:]); c != 0 {
			return c < 0
		}
		return a.UnixNanos < b.UnixNanos
	})
	return agg
}
