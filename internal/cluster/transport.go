package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/wire"
)

// This file is the transport layer of the router: one pipelined wire
// connection per member, lazily dialed, redialed once on failure, and the
// sub-batch machinery that fans one logical batch out across members under
// a deadlock-free lock order. It knows nothing about rings, epochs or
// replication — that is the topology layer (topology.go) and the routing
// client (client.go, replication.go).

// DialFunc establishes the wire connection to one member. The default is
// wire.Dial; tests substitute wrappers (stall injection) and deployments
// can layer TLS here.
type DialFunc func(addr string) (*wire.Client, error)

// nodeConn is one member's connection state plus the router's per-member
// traffic counters. The connection is dialed lazily on first use, so
// members discovered through a topology refresh cost nothing until traffic
// routes to them.
type nodeConn struct {
	addr string
	mu   sync.Mutex // serializes use of cl
	cl   *wire.Client

	gets, hits, misses, sets, dels, redials, repairs atomic.Uint64
}

// client returns the live connection, dialing if needed. Caller holds nc.mu.
func (nc *nodeConn) client(dial DialFunc) (*wire.Client, error) {
	if nc.cl != nil {
		return nc.cl, nil
	}
	cl, err := dial(nc.addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial %s: %w", nc.addr, err)
	}
	nc.cl = cl
	return cl, nil
}

// drop discards the connection after an error. Caller holds nc.mu.
func (nc *nodeConn) drop() {
	if nc.cl != nil {
		nc.cl.Close()
		nc.cl = nil
	}
}

// withRetry runs op against the member connection, redialing once on
// failure. Caller holds nc.mu. Only safe for idempotent round trips.
func (nc *nodeConn) withRetry(dial DialFunc, op func(cl *wire.Client) error) error {
	cl, err := nc.client(dial)
	if err == nil {
		if err = op(cl); err == nil {
			return nil
		}
	}
	nc.drop()
	nc.redials.Add(1)
	cl, err2 := nc.client(dial)
	if err2 != nil {
		return fmt.Errorf("%w (redial: %v)", err, err2)
	}
	if err := op(cl); err != nil {
		nc.drop()
		return err
	}
	return nil
}

// batchTrace is one batch's trace context, handed down to the enqueue
// helpers. The zero value means untraced: the requests go out in their
// v5-identical form with no trace bytes. A traced batch stamps the same
// context on every request of every sub-batch — fan-out is one logical
// request, so it is one trace.
type batchTrace struct {
	tc     wire.TraceContext
	traced bool
}

// subBatch is the slice of one batch owned by a single member.
type subBatch struct {
	nc        *nodeConn
	idx       []int // positions in the original batch, in enqueue order
	err       error
	delivered int
}

// batchScratch is the per-batch partition state — the identity index list,
// the member→sub-batch map, the ordered sub-batch slice and a freelist of
// recycled subBatch structs (with their idx capacity retained). Pooled so a
// steady-state GetBatch/SetBatch allocates none of it. A scratch is private
// to one batch from getBatchScratch until release, so no locking is needed
// beyond sync.Pool's own.
type batchScratch struct {
	idxs   []int
	byNode map[*nodeConn]*subBatch
	subs   []*subBatch
	free   []*subBatch
}

var batchScratchPool = sync.Pool{
	New: func() any { return &batchScratch{byNode: make(map[*nodeConn]*subBatch, 8)} },
}

func getBatchScratch() *batchScratch { return batchScratchPool.Get().(*batchScratch) }

// release recycles the sub-batches and returns the scratch to the pool.
// Callers must be done with every *subBatch and idx slice handed out from
// this scratch: they are reused verbatim by the next batch.
func (sc *batchScratch) release() {
	clear(sc.byNode)
	for _, s := range sc.subs {
		s.nc = nil
		s.idx = s.idx[:0]
		s.err = nil
		s.delivered = 0
		sc.free = append(sc.free, s)
	}
	sc.subs = sc.subs[:0]
	batchScratchPool.Put(sc)
}

// newSub hands out a sub-batch for nc, reusing a recycled struct when one
// is available.
func (sc *batchScratch) newSub(nc *nodeConn) *subBatch {
	if n := len(sc.free); n > 0 {
		s := sc.free[n-1]
		sc.free = sc.free[:n-1]
		s.nc = nc
		return s
	}
	return &subBatch{nc: nc}
}

// sortSubs orders sub-batches by member address. Lock acquisition must be
// totally ordered to stay deadlock-free across concurrent batches.
// Insertion sort rather than sort.Slice: sub-batch counts are tiny (one
// per involved member) and sort.Slice allocates its closure and reflect
// swapper on every call, which the batch hot path cannot afford.
func sortSubs(subs []*subBatch) {
	for i := 1; i < len(subs); i++ {
		for j := i; j > 0 && subs[j].nc.addr < subs[j-1].nc.addr; j-- {
			subs[j], subs[j-1] = subs[j-1], subs[j]
		}
	}
}

// lockSubs acquires every involved member connection in address order;
// unlockSubs releases them. A plain function pair instead of a returned
// closure keeps the batch hot path allocation-free.
func lockSubs(subs []*subBatch) {
	for _, s := range subs {
		s.nc.mu.Lock()
	}
}

// unlockSubs releases the member connections lockSubs acquired.
func unlockSubs(subs []*subBatch) {
	for _, s := range subs {
		s.nc.mu.Unlock()
	}
}

// dropSubs discards every involved member connection after a failed batch:
// some were flushed but never fully drained, and reusing one would hand a
// later batch the stale responses of this one. Callers hold the node locks.
func dropSubs(subs []*subBatch) {
	for _, s := range subs {
		s.nc.drop()
	}
}

// enqueueGets dials (if needed), pipelines the sub-batch's GETs and
// flushes, stamping the batch's trace context on each when traced.
func (s *subBatch) enqueueGets(dial DialFunc, keys []uint64, bt batchTrace) error {
	cl, err := s.nc.client(dial)
	if err != nil {
		return err
	}
	for _, i := range s.idx {
		if bt.traced {
			err = cl.EnqueueGetTraced(keys[i], bt.tc)
		} else {
			err = cl.EnqueueGet(keys[i])
		}
		if err != nil {
			return err
		}
	}
	return cl.Flush()
}

// enqueueSets dials (if needed), pipelines the sub-batch's SETs and
// flushes, stamping the batch's trace context on each when traced.
func (s *subBatch) enqueueSets(dial DialFunc, keys []uint64, value func(i int) []byte, bt batchTrace) error {
	cl, err := s.nc.client(dial)
	if err != nil {
		return err
	}
	for _, i := range s.idx {
		if bt.traced {
			err = cl.EnqueueSetFlagsTraced(keys[i], 0, bt.tc, value(i))
		} else {
			err = cl.EnqueueSet(keys[i], value(i))
		}
		if err != nil {
			return err
		}
	}
	return cl.Flush()
}
