package cluster

import (
	"fmt"
	"time"

	"repro/internal/wire"
)

// This file implements R-way replication on top of the routing client:
// quorum writes, fallback reads, and background read repair. The ring
// chooses each key's replica set (Ring.OwnersFor); the client makes the
// set behave like one logical copy that survives node loss.
//
// Invariants the implementation maintains:
//
//   - visit is called exactly once per key of a GetBatch, whatever mix of
//     misses, node failures and fallbacks resolved it.
//   - A read errors only when every owner of the key was unreachable; one
//     authoritative MISS resolves the key as a miss, one hit resolves it as
//     a hit.
//   - A write errors only when fewer than W owners acknowledged it.
//   - Every repair write carries wire.SetFlagRepair, so server-side and
//     router-side counters never mix maintenance churn into user traffic.

// repairQueueDepth bounds the background read-repair queue. When the queue
// is full new repairs are shed (and counted) rather than blocking the read
// path: a shed repair is retried naturally by the next fallback read of the
// same key.
const repairQueueDepth = 1024

// repairTask asks the repair worker to re-SET key=val on the owners that
// were seen missing or unreachable. ver is the version the value was
// observed at (a fallback hit) or stored under (a quorum write); the
// repair carries it as a conditional VERSIONED write, so however long the
// task queues, it can never overwrite a value a concurrent user SET stored
// after this one was observed.
type repairTask struct {
	key   uint64
	ver   uint64
	val   []byte
	addrs []string
	// tomb marks a delete repair: the write propagated is a TOMBSTONE SET
	// at ver (val is nil) rather than a value.
	tomb bool

	// bt carries the originating batch's trace context across the queue:
	// a repair caused by a sampled read or write is itself traced, so the
	// owner that receives it records a span under the same trace ID — the
	// last hop of the request's cluster-wide path.
	bt batchTrace
}

// ReplicationCounters is the router's replication telemetry; see
// Client.Replication.
type ReplicationCounters struct {
	// FallbackHits counts GETs served by a non-primary replica after
	// earlier owners missed or were unreachable — each one is a read that
	// an unreplicated cluster would have lost or missed.
	FallbackHits uint64
	// RepairsScheduled counts repair tasks queued by fallback hits and
	// partially-acknowledged writes.
	RepairsScheduled uint64
	// RepairsApplied counts repair SETs acknowledged by the stale owner.
	RepairsApplied uint64
	// RepairsDropped counts repairs shed because the queue was full.
	RepairsDropped uint64
	// RepairsStale counts synchronous maintenance copies (warm-up,
	// migration) a destination rejected as version-stale because it
	// already held a strictly newer value — lost-update races the version
	// check won. Async read repairs rejected at the server's queue are
	// visible in the servers' STATS StaleRepairs instead.
	RepairsStale uint64
}

// Replication returns the cluster-wide replication telemetry. All zeros on
// an unreplicated client.
func (c *Client) Replication() ReplicationCounters {
	return ReplicationCounters{
		FallbackHits:     c.fallbackHits.Load(),
		RepairsScheduled: c.repairsScheduled.Load(),
		RepairsApplied:   c.repairsApplied.Load(),
		RepairsDropped:   c.repairsDropped.Load(),
		RepairsStale:     c.staleRepairs.Load(),
	}
}

// RepairsDone reports completed background repair writes; it implements
// load.RepairReporter so the harness can price replication's maintenance
// traffic.
func (c *Client) RepairsDone() uint64 { return c.repairsApplied.Load() }

// StaleRepairs reports this router's maintenance copies rejected by their
// destination as version-stale; it implements load.StaleReporter.
func (c *Client) StaleRepairs() uint64 { return c.staleRepairs.Load() }

// scheduleRepair queues a background re-SET of key=val, observed at ver,
// at addrs. Caller holds c.mu (either side); val may alias a connection
// buffer and is copied here.
func (c *Client) scheduleRepair(key, ver uint64, val []byte, addrs []string, bt batchTrace) {
	if c.repairClosed || len(addrs) == 0 {
		return
	}
	t := repairTask{
		key:   key,
		ver:   ver,
		val:   append([]byte(nil), val...),
		addrs: append([]string(nil), addrs...),
		bt:    bt,
	}
	c.repairsScheduled.Add(1)
	select {
	case c.repairCh <- t:
	default:
		c.repairsDropped.Add(1)
	}
}

// repairLoop is the background worker: it drains the repair queue until
// Close, re-SETting stale replicas with the repair flag.
func (c *Client) repairLoop() {
	defer close(c.repairDone)
	for t := range c.repairCh {
		c.applyRepair(t)
	}
}

// applyRepair writes one queued repair to each of its target owners. A
// target that left the cluster is skipped; a target that cannot be
// reached gets its write parked as a hint on a live member instead
// (hinted handoff, wire v8) — the owner may be dead rather than slow, and
// the hint is replayed to it when it answers again, so a W<R write (or a
// fallback-detected stale replica) converges on rejoin without waiting
// for the next read of the key.
//
// c.mu is held only for the membership lookup, never across the network
// write: a repair dialing a slow or dead node must not block a pending
// membership change — and, through the RWMutex's writer queue, every other
// read and write on the client — for a connect timeout. The price is that
// a member removed concurrently with the lookup may receive one final
// repair write, which is harmless: it is a flagged cache SET to a node
// already out of the ring.
func (c *Client) applyRepair(t repairTask) {
	for _, addr := range t.addrs {
		c.mu.RLock()
		closed, nc := c.repairClosed, c.nodes[addr]
		c.mu.RUnlock()
		if closed {
			return
		}
		if nc == nil {
			continue
		}
		nc.mu.Lock()
		// Repair carries the ASYNC flag too: the server applies it through
		// its bounded maintenance queue (and may shed it under overload),
		// which is fine — a shed repair is retried by the next fallback
		// read of the key, exactly like one shed from this router's own
		// queue. It also carries the observed version (VERSIONED), checked
		// by the server when the queue drains: a repair that queued behind
		// a user SET of the same key is rejected as stale instead of
		// reinstating the older value, however deep either queue ran.
		err := nc.withRetry(c.dial, func(cl *wire.Client) error {
			flags := wire.SetFlagRepair | wire.SetFlagAsync
			var err error
			switch {
			case t.tomb:
				_, _, err = cl.SetTombstone(t.key, flags, t.ver)
			case t.bt.traced:
				_, _, err = cl.SetVersionedTraced(t.key, flags, t.ver, t.bt.tc, t.val)
			default:
				_, _, err = cl.SetVersioned(t.key, flags, t.ver, t.val)
			}
			return err
		})
		if err == nil {
			nc.repairs.Add(1)
			c.repairsApplied.Add(1)
		}
		nc.mu.Unlock()
		if err != nil {
			c.mu.RLock()
			if !c.repairClosed {
				c.hintHandoff(addr, t.key, t.tomb, t.ver, t.val)
			}
			c.mu.RUnlock()
		}
	}
}

// getBatchReplicated resolves a GET batch against R-way replica sets in up
// to R rounds. Round j sends each still-unresolved key to its j-th owner;
// hits resolve immediately (scheduling repair of the owners that came up
// empty), misses resolve at the last owner, and connection failures push
// the key to the next round.
//
// With leases on, round 0 (the primary) goes out as GETL: a grant is an
// authoritative primary miss plus the fill lease, so the key still falls
// back through the replicas — a fallback hit repairs the primary, which
// invalidates the lease server-side. A bare zero-token LEASE (someone
// else holds the fill) appends the key's index to waiters for the
// caller's resolution loop; waiters may be nil only when leases are off.
// Caller holds c.mu.RLock.
func (c *Client) getBatchReplicated(keys []uint64, bt batchTrace, waiters *[]int, visit func(i int, hit bool, value []byte)) error {
	rf := c.effReplicas()
	owners := make([][]string, len(keys))
	for i, k := range keys {
		owners[i] = c.ring.OwnersFor(k, rf)
		if len(owners[i]) == 0 {
			return fmt.Errorf("cluster: empty ring")
		}
	}

	pending := make([]int, len(keys))
	for i := range pending {
		pending[i] = i
	}
	// missedAt[i] lists the owners that answered an authoritative MISS for
	// key i. Only those are repair targets on a later fallback hit — an
	// owner that merely failed its connection may be dead, and aiming
	// repairs at a corpse would grind the repair worker on failed dials
	// while genuinely stale replicas queue behind it. (Its copy, if any,
	// is also not known stale.)
	missedAt := make([][]string, len(keys))
	var next []int
	var unresolved int
	var lastErr error

	for round := 0; round < rf && len(pending) > 0; round++ {
		subs := c.partitionRound(pending, owners, round)
		// Only the primary round leases: fallback rounds are reads of
		// replicas that may legitimately be empty, and granting fills
		// against them would mint one lease per replica per key.
		lease := c.leases && round == 0
		lockSubs(subs)
		for _, s := range subs {
			s.err = s.enqueueGetsLease(c.dial, keys, bt, lease)
		}
		next = next[:0]
		last := round == rf-1
		for _, s := range subs {
			if s.err == nil {
				s.err = c.readGetsReplicated(s, keys, bt, round, last, missedAt, &next, waiters, visit)
			}
			if s.err != nil && s.delivered == 0 {
				// Nothing of this sub was delivered; redial once and replay.
				s.nc.drop()
				s.nc.redials.Add(1)
				if err := s.enqueueGetsLease(c.dial, keys, bt, lease); err != nil {
					s.err = err
				} else {
					s.err = c.readGetsReplicated(s, keys, bt, round, last, missedAt, &next, waiters, visit)
				}
			}
			if s.err != nil {
				// The owner is unreachable (or its stream is corrupt): drop
				// the connection and fail the undelivered keys over to
				// their next owner — or resolve them, if this was the last.
				s.nc.drop()
				lastErr = s.err
				for _, i := range s.idx[s.delivered:] {
					switch {
					case !last:
						next = append(next, i)
					case missedAt[i] != nil:
						// Some owner authoritatively missed: the key is a
						// miss, not a lost read.
						visit(i, false, nil)
					default:
						unresolved++
					}
				}
			}
		}
		unlockSubs(subs)
		pending, next = next, pending
	}

	if unresolved > 0 {
		return fmt.Errorf("cluster: %d keys unreadable on all %d replicas: %w", unresolved, rf, lastErr)
	}
	return nil
}

// partitionRound splits the pending keys by their round-th owner, in
// deterministic (address-sorted) order for deadlock-free locking. Caller
// holds c.mu.
func (c *Client) partitionRound(pending []int, owners [][]string, round int) []*subBatch {
	byAddr := make(map[string]*subBatch)
	var subs []*subBatch
	for _, i := range pending {
		addr := owners[i][round]
		sub := byAddr[addr]
		if sub == nil {
			sub = &subBatch{nc: c.nodes[addr]}
			byAddr[addr] = sub
			subs = append(subs, sub)
		}
		sub.idx = append(sub.idx, i)
	}
	sortSubs(subs)
	return subs
}

// readGetsReplicated drains one sub-batch's GET (or, in a leased round 0,
// GETL) responses during a fallback round. Hits are delivered to visit,
// with repair scheduled for the owners that authoritatively missed in
// earlier rounds; misses either fall to the next round or, on the last
// owner, resolve as authoritative misses. LEASE responses are primary
// misses: a grant is recorded and the key falls back, a stale hint serves
// as a hit, and a bare zero-token response joins waiters.
func (c *Client) readGetsReplicated(s *subBatch, keys []uint64, bt batchTrace, round int, last bool,
	missedAt [][]string, next *[]int, waiters *[]int, visit func(i int, hit bool, value []byte)) error {
	cl := s.nc.cl
	for _, i := range s.idx[s.delivered:] {
		resp, err := cl.ReadResponse()
		if err != nil {
			return err
		}
		c.observeEpoch(resp.Epoch)
		switch resp.Status {
		case wire.StatusHit:
			s.nc.hits.Add(1)
			if round > 0 {
				c.fallbackHits.Add(1)
			}
			if len(missedAt[i]) > 0 {
				c.scheduleRepair(keys[i], resp.Version, resp.Value, missedAt[i], bt)
			}
			s.nc.gets.Add(1)
			s.delivered++
			val := resp.Value
			if c.near != nil {
				val, _ = c.near.reconcile(keys[i], resp.Version, resp.Value, time.Now())
			}
			if c.grantsN.Load() > 0 {
				// A fallback owner had the key after the primary granted a
				// fill: the repair scheduled above will invalidate the lease
				// server-side; drop the stray grant so a later user SET of
				// the key isn't misrouted as a discardable fill.
				c.finishGrant(keys[i])
			}
			visit(i, true, val)
		case wire.StatusMiss:
			s.nc.misses.Add(1)
			s.nc.gets.Add(1)
			s.delivered++
			missedAt[i] = append(missedAt[i], s.nc.addr)
			if last {
				visit(i, false, nil)
			} else {
				*next = append(*next, i)
			}
		case wire.StatusLease:
			s.nc.misses.Add(1)
			s.nc.gets.Add(1)
			s.delivered++
			switch {
			case resp.LeaseToken != 0:
				c.recordGrant(keys[i], resp.LeaseToken, resp.LeaseTTL)
				missedAt[i] = append(missedAt[i], s.nc.addr)
				if last {
					visit(i, false, nil)
				} else {
					*next = append(*next, i)
				}
			case resp.Stale:
				c.staleHints.Add(1)
				val := resp.Value
				if c.near != nil {
					val, _ = c.near.reconcile(keys[i], resp.Version, resp.Value, time.Now())
				}
				visit(i, true, val)
			default:
				*waiters = append(*waiters, i)
			}
		default:
			return fmt.Errorf("cluster: unexpected GET response %v from %s", resp.Status, s.nc.addr)
		}
	}
	return nil
}

// setBatchReplicated writes each key to all R of its owners and succeeds
// only if every key is acknowledged by at least W of them. Owners whose
// write failed while the key still met quorum are queued for background
// repair, so a transiently dead node converges instead of staying stale.
// Caller holds c.mu.RLock.
func (c *Client) setBatchReplicated(keys []uint64, bt batchTrace, value func(i int) []byte) error {
	rf := c.effReplicas()
	w := c.effQuorum(rf)
	owners := make([][]string, len(keys))
	byAddr := make(map[string]*subBatch)
	var subs []*subBatch
	for i, k := range keys {
		owners[i] = c.ring.OwnersFor(k, rf)
		if len(owners[i]) == 0 {
			return fmt.Errorf("cluster: empty ring")
		}
		for _, addr := range owners[i] {
			sub := byAddr[addr]
			if sub == nil {
				sub = &subBatch{nc: c.nodes[addr]}
				byAddr[addr] = sub
				subs = append(subs, sub)
			}
			sub.idx = append(sub.idx, i)
		}
	}
	sortSubs(subs)
	lockSubs(subs)
	defer unlockSubs(subs)

	for _, s := range subs {
		s.err = s.enqueueSets(c.dial, keys, value, bt)
	}
	acks := make([]int, len(keys))
	// vers[i] is the highest version any owner stored key i under; the
	// repair of a failed owner carries it, so the repair is conditional on
	// exactly the write it is completing.
	vers := make([]uint64, len(keys))
	var failed [][]string // lazily allocated: owner addrs whose write was lost, per key
	var lastErr error
	for _, s := range subs {
		if s.err == nil {
			s.err = c.readSetsAcked(s, acks, vers)
		}
		if s.err != nil && s.delivered == 0 {
			s.nc.drop()
			s.nc.redials.Add(1)
			if err := s.enqueueSets(c.dial, keys, value, bt); err != nil {
				s.err = err
			} else {
				s.err = c.readSetsAcked(s, acks, vers)
			}
		}
		if s.err != nil {
			s.nc.drop()
			lastErr = s.err
			if failed == nil {
				failed = make([][]string, len(keys))
			}
			for _, i := range s.idx[s.delivered:] {
				failed[i] = append(failed[i], s.nc.addr)
			}
		}
	}

	for i := range keys {
		if acks[i] < w {
			return fmt.Errorf("cluster: SET %d acknowledged by %d of %d owners, write quorum %d: %w",
				keys[i], acks[i], rf, w, lastErr)
		}
	}
	for i := range keys {
		if failed != nil && len(failed[i]) > 0 {
			c.scheduleRepair(keys[i], vers[i], value(i), failed[i], bt)
		}
		if c.near != nil {
			c.near.store(keys[i], vers[i], value(i), time.Now())
		}
	}
	return nil
}

// readSetsAcked drains one sub-batch's SET responses, crediting one ack per
// key as it goes, recording the highest version the write was stored under,
// and observing the topology epoch each response carries.
func (c *Client) readSetsAcked(s *subBatch, acks []int, vers []uint64) error {
	cl := s.nc.cl
	for _, i := range s.idx[s.delivered:] {
		resp, err := cl.ReadResponse()
		if err != nil {
			return err
		}
		c.observeEpoch(resp.Epoch)
		if resp.Status != wire.StatusOK {
			return fmt.Errorf("cluster: unexpected SET response %v from %s", resp.Status, s.nc.addr)
		}
		s.nc.sets.Add(1)
		s.delivered++
		acks[i]++
		if resp.Version > vers[i] {
			vers[i] = resp.Version
		}
	}
	return nil
}
