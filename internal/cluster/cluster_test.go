package cluster

import (
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/concurrent"
	"repro/internal/load"
	"repro/internal/server"
	"repro/internal/wire"
	"repro/internal/workload"
)

// startNode boots one cached node on loopback and returns its address.
func startNode(t *testing.T, k, alpha int, seed uint64) string {
	t.Helper()
	cache, err := concurrent.New(concurrent.Config{Capacity: k, Alpha: alpha, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(cache)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String()
}

func startCluster(t *testing.T, n, k, alpha int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = startNode(t, k, alpha, uint64(i+1))
	}
	return addrs
}

// TestClusterCountsMatch drives 3 nodes through the routing client via the
// load harness and asserts the client-observed hit/miss/set counts equal
// the sum of the per-node server counters exactly.
func TestClusterCountsMatch(t *testing.T) {
	const k = 4096
	addrs := startCluster(t, 3, k, 16)
	ctl, err := Dial(addrs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	keys := workload.Zipf{Universe: 2 * k, S: 0.9, Shuffle: true}.Generate(30_000, 7)
	res, err := load.Run(load.Config{
		Dial:        func() (load.Conn, error) { return Dial(addrs, Options{}) },
		Conns:       4,
		Keys:        keys,
		Pipeline:    16,
		ValueSize:   32,
		ReadThrough: true,
		Verify:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != len(keys) {
		t.Fatalf("ops = %d, want %d", res.Ops, len(keys))
	}
	if res.Corrupt != 0 {
		t.Fatalf("%d corrupt payloads", res.Corrupt)
	}

	stats, err := ctl.StatsAll(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 3 {
		t.Fatalf("STATS fan-out returned %d nodes, want 3", len(stats))
	}
	agg := AggregateStats(stats)
	if int(agg.Hits) != res.Hits || int(agg.Misses) != res.Misses {
		t.Errorf("server hits/misses = %d/%d, client observed %d/%d",
			agg.Hits, agg.Misses, res.Hits, res.Misses)
	}
	if int(agg.Capacity) != 3*k {
		t.Errorf("aggregate capacity = %d, want %d", agg.Capacity, 3*k)
	}
	// Every node should have absorbed a nontrivial share of the traffic.
	for addr, st := range stats {
		if st.Hits+st.Misses == 0 {
			t.Errorf("node %s saw no traffic", addr)
		}
	}
}

// TestRemoveNodeUnderLiveTraffic retires a member while GET traffic is
// flowing and checks the migration accounting: every key present before the
// removal is either still readable afterwards or accounted for by the
// drop count or an eviction counter.
func TestRemoveNodeUnderLiveTraffic(t *testing.T) {
	const k = 4096
	const nkeys = 3000
	addrs := startCluster(t, 3, k, 16)
	ctl, err := Dial(addrs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	keys := make([]uint64, nkeys)
	for i := range keys {
		keys[i] = uint64(i) + 1
	}
	if err := ctl.SetBatch(keys, func(i int) []byte { return load.Payload(keys[i], 32) }); err != nil {
		t.Fatal(err)
	}

	before, err := ctl.StatsAll(false)
	if err != nil {
		t.Fatal(err)
	}
	victim := addrs[0]
	residents := int(before[victim].Len)
	if residents == 0 {
		t.Fatalf("victim node %s holds no keys; ring is degenerate", victim)
	}

	// Live GET-only traffic through the same router while the member
	// leaves. GETs never evict, so they do not perturb the accounting.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	trafficErr := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			batch := make([]uint64, 16)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				for j := range batch {
					batch[j] = keys[(w*31+i*16+j)%nkeys]
				}
				if err := ctl.GetBatch(batch, func(int, bool, []byte) {}); err != nil {
					trafficErr <- err
					return
				}
			}
		}(w)
	}

	moved, dropped, err := ctl.RemoveNode(victim)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-trafficErr:
		t.Fatalf("live traffic failed during RemoveNode: %v", err)
	default:
	}
	if got := len(ctl.Nodes()); got != 2 {
		t.Fatalf("cluster has %d members after RemoveNode, want 2", got)
	}
	if moved+dropped < residents {
		t.Errorf("migration handled %d+%d keys, victim held %d", moved, dropped, residents)
	}

	present := 0
	if err := ctl.GetBatch(keys, func(_ int, hit bool, _ []byte) {
		if hit {
			present++
		}
	}); err != nil {
		t.Fatal(err)
	}

	after, err := ctl.StatsAll(false)
	if err != nil {
		t.Fatal(err)
	}
	// Keys can vanish only through the migration's drop count or an
	// eviction some counter accounts for: survivor evictions during the
	// re-SETs, or victim evictions before the snapshot (covered by the
	// before-stats). Victim evictions between snapshot and removal are
	// impossible under GET-only traffic.
	accounted := dropped
	for addr, st := range after {
		accounted += int(st.Evictions - before[addr].Evictions)
	}
	absent := nkeys - present
	if absent > accounted {
		t.Errorf("%d keys lost but only %d accounted for (moved=%d dropped=%d)",
			absent, accounted, moved, dropped)
	}
}

// TestRouterReconnect restarts a member on the same address and checks the
// router transparently redials it.
func TestRouterReconnect(t *testing.T) {
	cache, err := concurrent.New(concurrent.Config{Capacity: 256, Alpha: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(cache)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	go srv.Serve(ln)

	ctl, err := Dial([]string{addr, startNode(t, 256, 4, 2)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	if err := ctl.Set(1, []byte("before")); err != nil {
		t.Fatal(err)
	}

	// Restart the node on the same port; its cache starts empty.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	cache2, err := concurrent.New(concurrent.Config{Capacity: 256, Alpha: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv2 := server.New(cache2)
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebinding %s: %v", addr, err)
	}
	go srv2.Serve(ln2)
	t.Cleanup(func() { srv2.Close() })

	// Every key routes somewhere; operations against the restarted member
	// must succeed via the redial path rather than surfacing a dead
	// connection.
	for k := uint64(0); k < 64; k++ {
		if err := ctl.Set(k, []byte("after")); err != nil {
			t.Fatalf("Set(%d) after restart: %v", k, err)
		}
		if _, _, err := ctl.Get(k); err != nil {
			t.Fatalf("Get(%d) after restart: %v", k, err)
		}
	}
	redials := uint64(0)
	for _, nc := range ctl.Counters() {
		redials += nc.Redials
	}
	if redials == 0 {
		t.Error("router reported no redials after a member restart")
	}
}

// stallConn freezes reads that occur inside a wall-clock window, emulating
// a server stall from the client's point of view.
type stallConn struct {
	net.Conn
	from, until time.Time
}

func (s stallConn) Read(p []byte) (int, error) {
	if now := time.Now(); now.After(s.from) && now.Before(s.until) {
		time.Sleep(time.Until(s.until))
	}
	return s.Conn.Read(p)
}

// TestOpenLoopCoordinatedOmissionSafety injects a 300ms stall into every
// cluster connection and compares closed-loop and open-loop percentiles.
// The closed loop stops offering load while stalled, records one slow
// batch, and reports a low p99 — the coordinated-omission artifact. The
// open loop keeps its arrival schedule, charges every batch intended
// during the stall with the delay it actually suffered, and reports the
// stall in its p99.
func TestOpenLoopCoordinatedOmissionSafety(t *testing.T) {
	const k = 4096
	addrs := startCluster(t, 3, k, 16)

	keys := workload.Uniform{Universe: k}.Generate(6000, 7)
	const stall = 300 * time.Millisecond

	run := func(openLoop bool) load.Result {
		t.Helper()
		from := time.Now().Add(30 * time.Millisecond)
		until := from.Add(stall)
		dial := func(addr string) (*wire.Client, error) {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			return wire.NewClient(stallConn{Conn: conn, from: from, until: until})
		}
		cfg := load.Config{
			Dial:        func() (load.Conn, error) { return Dial(addrs, Options{Dial: dial}) },
			Conns:       1,
			Keys:        keys,
			Pipeline:    8,
			ValueSize:   32,
			ReadThrough: true,
		}
		if openLoop {
			cfg.OpenLoop = true
			cfg.Rate = 10_000
		}
		res, err := load.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	closed := run(false)
	open := run(true)

	if closed.Latency.P99 >= stall/2 {
		t.Errorf("closed-loop p99 = %v; expected the stall to be hidden (< %v)",
			closed.Latency.P99, stall/2)
	}
	if open.Latency.P99 < stall/3 {
		t.Errorf("open-loop p99 = %v; expected the %v stall to surface (≥ %v)",
			open.Latency.P99, stall, stall/3)
	}
	if open.Latency.P99 < 2*closed.Latency.P99 {
		t.Errorf("open-loop p99 %v does not diverge from closed-loop p99 %v under a stall",
			open.Latency.P99, closed.Latency.P99)
	}
}
