package cluster

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/concurrent"
	"repro/internal/server"
	"repro/internal/wire"
)

// TestNearCacheInvalidatedByAntiEntropyTombstone is the satellite
// regression for the stale-near-cache window: router A near-caches a key,
// router B deletes it behind A's back, and until something tells A about
// the delete its near-cache keeps serving the value. The anti-entropy
// sweep is that something — a winning tombstone invalidates the local
// edge, version-checked so a genuinely newer value is left alone.
func TestNearCacheInvalidatedByAntiEntropyTombstone(t *testing.T) {
	addrs := startCluster(t, 3, 4096, 16)
	// TTL far beyond the test: the stale window must not close by expiry.
	a, err := Dial(addrs, Options{Replicas: 2, NearCache: NearCacheOptions{Slots: 64, TTL: time.Hour}})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Dial(addrs, Options{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	const key = uint64(777)
	if err := a.Set(key, []byte("stale-soon")); err != nil {
		t.Fatal(err)
	}
	if _, hit, err := a.Get(key); err != nil || !hit {
		t.Fatalf("warm GET: hit=%v err=%v", hit, err)
	}

	if present, err := b.Del(key); err != nil || !present {
		t.Fatalf("remote DEL: present=%v err=%v", present, err)
	}

	// The hazard, pinned: A heard nothing about B's delete, so its
	// near-cache still serves the dead value. (This is the documented
	// near-cache staleness window, not a bug — the point of the test is
	// that the sweep closes it.)
	if v, hit, err := a.Get(key); err != nil || !hit || string(v) != "stale-soon" {
		t.Fatalf("pre-sweep GET = %q hit=%v err=%v; want the stale near-cache serve", v, hit, err)
	}

	if _, err := a.AntiEntropySweep(); err != nil {
		t.Fatal(err)
	}
	if v, hit, err := a.Get(key); err != nil || hit {
		t.Fatalf("post-sweep GET = %q hit=%v err=%v; want miss — the tombstone must purge the near-cache", v, hit, err)
	}
}

// TestDelRacesWarmup runs DELs through the router while AddNode warms a
// newcomer up with the same key range, then sweeps. However the delete
// interleaves with the warm-up stream — tombstone copied by warm-up,
// tombstone landing after the chunk, old value in flight while the owner
// set changes — the delete must win: every deleted key reads as a miss,
// and any record the newcomer still holds for one is a tombstone.
// Run under -race this also exercises the locking between the membership
// change and concurrent client traffic.
func TestDelRacesWarmup(t *testing.T) {
	addrs := startCluster(t, 2, 4096, 16)
	newcomer := startNode(t, 4096, 16, 99)
	c, err := Dial(addrs, Options{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const total, doomed = 200, 60
	for k := uint64(1); k <= total; k++ {
		if err := c.Set(k, []byte(fmt.Sprintf("v%d", k))); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	wg.Add(1)
	errCh := make(chan error, 1)
	go func() {
		defer wg.Done()
		for k := uint64(1); k <= doomed; k++ {
			if _, err := c.Del(k); err != nil {
				errCh <- err
				return
			}
		}
	}()
	if _, err := c.AddNode(newcomer); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	// The sweep reconciles whatever the interleaving left behind (e.g. a
	// DEL that hit the old owners after the warm-up stream was snapshot).
	if _, err := c.AntiEntropySweep(); err != nil {
		t.Fatal(err)
	}

	for k := uint64(1); k <= total; k++ {
		v, hit, err := c.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		if k <= doomed {
			if hit {
				t.Fatalf("deleted key %d resurrected as %q", k, v)
			}
		} else if !hit || string(v) != fmt.Sprintf("v%d", k) {
			t.Fatalf("surviving key %d = %q hit=%v", k, v, hit)
		}
	}

	// Whatever the newcomer holds for a deleted key must be the delete,
	// never the value it raced against.
	nc, err := wire.Dial(newcomer)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	recs, err := nc.Keys()
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if rec.Key <= doomed && !rec.Tombstone {
			t.Errorf("newcomer holds a live copy of deleted key %d", rec.Key)
		}
	}
}

// TestCrashWriteRejoinHintReplay is the churn e2e: a member crashes, the
// cluster keeps taking writes and deletes at W=1, the member rejoins
// empty, and hinted handoff replays what it missed — zero lost writes,
// zero resurrected deletes, no operator action.
func TestCrashWriteRejoinHintReplay(t *testing.T) {
	// Nodes built inline: the victim must be restartable on its own
	// address, and every survivor needs a fast hint replay cadence
	// (configured before the first hint arrives).
	mk := func(addr string, seed uint64) (*server.Server, string) {
		cache, err := concurrent.New(concurrent.Config{Capacity: 4096, Alpha: 16, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		srv := server.New(cache)
		srv.SetHintReplayInterval(20 * time.Millisecond)
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		t.Cleanup(func() { srv.Close() })
		return srv, ln.Addr().String()
	}
	addrs := make([]string, 3)
	srvs := make([]*server.Server, 3)
	for i := range addrs {
		srvs[i], addrs[i] = mk("127.0.0.1:0", uint64(i+1))
	}

	c, err := Dial(addrs, Options{Replicas: 2, WriteQuorum: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const total, doomed = 100, 50 // keys 1..doomed are deleted, the rest updated
	for k := uint64(1); k <= total; k++ {
		if err := c.Set(k, []byte("v1")); err != nil {
			t.Fatal(err)
		}
	}

	// Crash node 1 and keep operating: W=1 of R=2 keeps every key
	// writable through the surviving owner.
	victim := addrs[1]
	srvs[1].Close()
	for k := uint64(1); k <= doomed; k++ {
		if _, err := c.Del(k); err != nil {
			t.Fatalf("DEL %d with a member down: %v", k, err)
		}
	}
	for k := uint64(doomed + 1); k <= total; k++ {
		if err := c.Set(k, []byte("v2")); err != nil {
			t.Fatalf("SET %d with a member down: %v", k, err)
		}
	}
	// Deletes hint synchronously on the Del path; updates hint from the
	// background repair worker once its dial to the victim fails. Wait for
	// the handoff tally to cover the victim's share of both.
	victimKeys := map[uint64]bool{}
	c.mu.RLock()
	for k := uint64(1); k <= total; k++ {
		for _, o := range c.ring.OwnersFor(k, 2) {
			if o == victim {
				victimKeys[k] = true
			}
		}
	}
	c.mu.RUnlock()
	if len(victimKeys) == 0 {
		t.Fatal("victim owns no keys; test vacuous")
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		h := c.Handoff()
		if int(h.Sent) >= len(victimKeys) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("handoff sent %d of %d victim-owned writes within deadline", h.Sent, len(victimKeys))
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Rejoin: same address, empty cache — a genuine crash-and-restart.
	_, rebound := mk(victim, 42)
	if rebound != victim {
		t.Fatalf("restart bound %s, want %s", rebound, victim)
	}

	// The survivors' replayers deliver the parked writes; the victim
	// converges with zero operator action. Poll its own store directly.
	vc, err := wire.Dial(victim)
	if err != nil {
		t.Fatal(err)
	}
	defer vc.Close()
	deadline = time.Now().Add(10 * time.Second)
	for {
		got := map[uint64]wire.KeyRec{}
		recs, err := vc.Keys()
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			got[r.Key] = r
		}
		converged := true
		for k := range victimKeys {
			r, ok := got[k]
			switch {
			case k <= doomed:
				if !ok || !r.Tombstone {
					converged = false // the delete has not reached it yet
				}
			default:
				if !ok || r.Tombstone {
					converged = false // the v2 update has not reached it yet
				}
			}
		}
		if converged {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("victim did not converge from hint replay within deadline")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Zero resurrections, zero lost writes — through the router, which may
	// route to either owner.
	for k := uint64(1); k <= total; k++ {
		v, hit, err := c.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		if k <= doomed {
			if hit {
				t.Fatalf("deleted key %d resurrected as %q after rejoin", k, v)
			}
		} else if !hit || string(v) != "v2" {
			t.Fatalf("updated key %d = %q hit=%v after rejoin; want v2", k, v, hit)
		}
	}

	// The replay is visible in the member STATS ledger.
	stats, err := c.StatsAll(false)
	if err != nil {
		t.Fatal(err)
	}
	var replayed uint64
	for _, st := range stats {
		replayed += st.HintsReplayed
	}
	if replayed == 0 {
		t.Error("no member reports a replayed hint; convergence came from somewhere else")
	}
}

// TestAntiEntropySweepConvergesBothDirections diverges two replicas by
// hand — a value one owner never saw, a delete the other never saw — and
// asserts one sweep repairs both directions: the value is copied to the
// replica that missed it, and the tombstone overwrites the live copy it
// outranks.
func TestAntiEntropySweepConvergesBothDirections(t *testing.T) {
	addrs := startCluster(t, 2, 4096, 16)
	c, err := Dial(addrs, Options{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const missing, deleted = uint64(10), uint64(20)
	// Divergence 1: a value only node 0 holds (written behind the
	// router's back, as a failed quorum write would leave things).
	d0, err := wire.Dial(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer d0.Close()
	if _, err := d0.Set(missing, []byte("only-here")); err != nil {
		t.Fatal(err)
	}
	// Divergence 2: both replicas hold the value, then only node 1
	// learns of the delete.
	if err := c.Set(deleted, []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	d1, err := wire.Dial(addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	defer d1.Close()
	if _, _, err := d1.Del(deleted); err != nil {
		t.Fatal(err)
	}

	repaired, err := c.AntiEntropySweep()
	if err != nil {
		t.Fatal(err)
	}
	if repaired < 2 {
		t.Errorf("sweep repaired %d records, want ≥ 2 (one per direction)", repaired)
	}

	// Direction A: node 1 now holds the value it missed.
	if v, hit, err := d1.Get(missing); err != nil || !hit || string(v) != "only-here" {
		t.Fatalf("node1 GET %d = %q hit=%v err=%v; want the swept-in value", missing, v, hit, err)
	}
	// Direction B: node 0's live copy lost to the tombstone.
	if v, hit, err := d0.Get(deleted); err != nil || hit {
		t.Fatalf("node0 GET %d = %q hit=%v err=%v; want miss — tombstone outranks the live copy", deleted, v, hit, err)
	}
	recs, err := d0.Keys()
	if err != nil {
		t.Fatal(err)
	}
	foundTomb := false
	for _, r := range recs {
		if r.Key == deleted && r.Tombstone {
			foundTomb = true
		}
	}
	if !foundTomb {
		t.Error("node0 holds no tombstone for the deleted key after the sweep")
	}

	ae := c.AntiEntropy()
	if ae.Sweeps == 0 || ae.Repairs == 0 {
		t.Errorf("anti-entropy counters = %+v; want a recorded sweep with repairs", ae)
	}

	// A second sweep finds nothing to do: the state is a fixed point.
	if again, err := c.AntiEntropySweep(); err != nil || again != 0 {
		t.Errorf("second sweep repaired %d, err %v; want converged 0", again, err)
	}
}
