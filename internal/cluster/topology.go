package cluster

import (
	"fmt"

	"repro/internal/wire"
)

// This file is the topology layer of the router: the epoch-versioned
// member list and everything that changes or converges it.
//
// The cluster's membership is a wire.Topology — a member list stamped with
// a monotonically increasing epoch — and every member server stores the
// latest one pushed at it. Whoever changes membership (AddNode,
// RemoveNode, a joining cached via Join) bumps the epoch and pushes the
// new topology to every member; every response any server sends carries
// its current epoch, so a router detects staleness by comparing response
// epochs against its own and refreshes via MEMBERS only when behind. The
// net effect is the cluster-level analogue of the paper's incremental
// rehash discipline applied to membership itself: changes propagate
// incrementally, piggybacked on normal traffic, with no operator fan-out
// and no polling.
//
// Conflict resolution is last-writer-wins on the epoch: two routers
// changing membership concurrently can race, the higher epoch prevails,
// and the loser's view heals at its next refresh. This is a cache, not a
// consensus system — a transiently wrong view costs extra misses and
// repairs, never lost acknowledged data beyond what the R/W quorum
// already permits.

// warmupChunk bounds how many keys a warm-up copies per pipelined round
// trip, mirroring migrateChunk.
const warmupChunk = 256

// chunkScratch is the reusable buffer set for readChunkValues: the
// per-chunk vals/vers/hits slices plus a byte arena the copied values pack
// into. One scratch serves a whole warm-up or migration loop, so after the
// first few chunks grow it to the working set's chunk footprint the copy
// loop stops allocating per chunk. Everything readChunkValues returns
// aliases the scratch and is overwritten by the next call on it.
type chunkScratch struct {
	vals [][]byte
	vers []uint64
	hits []int
	offs [][2]int // per-index [start,end) into data, fixed up after the batch
	data []byte
}

// reset sizes the scratch for an n-key chunk, clearing the previous
// chunk's state.
func (sc *chunkScratch) reset(n int) {
	if cap(sc.vals) < n {
		sc.vals = make([][]byte, n)
		sc.vers = make([]uint64, n)
		sc.offs = make([][2]int, n)
	}
	sc.vals = sc.vals[:n]
	sc.vers = sc.vers[:n]
	sc.offs = sc.offs[:n]
	clear(sc.vals)
	clear(sc.vers)
	sc.hits = sc.hits[:0]
	sc.data = sc.data[:0]
}

// readChunkValues reads one chunk of keys from cl in a pipelined batch,
// returning copies of the surviving values, the versions they were
// observed at, and the chunk indices that hit. Both maintenance copy paths
// — warm-up and the migration drain — read through it, so the value-copy
// rule (connection buffers alias) and the survivors-versus-vanished split
// live in one place. The observed versions make the subsequent re-SETs
// conditional (wire.SetFlagVersioned): a copy can never overwrite a value
// newer than the one it actually read. The returned slices live in sc and
// are valid only until the next call on the same scratch; the copies pack
// into sc's arena, recorded as offsets during the batch and sliced out
// afterwards because the arena may move while it grows.
func readChunkValues(cl *wire.Client, chunk []uint64, sc *chunkScratch) (vals [][]byte, vers []uint64, hits []int, err error) {
	sc.reset(len(chunk))
	err = cl.GetBatchVersions(chunk, func(i int, h bool, ver uint64, v []byte) {
		if h {
			start := len(sc.data)
			sc.data = append(sc.data, v...)
			sc.offs[i] = [2]int{start, len(sc.data)}
			sc.vers[i] = ver
			sc.hits = append(sc.hits, i)
		}
	})
	for _, i := range sc.hits {
		o := sc.offs[i]
		sc.vals[i] = sc.data[o[0]:o[1]]
	}
	return sc.vals, sc.vers, sc.hits, err
}

// observeEpoch records a topology epoch seen in a response. An epoch above
// the router's own marks the view stale; the next operation refreshes it.
func (c *Client) observeEpoch(e uint64) {
	if e <= c.curEpoch.Load() {
		return
	}
	for {
		cur := c.staleEpoch.Load()
		if e <= cur || c.staleEpoch.CompareAndSwap(cur, e) {
			return
		}
	}
}

// maybeRefresh refreshes the topology if a newer epoch has been observed.
// It is called at the top of every routing operation, so staleness
// detected by one batch is healed before the next.
func (c *Client) maybeRefresh() {
	if c.staleEpoch.Load() > c.curEpoch.Load() {
		c.refreshTopology()
	}
}

// refreshTopology fetches MEMBERS from the current members, adopts the
// highest-epoch view found if it is newer than the held one, and pushes
// the adopted view back out so members that missed the original push
// converge too.
//
// The MEMBERS fetches run with c.mu *released*: holding the exclusive lock
// across network I/O would park every routed batch behind each member's
// dial — a single dead member used to stall all traffic for a connect
// timeout per refresh attempt. Instead the member snapshot is taken under
// a read lock, the fetch fan-out runs unlocked (serialized per member by
// its own connection lock, single-flighted across callers by c.refreshing
// so a stale epoch doesn't trigger one fan-out per concurrent batch), and
// the lock is re-taken only to adopt and push the winning view. Traffic
// keeps flowing on the stale view in the meantime, which is exactly the
// documented cache-not-consensus tradeoff. A member removed concurrently
// with the fetch may be asked for MEMBERS one last time; harmless, it is a
// read.
func (c *Client) refreshTopology() {
	if !c.refreshing.CompareAndSwap(false, true) {
		return // a refresh is already in flight; route on the current view
	}
	defer c.refreshing.Store(false)

	c.mu.RLock()
	if c.staleEpoch.Load() <= c.epoch {
		c.mu.RUnlock()
		return // another caller refreshed first
	}
	addrs := c.ring.Nodes()
	conns := make([]*nodeConn, 0, len(addrs))
	for _, addr := range addrs {
		conns = append(conns, c.nodes[addr])
	}
	c.mu.RUnlock()

	var best wire.Topology
	unreachable := make(map[string]bool)
	for _, nc := range conns {
		nc.mu.Lock()
		var t wire.Topology
		err := nc.withRetry(c.dial, func(cl *wire.Client) error {
			var err error
			t, err = cl.Members()
			return err
		})
		nc.mu.Unlock()
		if err != nil {
			unreachable[nc.addr] = true
			continue
		}
		if t.Epoch > best.Epoch && len(t.Members) > 0 {
			best = t
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	c.staleEpoch.Store(0)
	if best.Epoch > c.epoch && len(best.Members) > 0 {
		c.adoptLocked(best)
		c.refreshes.Add(1)
		// The convergence push does run under c.mu (it resolves races by
		// mutating the view), but it skips the members the fetch just
		// found unreachable — they converge later, per the best-effort
		// contract — so a dead member costs the locked section no dial at
		// all, and a member dying in the fetch-to-push window costs at
		// most one timeout-bounded dial.
		c.pushTopologyLocked(unreachable)
	}
}

// adoptLocked installs t as the router's view: the ring is rebuilt, node
// connections of retained members are kept, removed members are dropped,
// and new members get lazily dialed connections. Caller holds c.mu.
func (c *Client) adoptLocked(t wire.Topology) {
	old := c.nodes
	c.nodes = make(map[string]*nodeConn, len(t.Members))
	for _, m := range t.Members {
		if nc := old[m]; nc != nil {
			c.nodes[m] = nc
			delete(old, m)
		} else {
			c.nodes[m] = &nodeConn{addr: m}
		}
	}
	for _, nc := range old {
		nc.mu.Lock()
		nc.drop()
		nc.mu.Unlock()
	}
	c.ring = NewRing(c.vnodes, t.Members...)
	c.epoch = t.Epoch
	c.curEpoch.Store(t.Epoch)
}

// pushTopologyLocked offers the router's current view to every member,
// best-effort: an unreachable member stays stale until the next push or a
// peer's refresh, and its staleness is visible in the epoch it stamps on
// responses. The push responses close the race loop: a member reporting a
// strictly newer view means this router already lost (the newer view is
// adopted — last-writer-wins, and this push's change may be partially
// undone), while a member holding a *different* view at the *same* epoch
// is a tie the epoch piggyback could never surface, so the router
// escalates — bumps its epoch above the tie and re-pushes, making its
// view strictly newest. Ties under continuous simultaneous membership
// changes could in principle re-escalate, so attempts are bounded; any
// residue converges at the next change or refresh. Members listed in skip
// (addresses the caller just proved unreachable) are not pushed at, so a
// refresh triggered by a dead member does not pay that member's dial
// timeout inside this critical section. Caller holds c.mu.
func (c *Client) pushTopologyLocked(skip map[string]bool) {
	for attempt := 0; attempt < 4; attempt++ {
		t := wire.Topology{Epoch: c.epoch, Members: c.ring.Nodes()}
		var newer wire.Topology
		tied := false
		for _, addr := range t.Members {
			if skip[addr] {
				continue
			}
			nc := c.nodes[addr]
			nc.mu.Lock()
			var held wire.Topology
			err := nc.withRetry(c.dial, func(cl *wire.Client) error {
				var err error
				held, err = cl.PushTopology(t)
				return err
			})
			nc.mu.Unlock()
			if err != nil || len(held.Members) == 0 {
				continue
			}
			switch {
			case held.Epoch > newer.Epoch && held.Epoch > t.Epoch:
				newer = held
			case held.Epoch == t.Epoch && !sameMembers(held.Members, t.Members):
				tied = true
			}
		}
		if newer.Epoch > c.epoch {
			c.adoptLocked(newer)
			return
		}
		if !tied {
			return
		}
		c.epoch++
		c.curEpoch.Store(c.epoch)
	}
}

// Epoch returns the topology epoch of the router's current view.
func (c *Client) Epoch() uint64 { return c.curEpoch.Load() }

// TopologyRefreshes reports how many times the router refreshed its view
// after piggybacked staleness detection; it implements
// load.TopologyReporter.
func (c *Client) TopologyRefreshes() uint64 { return c.refreshes.Load() }

// resolveSeeds turns a bootstrap seed list into a member list and starting
// epoch: each seed's MEMBERS view is probed over a short-lived connection,
// and the member list comes from the highest-epoch view any seed reports —
// so one live address of an established cluster is enough to route to all
// of it. When every reachable seed is fresh (knows no topology), the
// reachable seeds themselves become the founding members and push tells
// Dial to install that view; a seed whose dial failed is never enrolled —
// it would own a share of the ring while provably unreachable.
func resolveSeeds(addrs []string, dial DialFunc) (members []string, epoch uint64, push bool, err error) {
	reachable := make(map[string]bool, len(addrs))
	var maxEpoch uint64
	var best wire.Topology
	for _, a := range addrs {
		cl, err := dial(a)
		if err != nil {
			continue // any one live seed suffices
		}
		t, merr := cl.Members()
		cl.Close()
		if merr != nil {
			continue
		}
		reachable[a] = true
		if t.Epoch > maxEpoch {
			maxEpoch = t.Epoch
		}
		if len(t.Members) > 0 && (len(best.Members) == 0 || t.Epoch > best.Epoch) {
			best = t
		}
	}
	if len(reachable) == 0 {
		return nil, 0, false, fmt.Errorf("cluster: no seed of %v reachable", addrs)
	}
	if len(best.Members) > 0 {
		return best.Members, best.Epoch, false, nil
	}
	for _, a := range addrs {
		if reachable[a] {
			members = append(members, a)
		}
	}
	return members, maxEpoch + 1, true, nil
}

// explicitEpoch settles the starting epoch for a Dial that asserts its
// member list outright. Three cases:
//
//   - Every member already reports exactly this view at a common epoch:
//     adopt that epoch, nothing to push.
//   - Some member holds a non-empty view that *differs* from the asserted
//     list: the cluster already has a topology of its own, and a client
//     that merely connected must not rewrite it — pointing a router (or a
//     monitoring run) at a subset of an established cluster would
//     otherwise evict the unlisted members cluster-wide. The router runs
//     on its asserted list locally, at the members' epoch, and pushes
//     nothing; only explicit AddNode/RemoveNode mutate shared topology.
//   - Otherwise (members are fresh, or a previous founding push reached
//     only some of them): advance past every reported epoch and push, so
//     the asserted view is founded or finishes propagating.
func explicitEpoch(views map[string]wire.Topology, members []string) (epoch uint64, push bool) {
	var maxEpoch uint64
	conflict := false
	for _, t := range views {
		if t.Epoch > maxEpoch {
			maxEpoch = t.Epoch
		}
		if len(t.Members) > 0 && !sameMembers(t.Members, members) {
			conflict = true
		}
	}
	agree := len(views) == len(members)
	for _, a := range members {
		t, ok := views[a]
		if !ok || t.Epoch != maxEpoch || !sameMembers(t.Members, members) {
			agree = false
			break
		}
	}
	if agree || conflict {
		return maxEpoch, false
	}
	return maxEpoch + 1, true
}

// sameMembers reports whether a and b name the same address set.
func sameMembers(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[string]bool, len(a))
	for _, m := range a {
		set[m] = true
	}
	for _, m := range b {
		if !set[m] {
			return false
		}
	}
	return true
}

// Join makes self a member of the cluster seed belongs to, without a
// router: it fetches the seed's topology, adds self under a bumped epoch,
// and pushes the result to every member — including self and the seed, so
// both a freshly booted cached and its peers converge on the same view.
// cmd/cached runs it for -join; starting N nodes against one seed this way
// yields a cluster every client can bootstrap from any single address of.
//
// A push to a member other than seed or self is best-effort: a dead or
// unreachable peer must not abort the join, only be skipped — the
// addresses whose push failed are returned in skipped so the caller can
// report them (they converge later through a router's refresh-and-re-push
// or their own restart). Pushing to seed or self failing is an error:
// without the seed the join provably didn't take, and without self the
// booting node would not know its own cluster. Dials are bounded by the
// DialFunc's timeout (wire.Dial's default when dial is nil), so a
// black-holed address costs seconds, not a kernel connect cycle.
//
// Concurrent joins race on the epoch; the push responses detect a loss —
// a member holding a view at our epoch or above that does *not* contain
// self means our push was rejected — and the join retries on top of the
// winner's view (bounded attempts), so the no-response-epoch-difference
// tie that piggybacking can never surface still converges with self
// admitted.
func Join(seed, self string, dial DialFunc) (t wire.Topology, skipped []string, err error) {
	if dial == nil {
		dial = wire.Dial
	}
	if seed == self {
		return wire.Topology{}, nil, fmt.Errorf("cluster: cannot join through myself (%s)", self)
	}
	cl, err := dial(seed)
	if err != nil {
		return wire.Topology{}, nil, fmt.Errorf("cluster: join seed %s: %w", seed, err)
	}
	base, err := cl.Members()
	cl.Close()
	if err != nil {
		return wire.Topology{}, nil, fmt.Errorf("cluster: MEMBERS %s: %w", seed, err)
	}
	for attempt := 0; attempt < 3; attempt++ {
		t := wire.Topology{Epoch: base.Epoch, Members: append([]string(nil), base.Members...)}
		if len(t.Members) == 0 {
			// The seed predates any topology: it and we are the founding
			// members.
			t.Members = []string{seed}
		}
		if !contains(t.Members, self) {
			t.Members = append(t.Members, self)
			t.Epoch++
		}
		lost := false
		skipped = skipped[:0]
		var winner wire.Topology
		for _, m := range t.Members {
			var held wire.Topology
			mcl, err := dial(m)
			if err == nil {
				held, err = mcl.PushTopology(t)
				mcl.Close()
			}
			if err != nil {
				if m == seed || m == self {
					return wire.Topology{}, nil, fmt.Errorf("cluster: pushing topology to %s: %w", m, err)
				}
				skipped = append(skipped, m)
				continue
			}
			if held.Epoch >= t.Epoch && !contains(held.Members, self) {
				lost = true
				if held.Epoch >= winner.Epoch {
					winner = held
				}
			}
		}
		if !lost {
			return t, skipped, nil
		}
		base = winner
	}
	return wire.Topology{}, nil, fmt.Errorf("cluster: join of %s kept losing topology races; retry", self)
}

// WarmupStats summarizes one proactive warm-up run.
type WarmupStats struct {
	// Streamed counts resident keys enumerated across all source members.
	Streamed int
	// Copied counts values repair-SET into the newcomer.
	Copied int
	// Vanished counts wanted keys that were evicted between the KEYS
	// snapshot and the read — accounted-for losses, exactly like
	// migration's dropped count.
	Vanished int
	// Stale counts copies the newcomer rejected as version-stale: it
	// already held a strictly newer value for the key (a user SET raced
	// the warm-up and won, as it must). Like Vanished these are accounted,
	// not lost — the data is on the newcomer, fresher than the copy.
	Stale int
	// Tombstones counts deletion records propagated to the newcomer —
	// copied straight from the KEYS stream (no value read), so the
	// newcomer learns every delete before it could accept an older copy.
	Tombstones int
	// Failed counts source members that could not be fully streamed or
	// copied; their share of the newcomer's keys refills lazily instead.
	Failed int
	// Err is the first error encountered (nil when Failed is 0).
	Err error
}

// Warmup is the handle AddNode returns for its background warm-up; Wait
// blocks until the newcomer's share has been streamed in (or the attempt
// gave up) and reports what happened.
type Warmup struct {
	done  chan struct{}
	stats WarmupStats
}

// Wait blocks until the warm-up completes and returns its stats.
func (w *Warmup) Wait() WarmupStats {
	<-w.done
	return w.stats
}

// warmupDial opens a dedicated warm-up connection and registers it so
// Close can interrupt the stream it carries; warmupRelease is its paired
// teardown.
func (c *Client) warmupDial(addr string) (*wire.Client, error) {
	cl, err := c.dial(addr)
	if err != nil {
		return nil, err
	}
	c.warmupMu.Lock()
	if c.closed.Load() {
		c.warmupMu.Unlock()
		cl.Close()
		return nil, fmt.Errorf("cluster: client closed")
	}
	c.warmupConns[cl] = struct{}{}
	c.warmupMu.Unlock()
	return cl, nil
}

func (c *Client) warmupRelease(cl *wire.Client) {
	c.warmupMu.Lock()
	delete(c.warmupConns, cl)
	c.warmupMu.Unlock()
	cl.Close()
}

// runWarmup streams the newcomer's share of each source member's residents
// into the newcomer. It runs on dedicated connections, so live traffic on
// the router's pooled connections proceeds untouched; the only shared
// state it takes is a read-lock per chunk to consult the ring. Close
// interrupts it by closing those connections and waits for it to exit.
func (c *Client) runWarmup(w *Warmup, newcomer string, sources []string, rf int) {
	defer c.warmupWG.Done()
	defer close(w.done)
	dst, err := c.warmupDial(newcomer)
	if err != nil {
		w.stats.Failed = len(sources)
		w.stats.Err = err
		return
	}
	defer c.warmupRelease(dst)
	for _, src := range sources {
		if c.closed.Load() {
			return
		}
		if err := c.warmFromSource(w, dst, newcomer, src, rf); err != nil {
			if c.closed.Load() {
				return // an interrupt, not a source failure
			}
			w.stats.Failed++
			if w.stats.Err == nil {
				w.stats.Err = err
			}
		}
	}
}

// warmFromSource enumerates one source member via the chunked KEYS stream,
// keeps the keys whose post-join owner set includes the newcomer, and
// copies their values over in bounded pipelined chunks, flagged as repair
// traffic. Every copy is conditional on the version it was read at
// (VERSIONED), so a user SET racing the warm-up can never be overwritten
// by the older value in flight.
func (c *Client) warmFromSource(w *Warmup, dst *wire.Client, newcomer, src string, rf int) error {
	srcCl, err := c.warmupDial(src)
	if err != nil {
		return fmt.Errorf("cluster: warm-up dial %s: %w", src, err)
	}
	defer c.warmupRelease(srcCl)

	var wanted []uint64
	var tombs []wire.KeyRec
	err = srcCl.KeysStream(func(chunk []wire.KeyRec) error {
		w.stats.Streamed += len(chunk)
		c.mu.RLock()
		for _, rec := range chunk {
			if contains(c.ring.OwnersFor(rec.Key, rf), newcomer) {
				if rec.Tombstone {
					// A deletion record needs no value read: it is copied
					// straight from the stream, so the newcomer learns the
					// delete before it could serve (or accept) an older copy.
					tombs = append(tombs, rec)
				} else {
					wanted = append(wanted, rec.Key)
				}
			}
		}
		c.mu.RUnlock()
		return nil
	})
	if err != nil {
		return fmt.Errorf("cluster: warm-up KEYS %s: %w", src, err)
	}

	for off := 0; off < len(tombs); off += warmupChunk {
		if c.closed.Load() {
			return nil
		}
		end := off + warmupChunk
		if end > len(tombs) {
			end = len(tombs)
		}
		applied, stale, err := dst.SetBatchRecs(tombs[off:end], wire.SetFlagRepair, nil)
		if err != nil {
			return fmt.Errorf("cluster: warm-up writing tombstones to %s: %w", newcomer, err)
		}
		w.stats.Tombstones += applied
		w.stats.Stale += stale
		c.staleRepairs.Add(uint64(stale))
	}

	var rsc chunkScratch
	for off := 0; off < len(wanted); off += warmupChunk {
		if c.closed.Load() {
			return nil
		}
		end := off + warmupChunk
		if end > len(wanted) {
			end = len(wanted)
		}
		chunk := wanted[off:end]
		vals, vers, hits, err := readChunkValues(srcCl, chunk, &rsc)
		if err != nil {
			return fmt.Errorf("cluster: warm-up reading %s: %w", src, err)
		}
		w.stats.Vanished += len(chunk) - len(hits)
		if len(hits) == 0 {
			continue
		}
		sub := make([]uint64, len(hits))
		for j, i := range hits {
			sub[j] = chunk[i]
		}
		applied, stale, err := dst.SetBatchVersioned(sub, wire.SetFlagRepair,
			func(j int) uint64 { return vers[hits[j]] },
			func(j int) []byte { return vals[hits[j]] })
		if err != nil {
			return fmt.Errorf("cluster: warm-up writing %s: %w", newcomer, err)
		}
		w.stats.Copied += applied
		w.stats.Stale += stale
		c.staleRepairs.Add(uint64(stale))
		c.mu.RLock()
		nc := c.nodes[newcomer]
		c.mu.RUnlock()
		if nc != nil {
			nc.repairs.Add(uint64(applied))
		}
	}
	return nil
}

// AddNode joins a new member: its connection is dialed eagerly (failing
// fast on a bad address), the ring is extended, the topology epoch bumps,
// and the new view is pushed to every member — so other routers and future
// seed-bootstrapped clients converge without being told. Consistent
// hashing bounds the reassigned share to roughly 1/(n+1) of the key space.
//
// Unless Options.DisableWarmup is set, AddNode also starts a proactive
// warm-up in the background: the newcomer's share is streamed out of the
// existing members via chunked KEYS and repair-SET into it on dedicated
// connections, so the post-join miss/fallback burst is paid by the
// maintenance path instead of by user reads. The returned Warmup reports
// completion; callers that don't care may ignore it.
func (c *Client) AddNode(addr string) (*Warmup, error) {
	c.mu.Lock()
	// The closed check and the warm-up WaitGroup increment both happen
	// inside this critical section: Close sets the flag before taking
	// c.mu, so either this AddNode's Add(1) lands before Close's Wait (and
	// the warm-up is interrupted and awaited) or the flag is already
	// visible here and the join is refused.
	if c.closed.Load() {
		c.mu.Unlock()
		return nil, fmt.Errorf("cluster: client closed")
	}
	if _, exists := c.nodes[addr]; exists {
		c.mu.Unlock()
		return nil, fmt.Errorf("cluster: node %s already a member", addr)
	}
	nc := &nodeConn{addr: addr}
	if _, err := nc.client(c.dial); err != nil {
		c.mu.Unlock()
		return nil, err
	}
	c.nodes[addr] = nc
	c.ring.Add(addr)
	c.epoch++
	c.curEpoch.Store(c.epoch)
	c.pushTopologyLocked(nil)
	var sources []string
	for _, m := range c.ring.Nodes() {
		if m != addr {
			sources = append(sources, m)
		}
	}
	rf := c.effReplicas()
	w := &Warmup{done: make(chan struct{})}
	warm := !c.noWarmup && len(sources) > 0
	if warm {
		c.warmupWG.Add(1)
	}
	c.mu.Unlock()

	if !warm {
		close(w.done)
		return w, nil
	}
	go c.runWarmup(w, addr, sources, rf)
	return w, nil
}

// migrateChunk bounds how many keys RemoveNode drains per pipelined round
// trip, keeping peak buffering (chunk × value size) modest.
const migrateChunk = 256

// RemoveNode retires a member and bumps the topology epoch, pushing the
// shrunk view to every survivor so routers and peers converge on their own.
//
// Unreplicated (R = 1), it first migrates the departing node's residents
// to their new owners: the cluster-level analogue of the paper's
// incremental rehash, where no entry is lost except by accounted eviction.
// The resident set is enumerated through the chunked KEYS stream, so a
// node with many millions of residents drains in bounded frames. moved
// counts entries re-stored on their new owner (which may evict there — the
// destination's eviction counters account for it); dropped counts entries
// that vanished between the key snapshot and the drain.
//
// With R > 1 the drain is unnecessary and RemoveNode becomes cheap: every
// resident of the departing node also lives on R-1 surviving owners, so
// the member is simply dropped from the ring (moved and dropped are 0) and
// the key's new R-th owner refills lazily through read repair. Because
// this path never contacts the departing node, it also handles a crashed
// member: RemoveNode on a dead address cleans it out of the ring and stops
// the router paying a failed dial per batch.
//
// RemoveNode excludes all other traffic on this Client for its duration.
func (c *Client) RemoveNode(addr string) (moved, dropped int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	nc, ok := c.nodes[addr]
	if !ok {
		return 0, 0, fmt.Errorf("cluster: node %s is not a member", addr)
	}
	if c.ring.NumNodes() == 1 {
		return 0, 0, fmt.Errorf("cluster: cannot remove the last member %s", addr)
	}
	if c.effReplicas() > 1 {
		nc.mu.Lock()
		nc.drop()
		nc.mu.Unlock()
		delete(c.nodes, addr)
		c.ring.Remove(addr)
		c.epoch++
		c.curEpoch.Store(c.epoch)
		c.pushTopologyLocked(nil)
		return 0, 0, nil
	}

	nc.mu.Lock()
	defer nc.mu.Unlock()
	var recs []wire.KeyRec
	if err := nc.withRetry(c.dial, func(cl *wire.Client) error {
		var err error
		recs, err = cl.Keys()
		return err
	}); err != nil {
		return 0, 0, fmt.Errorf("cluster: KEYS %s: %w", addr, err)
	}
	// Split the resident set: live keys drain through the value-read path
	// below; deletion records move as-is (no value to read) so the key's
	// new owner keeps refusing resurrection until the tombstone is reaped.
	keys := make([]uint64, 0, len(recs))
	var tombs []wire.KeyRec
	for _, rec := range recs {
		if rec.Tombstone {
			tombs = append(tombs, rec)
		} else {
			keys = append(keys, rec.Key)
		}
	}

	// Reroute first so owners are computed against the post-removal ring,
	// then drain the departing member chunk by chunk. If the drain fails
	// the member is restored: leaving it removed would orphan its
	// undrained residents outside both the moved and dropped counts. Only
	// a completed drain bumps and pushes the epoch.
	c.ring.Remove(addr)
	drained := false
	defer func() {
		if drained {
			nc.drop()
			delete(c.nodes, addr)
			c.epoch++
			c.curEpoch.Store(c.epoch)
			c.pushTopologyLocked(nil)
		} else {
			c.ring.Add(addr)
		}
	}()

	src := nc.cl
	var rsc chunkScratch
	for off := 0; off < len(keys); off += migrateChunk {
		end := off + migrateChunk
		if end > len(keys) {
			end = len(keys)
		}
		chunk := keys[off:end]

		vals, vers, hits, err := readChunkValues(src, chunk, &rsc)
		if err != nil {
			return moved, dropped, fmt.Errorf("cluster: draining %s: %w", addr, err)
		}
		dropped += len(chunk) - len(hits)

		// Partition the chunk's survivors by new owner and re-store them.
		byOwner := make(map[*nodeConn][]int)
		for _, i := range hits {
			owner, ok := c.ring.Node(chunk[i])
			if !ok {
				return moved, dropped, fmt.Errorf("cluster: empty ring during migration")
			}
			byOwner[c.nodes[owner]] = append(byOwner[c.nodes[owner]], i)
		}
		for dst, idx := range byOwner {
			dst.mu.Lock()
			var applied, stale int
			err := dst.withRetry(c.dial, func(cl *wire.Client) error {
				sub := make([]uint64, len(idx))
				for j, i := range idx {
					sub[j] = chunk[i]
				}
				// Migration writes carry the repair flag (replica
				// maintenance, not user traffic) and are conditional on the
				// version each value was drained at, so a user SET racing
				// the migration onto the new owner keeps its newer value.
				// They stay synchronous (no ASYNC flag): the moved count
				// must mean settled at the destination, not queued.
				var err error
				applied, stale, err = cl.SetBatchVersioned(sub, wire.SetFlagRepair,
					func(j int) uint64 { return vers[idx[j]] },
					func(j int) []byte { return vals[idx[j]] })
				return err
			})
			if err == nil {
				dst.repairs.Add(uint64(applied))
				c.staleRepairs.Add(uint64(stale))
			}
			dst.mu.Unlock()
			if err != nil {
				return moved, dropped, fmt.Errorf("cluster: migrating to %s: %w", dst.addr, err)
			}
			// A stale rejection counts as moved: the destination proved it
			// holds a strictly newer value for the key, so the resident is
			// settled there — just not by this copy.
			moved += len(idx)
		}
	}

	for off := 0; off < len(tombs); off += migrateChunk {
		end := off + migrateChunk
		if end > len(tombs) {
			end = len(tombs)
		}
		chunk := tombs[off:end]
		byOwner := make(map[*nodeConn][]int)
		for i := range chunk {
			owner, ok := c.ring.Node(chunk[i].Key)
			if !ok {
				return moved, dropped, fmt.Errorf("cluster: empty ring during migration")
			}
			byOwner[c.nodes[owner]] = append(byOwner[c.nodes[owner]], i)
		}
		for dst, idx := range byOwner {
			dst.mu.Lock()
			var applied, stale int
			err := dst.withRetry(c.dial, func(cl *wire.Client) error {
				sub := make([]wire.KeyRec, len(idx))
				for j, i := range idx {
					sub[j] = chunk[i]
				}
				var err error
				applied, stale, err = cl.SetBatchRecs(sub, wire.SetFlagRepair, nil)
				return err
			})
			if err == nil {
				dst.repairs.Add(uint64(applied))
				c.staleRepairs.Add(uint64(stale))
			}
			dst.mu.Unlock()
			if err != nil {
				return moved, dropped, fmt.Errorf("cluster: migrating tombstones to %s: %w", dst.addr, err)
			}
			// Stale counts as moved here too: the destination already holds
			// a newer write for the key, which supersedes this delete.
			moved += len(idx)
		}
	}
	drained = true
	return moved, dropped, nil
}
