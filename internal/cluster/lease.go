package cluster

import (
	"fmt"
	"time"

	"repro/internal/wire"
)

// This file is the client half of the v7 lease protocol: GETL misses, the
// grant table, the fill path, and the waiter-resolution loop, plus the
// router-level singleflight that keeps one process from duplicating a
// fill it already owns. The near-cache (nearcache.go) is its edge: lease
// and stale-hint reads land there, version-reconciled, so a hot key's
// storm is absorbed locally instead of at the key's primary owner.

// maxGrants bounds the outstanding-grant table; at the cap, an expired
// grant (or, failing a cheap scan, an arbitrary one) is dropped — its
// fill then simply never happens and the server-side lease expires on its
// own, which every lease holder must tolerate anyway.
const maxGrants = 4096

// Bounds for waiting on someone else's fill. A local wait (a sibling
// goroutine of this client holds the grant) blocks on the grant's done
// channel; a remote wait polls the owner with GETL under exponential
// backoff. Both are capped: leases bound how long the herd defers to a
// holder that may have died, and past the cap the key resolves as a
// plain miss so the caller's read-through inherits the (by then expired)
// lease.
const (
	leaseLocalWait      = 50 * time.Millisecond
	leaseWaitBackoff    = 200 * time.Microsecond
	leaseWaitBackoffMax = 5 * time.Millisecond
	leaseWaitCap        = 100 * time.Millisecond
)

// leaseGrant is one fill lease this client holds: the wire token and its
// deadline, plus a channel closed when the fill resolves (or the grant is
// discarded) so sibling goroutines singleflight on it instead of issuing
// duplicate network misses.
type leaseGrant struct {
	token   uint64
	expires time.Time
	done    chan struct{}
}

// recordGrant registers a LEASE grant for key, superseding (and waking
// the waiters of) any previous grant.
func (c *Client) recordGrant(key, token uint64, ttl time.Duration) {
	g := &leaseGrant{token: token, expires: time.Now().Add(ttl), done: make(chan struct{})}
	c.grantMu.Lock()
	if c.grants == nil {
		c.grants = make(map[uint64]*leaseGrant)
	}
	if old := c.grants[key]; old != nil {
		close(old.done)
	} else if len(c.grants) >= maxGrants {
		c.evictGrantsLocked()
	}
	c.grants[key] = g
	c.grantsN.Store(int64(len(c.grants)))
	c.grantMu.Unlock()
	c.leaseGrants.Add(1)
}

// takeGrant removes and returns key's outstanding grant, if any; the
// caller then owns closing done once the fill resolves.
func (c *Client) takeGrant(key uint64) *leaseGrant {
	c.grantMu.Lock()
	defer c.grantMu.Unlock()
	g := c.grants[key]
	if g != nil {
		delete(c.grants, key)
		c.grantsN.Store(int64(len(c.grants)))
	}
	return g
}

// peekGrant returns key's outstanding grant without removing it.
func (c *Client) peekGrant(key uint64) *leaseGrant {
	c.grantMu.Lock()
	defer c.grantMu.Unlock()
	return c.grants[key]
}

// finishGrant discards key's grant — the key turned out resident, or was
// deleted — waking any local waiters so they re-read.
func (c *Client) finishGrant(key uint64) {
	if g := c.takeGrant(key); g != nil {
		close(g.done)
	}
}

// evictGrantsLocked makes room in the full grant table: a short scan
// drops the first expired grant, falling back to an arbitrary one.
// Called with grantMu held.
func (c *Client) evictGrantsLocked() {
	now := time.Now()
	scanned := 0
	var fallback uint64
	found := false
	for k, g := range c.grants {
		if now.After(g.expires) {
			close(g.done)
			delete(c.grants, k)
			return
		}
		if !found {
			fallback, found = k, true
		}
		if scanned++; scanned >= 8 {
			break
		}
	}
	if found {
		close(c.grants[fallback].done)
		delete(c.grants, fallback)
	}
}

// getBatchLeased is GetBatch with leases and/or the near-cache on:
// serve what the near-cache holds, singleflight on fills this client
// already owns, send the remainder as GETL (plain GET when only the
// near-cache is enabled), and resolve zero-token waiters by polling the
// holder. Caller holds c.mu.RLock.
func (c *Client) getBatchLeased(keys []uint64, bt batchTrace, visit func(i int, hit bool, value []byte)) error {
	now := time.Now()
	remote := make([]int, 0, len(keys))
	for i, k := range keys {
		if c.near != nil {
			if val, _, ok := c.near.lookup(k, now); ok {
				c.nearHits.Add(1)
				visit(i, true, val)
				continue
			}
		}
		remote = append(remote, i)
	}
	if len(remote) > 0 && c.near != nil && c.grantsN.Load() > 0 {
		remote = c.waitLocalGrants(keys, remote, visit)
	}
	if len(remote) == 0 {
		return nil
	}
	// The network round runs over the compacted remainder so sub-batch
	// index bookkeeping stays contiguous; wvisit maps back.
	rk := make([]uint64, len(remote))
	for j, i := range remote {
		rk[j] = keys[i]
	}
	wvisit := func(j int, hit bool, value []byte) { visit(remote[j], hit, value) }
	var waiters []int
	var err error
	if c.effReplicas() > 1 {
		err = c.getBatchReplicated(rk, bt, &waiters, wvisit)
	} else {
		all := make([]int, len(rk))
		for j := range all {
			all[j] = j
		}
		err = c.getBatchDirectLeased(rk, all, bt, &waiters, wvisit)
	}
	if err != nil {
		return err
	}
	if len(waiters) > 0 {
		return c.resolveWaiters(rk, waiters, bt, wvisit)
	}
	return nil
}

// waitLocalGrants is the router singleflight: a key whose fill lease is
// held by a sibling goroutine of this client waits briefly on that fill
// instead of sending a duplicate miss, then rechecks the near-cache.
func (c *Client) waitLocalGrants(keys []uint64, remote []int, visit func(i int, hit bool, value []byte)) []int {
	still := remote[:0]
	for _, i := range remote {
		g := c.peekGrant(keys[i])
		if g == nil {
			still = append(still, i)
			continue
		}
		c.leaseWaits.Add(1)
		wait := time.Until(g.expires)
		if wait > leaseLocalWait {
			wait = leaseLocalWait
		}
		if wait > 0 {
			t := time.NewTimer(wait)
			select {
			case <-g.done:
			case <-t.C:
			}
			t.Stop()
		}
		if val, _, ok := c.near.lookup(keys[i], time.Now()); ok {
			c.nearHits.Add(1)
			visit(i, true, val)
			continue
		}
		still = append(still, i)
	}
	return still
}

// getBatchDirectLeased is the unreplicated network round of a leased
// batch: one GETL per key (plain GET when only the near-cache is on),
// with the plain path's pipelining and replay-once recovery. Zero-token
// LEASE responses without a stale hint append their index to waiters for
// the caller's resolution loop. Caller holds c.mu.RLock.
func (c *Client) getBatchDirectLeased(keys []uint64, idxs []int, bt batchTrace, waiters *[]int, visit func(i int, hit bool, value []byte)) error {
	sc := getBatchScratch()
	defer sc.release()
	subs, err := c.partitionIdx(sc, keys, idxs)
	if err != nil {
		return err
	}
	lockSubs(subs)
	defer unlockSubs(subs)

	for _, s := range subs {
		s.err = s.enqueueGetsLease(c.dial, keys, bt, c.leases)
	}
	for _, s := range subs {
		if s.err == nil {
			s.err = c.readGetsLeased(s, keys, waiters, visit)
		}
		if s.err != nil {
			if s.delivered > 0 {
				dropSubs(subs)
				return s.err
			}
			s.nc.drop()
			s.nc.redials.Add(1)
			if err := s.enqueueGetsLease(c.dial, keys, bt, c.leases); err != nil {
				dropSubs(subs)
				return err
			}
			if err := c.readGetsLeased(s, keys, waiters, visit); err != nil {
				dropSubs(subs)
				return err
			}
		}
	}
	return nil
}

// enqueueGetsLease dials (if needed), pipelines the sub-batch's reads as
// GETL (lease) or GET, and flushes.
func (s *subBatch) enqueueGetsLease(dial DialFunc, keys []uint64, bt batchTrace, lease bool) error {
	if !lease {
		return s.enqueueGets(dial, keys, bt)
	}
	cl, err := s.nc.client(dial)
	if err != nil {
		return err
	}
	for _, i := range s.idx {
		if bt.traced {
			err = cl.EnqueueGetLeaseTraced(keys[i], bt.tc)
		} else {
			err = cl.EnqueueGetLease(keys[i])
		}
		if err != nil {
			return err
		}
	}
	return cl.Flush()
}

// readGetsLeased drains one sub-batch's GETL (or GET) responses: hits
// reconcile through the near-cache, grants are recorded and reported as
// misses (the caller's read-through fill carries the token), stale hints
// are served as hits, and bare zero-token responses join waiters.
func (c *Client) readGetsLeased(s *subBatch, keys []uint64, waiters *[]int, visit func(i int, hit bool, value []byte)) error {
	cl := s.nc.cl
	for _, i := range s.idx[s.delivered:] {
		resp, err := cl.ReadResponse()
		if err != nil {
			return err
		}
		c.observeEpoch(resp.Epoch)
		s.nc.gets.Add(1)
		s.delivered++
		switch resp.Status {
		case wire.StatusHit:
			s.nc.hits.Add(1)
			val := resp.Value
			if c.near != nil {
				val, _ = c.near.reconcile(keys[i], resp.Version, resp.Value, time.Now())
			}
			if c.grantsN.Load() > 0 {
				// Resident after all: a stray grant must not turn a later
				// user SET of the key into a discardable fill.
				c.finishGrant(keys[i])
			}
			visit(i, true, val)
		case wire.StatusMiss:
			s.nc.misses.Add(1)
			visit(i, false, nil)
		case wire.StatusLease:
			s.nc.misses.Add(1)
			switch {
			case resp.LeaseToken != 0:
				c.recordGrant(keys[i], resp.LeaseToken, resp.LeaseTTL)
				visit(i, false, nil)
			case resp.Stale:
				c.staleHints.Add(1)
				val := resp.Value
				if c.near != nil {
					val, _ = c.near.reconcile(keys[i], resp.Version, resp.Value, time.Now())
				}
				visit(i, true, val)
			default:
				*waiters = append(*waiters, i)
			}
		default:
			return fmt.Errorf("cluster: unexpected GETL response %v from %s", resp.Status, s.nc.addr)
		}
	}
	return nil
}

// resolveWaiters polls keys whose lease is held elsewhere: recheck the
// near-cache, re-GETL the owner under backoff, and past leaseWaitCap
// resolve as plain misses — the caller's read-through then GETLs again
// and typically inherits the expired lease. Caller holds c.mu.RLock.
func (c *Client) resolveWaiters(keys []uint64, waiters []int, bt batchTrace, visit func(i int, hit bool, value []byte)) error {
	c.leaseWaits.Add(uint64(len(waiters)))
	deadline := time.Now().Add(leaseWaitCap)
	backoff := leaseWaitBackoff
	pending := waiters
	for {
		time.Sleep(backoff)
		if backoff *= 2; backoff > leaseWaitBackoffMax {
			backoff = leaseWaitBackoffMax
		}
		now := time.Now()
		still := pending[:0]
		for _, i := range pending {
			if c.near != nil {
				if val, _, ok := c.near.lookup(keys[i], now); ok {
					c.nearHits.Add(1)
					visit(i, true, val)
					continue
				}
			}
			still = append(still, i)
		}
		if len(still) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			for _, i := range still {
				visit(i, false, nil)
			}
			return nil
		}
		var next []int
		if err := c.getBatchDirectLeased(keys, still, bt, &next, visit); err != nil {
			return err
		}
		if len(next) == 0 {
			return nil
		}
		pending = next
	}
}

// setBatchLeased is SetBatch with leases and/or the near-cache on. Keys
// this client holds a fill lease for are sent as lease fills to their
// primary owner — a fill the server refuses (LEASE_LOST) is a successful
// no-op, because Options.Leases declares the client's SETs read-through
// fills whenever a lease is held. The rest go down the ordinary user-SET
// path. Caller holds c.mu.RLock.
func (c *Client) setBatchLeased(keys []uint64, bt batchTrace, value func(i int) []byte) error {
	var fills []int
	var grants map[int]*leaseGrant
	rest := make([]int, 0, len(keys))
	for i, k := range keys {
		if c.grantsN.Load() > 0 {
			if g := c.takeGrant(k); g != nil {
				if grants == nil {
					grants = make(map[int]*leaseGrant)
				}
				fills = append(fills, i)
				grants[i] = g
				continue
			}
		}
		rest = append(rest, i)
	}
	if len(fills) > 0 {
		if err := c.fillLeases(keys, fills, grants, bt, value); err != nil {
			return err
		}
	}
	if len(rest) == 0 {
		return nil
	}
	if len(rest) < len(keys) {
		rk := make([]uint64, len(rest))
		for j, i := range rest {
			rk[j] = keys[i]
		}
		rvalue := func(j int) []byte { return value(rest[j]) }
		if c.effReplicas() > 1 {
			return c.setBatchReplicated(rk, bt, rvalue)
		}
		return c.setBatchPlain(rk, bt, rvalue)
	}
	if c.effReplicas() > 1 {
		return c.setBatchReplicated(keys, bt, value)
	}
	return c.setBatchPlain(keys, bt, value)
}

// fillLeases writes lease fills to each key's primary owner, pipelined
// per member with replay-once recovery. Whatever happens, every grant's
// done channel is closed on the way out so local waiters re-poll instead
// of sleeping out their cap. Under replication an applied fill is
// propagated to the remaining owners as a conditional background repair.
func (c *Client) fillLeases(keys []uint64, idxs []int, grants map[int]*leaseGrant, bt batchTrace, value func(i int) []byte) error {
	defer func() {
		for _, g := range grants {
			close(g.done)
		}
	}()
	sc := getBatchScratch()
	defer sc.release()
	subs, err := c.partitionIdx(sc, keys, idxs)
	if err != nil {
		return err
	}
	lockSubs(subs)
	defer unlockSubs(subs)

	for _, s := range subs {
		s.err = s.enqueueFills(c.dial, keys, grants, value, bt)
	}
	rf := c.effReplicas()
	for _, s := range subs {
		if s.err == nil {
			s.err = c.readFills(s, keys, rf, bt, value)
		}
		if s.err != nil {
			if s.delivered > 0 {
				dropSubs(subs)
				return s.err
			}
			s.nc.drop()
			s.nc.redials.Add(1)
			if err := s.enqueueFills(c.dial, keys, grants, value, bt); err != nil {
				dropSubs(subs)
				return err
			}
			if err := c.readFills(s, keys, rf, bt, value); err != nil {
				dropSubs(subs)
				return err
			}
		}
	}
	return nil
}

// enqueueFills dials (if needed), pipelines the sub-batch's lease fills
// and flushes.
func (s *subBatch) enqueueFills(dial DialFunc, keys []uint64, grants map[int]*leaseGrant, value func(i int) []byte, bt batchTrace) error {
	cl, err := s.nc.client(dial)
	if err != nil {
		return err
	}
	for _, i := range s.idx {
		if bt.traced {
			err = cl.EnqueueSetLeaseTraced(keys[i], grants[i].token, bt.tc, value(i))
		} else {
			err = cl.EnqueueSetLease(keys[i], grants[i].token, value(i))
		}
		if err != nil {
			return err
		}
	}
	return cl.Flush()
}

// readFills drains one sub-batch's lease-fill responses. OK caches the
// value near (it is the key's current version) and, under replication,
// schedules its propagation; LEASE_LOST counts and moves on — fresher
// state won, which is exactly the invariant the lease exists to keep.
func (c *Client) readFills(s *subBatch, keys []uint64, rf int, bt batchTrace, value func(i int) []byte) error {
	cl := s.nc.cl
	for _, i := range s.idx[s.delivered:] {
		resp, err := cl.ReadResponse()
		if err != nil {
			return err
		}
		c.observeEpoch(resp.Epoch)
		s.nc.sets.Add(1)
		s.delivered++
		switch resp.Status {
		case wire.StatusOK:
			if c.near != nil {
				c.near.store(keys[i], resp.Version, value(i), time.Now())
			}
			if rf > 1 {
				if owners := c.ring.OwnersFor(keys[i], rf); len(owners) > 1 {
					c.scheduleRepair(keys[i], resp.Version, value(i), owners[1:], bt)
				}
			}
		case wire.StatusLeaseLost:
			c.leaseLost.Add(1)
			if c.near != nil {
				c.near.remove(keys[i])
			}
		default:
			return fmt.Errorf("cluster: unexpected LEASE SET response %v from %s", resp.Status, s.nc.addr)
		}
	}
	return nil
}

// LeaseCounters returns the router's lease/near-cache tallies — GETs
// served from the near-cache, zero-token stale hints served as hits,
// fill leases granted to this client, fills refused as LEASE_LOST, and
// keys that waited on another caller's fill (locally or by polling). It
// implements load.LeaseReporter.
func (c *Client) LeaseCounters() (nearHits, staleHints, grants, lost, waits uint64) {
	return c.nearHits.Load(), c.staleHints.Load(), c.leaseGrants.Load(), c.leaseLost.Load(), c.leaseWaits.Load()
}

// NearCacheStats returns the near-cache's counters; all zero when the
// near-cache is disabled.
func (c *Client) NearCacheStats() NearCacheCounters {
	if c.near == nil {
		return NearCacheCounters{}
	}
	return c.near.snapshot()
}
