package cluster

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/concurrent"
	"repro/internal/load"
	"repro/internal/server"
	"repro/internal/wire"
)

// startNodeWithServer boots one cached node on loopback and returns both
// its address and the server handle, so tests can crash it mid-run.
func startNodeWithServer(t *testing.T, k, alpha int, seed uint64) (string, *server.Server) {
	t.Helper()
	cache, err := concurrent.New(concurrent.Config{Capacity: k, Alpha: alpha, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(cache)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String(), srv
}

// TestReadRepair wipes a key from its primary owner's cache out-of-band
// (emulating a lost or wiped replica — since v8 a wire DEL cannot play
// this role, because it leaves a tombstone the repair correctly refuses
// to overwrite), reads it through the replicated client, and asserts the
// fallback hit both returns the value and regenerates the primary's copy
// in the background — with the repair counted as repair traffic at every
// layer (router counters, server STATS).
func TestReadRepair(t *testing.T) {
	caches := make(map[string]*concurrent.Cache)
	addrs := make([]string, 3)
	for i := range addrs {
		cache, err := concurrent.New(concurrent.Config{Capacity: 4096, Alpha: 16, Seed: uint64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		srv := server.New(cache)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		t.Cleanup(func() { srv.Close() })
		addrs[i] = ln.Addr().String()
		caches[addrs[i]] = cache
	}
	ctl, err := Dial(addrs, Options{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	const key = uint64(42)
	val := []byte("replicated-payload")
	if err := ctl.Set(key, val); err != nil {
		t.Fatal(err)
	}
	owners := ctl.Owners(key)
	if len(owners) != 2 {
		t.Fatalf("Owners(%d) = %v, want 2 owners", key, owners)
	}

	// Wipe the primary's copy behind the server's back: genuine loss,
	// no tombstone left behind.
	if !caches[owners[0]].Delete(key) {
		t.Fatalf("primary %s does not hold key %d", owners[0], key)
	}
	direct, err := wire.Dial(owners[0])
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()

	// The degraded read must still hit, served by the backup owner.
	got, hit, err := ctl.Get(key)
	if err != nil || !hit {
		t.Fatalf("Get after primary wipe = hit=%v, %v; want fallback hit", hit, err)
	}
	if string(got) != string(val) {
		t.Fatalf("fallback value = %q, want %q", got, val)
	}

	// Background read repair must regenerate the primary's copy.
	deadline := time.Now().Add(5 * time.Second)
	for {
		v, hit, err := direct.Get(key)
		if err != nil {
			t.Fatal(err)
		}
		if hit {
			if string(v) != string(val) {
				t.Fatalf("repaired value = %q, want %q", v, val)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("primary copy not repaired within deadline")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The server applies the repair before the router hears the ack, so give
	// the counter the same deadline the value had.
	for ctl.Replication().RepairsApplied == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	rep := ctl.Replication()
	if rep.FallbackHits == 0 {
		t.Error("no fallback hits counted")
	}
	if rep.RepairsScheduled == 0 || rep.RepairsApplied == 0 {
		t.Errorf("repair counters = %+v; want scheduled and applied ≥ 1", rep)
	}
	if got := ctl.Counters()[owners[0]].Repairs; got == 0 {
		t.Errorf("router counted %d repairs on primary %s, want ≥ 1", got, owners[0])
	}

	// The server distinguishes the repair from user writes: the primary saw
	// one user SET (the original) and at least one repair SET.
	stats, err := ctl.StatsAll(false)
	if err != nil {
		t.Fatal(err)
	}
	if st := stats[owners[0]]; st.RepairSets == 0 {
		t.Errorf("primary STATS RepairSets = %d, want ≥ 1 (Sets = %d)", st.RepairSets, st.Sets)
	}
	if st := stats[owners[0]]; st.Sets == 0 {
		t.Errorf("primary STATS Sets = %d, want ≥ 1", st.Sets)
	}
}

// TestReplicatedKillNodeZeroLostReads is the availability acceptance test:
// 3 nodes, R=2, one node killed (crashed, not retired) in the middle of
// live read traffic. No read may fail and no preloaded key may be lost —
// every key's surviving replica serves it. Afterwards RemoveNode cleans the
// dead member out of the ring without contacting it.
func TestReplicatedKillNodeZeroLostReads(t *testing.T) {
	const (
		k     = 8192
		alpha = 32
		nkeys = 1500
	)
	addrs := make([]string, 3)
	servers := make([]*server.Server, 3)
	for i := range addrs {
		addrs[i], servers[i] = startNodeWithServer(t, k, alpha, uint64(i+1))
	}
	ctl, err := Dial(addrs, Options{Replicas: 2, WriteQuorum: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	keys := make([]uint64, nkeys)
	for i := range keys {
		keys[i] = uint64(i) + 1
	}
	if err := ctl.SetBatch(keys, func(i int) []byte { return load.Payload(keys[i], 32) }); err != nil {
		t.Fatal(err)
	}

	// Live GET traffic through the shared router while a member dies.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var liveMisses atomic.Uint64
	trafficErr := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			batch := make([]uint64, 16)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				for j := range batch {
					batch[j] = keys[(w*31+i*16+j)%nkeys]
				}
				if err := ctl.GetBatch(batch, func(_ int, hit bool, _ []byte) {
					if !hit {
						liveMisses.Add(1)
					}
				}); err != nil {
					trafficErr <- err
					return
				}
			}
		}(w)
	}

	time.Sleep(50 * time.Millisecond)
	victim := addrs[0]
	if err := servers[0].Close(); err != nil { // crash, no drain, no goodbye
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case err := <-trafficErr:
		t.Fatalf("read failed during node crash: %v", err)
	default:
	}
	if n := liveMisses.Load(); n != 0 {
		t.Errorf("%d reads missed during the crash; surviving replicas should have served all of them", n)
	}

	// Full sweep: every preloaded key must still be readable.
	present := 0
	if err := ctl.GetBatch(keys, func(_ int, hit bool, _ []byte) {
		if hit {
			present++
		}
	}); err != nil {
		t.Fatal(err)
	}
	if present != nkeys {
		t.Errorf("lost %d of %d keys to a single node crash with R=2", nkeys-present, nkeys)
	}
	if rep := ctl.Replication(); rep.FallbackHits == 0 {
		t.Error("no fallback hits counted; the crash should have exercised replica fallback")
	}

	// Retiring the dead member must not require contacting it.
	moved, dropped, err := ctl.RemoveNode(victim)
	if err != nil {
		t.Fatalf("RemoveNode on crashed member: %v", err)
	}
	if moved != 0 || dropped != 0 {
		t.Errorf("replicated RemoveNode migrated %d/%d keys; replicas make the drain unnecessary", moved, dropped)
	}
	if got := len(ctl.Nodes()); got != 2 {
		t.Fatalf("cluster has %d members after RemoveNode, want 2", got)
	}
	present = 0
	if err := ctl.GetBatch(keys, func(_ int, hit bool, _ []byte) {
		if hit {
			present++
		}
	}); err != nil {
		t.Fatal(err)
	}
	if present != nkeys {
		t.Errorf("lost %d of %d keys after retiring the crashed member", nkeys-present, nkeys)
	}
}

// TestWriteQuorum pins the W-of-R write contract: with one of 3 members
// dead, W=R writes fail on keys owned by the dead node while W=1 writes
// succeed everywhere (the surviving owner takes them).
func TestWriteQuorum(t *testing.T) {
	addrs := make([]string, 3)
	servers := make([]*server.Server, 3)
	for i := range addrs {
		addrs[i], servers[i] = startNodeWithServer(t, 4096, 16, uint64(i+1))
	}
	strict, err := Dial(addrs, Options{Replicas: 2}) // W defaults to R = 2
	if err != nil {
		t.Fatal(err)
	}
	defer strict.Close()
	sloppy, err := Dial(addrs, Options{Replicas: 2, WriteQuorum: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sloppy.Close()

	if err := servers[2].Close(); err != nil {
		t.Fatal(err)
	}
	dead := addrs[2]

	// Pick a key the dead node owns.
	var key uint64
	found := false
	for k := uint64(1); k < 10_000; k++ {
		if contains(strict.Owners(k), dead) {
			key, found = k, true
			break
		}
	}
	if !found {
		t.Fatal("no key owned by the dead node in 10k probes; ring is degenerate")
	}

	if err := strict.Set(key, []byte("v")); err == nil {
		t.Errorf("W=2 SET succeeded with an owner dead; want quorum failure")
	}
	if err := sloppy.Set(key, []byte("v")); err != nil {
		t.Errorf("W=1 SET failed with one owner surviving: %v", err)
	}
	if _, hit, err := sloppy.Get(key); err != nil || !hit {
		t.Errorf("read-back of quorum-1 write = hit=%v, %v", hit, err)
	}
}

// TestRepairCannotReinstateOldValue is the cluster-level acceptance for
// the v4 lost-update fix, exercising the organic repair pipeline end to
// end: a fallback hit observes the old value and queues an async repair
// of it at the primary, a user SET of a new value races that queued
// repair, and whatever interleaving the queues produce, the new value
// must survive on every owner. A final deterministic replay — the old
// value at its observed version, delivered REPAIR|ASYNC after the user
// SET, the exact interleaving that stored the old value under v3 — pins
// the rejection with the primary's StaleRepairs counter.
func TestRepairCannotReinstateOldValue(t *testing.T) {
	addrs := startCluster(t, 3, 4096, 16)
	ctl, err := Dial(addrs, Options{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	const key = uint64(77)
	if err := ctl.Set(key, []byte("old")); err != nil {
		t.Fatal(err)
	}
	owners := ctl.Owners(key)
	primary, backup := owners[0], owners[1]

	// Record the version the old value lives at on the backup — what any
	// fallback reader observes.
	backupCl, err := wire.Dial(backup)
	if err != nil {
		t.Fatal(err)
	}
	defer backupCl.Close()
	var verOld uint64
	if err := backupCl.GetBatchVersions([]uint64{key}, func(_ int, h bool, v uint64, _ []byte) {
		if h {
			verOld = v
		}
	}); err != nil {
		t.Fatal(err)
	}
	if verOld == 0 {
		t.Fatal("backup holds no versioned copy of the preloaded key")
	}

	// Wipe the primary, fallback-read through the router (schedules an
	// async repair of the OLD value at the primary), then immediately land
	// a user SET of the NEW value.
	primaryCl, err := wire.Dial(primary)
	if err != nil {
		t.Fatal(err)
	}
	defer primaryCl.Close()
	if present, _, err := primaryCl.Del(key); err != nil || !present {
		t.Fatalf("direct DEL on primary = %v, %v", present, err)
	}
	if v, hit, err := ctl.Get(key); err != nil || !hit || string(v) != "old" {
		t.Fatalf("fallback read = %q, %v, %v", v, hit, err)
	}
	if err := ctl.Set(key, []byte("new")); err != nil {
		t.Fatal(err)
	}

	// Drain both queues: the router's repair worker, then the primary's
	// async maintenance queue.
	deadline := time.Now().Add(5 * time.Second)
	for {
		rep := ctl.Replication()
		st, err := primaryCl.Stats(false)
		if err != nil {
			t.Fatal(err)
		}
		if rep.RepairsScheduled > 0 &&
			rep.RepairsScheduled == rep.RepairsApplied+rep.RepairsDropped &&
			st.RepairQueueDepth == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("repair pipeline did not drain: %+v, depth=%d", rep, st.RepairQueueDepth)
		}
		time.Sleep(time.Millisecond)
	}

	// However the queued repair interleaved with the user SET, the newer
	// value survives everywhere.
	for _, o := range owners {
		cl, err := wire.Dial(o)
		if err != nil {
			t.Fatal(err)
		}
		v, hit, err := cl.Get(key)
		cl.Close()
		if err != nil || !hit || string(v) != "new" {
			t.Fatalf("owner %s holds %q (hit %v, %v); the old value was reinstated", o, v, hit, err)
		}
	}

	// The deterministic replay: deliver the old value at its observed
	// version AFTER the user SET, through the async queue — v3 semantics
	// stored it; v4 must reject it and count the win.
	before, err := primaryCl.Stats(false)
	if err != nil {
		t.Fatal(err)
	}
	if applied, _, err := primaryCl.SetVersioned(key, wire.SetFlagRepair|wire.SetFlagAsync, verOld, []byte("old")); err != nil || !applied {
		t.Fatalf("async replay accept = %v, %v", applied, err)
	}
	for {
		st, err := primaryCl.Stats(false)
		if err != nil {
			t.Fatal(err)
		}
		if st.StaleRepairs == before.StaleRepairs+1 && st.RepairQueueDepth == 0 {
			break
		}
		if time.Now().After(deadline.Add(5 * time.Second)) {
			t.Fatalf("replayed stale repair not rejected: StaleRepairs %d → %d", before.StaleRepairs, st.StaleRepairs)
		}
		time.Sleep(time.Millisecond)
	}
	if v, hit, err := ctl.Get(key); err != nil || !hit || string(v) != "new" {
		t.Fatalf("final read = %q, %v, %v; want the user SET to survive the delayed repair", v, hit, err)
	}
}
