//go:build race

package cluster

// raceEnabled reports that the race detector is on; the alloc-gate tests
// skip themselves then, because the race runtime allocates per operation.
const raceEnabled = true
