// Package cluster scales the cached service horizontally: a consistent-hash
// ring maps keys to member nodes, and Client routes requests over one
// pipelined wire connection per node, fanning STATS/REHASH out to all
// members.
//
// The ring is the cluster-level analogue of the paper's online rehash. A
// single node redraws its *intra-node* hash and migrates bucket contents
// incrementally (Section 6.1); the cluster redraws its *inter-node* key
// placement when membership changes, and consistent hashing bounds the key
// movement the same way incremental migration bounds per-miss work: adding
// or removing one of n nodes relocates only ~1/n of the key space instead
// of rehashing everything. RemoveNode completes the analogy by migrating
// the departing node's residents to their new owners under live traffic,
// with every key either moved or accounted for by an eviction counter —
// the same no-silent-loss discipline the incremental rehash keeps.
package cluster

import (
	"fmt"
	"sort"

	"repro/internal/hashfn"
)

// DefaultVNodes is the virtual-node count used when Options.VNodes is zero.
// At 128 points per member the peak-to-mean ownership imbalance across a
// handful of nodes stays within a few percent, while ring lookups remain a
// binary search over at most a few thousand points.
const DefaultVNodes = 128

// Ring is a consistent-hash ring with virtual nodes. It is not safe for
// concurrent use; Client guards its ring with a lock.
type Ring struct {
	vnodes int
	nodes  map[string]bool
	points []point // sorted by (hash, node)
}

type point struct {
	hash uint64
	node string
}

// NewRing returns a ring placing vnodes virtual points per member (0 means
// DefaultVNodes), populated with the given nodes.
func NewRing(vnodes int, nodes ...string) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{vnodes: vnodes, nodes: make(map[string]bool)}
	for _, n := range nodes {
		r.Add(n)
	}
	return r
}

// nodeHash folds a node name into a 64-bit seed via FNV-1a, then mixes in
// the replica index so virtual points scatter independently.
func nodeHash(node string, replica int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(node); i++ {
		h ^= uint64(node[i])
		h *= prime64
	}
	return hashfn.Mix64(h ^ uint64(replica)*0x9e3779b97f4a7c15)
}

// Add inserts node's virtual points. Adding a present node is a no-op.
func (r *Ring) Add(node string) {
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, point{hash: nodeHash(node, i), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
}

// Remove deletes node's virtual points. Removing an absent node is a no-op.
func (r *Ring) Remove(node string) {
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Node returns the member owning key: the first virtual point clockwise
// from the key's hash. It reports false only on an empty ring.
func (r *Ring) Node(key uint64) (string, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := hashfn.Mix64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap around
	}
	return r.points[i].node, true
}

// Nodes returns the members in sorted order.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// NumNodes returns the member count.
func (r *Ring) NumNodes() int { return len(r.nodes) }

// Sample estimates the ownership share of each member by routing n
// pseudo-random keys (deterministic in seed) and counting owners. It is how
// cmd/cachecluster reports ring balance, and how tests bound the key
// movement of a membership change.
func (r *Ring) Sample(n int, seed uint64) map[string]int {
	out := make(map[string]int, len(r.nodes))
	s := hashfn.NewSeedSequence(seed)
	for i := 0; i < n; i++ {
		if node, ok := r.Node(s.Next()); ok {
			out[node]++
		}
	}
	return out
}

// Validate checks a vnodes/nodes configuration before dialing.
func Validate(vnodes int, nodes []string) error {
	if vnodes < 0 {
		return fmt.Errorf("cluster: vnodes %d must not be negative", vnodes)
	}
	if len(nodes) == 0 {
		return fmt.Errorf("cluster: no member nodes")
	}
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if n == "" {
			return fmt.Errorf("cluster: empty node address")
		}
		if seen[n] {
			return fmt.Errorf("cluster: duplicate node %q", n)
		}
		seen[n] = true
	}
	return nil
}
