// Package cluster scales the cached service horizontally: a consistent-hash
// ring maps keys to member nodes, and Client routes requests over one
// pipelined wire connection per node, fanning STATS/REHASH out to all
// members.
//
// The ring is the cluster-level analogue of the paper's online rehash. A
// single node redraws its *intra-node* hash and migrates bucket contents
// incrementally (Section 6.1); the cluster redraws its *inter-node* key
// placement when membership changes, and consistent hashing bounds the key
// movement the same way incremental migration bounds per-miss work: adding
// or removing one of n nodes relocates only ~1/n of the key space instead
// of rehashing everything. RemoveNode completes the analogy by migrating
// the departing node's residents to their new owners under live traffic,
// with every key either moved or accounted for by an eviction counter —
// the same no-silent-loss discipline the incremental rehash keeps.
//
// Keyspaces can be replicated R-ways (Options.Replicas): a key's owners
// are the ring's first R distinct members clockwise from its hash
// (Ring.OwnersFor), writes fan out to all of them under a configurable
// quorum, reads fall back through the set on a miss or node failure, and
// background read repair regenerates stale or missing copies — so losing
// a node loses no reads, and retiring one (alive or crashed) needs no
// migration drain.
//
// Membership itself is epoch-versioned and self-converging: every server
// stores the latest topology pushed at it, stamps its epoch into every
// response, and serves it back via MEMBERS — so a router bootstraps from
// one seed address (Options.Bootstrap), detects membership changes by the
// epochs piggybacked on its normal traffic, and refreshes without polling
// or operator fan-out. AddNode additionally warms the newcomer up by
// streaming its share out of the existing owners (chunked KEYS +
// repair-SETs), killing the post-join miss burst. See ARCHITECTURE.md for
// the full replication, topology and wire-protocol story.
package cluster

import (
	"fmt"
	"sort"

	"repro/internal/hashfn"
)

// DefaultVNodes is the virtual-node count used when Options.VNodes is zero.
// At 128 points per member the peak-to-mean ownership imbalance across a
// handful of nodes stays within a few percent, while ring lookups remain a
// binary search over at most a few thousand points.
const DefaultVNodes = 128

// Ring is a consistent-hash ring with virtual nodes: each member owns
// VNodes pseudo-random points on a 64-bit circle, a key belongs to the
// first point clockwise from its hash, and a key's R-way replica set is
// the first R distinct members encountered on that walk. Virtual nodes
// keep ownership shares within a few percent of uniform and make the
// movement caused by one membership change proportional to the departing
// or arriving member's share. A Ring is not safe for concurrent use;
// Client guards its ring with a lock.
type Ring struct {
	vnodes int
	nodes  map[string]bool
	points []point // sorted by (hash, node)
}

type point struct {
	hash uint64
	node string
}

// NewRing returns a ring placing vnodes virtual points per member (0 means
// DefaultVNodes), populated with the given nodes.
func NewRing(vnodes int, nodes ...string) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{vnodes: vnodes, nodes: make(map[string]bool)}
	for _, n := range nodes {
		r.Add(n)
	}
	return r
}

// nodeHash folds a node name into a 64-bit seed via FNV-1a, then mixes in
// the replica index so virtual points scatter independently.
func nodeHash(node string, replica int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(node); i++ {
		h ^= uint64(node[i])
		h *= prime64
	}
	return hashfn.Mix64(h ^ uint64(replica)*0x9e3779b97f4a7c15)
}

// Add inserts node's virtual points. Adding a present node is a no-op.
func (r *Ring) Add(node string) {
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, point{hash: nodeHash(node, i), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
}

// Remove deletes node's virtual points. Removing an absent node is a no-op.
func (r *Ring) Remove(node string) {
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Node returns the member owning key: the first virtual point clockwise
// from the key's hash. It reports false only on an empty ring.
func (r *Ring) Node(key uint64) (string, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	return r.points[r.search(key)].node, true
}

// search returns the index of the first virtual point clockwise from the
// key's hash. Caller has checked the ring is non-empty.
func (r *Ring) search(key uint64) int {
	h := hashfn.Mix64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap around
	}
	return i
}

// OwnersFor returns key's replica set: the first n distinct members walking
// clockwise from the key's hash, primary first. OwnersFor(key, 1) is
// Node(key). If the ring has fewer than n members, every member is an
// owner. The result is nil only on an empty ring.
//
// Because each member's virtual points are interleaved with every other
// member's, the R-1 backup owners of a key are effectively an independent
// pseudo-random choice per key — replica load spreads instead of shadowing
// whole nodes, and membership changes perturb owner sets by at most one
// member per key.
func (r *Ring) OwnersFor(key uint64, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	owners := make([]string, 0, n)
	start := r.search(key)
	for i := 0; len(owners) < n; i++ {
		node := r.points[(start+i)%len(r.points)].node
		if !contains(owners, node) {
			owners = append(owners, node)
		}
	}
	return owners
}

// contains reports whether owners already lists node. Replica sets are tiny
// (R is single-digit), so a linear scan beats a map.
func contains(owners []string, node string) bool {
	for _, o := range owners {
		if o == node {
			return true
		}
	}
	return false
}

// Nodes returns the members in sorted order.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// NumNodes returns the member count.
func (r *Ring) NumNodes() int { return len(r.nodes) }

// Sample estimates the primary-ownership share of each member by routing n
// pseudo-random keys (deterministic in seed) and counting owners. It is how
// tests bound the key movement of a membership change; cmd/cachecluster
// reports balance with SampleOwners so replicated shares still sum to 100%.
func (r *Ring) Sample(n int, seed uint64) map[string]int {
	out := make(map[string]int, len(r.nodes))
	s := hashfn.NewSeedSequence(seed)
	for i := 0; i < n; i++ {
		if node, ok := r.Node(s.Next()); ok {
			out[node]++
		}
	}
	return out
}

// SampleOwners estimates each member's share of replica-set slots: n
// pseudo-random keys are routed, every member of each key's R-way owner set
// is counted, and the counts sum to n × min(R, members). Dividing by that
// total reports per-replica-set balance — the right denominator when each
// key resides on R nodes, where a per-key denominator would overstate
// residency R-fold.
func (r *Ring) SampleOwners(n, replicas int, seed uint64) map[string]int {
	out := make(map[string]int, len(r.nodes))
	s := hashfn.NewSeedSequence(seed)
	for i := 0; i < n; i++ {
		for _, node := range r.OwnersFor(s.Next(), replicas) {
			out[node]++
		}
	}
	return out
}

// Validate checks a vnodes/nodes configuration before dialing.
func Validate(vnodes int, nodes []string) error {
	if vnodes < 0 {
		return fmt.Errorf("cluster: vnodes %d must not be negative", vnodes)
	}
	if len(nodes) == 0 {
		return fmt.Errorf("cluster: no member nodes")
	}
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if n == "" {
			return fmt.Errorf("cluster: empty node address")
		}
		if seen[n] {
			return fmt.Errorf("cluster: duplicate node %q", n)
		}
		seen[n] = true
	}
	return nil
}

// ValidateReplication checks an R/W replication configuration against the
// member count before dialing. replicas 0 means unreplicated (R = 1);
// quorum 0 means all replicas (W = R).
func ValidateReplication(replicas, quorum, members int) error {
	if replicas < 0 {
		return fmt.Errorf("cluster: replicas %d must not be negative", replicas)
	}
	if replicas > members {
		return fmt.Errorf("cluster: replicas %d exceeds %d members", replicas, members)
	}
	r := replicas
	if r == 0 {
		r = 1
	}
	if quorum < 0 {
		return fmt.Errorf("cluster: write quorum %d must not be negative", quorum)
	}
	if quorum > r {
		return fmt.Errorf("cluster: write quorum %d exceeds %d replicas", quorum, r)
	}
	return nil
}
