package wire

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"strings"
	"testing"
)

func TestRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{Op: OpGet, Key: 42},
		{Op: OpSet, Key: 7, Value: []byte("hello world")},
		{Op: OpSet, Key: 8, Value: nil},                                    // empty value is legal
		{Op: OpSet, Key: 9, Flags: SetFlagRepair, Value: []byte("repair")}, // flagged maintenance write
		{Op: OpDel, Key: 1 << 60},
		{Op: OpStats, Detail: true},
		{Op: OpStats, Detail: false},
		{Op: OpRehash},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, req := range reqs {
		if err := w.WriteRequest(req); err != nil {
			t.Fatalf("write %v: %v", req.Op, err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	for i, want := range reqs {
		got, err := r.ReadRequest()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got.Op != want.Op || got.Key != want.Key || got.Detail != want.Detail || got.Flags != want.Flags {
			t.Fatalf("request %d = %+v, want %+v", i, got, want)
		}
		if !bytes.Equal(got.Value, want.Value) {
			t.Fatalf("request %d value = %q, want %q", i, got.Value, want.Value)
		}
	}
	if _, err := r.ReadRequest(); err == nil {
		t.Fatal("expected EOF after last request")
	}
}

func TestResponseRoundTrip(t *testing.T) {
	stats := &Stats{
		Hits: 10, Misses: 3, Evictions: 2, ConflictEvictions: 1, FlushEvictions: 5,
		Rehashes: 1, Pending: 7, Len: 90, Capacity: 128, Alpha: 8, Buckets: 16,
		Migrating: true,
		Shards: []ShardStat{
			{Hits: 4, Misses: 1, Evictions: 1, Len: 8},
			{Hits: 6, Misses: 2, Evictions: 1, Len: 7},
		},
	}
	resps := []Response{
		{Status: StatusHit, Value: []byte("payload")},
		{Status: StatusMiss},
		{Status: StatusOK, Evicted: true},
		{Status: StatusOK, Evicted: false},
		{Status: StatusStats, Stats: stats},
		{Status: StatusStats, Stats: &Stats{Capacity: 64}}, // no shards
		{Status: StatusError, Err: "boom"},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, resp := range resps {
		if err := w.WriteResponse(resp); err != nil {
			t.Fatalf("write %v: %v", resp.Status, err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	for i, want := range resps {
		got, err := r.ReadResponse()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got.Status != want.Status || got.Evicted != want.Evicted || got.Err != want.Err {
			t.Fatalf("response %d = %+v, want %+v", i, got, want)
		}
		if !bytes.Equal(got.Value, want.Value) {
			t.Fatalf("response %d value = %q, want %q", i, got.Value, want.Value)
		}
		if want.Stats != nil {
			if got.Stats == nil {
				t.Fatalf("response %d missing stats", i)
			}
			if !reflect.DeepEqual(got.Stats, want.Stats) {
				t.Fatalf("response %d stats = %+v, want %+v", i, got.Stats, want.Stats)
			}
		}
	}
}

func TestPreamble(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WritePreamble(); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := NewReader(&buf).ReadPreamble(); err != nil {
		t.Fatalf("good preamble rejected: %v", err)
	}

	if err := NewReader(strings.NewReader("XXXX\x01\x00\x00\x00")).ReadPreamble(); err == nil {
		t.Fatal("bad magic accepted")
	}
	if err := NewReader(strings.NewReader(Magic + "\x99\x00\x00\x00")).ReadPreamble(); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], MaxFrame+1)
	r := NewReader(bytes.NewReader(hdr[:]))
	if _, err := r.ReadRequest(); err == nil {
		t.Fatal("oversize frame accepted")
	}
}

func TestMalformedRequestRejected(t *testing.T) {
	frame := func(body []byte) *Reader {
		var buf bytes.Buffer
		var ln [4]byte
		binary.LittleEndian.PutUint32(ln[:], uint32(len(body)))
		buf.Write(ln[:])
		buf.Write(body)
		return NewReader(&buf)
	}
	// A GET with a 3-byte key must be rejected.
	if _, err := frame([]byte{byte(OpGet), 1, 2, 3}).ReadRequest(); err == nil {
		t.Fatal("short GET accepted")
	}
	// A SET without a flags byte (the version-1 layout) must be rejected.
	if _, err := frame(append([]byte{byte(OpSet)}, make([]byte, 8)...)).ReadRequest(); err == nil {
		t.Fatal("flagless SET accepted")
	}
	// A SET with undefined flag bits must be rejected.
	body := append([]byte{byte(OpSet)}, make([]byte, 8)...)
	body = append(body, 0x80, 'v')
	if _, err := frame(body).ReadRequest(); err == nil {
		t.Fatal("SET with undefined flag bits accepted")
	}
}
