package wire

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// testTraceID builds a distinct nonzero trace ID for tests.
func testTraceID(b byte) (id telemetry.TraceID) {
	id[0] = b
	id[15] = ^b
	return id
}

func TestRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{Op: OpGet, Key: 42},
		{Op: OpSet, Key: 7, Value: []byte("hello world")},
		{Op: OpSet, Key: 8, Value: nil},                                                   // empty value is legal
		{Op: OpSet, Key: 9, Flags: SetFlagRepair, Value: []byte("repair")},                // flagged maintenance write
		{Op: OpSet, Key: 10, Flags: SetFlagRepair | SetFlagAsync, Value: []byte("async")}, // queued maintenance write
		{Op: OpSet, Key: 11, Flags: SetFlagRepair | SetFlagVersioned, Version: 1 << 50, Value: []byte("conditional")},
		{Op: OpSet, Key: 12, Flags: SetFlagRepair | SetFlagAsync | SetFlagVersioned, Version: 7, Value: nil},
		{Op: OpDel, Key: 1 << 60},
		{Op: OpStats, Detail: true},
		{Op: OpStats, Detail: false},
		{Op: OpRehash},
		{Op: OpMembers},
		{Op: OpTopology, Topology: Topology{Epoch: 7, Members: []string{"a:1", "b:2"}}},
		// v6 traced requests: context rides between the opcode byte and the
		// op fields, sampled or not, on reads and maintenance writes alike.
		{Op: OpGet, Key: 42, Traced: true, Trace: TraceContext{ID: testTraceID(1), Flags: TraceFlagSampled}},
		{Op: OpGet, Key: 43, Traced: true, Trace: TraceContext{ID: testTraceID(2)}}, // propagated, unsampled
		{Op: OpSet, Key: 44, Value: []byte("traced"), Traced: true, Trace: TraceContext{ID: testTraceID(3), Flags: TraceFlagSampled}},
		{Op: OpSet, Key: 45, Flags: SetFlagRepair | SetFlagAsync | SetFlagVersioned, Version: 9,
			Value: []byte("traced repair"), Traced: true, Trace: TraceContext{ID: testTraceID(4), Flags: TraceFlagSampled}},
		{Op: OpDel, Key: 46, Traced: true, Trace: TraceContext{ID: testTraceID(5), Flags: TraceFlagSampled}},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, req := range reqs {
		if err := w.WriteRequest(req); err != nil {
			t.Fatalf("write %v: %v", req.Op, err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	for i, want := range reqs {
		got, err := r.ReadRequest()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got.Op != want.Op || got.Key != want.Key || got.Detail != want.Detail || got.Flags != want.Flags || got.Version != want.Version {
			t.Fatalf("request %d = %+v, want %+v", i, got, want)
		}
		if got.Traced != want.Traced || got.Trace != want.Trace {
			t.Fatalf("request %d trace = %v/%+v, want %v/%+v", i, got.Traced, got.Trace, want.Traced, want.Trace)
		}
		if !bytes.Equal(got.Value, want.Value) {
			t.Fatalf("request %d value = %q, want %q", i, got.Value, want.Value)
		}
		if !reflect.DeepEqual(got.Topology.Members, want.Topology.Members) || got.Topology.Epoch != want.Topology.Epoch {
			t.Fatalf("request %d topology = %+v, want %+v", i, got.Topology, want.Topology)
		}
	}
	if _, err := r.ReadRequest(); err == nil {
		t.Fatal("expected EOF after last request")
	}
}

func TestResponseRoundTrip(t *testing.T) {
	stats := &Stats{
		Hits: 10, Misses: 3, Evictions: 2, ConflictEvictions: 1, FlushEvictions: 5,
		Rehashes: 1, Pending: 7, Len: 90, Capacity: 128, Alpha: 8, Buckets: 16,
		RepairQueueDepth: 12, RepairsShed: 2,
		Migrating: true,
		Shards: []ShardStat{
			{Hits: 4, Misses: 1, Evictions: 1, Len: 8},
			{Hits: 6, Misses: 2, Evictions: 1, Len: 7},
		},
	}
	resps := []Response{
		{Status: StatusHit, Epoch: 5, Value: []byte("payload")},
		{Status: StatusHit, Epoch: 5, Version: 1 << 40, Value: []byte("versioned payload")},
		{Status: StatusMiss, Epoch: 1 << 50},
		{Status: StatusOK, Evicted: true},
		{Status: StatusOK, Evicted: false, Epoch: 9},
		{Status: StatusOK, Evicted: true, Epoch: 9, Version: 12345},
		{Status: StatusVersionStale, Epoch: 2, Version: 1 << 41},
		{Status: StatusStats, Stats: stats, Epoch: 3},
		{Status: StatusStats, Stats: &Stats{Capacity: 64}}, // no shards
		{Status: StatusError, Err: "boom", Epoch: 4},
		{Status: StatusMembers, Epoch: 7, Topology: Topology{Epoch: 7, Members: []string{"n1:7070", "n2:7070"}}},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, resp := range resps {
		if err := w.WriteResponse(resp); err != nil {
			t.Fatalf("write %v: %v", resp.Status, err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	for i, want := range resps {
		got, err := r.ReadResponse()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got.Status != want.Status || got.Evicted != want.Evicted || got.Err != want.Err || got.Epoch != want.Epoch || got.Version != want.Version {
			t.Fatalf("response %d = %+v, want %+v", i, got, want)
		}
		if !reflect.DeepEqual(got.Topology.Members, want.Topology.Members) || got.Topology.Epoch != want.Topology.Epoch {
			t.Fatalf("response %d topology = %+v, want %+v", i, got.Topology, want.Topology)
		}
		if !bytes.Equal(got.Value, want.Value) {
			t.Fatalf("response %d value = %q, want %q", i, got.Value, want.Value)
		}
		if want.Stats != nil {
			if got.Stats == nil {
				t.Fatalf("response %d missing stats", i)
			}
			if !reflect.DeepEqual(got.Stats, want.Stats) {
				t.Fatalf("response %d stats = %+v, want %+v", i, got.Stats, want.Stats)
			}
		}
	}
}

func TestPreamble(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WritePreamble(); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := NewReader(&buf).ReadPreamble(); err != nil {
		t.Fatalf("good preamble rejected: %v", err)
	}

	if err := NewReader(strings.NewReader("XXXX\x01\x00\x00\x00")).ReadPreamble(); err == nil {
		t.Fatal("bad magic accepted")
	}
	if err := NewReader(strings.NewReader(Magic + "\x99\x00\x00\x00")).ReadPreamble(); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], MaxFrame+1)
	r := NewReader(bytes.NewReader(hdr[:]))
	if _, err := r.ReadRequest(); err == nil {
		t.Fatal("oversize frame accepted")
	}
}

func TestMalformedRequestRejected(t *testing.T) {
	frame := func(body []byte) *Reader {
		var buf bytes.Buffer
		var ln [4]byte
		binary.LittleEndian.PutUint32(ln[:], uint32(len(body)))
		buf.Write(ln[:])
		buf.Write(body)
		return NewReader(&buf)
	}
	// A GET with a 3-byte key must be rejected.
	if _, err := frame([]byte{byte(OpGet), 1, 2, 3}).ReadRequest(); err == nil {
		t.Fatal("short GET accepted")
	}
	// A SET without a flags byte (the version-1 layout) must be rejected.
	if _, err := frame(append([]byte{byte(OpSet)}, make([]byte, 8)...)).ReadRequest(); err == nil {
		t.Fatal("flagless SET accepted")
	}
	// A SET with undefined flag bits must be rejected.
	body := append([]byte{byte(OpSet)}, make([]byte, 8)...)
	body = append(body, 0x80, 'v')
	if _, err := frame(body).ReadRequest(); err == nil {
		t.Fatal("SET with undefined flag bits accepted")
	}
	// ASYNC is only defined together with REPAIR.
	body = append([]byte{byte(OpSet)}, make([]byte, 8)...)
	body = append(body, byte(SetFlagAsync), 'v')
	if _, err := frame(body).ReadRequest(); err == nil {
		t.Fatal("SET with ASYNC but not REPAIR accepted")
	}
	// VERSIONED is only defined together with REPAIR: user SETs must stay
	// unconditional, so a conditional user write is a protocol error.
	body = append([]byte{byte(OpSet)}, make([]byte, 8)...)
	body = append(body, byte(SetFlagVersioned))
	body = append(body, make([]byte, 8)...) // version
	body = append(body, 'v')
	if _, err := frame(body).ReadRequest(); err == nil {
		t.Fatal("SET with VERSIONED but not REPAIR accepted")
	}
	// A VERSIONED SET whose body ends before the version field.
	body = append([]byte{byte(OpSet)}, make([]byte, 8)...)
	body = append(body, byte(SetFlagRepair|SetFlagVersioned), 1, 2, 3)
	if _, err := frame(body).ReadRequest(); err == nil {
		t.Fatal("VERSIONED SET with a truncated version field accepted")
	}
	// A traced frame whose body ends inside the trace context.
	body = []byte{byte(OpGet) | OpFlagTraced, 1, 2, 3}
	if _, err := frame(body).ReadRequest(); err == nil {
		t.Fatal("traced GET with a truncated trace context accepted")
	}
	// A trace context with a zero trace ID is a bug, not a frame.
	body = append([]byte{byte(OpGet) | OpFlagTraced}, make([]byte, TraceContextLen)...)
	body = append(body, make([]byte, 8)...) // key
	if _, err := frame(body).ReadRequest(); err == nil {
		t.Fatal("traced GET with a zero trace ID accepted")
	}
	// Undefined trace-flag bits must be rejected.
	body = append([]byte{byte(OpGet) | OpFlagTraced}, 0xAB)
	body = append(body, make([]byte, 15)...) // rest of the ID
	body = append(body, 0x80)                // undefined trace flag bit
	body = append(body, make([]byte, 8)...)  // key
	if _, err := frame(body).ReadRequest(); err == nil {
		t.Fatal("trace context with undefined flag bits accepted")
	}
	// The encoder refuses the same two.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteRequest(Request{Op: OpGet, Traced: true}); err == nil {
		t.Fatal("encoder accepted a zero trace ID")
	}
	if err := w.WriteRequest(Request{Op: OpGet, Traced: true, Trace: TraceContext{ID: testTraceID(1), Flags: 0x80}}); err == nil {
		t.Fatal("encoder accepted undefined trace flag bits")
	}
}

// TestTopologyValidate pins the payload sanity rules shared by encoder and
// decoder.
func TestTopologyValidate(t *testing.T) {
	long := strings.Repeat("x", MaxAddrLen+1)
	many := make([]string, MaxMembers+1)
	for i := range many {
		many[i] = fmt.Sprintf("n%d", i)
	}
	cases := []struct {
		name string
		t    Topology
		ok   bool
	}{
		{"empty", Topology{}, true},
		{"normal", Topology{Epoch: 3, Members: []string{"a:1", "b:1"}}, true},
		{"dup", Topology{Members: []string{"a:1", "a:1"}}, false},
		{"empty addr", Topology{Members: []string{""}}, false},
		{"oversize addr", Topology{Members: []string{long}}, false},
		{"too many", Topology{Members: many}, false},
	}
	for _, c := range cases {
		if err := c.t.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
	// A malformed payload must fail to decode, not panic or alias garbage:
	// claim 2 members but deliver bytes for half of one.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteResponse(Response{Status: StatusMembers, Topology: Topology{Epoch: 1, Members: []string{"abc"}}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Frame body layout: len(4) status(1) epoch(8) tEpoch(8) count(4)...;
	// bump the member count to 2 without adding bytes.
	binary.LittleEndian.PutUint32(raw[4+1+8+8:], 2)
	if _, err := NewReader(bytes.NewReader(raw)).ReadResponse(); err == nil {
		t.Fatal("truncated topology payload accepted")
	}
}
