// Package wire defines the compact binary protocol spoken between the
// cached server (internal/server, cmd/cached) and its clients
// (cmd/cacheload, the cluster router in internal/cluster, and the load
// harness in internal/load). The authoritative byte-level specification
// lives in ARCHITECTURE.md at the repository root; a spec test
// (spec_test.go) keeps that document and this package in lockstep.
//
// The protocol is deliberately in the same spirit as the SATR trace format:
// little-endian, versioned, and trivially parseable. A connection begins
// with a 8-byte client preamble:
//
//	magic   [4]byte  "SACW" (Set-Associative Cache Wire)
//	version uint32   8
//
// after which both directions carry length-prefixed frames:
//
//	length  uint32   body length in bytes (≤ MaxFrame)
//	body    length × byte
//
// A request body is an opcode byte followed by opcode-specific fields; the
// opcode byte's high bit (OpFlagTraced) is a frame flag marking a trace
// context — 16-byte trace ID plus a trace-flag byte — inserted between the
// opcode byte and the opcode fields, so untraced requests pay zero extra
// bytes. A response body is a status byte, the server's topology epoch
// (uint64), then status-specific fields. Responses are returned in request
// order, so clients may pipeline: write any number of request frames
// before reading the matching responses. The server flushes its write
// buffer whenever it runs out of buffered requests, making batched round
// trips cheap.
//
//	GET      key uint64                        → Hit version, value | Miss
//	GETL     key uint64                        → Hit version, value |
//	                                             Lease token, TTL [, stale hint]
//	SET      key uint64, flags byte,
//	         [version uint64 if VERSIONED],
//	         [token uint64 if LEASE],
//	         value                             → OK evicted, version |
//	                                             VersionStale stored version |
//	                                             LeaseLost stored version
//	DEL      key uint64                        → OK evicted, version
//	STATS    detail byte(0|1)                  → Stats payload (see Stats)
//	REHASH                                     → OK
//	KEYS                                       → stream of Keys frames of
//	                                             {key, version, tombstone}
//	                                             records; a frame with count 0
//	                                             terminates
//	MEMBERS                                    → Members topology payload
//	TOPOLOGY topology payload                  → Members (the view after apply)
//	METRICS  flags byte                        → Metrics payload (see Metrics)
//	HINT     target addr, key uint64,
//	         tombstone byte, version uint64,
//	         value                             → OK
//
// Version 2 added the SET flags byte between key and value. Its first
// defined bit, SetFlagRepair, marks replica-maintenance writes — read
// repair, warm-up and migration re-SETs issued by the cluster router — so
// servers can account for them separately from user traffic (Stats.Sets vs
// Stats.RepairSets) instead of recounting internal churn as load.
//
// Version 3 made cluster topology a first-class wire concept:
//
//   - Every response carries the server's topology epoch right after the
//     status byte, so a router piggybacks staleness detection on normal
//     traffic: a response epoch above its own means the membership changed
//     and a MEMBERS refresh is due.
//   - MEMBERS returns the server's current member list plus epoch, and
//     TOPOLOGY pushes one at it (adopted only if it is newer; the response
//     reports the view the server actually holds). See Topology.
//   - KEYS became a stream of bounded chunk frames ending in a terminator
//     (count 0), so enumerating a node is no longer capped by MaxFrame —
//     migration and warm-up scale past millions of residents.
//   - SetFlagAsync (valid only with SetFlagRepair) lets maintenance writes
//     be applied through the server's bounded background queue, shed under
//     overload, so repair floods never stall user traffic.
//
// KEYS is the migration and warm-up primitive for the cluster router
// (internal/cluster): removing a node enumerates its residents and re-SETs
// them on their new owners; adding one streams the newcomer's share into
// it. The snapshot is racy — concurrent traffic may add or evict entries
// while it is taken.
//
// Version 4 made values versioned so maintenance writes can no longer
// reinstate a value a concurrent user SET already superseded (the
// lost-update race the v3 spec documented as a deliberate caveat):
//
//   - Every stored value carries a monotonically increasing per-key
//     version, assigned by the server on unconditional SETs. HIT responses
//     carry the stored version before the value; OK responses to a SET
//     carry the version the write was stored under.
//   - SetFlagVersioned (valid only with SetFlagRepair) makes a SET
//     conditional: the request carries the version the writer observed,
//     and the server applies it only when that version is strictly newer
//     than the one it holds. A rejected write answers VERSION_STALE (with
//     the newer stored version) and is counted in Stats.StaleRepairs.
//     User SETs stay unconditional last-writer-wins.
//
// Version 5 put the server's flight recorder on the wire:
//
//   - METRICS returns server-side telemetry — per-op service-time
//     histograms (log-linear buckets, see internal/telemetry), scalar
//     counters (bytes in/out, connections, slow-op total), and the
//     slow-op ring — with a detail-flag byte selecting sections, so
//     latency distributions are observable per node and mergeable into a
//     cluster view without client-side inference.
//   - The STATS payload gained RepairQueueHighWater, the maximum async
//     maintenance queue depth since start, because the point-in-time
//     RepairQueueDepth hides shed-risk peaks between polls.
//
// Version 6 made requests traceable end to end:
//
//   - Any request may carry a trace context (OpFlagTraced on the opcode
//     byte, then TraceContext: a 16-byte ID and a flag byte whose
//     TraceFlagSampled bit asks servers to record spans). The cluster
//     router mints one context per sampled batch and propagates it across
//     fan-out, fallback reads, quorum writes, and async repair-queue
//     entries, so a repair applied seconds later still names the request
//     that caused it.
//   - METRICS gained the TRACES section (the server's sampled-span ring;
//     see telemetry.Span) and the HOTKEYS section (per-op-class
//     space-saving sketches of the hottest keys; see telemetry.TopK).
//   - The slow-op record grew a trailing 16-byte trace ID (all-zero when
//     the slow op was untraced), joining slow ops to their cluster-side
//     cause.
//
// Version 7 added the lease/singleflight miss path — memcached-style herd
// suppression for hot keys (Nishtala et al., NSDI'13):
//
//   - GETL (OpGetLease) is GET with lease semantics on a miss: the first
//     misser is handed a LEASE response carrying a nonzero token and the
//     lease TTL, making it the one caller entitled to load the origin and
//     fill the key. Concurrent missers get LEASE with token 0 — either
//     bare (back off briefly and retry; the filler is coming) or with a
//     stale hint: the last value the lease machinery saw for the key,
//     flagged stale, with its version, so a storm of missers is served
//     *something* without stampeding the origin. GETL on a resident key is
//     byte-identical to GET: it answers HIT and touches no lease state.
//   - SetFlagLease marks a SET as a lease fill: the request carries the
//     nonzero token between the flags byte and the value, and the server
//     applies the write only while that exact lease is outstanding and the
//     key's version is still what the grant observed. A fill that lost its
//     lease — expired, invalidated by a concurrent user SET or DEL, or
//     superseded by a newer grant — answers LEASE_LOST with the stored
//     version (0 when unknown) and changes nothing: like VERSION_STALE it
//     is a refusal, not a failure.
//   - The STATS payload gained LeasesGranted, LeasesExpired and
//     StaleServes.
//
// Version 8 made delete a versioned write, closing the last documented
// resurrection path and unblocking the availability layers built on it:
//
//   - DEL no longer erases history: the server stores a tombstone record
//     under a freshly assigned version (reaped after a TTL), and the DEL
//     response is always OK — the evicted byte reports whether a live
//     value was present, and the version field carries the tombstone's
//     assigned version, so routers can propagate the delete to replicas
//     and hints as an ordinary conditional versioned write.
//   - SetFlagTombstone (valid only with VERSIONED, hence REPAIR) makes a
//     maintenance SET carry a delete instead of a value: the body has an
//     empty value and the server stores a tombstone under the carried
//     version iff it is strictly newer than what it holds. Replica
//     repair, hint replay and anti-entropy use it so a delete can never
//     lose to an older live copy.
//   - KEYS frames stream {key uint64, version uint64, tombstone byte}
//     records instead of bare keys, so replica comparison — the
//     anti-entropy sweep, warm-up, migration — is one pass with no
//     per-key version round trips, and tombstones travel with the rest.
//   - HINT (OpHint) queues a hinted-handoff record on the receiving
//     server: a write (or delete) that could not reach its intended
//     owner, stored under a byte budget and replayed to the target — as
//     a conditional versioned write — when it becomes reachable again.
//   - The STATS payload gained Tombstones, TombstonesReaped, HintsQueued
//     and HintsReplayed.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"time"

	"repro/internal/telemetry"
)

// ErrVersionMismatch is wrapped by ReadPreamble when the peer speaks a
// protocol revision other than Version. The server detects it with
// errors.Is and answers with a StatusError frame naming both revisions
// before closing the connection — the ERROR layout (status byte, epoch,
// message) has been stable since v3, so a v3 client reads a clear error
// instead of hanging on a silently closed connection. (v1/v2 peers
// predate the epoch field and see its bytes as message prefix; they still
// get a framed ERROR rather than a hang.)
var ErrVersionMismatch = errors.New("unsupported protocol version")

// Protocol constants.
const (
	// Magic is the 4-byte connection preamble prefix.
	Magic = "SACW"
	// Version is the protocol revision; the preamble carries it and servers
	// reject mismatches. Version 2 added the SET flags byte and the
	// Sets/RepairSets counters in the STATS payload; version 3 added the
	// topology epoch to every response, the MEMBERS and TOPOLOGY ops,
	// chunked KEYS streaming, the ASYNC SET flag, and the
	// RepairQueueDepth/RepairsShed counters; version 4 added per-key value
	// versions (in HIT and OK responses), the VERSIONED SET flag with the
	// VERSION_STALE status for conditional maintenance writes, and the
	// StaleRepairs counter; version 5 added the METRICS op (server-side
	// latency histograms, counters, and the slow-op log) and the
	// RepairQueueHighWater STATS counter; version 6 added the per-request
	// trace context (OpFlagTraced), the TRACES and HOTKEYS METRICS
	// sections, and the slow-op record's trailing trace ID; version 7
	// added the lease miss path — the GETL op, the LEASE and LEASE_LOST
	// statuses, the LEASE SET flag with its token field, and the
	// LeasesGranted/LeasesExpired/StaleServes counters; version 8 made
	// delete a versioned write — DEL answers OK with the assigned
	// tombstone version, the TOMBSTONE SET flag carries deletes through
	// maintenance writes, KEYS streams {key, version, tombstone} records,
	// the HINT op queues hinted handoffs, and the STATS payload gained
	// the Tombstones/TombstonesReaped/HintsQueued/HintsReplayed counters.
	Version = 8
	// MaxFrame bounds a frame body; it caps both value sizes and the damage
	// a corrupt length prefix can do.
	MaxFrame = 16 << 20
	// DefaultKeysChunk is the key count per KEYS stream frame servers use
	// unless configured otherwise: 64Ki keys is a 512KiB frame, far below
	// MaxFrame, and a full enumeration costs one frame per chunk rather
	// than one unbounded frame per node.
	DefaultKeysChunk = 1 << 16
	// MaxMembers bounds the member count of a topology payload.
	MaxMembers = 4096
	// MaxAddrLen bounds one member address in a topology payload.
	MaxAddrLen = 255
)

// Topology is a cluster member list stamped with a monotonically increasing
// epoch. Servers hold one (pushed by routers or joining peers via the
// TOPOLOGY op, served back via MEMBERS) and stamp its epoch into every
// response, which is how clients detect membership changes without polling.
// A server adopts a pushed topology only when it is strictly newer than the
// one it holds (or when it holds none), so stale pushes cannot roll the
// cluster view backwards.
type Topology struct {
	// Epoch is the version of the member list; it only ever increases.
	Epoch uint64
	// Members are the cluster node addresses, conventionally sorted.
	Members []string
}

// Validate rejects a topology whose member list could not have been
// produced by a conforming peer: too many members, empty or oversized
// addresses, or duplicates.
func (t Topology) Validate() error {
	if len(t.Members) > MaxMembers {
		return fmt.Errorf("wire: topology has %d members, max %d", len(t.Members), MaxMembers)
	}
	seen := make(map[string]bool, len(t.Members))
	for _, m := range t.Members {
		if m == "" {
			return fmt.Errorf("wire: topology has an empty member address")
		}
		if len(m) > MaxAddrLen {
			return fmt.Errorf("wire: topology member address %d bytes, max %d", len(m), MaxAddrLen)
		}
		if seen[m] {
			return fmt.Errorf("wire: topology lists member %q twice", m)
		}
		seen[m] = true
	}
	return nil
}

// appendTopology encodes t: epoch, member count, then length-prefixed
// addresses. The same layout serves TOPOLOGY requests and MEMBERS
// responses.
func appendTopology(body []byte, t Topology) []byte {
	body = binary.LittleEndian.AppendUint64(body, t.Epoch)
	body = binary.LittleEndian.AppendUint32(body, uint32(len(t.Members)))
	for _, m := range t.Members {
		body = binary.LittleEndian.AppendUint16(body, uint16(len(m)))
		body = append(body, m...)
	}
	return body
}

// parseTopology decodes a topology payload and validates it.
func parseTopology(body []byte) (Topology, error) {
	if len(body) < 12 {
		return Topology{}, fmt.Errorf("wire: topology payload %d bytes, want ≥12", len(body))
	}
	t := Topology{Epoch: binary.LittleEndian.Uint64(body)}
	n := int(binary.LittleEndian.Uint32(body[8:]))
	if n > MaxMembers {
		return Topology{}, fmt.Errorf("wire: topology claims %d members, max %d", n, MaxMembers)
	}
	body = body[12:]
	t.Members = make([]string, 0, n)
	for i := 0; i < n; i++ {
		if len(body) < 2 {
			return Topology{}, fmt.Errorf("wire: topology payload truncated at member %d", i)
		}
		l := int(binary.LittleEndian.Uint16(body))
		body = body[2:]
		if len(body) < l {
			return Topology{}, fmt.Errorf("wire: topology member %d claims %d bytes, %d remain", i, l, len(body))
		}
		t.Members = append(t.Members, string(body[:l]))
		body = body[l:]
	}
	if len(body) != 0 {
		return Topology{}, fmt.Errorf("wire: topology payload has %d trailing bytes", len(body))
	}
	if err := t.Validate(); err != nil {
		return Topology{}, err
	}
	return t, nil
}

// SetFlags is the flag byte carried by every SET request; it is a bit set.
type SetFlags byte

// The defined SET flag bits. Servers reject frames with undefined bits set,
// so the remaining bits stay available for future revisions.
const (
	// SetFlagRepair marks a SET as replica maintenance — a read-repair,
	// warm-up or migration write issued by the cluster router — rather
	// than user traffic. Servers apply it normally but count it under
	// Stats.RepairSets instead of Stats.Sets.
	SetFlagRepair SetFlags = 1 << 0

	// SetFlagAsync, valid only alongside SetFlagRepair, asks the server to
	// apply the write through its bounded background maintenance queue:
	// the OK response means accepted, not yet applied, and the write may
	// be shed (counted in Stats.RepairsShed) when the queue is full.
	// Callers must therefore be prepared to re-issue it later — which the
	// cluster router's read repair is by construction, since the next
	// fallback read of the key schedules a fresh repair. Migration and
	// warm-up writes stay synchronous: their accounting ("every key moved
	// or accounted for") cannot tolerate a silent shed.
	SetFlagAsync SetFlags = 1 << 1

	// SetFlagVersioned, valid only alongside SetFlagRepair, makes the SET
	// conditional on the version the writer observed: the request body
	// carries that version between the flags byte and the value, the server
	// stores the value under it only when it is strictly newer than the
	// version it holds for the key, and a rejected write answers
	// VERSION_STALE instead of OK (counted in Stats.StaleRepairs). This is
	// what keeps a maintenance write — read repair, warm-up, migration, or
	// an entry draining out of the async queue — from reinstating a value a
	// concurrent user SET already superseded. User SETs never carry it:
	// they stay unconditional last-writer-wins and always advance the key's
	// version.
	SetFlagVersioned SetFlags = 1 << 2

	// SetFlagLease marks the SET as a lease fill (v7): the request carries
	// the nonzero lease token — handed to this writer by a LEASE response —
	// between the flags byte and the value, and the server applies the
	// write only while that exact lease is still outstanding and the key's
	// version is unchanged since the grant. A fill whose lease is gone
	// answers LEASE_LOST and stores nothing. A lease fill is user traffic
	// loading the origin on a miss, not replica maintenance, so the flag is
	// invalid in combination with SetFlagRepair (and therefore with ASYNC
	// and VERSIONED).
	SetFlagLease SetFlags = 1 << 3

	// SetFlagTombstone (v8), valid only alongside SetFlagVersioned (and
	// therefore SetFlagRepair), makes the conditional SET carry a delete:
	// the body's value is empty, and the server stores a *tombstone*
	// record under the carried version iff it is strictly newer than the
	// version it holds — exactly the VERSIONED rule, applied to a delete.
	// This is how replica repair, hint replay, the anti-entropy sweep and
	// migration propagate deletes without ever letting an older live copy
	// win. User deletes never carry it: DEL assigns the tombstone's
	// version itself, like a user SET.
	SetFlagTombstone SetFlags = 1 << 4

	// setFlagsDefined masks the bits a conforming frame may set.
	setFlagsDefined = SetFlagRepair | SetFlagAsync | SetFlagVersioned | SetFlagLease | SetFlagTombstone
)

// OpFlagTraced is the frame flag on the request opcode byte (its high
// bit) marking that a TraceContext — TraceContextLen bytes — follows the
// opcode byte before the opcode-specific fields. The low 7 bits stay the
// opcode proper, and untraced requests are byte-identical to v5 frames:
// tracing costs nothing unless a request opts in.
const OpFlagTraced byte = 0x80

// TraceContextLen is the encoded size of a trace context: the 16-byte
// trace ID followed by the trace-flag byte.
const TraceContextLen = 17

// TraceFlags is the flag byte of a trace context; it is a bit set.
type TraceFlags byte

// The defined trace-context flags. Both ends reject undefined bits so
// the remaining bits stay available for future revisions.
const (
	// TraceFlagSampled asks servers on the request's path to record a
	// span for it (telemetry.SpanRing, readable via the METRICS TRACES
	// section). A context without the bit still propagates — downstream
	// writes it causes keep the ID — but records nothing.
	TraceFlagSampled TraceFlags = 1 << 0

	// traceFlagsDefined masks the bits a conforming frame may set.
	traceFlagsDefined = TraceFlagSampled
)

// TraceContext is the per-request trace identity carried by v6 frames:
// minted once by the cluster router, then attached to every wire request
// the original request fans out into — including async repair-queue
// entries applied long after the response went out.
type TraceContext struct {
	// ID is the 16-byte trace identifier; a conforming frame never
	// carries a zero ID.
	ID telemetry.TraceID
	// Flags is the trace-flag byte (TraceFlagSampled et al.).
	Flags TraceFlags
}

// Sampled reports whether the context asks servers to record spans.
func (tc TraceContext) Sampled() bool { return tc.Flags&TraceFlagSampled != 0 }

func (tc TraceContext) validate() error {
	if tc.ID.IsZero() {
		return fmt.Errorf("wire: trace context with a zero trace ID")
	}
	if tc.Flags&^traceFlagsDefined != 0 {
		return fmt.Errorf("wire: trace flags %#02x has undefined bits", byte(tc.Flags))
	}
	return nil
}

// Op is a request opcode.
type Op byte

// The request opcodes.
const (
	OpGet Op = iota + 1
	OpSet
	OpDel
	OpStats
	OpRehash
	OpKeys
	OpMembers
	OpTopology
	OpMetrics
	// OpGetLease (GETL, v7) is GET with lease semantics on a miss: a
	// resident key answers HIT exactly like GET, a miss answers LEASE —
	// granting this caller the fill token, or telling it someone else
	// already holds it (optionally with a stale hint). The body is the
	// same 8-byte key as GET.
	OpGetLease
	// OpHint (HINT, v8) hands the receiving server a hinted-handoff
	// record: a versioned write (or, with the tombstone byte set, a
	// delete) whose intended owner — the target address in the body — was
	// unreachable. The server queues it under a byte budget and replays
	// it to the target as a conditional versioned write once the target
	// is reachable again; over budget, the oldest hints for that target
	// are dropped (the anti-entropy sweep is the backstop). The response
	// is OK.
	OpHint
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpGet:
		return "GET"
	case OpSet:
		return "SET"
	case OpDel:
		return "DEL"
	case OpStats:
		return "STATS"
	case OpRehash:
		return "REHASH"
	case OpKeys:
		return "KEYS"
	case OpMembers:
		return "MEMBERS"
	case OpTopology:
		return "TOPOLOGY"
	case OpMetrics:
		return "METRICS"
	case OpGetLease:
		return "GETL"
	case OpHint:
		return "HINT"
	default:
		return fmt.Sprintf("Op(%d)", byte(o))
	}
}

// Status is a response status code.
type Status byte

// The response statuses.
const (
	StatusHit Status = iota + 1
	StatusMiss
	StatusOK
	StatusStats
	StatusError
	StatusKeys
	StatusMembers
	// StatusVersionStale rejects a VERSIONED SET whose carried version was
	// not strictly newer than the stored one; the body reports the stored
	// (winning) version. It is a refusal, not a failure: the invariant the
	// writer wanted — never overwrite fresher state — held, so callers
	// treat it as a successful no-op.
	StatusVersionStale
	// StatusMetrics carries a METRICS response payload.
	StatusMetrics
	// StatusLease answers a GETL miss (v7). A nonzero token grants this
	// caller the lease: it alone should load the origin and fill the key
	// with a LEASE-flagged SET carrying the token, within the TTL. A zero
	// token means another caller already holds the lease; the body then
	// either carries a stale hint — the last value the lease machinery saw
	// for the key, with its version, flagged stale — or nothing, in which
	// case the caller should back off briefly and retry while the holder
	// fills.
	StatusLease
	// StatusLeaseLost rejects a LEASE fill whose lease is no longer
	// outstanding — expired, invalidated by a concurrent write or DEL, or
	// superseded — or whose key changed version since the grant. The body
	// reports the stored version (0 when the key is absent or the version
	// is unknown). Like VERSION_STALE it is a refusal, not a failure: the
	// invariant the protocol wants — at most one fill lands per lease, and
	// never over fresher state — held.
	StatusLeaseLost
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusHit:
		return "HIT"
	case StatusMiss:
		return "MISS"
	case StatusOK:
		return "OK"
	case StatusStats:
		return "STATS"
	case StatusError:
		return "ERROR"
	case StatusKeys:
		return "KEYS"
	case StatusMembers:
		return "MEMBERS"
	case StatusVersionStale:
		return "VERSION_STALE"
	case StatusMetrics:
		return "METRICS"
	case StatusLease:
		return "LEASE"
	case StatusLeaseLost:
		return "LEASE_LOST"
	default:
		return fmt.Sprintf("Status(%d)", byte(s))
	}
}

// Request is one decoded request frame.
type Request struct {
	// Op is the request opcode.
	Op Op
	// Key is the cache key of a GET, SET or DEL.
	Key uint64
	// Value is the payload of a SET. It aliases the reader's scratch buffer
	// and is only valid until the next Read call.
	Value []byte
	// Flags is the SET flag byte (zero for user writes).
	Flags SetFlags
	// Version is the observed value version a VERSIONED SET carries; it is
	// encoded on the wire only when Flags has SetFlagVersioned.
	Version uint64
	// LeaseToken is the fill token a LEASE SET carries; it is encoded on
	// the wire only when Flags has SetFlagLease, and a conforming frame
	// never carries a zero token (zero is the "no lease" sentinel in LEASE
	// responses).
	LeaseToken uint64
	// Target is the intended owner address of a HINT: the member the
	// hinted write could not reach and should be replayed to.
	Target string
	// Tombstone marks a HINT whose hinted write is a delete; the Value is
	// then empty and the replay carries SetFlagTombstone.
	Tombstone bool
	// Detail asks STATS to include per-shard counters.
	Detail bool
	// Topology is the payload of a TOPOLOGY push.
	Topology Topology
	// MetricsFlags selects the payload sections of a METRICS request; it
	// must name at least one section.
	MetricsFlags MetricsFlags
	// Trace is the request's trace context; meaningful only when Traced.
	Trace TraceContext
	// Traced reports whether the frame carries a trace context
	// (OpFlagTraced was set on the opcode byte).
	Traced bool
}

// KeyRec is one record of a KEYS stream frame (v8): a resident key, the
// version it is stored under, and whether the record is a tombstone — a
// versioned delete still within its reap TTL. Tombstones travel in the
// stream so replica comparison (anti-entropy, warm-up, migration) sees
// deletes with the same one-pass scan it sees values, instead of
// mistaking a deleted key for a missing one.
type KeyRec struct {
	// Key is the cache key.
	Key uint64
	// Version is the version the record is stored under.
	Version uint64
	// Tombstone marks a versioned delete; the key has no value.
	Tombstone bool
}

// Response is one decoded response frame.
type Response struct {
	Status Status
	// Epoch is the responding server's topology epoch; every response
	// carries it, so clients piggyback staleness detection on any traffic.
	Epoch uint64
	// Value is a GET hit's payload; valid until the next Read call.
	Value []byte
	// Version is the stored value version: in a HIT it is the version of
	// the value returned, in an OK replying to an applied SET it is the
	// version the value was stored under (0 when the write was queued —
	// ASYNC — or when replying to DEL or REHASH), and in a VERSION_STALE
	// it is the newer version that won.
	Version uint64
	// Evicted reports whether a SET displaced an entry.
	Evicted bool
	// Stats is the payload of a STATS response.
	Stats *Stats
	// Keys is the payload of one KEYS stream frame — {key, version,
	// tombstone} records since v8; an empty Keys frame terminates the
	// stream.
	Keys []KeyRec
	// Topology is the payload of a MEMBERS response.
	Topology Topology
	// Metrics is the payload of a METRICS response.
	Metrics *Metrics
	// LeaseToken is a LEASE response's fill token: nonzero grants this
	// caller the lease, zero means another caller holds it. In a LEASE
	// SET's LEASE_LOST reply the stored version rides in Version instead.
	LeaseToken uint64
	// LeaseTTL is how long the lease (or, for a zero-token LEASE, the
	// current holder's lease) remains outstanding; the wire carries it as
	// whole milliseconds, at least 1.
	LeaseTTL time.Duration
	// Stale marks a zero-token LEASE that carries a stale hint: Version and
	// Value then hold the last value the lease machinery saw for the key —
	// possibly superseded, served so missers need not stampede the origin.
	Stale bool
	// Err is the message of an error response.
	Err string
}

// Stats is the wire form of the server's counter snapshot; see
// concurrent.Snapshot for the cache-level field semantics. Sets and
// RepairSets are tracked by the server itself: they split write traffic
// into user SETs and replica-maintenance SETs (SetFlagRepair), so repair
// churn never inflates the apparent user load. RepairQueueDepth and
// RepairsShed expose the server's bounded queue of async maintenance
// writes (SetFlagAsync), making repair backpressure observable: a rising
// depth means maintenance is arriving faster than it drains, and a shed
// is a repair the server dropped to protect user traffic; because depth is
// point-in-time and peaks fall between polls, RepairQueueHighWater (v5)
// reports the maximum depth since start. StaleRepairs
// counts VERSIONED writes the server rejected because it already held a
// strictly newer version — each one is a lost-update race the version
// check won (under v3 semantics the stale value would have been stored).
type Stats struct {
	Hits              uint64
	Misses            uint64
	Evictions         uint64
	ConflictEvictions uint64
	FlushEvictions    uint64
	Rehashes          uint64
	Pending           uint64
	Len               uint64
	Capacity          uint64
	Alpha             uint64
	Buckets           uint64
	Sets              uint64
	RepairSets        uint64
	RepairQueueDepth  uint64
	RepairsShed       uint64
	StaleRepairs      uint64
	// RepairQueueHighWater is the maximum RepairQueueDepth observed since
	// the server started — the shed-risk signal the point-in-time depth
	// hides between polls.
	RepairQueueHighWater uint64
	// LeasesGranted counts GETL misses answered with a nonzero token —
	// each one is a caller elected to load the origin for a key.
	LeasesGranted uint64
	// LeasesExpired counts leases that timed out unfilled; their fills, if
	// they ever arrive, answer LEASE_LOST.
	LeasesExpired uint64
	// StaleServes counts zero-token LEASE responses that carried a stale
	// hint — missers served a possibly superseded value instead of joining
	// the stampede.
	StaleServes uint64
	// Tombstones is the number of tombstone records currently resident —
	// versioned deletes still within their reap TTL. A gauge, not a
	// counter.
	Tombstones uint64
	// TombstonesReaped counts tombstones removed by the reaper after
	// outliving their TTL.
	TombstonesReaped uint64
	// HintsQueued counts hinted-handoff records accepted via HINT (v8) —
	// writes to an unreachable owner parked on this server for replay.
	HintsQueued uint64
	// HintsReplayed counts queued hints delivered to their target as
	// conditional versioned writes (a VERSION_STALE refusal counts: the
	// target provably holds something newer, which is all a hint wants).
	HintsReplayed uint64
	Migrating     bool
	// Shards is present only when the STATS request set Detail.
	Shards []ShardStat
}

// statsFields is the canonical wire order of the fixed uint64 counters in a
// STATS payload. appendStats, parseStats, and the ARCHITECTURE.md spec test
// all derive from this one table, so the serialized layout cannot drift
// from the documented one.
var statsFields = []struct {
	name string
	get  func(*Stats) *uint64
}{
	{"Hits", func(s *Stats) *uint64 { return &s.Hits }},
	{"Misses", func(s *Stats) *uint64 { return &s.Misses }},
	{"Evictions", func(s *Stats) *uint64 { return &s.Evictions }},
	{"ConflictEvictions", func(s *Stats) *uint64 { return &s.ConflictEvictions }},
	{"FlushEvictions", func(s *Stats) *uint64 { return &s.FlushEvictions }},
	{"Rehashes", func(s *Stats) *uint64 { return &s.Rehashes }},
	{"Pending", func(s *Stats) *uint64 { return &s.Pending }},
	{"Len", func(s *Stats) *uint64 { return &s.Len }},
	{"Capacity", func(s *Stats) *uint64 { return &s.Capacity }},
	{"Alpha", func(s *Stats) *uint64 { return &s.Alpha }},
	{"Buckets", func(s *Stats) *uint64 { return &s.Buckets }},
	{"Sets", func(s *Stats) *uint64 { return &s.Sets }},
	{"RepairSets", func(s *Stats) *uint64 { return &s.RepairSets }},
	{"RepairQueueDepth", func(s *Stats) *uint64 { return &s.RepairQueueDepth }},
	{"RepairsShed", func(s *Stats) *uint64 { return &s.RepairsShed }},
	{"StaleRepairs", func(s *Stats) *uint64 { return &s.StaleRepairs }},
	{"RepairQueueHighWater", func(s *Stats) *uint64 { return &s.RepairQueueHighWater }},
	{"LeasesGranted", func(s *Stats) *uint64 { return &s.LeasesGranted }},
	{"LeasesExpired", func(s *Stats) *uint64 { return &s.LeasesExpired }},
	{"StaleServes", func(s *Stats) *uint64 { return &s.StaleServes }},
	{"Tombstones", func(s *Stats) *uint64 { return &s.Tombstones }},
	{"TombstonesReaped", func(s *Stats) *uint64 { return &s.TombstonesReaped }},
	{"HintsQueued", func(s *Stats) *uint64 { return &s.HintsQueued }},
	{"HintsReplayed", func(s *Stats) *uint64 { return &s.HintsReplayed }},
}

// MissRatio returns Misses / (Hits + Misses), or 0 before any GET.
func (s Stats) MissRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Misses) / float64(total)
}

// ShardStat is one bucket's counters.
type ShardStat struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Len       uint64
}

const statsFixedLen = 24*8 + 1 // 24 uint64 counters (statsFields) + migrating byte

// keyRecLen is the encoded size of one KEYS stream record: key uint64,
// version uint64, tombstone byte.
const keyRecLen = 17

// Codec buffer tuning. The shrink policy keeps one large frame (a KEYS
// chunk, a METRICS snapshot, a big value) from pinning its buffer on a
// long-lived connection forever: once the buffer exceeds codecShrinkCap
// and codecIdleFrames consecutive frames (reads) or flushes (writes)
// stayed under it, the buffer is reallocated back down to codecShrinkCap.
const (
	// codecShrinkCap is the largest buffer capacity a steady small-frame
	// workload retains per connection endpoint (64 KiB comfortably holds
	// the deepest pipelined batch the harnesses drive).
	codecShrinkCap = 64 << 10
	// codecIdleFrames is how many consecutive small frames/flushes an
	// oversized buffer survives before shrinking — large enough that a
	// periodic KEYS/METRICS poll doesn't thrash the allocation.
	codecIdleFrames = 64
	// zeroCopyMin is the value length from which WriteRequest (SET) and
	// WriteResponse (HIT) stop copying the value into the frame buffer
	// and instead send it as its own vectored-write segment. Below it the
	// memcpy is cheaper than an extra iovec entry.
	zeroCopyMin = 4 << 10
)

// BuffersWriter is the optional interface a Writer's destination can
// implement to receive a whole flush as one vectored write. net.Conn
// destinations don't need it (net.Buffers.WriteTo already uses writev);
// wrappers around a net.Conn (byte counters, instrumented writers)
// implement it by delegating to the wrapped connection, so the writev
// survives the wrapping instead of degrading to one syscall per segment.
type BuffersWriter interface {
	WriteBuffers(*net.Buffers) (int64, error)
}

// Writer encodes frames into an owned buffer and sends a whole flush in
// one (vectored) write. It is not safe for concurrent use.
//
// Values at least zeroCopyMin long passed to WriteRequest (SET) or
// WriteResponse (HIT) are not copied: the slice is referenced until the
// next Flush, so the caller must not modify its contents in between.
// Both servers (immutable stored values) and clients (values held across
// the enqueue→Flush window of one batch) satisfy this naturally; see the
// "Buffer ownership and aliasing" section of ARCHITECTURE.md.
//
// A flush error is sticky: the buffered frames (possibly half-sent) are
// discarded, and every later call returns the same error, so a partial
// frame can never be resent as the prefix of fresh scratch. Callers drop
// the connection, exactly as they would for any transport error.
type Writer struct {
	out   io.Writer
	chunk []byte      // frames encoded in place; chunk[mark:] is not yet sealed
	segs  net.Buffers // sealed flush segments: chunk regions + zero-copy values
	mark  int         // start of the unsealed tail of chunk
	err   error       // sticky flush error
	idle  int         // consecutive small flushes with an oversized chunk
}

// NewWriter wraps w in a frame encoder.
func NewWriter(w io.Writer) *Writer {
	return &Writer{out: w}
}

// WritePreamble emits the connection preamble (client side, once).
func (w *Writer) WritePreamble() error {
	if w.err != nil {
		return w.err
	}
	w.chunk = append(w.chunk, Magic...)
	w.chunk = binary.LittleEndian.AppendUint32(w.chunk, Version)
	return nil
}

// Flush sends every buffered frame in one vectored write.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	w.seal()
	var err error
	switch len(w.segs) {
	case 0:
		return nil
	case 1:
		_, err = w.out.Write(w.segs[0])
	default:
		if bw, ok := w.out.(BuffersWriter); ok {
			_, err = bw.WriteBuffers(&w.segs)
		} else {
			_, err = w.segs.WriteTo(w.out)
		}
	}
	// Drop segment references either way: on success they are sent, on
	// error the connection is dead and half a frame must never survive
	// as reusable scratch.
	for i := range w.segs {
		w.segs[i] = nil
	}
	w.segs = w.segs[:0]
	used := len(w.chunk)
	w.chunk = w.chunk[:0]
	w.mark = 0
	if err != nil {
		w.err = err
		return err
	}
	// Shrink-on-idle: a chunk grown by one huge frame (METRICS, a big
	// value) must not stay pinned on a connection that went back to
	// small frames.
	if cap(w.chunk) > codecShrinkCap {
		if used <= codecShrinkCap {
			if w.idle++; w.idle >= codecIdleFrames {
				w.chunk = make([]byte, 0, codecShrinkCap)
				w.idle = 0
			}
		} else {
			w.idle = 0
		}
	}
	return nil
}

// seal closes the unsealed tail of chunk into a flush segment.
func (w *Writer) seal() {
	if len(w.chunk) > w.mark {
		w.segs = append(w.segs, w.chunk[w.mark:len(w.chunk):len(w.chunk)])
		w.mark = len(w.chunk)
	}
}

// beginFrame reserves a frame's 4-byte length prefix in chunk and returns
// its offset, to be backfilled by endFrame once the body length is known.
func (w *Writer) beginFrame() int {
	w.chunk = append(w.chunk, 0, 0, 0, 0)
	return len(w.chunk) - 4
}

// endFrame backfills the length prefix of the frame begun at off.
// external counts value bytes that will travel as their own segment
// rather than through chunk. On error the partial frame is discarded.
func (w *Writer) endFrame(off, external int) error {
	n := len(w.chunk) - off - 4 + external
	if n > MaxFrame {
		w.chunk = w.chunk[:off]
		return fmt.Errorf("wire: frame body %d exceeds max %d", n, MaxFrame)
	}
	binary.LittleEndian.PutUint32(w.chunk[off:], uint32(n))
	return nil
}

// sealValue appends val as a zero-copy segment of the current flush. The
// caller must keep val unmodified until Flush returns.
func (w *Writer) sealValue(val []byte) {
	w.seal()
	w.segs = append(w.segs, val)
}

// abortFrame discards the partial frame begun at off and returns err.
func (w *Writer) abortFrame(off int, err error) error {
	w.chunk = w.chunk[:off]
	return err
}

// WriteRequest encodes one request frame (buffered; call Flush to send).
// A SET Value at least zeroCopyMin long is referenced, not copied, and
// must stay unmodified until Flush.
func (w *Writer) WriteRequest(req Request) error {
	if w.err != nil {
		return w.err
	}
	off := w.beginFrame()
	if req.Traced {
		if err := req.Trace.validate(); err != nil {
			return w.abortFrame(off, err)
		}
		w.chunk = append(w.chunk, byte(req.Op)|OpFlagTraced)
		w.chunk = append(w.chunk, req.Trace.ID[:]...)
		w.chunk = append(w.chunk, byte(req.Trace.Flags))
	} else {
		w.chunk = append(w.chunk, byte(req.Op))
	}
	external := 0
	switch req.Op {
	case OpGet, OpDel, OpGetLease:
		w.chunk = binary.LittleEndian.AppendUint64(w.chunk, req.Key)
	case OpSet:
		w.chunk = binary.LittleEndian.AppendUint64(w.chunk, req.Key)
		w.chunk = append(w.chunk, byte(req.Flags))
		if req.Flags&SetFlagTombstone != 0 {
			if req.Flags&SetFlagVersioned == 0 {
				return w.abortFrame(off, fmt.Errorf("wire: SET flag TOMBSTONE is only valid with VERSIONED"))
			}
			if len(req.Value) != 0 {
				return w.abortFrame(off, fmt.Errorf("wire: TOMBSTONE SET carries a value"))
			}
		}
		if req.Flags&SetFlagVersioned != 0 {
			w.chunk = binary.LittleEndian.AppendUint64(w.chunk, req.Version)
		}
		if req.Flags&SetFlagLease != 0 {
			if req.Flags&SetFlagRepair != 0 {
				return w.abortFrame(off, fmt.Errorf("wire: SET flag LEASE is not valid with REPAIR"))
			}
			if req.LeaseToken == 0 {
				return w.abortFrame(off, fmt.Errorf("wire: LEASE SET with a zero token"))
			}
			w.chunk = binary.LittleEndian.AppendUint64(w.chunk, req.LeaseToken)
		}
		if len(req.Value) >= zeroCopyMin {
			external = len(req.Value)
		} else {
			w.chunk = append(w.chunk, req.Value...)
		}
	case OpHint:
		if req.Target == "" || len(req.Target) > MaxAddrLen {
			return w.abortFrame(off, fmt.Errorf("wire: HINT target address %d bytes, want 1..%d", len(req.Target), MaxAddrLen))
		}
		if req.Version == 0 {
			return w.abortFrame(off, fmt.Errorf("wire: HINT with a zero version"))
		}
		if req.Tombstone && len(req.Value) != 0 {
			return w.abortFrame(off, fmt.Errorf("wire: tombstone HINT carries a value"))
		}
		w.chunk = append(w.chunk, byte(len(req.Target)))
		w.chunk = append(w.chunk, req.Target...)
		w.chunk = binary.LittleEndian.AppendUint64(w.chunk, req.Key)
		tb := byte(0)
		if req.Tombstone {
			tb = 1
		}
		w.chunk = append(w.chunk, tb)
		w.chunk = binary.LittleEndian.AppendUint64(w.chunk, req.Version)
		w.chunk = append(w.chunk, req.Value...)
	case OpStats:
		d := byte(0)
		if req.Detail {
			d = 1
		}
		w.chunk = append(w.chunk, d)
	case OpRehash, OpKeys, OpMembers:
	case OpMetrics:
		if err := req.MetricsFlags.validate(); err != nil {
			return w.abortFrame(off, err)
		}
		w.chunk = append(w.chunk, byte(req.MetricsFlags))
	case OpTopology:
		if err := req.Topology.Validate(); err != nil {
			return w.abortFrame(off, err)
		}
		if len(req.Topology.Members) == 0 {
			return w.abortFrame(off, fmt.Errorf("wire: TOPOLOGY push with no members"))
		}
		w.chunk = appendTopology(w.chunk, req.Topology)
	default:
		return w.abortFrame(off, fmt.Errorf("wire: unknown request op %v", req.Op))
	}
	if err := w.endFrame(off, external); err != nil {
		return err
	}
	if external > 0 {
		w.sealValue(req.Value)
	}
	return nil
}

// WriteResponse encodes one response frame (buffered; call Flush to send).
// Every response carries resp.Epoch — the server's topology epoch — right
// after the status byte. A HIT Value at least zeroCopyMin long is
// referenced, not copied, and must stay unmodified until Flush — which a
// server whose stored values are immutable satisfies by construction.
func (w *Writer) WriteResponse(resp Response) error {
	if w.err != nil {
		return w.err
	}
	off := w.beginFrame()
	w.chunk = append(w.chunk, byte(resp.Status))
	w.chunk = binary.LittleEndian.AppendUint64(w.chunk, resp.Epoch)
	external := 0
	switch resp.Status {
	case StatusHit:
		w.chunk = binary.LittleEndian.AppendUint64(w.chunk, resp.Version)
		if len(resp.Value) >= zeroCopyMin {
			external = len(resp.Value)
		} else {
			w.chunk = append(w.chunk, resp.Value...)
		}
	case StatusMiss:
	case StatusOK:
		e := byte(0)
		if resp.Evicted {
			e = 1
		}
		w.chunk = append(w.chunk, e)
		w.chunk = binary.LittleEndian.AppendUint64(w.chunk, resp.Version)
	case StatusVersionStale:
		w.chunk = binary.LittleEndian.AppendUint64(w.chunk, resp.Version)
	case StatusLease:
		if resp.LeaseToken != 0 && resp.Stale {
			return w.abortFrame(off, fmt.Errorf("wire: LEASE grant cannot carry a stale hint"))
		}
		w.chunk = binary.LittleEndian.AppendUint64(w.chunk, resp.LeaseToken)
		ms := resp.LeaseTTL.Milliseconds()
		if ms < 1 {
			ms = 1 // a lease is never already dead on the wire
		} else if ms > math.MaxUint32 {
			ms = math.MaxUint32
		}
		w.chunk = binary.LittleEndian.AppendUint32(w.chunk, uint32(ms))
		st := byte(0)
		if resp.Stale {
			st = 1
		}
		w.chunk = append(w.chunk, st)
		if resp.Stale {
			w.chunk = binary.LittleEndian.AppendUint64(w.chunk, resp.Version)
			w.chunk = append(w.chunk, resp.Value...)
		}
	case StatusLeaseLost:
		w.chunk = binary.LittleEndian.AppendUint64(w.chunk, resp.Version)
	case StatusStats:
		if resp.Stats == nil {
			return w.abortFrame(off, fmt.Errorf("wire: stats response without payload"))
		}
		w.chunk = appendStats(w.chunk, resp.Stats)
	case StatusError:
		w.chunk = append(w.chunk, resp.Err...)
	case StatusKeys:
		w.chunk = binary.LittleEndian.AppendUint32(w.chunk, uint32(len(resp.Keys)))
		for _, rec := range resp.Keys {
			w.chunk = binary.LittleEndian.AppendUint64(w.chunk, rec.Key)
			w.chunk = binary.LittleEndian.AppendUint64(w.chunk, rec.Version)
			tb := byte(0)
			if rec.Tombstone {
				tb = 1
			}
			w.chunk = append(w.chunk, tb)
		}
	case StatusMembers:
		if err := resp.Topology.Validate(); err != nil {
			return w.abortFrame(off, err)
		}
		w.chunk = appendTopology(w.chunk, resp.Topology)
	case StatusMetrics:
		if resp.Metrics == nil {
			return w.abortFrame(off, fmt.Errorf("wire: metrics response without payload"))
		}
		var err error
		if w.chunk, err = appendMetrics(w.chunk, resp.Metrics); err != nil {
			return w.abortFrame(off, err)
		}
	default:
		return w.abortFrame(off, fmt.Errorf("wire: unknown response status %v", resp.Status))
	}
	if err := w.endFrame(off, external); err != nil {
		return err
	}
	if external > 0 {
		w.sealValue(resp.Value)
	}
	return nil
}

func appendStats(body []byte, s *Stats) []byte {
	for _, f := range statsFields {
		body = binary.LittleEndian.AppendUint64(body, *f.get(s))
	}
	m := byte(0)
	if s.Migrating {
		m = 1
	}
	body = append(body, m)
	body = binary.LittleEndian.AppendUint32(body, uint32(len(s.Shards)))
	for _, sh := range s.Shards {
		body = binary.LittleEndian.AppendUint64(body, sh.Hits)
		body = binary.LittleEndian.AppendUint64(body, sh.Misses)
		body = binary.LittleEndian.AppendUint64(body, sh.Evictions)
		body = binary.LittleEndian.AppendUint64(body, sh.Len)
	}
	return body
}

// Reader decodes frames from a buffered stream. It is not safe for
// concurrent use.
type Reader struct {
	br   *bufio.Reader
	body []byte
	// hdr backs the fixed-size length and preamble reads; a struct field
	// rather than a stack array so passing it through io.ReadFull's
	// interface does not allocate per frame.
	hdr [8]byte
	// keys backs Response.Keys across calls, like body backs Value.
	keys []KeyRec
	// idle counts consecutive frames that fit codecShrinkCap while body
	// was grown beyond it (shrink-on-idle, mirroring the Writer).
	idle int
}

// NewReader wraps r in a frame decoder with the default buffer size.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReader(r)}
}

// NewReaderSize is NewReader with an explicit stream buffer size, for
// endpoints that read deep pipelined batches in one syscall (the server
// sizes its per-connection reader with this; see internal/server).
func NewReaderSize(r io.Reader, size int) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, size)}
}

// ReadPreamble validates the connection preamble (server side, once).
func (r *Reader) ReadPreamble() error {
	pre := r.hdr[:8]
	if _, err := io.ReadFull(r.br, pre); err != nil {
		return fmt.Errorf("wire: reading preamble: %w", err)
	}
	if string(pre[:4]) != Magic {
		return fmt.Errorf("wire: bad magic %q", pre[:4])
	}
	if v := binary.LittleEndian.Uint32(pre[4:8]); v != Version {
		return fmt.Errorf("wire: %w %d (this end speaks %d)", ErrVersionMismatch, v, Version)
	}
	return nil
}

// Buffered returns the number of bytes already readable without blocking;
// the server uses it to decide when to flush responses.
func (r *Reader) Buffered() int { return r.br.Buffered() }

func (r *Reader) readFrame() ([]byte, error) {
	ln := r.hdr[:4]
	if _, err := io.ReadFull(r.br, ln); err != nil {
		return nil, err // io.EOF between frames means a clean close
	}
	n := int(binary.LittleEndian.Uint32(ln))
	if n > MaxFrame {
		return nil, fmt.Errorf("wire: frame length %d exceeds max %d", n, MaxFrame)
	}
	// Shrink-on-idle: one KEYS or METRICS frame must not pin up to
	// MaxFrame (and a keys buffer) on this connection forever once the
	// traffic goes back to small frames.
	if cap(r.body) > codecShrinkCap && n <= codecShrinkCap {
		if r.idle++; r.idle >= codecIdleFrames {
			r.body = make([]byte, 0, codecShrinkCap)
			r.keys = nil
			r.idle = 0
		}
	} else {
		r.idle = 0
	}
	if cap(r.body) < n {
		r.body = make([]byte, n)
	}
	r.body = r.body[:n]
	if _, err := io.ReadFull(r.br, r.body); err != nil {
		return nil, fmt.Errorf("wire: reading frame body: %w", err)
	}
	return r.body, nil
}

// ReadRequest decodes the next request frame (server side). The returned
// Value aliases an internal buffer valid until the next call.
func (r *Reader) ReadRequest() (Request, error) {
	body, err := r.readFrame()
	if err != nil {
		return Request{}, err
	}
	if len(body) < 1 {
		return Request{}, fmt.Errorf("wire: empty request frame")
	}
	req := Request{Op: Op(body[0] &^ OpFlagTraced)}
	if body[0]&OpFlagTraced != 0 {
		if len(body) < 1+TraceContextLen {
			return Request{}, fmt.Errorf("wire: traced %v frame %d bytes, too short for a trace context", req.Op, len(body))
		}
		copy(req.Trace.ID[:], body[1:])
		req.Trace.Flags = TraceFlags(body[1+len(req.Trace.ID)])
		if err := req.Trace.validate(); err != nil {
			return Request{}, err
		}
		req.Traced = true
		body = body[1+TraceContextLen:]
	} else {
		body = body[1:]
	}
	switch req.Op {
	case OpGet, OpDel, OpGetLease:
		if len(body) != 8 {
			return Request{}, fmt.Errorf("wire: %v body %d bytes, want 8", req.Op, len(body))
		}
		req.Key = binary.LittleEndian.Uint64(body)
	case OpSet:
		if len(body) < 9 {
			return Request{}, fmt.Errorf("wire: SET body %d bytes, want ≥9", len(body))
		}
		req.Key = binary.LittleEndian.Uint64(body)
		req.Flags = SetFlags(body[8])
		if req.Flags&^setFlagsDefined != 0 {
			return Request{}, fmt.Errorf("wire: SET flags %#02x has undefined bits", byte(req.Flags))
		}
		if req.Flags&SetFlagAsync != 0 && req.Flags&SetFlagRepair == 0 {
			return Request{}, fmt.Errorf("wire: SET flag ASYNC is only valid with REPAIR")
		}
		body = body[9:]
		if req.Flags&SetFlagVersioned != 0 {
			if req.Flags&SetFlagRepair == 0 {
				return Request{}, fmt.Errorf("wire: SET flag VERSIONED is only valid with REPAIR")
			}
			if len(body) < 8 {
				return Request{}, fmt.Errorf("wire: VERSIONED SET body lacks the version field")
			}
			req.Version = binary.LittleEndian.Uint64(body)
			body = body[8:]
		}
		if req.Flags&SetFlagLease != 0 {
			if req.Flags&SetFlagRepair != 0 {
				return Request{}, fmt.Errorf("wire: SET flag LEASE is not valid with REPAIR")
			}
			if len(body) < 8 {
				return Request{}, fmt.Errorf("wire: LEASE SET body lacks the token field")
			}
			req.LeaseToken = binary.LittleEndian.Uint64(body)
			if req.LeaseToken == 0 {
				return Request{}, fmt.Errorf("wire: LEASE SET with a zero token")
			}
			body = body[8:]
		}
		if req.Flags&SetFlagTombstone != 0 {
			if req.Flags&SetFlagVersioned == 0 {
				return Request{}, fmt.Errorf("wire: SET flag TOMBSTONE is only valid with VERSIONED")
			}
			if len(body) != 0 {
				return Request{}, fmt.Errorf("wire: TOMBSTONE SET carries a value")
			}
		}
		req.Value = body
	case OpHint:
		if len(body) < 1 {
			return Request{}, fmt.Errorf("wire: HINT body %d bytes, want ≥1", len(body))
		}
		al := int(body[0])
		body = body[1:]
		if al == 0 {
			return Request{}, fmt.Errorf("wire: HINT with an empty target address")
		}
		if len(body) < al+17 {
			return Request{}, fmt.Errorf("wire: HINT body truncated (target %d bytes, %d remain)", al, len(body))
		}
		req.Target = string(body[:al])
		body = body[al:]
		req.Key = binary.LittleEndian.Uint64(body)
		switch body[8] {
		case 0:
		case 1:
			req.Tombstone = true
		default:
			return Request{}, fmt.Errorf("wire: HINT tombstone byte %#02x, want 0 or 1", body[8])
		}
		req.Version = binary.LittleEndian.Uint64(body[9:])
		if req.Version == 0 {
			return Request{}, fmt.Errorf("wire: HINT with a zero version")
		}
		req.Value = body[17:]
		if req.Tombstone && len(req.Value) != 0 {
			return Request{}, fmt.Errorf("wire: tombstone HINT carries a value")
		}
	case OpStats:
		if len(body) != 1 {
			return Request{}, fmt.Errorf("wire: STATS body %d bytes, want 1", len(body))
		}
		req.Detail = body[0] != 0
	case OpRehash, OpKeys, OpMembers:
		if len(body) != 0 {
			return Request{}, fmt.Errorf("wire: %v body %d bytes, want 0", req.Op, len(body))
		}
	case OpMetrics:
		if len(body) != 1 {
			return Request{}, fmt.Errorf("wire: METRICS body %d bytes, want 1", len(body))
		}
		req.MetricsFlags = MetricsFlags(body[0])
		if err := req.MetricsFlags.validate(); err != nil {
			return Request{}, err
		}
	case OpTopology:
		t, err := parseTopology(body)
		if err != nil {
			return Request{}, err
		}
		// An empty MEMBERS response is legitimate (a fresh server knows no
		// topology), but an empty *push* is not: adopting it would leave
		// the receiver holding a high epoch over no members, from which
		// any later epoch could "win" — a rollback of the monotonic-epoch
		// invariant through one malformed frame.
		if len(t.Members) == 0 {
			return Request{}, fmt.Errorf("wire: TOPOLOGY push with no members")
		}
		req.Topology = t
	default:
		return Request{}, fmt.Errorf("wire: unknown request op %d", byte(req.Op))
	}
	return req, nil
}

// ReadResponse decodes the next response frame (client side). The returned
// Value and Keys alias internal buffers valid until the next call.
func (r *Reader) ReadResponse() (Response, error) {
	body, err := r.readFrame()
	if err != nil {
		return Response{}, err
	}
	if len(body) < 9 {
		return Response{}, fmt.Errorf("wire: response frame %d bytes, want ≥9 (status + epoch)", len(body))
	}
	resp := Response{Status: Status(body[0]), Epoch: binary.LittleEndian.Uint64(body[1:])}
	body = body[9:]
	switch resp.Status {
	case StatusHit:
		if len(body) < 8 {
			return Response{}, fmt.Errorf("wire: HIT body %d bytes, want ≥8 (version)", len(body))
		}
		resp.Version = binary.LittleEndian.Uint64(body)
		resp.Value = body[8:]
	case StatusMiss:
	case StatusOK:
		// Empty (DEL/REHASH replies may omit the fields), evicted byte
		// alone, or evicted byte + stored version.
		switch len(body) {
		case 0:
		case 1:
			resp.Evicted = body[0] != 0
		case 9:
			resp.Evicted = body[0] != 0
			resp.Version = binary.LittleEndian.Uint64(body[1:])
		default:
			return Response{}, fmt.Errorf("wire: OK body %d bytes, want 0, 1 or 9", len(body))
		}
	case StatusVersionStale:
		if len(body) != 8 {
			return Response{}, fmt.Errorf("wire: VERSION_STALE body %d bytes, want 8", len(body))
		}
		resp.Version = binary.LittleEndian.Uint64(body)
	case StatusLease:
		if len(body) < 13 {
			return Response{}, fmt.Errorf("wire: LEASE body %d bytes, want ≥13 (token + ttl + stale)", len(body))
		}
		resp.LeaseToken = binary.LittleEndian.Uint64(body)
		ms := binary.LittleEndian.Uint32(body[8:])
		if ms == 0 {
			return Response{}, fmt.Errorf("wire: LEASE with a zero TTL")
		}
		resp.LeaseTTL = time.Duration(ms) * time.Millisecond
		switch body[12] {
		case 0:
			if len(body) != 13 {
				return Response{}, fmt.Errorf("wire: LEASE body %d bytes, want 13 without a stale hint", len(body))
			}
		case 1:
			if resp.LeaseToken != 0 {
				return Response{}, fmt.Errorf("wire: LEASE grant cannot carry a stale hint")
			}
			if len(body) < 21 {
				return Response{}, fmt.Errorf("wire: stale LEASE body %d bytes, want ≥21 (hint version)", len(body))
			}
			resp.Stale = true
			resp.Version = binary.LittleEndian.Uint64(body[13:])
			resp.Value = body[21:]
		default:
			return Response{}, fmt.Errorf("wire: LEASE stale byte %#02x, want 0 or 1", body[12])
		}
	case StatusLeaseLost:
		if len(body) != 8 {
			return Response{}, fmt.Errorf("wire: LEASE_LOST body %d bytes, want 8", len(body))
		}
		resp.Version = binary.LittleEndian.Uint64(body)
	case StatusStats:
		st, err := parseStats(body)
		if err != nil {
			return Response{}, err
		}
		resp.Stats = st
	case StatusError:
		resp.Err = string(body)
	case StatusKeys:
		if len(body) < 4 {
			return Response{}, fmt.Errorf("wire: keys payload %d bytes, want ≥4", len(body))
		}
		n := int(binary.LittleEndian.Uint32(body))
		body = body[4:]
		if len(body) != keyRecLen*n {
			return Response{}, fmt.Errorf("wire: keys payload %d bytes, want %d", len(body), keyRecLen*n)
		}
		if n > 0 {
			// Like Value, Keys aliases reader-owned memory valid until
			// the next call — KEYS streams reuse one buffer per chunk.
			if cap(r.keys) < n {
				r.keys = make([]KeyRec, n)
			}
			resp.Keys = r.keys[:n]
			for i := range resp.Keys {
				rec := body[keyRecLen*i:]
				switch rec[16] {
				case 0, 1:
				default:
					return Response{}, fmt.Errorf("wire: keys record %d tombstone byte %#02x, want 0 or 1", i, rec[16])
				}
				resp.Keys[i] = KeyRec{
					Key:       binary.LittleEndian.Uint64(rec),
					Version:   binary.LittleEndian.Uint64(rec[8:]),
					Tombstone: rec[16] == 1,
				}
			}
		}
	case StatusMembers:
		t, err := parseTopology(body)
		if err != nil {
			return Response{}, err
		}
		resp.Topology = t
	case StatusMetrics:
		m, err := parseMetrics(body)
		if err != nil {
			return Response{}, err
		}
		resp.Metrics = m
	default:
		return Response{}, fmt.Errorf("wire: unknown response status %d", byte(resp.Status))
	}
	return resp, nil
}

func parseStats(body []byte) (*Stats, error) {
	if len(body) < statsFixedLen+4 {
		return nil, fmt.Errorf("wire: stats payload %d bytes, want ≥%d", len(body), statsFixedLen+4)
	}
	s := &Stats{}
	off := 0
	for _, f := range statsFields {
		*f.get(s) = binary.LittleEndian.Uint64(body[off:])
		off += 8
	}
	s.Migrating = body[off] != 0
	off++
	nShards := int(binary.LittleEndian.Uint32(body[off:]))
	off += 4
	if len(body)-off != 4*8*nShards {
		return nil, fmt.Errorf("wire: stats shard payload %d bytes, want %d", len(body)-off, 4*8*nShards)
	}
	if nShards > 0 {
		s.Shards = make([]ShardStat, nShards)
		for i := range s.Shards {
			s.Shards[i].Hits = binary.LittleEndian.Uint64(body[off:])
			s.Shards[i].Misses = binary.LittleEndian.Uint64(body[off+8:])
			s.Shards[i].Evictions = binary.LittleEndian.Uint64(body[off+16:])
			s.Shards[i].Len = binary.LittleEndian.Uint64(body[off+24:])
			off += 32
		}
	}
	return s, nil
}
