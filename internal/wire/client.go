package wire

import (
	"fmt"
	"io"
	"net"
)

// Client speaks the wire protocol over one connection. A Client is NOT safe
// for concurrent use; the load harness opens one per worker goroutine.
//
// The simple methods (Get, Set, Del, Stats, Rehash) are synchronous: one
// round trip each. For batched pipelining, enqueue requests with the
// Enqueue* methods, Flush once, then read the responses in order with
// ReadResponse.
type Client struct {
	conn io.ReadWriteCloser
	r    *Reader
	w    *Writer
}

// Dial connects to a cached server and performs the preamble handshake.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn)
}

// NewClient wraps an established connection, sending the preamble.
func NewClient(conn io.ReadWriteCloser) (*Client, error) {
	c := &Client{conn: conn, r: NewReader(conn), w: NewWriter(conn)}
	if err := c.w.WritePreamble(); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// Close tears down the connection.
func (c *Client) Close() error { return c.conn.Close() }

// EnqueueGet buffers a GET without flushing.
func (c *Client) EnqueueGet(key uint64) error {
	return c.w.WriteRequest(Request{Op: OpGet, Key: key})
}

// EnqueueSet buffers a user SET (no flags) without flushing.
func (c *Client) EnqueueSet(key uint64, value []byte) error {
	return c.EnqueueSetFlags(key, 0, value)
}

// EnqueueSetFlags buffers a SET carrying the given flag byte without
// flushing. The cluster router sets SetFlagRepair on read-repair and
// migration writes so servers do not count them as user traffic.
func (c *Client) EnqueueSetFlags(key uint64, flags SetFlags, value []byte) error {
	return c.w.WriteRequest(Request{Op: OpSet, Key: key, Flags: flags, Value: value})
}

// EnqueueDel buffers a DEL without flushing.
func (c *Client) EnqueueDel(key uint64) error {
	return c.w.WriteRequest(Request{Op: OpDel, Key: key})
}

// Flush sends all buffered requests.
func (c *Client) Flush() error { return c.w.Flush() }

// ReadResponse reads the next pipelined response. The response Value
// aliases an internal buffer valid until the next read.
func (c *Client) ReadResponse() (Response, error) {
	resp, err := c.r.ReadResponse()
	if err != nil {
		return resp, err
	}
	if resp.Status == StatusError {
		return resp, fmt.Errorf("wire: server error: %s", resp.Err)
	}
	return resp, nil
}

func (c *Client) roundTrip(req Request) (Response, error) {
	if err := c.w.WriteRequest(req); err != nil {
		return Response{}, err
	}
	if err := c.w.Flush(); err != nil {
		return Response{}, err
	}
	return c.ReadResponse()
}

// Get fetches key. The returned value is a copy and safe to retain.
func (c *Client) Get(key uint64) ([]byte, bool, error) {
	resp, err := c.roundTrip(Request{Op: OpGet, Key: key})
	if err != nil {
		return nil, false, err
	}
	switch resp.Status {
	case StatusHit:
		return append([]byte(nil), resp.Value...), true, nil
	case StatusMiss:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("wire: unexpected GET response %v", resp.Status)
	}
}

// Set stores value under key as user traffic, reporting whether an entry
// was evicted.
func (c *Client) Set(key uint64, value []byte) (evicted bool, err error) {
	return c.SetFlags(key, 0, value)
}

// SetFlags stores value under key with the given SET flag byte, reporting
// whether an entry was evicted.
func (c *Client) SetFlags(key uint64, flags SetFlags, value []byte) (evicted bool, err error) {
	resp, err := c.roundTrip(Request{Op: OpSet, Key: key, Flags: flags, Value: value})
	if err != nil {
		return false, err
	}
	if resp.Status != StatusOK {
		return false, fmt.Errorf("wire: unexpected SET response %v", resp.Status)
	}
	return resp.Evicted, nil
}

// Del removes key, reporting whether it was present.
func (c *Client) Del(key uint64) (bool, error) {
	resp, err := c.roundTrip(Request{Op: OpDel, Key: key})
	if err != nil {
		return false, err
	}
	switch resp.Status {
	case StatusOK:
		return true, nil
	case StatusMiss:
		return false, nil
	default:
		return false, fmt.Errorf("wire: unexpected DEL response %v", resp.Status)
	}
}

// Stats fetches the server's counter snapshot; detail includes per-shard
// counters.
func (c *Client) Stats(detail bool) (*Stats, error) {
	resp, err := c.roundTrip(Request{Op: OpStats, Detail: detail})
	if err != nil {
		return nil, err
	}
	if resp.Status != StatusStats || resp.Stats == nil {
		return nil, fmt.Errorf("wire: unexpected STATS response %v", resp.Status)
	}
	return resp.Stats, nil
}

// Keys fetches a racy snapshot of every resident key. The cluster router
// uses it to migrate entries off a node being removed.
func (c *Client) Keys() ([]uint64, error) {
	resp, err := c.roundTrip(Request{Op: OpKeys})
	if err != nil {
		return nil, err
	}
	if resp.Status != StatusKeys {
		return nil, fmt.Errorf("wire: unexpected KEYS response %v", resp.Status)
	}
	return resp.Keys, nil
}

// GetBatch pipelines one GET per key and calls visit for each response in
// key order. The value passed to visit aliases an internal buffer valid only
// for the duration of the call.
func (c *Client) GetBatch(keys []uint64, visit func(i int, hit bool, value []byte)) error {
	for _, k := range keys {
		if err := c.EnqueueGet(k); err != nil {
			return err
		}
	}
	if err := c.Flush(); err != nil {
		return err
	}
	for i := range keys {
		resp, err := c.ReadResponse()
		if err != nil {
			return err
		}
		switch resp.Status {
		case StatusHit:
			visit(i, true, resp.Value)
		case StatusMiss:
			visit(i, false, nil)
		default:
			return fmt.Errorf("wire: unexpected GET response %v", resp.Status)
		}
	}
	return nil
}

// SetBatch pipelines one user SET per key, with value(i) producing the i-th
// payload.
func (c *Client) SetBatch(keys []uint64, value func(i int) []byte) error {
	return c.SetBatchFlags(keys, 0, value)
}

// SetBatchFlags pipelines one SET per key carrying the given flag byte,
// with value(i) producing the i-th payload.
func (c *Client) SetBatchFlags(keys []uint64, flags SetFlags, value func(i int) []byte) error {
	for i, k := range keys {
		if err := c.EnqueueSetFlags(k, flags, value(i)); err != nil {
			return err
		}
	}
	if err := c.Flush(); err != nil {
		return err
	}
	for range keys {
		resp, err := c.ReadResponse()
		if err != nil {
			return err
		}
		if resp.Status != StatusOK {
			return fmt.Errorf("wire: unexpected SET response %v", resp.Status)
		}
	}
	return nil
}

// Rehash asks the server to begin an online incremental rehash.
func (c *Client) Rehash() error {
	resp, err := c.roundTrip(Request{Op: OpRehash})
	if err != nil {
		return err
	}
	if resp.Status != StatusOK {
		return fmt.Errorf("wire: unexpected REHASH response %v", resp.Status)
	}
	return nil
}
