package wire

import (
	"fmt"
	"io"
	"net"
	"time"
)

// DefaultDialTimeout bounds Dial's connection establishment. Without a
// bound, a black-holed address (dead host, dropped SYNs) parks the caller
// in the kernel's connect retry cycle for minutes — long enough to stall a
// topology refresh, a warm-up, or a join on a single dead member. Failing
// in seconds instead lets those paths skip the corpse and proceed.
const DefaultDialTimeout = 3 * time.Second

// Client speaks the wire protocol over one connection. A Client is NOT safe
// for concurrent use; the load harness opens one per worker goroutine.
//
// The simple methods (Get, Set, Del, Stats, Rehash) are synchronous: one
// round trip each. For batched pipelining, enqueue requests with the
// Enqueue* methods, Flush once, then read the responses in order with
// ReadResponse.
type Client struct {
	conn io.ReadWriteCloser
	r    *Reader
	w    *Writer
	// lastEpoch is the topology epoch carried by the most recent response;
	// see LastEpoch.
	lastEpoch uint64
}

// Dial connects to a cached server and performs the preamble handshake,
// bounding connection establishment by DefaultDialTimeout.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, DefaultDialTimeout)
}

// DialTimeout is Dial with an explicit connect timeout; d ≤ 0 means no
// bound (the raw net.Dial behavior).
func DialTimeout(addr string, d time.Duration) (*Client, error) {
	var conn net.Conn
	var err error
	if d > 0 {
		conn, err = net.DialTimeout("tcp", addr, d)
	} else {
		conn, err = net.Dial("tcp", addr)
	}
	if err != nil {
		return nil, err
	}
	return NewClient(conn)
}

// NewClient wraps an established connection, sending the preamble.
func NewClient(conn io.ReadWriteCloser) (*Client, error) {
	c := &Client{conn: conn, r: NewReader(conn), w: NewWriter(conn)}
	if err := c.w.WritePreamble(); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// Close tears down the connection.
func (c *Client) Close() error { return c.conn.Close() }

// EnqueueGet buffers a GET without flushing.
func (c *Client) EnqueueGet(key uint64) error {
	return c.w.WriteRequest(Request{Op: OpGet, Key: key})
}

// EnqueueSet buffers a user SET (no flags) without flushing.
func (c *Client) EnqueueSet(key uint64, value []byte) error {
	return c.EnqueueSetFlags(key, 0, value)
}

// EnqueueSetFlags buffers a SET carrying the given flag byte without
// flushing. The cluster router sets SetFlagRepair on read-repair and
// migration writes so servers do not count them as user traffic.
func (c *Client) EnqueueSetFlags(key uint64, flags SetFlags, value []byte) error {
	return c.w.WriteRequest(Request{Op: OpSet, Key: key, Flags: flags, Value: value})
}

// EnqueueSetVersioned buffers a conditional maintenance SET without
// flushing: the write carries version (the version the caller observed the
// value at) and the server applies it only when that is strictly newer
// than the version it holds, answering VERSION_STALE otherwise.
// SetFlagVersioned is added to flags implicitly; flags must include
// SetFlagRepair.
func (c *Client) EnqueueSetVersioned(key uint64, flags SetFlags, version uint64, value []byte) error {
	return c.w.WriteRequest(Request{
		Op: OpSet, Key: key, Flags: flags | SetFlagVersioned, Version: version, Value: value,
	})
}

// EnqueueGetLease buffers a GETL without flushing: GET with lease
// semantics on a miss (v7). A resident key answers HIT exactly like GET;
// a miss answers LEASE, electing at most one concurrent misser to load
// the origin.
func (c *Client) EnqueueGetLease(key uint64) error {
	return c.w.WriteRequest(Request{Op: OpGetLease, Key: key})
}

// EnqueueSetLease buffers a lease fill without flushing: a user SET
// carrying SetFlagLease and the nonzero token a LEASE grant handed this
// caller. The server applies it only while that lease is still
// outstanding, answering LEASE_LOST otherwise.
func (c *Client) EnqueueSetLease(key, token uint64, value []byte) error {
	return c.w.WriteRequest(Request{Op: OpSet, Key: key, Flags: SetFlagLease, LeaseToken: token, Value: value})
}

// EnqueueDel buffers a DEL without flushing.
func (c *Client) EnqueueDel(key uint64) error {
	return c.w.WriteRequest(Request{Op: OpDel, Key: key})
}

// EnqueueSetTombstone buffers a conditional maintenance delete without
// flushing (v8): a SET carrying SetFlagTombstone, SetFlagVersioned and an
// empty value. The server stores a tombstone under version iff it is
// strictly newer than what it holds, answering VERSION_STALE otherwise.
// flags must include SetFlagRepair.
func (c *Client) EnqueueSetTombstone(key uint64, flags SetFlags, version uint64) error {
	return c.w.WriteRequest(Request{
		Op: OpSet, Key: key, Flags: flags | SetFlagVersioned | SetFlagTombstone, Version: version,
	})
}

// EnqueueHint buffers a HINT without flushing (v8): it parks a hinted
// handoff — a versioned write (tombstone=true for a delete, with a nil
// value) whose intended owner target was unreachable — on the receiving
// server, which replays it to target as a conditional versioned write
// once target is reachable again.
func (c *Client) EnqueueHint(target string, key uint64, tombstone bool, version uint64, value []byte) error {
	return c.w.WriteRequest(Request{
		Op: OpHint, Target: target, Key: key, Tombstone: tombstone, Version: version, Value: value,
	})
}

// Hint issues one HINT round trip; see EnqueueHint.
func (c *Client) Hint(target string, key uint64, tombstone bool, version uint64, value []byte) error {
	resp, err := c.roundTrip(Request{
		Op: OpHint, Target: target, Key: key, Tombstone: tombstone, Version: version, Value: value,
	})
	if err != nil {
		return err
	}
	if resp.Status != StatusOK {
		return fmt.Errorf("wire: unexpected HINT response %v", resp.Status)
	}
	return nil
}

// EnqueueGetTraced is EnqueueGet with a trace context attached (v6): the
// server propagates tc into its telemetry for this request, recording a
// span when tc is sampled.
func (c *Client) EnqueueGetTraced(key uint64, tc TraceContext) error {
	return c.w.WriteRequest(Request{Op: OpGet, Key: key, Trace: tc, Traced: true})
}

// EnqueueSetFlagsTraced is EnqueueSetFlags with a trace context attached.
func (c *Client) EnqueueSetFlagsTraced(key uint64, flags SetFlags, tc TraceContext, value []byte) error {
	return c.w.WriteRequest(Request{Op: OpSet, Key: key, Flags: flags, Trace: tc, Traced: true, Value: value})
}

// EnqueueSetVersionedTraced is EnqueueSetVersioned with a trace context
// attached; for ASYNC writes the context rides the server's repair queue
// and is recorded when the entry drains, so the span's queue wait names
// the originating request even seconds later.
func (c *Client) EnqueueSetVersionedTraced(key uint64, flags SetFlags, version uint64, tc TraceContext, value []byte) error {
	return c.w.WriteRequest(Request{
		Op: OpSet, Key: key, Flags: flags | SetFlagVersioned, Version: version,
		Trace: tc, Traced: true, Value: value,
	})
}

// EnqueueGetLeaseTraced is EnqueueGetLease with a trace context attached.
func (c *Client) EnqueueGetLeaseTraced(key uint64, tc TraceContext) error {
	return c.w.WriteRequest(Request{Op: OpGetLease, Key: key, Trace: tc, Traced: true})
}

// EnqueueSetLeaseTraced is EnqueueSetLease with a trace context attached.
func (c *Client) EnqueueSetLeaseTraced(key, token uint64, tc TraceContext, value []byte) error {
	return c.w.WriteRequest(Request{
		Op: OpSet, Key: key, Flags: SetFlagLease, LeaseToken: token,
		Trace: tc, Traced: true, Value: value,
	})
}

// EnqueueDelTraced is EnqueueDel with a trace context attached.
func (c *Client) EnqueueDelTraced(key uint64, tc TraceContext) error {
	return c.w.WriteRequest(Request{Op: OpDel, Key: key, Trace: tc, Traced: true})
}

// Flush sends all buffered requests.
func (c *Client) Flush() error { return c.w.Flush() }

// ReadResponse reads the next pipelined response. The response Value
// aliases an internal buffer valid until the next read.
func (c *Client) ReadResponse() (Response, error) {
	resp, err := c.r.ReadResponse()
	if err != nil {
		return resp, err
	}
	c.lastEpoch = resp.Epoch
	if resp.Status == StatusError {
		return resp, fmt.Errorf("wire: server error: %s", resp.Err)
	}
	return resp, nil
}

// LastEpoch returns the server topology epoch carried by the most recent
// response read on this connection (0 before any response). The cluster
// router compares it against its own epoch to piggyback membership
// staleness detection on ordinary traffic.
func (c *Client) LastEpoch() uint64 { return c.lastEpoch }

func (c *Client) roundTrip(req Request) (Response, error) {
	if err := c.w.WriteRequest(req); err != nil {
		return Response{}, err
	}
	if err := c.w.Flush(); err != nil {
		return Response{}, err
	}
	return c.ReadResponse()
}

// Get fetches key. The returned value is a copy and safe to retain.
func (c *Client) Get(key uint64) ([]byte, bool, error) {
	v, ok, err := c.GetShared(key)
	if ok {
		v = append([]byte(nil), v...)
	}
	return v, ok, err
}

// GetShared is Get without the defensive copy: the returned value aliases
// the client's receive buffer and is valid only until the next operation
// on this client — the same ownership rule the server Reader and the
// batch visit callbacks already follow. Callers that retain the value
// past the next call must copy it (or use Get); callers that consume it
// immediately get an allocation-free hit. See "Buffer ownership and
// aliasing" in ARCHITECTURE.md.
func (c *Client) GetShared(key uint64) ([]byte, bool, error) {
	resp, err := c.roundTrip(Request{Op: OpGet, Key: key})
	if err != nil {
		return nil, false, err
	}
	switch resp.Status {
	case StatusHit:
		return resp.Value, true, nil
	case StatusMiss:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("wire: unexpected GET response %v", resp.Status)
	}
}

// Set stores value under key as user traffic, reporting whether an entry
// was evicted.
func (c *Client) Set(key uint64, value []byte) (evicted bool, err error) {
	return c.SetFlags(key, 0, value)
}

// SetFlags stores value under key with the given SET flag byte, reporting
// whether an entry was evicted.
func (c *Client) SetFlags(key uint64, flags SetFlags, value []byte) (evicted bool, err error) {
	resp, err := c.roundTrip(Request{Op: OpSet, Key: key, Flags: flags, Value: value})
	if err != nil {
		return false, err
	}
	if resp.Status != StatusOK {
		return false, fmt.Errorf("wire: unexpected SET response %v", resp.Status)
	}
	return resp.Evicted, nil
}

// SetVersioned stores value under key conditionally: the write carries the
// version the caller observed the value at (plus flags, which must include
// SetFlagRepair; SetFlagVersioned is added implicitly) and applies only
// when that version is strictly newer than the stored one. It returns
// whether the write applied and the version the server holds after the
// call — the carried version when applied, the newer winning version when
// not. With SetFlagAsync the write is only accepted (applied=true means
// queued) and the version check happens when the queue drains.
func (c *Client) SetVersioned(key uint64, flags SetFlags, version uint64, value []byte) (applied bool, stored uint64, err error) {
	resp, err := c.roundTrip(Request{
		Op: OpSet, Key: key, Flags: flags | SetFlagVersioned, Version: version, Value: value,
	})
	if err != nil {
		return false, 0, err
	}
	switch resp.Status {
	case StatusOK:
		return true, resp.Version, nil
	case StatusVersionStale:
		return false, resp.Version, nil
	default:
		return false, 0, fmt.Errorf("wire: unexpected VERSIONED SET response %v", resp.Status)
	}
}

// SetTombstone issues one conditional maintenance delete round trip (v8):
// a SET carrying SetFlagTombstone, SetFlagVersioned and an empty value.
// The target stores a tombstone under version iff it is strictly newer
// than what it holds. flags must include SetFlagRepair. Return values
// mirror SetVersioned.
func (c *Client) SetTombstone(key uint64, flags SetFlags, version uint64) (applied bool, stored uint64, err error) {
	resp, err := c.roundTrip(Request{
		Op: OpSet, Key: key, Flags: flags | SetFlagVersioned | SetFlagTombstone, Version: version,
	})
	if err != nil {
		return false, 0, err
	}
	switch resp.Status {
	case StatusOK:
		return true, resp.Version, nil
	case StatusVersionStale:
		return false, resp.Version, nil
	default:
		return false, 0, fmt.Errorf("wire: unexpected TOMBSTONE SET response %v", resp.Status)
	}
}

// SetVersionedTraced is SetVersioned with a trace context attached — the
// synchronous form the cluster's repair applier uses so the repair write
// carries its originating request's trace end to end.
func (c *Client) SetVersionedTraced(key uint64, flags SetFlags, version uint64, tc TraceContext, value []byte) (applied bool, stored uint64, err error) {
	resp, err := c.roundTrip(Request{
		Op: OpSet, Key: key, Flags: flags | SetFlagVersioned, Version: version,
		Trace: tc, Traced: true, Value: value,
	})
	if err != nil {
		return false, 0, err
	}
	switch resp.Status {
	case StatusOK:
		return true, resp.Version, nil
	case StatusVersionStale:
		return false, resp.Version, nil
	default:
		return false, 0, fmt.Errorf("wire: unexpected VERSIONED SET response %v", resp.Status)
	}
}

// Lease is the decoded outcome of a GETL round trip.
type Lease struct {
	// Hit reports a resident key: Version and Value carry the live value
	// (exactly a GET hit) and no lease state was touched.
	Hit bool
	// Token, when nonzero, grants this caller the fill lease for the key;
	// it must accompany the fill SET (SetLease/EnqueueSetLease).
	Token uint64
	// TTL is how long the lease (own or, for a zero-token response, the
	// current holder's) remains outstanding.
	TTL time.Duration
	// Stale marks a zero-token response carrying the last value the lease
	// machinery saw for the key in Version/Value — possibly superseded.
	Stale bool
	// Version and Value are set on a Hit or a Stale hint. GetLease returns
	// Value as a copy, safe to retain; GetLeaseShared returns it aliasing
	// the client's receive buffer, valid until the next call.
	Version uint64
	Value   []byte
}

// GetLease issues one GETL round trip: GET with lease semantics on a
// miss. See Lease for the three outcomes (hit, grant, zero-token
// wait/stale-hint).
func (c *Client) GetLease(key uint64) (Lease, error) {
	l, err := c.GetLeaseShared(key)
	if len(l.Value) > 0 {
		l.Value = append([]byte(nil), l.Value...)
	}
	return l, err
}

// GetLeaseShared is GetLease without the defensive copy: a hit's or stale
// hint's Value aliases the client's receive buffer and is valid only
// until the next operation on this client (the GetShared ownership rule).
func (c *Client) GetLeaseShared(key uint64) (Lease, error) {
	resp, err := c.roundTrip(Request{Op: OpGetLease, Key: key})
	if err != nil {
		return Lease{}, err
	}
	switch resp.Status {
	case StatusHit:
		return Lease{Hit: true, Version: resp.Version, Value: resp.Value}, nil
	case StatusLease:
		l := Lease{Token: resp.LeaseToken, TTL: resp.LeaseTTL, Stale: resp.Stale}
		if resp.Stale {
			l.Version = resp.Version
			l.Value = resp.Value
		}
		return l, nil
	default:
		return Lease{}, fmt.Errorf("wire: unexpected GETL response %v", resp.Status)
	}
}

// SetLease issues one lease fill round trip: a user SET carrying
// SetFlagLease and token. It reports whether the fill landed and the
// version the server holds after the call — the fill's new version when
// it applied, the stored winning version (0 when the key is absent or
// unknown) when the lease was lost. A lost lease is a successful no-op:
// someone fresher already owns the key's state.
func (c *Client) SetLease(key, token uint64, value []byte) (filled bool, stored uint64, err error) {
	resp, err := c.roundTrip(Request{Op: OpSet, Key: key, Flags: SetFlagLease, LeaseToken: token, Value: value})
	if err != nil {
		return false, 0, err
	}
	switch resp.Status {
	case StatusOK:
		return true, resp.Version, nil
	case StatusLeaseLost:
		return false, resp.Version, nil
	default:
		return false, 0, fmt.Errorf("wire: unexpected LEASE SET response %v", resp.Status)
	}
}

// Del deletes key as a versioned write (v8): the server stores a
// tombstone under a freshly assigned version instead of erasing history,
// so replica repair can propagate the delete without resurrection. It
// reports whether a live value was present and the tombstone's assigned
// version.
func (c *Client) Del(key uint64) (present bool, version uint64, err error) {
	resp, err := c.roundTrip(Request{Op: OpDel, Key: key})
	if err != nil {
		return false, 0, err
	}
	if resp.Status != StatusOK {
		return false, 0, fmt.Errorf("wire: unexpected DEL response %v", resp.Status)
	}
	return resp.Evicted, resp.Version, nil
}

// DelTraced is Del with a trace context attached.
func (c *Client) DelTraced(key uint64, tc TraceContext) (present bool, version uint64, err error) {
	resp, err := c.roundTrip(Request{Op: OpDel, Key: key, Trace: tc, Traced: true})
	if err != nil {
		return false, 0, err
	}
	if resp.Status != StatusOK {
		return false, 0, fmt.Errorf("wire: unexpected DEL response %v", resp.Status)
	}
	return resp.Evicted, resp.Version, nil
}

// Stats fetches the server's counter snapshot; detail includes per-shard
// counters.
func (c *Client) Stats(detail bool) (*Stats, error) {
	resp, err := c.roundTrip(Request{Op: OpStats, Detail: detail})
	if err != nil {
		return nil, err
	}
	if resp.Status != StatusStats || resp.Stats == nil {
		return nil, fmt.Errorf("wire: unexpected STATS response %v", resp.Status)
	}
	return resp.Stats, nil
}

// Metrics fetches the server's flight-recorder snapshot; flags selects
// the payload sections (MetricsAll for everything) and must name at least
// one.
func (c *Client) Metrics(flags MetricsFlags) (*Metrics, error) {
	resp, err := c.roundTrip(Request{Op: OpMetrics, MetricsFlags: flags})
	if err != nil {
		return nil, err
	}
	if resp.Status != StatusMetrics || resp.Metrics == nil {
		return nil, fmt.Errorf("wire: unexpected METRICS response %v", resp.Status)
	}
	return resp.Metrics, nil
}

// Keys fetches a racy snapshot of every resident record — key, stored
// version, tombstone marker — by draining the chunked KEYS stream. The
// cluster router uses it to migrate entries off a node being removed, to
// warm a newcomer up, and to diff replica pairs in the anti-entropy
// sweep.
func (c *Client) Keys() ([]KeyRec, error) {
	// Full chunks are DefaultKeysChunk records; starting the accumulator
	// at one chunk's capacity (and doubling in chunk units) avoids the
	// many small regrowth copies an empty append schedule would pay.
	all := make([]KeyRec, 0, DefaultKeysChunk)
	err := c.KeysStream(func(chunk []KeyRec) error {
		all = append(all, chunk...)
		return nil
	})
	return all, err
}

// KeysStream issues one KEYS request and calls visit once per chunk frame
// until the server's terminator (an empty KEYS frame) arrives. The chunk
// slice aliases a connection buffer valid only for the duration of the
// call. A KEYS stream occupies the connection until the terminator: no
// other request may be pipelined behind it. If visit returns an error the
// remaining frames are drained (so the connection stays usable for the
// next request) and that error is returned.
func (c *Client) KeysStream(visit func(chunk []KeyRec) error) error {
	if err := c.w.WriteRequest(Request{Op: OpKeys}); err != nil {
		return err
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	var verr error
	for {
		resp, err := c.ReadResponse()
		if err != nil {
			return err
		}
		if resp.Status != StatusKeys {
			return fmt.Errorf("wire: unexpected KEYS response %v", resp.Status)
		}
		if len(resp.Keys) == 0 {
			return verr
		}
		if verr == nil {
			verr = visit(resp.Keys)
		}
	}
}

// Members fetches the server's current cluster topology: its member list
// and epoch. A server that was never told a topology reports epoch 0 and
// no members.
func (c *Client) Members() (Topology, error) {
	resp, err := c.roundTrip(Request{Op: OpMembers})
	if err != nil {
		return Topology{}, err
	}
	if resp.Status != StatusMembers {
		return Topology{}, fmt.Errorf("wire: unexpected MEMBERS response %v", resp.Status)
	}
	return resp.Topology, nil
}

// PushTopology offers t to the server, which adopts it only if it is
// strictly newer than the topology it holds (or if it holds none). The
// returned topology is the server's view after the push — equal to t when
// it was adopted, the server's newer view when the push lost the race.
func (c *Client) PushTopology(t Topology) (Topology, error) {
	resp, err := c.roundTrip(Request{Op: OpTopology, Topology: t})
	if err != nil {
		return Topology{}, err
	}
	if resp.Status != StatusMembers {
		return Topology{}, fmt.Errorf("wire: unexpected TOPOLOGY response %v", resp.Status)
	}
	return resp.Topology, nil
}

// GetBatch pipelines one GET per key and calls visit for each response in
// key order. The value passed to visit aliases an internal buffer valid only
// for the duration of the call.
func (c *Client) GetBatch(keys []uint64, visit func(i int, hit bool, value []byte)) error {
	return c.GetBatchVersions(keys, func(i int, hit bool, _ uint64, value []byte) {
		visit(i, hit, value)
	})
}

// GetBatchVersions is GetBatch with the stored version of each hit passed
// through to visit — the read side of the versioned-maintenance loop: the
// cluster router reads values with their versions here and re-writes them
// elsewhere with SetBatchVersioned, so a copy can never supersede a value
// newer than the one it observed. The value passed to visit aliases an
// internal buffer valid only for the duration of the call.
func (c *Client) GetBatchVersions(keys []uint64, visit func(i int, hit bool, version uint64, value []byte)) error {
	for _, k := range keys {
		if err := c.EnqueueGet(k); err != nil {
			return err
		}
	}
	if err := c.Flush(); err != nil {
		return err
	}
	for i := range keys {
		resp, err := c.ReadResponse()
		if err != nil {
			return err
		}
		switch resp.Status {
		case StatusHit:
			visit(i, true, resp.Version, resp.Value)
		case StatusMiss:
			visit(i, false, 0, nil)
		default:
			return fmt.Errorf("wire: unexpected GET response %v", resp.Status)
		}
	}
	return nil
}

// SetBatch pipelines one user SET per key, with value(i) producing the i-th
// payload.
func (c *Client) SetBatch(keys []uint64, value func(i int) []byte) error {
	return c.SetBatchFlags(keys, 0, value)
}

// SetBatchFlags pipelines one SET per key carrying the given flag byte,
// with value(i) producing the i-th payload.
func (c *Client) SetBatchFlags(keys []uint64, flags SetFlags, value func(i int) []byte) error {
	for i, k := range keys {
		if err := c.EnqueueSetFlags(k, flags, value(i)); err != nil {
			return err
		}
	}
	if err := c.Flush(); err != nil {
		return err
	}
	for range keys {
		resp, err := c.ReadResponse()
		if err != nil {
			return err
		}
		if resp.Status != StatusOK {
			return fmt.Errorf("wire: unexpected SET response %v", resp.Status)
		}
	}
	return nil
}

// SetBatchVersioned pipelines one conditional maintenance SET per key
// (flags must include SetFlagRepair; SetFlagVersioned is added implicitly),
// with version(i) and value(i) producing the i-th observed version and
// payload. It reports how many writes applied and how many were rejected
// as stale — a stale rejection means the destination already held a
// strictly newer value, which for a maintenance copy is success: the data
// is there, fresher than the copy in flight.
func (c *Client) SetBatchVersioned(keys []uint64, flags SetFlags, version func(i int) uint64, value func(i int) []byte) (applied, stale int, err error) {
	for i, k := range keys {
		if err := c.EnqueueSetVersioned(k, flags, version(i), value(i)); err != nil {
			return applied, stale, err
		}
	}
	if err := c.Flush(); err != nil {
		return applied, stale, err
	}
	for range keys {
		resp, err := c.ReadResponse()
		if err != nil {
			return applied, stale, err
		}
		switch resp.Status {
		case StatusOK:
			applied++
		case StatusVersionStale:
			stale++
		default:
			return applied, stale, fmt.Errorf("wire: unexpected VERSIONED SET response %v", resp.Status)
		}
	}
	return applied, stale, nil
}

// SetBatchRecs pipelines one conditional maintenance write per record —
// a TOMBSTONE SET for tombstone records (value(i) is ignored), a plain
// VERSIONED SET otherwise — with each write carrying its record's
// version. flags must include SetFlagRepair; SetFlagVersioned (and, per
// record, SetFlagTombstone) is added implicitly. It reports applied and
// stale counts exactly like SetBatchVersioned; a stale tombstone means
// the destination holds something strictly newer than the delete, which
// by the versioned-repair invariant is the state that should win.
func (c *Client) SetBatchRecs(recs []KeyRec, flags SetFlags, value func(i int) []byte) (applied, stale int, err error) {
	for i, rec := range recs {
		if rec.Tombstone {
			err = c.EnqueueSetTombstone(rec.Key, flags, rec.Version)
		} else {
			err = c.EnqueueSetVersioned(rec.Key, flags, rec.Version, value(i))
		}
		if err != nil {
			return applied, stale, err
		}
	}
	if err := c.Flush(); err != nil {
		return applied, stale, err
	}
	for range recs {
		resp, err := c.ReadResponse()
		if err != nil {
			return applied, stale, err
		}
		switch resp.Status {
		case StatusOK:
			applied++
		case StatusVersionStale:
			stale++
		default:
			return applied, stale, fmt.Errorf("wire: unexpected VERSIONED SET response %v", resp.Status)
		}
	}
	return applied, stale, nil
}

// Rehash asks the server to begin an online incremental rehash.
func (c *Client) Rehash() error {
	resp, err := c.roundTrip(Request{Op: OpRehash})
	if err != nil {
		return err
	}
	if resp.Status != StatusOK {
		return fmt.Errorf("wire: unexpected REHASH response %v", resp.Status)
	}
	return nil
}
