package wire

// METRICS (v5, extended in v6): the flight-recorder op. A METRICS request
// carries one detail-flag byte selecting payload sections — histograms,
// counters, slow ops, traces, hot keys — and the response carries exactly
// the selected sections, so a dashboard polling counters every second
// does not drag kilobytes of histogram buckets along. Histograms travel
// sparse (only occupied buckets), in telemetry's log-linear bucket
// scheme, and merge losslessly across nodes: the cluster router's
// Metrics() is bucket-wise addition. The v6 sections are mergeable too:
// hot-key sketches union (telemetry.TopKSnapshot.Merge) and spans
// concatenate, grouped by trace ID, into the cluster-wide view of each
// traced request.

import (
	"encoding/binary"
	"fmt"

	"repro/internal/telemetry"
)

// MetricsFlags is the detail-flag byte of a METRICS request, echoed in the
// response; it is a bit set selecting payload sections.
type MetricsFlags byte

// The defined METRICS detail flags. A request must select at least one
// section; undefined bits are rejected on both ends.
const (
	// MetricsHistograms selects the per-op service-time histograms and the
	// repair-queue wait histogram.
	MetricsHistograms MetricsFlags = 1 << 0
	// MetricsCounters selects the scalar telemetry counters (bytes in/out,
	// slow-op total, connections served).
	MetricsCounters MetricsFlags = 1 << 1
	// MetricsSlowOps selects the slow-op ring contents, oldest first.
	MetricsSlowOps MetricsFlags = 1 << 2
	// MetricsTraces selects the sampled-span ring (v6), oldest first:
	// one record per sampled traced request the server observed,
	// including writes applied from the async repair queue.
	MetricsTraces MetricsFlags = 1 << 3
	// MetricsHotKeys selects the per-op-class hot-key sketches (v6):
	// space-saving top-K summaries of which (scrambled) keys each op
	// class touched, plus the keys whose SETs displaced residents.
	MetricsHotKeys MetricsFlags = 1 << 4

	// MetricsAll selects every section.
	MetricsAll = MetricsHistograms | MetricsCounters | MetricsSlowOps | MetricsTraces | MetricsHotKeys

	metricsFlagsDefined = MetricsAll
)

func (f MetricsFlags) validate() error {
	if f == 0 {
		return fmt.Errorf("wire: METRICS flags select no section")
	}
	if f&^metricsFlagsDefined != 0 {
		return fmt.Errorf("wire: METRICS flags %#02x has undefined bits", byte(f))
	}
	return nil
}

// Histogram IDs. Per-op service-time histograms reuse the request opcode
// byte as their ID (GET=1 … GETL=10); IDs from 32 up name histograms
// that are not tied to one opcode.
const (
	// HistRepairWait is the queue-wait-time histogram of async maintenance
	// writes: enqueue to the moment the drain goroutine applies them.
	HistRepairWait byte = 32
)

// HistName names a histogram ID for display.
func HistName(id byte) string {
	if id == HistRepairWait {
		return "REPAIR_WAIT"
	}
	if op := Op(id); op >= OpGet && op <= OpGetLease {
		return op.String()
	}
	return fmt.Sprintf("Hist(%d)", id)
}

func validHistID(id byte) bool {
	return (Op(id) >= OpGet && Op(id) <= OpGetLease) || id == HistRepairWait
}

// Counter IDs.
const (
	// CounterBytesIn counts request bytes read from client connections.
	CounterBytesIn byte = 1
	// CounterBytesOut counts response bytes written to client connections.
	CounterBytesOut byte = 2
	// CounterSlowOps counts operations that crossed the slow threshold
	// (ever, not just those still retained by the ring).
	CounterSlowOps byte = 3
	// CounterConns counts client connections accepted since start.
	CounterConns byte = 4

	counterIDMax = CounterConns
)

// CounterName names a counter ID for display.
func CounterName(id byte) string {
	switch id {
	case CounterBytesIn:
		return "BYTES_IN"
	case CounterBytesOut:
		return "BYTES_OUT"
	case CounterSlowOps:
		return "SLOW_OPS"
	case CounterConns:
		return "CONNS"
	default:
		return fmt.Sprintf("Counter(%d)", id)
	}
}

// MaxSlowOps bounds the slow-op section of one METRICS response; it caps
// the damage a corrupt count field can do and comfortably exceeds any
// real ring (telemetry.DefaultSlowLogSize is 256).
const MaxSlowOps = 4096

// MaxSpans bounds the TRACES section of one METRICS response; it
// comfortably exceeds any real ring (telemetry.DefaultSpanRingSize is
// 1024).
const MaxSpans = 8192

// MaxHotKeys bounds one class of the HOTKEYS section; it comfortably
// exceeds any real sketch (telemetry.DefaultTopKCapacity is 512).
const MaxHotKeys = 8192

// spanRecLen is the encoded size of one TRACES record: op and status
// bytes, 16-byte trace ID, then key hash, queue wait, duration and
// completion time as uint64s.
const spanRecLen = 1 + 1 + 16 + 8 + 8 + 8 + 8

// slowOpRecLen is the encoded size of one slow-op record: the op byte,
// key hash, duration, version and completion time, then (v6) the 16-byte
// trace ID.
const slowOpRecLen = 1 + 8 + 8 + 8 + 8 + 16

// Hot-key class IDs: which op class a HOTKEYS sketch counts.
const (
	// HotGet counts keys by GET traffic.
	HotGet byte = 1
	// HotSet counts keys by user SET traffic.
	HotSet byte = 2
	// HotDel counts keys by DEL traffic.
	HotDel byte = 3
	// HotEvict counts keys whose SET displaced a resident entry — the
	// conflict-pressure signal: under a set-associative cache these are
	// the keys crowding others out of their buckets.
	HotEvict byte = 4

	hotClassMax = HotEvict
)

// HotClassName names a hot-key class ID for display.
func HotClassName(id byte) string {
	switch id {
	case HotGet:
		return "GET"
	case HotSet:
		return "SET"
	case HotDel:
		return "DEL"
	case HotEvict:
		return "EVICT"
	default:
		return fmt.Sprintf("HotClass(%d)", id)
	}
}

// HotKeyClass is one class's sketch in a HOTKEYS section.
type HotKeyClass struct {
	// Class is the hot-key class ID (HotGet … HotEvict).
	Class byte
	// Keys is the sketch snapshot, hottest first; keys are scrambled
	// (telemetry.HashKey), matching slow-op and span key hashes.
	Keys telemetry.TopKSnapshot
}

// OpHist is one histogram in a METRICS payload: an ID plus the dense
// snapshot (the sparse wire form is an encoding detail).
type OpHist struct {
	ID   byte
	Snap telemetry.HistogramSnapshot
}

// MetricCounter is one scalar counter in a METRICS payload.
type MetricCounter struct {
	ID    byte
	Value uint64
}

// Metrics is the payload of a METRICS response. Only the sections selected
// by Flags are present; the others are nil.
type Metrics struct {
	// Flags echoes the request's detail flags.
	Flags MetricsFlags
	// Hists are the selected histograms, in ascending ID order.
	Hists []OpHist
	// Counters are the scalar counters, in ascending ID order.
	Counters []MetricCounter
	// SlowOps is the retained slow-op ring, oldest first.
	SlowOps []telemetry.SlowOp
	// Spans is the retained sampled-span ring, oldest first (TRACES).
	Spans []telemetry.Span
	// HotKeys are the per-class hot-key sketches, in ascending class ID
	// order (HOTKEYS).
	HotKeys []HotKeyClass
}

// Hist returns the histogram with the given ID, or nil.
func (m *Metrics) Hist(id byte) *telemetry.HistogramSnapshot {
	for i := range m.Hists {
		if m.Hists[i].ID == id {
			return &m.Hists[i].Snap
		}
	}
	return nil
}

// Counter returns the counter with the given ID (0 when absent).
func (m *Metrics) Counter(id byte) uint64 {
	for _, c := range m.Counters {
		if c.ID == id {
			return c.Value
		}
	}
	return 0
}

// HotClass returns the hot-key sketch for the given class ID, or nil.
func (m *Metrics) HotClass(class byte) telemetry.TopKSnapshot {
	for _, hc := range m.HotKeys {
		if hc.Class == class {
			return hc.Keys
		}
	}
	return nil
}

// appendMetrics encodes m: the echoed flag byte, then each selected
// section. Histograms are sparse — (index uint16, count uint64) pairs in
// ascending index order — because a latency distribution occupies a few
// dozen of telemetry.NumBuckets buckets; Count is not encoded (it is the
// sum of the pairs).
func appendMetrics(body []byte, m *Metrics) ([]byte, error) {
	if err := m.Flags.validate(); err != nil {
		return nil, err
	}
	body = append(body, byte(m.Flags))
	if m.Flags&MetricsHistograms != 0 {
		body = binary.LittleEndian.AppendUint32(body, uint32(len(m.Hists)))
		for i := range m.Hists {
			h := &m.Hists[i]
			if !validHistID(h.ID) {
				return nil, fmt.Errorf("wire: METRICS histogram ID %d undefined", h.ID)
			}
			body = append(body, h.ID)
			body = binary.LittleEndian.AppendUint64(body, h.Snap.Sum)
			var occupied uint32
			for _, n := range h.Snap.Buckets {
				if n != 0 {
					occupied++
				}
			}
			body = binary.LittleEndian.AppendUint32(body, occupied)
			for idx, n := range h.Snap.Buckets {
				if n != 0 {
					body = binary.LittleEndian.AppendUint16(body, uint16(idx))
					body = binary.LittleEndian.AppendUint64(body, n)
				}
			}
		}
	}
	if m.Flags&MetricsCounters != 0 {
		body = binary.LittleEndian.AppendUint32(body, uint32(len(m.Counters)))
		for _, c := range m.Counters {
			if c.ID == 0 || c.ID > counterIDMax {
				return nil, fmt.Errorf("wire: METRICS counter ID %d undefined", c.ID)
			}
			body = append(body, c.ID)
			body = binary.LittleEndian.AppendUint64(body, c.Value)
		}
	}
	if m.Flags&MetricsSlowOps != 0 {
		if len(m.SlowOps) > MaxSlowOps {
			return nil, fmt.Errorf("wire: METRICS slow-op section %d records, max %d", len(m.SlowOps), MaxSlowOps)
		}
		body = binary.LittleEndian.AppendUint32(body, uint32(len(m.SlowOps)))
		for _, r := range m.SlowOps {
			body = append(body, r.Op)
			body = binary.LittleEndian.AppendUint64(body, r.KeyHash)
			body = binary.LittleEndian.AppendUint64(body, r.DurationNanos)
			body = binary.LittleEndian.AppendUint64(body, r.Version)
			body = binary.LittleEndian.AppendUint64(body, r.UnixNanos)
			body = append(body, r.TraceID[:]...)
		}
	}
	if m.Flags&MetricsTraces != 0 {
		if len(m.Spans) > MaxSpans {
			return nil, fmt.Errorf("wire: METRICS trace section %d spans, max %d", len(m.Spans), MaxSpans)
		}
		body = binary.LittleEndian.AppendUint32(body, uint32(len(m.Spans)))
		for _, s := range m.Spans {
			if s.TraceID.IsZero() {
				return nil, fmt.Errorf("wire: METRICS span with a zero trace ID")
			}
			body = append(body, s.Op, s.Status)
			body = append(body, s.TraceID[:]...)
			body = binary.LittleEndian.AppendUint64(body, s.KeyHash)
			body = binary.LittleEndian.AppendUint64(body, s.QueueWaitNanos)
			body = binary.LittleEndian.AppendUint64(body, s.DurationNanos)
			body = binary.LittleEndian.AppendUint64(body, s.UnixNanos)
		}
	}
	if m.Flags&MetricsHotKeys != 0 {
		body = binary.LittleEndian.AppendUint32(body, uint32(len(m.HotKeys)))
		prevClass := byte(0)
		for _, hc := range m.HotKeys {
			if hc.Class == 0 || hc.Class > hotClassMax {
				return nil, fmt.Errorf("wire: METRICS hot-key class %d undefined", hc.Class)
			}
			if hc.Class <= prevClass {
				return nil, fmt.Errorf("wire: METRICS hot-key classes not ascending at %s", HotClassName(hc.Class))
			}
			prevClass = hc.Class
			if len(hc.Keys) > MaxHotKeys {
				return nil, fmt.Errorf("wire: METRICS hot-key class %s %d entries, max %d",
					HotClassName(hc.Class), len(hc.Keys), MaxHotKeys)
			}
			body = append(body, hc.Class)
			body = binary.LittleEndian.AppendUint32(body, uint32(len(hc.Keys)))
			for _, e := range hc.Keys {
				body = binary.LittleEndian.AppendUint64(body, e.Key)
				body = binary.LittleEndian.AppendUint64(body, e.Count)
				body = binary.LittleEndian.AppendUint64(body, e.Err)
			}
		}
	}
	return body, nil
}

// parseMetrics decodes and validates a METRICS payload. Every structural
// rule the encoder obeys is enforced: defined flags, defined IDs, sparse
// bucket indices strictly increasing and in range, nonzero bucket counts,
// bounded slow-op count, and no trailing bytes.
func parseMetrics(body []byte) (*Metrics, error) {
	if len(body) < 1 {
		return nil, fmt.Errorf("wire: METRICS payload lacks the flag byte")
	}
	m := &Metrics{Flags: MetricsFlags(body[0])}
	if err := m.Flags.validate(); err != nil {
		return nil, err
	}
	body = body[1:]
	u32 := func(section string) (int, error) {
		if len(body) < 4 {
			return 0, fmt.Errorf("wire: METRICS %s section truncated", section)
		}
		n := int(binary.LittleEndian.Uint32(body))
		body = body[4:]
		return n, nil
	}
	if m.Flags&MetricsHistograms != 0 {
		nh, err := u32("histogram")
		if err != nil {
			return nil, err
		}
		if nh > 64 {
			return nil, fmt.Errorf("wire: METRICS claims %d histograms, max 64", nh)
		}
		m.Hists = make([]OpHist, nh)
		for i := range m.Hists {
			h := &m.Hists[i]
			if len(body) < 1+8+4 {
				return nil, fmt.Errorf("wire: METRICS histogram %d truncated", i)
			}
			h.ID = body[0]
			if !validHistID(h.ID) {
				return nil, fmt.Errorf("wire: METRICS histogram ID %d undefined", h.ID)
			}
			if i > 0 && h.ID <= m.Hists[i-1].ID {
				return nil, fmt.Errorf("wire: METRICS histogram IDs not ascending at %d", h.ID)
			}
			h.Snap.Sum = binary.LittleEndian.Uint64(body[1:])
			nb := int(binary.LittleEndian.Uint32(body[9:]))
			body = body[13:]
			if nb > telemetry.NumBuckets {
				return nil, fmt.Errorf("wire: METRICS histogram %d claims %d buckets, max %d", h.ID, nb, telemetry.NumBuckets)
			}
			if len(body) < 10*nb {
				return nil, fmt.Errorf("wire: METRICS histogram %d bucket list truncated", h.ID)
			}
			prev := -1
			for b := 0; b < nb; b++ {
				idx := int(binary.LittleEndian.Uint16(body))
				n := binary.LittleEndian.Uint64(body[2:])
				body = body[10:]
				if idx >= telemetry.NumBuckets {
					return nil, fmt.Errorf("wire: METRICS histogram %d bucket index %d out of range", h.ID, idx)
				}
				if idx <= prev {
					return nil, fmt.Errorf("wire: METRICS histogram %d bucket indices not ascending at %d", h.ID, idx)
				}
				if n == 0 {
					return nil, fmt.Errorf("wire: METRICS histogram %d encodes an empty bucket %d", h.ID, idx)
				}
				prev = idx
				h.Snap.Buckets[idx] = n
				h.Snap.Count += n
			}
		}
	}
	if m.Flags&MetricsCounters != 0 {
		nc, err := u32("counter")
		if err != nil {
			return nil, err
		}
		if nc > int(counterIDMax) {
			return nil, fmt.Errorf("wire: METRICS claims %d counters, max %d", nc, counterIDMax)
		}
		m.Counters = make([]MetricCounter, nc)
		for i := range m.Counters {
			if len(body) < 9 {
				return nil, fmt.Errorf("wire: METRICS counter %d truncated", i)
			}
			id := body[0]
			if id == 0 || id > counterIDMax {
				return nil, fmt.Errorf("wire: METRICS counter ID %d undefined", id)
			}
			if i > 0 && id <= m.Counters[i-1].ID {
				return nil, fmt.Errorf("wire: METRICS counter IDs not ascending at %d", id)
			}
			m.Counters[i] = MetricCounter{ID: id, Value: binary.LittleEndian.Uint64(body[1:])}
			body = body[9:]
		}
	}
	if m.Flags&MetricsSlowOps != 0 {
		ns, err := u32("slow-op")
		if err != nil {
			return nil, err
		}
		if ns > MaxSlowOps {
			return nil, fmt.Errorf("wire: METRICS claims %d slow ops, max %d", ns, MaxSlowOps)
		}
		if len(body) < slowOpRecLen*ns {
			return nil, fmt.Errorf("wire: METRICS slow-op records truncated")
		}
		m.SlowOps = make([]telemetry.SlowOp, ns)
		for i := range m.SlowOps {
			m.SlowOps[i] = telemetry.SlowOp{
				Op:            body[0],
				KeyHash:       binary.LittleEndian.Uint64(body[1:]),
				DurationNanos: binary.LittleEndian.Uint64(body[9:]),
				Version:       binary.LittleEndian.Uint64(body[17:]),
				UnixNanos:     binary.LittleEndian.Uint64(body[25:]),
			}
			copy(m.SlowOps[i].TraceID[:], body[33:])
			body = body[slowOpRecLen:]
		}
	}
	if m.Flags&MetricsTraces != 0 {
		ns, err := u32("trace")
		if err != nil {
			return nil, err
		}
		if ns > MaxSpans {
			return nil, fmt.Errorf("wire: METRICS claims %d spans, max %d", ns, MaxSpans)
		}
		if len(body) < spanRecLen*ns {
			return nil, fmt.Errorf("wire: METRICS span records truncated")
		}
		m.Spans = make([]telemetry.Span, ns)
		for i := range m.Spans {
			s := &m.Spans[i]
			s.Op = body[0]
			s.Status = body[1]
			copy(s.TraceID[:], body[2:])
			s.KeyHash = binary.LittleEndian.Uint64(body[18:])
			s.QueueWaitNanos = binary.LittleEndian.Uint64(body[26:])
			s.DurationNanos = binary.LittleEndian.Uint64(body[34:])
			s.UnixNanos = binary.LittleEndian.Uint64(body[42:])
			if s.TraceID.IsZero() {
				return nil, fmt.Errorf("wire: METRICS span %d has a zero trace ID", i)
			}
			body = body[spanRecLen:]
		}
	}
	if m.Flags&MetricsHotKeys != 0 {
		nc, err := u32("hot-key")
		if err != nil {
			return nil, err
		}
		if nc > int(hotClassMax) {
			return nil, fmt.Errorf("wire: METRICS claims %d hot-key classes, max %d", nc, hotClassMax)
		}
		m.HotKeys = make([]HotKeyClass, nc)
		for i := range m.HotKeys {
			if len(body) < 5 {
				return nil, fmt.Errorf("wire: METRICS hot-key class %d truncated", i)
			}
			class := body[0]
			if class == 0 || class > hotClassMax {
				return nil, fmt.Errorf("wire: METRICS hot-key class %d undefined", class)
			}
			if i > 0 && class <= m.HotKeys[i-1].Class {
				return nil, fmt.Errorf("wire: METRICS hot-key classes not ascending at %s", HotClassName(class))
			}
			ne := int(binary.LittleEndian.Uint32(body[1:]))
			body = body[5:]
			if ne > MaxHotKeys {
				return nil, fmt.Errorf("wire: METRICS hot-key class %s claims %d entries, max %d",
					HotClassName(class), ne, MaxHotKeys)
			}
			if len(body) < 24*ne {
				return nil, fmt.Errorf("wire: METRICS hot-key class %s entries truncated", HotClassName(class))
			}
			keys := make(telemetry.TopKSnapshot, ne)
			for j := range keys {
				keys[j] = telemetry.TopKEntry{
					Key:   binary.LittleEndian.Uint64(body),
					Count: binary.LittleEndian.Uint64(body[8:]),
					Err:   binary.LittleEndian.Uint64(body[16:]),
				}
				if j > 0 {
					prev := keys[j-1]
					if keys[j].Count > prev.Count || (keys[j].Count == prev.Count && keys[j].Key <= prev.Key) {
						return nil, fmt.Errorf("wire: METRICS hot-key class %s entries not in canonical order at %d",
							HotClassName(class), j)
					}
				}
				body = body[24:]
			}
			m.HotKeys[i] = HotKeyClass{Class: class, Keys: keys}
		}
	}
	if len(body) != 0 {
		return nil, fmt.Errorf("wire: METRICS payload has %d trailing bytes", len(body))
	}
	return m, nil
}
